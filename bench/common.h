// Shared helpers for the figure-reproduction benches.
//
// Every bench binary prints the rows/series of one paper figure or table.
// Defaults are scaled down so the whole bench suite runs in minutes on a
// laptop; pass --full for paper-scale parameters. EXPERIMENTS.md records
// paper-vs-measured values for both settings.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "schemes/scheme.h"
#include "sim/time.h"
#include "stats/table.h"

namespace halfback::bench {

/// Command-line options shared by the bench binaries.
struct Options {
  bool full = false;          ///< paper-scale parameters
  std::uint64_t seed = 1;
  unsigned threads = 0;       ///< 0 = hardware concurrency
  int pairs = -1;             ///< ensemble size override (-1 = default)
  double duration_s = -1.0;   ///< workload duration override
  int replications = 1;       ///< independent seeds per sweep cell
  std::string csv_dir;        ///< write result tables as CSV here
  std::string telemetry_dir;  ///< write telemetry exports/manifests here
  /// Add per-cell FCT tail-percentile columns (p50/p99/p99.9) to sweeps
  /// that support them (ext_chaos_matrix). Deterministic at any --threads.
  bool percentiles = false;

  // Supervision knobs (docs/robustness.md), honored by the sweep benches
  // that run under the supervised executor (ext_chaos_matrix).
  bool allow_quarantine = false;   ///< quarantined cells don't fail the run
  std::uint64_t budget_events = 0; ///< per-cell event budget (0 = default)
  std::uint64_t storm_window = 0;  ///< storm-detector window (0 = default)
  double storm_rate = 0.0;         ///< events/sim-second threshold (0 = default)
  std::uint64_t cell_attempts = 0; ///< attempts per cell (0 = default policy)
  std::string quarantine_path;     ///< write the quarantine manifest here
};

/// Parse a strictly numeric, non-negative value for `flag`; exits with a
/// diagnostic on junk like `--threads=abc`, `--pairs=-3`, or `--reps=` —
/// silently treating those as 0 (the old atoi behaviour) turned typos into
/// hour-long misconfigured campaigns.
inline std::uint64_t parse_count(const char* flag, const char* v) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (*v == '\0' || end == nullptr || *end != '\0' || *v == '-' || errno != 0) {
    std::fprintf(stderr, "%s expects a non-negative integer, got \"%s\"\n", flag, v);
    std::exit(2);
  }
  return parsed;
}

inline double parse_seconds(const char* flag, const char* v) {
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v, &end);
  if (*v == '\0' || end == nullptr || *end != '\0' || errno != 0 || parsed < 0.0) {
    std::fprintf(stderr, "%s expects a non-negative number of seconds, got \"%s\"\n",
                 flag, v);
    std::exit(2);
  }
  return parsed;
}

inline double parse_number(const char* flag, const char* v) {
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v, &end);
  if (*v == '\0' || end == nullptr || *end != '\0' || errno != 0 || parsed < 0.0) {
    std::fprintf(stderr, "%s expects a non-negative number, got \"%s\"\n", flag,
                 v);
    std::exit(2);
  }
  return parsed;
}

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--full") {
      opt.full = true;
    } else if ((v = value("--seed="))) {
      opt.seed = parse_count("--seed", v);
    } else if ((v = value("--threads="))) {
      opt.threads = static_cast<unsigned>(parse_count("--threads", v));
    } else if ((v = value("--pairs="))) {
      opt.pairs = static_cast<int>(parse_count("--pairs", v));
    } else if ((v = value("--duration="))) {
      opt.duration_s = parse_seconds("--duration", v);
    } else if ((v = value("--reps="))) {
      opt.replications = static_cast<int>(parse_count("--reps", v));
    } else if ((v = value("--csv="))) {
      opt.csv_dir = v;
    } else if ((v = value("--telemetry="))) {
      opt.telemetry_dir = v;
    } else if (arg == "--percentiles") {
      opt.percentiles = true;
    } else if (arg == "--allow-quarantine") {
      opt.allow_quarantine = true;
    } else if ((v = value("--budget-events="))) {
      opt.budget_events = parse_count("--budget-events", v);
    } else if ((v = value("--storm-window="))) {
      opt.storm_window = parse_count("--storm-window", v);
    } else if ((v = value("--storm-rate="))) {
      opt.storm_rate = parse_number("--storm-rate", v);
    } else if ((v = value("--cell-attempts="))) {
      opt.cell_attempts = parse_count("--cell-attempts", v);
    } else if ((v = value("--quarantine="))) {
      opt.quarantine_path = v;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--full] [--seed=N] [--threads=N] [--pairs=N] "
          "[--duration=SECONDS] [--reps=N] [--csv=DIR] [--telemetry=DIR]\n"
          "       [--percentiles]\n"
          "       [--allow-quarantine] [--budget-events=N] [--storm-window=N]\n"
          "       [--storm-rate=EVENTS_PER_SIM_SECOND] [--cell-attempts=N]\n"
          "       [--quarantine=FILE]\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

inline void print_header(const char* figure, const char* description,
                         const Options& opt) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("mode: %s, seed: %llu\n", opt.full ? "FULL (paper scale)" : "quick",
              static_cast<unsigned long long>(opt.seed));
  std::printf("==================================================================\n\n");
}

inline const char* display(schemes::Scheme s) {
  return schemes::info(s).display_name;
}

/// Write `table` as <csv_dir>/<name>.csv when --csv was given.
inline void maybe_write_csv(const Options& opt, const char* name,
                            const stats::Table& table) {
  if (opt.csv_dir.empty()) return;
  const std::string path = opt.csv_dir + "/" + name + ".csv";
  if (table.write_csv(path)) std::printf("wrote %s\n", path.c_str());
}

}  // namespace halfback::bench
