// Extension bench (paper §6, Bufferbloat related work): "reducing queuing
// delay (and thus RTT) is fully complementary to our study of reducing the
// number of RTTs in a flow; the improvements multiply."
//
// We verify that claim: short flows through a bloated 600 KB buffer kept
// full by a bulk TCP flow, with the bottleneck running drop-tail vs CoDel,
// for TCP vs Halfback short flows. The paper's sentence predicts the four
// cells multiply: CoDel shortens each RTT, Halfback needs fewer of them.
#include <cstdio>

#include "common.h"
#include "exp/emulab.h"
#include "exp/parallel.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Extension: AQM x Halfback",
                      "bufferbloat with drop-tail vs CoDel bottleneck", opt);

  const double duration_s =
      opt.duration_s > 0 ? opt.duration_s : (opt.full ? 300.0 : 60.0);

  sim::Random rng{opt.seed * 5};
  workload::ScheduleConfig sc;
  sc.duration = sim::Time::seconds(duration_s);
  sc.bottleneck = sim::DataRate::megabits_per_second(15);
  sc.target_utilization = 100e3 / 10.0 / sc.bottleneck.bytes_per_second();
  auto shorts = workload::make_schedule(workload::FlowSizeDist::fixed(100'000), sc, rng);

  const auto bg_bytes = static_cast<std::uint64_t>(
      sc.bottleneck.bytes_per_second() * duration_s * 1.2);
  std::vector<workload::FlowArrival> background{{sim::Time::zero(), bg_bytes}};
  transport::SenderConfig bulk;
  bulk.receive_window_segments = 1000;

  struct Cell {
    net::QueueKind queue;
    schemes::Scheme scheme;
    double mean_fct_ms = 0.0;
    double bg_share = 0.0;
  };
  std::vector<Cell> cells{
      {net::QueueKind::drop_tail, schemes::Scheme::tcp},
      {net::QueueKind::drop_tail, schemes::Scheme::halfback},
      {net::QueueKind::codel, schemes::Scheme::tcp},
      {net::QueueKind::codel, schemes::Scheme::halfback},
  };

  exp::parallel_for(
      cells.size(),
      [&](std::size_t i) {
        Cell& cell = cells[i];
        exp::EmulabRunner::Config config;
        config.seed = opt.seed;
        config.dumbbell.bottleneck_buffer_bytes = 600'000;  // badly bloated
        config.dumbbell.bottleneck_queue = cell.queue;
        exp::EmulabRunner runner{config};
        exp::WorkloadPart bg{schemes::Scheme::tcp, background,
                             exp::FlowRole::background, bulk};
        exp::RunResult run = runner.run(
            {exp::WorkloadPart{cell.scheme, shorts, exp::FlowRole::primary, {}}, bg});
        cell.mean_fct_ms = run.mean_fct_ms(exp::FlowRole::primary);
        cell.bg_share = run.bottleneck_utilization;
      },
      opt.threads);

  stats::Table table{{"bottleneck queue", "short-flow scheme", "mean FCT (ms)",
                      "bottleneck utilization"}};
  for (const Cell& cell : cells) {
    table.add_row({cell.queue == net::QueueKind::codel ? "CoDel" : "drop-tail",
                   bench::display(cell.scheme), stats::Table::num(cell.mean_fct_ms, 0),
                   stats::Table::num(cell.bg_share, 2)});
  }
  table.print();

  const double dt_tcp = cells[0].mean_fct_ms;
  const double dt_hb = cells[1].mean_fct_ms;
  const double cd_tcp = cells[2].mean_fct_ms;
  const double cd_hb = cells[3].mean_fct_ms;
  std::printf(
      "\nspeedups: Halfback alone %.1fx, CoDel alone %.1fx, combined %.1fx "
      "(product of singles: %.1fx)\n",
      dt_tcp / dt_hb, dt_tcp / cd_tcp, dt_tcp / cd_hb,
      (dt_tcp / dt_hb) * (dt_tcp / cd_tcp));
  std::printf("paper claim (§6): \"the improvements multiply\".\n");
  return 0;
}
