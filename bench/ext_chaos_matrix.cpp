// Extension bench (robustness): the chaos matrix. The paper argues
// Halfback runs short flows "quickly and safely"; safety there is
// established under i.i.d. loss. This bench drives every scheme through
// the netfault scenario catalog — bursty loss, reordering, duplication,
// corruption, blackouts, link flapping, delay spikes, and an
// everything-at-once composite — on the Emulab dumbbell, and reports FCT
// plus recovery/rejection counters per cell. Acceptance bar: every flow
// completes in every cell, every cell passes the invariant audit, and
// (under --full) every cell re-runs to a bit-identical trace hash.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "common.h"
#include "exp/chaos.h"
#include "sim/dispatch_profiler.h"
#include "stats/ascii_plot.h"
#include "stats/table.h"
#include "telemetry/export.h"
#include "telemetry/hub.h"
#include "telemetry/quarantine.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Extension: chaos matrix",
                      "fault-injection catalog x schemes on the Emulab dumbbell",
                      opt);

  exp::ChaosSweepConfig config;
  config.runner.seed = opt.seed;
  config.threads = opt.threads;
  // Quick mode keeps the matrix small enough for CI smoke; --full runs the
  // paper's whole comparison set and proves per-cell determinism by
  // re-running every cell.
  const std::vector<schemes::Scheme> quick_schemes{
      schemes::Scheme::tcp, schemes::Scheme::tcp10, schemes::Scheme::proactive,
      schemes::Scheme::halfback};
  std::span<const schemes::Scheme> scheme_set =
      opt.full ? schemes::evaluation_set()
               : std::span<const schemes::Scheme>{quick_schemes};
  config.verify_determinism = opt.full;
  config.telemetry_dir = opt.telemetry_dir;
  config.record_percentiles = opt.percentiles;
  // Supervision knobs: flags override the stock per-cell budget / retry
  // policy (docs/robustness.md). The storm-guard CI job uses these to
  // force a pathological cell into quarantine.
  if (opt.budget_events != 0) config.cell_budget.max_events = opt.budget_events;
  if (opt.storm_window != 0) config.cell_budget.storm_window = opt.storm_window;
  if (opt.storm_rate != 0.0) {
    config.cell_budget.storm_events_per_sim_second = opt.storm_rate;
  }
  if (opt.cell_attempts != 0) {
    config.retry.max_attempts = static_cast<std::uint32_t>(opt.cell_attempts);
  }

  const exp::ChaosSweepResult sweep = exp::chaos_sweep(config, scheme_set);
  const std::vector<exp::ChaosCell>& cells = sweep.cells;
  const telemetry::QuarantineManifest& quarantine = sweep.supervision.manifest;

  std::vector<std::string> headers{
      "scenario",  "scheme",      "unfinished", "mean FCT (ms)",
      "median FCT (ms)"};
  if (opt.percentiles) {
    headers.insert(headers.end(), {"p50 (ms)", "p99 (ms)", "p99.9 (ms)"});
  }
  headers.insert(headers.end(),
                 {"timeouts", "retx", "proactive retx", "fault drops",
                  "corrupt rej", "dup rej", "audit", "status"});
  stats::Table table{std::move(headers)};
  std::size_t unfinished_total = 0;
  std::uint64_t violations_total = 0;
  bool all_deterministic = true;
  for (const exp::ChaosCell& cell : cells) {
    // Quarantined cells carry the partial state of their last attempt;
    // they are accounted for by the quarantine manifest, not by the
    // completed-cell acceptance bars.
    if (!cell.quarantined) {
      unfinished_total += cell.unfinished;
      violations_total += cell.audit_violations;
      all_deterministic = all_deterministic && cell.deterministic;
    }
    std::string status = "ok";
    if (cell.quarantined) {
      status = std::string{"QUARANTINED:"} + std::string{to_string(cell.trip)};
    } else if (cell.attempts > 1) {
      status = "retried x" + std::to_string(cell.attempts - 1);
    }
    std::vector<std::string> row{cell.scenario, bench::display(cell.scheme),
                                 std::to_string(cell.unfinished),
                                 stats::Table::num(cell.mean_fct_ms, 1),
                                 stats::Table::num(cell.median_fct_ms, 1)};
    if (opt.percentiles) {
      row.insert(row.end(), {stats::Table::num(cell.p50_fct_ms, 1),
                             stats::Table::num(cell.p99_fct_ms, 1),
                             stats::Table::num(cell.p999_fct_ms, 1)});
    }
    row.insert(row.end(),
               {stats::Table::num(cell.mean_timeouts, 2),
                stats::Table::num(cell.mean_normal_retx, 2),
                stats::Table::num(cell.mean_proactive_retx, 2),
                std::to_string(cell.fault_drops),
                std::to_string(cell.corrupted_rejected),
                std::to_string(cell.duplicate_rejected),
                cell.audit_violations == 0 ? "ok" : "VIOLATION", status});
    table.add_row(std::move(row));
  }
  table.print();
  bench::maybe_write_csv(opt, "ext_chaos_matrix", table);

  if (!opt.telemetry_dir.empty()) {
    // Showcase cell: re-run the adversarial Halfback cell with a bench-owned
    // hub. Wall clocks are banned inside src/ (lint rule "nondeterminism"),
    // so this is where the manifest's wall time gets stamped — and where the
    // registry's RTT histogram prints inline via stats::ascii_histogram.
    exp::EmulabRunner::Config runner_config = config.runner;
    for (const exp::ChaosScenario& s : exp::chaos_catalog()) {
      if (s.name == "adversarial") runner_config.faults = s.faults;
    }
    telemetry::Hub hub;
    runner_config.telemetry = &hub;
    // Full observability for the showcase: the in-sim cost profiler rides
    // the instrumented dispatch loop and lands in the manifest's "profile"
    // table (dispatch counts deterministic, cycle columns not).
    sim::DispatchProfiler profiler;
    runner_config.profiler = &profiler;
    exp::EmulabRunner runner{runner_config};
    exp::WorkloadPart part;
    part.scheme = schemes::Scheme::halfback;
    for (std::size_t i = 0; i < config.flows_per_cell; ++i) {
      workload::FlowArrival arrival;
      arrival.at = config.arrival_spacing * static_cast<double>(i);
      arrival.bytes = config.flow_bytes;
      part.schedule.push_back(arrival);
    }
    const auto wall_start = std::chrono::steady_clock::now();
    const exp::RunResult run = runner.run({part});
    telemetry::RunManifest manifest =
        runner.manifest(run, "chaos:adversarial:showcase");
    manifest.scheme = schemes::name(schemes::Scheme::halfback);
    manifest.wall_time_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    const std::string stem = opt.telemetry_dir + "/showcase-halfback";
    {
      // Full-hub overload: tape events plus nested B/E span events (pid 3).
      std::ofstream out{stem + ".trace.json"};
      telemetry::write_chrome_trace(out, hub, run.sim_end);
    }
    {
      std::ofstream out{stem + ".metrics.jsonl"};
      telemetry::write_metrics_jsonl(out, hub.registry());
    }
    {
      std::ofstream out{stem + ".spans.jsonl"};
      telemetry::write_spans_jsonl(out, hub.spans(), run.sim_end);
    }
    {
      std::ofstream out{stem + ".series.jsonl"};
      telemetry::write_timeseries_jsonl(out, hub);
    }
    {
      std::ofstream out{stem + ".manifest.json"};
      telemetry::write_manifest_json(out, manifest, &hub.registry());
    }
    stats::HistogramOptions histogram_options;
    histogram_options.width = 48;
    histogram_options.max_rows = 16;
    histogram_options.unit = "ms";
    histogram_options.title = "\nRTT samples, adversarial cell (halfback):";
    std::printf("%s", stats::ascii_histogram(
                          telemetry::histogram_bins(*hub.transport().rtt, 1e6),
                          histogram_options)
                          .c_str());
    std::printf("telemetry written to %s (matrix cells + showcase)\n",
                opt.telemetry_dir.c_str());
  }

  // Completeness accounting: every cell is attempted; quarantined cells are
  // excluded from the acceptance bars above but never silently dropped.
  std::printf(
      "\nsupervision: %llu attempted / %llu completed / %llu quarantined, "
      "%llu retries\n",
      static_cast<unsigned long long>(quarantine.attempted),
      static_cast<unsigned long long>(quarantine.completed),
      static_cast<unsigned long long>(quarantine.quarantined),
      static_cast<unsigned long long>(quarantine.retries));
  if (!quarantine.clean()) {
    std::printf("quarantine manifest:\n%s",
                telemetry::quarantine_json(quarantine).c_str());
  }
  if (!opt.quarantine_path.empty()) {
    std::ofstream out{opt.quarantine_path};
    telemetry::write_quarantine_json(out, quarantine);
    std::printf("wrote %s\n", opt.quarantine_path.c_str());
  }

  std::printf("\n%zu cells, %zu unfinished flows, %llu audit violations%s\n",
              cells.size(), unfinished_total,
              static_cast<unsigned long long>(violations_total),
              config.verify_determinism
                  ? (all_deterministic ? ", all cells deterministic"
                                       : ", DETERMINISM FAILURE")
                  : "");
  const bool quarantine_ok = quarantine.clean() || opt.allow_quarantine;
  const bool ok = unfinished_total == 0 && violations_total == 0 &&
                  all_deterministic && quarantine_ok;
  if (!ok) {
    std::printf("CHAOS MATRIX FAILED%s\n",
                !quarantine_ok ? " (quarantined cells; pass "
                                 "--allow-quarantine to accept partial results)"
                               : "");
  }
  return ok ? 0 : 1;
}
