// Extension bench (robustness): the chaos matrix. The paper argues
// Halfback runs short flows "quickly and safely"; safety there is
// established under i.i.d. loss. This bench drives every scheme through
// the netfault scenario catalog — bursty loss, reordering, duplication,
// corruption, blackouts, link flapping, delay spikes, and an
// everything-at-once composite — on the Emulab dumbbell, and reports FCT
// plus recovery/rejection counters per cell. Acceptance bar: every flow
// completes in every cell, every cell passes the invariant audit, and
// (under --full) every cell re-runs to a bit-identical trace hash.
#include <cstdio>

#include "common.h"
#include "exp/chaos.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Extension: chaos matrix",
                      "fault-injection catalog x schemes on the Emulab dumbbell",
                      opt);

  exp::ChaosSweepConfig config;
  config.runner.seed = opt.seed;
  config.threads = opt.threads;
  // Quick mode keeps the matrix small enough for CI smoke; --full runs the
  // paper's whole comparison set and proves per-cell determinism by
  // re-running every cell.
  const std::vector<schemes::Scheme> quick_schemes{
      schemes::Scheme::tcp, schemes::Scheme::tcp10, schemes::Scheme::proactive,
      schemes::Scheme::halfback};
  std::span<const schemes::Scheme> scheme_set =
      opt.full ? schemes::evaluation_set()
               : std::span<const schemes::Scheme>{quick_schemes};
  config.verify_determinism = opt.full;

  const std::vector<exp::ChaosCell> cells = exp::chaos_sweep(config, scheme_set);

  stats::Table table{{"scenario", "scheme", "unfinished", "mean FCT (ms)",
                      "median FCT (ms)", "timeouts", "retx", "proactive retx",
                      "fault drops", "corrupt rej", "dup rej", "audit"}};
  std::size_t unfinished_total = 0;
  std::uint64_t violations_total = 0;
  bool all_deterministic = true;
  for (const exp::ChaosCell& cell : cells) {
    unfinished_total += cell.unfinished;
    violations_total += cell.audit_violations;
    all_deterministic = all_deterministic && cell.deterministic;
    table.add_row({cell.scenario, bench::display(cell.scheme),
                   std::to_string(cell.unfinished),
                   stats::Table::num(cell.mean_fct_ms, 1),
                   stats::Table::num(cell.median_fct_ms, 1),
                   stats::Table::num(cell.mean_timeouts, 2),
                   stats::Table::num(cell.mean_normal_retx, 2),
                   stats::Table::num(cell.mean_proactive_retx, 2),
                   std::to_string(cell.fault_drops),
                   std::to_string(cell.corrupted_rejected),
                   std::to_string(cell.duplicate_rejected),
                   cell.audit_violations == 0 ? "ok" : "VIOLATION"});
  }
  table.print();
  bench::maybe_write_csv(opt, "ext_chaos_matrix", table);

  std::printf("\n%zu cells, %zu unfinished flows, %llu audit violations%s\n",
              cells.size(), unfinished_total,
              static_cast<unsigned long long>(violations_total),
              config.verify_determinism
                  ? (all_deterministic ? ", all cells deterministic"
                                       : ", DETERMINISM FAILURE")
                  : "");
  const bool ok =
      unfinished_total == 0 && violations_total == 0 && all_deterministic;
  if (!ok) std::printf("CHAOS MATRIX FAILED\n");
  return ok ? 0 : 1;
}
