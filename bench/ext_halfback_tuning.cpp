// Extension bench: the two Halfback refinements the paper proposes but
// does not evaluate —
//   * §4.2.4: an initial burst (a TCP-10-style window) before the Pacing
//     Phase, to fix the small-flow region where TCP-Cache/TCP-10 win;
//   * §5: tuning the proactive bandwidth ("two retransmissions for every
//     three ACKs" instead of one per ACK).
#include <cstdio>

#include "common.h"
#include "exp/emulab.h"
#include "exp/parallel.h"
#include "stats/table.h"

using namespace halfback;

namespace {

struct Variant {
  const char* name;
  schemes::HalfbackConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Extension: Halfback tuning",
                      "initial-burst refinement and ROPR bandwidth ratio", opt);

  std::vector<Variant> variants;
  variants.push_back({"halfback (paper)", {}});
  {
    schemes::HalfbackConfig c;
    c.initial_burst_segments = 10;
    variants.push_back({"+10-segment initial burst", c});
  }
  {
    schemes::HalfbackConfig c;
    c.copies_per_ack = 2.0 / 3.0;
    variants.push_back({"2 copies per 3 ACKs", c});
  }
  {
    schemes::HalfbackConfig c;
    c.copies_per_ack = 0.5;
    variants.push_back({"1 copy per 2 ACKs", c});
  }

  // Part 1: small-flow FCT (the §4.2.4 motivation) on an idle path.
  std::printf("(a) FCT by flow size on an idle path (ms)\n");
  const std::vector<std::uint64_t> sizes_kb{5, 15, 30, 60, 100};
  std::vector<std::string> header{"variant"};
  for (std::uint64_t kb : sizes_kb) header.push_back(std::to_string(kb) + "KB");
  stats::Table small{header};
  for (const Variant& v : variants) {
    std::vector<std::string> row{v.name};
    for (std::uint64_t kb : sizes_kb) {
      exp::EmulabRunner::Config config;
      config.seed = opt.seed;
      config.halfback_config = v.config;
      exp::EmulabRunner runner{config};
      exp::WorkloadPart part{schemes::Scheme::halfback,
                             {{sim::Time::zero(), kb * 1000}},
                             exp::FlowRole::primary,
                             {}};
      exp::RunResult run = runner.run({part});
      row.push_back(stats::Table::num(run.mean_fct_ms(exp::FlowRole::primary), 0));
    }
    small.add_row(row);
  }
  small.print();

  // Part 2: overhead and FCT under a 45% all-short workload — the ratio
  // trades proactive bandwidth against recovery speed (§5's open
  // question).
  std::printf("\n(b) 100 KB flows at 45%% utilization: overhead vs latency\n");
  const double duration_s = opt.duration_s > 0 ? opt.duration_s : 40.0;
  sim::Random rng{opt.seed * 3};
  workload::ScheduleConfig sc;
  sc.duration = sim::Time::seconds(duration_s);
  sc.bottleneck = sim::DataRate::megabits_per_second(15);
  sc.target_utilization = 0.45;
  auto schedule = workload::make_schedule(workload::FlowSizeDist::fixed(100'000), sc, rng);

  stats::Table load{{"variant", "mean FCT (ms)", "median (ms)",
                     "proactive retx/flow", "timeouts/flow"}};
  std::vector<std::vector<std::string>> rows(variants.size());
  exp::parallel_for(
      variants.size(),
      [&](std::size_t i) {
        exp::EmulabRunner::Config config;
        config.seed = opt.seed;
        config.halfback_config = variants[i].config;
        exp::EmulabRunner runner{config};
        exp::RunResult run = runner.run(
            {exp::WorkloadPart{schemes::Scheme::halfback, schedule,
                               exp::FlowRole::primary, {}}});
        stats::Summary fct = run.fct_ms(exp::FlowRole::primary);
        stats::Summary proactive =
            run.metric(exp::FlowRole::primary, [](const exp::FlowResult& f) {
              return static_cast<double>(f.record.proactive_retx);
            });
        stats::Summary timeouts =
            run.metric(exp::FlowRole::primary, [](const exp::FlowResult& f) {
              return static_cast<double>(f.record.timeouts);
            });
        rows[i] = {variants[i].name, stats::Table::num(fct.mean(), 0),
                   stats::Table::num(fct.median(), 0),
                   stats::Table::num(proactive.mean(), 1),
                   stats::Table::num(timeouts.mean(), 2)};
      },
      opt.threads);
  for (auto& row : rows) load.add_row(std::move(row));
  load.print();
  std::printf(
      "\nThe ratio dial trades proactive bandwidth (copies/flow) against\n"
      "timeout exposure — the \"interesting open question\" of §5.\n");
  return 0;
}
