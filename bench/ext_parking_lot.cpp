// Extension bench (paper §7 future work: "emulation with more complex
// topologies"): short flows traversing a multi-bottleneck parking-lot
// chain while per-hop TCP cross traffic loads every hop independently.
//
// The question: does Halfback's single-RTT pacing + ROPR still pay off
// when the flow must survive several independently-congested queues, where
// the end-to-end RTT (the pacing budget) is the *sum* of hop RTTs but the
// congestion signal is per hop?
#include <cstdio>

#include "common.h"
#include "exp/parallel.h"
#include "net/topology.h"
#include "schemes/factory.h"
#include "stats/summary.h"
#include "workload/flow_schedule.h"
#include "stats/table.h"
#include "transport/agent.h"

using namespace halfback;

namespace {

struct Result {
  stats::Summary fct_ms;
  double timeouts = 0;
  std::size_t flows = 0;
};

Result run_chain(schemes::Scheme scheme, int hops, double cross_utilization,
                 std::uint64_t seed, double duration_s) {
  sim::Simulator simulator{seed};
  net::Network network{simulator};
  net::ParkingLotConfig topo;
  topo.hops = hops;
  net::ParkingLot lot = net::build_parking_lot(network, topo);

  std::vector<std::unique_ptr<transport::TransportAgent>> agents;
  auto agent_for = [&](net::NodeId id) -> transport::TransportAgent& {
    agents.push_back(std::make_unique<transport::TransportAgent>(simulator, network, id));
    return *agents.back();
  };
  transport::TransportAgent& main_sender = agent_for(lot.main_sender);
  agent_for(lot.main_receiver);
  std::vector<transport::TransportAgent*> cross_agents;
  for (int h = 0; h < hops; ++h) {
    cross_agents.push_back(&agent_for(lot.cross_senders[static_cast<std::size_t>(h)]));
    agent_for(lot.cross_receivers[static_cast<std::size_t>(h)]);
  }

  schemes::SchemeContext context;
  net::FlowId next_flow = 1;

  // Per-hop cross traffic: TCP flows at the requested hop utilization.
  sim::Random rng{seed * 31};
  workload::ScheduleConfig sc;
  sc.target_utilization = cross_utilization;
  sc.bottleneck = topo.bottleneck_rate;
  sc.duration = sim::Time::seconds(duration_s);
  for (int h = 0; h < hops; ++h) {
    auto schedule =
        workload::make_schedule(workload::FlowSizeDist::fixed(100'000), sc, rng);
    for (const workload::FlowArrival& arrival : schedule) {
      const net::FlowId flow = next_flow++;
      simulator.schedule_at(arrival.at, [&, h, flow, bytes = arrival.bytes] {
        auto sender = schemes::make_sender(
            schemes::Scheme::tcp, context, simulator,
            network.node(lot.cross_senders[static_cast<std::size_t>(h)]),
            lot.cross_receivers[static_cast<std::size_t>(h)], flow, bytes);
        cross_agents[static_cast<std::size_t>(h)]->start_flow(std::move(sender));
      });
    }
  }

  // Main path: a 100 KB flow of the scheme under test every ~2 s.
  Result result;
  std::vector<transport::SenderBase*> main_flows;
  for (double t = 1.0; t < duration_s; t += 2.0) {
    const net::FlowId flow = next_flow++;
    simulator.schedule_at(sim::Time::seconds(t), [&, flow] {
      auto sender =
          schemes::make_sender(scheme, context, simulator,
                               network.node(lot.main_sender), lot.main_receiver,
                               flow, 100'000);
      main_flows.push_back(&main_sender.start_flow(std::move(sender)));
    });
  }
  simulator.run_until(sim::Time::seconds(duration_s + 30));

  for (transport::SenderBase* flow : main_flows) {
    ++result.flows;
    result.fct_ms.add(flow->complete()
                          ? flow->record().fct().to_ms()
                          : (simulator.now() - flow->record().start_time).to_ms());
    result.timeouts += flow->record().timeouts;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Extension: parking lot",
                      "short flows across multi-bottleneck chains", opt);

  const double duration_s = opt.duration_s > 0 ? opt.duration_s : (opt.full ? 120 : 40);
  constexpr std::array<schemes::Scheme, 4> kSet{
      schemes::Scheme::tcp, schemes::Scheme::tcp10, schemes::Scheme::jumpstart,
      schemes::Scheme::halfback};
  const std::vector<int> hop_counts{1, 2, 4};
  const std::vector<double> cross_utils{0.2, 0.5};

  struct Job {
    int hops;
    double util;
    schemes::Scheme scheme;
    Result result;
  };
  std::vector<Job> jobs;
  for (int hops : hop_counts) {
    for (double util : cross_utils) {
      for (schemes::Scheme s : kSet) jobs.push_back({hops, util, s, {}});
    }
  }
  exp::parallel_for(
      jobs.size(),
      [&](std::size_t i) {
        jobs[i].result = run_chain(jobs[i].scheme, jobs[i].hops, jobs[i].util,
                                   opt.seed, duration_s);
      },
      opt.threads);

  stats::Table table{{"hops", "cross util %", "scheme", "mean FCT (ms)",
                      "median (ms)", "timeouts/flow"}};
  for (const Job& job : jobs) {
    table.add_row({std::to_string(job.hops), stats::Table::num(100 * job.util, 0),
                   bench::display(job.scheme),
                   stats::Table::num(job.result.fct_ms.mean(), 0),
                   stats::Table::num(job.result.fct_ms.median(), 0),
                   stats::Table::num(job.result.timeouts /
                                         static_cast<double>(job.result.flows),
                                     2)});
  }
  table.print();
  std::printf(
      "\nWith more hops the end-to-end RTT grows, so pacing spreads further\n"
      "and every hop's cross traffic gets a chance to clip the batch; ROPR\n"
      "must recover losses whose signals take the full path RTT to return.\n");
  return 0;
}
