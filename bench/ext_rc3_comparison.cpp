// Extension bench: RC3 vs Halfback — the §3.2 comparison made
// quantitative. RC3 reaches low FCT by blasting the rest of the flow at
// line rate into an in-network low-priority band; Halfback reaches it by
// pacing plus ACK-clocked proactive recovery on an unmodified network.
//
// Three deployments, same workload (100 KB flows at several utilizations):
//   * priority bottleneck + RC3 (RC3 as intended)
//   * drop-tail bottleneck + RC3 (misdeployed: no in-network support)
//   * drop-tail bottleneck + Halfback / TCP (sender-side only)
#include <cstdio>

#include "common.h"
#include "exp/emulab.h"
#include "exp/parallel.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Extension: RC3 vs Halfback",
                      "in-network priority vs sender-only recovery", opt);

  struct Cell {
    const char* deployment;
    net::QueueKind queue;
    schemes::Scheme scheme;
    double mean_fct_ms = 0.0;
    double median_fct_ms = 0.0;
    double proactive = 0.0;
    double drops_per_flow = 0.0;
  };

  const double duration_s = opt.duration_s > 0 ? opt.duration_s : 30.0;
  const std::vector<double> utils{0.20, 0.50};

  std::vector<Cell> cells;
  for (double util : utils) {
    (void)util;
    cells.push_back({"priority queue", net::QueueKind::priority, schemes::Scheme::rc3});
    cells.push_back({"drop-tail (misdeployed)", net::QueueKind::drop_tail,
                     schemes::Scheme::rc3});
    cells.push_back({"drop-tail", net::QueueKind::drop_tail, schemes::Scheme::halfback});
    cells.push_back({"drop-tail", net::QueueKind::drop_tail, schemes::Scheme::tcp});
  }
  const std::size_t per_util = cells.size() / utils.size();

  exp::parallel_for(
      cells.size(),
      [&](std::size_t i) {
        Cell& cell = cells[i];
        const double util = utils[i / per_util];
        sim::Random rng{opt.seed * 71 + i / per_util};
        workload::ScheduleConfig sc;
        sc.target_utilization = util;
        sc.bottleneck = sim::DataRate::megabits_per_second(15);
        sc.duration = sim::Time::seconds(duration_s);
        auto schedule =
            workload::make_schedule(workload::FlowSizeDist::fixed(100'000), sc, rng);

        exp::EmulabRunner::Config config;
        config.seed = opt.seed;
        config.dumbbell.bottleneck_queue = cell.queue;
        exp::EmulabRunner runner{config};
        exp::RunResult run = runner.run(
            {exp::WorkloadPart{cell.scheme, schedule, exp::FlowRole::primary, {}}});
        stats::Summary fct = run.fct_ms(exp::FlowRole::primary);
        cell.mean_fct_ms = fct.mean();
        cell.median_fct_ms = fct.median();
        stats::Summary proactive =
            run.metric(exp::FlowRole::primary, [](const exp::FlowResult& f) {
              return static_cast<double>(f.record.proactive_retx);
            });
        cell.proactive = proactive.mean();
        cell.drops_per_flow = static_cast<double>(run.bottleneck_drops_total) /
                              static_cast<double>(run.flows.size());
      },
      opt.threads);

  stats::Table table{{"util %", "deployment", "scheme", "mean FCT (ms)",
                      "median (ms)", "extra copies/flow", "drops/flow"}};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    table.add_row({stats::Table::num(100.0 * utils[i / per_util], 0),
                   cell.deployment, bench::display(cell.scheme),
                   stats::Table::num(cell.mean_fct_ms, 0),
                   stats::Table::num(cell.median_fct_ms, 0),
                   stats::Table::num(cell.proactive, 1),
                   stats::Table::num(cell.drops_per_flow, 1)});
  }
  table.print();
  std::printf(
      "\n§3.2's contrast quantified: with its in-network band, RC3 matches\n"
      "the paced schemes' latency at ~100%% copy overhead that cannot harm\n"
      "anyone; misdeployed on drop-tail, the same line-rate burst becomes a\n"
      "liability. Halfback gets there with ~50%% ACK-clocked copies and no\n"
      "network changes — the deployability trade the paper argues for.\n");
  return 0;
}
