// Fig. 1 — the headline trade-off scatter: common-case latency (mean FCT
// at low utilization) against feasible capacity under the pessimistic
// all-short-flow workload. Derived from the same sweep as Fig. 12.
#include <cstdio>

#include "common.h"
#include "exp/sweep.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 1", "latency vs feasible-capacity trade-off", opt);

  exp::UtilizationSweepConfig config;
  config.runner.seed = opt.seed;
  config.threads = opt.threads;
  config.replications = opt.replications;
  config.duration =
      sim::Time::seconds(opt.duration_s > 0 ? opt.duration_s : (opt.full ? 120.0 : 40.0));
  if (opt.full) {
    for (int u = 5; u <= 90; u += 5) config.utilizations.push_back(u / 100.0);
  } else {
    config.utilizations = {0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.90};
  }

  auto cells = exp::utilization_sweep(config, schemes::evaluation_set());
  auto capacity = exp::feasible_capacities(
      cells, {}, [](const exp::SweepCell& c) { return c.median_fct_ms; });
  auto latency = exp::low_load_fct(cells);

  stats::Table table{{"scheme", "feasible capacity (% util)", "low-load FCT (ms)"}};
  for (schemes::Scheme s : schemes::evaluation_set()) {
    table.add_row({bench::display(s), stats::Table::num(100.0 * capacity[s], 0),
                   stats::Table::num(latency[s], 0)});
  }
  table.print();
  bench::maybe_write_csv(opt, "fig01_tradeoff", table);
  std::printf(
      "\npaper shape: Halfback sits on the frontier — lowest latency band "
      "(~with JumpStart) at substantially higher feasible capacity; TCP "
      "family is safe but slow; Proactive is neither.\n");
  return 0;
}
