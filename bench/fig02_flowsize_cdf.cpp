// Fig. 2 — CDF of the fraction of *traffic* (bytes) carried by flows of
// each size, for the Internet / private DC / public DC distributions.
#include <cstdio>

#include "common.h"
#include "stats/table.h"
#include "workload/flow_size.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 2", "fraction of traffic by flow size", opt);

  const workload::FlowSizeDist dists[] = {
      workload::FlowSizeDist::internet(),
      workload::FlowSizeDist::benson(),
      workload::FlowSizeDist::vl2(),
  };

  stats::Table table{{"distribution", "mean flow (KB)", "bytes in flows <141KB (%)",
                      "flows <100KB (%)"}};
  sim::Random rng{opt.seed};
  for (const workload::FlowSizeDist& d : dists) {
    int below = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      if (d.sample(rng) < 100'000) ++below;
    }
    table.add_row({d.name(), stats::Table::num(d.mean_bytes() / 1000.0, 1),
                   stats::Table::num(100.0 * d.byte_weighted_cdf(141'000), 1),
                   stats::Table::num(100.0 * below / n, 1)});
  }
  table.print();
  std::printf("\npaper anchors: Internet 34.7%% of bytes < 141 KB; data centers < 1%%\n\n");

  for (const workload::FlowSizeDist& d : dists) {
    std::vector<std::pair<double, double>> points;
    for (double b = d.min_bytes(); b <= d.max_bytes() * 1.0001; b *= 1.6) {
      points.emplace_back(b, d.byte_weighted_cdf(b));
    }
    stats::print_series(std::string("Fig 2 — ") + d.name(), "flow_size_bytes",
                        "fraction_of_traffic", points);
  }
  return 0;
}
