// Fig. 5 — CDF and complementary CDF of the number of *normal* TCP
// retransmissions per 100 KB flow across the path ensemble (§4.2.1).
#include <cstdio>

#include "planetlab_common.h"
#include "stats/summary.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 5", "normal retransmissions per short flow", opt);

  bench::PlanetLabCampaign campaign = bench::run_planetlab_campaign(opt);

  stats::Table table{{"scheme", "mean retx", "p90", "p99", "% trials with 0 retx"}};
  std::map<schemes::Scheme, stats::Summary> retx;
  for (const auto& [scheme, trials] : campaign.trials) {
    for (const auto& t : trials) {
      retx[scheme].add(static_cast<double>(t.record.normal_retx));
    }
  }
  for (const auto& [scheme, s] : retx) {
    table.add_row({bench::display(scheme), stats::Table::num(s.mean(), 2),
                   stats::Table::num(s.percentile(90), 0),
                   stats::Table::num(s.percentile(99), 0),
                   stats::Table::num(100.0 * s.fraction_at_most(0.0), 1)});
  }
  table.print();
  std::printf("\n");

  for (const auto& [scheme, s] : retx) {
    std::vector<std::pair<double, double>> points;
    for (const auto& p : s.cdf(40)) points.emplace_back(p.value, p.percent);
    stats::print_series(std::string("Fig 5a CDF — ") + bench::display(scheme),
                        "normal_retransmissions", "percent_of_trials", points);
  }
  for (const auto& [scheme, s] : retx) {
    std::vector<std::pair<double, double>> points;
    for (const auto& p : s.ccdf(40)) {
      if (p.percent > 0) points.emplace_back(p.value, p.percent);
    }
    stats::print_series(std::string("Fig 5b CCDF — ") + bench::display(scheme),
                        "normal_retransmissions", "percent_of_trials", points);
  }
  return 0;
}
