// Fig. 6 — CDF and complementary CDF of flow completion time for 100 KB
// flows across the wide-area path ensemble (§4.2.1). Also prints the
// §4.2.1 headline summary: mean FCT per scheme and Halfback's reductions.
#include <cstdio>

#include "planetlab_common.h"
#include "stats/summary.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 6", "FCT of short flows across the path ensemble", opt);

  bench::PlanetLabCampaign campaign = bench::run_planetlab_campaign(opt);

  std::map<schemes::Scheme, stats::Summary> fct;
  for (const auto& [scheme, trials] : campaign.trials) {
    for (const auto& t : trials) fct[scheme].add(t.record.fct().to_ms());
  }

  stats::Table summary{{"scheme", "mean FCT (ms)", "median (ms)", "p99 (ms)"}};
  for (const auto& [scheme, s] : fct) {
    summary.add_row({bench::display(scheme), stats::Table::num(s.mean(), 0),
                     stats::Table::num(s.median(), 0),
                     stats::Table::num(s.percentile(99), 0)});
  }
  summary.print();
  bench::maybe_write_csv(opt, "fig06_fct_summary", summary);

  const stats::Summary& halfback = fct.at(schemes::Scheme::halfback);
  const stats::Summary& jumpstart = fct.at(schemes::Scheme::jumpstart);
  const stats::Summary& tcp = fct.at(schemes::Scheme::tcp);
  const stats::Summary& tcp10 = fct.at(schemes::Scheme::tcp10);
  std::printf(
      "\nSummary (§4.2.1): Halfback mean %.0f ms vs JumpStart %.0f ms "
      "(%.0f%% lower), TCP %.0f ms (%.0f%% lower), TCP-10 %.0f ms\n",
      halfback.mean(), jumpstart.mean(),
      100.0 * (1.0 - halfback.mean() / jumpstart.mean()), tcp.mean(),
      100.0 * (1.0 - halfback.mean() / tcp.mean()), tcp10.mean());
  std::printf(
      "99th percentile: Halfback = %.1f%% of TCP's, %.1f%% of TCP-10's, "
      "%.1f%% of JumpStart's\n\n",
      100.0 * halfback.percentile(99) / tcp.percentile(99),
      100.0 * halfback.percentile(99) / tcp10.percentile(99),
      100.0 * halfback.percentile(99) / jumpstart.percentile(99));

  for (const auto& [scheme, s] : fct) {
    std::vector<std::pair<double, double>> points;
    for (const auto& p : s.cdf(60)) points.emplace_back(p.value, p.percent);
    stats::print_series(std::string("Fig 6a CDF — ") + bench::display(scheme),
                        "latency_ms", "percent_of_trials", points);
  }
  for (const auto& [scheme, s] : fct) {
    std::vector<std::pair<double, double>> points;
    for (const auto& p : s.ccdf(60)) {
      if (p.percent > 0) points.emplace_back(p.value, p.percent);
    }
    stats::print_series(std::string("Fig 6b CCDF — ") + bench::display(scheme),
                        "latency_ms", "percent_of_trials", points);
  }
  return 0;
}
