// Fig. 7 — CDF and complementary CDF of the number of RTTs each short flow
// needed (FCT normalized by the path RTT, §4.2.1): ~60% of paced-scheme
// flows finish in ~2 RTTs, a third of TCP's count.
#include <cstdio>

#include "planetlab_common.h"
#include "stats/summary.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 7", "RTTs used per short flow", opt);

  bench::PlanetLabCampaign campaign = bench::run_planetlab_campaign(opt);

  std::map<schemes::Scheme, stats::Summary> rtts;
  for (const auto& [scheme, trials] : campaign.trials) {
    for (const auto& t : trials) rtts[scheme].add(t.record.rtts_used());
  }

  stats::Table table{
      {"scheme", "mean RTTs", "median", "p99", "% finished within ~2 data RTTs"}};
  for (const auto& [scheme, s] : rtts) {
    table.add_row({bench::display(scheme), stats::Table::num(s.mean(), 1),
                   stats::Table::num(s.median(), 1),
                   stats::Table::num(s.percentile(99), 0),
                   stats::Table::num(100.0 * s.fraction_at_most(3.2), 1)});
  }
  table.print();
  std::printf("\n");

  for (const auto& [scheme, s] : rtts) {
    std::vector<std::pair<double, double>> points;
    for (const auto& p : s.cdf(40)) points.emplace_back(p.value, p.percent);
    stats::print_series(std::string("Fig 7a CDF — ") + bench::display(scheme),
                        "number_of_rtts", "percent_of_trials", points);
  }
  for (const auto& [scheme, s] : rtts) {
    std::vector<std::pair<double, double>> points;
    for (const auto& p : s.ccdf(40)) {
      if (p.percent > 0) points.emplace_back(p.value, p.percent);
    }
    stats::print_series(std::string("Fig 7b CCDF — ") + bench::display(scheme),
                        "number_of_rtts", "percent_of_trials", points);
  }
  return 0;
}
