// Fig. 8 — CDF of FCT restricted to the trials where packet loss happened
// (§4.2.1): Halfback's ROPR wins by ~20% median over JumpStart here.
#include <cstdio>

#include "planetlab_common.h"
#include "stats/summary.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 8", "FCT for trials that saw packet loss", opt);

  bench::PlanetLabCampaign campaign = bench::run_planetlab_campaign(opt);

  // "Loss happened" is judged per path from the union over schemes, so all
  // schemes are compared on the same subset of paths (as in the paper,
  // where the loss cases are the same network conditions).
  std::vector<bool> lossy(campaign.config.pair_count, false);
  for (const auto& [scheme, trials] : campaign.trials) {
    for (std::size_t i = 0; i < trials.size(); ++i) {
      if (trials[i].saw_loss) lossy[i] = true;
    }
  }
  int lossy_count = 0;
  for (bool b : lossy) lossy_count += b ? 1 : 0;
  std::printf("paths with loss in at least one scheme: %d / %d (%.0f%%)\n\n",
              lossy_count, campaign.config.pair_count,
              100.0 * lossy_count / campaign.config.pair_count);

  std::map<schemes::Scheme, stats::Summary> fct;
  for (const auto& [scheme, trials] : campaign.trials) {
    for (std::size_t i = 0; i < trials.size(); ++i) {
      if (lossy[i]) fct[scheme].add(trials[i].record.fct().to_ms());
    }
  }

  stats::Table table{{"scheme", "mean FCT (ms)", "median (ms)", "p90 (ms)"}};
  for (const auto& [scheme, s] : fct) {
    table.add_row({bench::display(scheme), stats::Table::num(s.mean(), 0),
                   stats::Table::num(s.median(), 0),
                   stats::Table::num(s.percentile(90), 0)});
  }
  table.print();

  const double h = fct.at(schemes::Scheme::halfback).median();
  const double j = fct.at(schemes::Scheme::jumpstart).median();
  std::printf(
      "\nHalfback median under loss: %.0f ms vs JumpStart %.0f ms "
      "(%.0f ms / %.0f%% reduction; paper: 193 ms / 21%%)\n\n",
      h, j, j - h, 100.0 * (1.0 - h / j));

  for (const auto& [scheme, s] : fct) {
    std::vector<std::pair<double, double>> points;
    for (const auto& p : s.cdf(40)) points.emplace_back(p.value, p.percent);
    stats::print_series(std::string("Fig 8 CDF — ") + bench::display(scheme),
                        "latency_ms", "percent_of_trials", points);
  }
  return 0;
}
