// Fig. 9 — FCT CDFs of Halfback vs TCP behind four residential access
// profiles (§4.2.2).
#include <cstdio>

#include "common.h"
#include "exp/homenet.h"
#include "stats/summary.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 9", "FCT on home access networks", opt);

  exp::HomeNetConfig config;
  config.server_count = opt.pairs > 0 ? opt.pairs : (opt.full ? 170 : 60);
  config.seed = opt.seed * 7;
  config.threads = opt.threads;
  exp::HomeNetEnv env{config};

  stats::Table table{{"profile", "scheme", "median FCT (ms)", "mean (ms)",
                      "median reduction vs TCP (%)"}};
  for (const exp::HomeNetProfile& profile : exp::home_profiles()) {
    stats::Summary halfback, tcp;
    for (const auto& t : env.run(schemes::Scheme::halfback, profile)) {
      halfback.add(t.record.fct().to_ms());
    }
    for (const auto& t : env.run(schemes::Scheme::tcp, profile)) {
      tcp.add(t.record.fct().to_ms());
    }
    table.add_row({profile.name, "Halfback", stats::Table::num(halfback.median(), 0),
                   stats::Table::num(halfback.mean(), 0),
                   stats::Table::num(100.0 * (1.0 - halfback.median() / tcp.median()), 0)});
    table.add_row({profile.name, "TCP", stats::Table::num(tcp.median(), 0),
                   stats::Table::num(tcp.mean(), 0), "-"});

    std::vector<std::pair<double, double>> hp, tp;
    for (const auto& p : halfback.cdf(40)) hp.emplace_back(p.value, p.percent);
    for (const auto& p : tcp.cdf(40)) tp.emplace_back(p.value, p.percent);
    stats::print_series(std::string("Fig 9 — Halfback - ") + profile.name,
                        "latency_ms", "fraction_of_trials", hp);
    stats::print_series(std::string("Fig 9 — TCP - ") + profile.name, "latency_ms",
                        "fraction_of_trials", tp);
  }
  std::printf("paper anchors: median FCT reduction 50%% (Comcast wired), 68%% "
              "(ConnectivityU wireless), 50%% (ConnectivityU wired), 18%% (AT&T)\n\n");
  table.print();
  return 0;
}
