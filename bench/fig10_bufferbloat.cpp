// Fig. 10 — effect of router buffer size (bufferbloat, §4.2.3): mean FCT
// (a) and number of normal retransmissions (b) of short flows sharing the
// bottleneck with one background TCP flow, short flows every ~10 s.
#include <cstdio>

#include "common.h"
#include "exp/emulab.h"
#include "exp/parallel.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 10", "FCT and retransmissions vs router buffer size",
                      opt);

  const std::vector<std::uint64_t> buffers_kb = {10,  25,  50,  75,  115,
                                                 150, 200, 300, 450, 600};
  const double duration_s =
      opt.duration_s > 0 ? opt.duration_s : (opt.full ? 600.0 : 60.0);
  const auto schemes_list = schemes::evaluation_set();

  struct Cell {
    double mean_fct_ms = 0.0;
    double mean_retx = 0.0;
  };
  std::vector<Cell> cells(buffers_kb.size() * schemes_list.size());

  // Short flows: exponential interarrival, mean 10 s. One shared schedule.
  sim::Random rng{opt.seed * 11};
  workload::ScheduleConfig sc;
  sc.duration = sim::Time::seconds(duration_s);
  sc.bottleneck = sim::DataRate::megabits_per_second(15);
  // 100 KB / 10 s over 15 Mbps ~ 0.4% utilization from shorts.
  sc.target_utilization = 100e3 / 10.0 / sc.bottleneck.bytes_per_second();
  auto shorts = workload::make_schedule(workload::FlowSizeDist::fixed(100'000), sc, rng);

  // Background: one TCP flow big enough to outlive the run, with a bulk
  // receive window large enough to fill even the 600 KB buffer (this is
  // what produces the bufferbloat: short flows keep the 141 KB default).
  const auto bg_bytes = static_cast<std::uint64_t>(
      sc.bottleneck.bytes_per_second() * duration_s * 1.2);
  std::vector<workload::FlowArrival> background{{sim::Time::zero(), bg_bytes}};
  transport::SenderConfig bulk_config;
  bulk_config.receive_window_segments = 1000;  // ~1.4 MB

  exp::parallel_for(
      cells.size(),
      [&](std::size_t i) {
        const std::size_t bi = i / schemes_list.size();
        const schemes::Scheme scheme = schemes_list[i % schemes_list.size()];
        exp::EmulabRunner::Config config;
        config.seed = opt.seed;
        config.dumbbell.bottleneck_buffer_bytes = buffers_kb[bi] * 1000;
        exp::EmulabRunner runner{config};
        exp::WorkloadPart bg{schemes::Scheme::tcp, background,
                             exp::FlowRole::background, bulk_config};
        exp::RunResult run = runner.run(
            {exp::WorkloadPart{scheme, shorts, exp::FlowRole::primary, {}}, bg});
        Cell cell;
        cell.mean_fct_ms = run.mean_fct_ms(exp::FlowRole::primary);
        stats::Summary retx =
            run.metric(exp::FlowRole::primary, [](const exp::FlowResult& f) {
              return static_cast<double>(f.record.normal_retx);
            });
        cell.mean_retx = retx.empty() ? 0.0 : retx.mean();
        cells[i] = cell;
      },
      opt.threads);

  std::printf("(a) mean flow completion time (ms)\n");
  std::vector<std::string> header{"buffer KB"};
  for (schemes::Scheme s : schemes_list) header.push_back(bench::display(s));
  stats::Table fct_table{header};
  for (std::size_t bi = 0; bi < buffers_kb.size(); ++bi) {
    std::vector<std::string> row{std::to_string(buffers_kb[bi])};
    for (std::size_t si = 0; si < schemes_list.size(); ++si) {
      row.push_back(stats::Table::num(cells[bi * schemes_list.size() + si].mean_fct_ms, 0));
    }
    fct_table.add_row(row);
  }
  fct_table.print();
  bench::maybe_write_csv(opt, "fig10_fct_vs_buffer", fct_table);

  std::printf("\n(b) mean number of normal retransmissions per flow\n");
  stats::Table retx_table{header};
  for (std::size_t bi = 0; bi < buffers_kb.size(); ++bi) {
    std::vector<std::string> row{std::to_string(buffers_kb[bi])};
    for (std::size_t si = 0; si < schemes_list.size(); ++si) {
      row.push_back(stats::Table::num(cells[bi * schemes_list.size() + si].mean_retx, 1));
    }
    retx_table.add_row(row);
  }
  retx_table.print();
  bench::maybe_write_csv(opt, "fig10_retx_vs_buffer", retx_table);
  std::printf(
      "\npaper anchors: paced schemes' FCT rises only ~500 ms from small to "
      "600 KB buffers vs TCP's ~1 s; at small buffers Halfback ~10%% of "
      "JumpStart's retransmissions and up to 45%% lower FCT\n");
  return 0;
}
