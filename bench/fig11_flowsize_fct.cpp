// Fig. 11 — FCT as a function of flow size at 25% utilization for the
// Internet / Benson / VL2 flow-size distributions, truncated at 1 MB
// (§4.2.4). This is where TCP-Cache beats Halfback for tens-of-KB flows.
#include <cstdio>

#include "common.h"
#include "exp/sweep.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 11", "FCT vs flow size at 25% utilization", opt);

  const workload::FlowSizeDist dists[] = {
      workload::FlowSizeDist::internet(),
      workload::FlowSizeDist::benson(),
      workload::FlowSizeDist::vl2(),
  };

  for (const workload::FlowSizeDist& dist : dists) {
    exp::FlowSizeSweepConfig config;
    config.runner.seed = opt.seed;
    config.sizes = dist;
    config.threads = opt.threads;
    config.bin_bytes = sim::Bytes::kilobytes(50);
    config.duration = sim::Time::seconds(
        opt.duration_s > 0 ? opt.duration_s : (opt.full ? 300.0 : 60.0));

    auto cells = exp::flow_size_sweep(config, schemes::evaluation_set());

    // Pivot into bin-by-scheme.
    std::map<double, std::map<schemes::Scheme, double>> by_bin;
    for (const exp::FlowSizeCell& c : cells) {
      by_bin[c.bin_center_kb][c.scheme] = c.mean_fct_ms;
    }
    std::vector<std::string> header{"flow size (KB)"};
    for (schemes::Scheme s : schemes::evaluation_set()) {
      header.push_back(bench::display(s));
    }
    stats::Table table{header};
    for (const auto& [bin, row_map] : by_bin) {
      std::vector<std::string> row{stats::Table::num(bin, 0)};
      for (schemes::Scheme s : schemes::evaluation_set()) {
        auto it = row_map.find(s);
        row.push_back(it == row_map.end() ? "-" : stats::Table::num(it->second, 0));
      }
      table.add_row(row);
    }
    std::printf("(%s) mean FCT (ms) per flow-size bin\n", dist.name().c_str());
    table.print();
    std::printf("\n");
  }
  std::printf(
      "paper shape: TCP-Cache (and narrowly TCP-10) lead for flows of a few "
      "tens of KB; beyond ~75 KB Halfback and JumpStart lead, up to ~300 ms "
      "below TCP.\n");
  return 0;
}
