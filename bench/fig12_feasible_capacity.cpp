// Fig. 12 — all-short-flow workload: mean FCT vs network utilization and
// the resulting feasible capacity per scheme (§4.3.1).
#include <cstdio>

#include "common.h"
#include "exp/sweep.h"
#include "stats/ascii_plot.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 12", "FCT vs utilization, short flows only", opt);

  exp::UtilizationSweepConfig config;
  config.runner.seed = opt.seed;
  config.threads = opt.threads;
  config.replications = opt.replications;
  config.duration =
      sim::Time::seconds(opt.duration_s > 0 ? opt.duration_s : (opt.full ? 120.0 : 40.0));
  if (opt.full) {
    for (int u = 5; u <= 90; u += 5) config.utilizations.push_back(u / 100.0);
  } else {
    config.utilizations = {0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.90};
  }

  auto cells = exp::utilization_sweep(config, schemes::evaluation_set());

  std::vector<std::string> header{"util %"};
  for (schemes::Scheme s : schemes::evaluation_set()) {
    header.push_back(bench::display(s));
  }
  stats::Table table{header};
  for (std::size_t u = 0; u < config.utilizations.size(); ++u) {
    std::vector<std::string> row{
        stats::Table::num(100.0 * config.utilizations[u], 0)};
    for (std::size_t si = 0; si < schemes::evaluation_set().size(); ++si) {
      row.push_back(
          stats::Table::num(cells[u * schemes::evaluation_set().size() + si].mean_fct_ms, 0));
    }
    table.add_row(row);
  }
  std::printf("mean FCT (ms) per utilization\n");
  table.print();
  bench::maybe_write_csv(opt, "fig12_fct_vs_utilization", table);

  std::vector<stats::PlotSeries> plot;
  for (std::size_t si = 0; si < schemes::evaluation_set().size(); ++si) {
    stats::PlotSeries series{bench::display(schemes::evaluation_set()[si]), {}};
    for (std::size_t u = 0; u < config.utilizations.size(); ++u) {
      series.points.emplace_back(
          100.0 * config.utilizations[u],
          cells[u * schemes::evaluation_set().size() + si].mean_fct_ms);
    }
    plot.push_back(std::move(series));
  }
  stats::PlotOptions plot_options;
  plot_options.title = "Fig. 12 — mean FCT vs utilization";
  plot_options.x_label = "utilization %";
  plot_options.y_label = "mean FCT (ms)";
  std::printf("\n%s", stats::ascii_plot(plot, plot_options).c_str());

  auto by_mean = exp::feasible_capacities(cells);
  auto by_median = exp::feasible_capacities(
      cells, {}, [](const exp::SweepCell& c) { return c.median_fct_ms; });
  stats::Table cap{{"scheme", "by mean FCT (% util)", "by median FCT (% util)"}};
  for (const auto& [scheme, capacity] : by_mean) {
    cap.add_row({bench::display(scheme), stats::Table::num(100.0 * capacity, 0),
                 stats::Table::num(100.0 * by_median[scheme], 0)});
  }
  std::printf(
      "\nfeasible capacity (collapse criterion: FCT statistic > 3x its "
      "low-load value;\nthe mean reacts to tail blowups, the median to "
      "collapse of the typical flow)\n");
  cap.print();
  bench::maybe_write_csv(opt, "fig12_feasible_capacity", cap);
  std::printf(
      "\npaper anchors: TCP/TCP-10/TCP-Cache/Reactive 85-90%%, Halfback ~70%%, "
      "JumpStart ~50%%, Proactive ~45%%\n");
  return 0;
}
