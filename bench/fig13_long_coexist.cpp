// Fig. 13 — short aggressive flows (10% of traffic) vs long TCP flows
// (90%): normalized FCT of each population across utilizations (§4.3.2).
#include <cstdio>

#include "common.h"
#include "exp/sweep.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 13",
                      "normalized FCT, 10% short / 90% long-TCP traffic", opt);

  constexpr std::array<schemes::Scheme, 6> kSet{
      schemes::Scheme::proactive, schemes::Scheme::reactive,
      schemes::Scheme::tcp10,     schemes::Scheme::tcp_cache,
      schemes::Scheme::jumpstart, schemes::Scheme::halfback,
  };

  exp::MixSweepConfig config;
  config.runner.seed = opt.seed;
  config.threads = opt.threads;
  config.long_bytes = opt.full ? 100'000'000 : 2'000'000;
  config.duration =
      sim::Time::seconds(opt.duration_s > 0 ? opt.duration_s : (opt.full ? 300.0 : 60.0));
  config.runner.drain = sim::Time::seconds(opt.full ? 120.0 : 60.0);
  if (opt.full) {
    for (int u = 30; u <= 85; u += 5) config.utilizations.push_back(u / 100.0);
  } else {
    config.utilizations = {0.30, 0.45, 0.60, 0.75, 0.85};
  }

  auto cells = exp::mix_sweep(config, kSet);

  auto print_panel = [&](const char* title, bool shorts) {
    std::vector<std::string> header{"util %"};
    for (schemes::Scheme s : kSet) header.push_back(bench::display(s));
    stats::Table table{header};
    for (std::size_t u = 0; u < config.utilizations.size(); ++u) {
      std::vector<std::string> row{stats::Table::num(100.0 * config.utilizations[u], 0)};
      for (std::size_t si = 0; si < kSet.size(); ++si) {
        const exp::MixCell& c = cells[u * kSet.size() + si];
        row.push_back(stats::Table::num(
            shorts ? c.short_fct_normalized : c.long_fct_normalized, 2));
      }
      table.add_row(row);
    }
    std::printf("%s (FCT normalized by the all-TCP baseline; <1 is faster)\n", title);
    table.print();
    std::printf("\n");
  };

  print_panel("(a) short flows", true);
  print_panel("(b) long flows", false);
  std::printf(
      "paper anchors: short flows — Halfback ~0.44x TCP, JumpStart ~0.49x, "
      "TCP-10 ~0.71x, Proactive slightly >1. long flows — Proactive up to "
      "+25%%, JumpStart ~+10%%, Halfback ~+3%%.\n");
  return 0;
}
