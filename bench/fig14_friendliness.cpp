// Fig. 14 — TCP-friendliness scatter (§4.3.3): half the flows run the
// scheme under test, half run TCP; each point reports the factor change in
// FCT of each population relative to its single-protocol reference.
#include <cstdio>

#include "common.h"
#include "exp/sweep.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 14", "TCP-friendliness of non-TCP schemes", opt);

  constexpr std::array<schemes::Scheme, 7> kSet{
      schemes::Scheme::jumpstart, schemes::Scheme::halfback,
      schemes::Scheme::proactive, schemes::Scheme::reactive,
      schemes::Scheme::tcp10,     schemes::Scheme::pcp,
      schemes::Scheme::tcp_cache,
  };

  exp::FriendlinessConfig config;
  config.runner.seed = opt.seed;
  config.threads = opt.threads;
  config.duration =
      sim::Time::seconds(opt.duration_s > 0 ? opt.duration_s : (opt.full ? 300.0 : 60.0));
  if (!opt.full) config.utilizations = {0.10, 0.20, 0.30};

  auto points = exp::friendliness_matrix(config, kSet);

  stats::Table table{{"scheme", "util %", "TCP FCT vs reference (x)",
                      "scheme FCT vs reference (y)", "Jain fairness of FCTs"}};
  for (const exp::FriendlinessPoint& p : points) {
    table.add_row({bench::display(p.scheme), stats::Table::num(100.0 * p.utilization, 0),
                   stats::Table::num(p.tcp_fct_vs_reference, 3),
                   stats::Table::num(p.scheme_fct_vs_reference, 3),
                   stats::Table::num(p.fct_fairness, 3)});
  }
  table.print();
  bench::maybe_write_csv(opt, "fig14_friendliness", table);
  std::printf(
      "\npaper shape: Halfback, TCP-10, TCP-Cache and Reactive cluster near "
      "(1,1); JumpStart and Proactive push TCP right of 1 (unfriendly); PCP "
      "sits above 1 on its own axis (it loses to TCP).\n");
  return 0;
}
