// Fig. 15 — throughput timelines (§4.3.4): a saturated background TCP flow
// disturbed by (a) an optimal burst, (b) Halfback, (c) one TCP short flow,
// (d) two half-size TCP short flows.
#include <cstdio>

#include "common.h"
#include "exp/trace.h"
#include "stats/ascii_plot.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 15", "throughput of background and short flows", opt);

  for (exp::TraceScenario scenario :
       {exp::TraceScenario::optimal, exp::TraceScenario::halfback,
        exp::TraceScenario::single_tcp, exp::TraceScenario::two_tcp_halves}) {
    exp::TraceConfig config;
    config.seed = opt.seed;
    auto traces = exp::run_trace(config, scenario);
    std::printf("--- panel: %s ---\n", exp::to_string(scenario));

    std::vector<stats::PlotSeries> plot;
    for (const exp::FlowTrace& flow : traces) {
      stats::PlotSeries series{flow.label, {}};
      for (const auto& s : flow.throughput) {
        series.points.emplace_back(s.bucket_start.to_ms(), s.mbps);
      }
      plot.push_back(std::move(series));
    }
    stats::PlotOptions plot_options;
    plot_options.height = 12;
    plot_options.x_label = "time (ms)";
    plot_options.y_label = "throughput (Mbps)";
    std::printf("%s\n", stats::ascii_plot(plot, plot_options).c_str());

    for (const exp::FlowTrace& flow : traces) {
      std::vector<std::pair<double, double>> points;
      for (const auto& s : flow.throughput) {
        points.emplace_back(s.bucket_start.to_ms(), s.mbps);
      }
      stats::print_series(flow.label, "time_ms", "throughput_mbps", points);
      if (flow.completion > sim::Time::zero()) {
        std::printf("# %s completed at %.0f ms (FCT from start %.0f ms)\n\n",
                    flow.label.c_str(), flow.completion.to_ms(),
                    flow.completion.to_ms() - 1000.0);
      }
    }
  }
  std::printf(
      "paper shape: the background flow dips when the short flow arrives; "
      "Halfback's short flow finishes fastest; the background flow regains "
      "half bandwidth quickly and full bandwidth within a couple of "
      "seconds; two concurrent TCP halves disturb it longest.\n");
  return 0;
}
