// Fig. 16 — application-level benchmark (§4.4): mean web page response
// time vs network utilization for TCP, TCP-10, JumpStart and Halfback.
#include <cstdio>

#include "common.h"
#include "exp/parallel.h"
#include "exp/web.h"
#include "stats/ascii_plot.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "workload/web.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 16", "web page response time vs utilization", opt);

  constexpr std::array<schemes::Scheme, 4> kSet{
      schemes::Scheme::jumpstart, schemes::Scheme::halfback,
      schemes::Scheme::tcp, schemes::Scheme::tcp10};
  std::vector<double> utils;
  if (opt.full) {
    for (int u = 10; u <= 60; u += 5) utils.push_back(u / 100.0);
  } else {
    utils = {0.10, 0.20, 0.30, 0.40, 0.50, 0.60};
  }
  const double duration_s =
      opt.duration_s > 0 ? opt.duration_s : (opt.full ? 120.0 : 30.0);

  workload::WebCatalogConfig catalog_config;
  catalog_config.site_count = opt.full ? 100 : 40;
  workload::WebsiteCatalog catalog{catalog_config, sim::Random{opt.seed * 17}};

  // One request schedule per utilization, shared across schemes.
  const auto bottleneck = sim::DataRate::megabits_per_second(15);
  std::vector<std::vector<workload::WebRequest>> schedules;
  for (std::size_t u = 0; u < utils.size(); ++u) {
    sim::Random rng{opt.seed * 23 + u};
    schedules.push_back(workload::make_web_schedule(
        catalog, utils[u], bottleneck, sim::Time::seconds(duration_s), rng));
  }

  std::vector<double> mean_response(utils.size() * kSet.size());
  exp::parallel_for(
      mean_response.size(),
      [&](std::size_t i) {
        const std::size_t u = i / kSet.size();
        const schemes::Scheme scheme = kSet[i % kSet.size()];
        exp::WebRunner::Config config;
        config.seed = opt.seed;
        exp::WebRunner runner{config};
        exp::WebRunOutcome outcome = runner.run(scheme, catalog, schedules[u]);
        mean_response[i] = outcome.mean_response_s();
      },
      opt.threads);

  std::vector<std::string> header{"util %"};
  for (schemes::Scheme s : kSet) header.push_back(bench::display(s));
  stats::Table table{header};
  for (std::size_t u = 0; u < utils.size(); ++u) {
    std::vector<std::string> row{stats::Table::num(100.0 * utils[u], 0)};
    for (std::size_t si = 0; si < kSet.size(); ++si) {
      row.push_back(stats::Table::num(mean_response[u * kSet.size() + si], 2));
    }
    table.add_row(row);
  }
  std::printf("mean page response time (s)\n");
  table.print();
  bench::maybe_write_csv(opt, "fig16_response_vs_utilization", table);

  std::vector<stats::PlotSeries> plot;
  for (std::size_t si = 0; si < kSet.size(); ++si) {
    stats::PlotSeries series{bench::display(kSet[si]), {}};
    for (std::size_t u = 0; u < utils.size(); ++u) {
      series.points.emplace_back(100.0 * utils[u], mean_response[u * kSet.size() + si]);
    }
    plot.push_back(std::move(series));
  }
  stats::PlotOptions plot_options;
  plot_options.title = "Fig. 16 — mean page response vs utilization";
  plot_options.x_label = "utilization %";
  plot_options.y_label = "response (s)";
  std::printf("\n%s", stats::ascii_plot(plot, plot_options).c_str());
  std::printf(
      "\npaper anchors: JumpStart crosses above TCP near 30%% utilization "
      "(and is 592 ms / ~27%% slower than Halfback there); Halfback stays "
      "best until ~55%%.\n");
  return 0;
}
