// Fig. 17 / Table 1 discussion (§5) — the ROPR design-space ablation:
// Halfback vs Halfback-Forward (forward-ordered proactive retransmission)
// vs Halfback-Burst (line-rate proactive retransmission), alongside the
// bracketing schemes.
#include <array>
#include <cstdio>

#include "common.h"
#include "exp/sweep.h"
#include "stats/table.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Figure 17", "ROPR ablations: FCT and feasible capacity", opt);

  constexpr std::array<schemes::Scheme, 7> kAblationSet{
      schemes::Scheme::proactive,       schemes::Scheme::tcp,
      schemes::Scheme::tcp10,           schemes::Scheme::halfback_burst,
      schemes::Scheme::halfback_forward, schemes::Scheme::jumpstart,
      schemes::Scheme::halfback,
  };

  exp::UtilizationSweepConfig config;
  config.runner.seed = opt.seed;
  config.threads = opt.threads;
  config.replications = opt.replications;
  config.duration =
      sim::Time::seconds(opt.duration_s > 0 ? opt.duration_s : (opt.full ? 120.0 : 40.0));
  if (opt.full) {
    for (int u = 5; u <= 90; u += 5) config.utilizations.push_back(u / 100.0);
  } else {
    config.utilizations = {0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85};
  }

  auto cells = exp::utilization_sweep(config, kAblationSet);

  std::vector<std::string> header{"util %"};
  for (schemes::Scheme s : kAblationSet) header.push_back(bench::display(s));
  stats::Table table{header};
  for (std::size_t u = 0; u < config.utilizations.size(); ++u) {
    std::vector<std::string> row{stats::Table::num(100.0 * config.utilizations[u], 0)};
    for (std::size_t si = 0; si < kAblationSet.size(); ++si) {
      row.push_back(stats::Table::num(cells[u * kAblationSet.size() + si].mean_fct_ms, 0));
    }
    table.add_row(row);
  }
  std::printf("mean FCT (ms) per utilization\n");
  table.print();

  auto capacities = exp::feasible_capacities(
      cells, {}, [](const exp::SweepCell& c) { return c.median_fct_ms; });
  stats::Table cap{{"scheme", "feasible capacity (% util)", "proactive retx/flow @low"}};
  for (std::size_t si = 0; si < kAblationSet.size(); ++si) {
    const schemes::Scheme s = kAblationSet[si];
    cap.add_row({bench::display(s), stats::Table::num(100.0 * capacities[s], 0),
                 stats::Table::num(cells[si].mean_proactive_retx, 1)});
  }
  std::printf("\n");
  cap.print();
  std::printf(
      "\npaper anchors (§5): Halfback-Forward collapses near 35%% (wasted "
      "forward copies), Halfback-Burst well below Halfback (line-rate "
      "retransmission loses its own copies), Halfback ~70%%\n");
  return 0;
}
