// Microbenchmarks of the simulation substrate (google-benchmark): event
// queue throughput, link forwarding, and end-to-end flow simulation cost.
// These bound how large the figure campaigns can be scaled.
#include <benchmark/benchmark.h>

#include "exp/emulab.h"
#include "net/topology.h"
#include "transport/receiver.h"
#include "schemes/factory.h"
#include "sim/simulator.h"
#include "transport/agent.h"

namespace {

using namespace halfback;
using namespace halfback::sim::literals;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator{1};
    for (int i = 0; i < n; ++i) {
      simulator.schedule(sim::Time::microseconds(i % 1000), [] {});
    }
    simulator.run();
    benchmark::DoNotOptimize(simulator.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_EventCancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator{1};
    std::vector<sim::EventHandle> handles;
    handles.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      handles.push_back(simulator.schedule(sim::Time::microseconds(i), [] {}));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
    simulator.run();
    benchmark::DoNotOptimize(simulator.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventCancellation);

void BM_LinkForwarding(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator{1};
    net::Network network{simulator};
    net::NodeId a = network.add_node();
    net::NodeId b = network.add_node();
    net::LinkConfig link;
    link.rate = sim::DataRate::gigabits_per_second(10);
    link.delay = 1_ms;
    network.connect(a, b, link);
    network.compute_routes();
    network.node(b).set_local_handler([](net::Packet) {});
    for (int i = 0; i < 1000; ++i) {
      net::Packet p;
      p.type = net::PacketType::data;
      p.src = a;
      p.dst = b;
      p.size_bytes = 1500;
      network.node(a).send(p);
    }
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LinkForwarding);

void BM_FlowSimulation(benchmark::State& state) {
  const auto scheme = static_cast<schemes::Scheme>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator{1};
    net::Network network{simulator};
    net::DumbbellConfig dc;
    dc.sender_count = 1;
    dc.receiver_count = 1;
    net::Dumbbell dumbbell = net::build_dumbbell(network, dc);
    transport::TransportAgent sender_agent{simulator, network, dumbbell.senders[0]};
    transport::TransportAgent receiver_agent{simulator, network, dumbbell.receivers[0]};
    schemes::SchemeContext context;
    auto sender = schemes::make_sender(scheme, context, simulator,
                                       network.node(dumbbell.senders[0]),
                                       dumbbell.receivers[0], 1, 100'000);
    sender_agent.start_flow(std::move(sender));
    simulator.run();
    benchmark::DoNotOptimize(simulator.events_executed());
  }
  state.SetLabel(schemes::name(scheme));
}
BENCHMARK(BM_FlowSimulation)
    ->Arg(static_cast<int>(schemes::Scheme::tcp))
    ->Arg(static_cast<int>(schemes::Scheme::jumpstart))
    ->Arg(static_cast<int>(schemes::Scheme::halfback));

void BM_ScoreboardAckProcessing(benchmark::State& state) {
  using namespace halfback::transport;
  for (auto _ : state) {
    Scoreboard sb{97};
    std::uint64_t uid = 1;
    for (std::uint32_t s = 0; s < 97; ++s) {
      sb.on_sent(s, uid++, sim::Time::milliseconds(1), false);
    }
    // ACK stream with a SACK hole pattern, plus loss detection per ACK.
    for (std::uint32_t cum = 0; cum < 97; cum += 2) {
      sb.apply_ack(cum, {{cum + 2, cum + 4}});
      benchmark::DoNotOptimize(sb.detect_losses(3));
      benchmark::DoNotOptimize(sb.pipe());
    }
  }
  state.SetItemsProcessed(state.iterations() * 48);
}
BENCHMARK(BM_ScoreboardAckProcessing);

void BM_ReceiverReassembly(benchmark::State& state) {
  using namespace halfback::transport;
  for (auto _ : state) {
    sim::Simulator simulator{1};
    net::Network network{simulator};
    net::NodeId a = network.add_node();
    net::NodeId b = network.add_node();
    net::LinkConfig link;
    link.rate = sim::DataRate::gigabits_per_second(10);
    link.delay = sim::Time::microseconds(10);
    network.connect(a, b, link);
    network.compute_routes();
    network.node(a).set_local_handler([](net::Packet) {});
    Receiver receiver{simulator, network.node(b), a, 1};
    network.node(b).set_local_handler(
        [&receiver](net::Packet p) { receiver.on_packet(p); });
    // Out-of-order arrival pattern stressing SACK-run bookkeeping.
    for (std::uint32_t s = 0; s < 500; ++s) {
      net::Packet p;
      p.flow = 1;
      p.type = net::PacketType::data;
      p.src = a;
      p.dst = b;
      p.seq = (s % 2 == 0) ? s : 500 + s;
      p.total_segments = 1500;
      p.size_bytes = 1500;
      p.uid = s + 1;
      network.node(a).send(p);
    }
    simulator.run();
    benchmark::DoNotOptimize(receiver.stats().unique_segments);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_ReceiverReassembly);

void BM_UtilizationSweepCell(benchmark::State& state) {
  // The cost of one sweep cell (a full EmulabRunner run) — what bounds the
  // figure campaigns.
  for (auto _ : state) {
    exp::EmulabRunner::Config config;
    exp::EmulabRunner runner{config};
    sim::Random rng{1};
    workload::ScheduleConfig sc;
    sc.target_utilization = 0.5;
    sc.duration = sim::Time::seconds(5);
    auto schedule =
        workload::make_schedule(workload::FlowSizeDist::fixed(100'000), sc, rng);
    exp::RunResult run = runner.run(
        {exp::WorkloadPart{schemes::Scheme::halfback, schedule,
                           exp::FlowRole::primary}});
    benchmark::DoNotOptimize(run.flows.size());
  }
}
BENCHMARK(BM_UtilizationSweepCell);

}  // namespace

BENCHMARK_MAIN();
