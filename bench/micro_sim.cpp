// Microbenchmarks of the simulation substrate (google-benchmark): event
// queue throughput, link forwarding, and end-to-end flow simulation cost.
// These bound how large the figure campaigns can be scaled.
//
// `--json=FILE` switches to a self-contained perf-smoke mode that measures
// the two hot-loop rates the ROADMAP tracks — event dispatch and per-hop
// packet forwarding — and writes them as JSON. BENCH_micro_sim.json at the
// repo root records the committed trajectory; CI re-runs this mode and
// diffs against it (report-only).
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp/emulab.h"
#include "net/topology.h"
#include "transport/receiver.h"
#include "schemes/factory.h"
#include "sim/dispatch_profiler.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "telemetry/hub.h"
#include "transport/agent.h"

namespace {

using namespace halfback;
using namespace halfback::sim::literals;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator{1};
    for (int i = 0; i < n; ++i) {
      simulator.schedule(sim::Time::microseconds(i % 1000), [] {});
    }
    simulator.run();
    benchmark::DoNotOptimize(simulator.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_EventCancellation(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator{1};
    std::vector<sim::EventHandle> handles;
    handles.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      handles.push_back(simulator.schedule(sim::Time::microseconds(i), [] {}));
    }
    for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
    simulator.run();
    benchmark::DoNotOptimize(simulator.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventCancellation);

void BM_TimerRearmFire(benchmark::State& state) {
  // Steady-state timer churn through the intrusive core: each fire re-arms
  // in place, so the whole loop is allocation-free after setup.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator{1};
    std::uint64_t fired = 0;
    sim::Timer timer;
    timer.bind(simulator, [&] {
      if (++fired < n) timer.schedule_after(sim::Time::microseconds(5));
    });
    timer.schedule_after(sim::Time::microseconds(5));
    simulator.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TimerRearmFire)->Arg(100000);

void BM_LinkForwarding(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator{1};
    net::Network network{simulator};
    net::NodeId a = network.add_node();
    net::NodeId b = network.add_node();
    net::LinkConfig link;
    link.rate = sim::DataRate::gigabits_per_second(10);
    link.delay = 1_ms;
    network.connect(a, b, link);
    network.compute_routes();
    network.node(b).set_local_handler([](net::Packet) {});
    for (int i = 0; i < 1000; ++i) {
      net::Packet p;
      p.type = net::PacketType::data;
      p.src = a;
      p.dst = b;
      p.size_bytes = 1500;
      network.node(a).send(p);
    }
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LinkForwarding);

void BM_FlowSimulation(benchmark::State& state) {
  const auto scheme = static_cast<schemes::Scheme>(state.range(0));
  for (auto _ : state) {
    sim::Simulator simulator{1};
    net::Network network{simulator};
    net::DumbbellConfig dc;
    dc.sender_count = 1;
    dc.receiver_count = 1;
    net::Dumbbell dumbbell = net::build_dumbbell(network, dc);
    transport::TransportAgent sender_agent{simulator, network, dumbbell.senders[0]};
    transport::TransportAgent receiver_agent{simulator, network, dumbbell.receivers[0]};
    schemes::SchemeContext context;
    auto sender = schemes::make_sender(scheme, context, simulator,
                                       network.node(dumbbell.senders[0]),
                                       dumbbell.receivers[0], 1, 100'000);
    sender_agent.start_flow(std::move(sender));
    simulator.run();
    benchmark::DoNotOptimize(simulator.events_executed());
  }
  state.SetLabel(schemes::name(scheme));
}
BENCHMARK(BM_FlowSimulation)
    ->Arg(static_cast<int>(schemes::Scheme::tcp))
    ->Arg(static_cast<int>(schemes::Scheme::jumpstart))
    ->Arg(static_cast<int>(schemes::Scheme::halfback));

void BM_ScoreboardAckProcessing(benchmark::State& state) {
  using namespace halfback::transport;
  for (auto _ : state) {
    Scoreboard sb{97};
    std::uint64_t uid = 1;
    for (std::uint32_t s = 0; s < 97; ++s) {
      sb.on_sent(s, uid++, sim::Time::milliseconds(1), false);
    }
    // ACK stream with a SACK hole pattern, plus loss detection per ACK.
    for (std::uint32_t cum = 0; cum < 97; cum += 2) {
      sb.apply_ack(cum, {{cum + 2, cum + 4}});
      benchmark::DoNotOptimize(sb.detect_losses(3));
      benchmark::DoNotOptimize(sb.pipe());
    }
  }
  state.SetItemsProcessed(state.iterations() * 48);
}
BENCHMARK(BM_ScoreboardAckProcessing);

void BM_ReceiverReassembly(benchmark::State& state) {
  using namespace halfback::transport;
  for (auto _ : state) {
    sim::Simulator simulator{1};
    net::Network network{simulator};
    net::NodeId a = network.add_node();
    net::NodeId b = network.add_node();
    net::LinkConfig link;
    link.rate = sim::DataRate::gigabits_per_second(10);
    link.delay = sim::Time::microseconds(10);
    network.connect(a, b, link);
    network.compute_routes();
    network.node(a).set_local_handler([](net::Packet) {});
    Receiver receiver{simulator, network.node(b), a, 1};
    network.node(b).set_local_handler(
        [&receiver](net::Packet p) { receiver.on_packet(p); });
    // Out-of-order arrival pattern stressing SACK-run bookkeeping.
    for (std::uint32_t s = 0; s < 500; ++s) {
      net::Packet p;
      p.flow = 1;
      p.type = net::PacketType::data;
      p.src = a;
      p.dst = b;
      p.seq = (s % 2 == 0) ? s : 500 + s;
      p.total_segments = 1500;
      p.size_bytes = 1500;
      p.uid = s + 1;
      network.node(a).send(p);
    }
    simulator.run();
    benchmark::DoNotOptimize(receiver.stats().unique_segments);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_ReceiverReassembly);

void BM_UtilizationSweepCell(benchmark::State& state) {
  // The cost of one sweep cell (a full EmulabRunner run) — what bounds the
  // figure campaigns.
  for (auto _ : state) {
    exp::EmulabRunner::Config config;
    exp::EmulabRunner runner{config};
    sim::Random rng{1};
    workload::ScheduleConfig sc;
    sc.target_utilization = 0.5;
    sc.duration = sim::Time::seconds(5);
    auto schedule =
        workload::make_schedule(workload::FlowSizeDist::fixed(100'000), sc, rng);
    exp::RunResult run = runner.run(
        {exp::WorkloadPart{schemes::Scheme::halfback, schedule,
                           exp::FlowRole::primary, {}}});
    benchmark::DoNotOptimize(run.flows.size());
  }
}
BENCHMARK(BM_UtilizationSweepCell);

// --- perf-smoke JSON mode ---------------------------------------------------

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Event-engine throughput on the steady-state hot path: a population of
/// recurring timers, each re-arming itself from its own callback — the
/// access pattern of retransmission timers, pacers, delayed ACKs, and link
/// clocks, which is what dominates real runs. (The seed measured the same
/// workload through its std::function re-schedule chains, the only API it
/// had; BENCH_micro_sim.json records that number as the baseline.) Returns
/// timer fires/second of wall time (best of `reps` to damp scheduler
/// noise).
double measure_events_per_sec(int reps, telemetry::Hub* hub = nullptr,
                              sim::DispatchProfiler* profiler = nullptr,
                              std::uint64_t fires = 1'000'000) {
  constexpr int kTimers = 512;
  const std::uint64_t kFires = fires;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    sim::Simulator simulator{1};
    if (hub != nullptr) simulator.set_telemetry(hub);
    if (profiler != nullptr) simulator.set_profiler(profiler);
    std::uint64_t fired = 0;
    std::vector<std::unique_ptr<sim::Timer>> timers;
    timers.reserve(kTimers);
    for (int i = 0; i < kTimers; ++i) {
      timers.push_back(std::make_unique<sim::Timer>());
      sim::Timer* timer = timers.back().get();
      const auto period = sim::Time::microseconds(1 + i % 97);
      timer->bind(simulator, [&fired, timer, period, kFires] {
        if (++fired < kFires) timer->schedule_after(period);
      });
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kTimers; ++i) {
      timers[i]->schedule_after(sim::Time::microseconds(1 + i % 97));
    }
    simulator.run();
    const double elapsed = seconds_since(t0);
    benchmark::DoNotOptimize(simulator.events_executed());
    if (elapsed > 0.0) {
      best = std::max(best, static_cast<double>(fired) / elapsed);
    }
  }
  return best;
}

/// Per-hop packet cost through the full net path (queue + serialization +
/// propagation events). Returns delivered packets/second of wall time (best
/// of `reps`).
double measure_packets_per_sec(int reps) {
  constexpr int kWaves = 50;
  constexpr int kPacketsPerWave = 1000;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    sim::Simulator simulator{1};
    net::Network network{simulator};
    net::NodeId a = network.add_node();
    net::NodeId b = network.add_node();
    net::LinkConfig link;
    link.rate = sim::DataRate::gigabits_per_second(10);
    link.delay = 1_ms;
    network.connect(a, b, link);
    network.compute_routes();
    std::uint64_t delivered = 0;
    network.node(b).set_local_handler([&](net::Packet) { ++delivered; });
    const auto t0 = std::chrono::steady_clock::now();
    for (int w = 0; w < kWaves; ++w) {
      for (int i = 0; i < kPacketsPerWave; ++i) {
        net::Packet p;
        p.type = net::PacketType::data;
        p.src = a;
        p.dst = b;
        p.seq = static_cast<std::uint32_t>(i);
        p.size_bytes = 1500;
        p.uid = static_cast<std::uint64_t>(w) * kPacketsPerWave + i + 1;
        network.node(a).send(std::move(p));
      }
      simulator.run();
    }
    const double elapsed = seconds_since(t0);
    if (elapsed > 0.0 && delivered > 0) {
      best = std::max(best, static_cast<double>(delivered) / elapsed);
    }
  }
  return best;
}

/// Transport-stack throughput for one scheme: the full sender pipeline —
/// demux, wire dedup, scoreboard, scheme policy, receiver reassembly, ACK
/// clocking — on a fat short-RTT dumbbell so per-packet CPU cost, not
/// simulated bandwidth, bounds the rate. 64 flows of the paper's 100 kB
/// short-flow size all start at t=0, so the bottleneck queue overflows and
/// every recovery path (SACK holes, RTO, scheme-specific retransmission)
/// runs too. Returns transport-delivered packets (data + SYN at the
/// receiver agent, ACKs + SYN-ACK at the sender agent) per second of wall
/// time, best of `reps`.
double measure_scheme_packets_per_sec(schemes::Scheme scheme, int reps) {
  constexpr int kFlows = 64;
  constexpr sim::Bytes kBytes = 100'000;
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    sim::Simulator simulator{1};
    net::Network network{simulator};
    net::DumbbellConfig dc;
    dc.sender_count = 1;
    dc.receiver_count = 1;
    dc.access_rate = sim::DataRate::gigabits_per_second(10);
    dc.bottleneck_rate = sim::DataRate::gigabits_per_second(1);
    dc.rtt = sim::Time::milliseconds(4);
    net::Dumbbell dumbbell = net::build_dumbbell(network, dc);
    transport::TransportAgent sender_agent{simulator, network,
                                           dumbbell.senders[0]};
    transport::TransportAgent receiver_agent{simulator, network,
                                             dumbbell.receivers[0]};
    schemes::SchemeContext context;
    const auto t0 = std::chrono::steady_clock::now();
    for (int f = 0; f < kFlows; ++f) {
      auto sender = schemes::make_sender(
          scheme, context, simulator, network.node(dumbbell.senders[0]),
          dumbbell.receivers[0], static_cast<net::FlowId>(f + 1), kBytes);
      sender_agent.start_flow(std::move(sender));
    }
    simulator.run();
    const double elapsed = seconds_since(t0);
    const std::uint64_t delivered = sender_agent.delivery_stats().accepted +
                                    receiver_agent.delivery_stats().accepted;
    benchmark::DoNotOptimize(delivered);
    if (elapsed > 0.0 && delivered > 0) {
      best = std::max(best, static_cast<double>(delivered) / elapsed);
    }
  }
  return best;
}

std::uint64_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

int run_json_mode(const char* path) {
  const double events = measure_events_per_sec(/*reps=*/5);
  const double packets = measure_packets_per_sec(/*reps=*/5);
  // Per-scheme transport throughput: the paper's eight-way evaluation set,
  // each through the full sender pipeline. This is the number the static
  // sender pipeline (compile-time transport specialization) moves; the
  // link-forwarding packets_per_sec above deliberately contains no
  // transport code and tracks the PR-2 event/packet core instead.
  std::vector<std::pair<const char*, double>> scheme_rates;
  double transport_sum = 0.0;
  for (const schemes::Scheme scheme : schemes::evaluation_set()) {
    const double rate = measure_scheme_packets_per_sec(scheme, /*reps=*/3);
    scheme_rates.emplace_back(schemes::name(scheme), rate);
    transport_sum += rate;
  }
  const double transport_mean =
      scheme_rates.empty() ? 0.0 : transport_sum / scheme_rates.size();
  const std::uint64_t rss = peak_rss_bytes();
  std::FILE* out = std::strcmp(path, "-") == 0 ? stdout : std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_sim: cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"events_per_sec\": %.0f,\n"
               "  \"packets_per_sec\": %.0f,\n"
               "  \"transport_packets_per_sec\": %.0f,\n"
               "  \"transport_packets_per_sec_by_scheme\": {\n",
               events, packets, transport_mean);
  for (std::size_t i = 0; i < scheme_rates.size(); ++i) {
    std::fprintf(out, "    \"%s\": %.0f%s\n", scheme_rates[i].first,
                 scheme_rates[i].second,
                 i + 1 < scheme_rates.size() ? "," : "");
  }
  std::fprintf(out,
               "  },\n"
               "  \"peak_rss_bytes\": %llu\n"
               "}\n",
               static_cast<unsigned long long>(rss));
  if (out != stdout) {
    std::fclose(out);
    std::printf(
        "events_per_sec=%.0f packets_per_sec=%.0f "
        "transport_packets_per_sec=%.0f peak_rss_bytes=%llu\n",
        events, packets, transport_mean, static_cast<unsigned long long>(rss));
  }
  return 0;
}

/// Telemetry-overhead mode: the same recurring-timer hot loop, with and
/// without a telemetry::Hub installed on the simulator. The disabled
/// configuration exercises the hoisted no-telemetry dispatch loop (its cost
/// must be the pre-telemetry core's); the enabled one pays one counter
/// increment plus a high-water compare per event. Acceptance (ISSUE 5):
/// enabled stays within 3% of disabled. Best-of-reps on both sides damps
/// scheduler noise; interleaving reps would be better statistics, but
/// best-of already discards the slow tail.
int run_telemetry_json_mode(const char* path) {
  // "full": hub plus the in-sim cost profiler, i.e. the instrumented
  // dispatch loop with a per-event type probe and sampled cycle
  // attribution — the everything-on observability configuration. Spans
  // and windowed series are owned by the same hub; this loop has no flows
  // or links, so their cost shows up in the chaos/emulab gates instead,
  // where it is a null test plus indexed stores per packet.
  //
  // The three configurations are measured interleaved, one short rep each
  // per round, and the gate compares the per-config *maximum* rate across
  // all rounds. Scheduler noise is one-sided — contention only ever slows
  // a measurement down — so the max is each config's cleanest window, and
  // spreading many short rounds over tens of seconds means every config
  // sees storm-free windows even on a busy host. A real regression slows
  // the clean windows too, so it still trips the gate. Sequential
  // per-config blocks would instead charge machine-speed drift to
  // whichever config ran last (the budget is 3%; container run-to-run
  // noise alone exceeds that).
  constexpr int kRounds = 25;
  constexpr std::uint64_t kRoundFires = 200'000;
  telemetry::Hub hub;
  telemetry::Hub full_hub;
  sim::DispatchProfiler profiler;
  measure_events_per_sec(/*reps=*/1);  // warm caches and the allocator
  double disabled = 0.0;
  double enabled = 0.0;
  double full = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    disabled = std::max(
        disabled, measure_events_per_sec(/*reps=*/1, nullptr, nullptr,
                                         kRoundFires));
    enabled = std::max(
        enabled, measure_events_per_sec(/*reps=*/1, &hub, nullptr,
                                        kRoundFires));
    full = std::max(full, measure_events_per_sec(/*reps=*/1, &full_hub,
                                                 &profiler, kRoundFires));
  }
  const double overhead =
      disabled > 0.0 ? (disabled - enabled) / disabled : 0.0;
  const double overhead_full =
      disabled > 0.0 ? (disabled - full) / disabled : 0.0;
  const bool pass = overhead <= 0.03 && overhead_full <= 0.03;
  std::FILE* out = std::strcmp(path, "-") == 0 ? stdout : std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "micro_sim: cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"events_per_sec_disabled\": %.0f,\n"
               "  \"events_per_sec_enabled\": %.0f,\n"
               "  \"events_per_sec_full\": %.0f,\n"
               "  \"overhead_fraction\": %.4f,\n"
               "  \"overhead_fraction_full\": %.4f,\n"
               "  \"budget_fraction\": 0.03,\n"
               "  \"pass\": %s\n"
               "}\n",
               disabled, enabled, full, overhead, overhead_full,
               pass ? "true" : "false");
  if (out != stdout) {
    std::fclose(out);
    std::printf(
        "telemetry overhead: disabled=%.0f enabled=%.0f full=%.0f events/s "
        "(%.2f%% / %.2f%% with profiler) %s\n",
        disabled, enabled, full, overhead * 100.0, overhead_full * 100.0,
        pass ? "PASS" : "FAIL");
  }
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return run_json_mode(argv[i] + 7);
    }
    if (std::strncmp(argv[i], "--telemetry-json=", 17) == 0) {
      return run_telemetry_json_mode(argv[i] + 17);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
