// Shared PlanetLab campaign used by the Fig. 5-8 benches.
#pragma once

#include <map>
#include <vector>

#include "common.h"
#include "exp/planetlab.h"

namespace halfback::bench {

struct PlanetLabCampaign {
  exp::PlanetLabConfig config;
  std::map<schemes::Scheme, std::vector<exp::TrialResult>> trials;
};

/// Run the §4.2.1 campaign: the PlanetLab scheme set over a shared path
/// ensemble (quick: 300 pairs, full: the paper's 2600).
inline PlanetLabCampaign run_planetlab_campaign(const Options& opt) {
  PlanetLabCampaign campaign;
  campaign.config.pair_count = opt.pairs > 0 ? opt.pairs : (opt.full ? 2600 : 300);
  campaign.config.seed = opt.seed * 1000003;
  campaign.config.threads = opt.threads;
  exp::PlanetLabEnv env{campaign.config};
  for (schemes::Scheme scheme : schemes::planetlab_set()) {
    campaign.trials[scheme] = env.run(scheme);
  }
  return campaign;
}

}  // namespace halfback::bench
