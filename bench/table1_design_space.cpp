// Table 1 — the startup-phase / loss-recovery design space, printed from
// the scheme registry, plus the §2.1 back-of-envelope overhead bound.
#include <cstdio>

#include "common.h"
#include "stats/table.h"
#include "workload/flow_size.h"

using namespace halfback;

int main(int argc, char** argv) {
  bench::Options opt = bench::parse_options(argc, argv);
  bench::print_header("Table 1", "startup and lost-packet recovery design space", opt);

  stats::Table table{{"scheme", "startup phase", "extra bandwidth",
                      "retx direction", "retx rate", "sender-side only"}};
  for (const schemes::SchemeInfo& info : schemes::all_schemes()) {
    table.add_row({info.display_name, info.startup, info.extra_bandwidth,
                   info.retx_order, info.retx_rate, info.sender_side_only ? "yes" : "no"});
  }
  table.print();

  // §2.1 / §3.2: proactive overhead applied to flows < 141 KB increases
  // total utilization by a bounded sliver because those flows carry a small
  // byte share. Reproduce the arithmetic from our calibrated distributions.
  const double internet_share =
      workload::FlowSizeDist::internet().byte_weighted_cdf(141'000);
  const double dc_share = workload::FlowSizeDist::benson().byte_weighted_cdf(141'000);
  std::printf(
      "\n§2.1 overhead bound: bytes in flows <141 KB — Internet %.1f%%, "
      "private DC %.1f%%.\n",
      100.0 * internet_share, 100.0 * dc_share);
  std::printf(
      "Proactive TCP (100%% duplication) at 20-30%% average utilization adds "
      "%.1f%%-%.1f%% network load on the Internet mix;\n"
      "Halfback's ROPR (~50%%) adds %.1f%%-%.1f%% (paper: 0.1%% to 5.2%%).\n",
      100.0 * 0.20 * internet_share * 1.0, 100.0 * 0.30 * internet_share * 1.0,
      100.0 * 0.20 * internet_share * 0.5, 100.0 * 0.30 * internet_share * 0.5);
  return 0;
}
