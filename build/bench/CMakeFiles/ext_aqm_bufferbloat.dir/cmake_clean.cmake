file(REMOVE_RECURSE
  "CMakeFiles/ext_aqm_bufferbloat.dir/ext_aqm_bufferbloat.cpp.o"
  "CMakeFiles/ext_aqm_bufferbloat.dir/ext_aqm_bufferbloat.cpp.o.d"
  "ext_aqm_bufferbloat"
  "ext_aqm_bufferbloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_aqm_bufferbloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
