# Empty dependencies file for ext_aqm_bufferbloat.
# This may be replaced when dependencies are built.
