file(REMOVE_RECURSE
  "CMakeFiles/ext_halfback_tuning.dir/ext_halfback_tuning.cpp.o"
  "CMakeFiles/ext_halfback_tuning.dir/ext_halfback_tuning.cpp.o.d"
  "ext_halfback_tuning"
  "ext_halfback_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_halfback_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
