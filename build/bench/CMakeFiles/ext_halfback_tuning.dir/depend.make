# Empty dependencies file for ext_halfback_tuning.
# This may be replaced when dependencies are built.
