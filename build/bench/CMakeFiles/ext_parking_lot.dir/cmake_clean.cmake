file(REMOVE_RECURSE
  "CMakeFiles/ext_parking_lot.dir/ext_parking_lot.cpp.o"
  "CMakeFiles/ext_parking_lot.dir/ext_parking_lot.cpp.o.d"
  "ext_parking_lot"
  "ext_parking_lot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_parking_lot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
