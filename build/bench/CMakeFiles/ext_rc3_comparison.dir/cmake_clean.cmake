file(REMOVE_RECURSE
  "CMakeFiles/ext_rc3_comparison.dir/ext_rc3_comparison.cpp.o"
  "CMakeFiles/ext_rc3_comparison.dir/ext_rc3_comparison.cpp.o.d"
  "ext_rc3_comparison"
  "ext_rc3_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_rc3_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
