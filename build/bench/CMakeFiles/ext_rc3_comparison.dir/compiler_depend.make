# Empty compiler generated dependencies file for ext_rc3_comparison.
# This may be replaced when dependencies are built.
