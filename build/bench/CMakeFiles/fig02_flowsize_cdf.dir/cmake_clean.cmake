file(REMOVE_RECURSE
  "CMakeFiles/fig02_flowsize_cdf.dir/fig02_flowsize_cdf.cpp.o"
  "CMakeFiles/fig02_flowsize_cdf.dir/fig02_flowsize_cdf.cpp.o.d"
  "fig02_flowsize_cdf"
  "fig02_flowsize_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_flowsize_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
