file(REMOVE_RECURSE
  "CMakeFiles/fig05_retx_cdf.dir/fig05_retx_cdf.cpp.o"
  "CMakeFiles/fig05_retx_cdf.dir/fig05_retx_cdf.cpp.o.d"
  "fig05_retx_cdf"
  "fig05_retx_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_retx_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
