# Empty compiler generated dependencies file for fig05_retx_cdf.
# This may be replaced when dependencies are built.
