# Empty dependencies file for fig06_fct_cdf.
# This may be replaced when dependencies are built.
