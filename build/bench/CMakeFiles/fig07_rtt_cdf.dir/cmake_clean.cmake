file(REMOVE_RECURSE
  "CMakeFiles/fig07_rtt_cdf.dir/fig07_rtt_cdf.cpp.o"
  "CMakeFiles/fig07_rtt_cdf.dir/fig07_rtt_cdf.cpp.o.d"
  "fig07_rtt_cdf"
  "fig07_rtt_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_rtt_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
