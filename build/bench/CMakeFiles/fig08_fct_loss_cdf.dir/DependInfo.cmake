
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig08_fct_loss_cdf.cpp" "bench/CMakeFiles/fig08_fct_loss_cdf.dir/fig08_fct_loss_cdf.cpp.o" "gcc" "bench/CMakeFiles/fig08_fct_loss_cdf.dir/fig08_fct_loss_cdf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/halfback_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/halfback_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/halfback_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/halfback_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/halfback_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/halfback_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/halfback_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
