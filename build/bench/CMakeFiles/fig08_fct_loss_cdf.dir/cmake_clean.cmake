file(REMOVE_RECURSE
  "CMakeFiles/fig08_fct_loss_cdf.dir/fig08_fct_loss_cdf.cpp.o"
  "CMakeFiles/fig08_fct_loss_cdf.dir/fig08_fct_loss_cdf.cpp.o.d"
  "fig08_fct_loss_cdf"
  "fig08_fct_loss_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_fct_loss_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
