# Empty compiler generated dependencies file for fig08_fct_loss_cdf.
# This may be replaced when dependencies are built.
