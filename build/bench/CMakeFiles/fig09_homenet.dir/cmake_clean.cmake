file(REMOVE_RECURSE
  "CMakeFiles/fig09_homenet.dir/fig09_homenet.cpp.o"
  "CMakeFiles/fig09_homenet.dir/fig09_homenet.cpp.o.d"
  "fig09_homenet"
  "fig09_homenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_homenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
