# Empty compiler generated dependencies file for fig09_homenet.
# This may be replaced when dependencies are built.
