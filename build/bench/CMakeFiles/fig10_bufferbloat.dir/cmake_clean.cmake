file(REMOVE_RECURSE
  "CMakeFiles/fig10_bufferbloat.dir/fig10_bufferbloat.cpp.o"
  "CMakeFiles/fig10_bufferbloat.dir/fig10_bufferbloat.cpp.o.d"
  "fig10_bufferbloat"
  "fig10_bufferbloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_bufferbloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
