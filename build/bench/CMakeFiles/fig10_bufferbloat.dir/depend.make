# Empty dependencies file for fig10_bufferbloat.
# This may be replaced when dependencies are built.
