file(REMOVE_RECURSE
  "CMakeFiles/fig11_flowsize_fct.dir/fig11_flowsize_fct.cpp.o"
  "CMakeFiles/fig11_flowsize_fct.dir/fig11_flowsize_fct.cpp.o.d"
  "fig11_flowsize_fct"
  "fig11_flowsize_fct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_flowsize_fct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
