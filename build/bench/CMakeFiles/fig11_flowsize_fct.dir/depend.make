# Empty dependencies file for fig11_flowsize_fct.
# This may be replaced when dependencies are built.
