file(REMOVE_RECURSE
  "CMakeFiles/fig12_feasible_capacity.dir/fig12_feasible_capacity.cpp.o"
  "CMakeFiles/fig12_feasible_capacity.dir/fig12_feasible_capacity.cpp.o.d"
  "fig12_feasible_capacity"
  "fig12_feasible_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_feasible_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
