# Empty compiler generated dependencies file for fig12_feasible_capacity.
# This may be replaced when dependencies are built.
