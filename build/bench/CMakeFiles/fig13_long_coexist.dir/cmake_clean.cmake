file(REMOVE_RECURSE
  "CMakeFiles/fig13_long_coexist.dir/fig13_long_coexist.cpp.o"
  "CMakeFiles/fig13_long_coexist.dir/fig13_long_coexist.cpp.o.d"
  "fig13_long_coexist"
  "fig13_long_coexist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_long_coexist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
