# Empty compiler generated dependencies file for fig13_long_coexist.
# This may be replaced when dependencies are built.
