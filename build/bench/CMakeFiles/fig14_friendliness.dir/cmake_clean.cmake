file(REMOVE_RECURSE
  "CMakeFiles/fig14_friendliness.dir/fig14_friendliness.cpp.o"
  "CMakeFiles/fig14_friendliness.dir/fig14_friendliness.cpp.o.d"
  "fig14_friendliness"
  "fig14_friendliness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_friendliness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
