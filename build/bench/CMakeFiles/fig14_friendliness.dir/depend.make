# Empty dependencies file for fig14_friendliness.
# This may be replaced when dependencies are built.
