file(REMOVE_RECURSE
  "CMakeFiles/fig15_throughput_trace.dir/fig15_throughput_trace.cpp.o"
  "CMakeFiles/fig15_throughput_trace.dir/fig15_throughput_trace.cpp.o.d"
  "fig15_throughput_trace"
  "fig15_throughput_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_throughput_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
