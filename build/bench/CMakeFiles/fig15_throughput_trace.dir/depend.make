# Empty dependencies file for fig15_throughput_trace.
# This may be replaced when dependencies are built.
