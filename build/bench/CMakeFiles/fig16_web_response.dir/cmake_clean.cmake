file(REMOVE_RECURSE
  "CMakeFiles/fig16_web_response.dir/fig16_web_response.cpp.o"
  "CMakeFiles/fig16_web_response.dir/fig16_web_response.cpp.o.d"
  "fig16_web_response"
  "fig16_web_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_web_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
