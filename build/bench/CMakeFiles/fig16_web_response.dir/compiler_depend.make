# Empty compiler generated dependencies file for fig16_web_response.
# This may be replaced when dependencies are built.
