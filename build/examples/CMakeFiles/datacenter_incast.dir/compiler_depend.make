# Empty compiler generated dependencies file for datacenter_incast.
# This may be replaced when dependencies are built.
