file(REMOVE_RECURSE
  "CMakeFiles/home_network.dir/home_network.cpp.o"
  "CMakeFiles/home_network.dir/home_network.cpp.o.d"
  "home_network"
  "home_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/home_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
