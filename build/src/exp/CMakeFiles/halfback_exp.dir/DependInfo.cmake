
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/emulab.cpp" "src/exp/CMakeFiles/halfback_exp.dir/emulab.cpp.o" "gcc" "src/exp/CMakeFiles/halfback_exp.dir/emulab.cpp.o.d"
  "/root/repo/src/exp/homenet.cpp" "src/exp/CMakeFiles/halfback_exp.dir/homenet.cpp.o" "gcc" "src/exp/CMakeFiles/halfback_exp.dir/homenet.cpp.o.d"
  "/root/repo/src/exp/planetlab.cpp" "src/exp/CMakeFiles/halfback_exp.dir/planetlab.cpp.o" "gcc" "src/exp/CMakeFiles/halfback_exp.dir/planetlab.cpp.o.d"
  "/root/repo/src/exp/sweep.cpp" "src/exp/CMakeFiles/halfback_exp.dir/sweep.cpp.o" "gcc" "src/exp/CMakeFiles/halfback_exp.dir/sweep.cpp.o.d"
  "/root/repo/src/exp/trace.cpp" "src/exp/CMakeFiles/halfback_exp.dir/trace.cpp.o" "gcc" "src/exp/CMakeFiles/halfback_exp.dir/trace.cpp.o.d"
  "/root/repo/src/exp/web.cpp" "src/exp/CMakeFiles/halfback_exp.dir/web.cpp.o" "gcc" "src/exp/CMakeFiles/halfback_exp.dir/web.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schemes/CMakeFiles/halfback_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/halfback_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/halfback_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/halfback_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/halfback_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/halfback_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
