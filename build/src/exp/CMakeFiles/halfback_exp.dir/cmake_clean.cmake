file(REMOVE_RECURSE
  "CMakeFiles/halfback_exp.dir/emulab.cpp.o"
  "CMakeFiles/halfback_exp.dir/emulab.cpp.o.d"
  "CMakeFiles/halfback_exp.dir/homenet.cpp.o"
  "CMakeFiles/halfback_exp.dir/homenet.cpp.o.d"
  "CMakeFiles/halfback_exp.dir/planetlab.cpp.o"
  "CMakeFiles/halfback_exp.dir/planetlab.cpp.o.d"
  "CMakeFiles/halfback_exp.dir/sweep.cpp.o"
  "CMakeFiles/halfback_exp.dir/sweep.cpp.o.d"
  "CMakeFiles/halfback_exp.dir/trace.cpp.o"
  "CMakeFiles/halfback_exp.dir/trace.cpp.o.d"
  "CMakeFiles/halfback_exp.dir/web.cpp.o"
  "CMakeFiles/halfback_exp.dir/web.cpp.o.d"
  "libhalfback_exp.a"
  "libhalfback_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halfback_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
