file(REMOVE_RECURSE
  "libhalfback_exp.a"
)
