# Empty compiler generated dependencies file for halfback_exp.
# This may be replaced when dependencies are built.
