file(REMOVE_RECURSE
  "CMakeFiles/halfback_net.dir/link.cpp.o"
  "CMakeFiles/halfback_net.dir/link.cpp.o.d"
  "CMakeFiles/halfback_net.dir/network.cpp.o"
  "CMakeFiles/halfback_net.dir/network.cpp.o.d"
  "CMakeFiles/halfback_net.dir/node.cpp.o"
  "CMakeFiles/halfback_net.dir/node.cpp.o.d"
  "CMakeFiles/halfback_net.dir/packet.cpp.o"
  "CMakeFiles/halfback_net.dir/packet.cpp.o.d"
  "CMakeFiles/halfback_net.dir/queue.cpp.o"
  "CMakeFiles/halfback_net.dir/queue.cpp.o.d"
  "CMakeFiles/halfback_net.dir/topology.cpp.o"
  "CMakeFiles/halfback_net.dir/topology.cpp.o.d"
  "CMakeFiles/halfback_net.dir/tracer.cpp.o"
  "CMakeFiles/halfback_net.dir/tracer.cpp.o.d"
  "libhalfback_net.a"
  "libhalfback_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halfback_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
