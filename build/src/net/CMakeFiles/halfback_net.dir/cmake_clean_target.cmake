file(REMOVE_RECURSE
  "libhalfback_net.a"
)
