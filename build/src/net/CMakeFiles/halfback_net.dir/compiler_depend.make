# Empty compiler generated dependencies file for halfback_net.
# This may be replaced when dependencies are built.
