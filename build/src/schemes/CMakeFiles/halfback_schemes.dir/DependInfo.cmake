
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schemes/factory.cpp" "src/schemes/CMakeFiles/halfback_schemes.dir/factory.cpp.o" "gcc" "src/schemes/CMakeFiles/halfback_schemes.dir/factory.cpp.o.d"
  "/root/repo/src/schemes/pcp.cpp" "src/schemes/CMakeFiles/halfback_schemes.dir/pcp.cpp.o" "gcc" "src/schemes/CMakeFiles/halfback_schemes.dir/pcp.cpp.o.d"
  "/root/repo/src/schemes/scheme.cpp" "src/schemes/CMakeFiles/halfback_schemes.dir/scheme.cpp.o" "gcc" "src/schemes/CMakeFiles/halfback_schemes.dir/scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/halfback_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/halfback_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/halfback_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
