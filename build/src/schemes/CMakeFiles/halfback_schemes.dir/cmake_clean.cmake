file(REMOVE_RECURSE
  "CMakeFiles/halfback_schemes.dir/factory.cpp.o"
  "CMakeFiles/halfback_schemes.dir/factory.cpp.o.d"
  "CMakeFiles/halfback_schemes.dir/pcp.cpp.o"
  "CMakeFiles/halfback_schemes.dir/pcp.cpp.o.d"
  "CMakeFiles/halfback_schemes.dir/scheme.cpp.o"
  "CMakeFiles/halfback_schemes.dir/scheme.cpp.o.d"
  "libhalfback_schemes.a"
  "libhalfback_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halfback_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
