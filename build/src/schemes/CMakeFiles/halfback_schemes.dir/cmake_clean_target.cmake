file(REMOVE_RECURSE
  "libhalfback_schemes.a"
)
