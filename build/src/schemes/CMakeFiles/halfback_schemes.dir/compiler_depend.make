# Empty compiler generated dependencies file for halfback_schemes.
# This may be replaced when dependencies are built.
