file(REMOVE_RECURSE
  "CMakeFiles/halfback_sim.dir/event_queue.cpp.o"
  "CMakeFiles/halfback_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/halfback_sim.dir/random.cpp.o"
  "CMakeFiles/halfback_sim.dir/random.cpp.o.d"
  "CMakeFiles/halfback_sim.dir/simulator.cpp.o"
  "CMakeFiles/halfback_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/halfback_sim.dir/time.cpp.o"
  "CMakeFiles/halfback_sim.dir/time.cpp.o.d"
  "libhalfback_sim.a"
  "libhalfback_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halfback_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
