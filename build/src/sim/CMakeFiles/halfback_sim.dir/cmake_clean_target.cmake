file(REMOVE_RECURSE
  "libhalfback_sim.a"
)
