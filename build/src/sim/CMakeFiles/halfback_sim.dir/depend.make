# Empty dependencies file for halfback_sim.
# This may be replaced when dependencies are built.
