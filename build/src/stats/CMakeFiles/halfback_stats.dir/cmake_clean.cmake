file(REMOVE_RECURSE
  "CMakeFiles/halfback_stats.dir/ascii_plot.cpp.o"
  "CMakeFiles/halfback_stats.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/halfback_stats.dir/feasible_capacity.cpp.o"
  "CMakeFiles/halfback_stats.dir/feasible_capacity.cpp.o.d"
  "CMakeFiles/halfback_stats.dir/summary.cpp.o"
  "CMakeFiles/halfback_stats.dir/summary.cpp.o.d"
  "CMakeFiles/halfback_stats.dir/table.cpp.o"
  "CMakeFiles/halfback_stats.dir/table.cpp.o.d"
  "CMakeFiles/halfback_stats.dir/time_series.cpp.o"
  "CMakeFiles/halfback_stats.dir/time_series.cpp.o.d"
  "libhalfback_stats.a"
  "libhalfback_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halfback_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
