file(REMOVE_RECURSE
  "libhalfback_stats.a"
)
