# Empty compiler generated dependencies file for halfback_stats.
# This may be replaced when dependencies are built.
