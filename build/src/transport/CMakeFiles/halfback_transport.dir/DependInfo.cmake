
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/agent.cpp" "src/transport/CMakeFiles/halfback_transport.dir/agent.cpp.o" "gcc" "src/transport/CMakeFiles/halfback_transport.dir/agent.cpp.o.d"
  "/root/repo/src/transport/receiver.cpp" "src/transport/CMakeFiles/halfback_transport.dir/receiver.cpp.o" "gcc" "src/transport/CMakeFiles/halfback_transport.dir/receiver.cpp.o.d"
  "/root/repo/src/transport/rtt_estimator.cpp" "src/transport/CMakeFiles/halfback_transport.dir/rtt_estimator.cpp.o" "gcc" "src/transport/CMakeFiles/halfback_transport.dir/rtt_estimator.cpp.o.d"
  "/root/repo/src/transport/scoreboard.cpp" "src/transport/CMakeFiles/halfback_transport.dir/scoreboard.cpp.o" "gcc" "src/transport/CMakeFiles/halfback_transport.dir/scoreboard.cpp.o.d"
  "/root/repo/src/transport/sender.cpp" "src/transport/CMakeFiles/halfback_transport.dir/sender.cpp.o" "gcc" "src/transport/CMakeFiles/halfback_transport.dir/sender.cpp.o.d"
  "/root/repo/src/transport/tcp_sender.cpp" "src/transport/CMakeFiles/halfback_transport.dir/tcp_sender.cpp.o" "gcc" "src/transport/CMakeFiles/halfback_transport.dir/tcp_sender.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/halfback_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/halfback_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
