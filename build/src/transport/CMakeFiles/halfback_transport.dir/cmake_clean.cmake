file(REMOVE_RECURSE
  "CMakeFiles/halfback_transport.dir/agent.cpp.o"
  "CMakeFiles/halfback_transport.dir/agent.cpp.o.d"
  "CMakeFiles/halfback_transport.dir/receiver.cpp.o"
  "CMakeFiles/halfback_transport.dir/receiver.cpp.o.d"
  "CMakeFiles/halfback_transport.dir/rtt_estimator.cpp.o"
  "CMakeFiles/halfback_transport.dir/rtt_estimator.cpp.o.d"
  "CMakeFiles/halfback_transport.dir/scoreboard.cpp.o"
  "CMakeFiles/halfback_transport.dir/scoreboard.cpp.o.d"
  "CMakeFiles/halfback_transport.dir/sender.cpp.o"
  "CMakeFiles/halfback_transport.dir/sender.cpp.o.d"
  "CMakeFiles/halfback_transport.dir/tcp_sender.cpp.o"
  "CMakeFiles/halfback_transport.dir/tcp_sender.cpp.o.d"
  "libhalfback_transport.a"
  "libhalfback_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halfback_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
