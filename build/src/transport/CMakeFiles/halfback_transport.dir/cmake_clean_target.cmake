file(REMOVE_RECURSE
  "libhalfback_transport.a"
)
