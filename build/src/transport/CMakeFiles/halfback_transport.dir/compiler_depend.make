# Empty compiler generated dependencies file for halfback_transport.
# This may be replaced when dependencies are built.
