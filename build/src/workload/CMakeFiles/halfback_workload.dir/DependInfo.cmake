
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/flow_schedule.cpp" "src/workload/CMakeFiles/halfback_workload.dir/flow_schedule.cpp.o" "gcc" "src/workload/CMakeFiles/halfback_workload.dir/flow_schedule.cpp.o.d"
  "/root/repo/src/workload/flow_size.cpp" "src/workload/CMakeFiles/halfback_workload.dir/flow_size.cpp.o" "gcc" "src/workload/CMakeFiles/halfback_workload.dir/flow_size.cpp.o.d"
  "/root/repo/src/workload/web.cpp" "src/workload/CMakeFiles/halfback_workload.dir/web.cpp.o" "gcc" "src/workload/CMakeFiles/halfback_workload.dir/web.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/halfback_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
