file(REMOVE_RECURSE
  "CMakeFiles/halfback_workload.dir/flow_schedule.cpp.o"
  "CMakeFiles/halfback_workload.dir/flow_schedule.cpp.o.d"
  "CMakeFiles/halfback_workload.dir/flow_size.cpp.o"
  "CMakeFiles/halfback_workload.dir/flow_size.cpp.o.d"
  "CMakeFiles/halfback_workload.dir/web.cpp.o"
  "CMakeFiles/halfback_workload.dir/web.cpp.o.d"
  "libhalfback_workload.a"
  "libhalfback_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halfback_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
