file(REMOVE_RECURSE
  "libhalfback_workload.a"
)
