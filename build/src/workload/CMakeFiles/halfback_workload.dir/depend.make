# Empty dependencies file for halfback_workload.
# This may be replaced when dependencies are built.
