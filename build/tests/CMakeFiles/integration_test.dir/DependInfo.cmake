
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/cross_feature_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/cross_feature_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/cross_feature_test.cpp.o.d"
  "/root/repo/tests/integration/property_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/property_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/halfback_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/halfback_net.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/halfback_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/halfback_schemes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
