file(REMOVE_RECURSE
  "CMakeFiles/schemes_test.dir/schemes/halfback_test.cpp.o"
  "CMakeFiles/schemes_test.dir/schemes/halfback_test.cpp.o.d"
  "CMakeFiles/schemes_test.dir/schemes/jumpstart_test.cpp.o"
  "CMakeFiles/schemes_test.dir/schemes/jumpstart_test.cpp.o.d"
  "CMakeFiles/schemes_test.dir/schemes/pcp_test.cpp.o"
  "CMakeFiles/schemes_test.dir/schemes/pcp_test.cpp.o.d"
  "CMakeFiles/schemes_test.dir/schemes/rc3_test.cpp.o"
  "CMakeFiles/schemes_test.dir/schemes/rc3_test.cpp.o.d"
  "CMakeFiles/schemes_test.dir/schemes/schemes_test.cpp.o"
  "CMakeFiles/schemes_test.dir/schemes/schemes_test.cpp.o.d"
  "schemes_test"
  "schemes_test.pdb"
  "schemes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
