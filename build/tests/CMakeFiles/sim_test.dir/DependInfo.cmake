
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/data_rate_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/data_rate_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/data_rate_test.cpp.o.d"
  "/root/repo/tests/sim/event_queue_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/event_queue_test.cpp.o.d"
  "/root/repo/tests/sim/random_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/random_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/random_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/sim/time_test.cpp" "tests/CMakeFiles/sim_test.dir/sim/time_test.cpp.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/time_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/halfback_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/halfback_net.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/halfback_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/halfback_schemes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
