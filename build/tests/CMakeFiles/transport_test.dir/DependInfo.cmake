
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transport/agent_test.cpp" "tests/CMakeFiles/transport_test.dir/transport/agent_test.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/agent_test.cpp.o.d"
  "/root/repo/tests/transport/handshake_test.cpp" "tests/CMakeFiles/transport_test.dir/transport/handshake_test.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/handshake_test.cpp.o.d"
  "/root/repo/tests/transport/receiver_test.cpp" "tests/CMakeFiles/transport_test.dir/transport/receiver_test.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/receiver_test.cpp.o.d"
  "/root/repo/tests/transport/rtt_estimator_test.cpp" "tests/CMakeFiles/transport_test.dir/transport/rtt_estimator_test.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/rtt_estimator_test.cpp.o.d"
  "/root/repo/tests/transport/scoreboard_fuzz_test.cpp" "tests/CMakeFiles/transport_test.dir/transport/scoreboard_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/scoreboard_fuzz_test.cpp.o.d"
  "/root/repo/tests/transport/scoreboard_test.cpp" "tests/CMakeFiles/transport_test.dir/transport/scoreboard_test.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/scoreboard_test.cpp.o.d"
  "/root/repo/tests/transport/tcp_sender_test.cpp" "tests/CMakeFiles/transport_test.dir/transport/tcp_sender_test.cpp.o" "gcc" "tests/CMakeFiles/transport_test.dir/transport/tcp_sender_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/halfback_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/halfback_net.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/halfback_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/halfback_schemes.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
