file(REMOVE_RECURSE
  "CMakeFiles/transport_test.dir/transport/agent_test.cpp.o"
  "CMakeFiles/transport_test.dir/transport/agent_test.cpp.o.d"
  "CMakeFiles/transport_test.dir/transport/handshake_test.cpp.o"
  "CMakeFiles/transport_test.dir/transport/handshake_test.cpp.o.d"
  "CMakeFiles/transport_test.dir/transport/receiver_test.cpp.o"
  "CMakeFiles/transport_test.dir/transport/receiver_test.cpp.o.d"
  "CMakeFiles/transport_test.dir/transport/rtt_estimator_test.cpp.o"
  "CMakeFiles/transport_test.dir/transport/rtt_estimator_test.cpp.o.d"
  "CMakeFiles/transport_test.dir/transport/scoreboard_fuzz_test.cpp.o"
  "CMakeFiles/transport_test.dir/transport/scoreboard_fuzz_test.cpp.o.d"
  "CMakeFiles/transport_test.dir/transport/scoreboard_test.cpp.o"
  "CMakeFiles/transport_test.dir/transport/scoreboard_test.cpp.o.d"
  "CMakeFiles/transport_test.dir/transport/tcp_sender_test.cpp.o"
  "CMakeFiles/transport_test.dir/transport/tcp_sender_test.cpp.o.d"
  "transport_test"
  "transport_test.pdb"
  "transport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
