// Custom scenario runner: a small CLI over the library so you can explore
// any (scheme, path, flow) combination without writing code.
//
//   $ ./examples/custom_scenario scheme=halfback bytes=200000 rtt_ms=80 rate_mbps=10 buffer_kb=64 loss=0.01 flows=5 trace=1
//
// Every key is optional; defaults reproduce the paper's Emulab bottleneck.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/topology.h"
#include "net/tracer.h"
#include "schemes/factory.h"
#include "sim/simulator.h"
#include "stats/summary.h"
#include "transport/agent.h"

using namespace halfback;

namespace {

struct Args {
  schemes::Scheme scheme = schemes::Scheme::halfback;
  std::uint64_t bytes = 100'000;
  double rtt_ms = 60;
  double rate_mbps = 15;
  std::uint64_t buffer_kb = 115;
  double loss = 0.0;
  int flows = 1;
  double gap_ms = 200;  ///< interval between flow starts
  std::uint64_t seed = 1;
  bool trace = false;
  std::string queue = "droptail";
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "expected key=value, got '%s'\n", arg.c_str());
      std::exit(2);
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (key == "scheme") {
      auto parsed = schemes::parse_scheme(value);
      if (!parsed) {
        std::fprintf(stderr, "unknown scheme '%s'; known:", value.c_str());
        for (const auto& info : schemes::all_schemes()) {
          std::fprintf(stderr, " %s", info.name);
        }
        std::fprintf(stderr, "\n");
        std::exit(2);
      }
      a.scheme = *parsed;
    } else if (key == "bytes") {
      a.bytes = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "rtt_ms") {
      a.rtt_ms = std::atof(value.c_str());
    } else if (key == "rate_mbps") {
      a.rate_mbps = std::atof(value.c_str());
    } else if (key == "buffer_kb") {
      a.buffer_kb = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "loss") {
      a.loss = std::atof(value.c_str());
    } else if (key == "flows") {
      a.flows = std::atoi(value.c_str());
    } else if (key == "gap_ms") {
      a.gap_ms = std::atof(value.c_str());
    } else if (key == "seed") {
      a.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "trace") {
      a.trace = value != "0";
    } else if (key == "queue") {
      a.queue = value;
    } else {
      std::fprintf(stderr, "unknown key '%s'\n", key.c_str());
      std::exit(2);
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse(argc, argv);

  sim::Simulator simulator{args.seed};
  net::Network network{simulator};
  net::DumbbellConfig topo;
  topo.sender_count = 1;
  topo.receiver_count = 1;
  topo.bottleneck_rate = sim::DataRate::megabits_per_second(args.rate_mbps);
  topo.rtt = sim::Time::milliseconds(args.rtt_ms);
  topo.bottleneck_buffer_bytes = args.buffer_kb * 1000;
  if (args.queue == "red") topo.bottleneck_queue = net::QueueKind::red;
  if (args.queue == "codel") topo.bottleneck_queue = net::QueueKind::codel;
  net::Dumbbell dumbbell = net::build_dumbbell(network, topo);

  transport::TransportAgent sender_host{simulator, network, dumbbell.senders[0]};
  transport::TransportAgent receiver_host{simulator, network, dumbbell.receivers[0]};

  net::PacketTracer tracer{simulator};
  std::uint32_t bottleneck_drops = 0;
  dumbbell.bottleneck_forward->queue().set_drop_callback(
      [&](const net::Packet& p) {
        if (p.type == net::PacketType::data) ++bottleneck_drops;
      });
  if (args.trace) {
    tracer.tap_queue(*dumbbell.bottleneck_forward, "bottleneck");
    tracer.tap_node(network.node(dumbbell.receivers[0]), "receiver");
  }
  if (args.loss > 0) {
    // Random loss on the bottleneck via a Bernoulli packet filter.
    auto rng = std::make_shared<sim::Random>(args.seed * 13);
    dumbbell.bottleneck_forward->set_packet_filter(
        [rng, p = args.loss](const net::Packet&) { return !rng->bernoulli(p); });
  }

  schemes::SchemeContext context;
  std::vector<transport::SenderBase*> flows;
  for (int i = 0; i < args.flows; ++i) {
    simulator.schedule_at(sim::Time::milliseconds(args.gap_ms * i), [&, i] {
      auto sender = schemes::make_sender(
          args.scheme, context, simulator, network.node(dumbbell.senders[0]),
          dumbbell.receivers[0], static_cast<net::FlowId>(i + 1), args.bytes);
      flows.push_back(&sender_host.start_flow(std::move(sender)));
    });
  }
  simulator.run_until(sim::Time::seconds(300));

  if (args.trace) std::fputs(tracer.timeline().c_str(), stdout);

  std::printf("\nscenario: %s, %d x %llu B, %.0f Mbps / %.0f ms RTT, %llu KB %s buffer, loss %.3f\n",
              schemes::name(args.scheme), args.flows,
              static_cast<unsigned long long>(args.bytes), args.rate_mbps,
              args.rtt_ms, static_cast<unsigned long long>(args.buffer_kb),
              args.queue.c_str(), args.loss);
  stats::Summary fct;
  std::uint32_t retx = 0, proactive = 0, timeouts = 0;
  int completed = 0;
  for (transport::SenderBase* flow : flows) {
    const transport::FlowRecord& r = flow->record();
    if (flow->complete()) {
      ++completed;
      fct.add(r.fct().to_ms());
    }
    retx += r.normal_retx;
    proactive += r.proactive_retx;
    timeouts += r.timeouts;
  }
  std::printf("completed %d/%d flows\n", completed, args.flows);
  if (!fct.empty()) {
    std::printf("FCT: mean %.1f ms, median %.1f ms, max %.1f ms\n", fct.mean(),
                fct.median(), fct.max());
  }
  std::printf("normal retx %u, proactive retx %u, timeouts %u, bottleneck drops %u\n",
              retx, proactive, timeouts, bottleneck_drops);
  std::printf("simulated %llu events\n",
              static_cast<unsigned long long>(simulator.events_executed()));
  return completed == args.flows ? 0 : 1;
}
