// Data-center incast scenario: an aggregator fans a query out to N worker
// servers; every worker answers with a small response at once, and the
// job completes when the *last* response arrives. The synchronized burst
// overflows the shallow top-of-rack buffer — the classic incast collapse —
// and the question is which transport recovers the clipped tails fastest.
//
// §2.1 of the paper argues short-flow acceleration is applicable to data
// centers (flows < 141 KB carry < 1% of DC bytes, so the overhead is
// negligible); this example probes how the schemes behave there.
//
//   $ ./examples/datacenter_incast [workers] [response_kb]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "net/topology.h"
#include "schemes/factory.h"
#include "sim/simulator.h"
#include "transport/agent.h"

using namespace halfback;

namespace {

struct IncastResult {
  double job_completion_ms = 0.0;  ///< slowest response (finished flows)
  double median_flow_ms = 0.0;
  std::uint32_t timeouts = 0;
  std::uint32_t drops = 0;
  int finished = 0;
  int workers = 0;
};

IncastResult run_incast(schemes::Scheme scheme, int workers,
                        std::uint64_t response_bytes) {
  sim::Simulator simulator{3};
  net::Network network{simulator};

  // N workers behind a ToR switch, one aggregator link: 1 Gbps everywhere,
  // 100 us RTT, a shallow 64 KB switch buffer (the incast ingredient).
  net::DumbbellConfig topo;
  topo.sender_count = workers;
  topo.receiver_count = 1;
  topo.access_rate = sim::DataRate::gigabits_per_second(10);
  topo.bottleneck_rate = sim::DataRate::gigabits_per_second(1);
  topo.rtt = sim::Time::microseconds(100);
  topo.bottleneck_buffer_bytes = 64'000;
  net::Dumbbell dumbbell = net::build_dumbbell(network, topo);

  std::vector<std::unique_ptr<transport::TransportAgent>> agents;
  for (net::NodeId id : dumbbell.senders) {
    agents.push_back(std::make_unique<transport::TransportAgent>(simulator, network, id));
  }
  transport::TransportAgent aggregator{simulator, network, dumbbell.receivers[0]};

  std::uint32_t drops = 0;
  dumbbell.bottleneck_forward->queue().set_drop_callback(
      [&](const net::Packet&) { ++drops; });

  // Data-center transports use much finer timers than the WAN defaults.
  schemes::SchemeContext context;
  context.sender_config.rtt.min_rto = sim::Time::milliseconds(5);
  context.sender_config.rtt.initial_rto = sim::Time::milliseconds(10);

  std::vector<transport::SenderBase*> responses;
  for (int w = 0; w < workers; ++w) {
    auto sender = schemes::make_sender(
        scheme, context, simulator, network.node(dumbbell.senders[static_cast<std::size_t>(w)]),
        dumbbell.receivers[0], static_cast<net::FlowId>(w + 1), response_bytes);
    responses.push_back(&agents[static_cast<std::size_t>(w)]->start_flow(std::move(sender)));
  }
  simulator.run_until(sim::Time::seconds(60));

  IncastResult result;
  result.workers = workers;
  std::vector<double> fcts;
  for (transport::SenderBase* flow : responses) {
    result.timeouts += flow->record().timeouts;
    if (!flow->complete()) continue;
    ++result.finished;
    fcts.push_back(flow->record().fct().to_ms());
  }
  if (!fcts.empty()) {
    std::sort(fcts.begin(), fcts.end());
    result.job_completion_ms = fcts.back();
    result.median_flow_ms = fcts[fcts.size() / 2];
  }
  result.drops = drops;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::uint64_t response_kb = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50;

  std::printf("incast: %d workers x %llu KB responses through a 1 Gbps / 64 KB "
              "ToR port (100 us RTT, 5 ms min RTO)\n\n",
              workers, static_cast<unsigned long long>(response_kb));
  std::printf("%-10s %20s %18s %10s %8s %10s\n", "scheme", "job completion (ms)",
              "median flow (ms)", "timeouts", "drops", "finished");
  for (schemes::Scheme scheme :
       {schemes::Scheme::tcp, schemes::Scheme::tcp10, schemes::Scheme::reactive,
        schemes::Scheme::jumpstart, schemes::Scheme::halfback}) {
    IncastResult r = run_incast(scheme, workers, response_kb * 1000);
    std::printf("%-10s %20.1f %18.1f %10u %8u %6d/%d\n", schemes::name(scheme),
                r.job_completion_ms, r.median_flow_ms, r.timeouts, r.drops,
                r.finished, r.workers);
  }
  std::printf(
      "\nThe job is gated by the slowest response. Pacing a whole response\n"
      "into a 100 us RTT overshoots the ToR port ~40x, so the paced schemes\n"
      "lose most of their first round — and then their recovery styles\n"
      "diverge exactly as in the paper: JumpStart's line-rate retransmission\n"
      "storms re-collide (watch its drop count) while Halfback's ACK-clocked\n"
      "ROPR drains the survivors' rate and completes the job with far fewer\n"
      "timeouts. The conservative starters (TCP-10) remain competitive here:\n"
      "a WAN startup does not transplant to the datacenter unmodified.\n");
  return 0;
}
