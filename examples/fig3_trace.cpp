// Fig. 3 walkthrough (§3.4): a 10-segment Halfback flow, packet by packet,
// with segment 9's first transmission forcibly dropped — reproducing the
// paper's worked example of ROPR recovering a loss before TCP's machinery
// would even have detected it.
//
// Demonstrates the PacketTracer (taps on the bottleneck queue and the
// receiving host) and the Link packet-filter fault-injection hook.
#include <cstdio>

#include "net/topology.h"
#include "net/tracer.h"
#include "schemes/factory.h"
#include "sim/simulator.h"
#include "transport/agent.h"

using namespace halfback;

int main() {
  sim::Simulator simulator{7};
  net::Network network{simulator};
  net::DumbbellConfig topo;
  topo.sender_count = 1;
  topo.receiver_count = 1;
  net::Dumbbell dumbbell = net::build_dumbbell(network, topo);

  transport::TransportAgent sender_host{simulator, network, dumbbell.senders[0]};
  transport::TransportAgent receiver_host{simulator, network, dumbbell.receivers[0]};

  // Observe everything that reaches the receiver and everything the
  // bottleneck discards. Taps chain in front of the agents' handlers.
  net::PacketTracer tracer{simulator};
  tracer.tap_node(network.node(dumbbell.receivers[0]), "receiver");
  tracer.tap_queue(*dumbbell.bottleneck_forward, "bottleneck");

  // Force the loss the paper's example narrates: the first copy of
  // segment index 8 (the paper's "packet 9") vanishes at the bottleneck.
  bool dropped = false;
  dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
    if (!dropped && p.type == net::PacketType::data && p.seq == 8 && !p.is_retx) {
      dropped = true;
      std::printf("    (fault injection: dropping first copy of segment 8)\n");
      return false;
    }
    return true;
  });

  schemes::SchemeContext context;
  auto sender = schemes::make_sender(schemes::Scheme::halfback, context, simulator,
                                     network.node(dumbbell.senders[0]),
                                     dumbbell.receivers[0], /*flow=*/1,
                                     10 * net::kSegmentPayloadBytes);
  std::printf("starting a 10-segment Halfback flow (Fig. 3 walkthrough)\n");
  transport::SenderBase& flow = sender_host.start_flow(std::move(sender));

  simulator.run();

  std::printf("\nwire timeline at the receiver:\n%s", tracer.timeline().c_str());

  const transport::FlowRecord& record = flow.record();
  std::printf("\nflow complete at %.2f ms (%.1f RTTs)\n",
              record.completion_time.to_ms(), record.rtts_used());
  std::printf("proactive (ROPR) retransmissions: %u — the reverse-order sweep\n",
              record.proactive_retx);
  std::printf("normal retransmissions: %u, timeouts: %u\n", record.normal_retx,
              record.timeouts);
  transport::Receiver* rx = receiver_host.receiver(1);
  if (rx != nullptr) {
    std::printf("receiver saw %u duplicate segments (ROPR copies of data that "
                "had already arrived)\n",
                rx->stats().duplicate_segments);
  }
  std::printf(
      "\nAs in the paper's example: the lost tail segment was recovered by a\n"
      "proactive reverse-order copy, before any timeout or dupACK detection.\n");
  return 0;
}
