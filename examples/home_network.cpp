// Home access network scenario (§4.2.2): fetch a short flow from servers
// at various distances through four residential access profiles, Halfback
// vs TCP — the paper's "does this help real users?" experiment.
//
//   $ ./examples/home_network [flow_kb]
#include <cstdio>
#include <cstdlib>

#include "exp/homenet.h"
#include "stats/summary.h"

using namespace halfback;

int main(int argc, char** argv) {
  const std::uint64_t flow_bytes =
      (argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100) * 1000;

  exp::HomeNetConfig config;
  config.server_count = 40;
  config.flow_bytes = flow_bytes;
  exp::HomeNetEnv env{config};

  std::printf("fetching %llu KB from %d simulated servers (RTTs %0.f-%0.f ms)\n\n",
              static_cast<unsigned long long>(flow_bytes / 1000),
              config.server_count, env.server_rtts().front().to_ms(),
              env.server_rtts().back().to_ms());

  std::printf("%-22s %10s %16s %14s %12s\n", "access profile", "scheme",
              "median FCT (ms)", "p90 FCT (ms)", "vs TCP");
  for (const exp::HomeNetProfile& profile : exp::home_profiles()) {
    stats::Summary tcp;
    for (const exp::TrialResult& t : env.run(schemes::Scheme::tcp, profile)) {
      tcp.add(t.record.fct().to_ms());
    }
    stats::Summary halfback;
    for (const exp::TrialResult& t : env.run(schemes::Scheme::halfback, profile)) {
      halfback.add(t.record.fct().to_ms());
    }
    std::printf("%-22s %10s %16.0f %14.0f %11.0f%%\n", profile.name, "halfback",
                halfback.median(), halfback.percentile(90),
                100.0 * (halfback.median() / tcp.median() - 1.0));
    std::printf("%-22s %10s %16.0f %14.0f %12s\n", "", "tcp", tcp.median(),
                tcp.percentile(90), "-");
  }
  std::printf(
      "\nAs in the paper's Fig. 9: the gain is largest on well-provisioned\n"
      "wired links (the start-up RTTs dominate) and smallest on the slow DSL\n"
      "profile, where the link itself — not TCP's start-up — is the limit.\n");
  return 0;
}
