// Quickstart: simulate one Halfback flow against one TCP flow on the
// paper's Emulab dumbbell and print what happened.
//
//   $ ./examples/quickstart [flow_bytes]
//
// This is the smallest complete use of the library: build a topology,
// attach transport agents, start flows via the scheme factory, run the
// simulator, read the flow records.
#include <cstdio>
#include <cstdlib>

#include "net/topology.h"
#include "schemes/factory.h"
#include "sim/simulator.h"
#include "transport/agent.h"

using namespace halfback;

namespace {

transport::FlowRecord run_one(schemes::Scheme scheme, std::uint64_t bytes) {
  // 1. A simulator owns virtual time and seeded randomness.
  sim::Simulator simulator{/*seed=*/42};

  // 2. Build the paper's single-bottleneck dumbbell (Fig. 4): 1 Gbps access
  //    links, a 15 Mbps / 60 ms RTT bottleneck with a BDP-sized buffer.
  net::Network network{simulator};
  net::DumbbellConfig topo;
  topo.sender_count = 1;
  topo.receiver_count = 1;
  net::Dumbbell dumbbell = net::build_dumbbell(network, topo);

  // 3. Attach a transport agent to each end host.
  transport::TransportAgent sender_host{simulator, network, dumbbell.senders[0]};
  transport::TransportAgent receiver_host{simulator, network, dumbbell.receivers[0]};

  // 4. Create a sender for the chosen scheme and start the flow.
  schemes::SchemeContext context;  // default §4.1 parameters
  auto sender = schemes::make_sender(scheme, context, simulator,
                                     network.node(dumbbell.senders[0]),
                                     dumbbell.receivers[0], /*flow=*/1, bytes);
  transport::SenderBase& flow = sender_host.start_flow(std::move(sender));

  // 5. Run to completion and read the results.
  simulator.run();
  return flow.record();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t bytes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;

  std::printf("transferring %llu bytes over a 15 Mbps / 60 ms RTT bottleneck\n\n",
              static_cast<unsigned long long>(bytes));
  std::printf("%-10s %12s %8s %14s %16s %9s\n", "scheme", "FCT (ms)", "RTTs",
              "data packets", "proactive retx", "timeouts");
  for (schemes::Scheme scheme :
       {schemes::Scheme::tcp, schemes::Scheme::tcp10, schemes::Scheme::jumpstart,
        schemes::Scheme::halfback}) {
    transport::FlowRecord record = run_one(scheme, bytes);
    if (!record.completed) {
      std::printf("%-10s did not complete\n", schemes::name(scheme));
      continue;
    }
    std::printf("%-10s %12.1f %8.1f %14u %16u %9u\n", schemes::name(scheme),
                record.fct().to_ms(), record.rtts_used(), record.data_packets_sent,
                record.proactive_retx, record.timeouts);
  }
  std::printf(
      "\nHalfback finishes in ~3 RTTs (handshake + paced RTT + tail ACK),\n"
      "proactively re-sending ~half the flow (the ROPR phase) as insurance\n"
      "against losses from its aggressive start.\n");
  return 0;
}
