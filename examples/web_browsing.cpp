// Web browsing scenario (§4.4): load synthetic front pages over each
// transport scheme and compare page response times — the application-level
// view where flow-level aggressiveness turns into self-interference.
//
//   $ ./examples/web_browsing [utilization_percent]
#include <cstdio>
#include <cstdlib>

#include "exp/web.h"
#include "workload/web.h"

using namespace halfback;

int main(int argc, char** argv) {
  const double utilization = argc > 1 ? std::atof(argv[1]) / 100.0 : 0.30;

  // A catalog of synthetic front pages (object counts and sizes follow
  // 2015-era top-site measurements; see DESIGN.md).
  workload::WebCatalogConfig catalog_config;
  catalog_config.site_count = 30;
  workload::WebsiteCatalog catalog{catalog_config, sim::Random{11}};

  std::printf("catalog: %zu pages, mean weight %.0f KB\n", catalog.size(),
              catalog.mean_page_bytes() / 1000.0);
  std::printf("offered load: %.0f%% of a 15 Mbps access bottleneck\n\n",
              100.0 * utilization);

  // Poisson page requests at the chosen utilization.
  sim::Random rng{13};
  auto requests = workload::make_web_schedule(
      catalog, utilization, sim::DataRate::megabits_per_second(15),
      sim::Time::seconds(30), rng);

  std::printf("%-10s %18s %18s %14s %12s\n", "scheme", "mean response (s)",
              "p95 response (s)", "object FCT(ms)", "timeouts/obj");
  for (schemes::Scheme scheme :
       {schemes::Scheme::tcp, schemes::Scheme::tcp10, schemes::Scheme::jumpstart,
        schemes::Scheme::halfback}) {
    exp::WebRunner::Config config;
    exp::WebRunner runner{config};
    exp::WebRunOutcome outcome = runner.run(scheme, catalog, requests);

    // p95 by sorting response times.
    std::vector<double> times;
    for (const exp::PageResult& p : outcome.pages) {
      times.push_back(p.response_time().to_seconds());
    }
    std::sort(times.begin(), times.end());
    const double p95 = times.empty() ? 0.0 : times[times.size() * 95 / 100];

    std::printf("%-10s %18.2f %18.2f %14.0f %12.2f\n", schemes::name(scheme),
                outcome.mean_response_s(), p95, outcome.flow_stats.mean_fct_ms,
                outcome.flow_stats.mean_timeouts);
  }
  std::printf(
      "\nA page request fans out into up to 6 concurrent short flows, so an\n"
      "aggressive scheme competes with *itself*: at moderate utilization\n"
      "JumpStart's reactive-only recovery makes it slower than plain TCP\n"
      "(the paper's §4.4 result), while Halfback's ROPR recovers the burst\n"
      "losses without waiting for timeouts.\n");
  return 0;
}
