// Audit hook interface for the correctness-analysis layer.
//
// The simulator core (sim::EventQueue/Simulator), the network substrate
// (net::PacketQueue/Link/Network) and the transport (transport::SenderBase)
// invoke these hooks at every state transition worth checking: event
// scheduling and dispatch, queue admission/drop/drain, link delivery, and
// scoreboard updates. Hook call sites compile to no-ops unless the build
// defines HALFBACK_AUDIT (the default configuration and all CMake test
// presets enable it; the `release` preset turns it off), and even when
// enabled an uninstalled auditor costs one null-pointer test per hook.
//
// This header sits below every other layer: it depends only on sim/time.h
// and forward declarations, so sim/net/transport can call hooks without
// linking against the audit library. The concrete checker lives in
// invariant_auditor.h and pulls in the full net/transport types.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace halfback::net {
struct Packet;
class PacketQueue;
class Link;
}  // namespace halfback::net

namespace halfback::transport {
struct AckUpdate;
class Scoreboard;
}  // namespace halfback::transport

namespace halfback::audit {

/// Why a queue recorded a drop.
enum class DropContext : std::uint8_t {
  admission,  ///< rejected at enqueue, never occupied the queue
  in_queue,   ///< removed from the backlog by the discipline (CoDel)
};

/// Observer of simulator-core state transitions. Every hook has a no-op
/// default so auditors override only what they check. Hooks fire while the
/// observed object is in a consistent state (after the transition).
///
/// An Auditor instance belongs to exactly one Simulator; parallel
/// experiment shards each install their own (see exp/parallel.h — shards
/// share nothing, and that includes audit state).
class Auditor {
 public:
  virtual ~Auditor() = default;

  // --- sim: event engine ---------------------------------------------------

  /// An event was scheduled at absolute time `at` while the clock read
  /// `now`. A sane caller never schedules in the past.
  virtual void on_event_scheduled(sim::Time /*now*/, sim::Time /*at*/) {}

  /// The event with scheduling sequence number `seq` is about to run at
  /// time `at`. Dispatch must be time-monotone with FIFO tie-breaks.
  virtual void on_event_run(sim::Time /*at*/, std::uint64_t /*seq*/) {}

  // --- net: links and queues ----------------------------------------------

  /// A link was created (fires from Network::make_link and
  /// Network::install_auditor so the auditor can key per-link state).
  virtual void on_link_registered(const net::Link& /*link*/) {}

  /// A packet was handed to Link::send.
  virtual void on_link_offered(const net::Link& /*link*/,
                               const net::Packet& /*packet*/) {}

  /// The link's fault-injection filter discarded the packet.
  virtual void on_link_filtered(const net::Link& /*link*/,
                                const net::Packet& /*packet*/) {}

  /// The random-loss process corrupted the packet after serialization.
  virtual void on_link_corrupted(const net::Link& /*link*/,
                                 const net::Packet& /*packet*/) {}

  /// The packet finished propagation and is about to reach the far node.
  virtual void on_link_delivered(const net::Link& /*link*/,
                                 const net::Packet& /*packet*/) {}

  // --- net: injected faults (netfault::FaultInjector via net::FaultHook) ---
  // These fire only when a fault hook is installed on the link, so they
  // never perturb audit state (or the trace hash) in fault-free runs.

  /// The fault hook discarded the packet after serialization (bursty loss,
  /// blackout window).
  virtual void on_link_fault_dropped(const net::Link& /*link*/,
                                     const net::Packet& /*packet*/) {}

  /// The fault hook launched an extra copy of the packet into the
  /// propagation pipe. Fires once per extra copy; the auditor extends the
  /// exactly-once delivery budget for the packet's uid accordingly.
  virtual void on_link_fault_duplicated(const net::Link& /*link*/,
                                        const net::Packet& /*packet*/) {}

  /// The fault hook flipped bits in the packet. It still propagates (and
  /// still counts against delivery conservation); the receiving transport
  /// rejects it by checksum.
  virtual void on_link_fault_corrupted(const net::Link& /*link*/,
                                       const net::Packet& /*packet*/) {}

  /// A queue admitted the packet (it is now part of the backlog).
  virtual void on_queue_enqueued(const net::PacketQueue& /*queue*/,
                                 const net::Packet& /*packet*/) {}

  /// A queue dropped the packet; see DropContext for where from.
  virtual void on_queue_dropped(const net::PacketQueue& /*queue*/,
                                const net::Packet& /*packet*/,
                                DropContext /*context*/) {}

  /// A queue handed the packet to the link for transmission.
  virtual void on_queue_dequeued(const net::PacketQueue& /*queue*/,
                                 const net::Packet& /*packet*/) {}

  /// A packet arrived at node `node` (delivered by Network's link receiver,
  /// before forwarding or local handling).
  virtual void on_node_received(std::uint32_t /*node*/,
                                const net::Packet& /*packet*/) {}

  // --- transport: sender-side bookkeeping ----------------------------------

  /// The sender transmitted segment `seq` of `flow` (scoreboard already
  /// updated). `scheme` is the sender's scheme name, so scheme-specific
  /// properties (Halfback's reverse-order ROPR) can be checked.
  virtual void on_segment_sent(const transport::Scoreboard& /*scoreboard*/,
                               std::uint64_t /*flow*/, const std::string& /*scheme*/,
                               std::uint32_t /*seq*/, bool /*proactive*/,
                               std::uint64_t /*uid*/) {}

  /// An ACK was applied to the scoreboard (which reflects the update).
  virtual void on_ack_applied(const transport::Scoreboard& /*scoreboard*/,
                              std::uint64_t /*flow*/,
                              const net::Packet& /*ack*/,
                              const transport::AckUpdate& /*update*/) {}
};

}  // namespace halfback::audit

/// Invoke an auditor hook if auditing is compiled in and an auditor is
/// installed. `auditor_expr` must be an expression yielding `Auditor*`.
/// Compiles to nothing (arguments unevaluated) when HALFBACK_AUDIT is off.
#ifdef HALFBACK_AUDIT
#define HALFBACK_AUDIT_HOOK(auditor_expr, call)                       \
  do {                                                                \
    if (::halfback::audit::Auditor* halfback_audit_a = (auditor_expr); \
        halfback_audit_a != nullptr) {                                \
      halfback_audit_a->call;                                         \
    }                                                                 \
  } while (false)
#else
#define HALFBACK_AUDIT_HOOK(auditor_expr, call) ((void)0)
#endif
