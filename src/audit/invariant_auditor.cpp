#include "audit/invariant_auditor.h"

#include <sstream>

#include "net/link.h"
#include "net/packet.h"
#include "net/queue.h"
#include "transport/scoreboard.h"

namespace halfback::audit {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
}  // namespace

void InvariantAuditor::mix(std::uint64_t value) {
  // FNV-1a over the value's eight bytes, keeping the hash order-sensitive.
  for (int i = 0; i < 8; ++i) {
    trace_hash_ ^= (value >> (8 * i)) & 0xffULL;
    trace_hash_ *= kFnvPrime;
  }
}

void InvariantAuditor::violation(std::string what) {
  ++total_violations_;
  if (violations_.size() < kMaxStoredViolations) violations_.push_back(std::move(what));
}

std::string InvariantAuditor::report() const {
  std::ostringstream out;
  for (const std::string& v : violations_) out << v << '\n';
  if (total_violations_ > violations_.size()) {
    out << "... and " << (total_violations_ - violations_.size())
        << " further violations not stored\n";
  }
  return out.str();
}

InvariantAuditor::QueueShadow& InvariantAuditor::queue_shadow(
    const net::PacketQueue& queue) {
  return queues_[&queue];
}

InvariantAuditor::LinkShadow& InvariantAuditor::link_shadow(const net::Link& link) {
  return links_[&link];
}

// --- sim -------------------------------------------------------------------

void InvariantAuditor::on_event_scheduled(sim::Time now, sim::Time at) {
  if (at < now) {
    std::ostringstream out;
    out << "event scheduled in the past: at=" << at.to_string()
        << " now=" << now.to_string();
    violation(out.str());
  }
}

void InvariantAuditor::on_event_run(sim::Time at, std::uint64_t seq) {
  if (have_last_event_) {
    if (at < last_event_time_) {
      std::ostringstream out;
      out << "event time went backwards: " << last_event_time_.to_string()
          << " -> " << at.to_string();
      violation(out.str());
    } else if (at == last_event_time_ && seq <= last_event_seq_) {
      std::ostringstream out;
      out << "FIFO tie-break violated at " << at.to_string() << ": seq "
          << last_event_seq_ << " ran before seq " << seq;
      violation(out.str());
    }
  }
  have_last_event_ = true;
  last_event_time_ = at;
  last_event_seq_ = seq;
  mix(static_cast<std::uint64_t>(at.ns()));
  mix(seq);
}

// --- net: links ------------------------------------------------------------

void InvariantAuditor::on_link_registered(const net::Link& link) {
  link_shadow(link);
  queue_shadow(link.queue()).link = &link;
}

void InvariantAuditor::on_link_offered(const net::Link& link,
                                       const net::Packet& packet) {
  ++link_shadow(link).offered;
  if (packet.type == net::PacketType::data) {
    flows_[packet.flow].wire_seqs.insert(packet.seq);
  }
  mix(packet.uid);
}

void InvariantAuditor::on_link_filtered(const net::Link& link,
                                        const net::Packet& /*packet*/) {
  LinkShadow& shadow = link_shadow(link);
  ++shadow.filtered;
  if (shadow.accounted() > shadow.expected()) {
    violation("link accounted for more packets than were offered (filter)");
  }
}

void InvariantAuditor::on_link_corrupted(const net::Link& link,
                                         const net::Packet& /*packet*/) {
  LinkShadow& shadow = link_shadow(link);
  ++shadow.corrupted;
  if (shadow.accounted() > shadow.expected()) {
    violation("link accounted for more packets than were offered (corruption)");
  }
}

void InvariantAuditor::on_link_delivered(const net::Link& link,
                                         const net::Packet& packet) {
  LinkShadow& shadow = link_shadow(link);
  ++shadow.delivered;
  if (shadow.accounted() > shadow.expected()) {
    std::ostringstream out;
    out << "link delivered more packets than were offered: offered="
        << shadow.offered << " (+" << shadow.fault_duplicated
        << " duplicated) delivered=" << shadow.delivered
        << " (uid " << packet.uid << ")";
    violation(out.str());
  }
  mix(packet.uid);
  mix(packet.seq);
}

// --- net: injected faults ----------------------------------------------------
// These hooks fire only when a netfault::FaultInjector (or other FaultHook)
// is installed, so nothing here can perturb a fault-free run's books or
// trace hash. Each mixes into the hash: same seed + same fault config must
// reproduce the exact fault sequence.

void InvariantAuditor::on_link_fault_dropped(const net::Link& link,
                                             const net::Packet& packet) {
  LinkShadow& shadow = link_shadow(link);
  ++shadow.fault_dropped;
  if (shadow.accounted() > shadow.expected()) {
    violation("link accounted for more packets than were offered (fault drop)");
  }
  mix(packet.uid);
}

void InvariantAuditor::on_link_fault_duplicated(const net::Link& link,
                                                const net::Packet& packet) {
  ++link_shadow(link).fault_duplicated;
  // Extend the destination delivery budget for this transmission: one
  // injected copy = one extra legitimate arrival of the same uid.
  if (packet.type == net::PacketType::data && packet.uid != 0) {
    ++flows_[packet.flow].dup_credit[packet.uid];
  }
  mix(packet.uid);
}

void InvariantAuditor::on_link_fault_corrupted(const net::Link& link,
                                               const net::Packet& packet) {
  // A corrupted packet still propagates and is counted by on_link_delivered;
  // no conservation change, but the event is part of the deterministic trace.
  link_shadow(link);
  mix(packet.uid);
}

// --- net: queues -----------------------------------------------------------

void InvariantAuditor::on_queue_enqueued(const net::PacketQueue& queue,
                                         const net::Packet& packet) {
  QueueShadow& shadow = queue_shadow(queue);
  shadow.bytes += packet.size_bytes;
  ++shadow.packets;
  ++shadow.enqueued;
  if (queue.byte_length() != shadow.bytes) {
    std::ostringstream out;
    out << "queue byte accounting diverged after enqueue: queue reports "
        << queue.byte_length() << " B, audit expects " << shadow.bytes << " B";
    violation(out.str());
  }
  const std::uint64_t capacity = queue.capacity_bytes();
  if (capacity > 0 && queue.byte_length() > capacity) {
    std::ostringstream out;
    out << "queue over-full: holds " << queue.byte_length() << " B, capacity "
        << capacity << " B";
    violation(out.str());
  }
}

void InvariantAuditor::on_queue_dropped(const net::PacketQueue& queue,
                                        const net::Packet& packet,
                                        DropContext context) {
  QueueShadow& shadow = queue_shadow(queue);
  ++shadow.dropped;
  if (context == DropContext::in_queue) {
    // The discipline removed a resident packet (CoDel's dequeue-side drop).
    if (shadow.bytes < packet.size_bytes || shadow.packets == 0) {
      violation("queue dropped a resident packet it never admitted");
    } else {
      shadow.bytes -= packet.size_bytes;
      --shadow.packets;
    }
  }
  if (shadow.link != nullptr) ++link_shadow(*shadow.link).queue_dropped;
}

void InvariantAuditor::on_queue_dequeued(const net::PacketQueue& queue,
                                         const net::Packet& packet) {
  QueueShadow& shadow = queue_shadow(queue);
  if (shadow.bytes < packet.size_bytes || shadow.packets == 0) {
    violation("queue released a packet it never admitted");
  } else {
    shadow.bytes -= packet.size_bytes;
    --shadow.packets;
  }
  ++shadow.dequeued;
  if (queue.byte_length() != shadow.bytes) {
    std::ostringstream out;
    out << "queue byte accounting diverged after dequeue: queue reports "
        << queue.byte_length() << " B, audit expects " << shadow.bytes << " B";
    violation(out.str());
  }
}

// --- net: nodes ------------------------------------------------------------

void InvariantAuditor::on_node_received(std::uint32_t node,
                                        const net::Packet& packet) {
  // Delivery-uniqueness check at the destination: a wire transmission (one
  // uid) must reach its destination at most once. Forwarding hops are
  // excluded — the same uid legitimately transits several nodes.
  if (packet.type != net::PacketType::data || packet.uid == 0) return;
  if (packet.dst != node) return;
  // Note: uniqueness per uid is the invariant; comparing the count of
  // delivered uids against sender-side sends would be unsound, because some
  // schemes (RC3's low-priority RLP copies) transmit outside the
  // SenderBase::send_segment path that feeds on_segment_sent.
  FlowShadow& flow = flows_[packet.flow];
  const std::uint32_t count = ++flow.delivered_count[packet.uid];
  std::uint32_t allowed = 1;
  if (!flow.dup_credit.empty()) {
    auto credit = flow.dup_credit.find(packet.uid);
    if (credit != flow.dup_credit.end()) allowed += credit->second;
  }
  if (count > allowed) {
    std::ostringstream out;
    out << "packet delivered to its destination more often than sent: flow "
        << packet.flow << " seq " << packet.seq << " uid " << packet.uid
        << " arrived " << count << "x with a budget of " << allowed
        << " (1 + injected duplicates)";
    violation(out.str());
  }
}

// --- transport -------------------------------------------------------------

void InvariantAuditor::on_segment_sent(const transport::Scoreboard& scoreboard,
                                       std::uint64_t flow, const std::string& scheme,
                                       std::uint32_t seq, bool proactive,
                                       std::uint64_t uid) {
  FlowShadow& shadow = flows_[flow];
  if (seq >= scoreboard.total_segments()) {
    violation("segment sent beyond the flow length");
  }
  // Halfback's ROPR property (§3.2): proactive retransmissions walk strictly
  // backwards from the end of the paced batch. Ablations ("halfback-forward",
  // Proactive TCP) legitimately differ, so the check is name-gated.
  if (proactive && scheme == "halfback") {
    if (shadow.have_proactive && seq >= shadow.last_proactive_seq) {
      std::ostringstream out;
      out << "ROPR order violated on flow " << flow << ": proactive retx of seq "
          << seq << " after seq " << shadow.last_proactive_seq;
      violation(out.str());
    }
    shadow.have_proactive = true;
    shadow.last_proactive_seq = seq;
  }
  mix(uid);
  mix(seq);
}

void InvariantAuditor::on_ack_applied(const transport::Scoreboard& scoreboard,
                                      std::uint64_t flow, const net::Packet& ack,
                                      const transport::AckUpdate& update) {
  FlowShadow& shadow = flows_[flow];
  if (update.cum_ack_after < update.cum_ack_before ||
      update.cum_ack_before < shadow.cum_ack) {
    std::ostringstream out;
    out << "cumulative ACK moved backwards on flow " << flow << ": "
        << shadow.cum_ack << " -> " << update.cum_ack_after;
    violation(out.str());
  }
  shadow.cum_ack = update.cum_ack_after;
  if (update.cum_ack_after > scoreboard.total_segments()) {
    violation("cumulative ACK beyond the flow length");
  }
  // sacked => sent: the receiver can only SACK a segment that crossed the
  // wire, so a SACK for a never-transmitted segment means corrupted
  // accounting. Checked against both the scoreboard and the wire trace:
  // RC3's RLP copies legitimately reach the receiver without a scoreboard
  // entry, but never without a link transmission.
  for (std::uint32_t seq : update.newly_sacked) {
    const transport::SegmentState* state = scoreboard.state(seq);
    const bool in_scoreboard = state != nullptr && state->times_sent > 0;
    if (!in_scoreboard && !shadow.wire_seqs.contains(seq)) {
      std::ostringstream out;
      out << "segment " << seq << " of flow " << flow
          << " was SACKed but never sent";
      violation(out.str());
    }
  }
  if (scoreboard.pipe() > scoreboard.total_segments()) {
    violation("pipe() exceeds the flow length");
  }
  mix(ack.cum_ack);
  mix(static_cast<std::uint64_t>(ack.sacks.size()));
}

// --- finalize ----------------------------------------------------------------

void InvariantAuditor::finalize(bool drained) {
  for (const auto& [link, shadow] : links_) {
    const std::uint64_t queued = link != nullptr ? link->queue().packet_count() : 0;
    if (shadow.accounted() + queued > shadow.expected()) {
      std::ostringstream out;
      out << "link conservation violated: offered=" << shadow.offered
          << " (+" << shadow.fault_duplicated << " duplicated)"
          << " delivered=" << shadow.delivered << " corrupted=" << shadow.corrupted
          << " filtered=" << shadow.filtered << " dropped=" << shadow.queue_dropped
          << " fault_dropped=" << shadow.fault_dropped << " queued=" << queued;
      violation(out.str());
    }
    if (drained && shadow.accounted() + queued < shadow.expected()) {
      std::ostringstream out;
      out << "link lost packets: offered=" << shadow.offered << " (+"
          << shadow.fault_duplicated << " duplicated) but only "
          << shadow.accounted() << " accounted and " << queued
          << " queued after the event queue drained";
      violation(out.str());
    }
  }
  for (const auto& [queue, shadow] : queues_) {
    if (queue->byte_length() != shadow.bytes ||
        queue->packet_count() != shadow.packets) {
      std::ostringstream out;
      out << "queue residue mismatch at end of run: queue reports "
          << queue->byte_length() << " B / " << queue->packet_count()
          << " pkts, audit expects " << shadow.bytes << " B / " << shadow.packets
          << " pkts";
      violation(out.str());
    }
    if (drained && shadow.enqueued != shadow.dequeued + shadow.packets &&
        shadow.dropped == 0) {
      violation("queue packet conservation violated after drain");
    }
  }
}

}  // namespace halfback::audit
