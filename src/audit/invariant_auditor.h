// Runtime invariant checker for the discrete-event core.
//
// Checks, continuously while a simulation runs:
//  - event-time monotonicity and FIFO tie-break order in the event engine,
//    and that nothing is scheduled in the past;
//  - queue byte/packet accounting (a queue's reported byte_length must equal
//    the bytes of the packets it admitted and has not yet released) and the
//    capacity bound (drop-tail may never hold more than its configured
//    bytes);
//  - per-link packet conservation: every packet offered to a link is
//    eventually delivered, corrupted, filtered, or dropped by its queue —
//    never duplicated, never lost without account;
//  - per-flow delivery uniqueness: no wire transmission (uid) reaches the
//    destination twice;
//  - scoreboard consistency: the cumulative ACK is monotone, SACKed
//    segments were actually sent, and pipe() never exceeds the flow length;
//  - Halfback's ROPR reverse-order property: proactive retransmissions of a
//    "halfback" flow walk strictly backwards;
//  - per-seed determinism, via an order-sensitive hash of the run trace
//    (event times, dispatch order, deliveries, sends, ACKs) that two
//    same-seed runs must reproduce exactly.
//
// Violations are collected, not thrown: a run completes and the caller
// inspects ok()/violations(). Install with Network::install_auditor (which
// also covers the owning Simulator), or Simulator::set_auditor plus
// PacketQueue::set_auditor for bare components.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "audit/auditor.h"

namespace halfback::audit {

/// Concrete Auditor that enforces the engine invariants above.
class InvariantAuditor final : public Auditor {
 public:
  /// Violations recorded beyond this many are counted but not stored.
  static constexpr std::size_t kMaxStoredViolations = 64;

  InvariantAuditor() = default;

  /// True while no invariant has been violated.
  bool ok() const { return total_violations_ == 0; }

  /// Human-readable description of each stored violation, in order.
  const std::vector<std::string>& violations() const { return violations_; }

  /// Total violations seen, including ones beyond the storage cap.
  std::uint64_t total_violations() const { return total_violations_; }

  /// Multi-line report of all stored violations (empty string when ok()).
  std::string report() const;

  /// Order-sensitive FNV-1a hash over the run trace so far. Two runs of the
  /// same scenario with the same seed must produce identical hashes.
  std::uint64_t trace_hash() const { return trace_hash_; }

  /// End-of-run conservation sweep. Pass `drained` = true when the
  /// simulator's event queue is empty (every in-flight packet must then be
  /// accounted for); false tolerates packets still in flight or queued.
  void finalize(bool drained);

  // --- Auditor hooks -------------------------------------------------------
  void on_event_scheduled(sim::Time now, sim::Time at) override;
  void on_event_run(sim::Time at, std::uint64_t seq) override;
  void on_link_registered(const net::Link& link) override;
  void on_link_offered(const net::Link& link, const net::Packet& packet) override;
  void on_link_filtered(const net::Link& link, const net::Packet& packet) override;
  void on_link_corrupted(const net::Link& link, const net::Packet& packet) override;
  void on_link_delivered(const net::Link& link, const net::Packet& packet) override;
  void on_link_fault_dropped(const net::Link& link, const net::Packet& packet) override;
  void on_link_fault_duplicated(const net::Link& link, const net::Packet& packet) override;
  void on_link_fault_corrupted(const net::Link& link, const net::Packet& packet) override;
  void on_queue_enqueued(const net::PacketQueue& queue,
                         const net::Packet& packet) override;
  void on_queue_dropped(const net::PacketQueue& queue, const net::Packet& packet,
                        DropContext context) override;
  void on_queue_dequeued(const net::PacketQueue& queue,
                         const net::Packet& packet) override;
  void on_node_received(std::uint32_t node, const net::Packet& packet) override;
  void on_segment_sent(const transport::Scoreboard& scoreboard, std::uint64_t flow,
                       const std::string& scheme, std::uint32_t seq, bool proactive,
                       std::uint64_t uid) override;
  void on_ack_applied(const transport::Scoreboard& scoreboard, std::uint64_t flow,
                      const net::Packet& ack,
                      const transport::AckUpdate& update) override;

 private:
  /// Shadow accounting for one queue, mirrored from the hook stream.
  struct QueueShadow {
    const net::Link* link = nullptr;  ///< owning link, when known
    std::uint64_t bytes = 0;          ///< bytes the queue should hold
    std::uint64_t packets = 0;
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t dropped = 0;
  };

  /// Conservation counters for one link. Injected faults (netfault) change
  /// the books: a fault drop is one more way a packet leaves the link, and
  /// every injected duplicate raises the delivery budget by one, so the
  /// conserved identity is accounted() == offered + fault_duplicated.
  struct LinkShadow {
    std::uint64_t offered = 0;
    std::uint64_t delivered = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t filtered = 0;
    std::uint64_t queue_dropped = 0;
    std::uint64_t fault_dropped = 0;     ///< discarded by a FaultHook
    std::uint64_t fault_duplicated = 0;  ///< extra copies a FaultHook launched
    std::uint64_t accounted() const {
      return delivered + corrupted + filtered + queue_dropped + fault_dropped;
    }
    std::uint64_t expected() const { return offered + fault_duplicated; }
  };

  /// Sender-side view of one flow.
  struct FlowShadow {
    std::uint32_t cum_ack = 0;
    bool have_proactive = false;
    std::uint32_t last_proactive_seq = 0;
    /// Times each wire transmission (uid) reached the destination. The
    /// budget is 1, plus one per injected duplicate recorded in dup_credit
    /// (fed by on_link_fault_duplicated) — exactly-once delivery, extended
    /// to exactly-(1+k)-times under injected duplication.
    std::unordered_map<std::uint64_t, std::uint32_t> delivered_count;
    std::unordered_map<std::uint64_t, std::uint32_t> dup_credit;
    /// Segment indices observed as data packets on any link. Some schemes
    /// (RC3's RLP copies) transmit outside the scoreboard path, so
    /// sacked=>sent is checked against the wire, not the scoreboard alone.
    std::unordered_set<std::uint32_t> wire_seqs;
  };

  void violation(std::string what);
  void mix(std::uint64_t value);
  QueueShadow& queue_shadow(const net::PacketQueue& queue);
  LinkShadow& link_shadow(const net::Link& link);

  std::vector<std::string> violations_;
  std::uint64_t total_violations_ = 0;
  std::uint64_t trace_hash_ = 14695981039346656037ULL;  ///< FNV-1a offset basis

  // Event-engine state.
  bool have_last_event_ = false;
  sim::Time last_event_time_;
  std::uint64_t last_event_seq_ = 0;

  std::unordered_map<const net::PacketQueue*, QueueShadow> queues_;
  std::unordered_map<const net::Link*, LinkShadow> links_;
  std::unordered_map<std::uint64_t, FlowShadow> flows_;
};

}  // namespace halfback::audit
