// Deadline-censoring helpers shared by the trial environments.
//
// PlanetLabEnv and HomeNetEnv both run one watched short flow against a
// per-trial timeout. Both must account for an unfinished flow the same
// way — censor its completion time AT the deadline, so FCT means reflect
// the stall instead of silently dropping it or under-reporting with
// whatever instant the queue happened to drain at. This header is that
// single shared semantics; tests/exp/env_test.cpp pins the two
// environments to it.
#pragma once

#include <algorithm>
#include <functional>

#include "sim/simulator.h"
#include "sim/time.h"
#include "transport/sender.h"

namespace halfback::exp {

/// Drive `simulator` until the watched flow completes, the event queue
/// drains, or `deadline` passes. `sender` is re-polled each slice (the
/// flow may not exist yet — PlanetLab schedules it after a cross-traffic
/// head start) and may return nullptr until it does. The stop-check
/// piggybacks on completion via polling in 100 ms slices, cheap relative
/// to the packet events. Returns true if the flow reported complete.
inline bool drive_until_complete_or_deadline(
    sim::Simulator& simulator,
    const std::function<const transport::SenderBase*()>& sender,
    sim::Time deadline) {
  while (simulator.now() < deadline) {
    simulator.run_until(
        std::min(deadline, simulator.now() + sim::Time::milliseconds(100)));
    const transport::SenderBase* watched = sender();
    if (watched != nullptr && watched->complete()) return true;
    if (simulator.queue().empty()) break;
  }
  const transport::SenderBase* watched = sender();
  return watched != nullptr && watched->complete();
}

/// The shared censor-at-deadline accounting for an unfinished trial:
/// the flow is charged the full deadline, so means reflect the stall.
inline void censor_record_at(transport::FlowRecord& record, sim::Time deadline) {
  record.completion_time = deadline;
  record.completed = false;
}

}  // namespace halfback::exp
