#include "exp/chaos.h"

#include <fstream>
#include <optional>
#include <utility>

#include "telemetry/export.h"
#include "telemetry/hub.h"
#include "workload/flow_schedule.h"

namespace halfback::exp {

std::vector<ChaosScenario> chaos_catalog() {
  using sim::Time;
  std::vector<ChaosScenario> catalog;

  // Baseline: no injector at all — the fast path the golden hashes anchor.
  catalog.push_back({"clean", {}});

  {
    // Gilbert–Elliott bursty loss: mostly-clean path with ~0.5% residual
    // loss that occasionally enters a bad state losing half its packets.
    ChaosScenario s{"bursty-loss", {}};
    s.faults.gilbert_elliott.p_good_to_bad = 0.02;
    s.faults.gilbert_elliott.p_bad_to_good = 0.3;
    s.faults.gilbert_elliott.loss_good = 0.005;
    s.faults.gilbert_elliott.loss_bad = 0.5;
    catalog.push_back(std::move(s));
  }
  {
    // Reordering: a fifth of packets get up to 20 ms of extra propagation,
    // roughly a bottleneck serialization quantum — enough to overtake.
    ChaosScenario s{"reorder", {}};
    s.faults.reorder.probability = 0.2;
    s.faults.reorder.max_extra_delay = Time::milliseconds(20);
    catalog.push_back(std::move(s));
  }
  {
    ChaosScenario s{"duplicate", {}};
    s.faults.duplicate.probability = 0.1;
    s.faults.duplicate.max_copies = 2;
    s.faults.duplicate.spacing = Time::milliseconds(1);
    catalog.push_back(std::move(s));
  }
  {
    // Payload corruption: delivered, checksum-rejected at the receiver.
    ChaosScenario s{"corrupt", {}};
    s.faults.corrupt.probability = 0.05;
    catalog.push_back(std::move(s));
  }
  {
    // Total blackout from t=1 s for 2.5 s — longer than the 1 s initial
    // RTO, so recovering requires surviving backed-off retransmission (and
    // capped SYN backoff for flows that arrive mid-outage).
    ChaosScenario s{"blackout", {}};
    s.faults.outages.emplace_back(Time::seconds(1), Time::seconds(2.5));
    catalog.push_back(std::move(s));
  }
  {
    // Random flapping: ~2 s up phases punctuated by ~200 ms outages.
    ChaosScenario s{"flap", {}};
    s.faults.flap.mean_up = Time::seconds(2);
    s.faults.flap.mean_down = Time::milliseconds(200);
    catalog.push_back(std::move(s));
  }
  {
    // Rare routing-transient delay spikes of 150 ms (several RTTs).
    ChaosScenario s{"delay-spike", {}};
    s.faults.delay_spike.probability = 0.02;
    s.faults.delay_spike.magnitude = Time::milliseconds(150);
    catalog.push_back(std::move(s));
  }
  {
    // Everything at once, each dialled down so the composite stays
    // survivable: the adversarial cell for "handles as many scenarios as
    // you can imagine".
    ChaosScenario s{"adversarial", {}};
    s.faults.gilbert_elliott.p_good_to_bad = 0.01;
    s.faults.gilbert_elliott.p_bad_to_good = 0.4;
    s.faults.gilbert_elliott.loss_good = 0.002;
    s.faults.gilbert_elliott.loss_bad = 0.3;
    s.faults.reorder.probability = 0.1;
    s.faults.reorder.max_extra_delay = Time::milliseconds(10);
    s.faults.duplicate.probability = 0.05;
    s.faults.duplicate.max_copies = 2;
    s.faults.duplicate.spacing = Time::milliseconds(1);
    s.faults.corrupt.probability = 0.02;
    s.faults.delay_spike.probability = 0.01;
    s.faults.delay_spike.magnitude = Time::milliseconds(100);
    s.faults.outages.emplace_back(Time::seconds(2), Time::seconds(1.5));
    catalog.push_back(std::move(s));
  }
  return catalog;
}

namespace {

RunResult run_cell(const ChaosSweepConfig& config, const ChaosScenario& scenario,
                   schemes::Scheme scheme, std::uint64_t seed,
                   telemetry::Hub* hub = nullptr,
                   telemetry::RunManifest* manifest_out = nullptr) {
  EmulabRunner::Config runner_config = config.runner;
  runner_config.seed = seed;
  runner_config.faults = scenario.faults;
  runner_config.telemetry = hub;
  runner_config.budget = config.cell_budget;
  runner_config.wall_limit = config.cell_wall_limit;
  EmulabRunner runner{runner_config};
  WorkloadPart part;
  part.scheme = scheme;
  part.role = FlowRole::primary;
  part.schedule.reserve(config.flows_per_cell);
  for (std::size_t i = 0; i < config.flows_per_cell; ++i) {
    workload::FlowArrival arrival;
    arrival.at = config.arrival_spacing * static_cast<double>(i);
    arrival.bytes = config.flow_bytes;
    part.schedule.push_back(arrival);
  }
  RunResult result = runner.run({part});
  if (manifest_out != nullptr) {
    *manifest_out = runner.manifest(result, "chaos:" + scenario.name);
    manifest_out->scheme = schemes::name(scheme);
  }
  return result;
}

/// Write one cell's telemetry triple next to each other in `dir`. The hub
/// is per-cell (cells run on sweep threads), so no synchronization needed.
void export_cell(const std::string& dir, const ChaosScenario& scenario,
                 schemes::Scheme scheme, const telemetry::Hub& hub,
                 const telemetry::RunManifest& manifest, sim::Time end) {
  const std::string stem =
      dir + "/" + scenario.name + "-" + schemes::name(scheme);
  {
    std::ofstream out{stem + ".metrics.jsonl"};
    telemetry::write_metrics_jsonl(out, hub.registry());
  }
  {
    // The full-hub overload: the tape events plus the causal span log as
    // nested B/E duration events on pid 3.
    std::ofstream out{stem + ".trace.json"};
    telemetry::write_chrome_trace(out, hub, end);
  }
  {
    std::ofstream out{stem + ".spans.jsonl"};
    telemetry::write_spans_jsonl(out, hub.spans(), end);
  }
  {
    std::ofstream out{stem + ".series.jsonl"};
    telemetry::write_timeseries_jsonl(out, hub);
  }
  {
    std::ofstream out{stem + ".manifest.json"};
    telemetry::write_manifest_json(out, manifest, &hub.registry());
  }
}

ChaosCell summarize(const ChaosScenario& scenario, schemes::Scheme scheme,
                    const RunResult& run) {
  ChaosCell cell;
  cell.scenario = scenario.name;
  cell.scheme = scheme;
  cell.flows = run.flows.size();
  cell.unfinished = run.unfinished_count(FlowRole::primary);
  cell.mean_fct_ms = run.mean_fct_ms(FlowRole::primary);
  stats::Summary fct = run.fct_ms(FlowRole::primary);
  cell.median_fct_ms = fct.empty() ? 0.0 : fct.median();
  stats::Summary timeouts = run.metric(FlowRole::primary, [](const FlowResult& f) {
    return static_cast<double>(f.record.timeouts);
  });
  cell.mean_timeouts = timeouts.empty() ? 0.0 : timeouts.mean();
  stats::Summary retx = run.metric(FlowRole::primary, [](const FlowResult& f) {
    return static_cast<double>(f.record.normal_retx);
  });
  cell.mean_normal_retx = retx.empty() ? 0.0 : retx.mean();
  stats::Summary proactive = run.metric(FlowRole::primary, [](const FlowResult& f) {
    return static_cast<double>(f.record.proactive_retx);
  });
  cell.mean_proactive_retx = proactive.empty() ? 0.0 : proactive.mean();
  cell.fault_drops = run.faults.total_drops();
  cell.corrupted_rejected = run.delivery.corrupted_rejected;
  cell.duplicate_rejected = run.delivery.duplicate_rejected;
  cell.audit_violations = run.audit_violations;
  cell.trace_hash = run.trace_hash;
  cell.events_executed = run.events_executed;
  cell.trip = run.budget_report.tripped;
  return cell;
}

}  // namespace

ChaosSweepResult chaos_sweep(const ChaosSweepConfig& config,
                             std::span<const schemes::Scheme> schemes) {
  const std::vector<ChaosScenario> catalog = chaos_catalog();
  const std::size_t scheme_count = schemes.size();
  ChaosSweepResult result;
  result.cells.assign(catalog.size() * scheme_count, ChaosCell{});
  std::vector<ChaosCell>& cells = result.cells;

  const auto cell_name = [&](std::size_t i) {
    return catalog[i / scheme_count].name + "/" +
           std::string{schemes::name(schemes[i % scheme_count])};
  };

  SupervisorConfig supervisor;
  supervisor.seed = config.runner.seed;
  supervisor.retry = config.retry;
  supervisor.threads = config.threads;

  result.supervision = supervised_for(
      cells.size(),
      [&](const CellAttempt& id) {
        const std::size_t i = id.index;
        const ChaosScenario& scenario = catalog[i / scheme_count];
        const schemes::Scheme scheme = schemes[i % scheme_count];
        const bool exporting = !config.telemetry_dir.empty();
        const bool need_hub = exporting || config.record_percentiles;
        // One hub per cell, alive only for the cell: the sweep shards cells
        // across threads and the hub is not thread-safe.
        std::optional<telemetry::Hub> hub;
        if (need_hub) hub.emplace();
        telemetry::RunManifest manifest;
        RunResult run = run_cell(config, scenario, scheme, id.seed,
                                 need_hub ? &*hub : nullptr,
                                 exporting ? &manifest : nullptr);
        // Keep the (possibly partial) summary either way: a quarantined
        // cell's last attempt is the triage evidence.
        cells[i] = summarize(scenario, scheme, run);
        cells[i].attempts = id.attempt + 1;
        if (config.record_percentiles) {
          const telemetry::Histogram& fct = *hub->transport().fct;
          cells[i].p50_fct_ms =
              static_cast<double>(fct.value_at_quantile(0.5)) / 1e6;
          cells[i].p99_fct_ms =
              static_cast<double>(fct.value_at_quantile(0.99)) / 1e6;
          cells[i].p999_fct_ms =
              static_cast<double>(fct.value_at_quantile(0.999)) / 1e6;
        }
        if (run.budget_report.tripped != sim::BudgetTrip::none) {
          return AttemptOutcome::from_budget(run.budget_report);
        }
        if (exporting) {
          export_cell(config.telemetry_dir, scenario, scheme, *hub, manifest,
                      run.sim_end);
        }
        if (config.verify_determinism) {
          RunResult rerun = run_cell(config, scenario, scheme, id.seed);
          cells[i].deterministic = rerun.trace_hash == run.trace_hash;
        }
        return AttemptOutcome{};
      },
      supervisor, cell_name);

  for (const telemetry::QuarantineRecord& record :
       result.supervision.manifest.records) {
    cells[record.cell_index].quarantined = true;
  }
  return result;
}

}  // namespace halfback::exp
