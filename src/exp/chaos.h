// Chaos sweep: the fault matrix × schemes robustness experiment.
//
// Runs every scheme through a catalog of adversarial path conditions
// (bursty loss, reordering, duplication, corruption, blackouts, flapping,
// delay spikes, and an everything-at-once composite) on the Emulab
// dumbbell, and reports FCT plus recovery metrics per cell. Every cell is
// deterministic: same seed + same fault config ⇒ identical trace hash
// (chaos_sweep can re-run each cell to prove it). The paper's claim is
// that Halfback runs short flows "quickly and safely"; this is where
// "safely" gets stress-tested beyond i.i.d. loss.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "exp/emulab.h"
#include "exp/supervisor.h"
#include "netfault/fault_config.h"
#include "schemes/scheme.h"
#include "sim/bytes.h"

namespace halfback::exp {

/// A named fault configuration applied to the bottleneck (both directions).
struct ChaosScenario {
  std::string name;
  netfault::FaultConfig faults;
};

/// The standard scenario catalog, "clean" first. Severities are chosen so
/// a capped-RTO transport finishes every flow within the default drain:
/// hostile enough to exercise every recovery path, not a denial of
/// service. The blackout scenario's outage (2.5 s) deliberately exceeds
/// the 1 s initial RTO, so recovery requires backed-off retransmission.
std::vector<ChaosScenario> chaos_catalog();

/// One (scenario, scheme) cell of the chaos matrix.
struct ChaosCell {
  std::string scenario;
  schemes::Scheme scheme{};
  std::size_t flows = 0;
  std::size_t unfinished = 0;          ///< 0 = every flow completed
  double mean_fct_ms = 0.0;    // lint: unit-ok(statistics edge: report column in ms)
  double median_fct_ms = 0.0;  // lint: unit-ok(statistics edge: report column in ms)
  /// FCT tail percentiles from the cell hub's transport.fct_ns histogram
  /// (exact bucket-walk interpolation; see Histogram::value_at_quantile).
  /// Zero unless ChaosSweepConfig::record_percentiles is set.
  double p50_fct_ms = 0.0;   // lint: unit-ok(statistics edge: report column in ms)
  double p99_fct_ms = 0.0;   // lint: unit-ok(statistics edge: report column in ms)
  double p999_fct_ms = 0.0;  // lint: unit-ok(statistics edge: report column in ms)
  double mean_timeouts = 0.0;
  double mean_normal_retx = 0.0;
  double mean_proactive_retx = 0.0;
  std::uint64_t fault_drops = 0;       ///< injected drops (burst+outage+flap)
  std::uint64_t corrupted_rejected = 0;
  std::uint64_t duplicate_rejected = 0;
  std::uint64_t audit_violations = 0;  ///< 0 = invariants held under chaos
  std::uint64_t trace_hash = 0;
  /// True when determinism was verified (or not requested); false means a
  /// same-seed re-run produced a different trace hash.
  bool deterministic = true;

  /// Supervision outcome (see exp/supervisor.h). A quarantined cell's
  /// statistics above are the partial state of its last attempt at the
  /// budget trip — kept for triage, excluded from "the run finished"
  /// claims by the quarantined flag.
  std::uint64_t events_executed = 0;     ///< last attempt's dispatch count
  std::uint32_t attempts = 1;            ///< attempts consumed (1 + retries)
  bool quarantined = false;              ///< exhausted its retry budget
  sim::BudgetTrip trip = sim::BudgetTrip::none;  ///< last attempt's trip
};

/// The stock per-cell budget: a hard event ceiling plus a storm detector
/// tuned so healthy catalog cells (~10k events over ~36 sim-seconds) never
/// fill a detector window, while an event storm (tens of millions of
/// events crammed into milliseconds of sim time) trips within one window.
inline sim::RunBudget default_cell_budget() {
  sim::RunBudget budget;
  budget.max_events = 50'000'000;
  budget.storm_window = 250'000;
  budget.storm_events_per_sim_second = 5e6;
  return budget;
}

struct ChaosSweepConfig {
  EmulabRunner::Config runner;
  sim::Bytes flow_bytes = 100'000;  ///< the paper's short-flow size
  /// Evenly spaced arrivals (deterministic by construction): flow i starts
  /// at i * arrival_spacing, so several flows are mid-flight when the
  /// blackout scenarios strike.
  std::size_t flows_per_cell = 8;
  sim::Time arrival_spacing = sim::Time::milliseconds(800);
  unsigned threads = 0;
  /// Re-run every cell with an identical config and require an identical
  /// trace hash (the determinism acceptance gate; doubles the work).
  bool verify_determinism = false;
  /// When non-empty, each cell runs with its own telemetry hub and writes
  /// `<dir>/<scenario>-<scheme>.{metrics.jsonl,trace.json,manifest.json}`
  /// there (the directory must already exist). Purely observational: cell
  /// results and trace hashes are identical with or without it.
  std::string telemetry_dir;
  /// Fill each cell's p50/p99/p99.9 FCT columns from a per-cell telemetry
  /// hub's FCT histogram. Purely observational (the hub never perturbs the
  /// run), and deterministic: jobs=1 and jobs=N sweeps produce identical
  /// percentile columns.
  bool record_percentiles = false;

  /// Per-cell run budget. The default is deliberately generous — every
  /// catalog cell passes with orders of magnitude of headroom — and exists
  /// to catch the next rc3×adversarial-style storm with a structured
  /// quarantine instead of a crawling CI job. See docs/robustness.md.
  sim::RunBudget cell_budget = default_cell_budget();
  /// Per-cell wall-clock watchdog; zero (default) arms nothing.
  std::chrono::milliseconds cell_wall_limit{0};
  /// Retry policy for cells whose budget trips. The default quarantines
  /// after the first failure (a deterministic cell fails identically on a
  /// same-seed retry; retries draw fresh seeds, which changes the cell's
  /// claimed result, so they are opt-in).
  RetryPolicy retry;
};

/// Outcome of a supervised chaos sweep: the per-cell matrix plus the
/// completeness accounting / quarantine manifest.
struct ChaosSweepResult {
  std::vector<ChaosCell> cells;  ///< scenario-major, one per (scenario, scheme)
  SupervisedReport supervision;

  bool complete() const { return supervision.complete(); }
};

/// Run the full matrix: one cell per (catalog scenario, scheme), under the
/// supervised executor (budgets, retry, quarantine — exp/supervisor.h).
/// Cells are ordered scenario-major, matching chaos_catalog() order.
ChaosSweepResult chaos_sweep(const ChaosSweepConfig& config,
                             std::span<const schemes::Scheme> schemes);

}  // namespace halfback::exp
