// Chaos sweep: the fault matrix × schemes robustness experiment.
//
// Runs every scheme through a catalog of adversarial path conditions
// (bursty loss, reordering, duplication, corruption, blackouts, flapping,
// delay spikes, and an everything-at-once composite) on the Emulab
// dumbbell, and reports FCT plus recovery metrics per cell. Every cell is
// deterministic: same seed + same fault config ⇒ identical trace hash
// (chaos_sweep can re-run each cell to prove it). The paper's claim is
// that Halfback runs short flows "quickly and safely"; this is where
// "safely" gets stress-tested beyond i.i.d. loss.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "exp/emulab.h"
#include "netfault/fault_config.h"
#include "schemes/scheme.h"
#include "sim/bytes.h"

namespace halfback::exp {

/// A named fault configuration applied to the bottleneck (both directions).
struct ChaosScenario {
  std::string name;
  netfault::FaultConfig faults;
};

/// The standard scenario catalog, "clean" first. Severities are chosen so
/// a capped-RTO transport finishes every flow within the default drain:
/// hostile enough to exercise every recovery path, not a denial of
/// service. The blackout scenario's outage (2.5 s) deliberately exceeds
/// the 1 s initial RTO, so recovery requires backed-off retransmission.
std::vector<ChaosScenario> chaos_catalog();

/// One (scenario, scheme) cell of the chaos matrix.
struct ChaosCell {
  std::string scenario;
  schemes::Scheme scheme{};
  std::size_t flows = 0;
  std::size_t unfinished = 0;          ///< 0 = every flow completed
  double mean_fct_ms = 0.0;    // lint: unit-ok(statistics edge: report column in ms)
  double median_fct_ms = 0.0;  // lint: unit-ok(statistics edge: report column in ms)
  double mean_timeouts = 0.0;
  double mean_normal_retx = 0.0;
  double mean_proactive_retx = 0.0;
  std::uint64_t fault_drops = 0;       ///< injected drops (burst+outage+flap)
  std::uint64_t corrupted_rejected = 0;
  std::uint64_t duplicate_rejected = 0;
  std::uint64_t audit_violations = 0;  ///< 0 = invariants held under chaos
  std::uint64_t trace_hash = 0;
  /// True when determinism was verified (or not requested); false means a
  /// same-seed re-run produced a different trace hash.
  bool deterministic = true;
};

struct ChaosSweepConfig {
  EmulabRunner::Config runner;
  sim::Bytes flow_bytes = 100'000;  ///< the paper's short-flow size
  /// Evenly spaced arrivals (deterministic by construction): flow i starts
  /// at i * arrival_spacing, so several flows are mid-flight when the
  /// blackout scenarios strike.
  std::size_t flows_per_cell = 8;
  sim::Time arrival_spacing = sim::Time::milliseconds(800);
  unsigned threads = 0;
  /// Re-run every cell with an identical config and require an identical
  /// trace hash (the determinism acceptance gate; doubles the work).
  bool verify_determinism = false;
  /// When non-empty, each cell runs with its own telemetry hub and writes
  /// `<dir>/<scenario>-<scheme>.{metrics.jsonl,trace.json,manifest.json}`
  /// there (the directory must already exist). Purely observational: cell
  /// results and trace hashes are identical with or without it.
  std::string telemetry_dir;
};

/// Run the full matrix: one cell per (catalog scenario, scheme).
/// Cells are ordered scenario-major, matching chaos_catalog() order.
std::vector<ChaosCell> chaos_sweep(const ChaosSweepConfig& config,
                                   std::span<const schemes::Scheme> schemes);

}  // namespace halfback::exp
