#include "exp/emulab.h"

#include <algorithm>

#include "audit/invariant_auditor.h"

namespace halfback::exp {

double RunResult::mean_fct_ms(FlowRole role) const {
  stats::Summary s = fct_ms(role);
  return s.empty() ? 0.0 : s.mean();
}

stats::Summary RunResult::fct_ms(FlowRole role, bool include_censored) const {
  stats::Summary s;
  for (const FlowResult& f : flows) {
    if (f.role != role) continue;
    if (f.finished) {
      s.add(f.record.fct().to_ms());
    } else if (include_censored) {
      s.add(f.censored_fct.to_ms());
    }
  }
  return s;
}

stats::Summary RunResult::metric(FlowRole role,
                                 double (*extract)(const FlowResult&)) const {
  stats::Summary s;
  for (const FlowResult& f : flows) {
    if (f.role == role) s.add(extract(f));
  }
  return s;
}

std::size_t RunResult::finished_count(FlowRole role) const {
  std::size_t n = 0;
  for (const FlowResult& f : flows) n += (f.role == role && f.finished) ? 1 : 0;
  return n;
}

std::size_t RunResult::unfinished_count(FlowRole role) const {
  std::size_t n = 0;
  for (const FlowResult& f : flows) n += (f.role == role && !f.finished) ? 1 : 0;
  return n;
}

RunResult EmulabRunner::run(const std::vector<WorkloadPart>& parts) {
  sim::Simulator simulator{config_.seed};
  net::Network network{simulator};

#ifdef HALFBACK_AUDIT
  audit::InvariantAuditor auditor;
  network.install_auditor(auditor);
#endif

  net::Dumbbell dumbbell = net::build_dumbbell(network, config_.dumbbell);

  // Chaos layer: when faults are configured, each bottleneck direction gets
  // its own deterministic injector. The RNGs derive from the experiment
  // seed (salted per direction) rather than the simulator's live stream, so
  // arrival processes, link loss draws, etc. are exactly those of the
  // fault-free run with the same seed.
  std::unique_ptr<netfault::FaultInjector> fault_forward;
  std::unique_ptr<netfault::FaultInjector> fault_reverse;
  if (config_.faults.any()) {
    sim::Random fault_seed_stream{config_.seed ^ 0xfa317c0de5eedULL};
    fault_forward = std::make_unique<netfault::FaultInjector>(
        config_.faults, fault_seed_stream.fork(0xf0));
    fault_reverse = std::make_unique<netfault::FaultInjector>(
        config_.faults, fault_seed_stream.fork(0x0f));
    dumbbell.bottleneck_forward->set_fault_hook(fault_forward.get());
    dumbbell.bottleneck_reverse->set_fault_hook(fault_reverse.get());
  }

  std::vector<std::unique_ptr<transport::TransportAgent>> agents;
  for (net::NodeId id : dumbbell.senders) {
    agents.push_back(std::make_unique<transport::TransportAgent>(simulator, network, id));
  }
  for (net::NodeId id : dumbbell.receivers) {
    agents.push_back(std::make_unique<transport::TransportAgent>(simulator, network, id));
  }
  const std::size_t sender_count = dumbbell.senders.size();

  // Per-flow bottleneck loss accounting (data direction).
  std::unordered_map<net::FlowId, std::uint32_t> drops;
  dumbbell.bottleneck_forward->queue().set_drop_callback(
      [&drops](const net::Packet& p) {
        if (p.type == net::PacketType::data) ++drops[p.flow];
      });

  schemes::SchemeContext base_context;
  base_context.sender_config = config_.sender_config;
  base_context.halfback_config = config_.halfback_config;

  struct LiveFlow {
    transport::SenderBase* sender = nullptr;
    FlowRole role = FlowRole::primary;
  };
  std::unordered_map<net::FlowId, LiveFlow> live;
  net::FlowId next_flow = 1;
  std::size_t next_pair = 0;
  sim::Time last_arrival;

  // One context per part (they share the path cache through base_context's
  // copy only if created here; TCP-Cache parts share within a part).
  std::vector<schemes::SchemeContext> contexts;
  contexts.reserve(parts.size());
  for (const WorkloadPart& part : parts) {
    schemes::SchemeContext context = base_context;
    if (part.sender_config.has_value()) context.sender_config = *part.sender_config;
    contexts.push_back(std::move(context));
  }

  for (std::size_t part_index = 0; part_index < parts.size(); ++part_index) {
    const WorkloadPart& part = parts[part_index];
    schemes::SchemeContext& context = contexts[part_index];
    for (const workload::FlowArrival& arrival : part.schedule) {
      last_arrival = std::max(last_arrival, arrival.at);
      const net::FlowId flow = next_flow++;
      const std::size_t pair = next_pair++ % sender_count;
      const schemes::Scheme scheme = part.scheme;
      const FlowRole role = part.role;
      const std::uint64_t bytes = arrival.bytes;
      simulator.schedule_at(arrival.at, [&, &context = context, flow, pair, scheme, role,
                                         bytes] {
        auto sender = schemes::make_sender(
            scheme, context, simulator, network.node(dumbbell.senders[pair]),
            dumbbell.receivers[pair], flow, bytes);
        transport::SenderBase& ref =
            agents[pair]->start_flow(std::move(sender));
        live[flow] = LiveFlow{&ref, role};
      });
    }
  }

  simulator.run_until(last_arrival + config_.drain);

  RunResult result;
  result.sim_end = simulator.now();
  // Walk flows in id (creation) order: iterating the unordered map directly
  // would make result order — and FCT stats under start-time ties — depend
  // on hash layout.
  for (net::FlowId flow = 1; flow < next_flow; ++flow) {
    const auto live_it = live.find(flow);
    if (live_it == live.end()) continue;  // arrival never fired (past drain)
    LiveFlow& live_flow = live_it->second;
    FlowResult fr;
    fr.record = live_flow.sender->record();
    fr.role = live_flow.role;
    fr.finished = live_flow.sender->complete();
    if (!fr.finished) fr.censored_fct = simulator.now() - fr.record.start_time;
    auto it = drops.find(flow);
    if (it != drops.end()) fr.bottleneck_drops = it->second;
    result.flows.push_back(std::move(fr));
  }
  std::sort(result.flows.begin(), result.flows.end(),
            [](const FlowResult& a, const FlowResult& b) {
              return a.record.start_time < b.record.start_time;
            });
  result.bottleneck_drops_total =
      dumbbell.bottleneck_forward->queue().stats().dropped_packets;
  result.bottleneck_utilization =
      dumbbell.bottleneck_forward->utilization(simulator.now());
  for (const auto& agent : agents) {
    const transport::DeliveryStats& d = agent->delivery_stats();
    result.delivery.accepted += d.accepted;
    result.delivery.corrupted_rejected += d.corrupted_rejected;
    result.delivery.duplicate_rejected += d.duplicate_rejected;
  }
  for (const netfault::FaultInjector* injector :
       {fault_forward.get(), fault_reverse.get()}) {
    if (injector == nullptr) continue;
    const netfault::InjectorStats& s = injector->stats();
    result.faults.packets_seen += s.packets_seen;
    result.faults.outage_drops += s.outage_drops;
    result.faults.flap_drops += s.flap_drops;
    result.faults.burst_drops += s.burst_drops;
    result.faults.corrupted += s.corrupted;
    result.faults.duplicated += s.duplicated;
    result.faults.jittered += s.jittered;
    result.faults.delay_spikes += s.delay_spikes;
  }
#ifdef HALFBACK_AUDIT
  auditor.finalize(simulator.queue().empty());
  result.trace_hash = auditor.trace_hash();
  result.audit_violations = auditor.total_violations();
#endif
  return result;
}

}  // namespace halfback::exp
