#include "exp/emulab.h"

#include <algorithm>
#include <sstream>

#include "audit/invariant_auditor.h"

namespace halfback::exp {
namespace {

/// Canonical text form of the reproducibility-relevant config knobs, hashed
/// into the run manifest's config digest. Append-only: adding a field
/// changes every digest, which is fine (digests compare within one
/// version), but keep the order stable within a version.
std::string config_fingerprint(const EmulabRunner::Config& c) {
  std::ostringstream out;
  out << "seed=" << c.seed << ";senders=" << c.dumbbell.sender_count
      << ";receivers=" << c.dumbbell.receiver_count
      << ";access_bps=" << c.dumbbell.access_rate.bps()
      << ";bottleneck_bps=" << c.dumbbell.bottleneck_rate.bps()
      << ";rtt_ns=" << c.dumbbell.rtt.ns()
      << ";buffer=" << c.dumbbell.bottleneck_buffer_bytes.count()
      << ";queue=" << static_cast<int>(c.dumbbell.bottleneck_queue)
      << ";iw=" << c.sender_config.initial_window
      << ";rwnd=" << c.sender_config.receive_window_segments
      << ";threshold=" << c.halfback_config.pacing_threshold_segments
      << ";order=" << static_cast<int>(c.halfback_config.order)
      << ";rate=" << static_cast<int>(c.halfback_config.rate)
      << ";copies=" << c.halfback_config.copies_per_ack
      << ";burst=" << c.halfback_config.initial_burst_segments
      << ";drain_ns=" << c.drain.ns()
      << ";budget_events=" << c.budget.max_events
      << ";budget_horizon_ns=" << c.budget.max_sim_time.ns()
      << ";storm_window=" << c.budget.storm_window
      << ";storm_rate=" << c.budget.storm_events_per_sim_second
      << ";faults=" << c.faults.any()
      << ";ge=" << c.faults.gilbert_elliott.p_good_to_bad.value()
      << ";corrupt=" << c.faults.corrupt.probability.value()
      << ";dup=" << c.faults.duplicate.probability.value()
      << ";reorder=" << c.faults.reorder.probability.value()
      << ";spike=" << c.faults.delay_spike.probability.value()
      << ";outages=" << c.faults.outages.size();
  return out.str();
}

}  // namespace

double RunResult::mean_fct_ms(FlowRole role) const {
  stats::Summary s = fct_ms(role);
  return s.empty() ? 0.0 : s.mean();
}

stats::Summary RunResult::fct_ms(FlowRole role, bool include_censored) const {
  stats::Summary s;
  for (const FlowResult& f : flows) {
    if (f.role != role) continue;
    if (f.finished) {
      s.add(f.record.fct().to_ms());
    } else if (include_censored) {
      s.add(f.censored_fct.to_ms());
    }
  }
  return s;
}

stats::Summary RunResult::metric(FlowRole role,
                                 double (*extract)(const FlowResult&)) const {
  stats::Summary s;
  for (const FlowResult& f : flows) {
    if (f.role == role) s.add(extract(f));
  }
  return s;
}

std::size_t RunResult::finished_count(FlowRole role) const {
  std::size_t n = 0;
  for (const FlowResult& f : flows) n += (f.role == role && f.finished) ? 1 : 0;
  return n;
}

std::size_t RunResult::unfinished_count(FlowRole role) const {
  std::size_t n = 0;
  for (const FlowResult& f : flows) n += (f.role == role && !f.finished) ? 1 : 0;
  return n;
}

RunResult EmulabRunner::run(const std::vector<WorkloadPart>& parts) {
  sim::Simulator simulator{config_.seed};
  net::Network network{simulator};

#ifdef HALFBACK_AUDIT
  audit::InvariantAuditor auditor;
  network.install_auditor(auditor);
#endif

  net::Dumbbell dumbbell = net::build_dumbbell(network, config_.dumbbell);

  // Chaos layer: when faults are configured, each bottleneck direction gets
  // its own deterministic injector. The RNGs derive from the experiment
  // seed (salted per direction) rather than the simulator's live stream, so
  // arrival processes, link loss draws, etc. are exactly those of the
  // fault-free run with the same seed.
  std::unique_ptr<netfault::FaultInjector> fault_forward;
  std::unique_ptr<netfault::FaultInjector> fault_reverse;
  if (config_.faults.any()) {
    sim::Random fault_seed_stream{config_.seed ^ 0xfa317c0de5eedULL};
    fault_forward = std::make_unique<netfault::FaultInjector>(
        config_.faults, fault_seed_stream.fork(0xf0));
    fault_reverse = std::make_unique<netfault::FaultInjector>(
        config_.faults, fault_seed_stream.fork(0x0f));
    dumbbell.bottleneck_forward->set_fault_hook(fault_forward.get());
    dumbbell.bottleneck_reverse->set_fault_hook(fault_reverse.get());
  }

  if (config_.telemetry != nullptr) {
    config_.telemetry->instrument_network(network);
  }

  std::vector<std::unique_ptr<transport::TransportAgent>> agents;
  for (net::NodeId id : dumbbell.senders) {
    agents.push_back(std::make_unique<transport::TransportAgent>(simulator, network, id));
  }
  for (net::NodeId id : dumbbell.receivers) {
    agents.push_back(std::make_unique<transport::TransportAgent>(simulator, network, id));
  }
  if (config_.telemetry != nullptr) {
    for (auto& agent : agents) agent->set_telemetry(config_.telemetry);
  }
  const std::size_t sender_count = dumbbell.senders.size();

  // Per-flow bottleneck loss accounting (data direction).
  std::unordered_map<net::FlowId, std::uint32_t> drops;
  dumbbell.bottleneck_forward->queue().set_drop_callback(
      [&drops](const net::Packet& p) {
        if (p.type == net::PacketType::data) ++drops[p.flow];
      });

  schemes::SchemeContext base_context;
  base_context.sender_config = config_.sender_config;
  base_context.halfback_config = config_.halfback_config;

  struct LiveFlow {
    transport::SenderBase* sender = nullptr;
    FlowRole role = FlowRole::primary;
  };
  std::unordered_map<net::FlowId, LiveFlow> live;
  net::FlowId next_flow = 1;
  std::size_t next_pair = 0;
  sim::Time last_arrival;

  // One context per part (they share the path cache through base_context's
  // copy only if created here; TCP-Cache parts share within a part).
  std::vector<schemes::SchemeContext> contexts;
  contexts.reserve(parts.size());
  for (const WorkloadPart& part : parts) {
    schemes::SchemeContext context = base_context;
    if (part.sender_config.has_value()) context.sender_config = *part.sender_config;
    contexts.push_back(std::move(context));
  }

  for (std::size_t part_index = 0; part_index < parts.size(); ++part_index) {
    const WorkloadPart& part = parts[part_index];
    schemes::SchemeContext& context = contexts[part_index];
    for (const workload::FlowArrival& arrival : part.schedule) {
      last_arrival = std::max(last_arrival, arrival.at);
      const net::FlowId flow = next_flow++;
      const std::size_t pair = next_pair++ % sender_count;
      const schemes::Scheme scheme = part.scheme;
      const FlowRole role = part.role;
      const std::uint64_t bytes = arrival.bytes;
      simulator.schedule_at(arrival.at, [&, &context = context, flow, pair, scheme, role,
                                         bytes] {
        auto sender = schemes::make_sender(
            scheme, context, simulator, network.node(dumbbell.senders[pair]),
            dumbbell.receivers[pair], flow, bytes);
        transport::SenderBase& ref =
            agents[pair]->start_flow(std::move(sender));
        live[flow] = LiveFlow{&ref, role};
      });
    }
  }

  // Budgets: installing an enforcer switches the simulator onto the
  // budgeted dispatch loop; with neither a budget nor a watchdog the run
  // stays on the seed's unbudgeted path. The watchdog needs the enforcer
  // even when no deterministic limit is set — the budgeted loop is what
  // polls the abort flag and records the wall_clock trip.
  std::optional<sim::BudgetEnforcer> enforcer;
  if (config_.budget.any() || config_.wall_limit.count() > 0) {
    enforcer.emplace(config_.budget);
    simulator.set_budget(&*enforcer);
  }
  // The profiler rides the same instrumented loop as the budget enforcer;
  // with neither installed the run stays on the seed's plain path.
  if (config_.profiler != nullptr) simulator.set_profiler(config_.profiler);
  {
    std::optional<sim::WallClockWatchdog> watchdog;
    if (config_.wall_limit.count() > 0) {
      watchdog.emplace(simulator, config_.wall_limit);
    }
    simulator.run_until(last_arrival + config_.drain);
    // Scope exit disarms and joins the watchdog: from here on the run is
    // single-threaded again and fired() is stable.
  }

  RunResult result;
  result.sim_end = simulator.now();
  result.events_executed = simulator.events_executed();
  if (enforcer.has_value()) result.budget_report = enforcer->report();
  // Walk flows in id (creation) order: iterating the unordered map directly
  // would make result order — and FCT stats under start-time ties — depend
  // on hash layout.
  for (net::FlowId flow = 1; flow < next_flow; ++flow) {
    const auto live_it = live.find(flow);
    if (live_it == live.end()) continue;  // arrival never fired (past drain)
    LiveFlow& live_flow = live_it->second;
    FlowResult fr;
    fr.record = live_flow.sender->record();
    fr.role = live_flow.role;
    fr.finished = live_flow.sender->complete();
    if (!fr.finished) fr.censored_fct = simulator.now() - fr.record.start_time;
    auto it = drops.find(flow);
    if (it != drops.end()) fr.bottleneck_drops = it->second;
    result.flows.push_back(std::move(fr));
  }
  std::sort(result.flows.begin(), result.flows.end(),
            [](const FlowResult& a, const FlowResult& b) {
              return a.record.start_time < b.record.start_time;
            });
  result.bottleneck_drops_total =
      dumbbell.bottleneck_forward->queue().stats().dropped_packets;
  result.bottleneck_utilization =
      dumbbell.bottleneck_forward->utilization(simulator.now());
  for (const auto& agent : agents) {
    const transport::DeliveryStats& d = agent->delivery_stats();
    result.delivery.accepted += d.accepted;
    result.delivery.corrupted_rejected += d.corrupted_rejected;
    result.delivery.duplicate_rejected += d.duplicate_rejected;
  }
  for (const netfault::FaultInjector* injector :
       {fault_forward.get(), fault_reverse.get()}) {
    if (injector == nullptr) continue;
    const netfault::InjectorStats& s = injector->stats();
    result.faults.packets_seen += s.packets_seen;
    result.faults.outage_drops += s.outage_drops;
    result.faults.flap_drops += s.flap_drops;
    result.faults.burst_drops += s.burst_drops;
    result.faults.corrupted += s.corrupted;
    result.faults.duplicated += s.duplicated;
    result.faults.jittered += s.jittered;
    result.faults.delay_spikes += s.delay_spikes;
  }
#ifdef HALFBACK_AUDIT
  auditor.finalize(simulator.queue().empty());
  result.trace_hash = auditor.trace_hash();
  result.audit_violations = auditor.total_violations();
#endif
  if (config_.telemetry != nullptr) {
    config_.telemetry->snapshot_network(network, simulator.now());
    for (const netfault::FaultInjector* injector :
         {fault_forward.get(), fault_reverse.get()}) {
      if (injector != nullptr) config_.telemetry->record_injector(injector->stats());
    }
  }
  return result;
}

telemetry::RunManifest EmulabRunner::manifest(const RunResult& result,
                                              std::string experiment) const {
  telemetry::RunManifest m;
  m.experiment = std::move(experiment);
  m.seed = config_.seed;
  m.config_digest = telemetry::fnv1a64(config_fingerprint(config_));
  m.trace_hash = result.trace_hash;
  m.sim_end = result.sim_end;
  if (config_.telemetry != nullptr) {
    const telemetry::MetricRegistry& registry = config_.telemetry->registry();
    if (const auto* e = registry.find("sim.events_dispatched")) {
      m.events_dispatched = registry.counter_at(*e).value();
    }
  }
  if (config_.profiler != nullptr) {
    for (const sim::DispatchProfiler::Row& row : config_.profiler->rows()) {
      m.profile.push_back(telemetry::RunManifest::ProfileRow{
          row.type_name, row.count, row.cycles});
    }
  }
  return m;
}

}  // namespace halfback::exp
