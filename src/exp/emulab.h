// The Emulab experiment runner: replays flow schedules over the Fig. 4
// dumbbell and collects per-flow results. Shared by Figs. 10-17.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/topology.h"
#include "netfault/fault_config.h"
#include "netfault/fault_injector.h"
#include "schemes/factory.h"
#include "sim/budget.h"
#include "sim/dispatch_profiler.h"
#include "sim/simulator.h"
#include "stats/summary.h"
#include "telemetry/manifest.h"
#include "transport/agent.h"
#include "workload/flow_schedule.h"

namespace halfback::exp {

/// Role a flow plays in a mixed workload.
enum class FlowRole : std::uint8_t { primary, competing, background };

/// One flow's outcome, with network-side loss accounting.
struct FlowResult {
  transport::FlowRecord record;
  FlowRole role = FlowRole::primary;
  std::uint32_t bottleneck_drops = 0;  ///< this flow's data packets dropped
  bool finished = false;
  sim::Time censored_fct;  ///< elapsed time at sim end for unfinished flows
};

/// Aggregated outcome of one run.
struct RunResult {
  std::vector<FlowResult> flows;
  std::uint64_t bottleneck_drops_total = 0;
  double bottleneck_utilization = 0.0;
  sim::Time sim_end;
  /// Events the simulator dispatched over the whole run. A cell whose
  /// event count explodes relative to its peers signals a scheme/fault
  /// pathology (an RTO storm, a send loop that stopped making progress)
  /// even when the run still finishes — regression tests pin it.
  std::uint64_t events_executed = 0;

  /// Filled when the build compiles audit hooks (HALFBACK_AUDIT): run-trace
  /// hash (same seed + schedules => same hash) and invariant-violation
  /// count (0 = clean run).
  std::uint64_t trace_hash = 0;
  std::uint64_t audit_violations = 0;

  /// Budget outcome (sim/budget.h). `tripped == BudgetTrip::none` — always
  /// the case when Config enables no budget — means the run finished
  /// normally; anything else means the run aborted early and the flow
  /// results below are the partial state at the trip.
  sim::BudgetReport budget_report;

  /// Transport-boundary rejection counters summed over every host agent.
  /// The rejected fields stay zero unless the run injects faults.
  transport::DeliveryStats delivery;
  /// Per-cause fault attribution summed over the installed injectors
  /// (all-zero when Config::faults is empty and no injector was installed).
  netfault::InjectorStats faults;

  /// Mean FCT in ms over finished flows of `role`; unfinished flows are
  /// included at their censored (elapsed) time so collapse shows up
  /// instead of being silently excluded.
  double mean_fct_ms(FlowRole role) const;
  stats::Summary fct_ms(FlowRole role, bool include_censored = true) const;
  stats::Summary metric(FlowRole role, double (*extract)(const FlowResult&)) const;
  std::size_t finished_count(FlowRole role) const;
  std::size_t unfinished_count(FlowRole role) const;
};

/// One scheduled workload component: a schedule of flows, all using one
/// scheme, tagged with a role.
struct WorkloadPart {
  schemes::Scheme scheme;
  std::vector<workload::FlowArrival> schedule;
  FlowRole role = FlowRole::primary;
  /// Overrides the runner's sender config for this part's flows — e.g.
  /// bulk background flows advertise a large receive window so they can
  /// fill big router buffers (the §4.2.3 bufferbloat experiments), while
  /// short flows keep the 141 KB Windows-XP default.
  std::optional<transport::SenderConfig> sender_config;
};

/// Builds a fresh dumbbell simulation and replays workload parts on it.
///
/// Flows are assigned to sender/receiver host pairs round-robin; every run
/// is deterministic given the seed and schedules.
class EmulabRunner {
 public:
  struct Config {
    net::DumbbellConfig dumbbell;
    std::uint64_t seed = 1;
    transport::SenderConfig sender_config;
    schemes::HalfbackConfig halfback_config;
    /// Extra simulated time after the last arrival before declaring
    /// unfinished flows censored.
    sim::Time drain = sim::Time::seconds(30);
    /// Fault injection on the bottleneck (both directions). When any() is
    /// false — the default — no injector is installed at all and the run
    /// is bit-identical to one from before the netfault layer existed.
    /// Each direction gets an independent injector whose RNG derives from
    /// `seed` (never from the simulator's live stream, which would perturb
    /// the fault-free baseline). See docs/fault-injection.md.
    netfault::FaultConfig faults;
    /// Deterministic run budget (sim/budget.h). Default-constructed —
    /// nothing enabled — leaves the dispatch loop on the unbudgeted seed
    /// path, bit-identical to runs from before budgets existed. With any
    /// limit set, a trip aborts the run and RunResult::budget_report says
    /// why.
    sim::RunBudget budget;
    /// Wall-clock watchdog limit; zero (default) arms nothing. Strictly a
    /// safety net: a run that finishes inside the limit is bit-identical
    /// to an unwatched run.
    std::chrono::milliseconds wall_limit{0};
    /// Optional telemetry hub (owned by the caller, one per run). When set,
    /// the run installs it on the simulator, links, and every flow, and
    /// snapshots network gauges at the end. Purely observational: trace
    /// hashes are identical with or without it (docs/telemetry.md).
    telemetry::Hub* telemetry = nullptr;

    /// Optional in-sim cost profiler (owned by the caller). When set, the
    /// simulator runs its instrumented dispatch loop and attributes a
    /// cycle count to every event type; manifest() exports the table.
    /// Event-for-event identical to an unprofiled run — dispatch counts
    /// are deterministic, only the cycle columns vary. Not part of the
    /// config fingerprint.
    sim::DispatchProfiler* profiler = nullptr;
  };

  explicit EmulabRunner(Config config) : config_{std::move(config)} {}

  /// Run all parts on one fresh network.
  RunResult run(const std::vector<WorkloadPart>& parts);

  /// Provenance manifest for a finished run (seed, config digest, trace
  /// hash, end-of-run counters). `experiment` names the caller's context,
  /// e.g. "emulab" or "chaos:rc-2". Wall time is left zero for the caller
  /// to stamp.
  telemetry::RunManifest manifest(const RunResult& result,
                                  std::string experiment) const;

 private:
  Config config_;
};

}  // namespace halfback::exp
