#include "exp/homenet.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "exp/censor.h"
#include "exp/parallel.h"
#include "schemes/factory.h"
#include "transport/agent.h"

namespace halfback::exp {

namespace {
// Parameters follow the provider descriptions in §4.2.2: AT&T DSL ~6 Mbps
// behind a home wireless router (bloated DSL buffer, wireless loss),
// Comcast 25 Mbps wired, ConnectivityU shared-building WiFi, and
// ConnectivityU wired.
constexpr std::array<HomeNetProfile, 4> kProfiles{{
    {"comcast-wired", sim::DataRate::megabits_per_second(25),
     sim::DataRate::megabits_per_second(5), 0.0, 192'000},
    {"connectivityu-wired", sim::DataRate::megabits_per_second(100),
     sim::DataRate::megabits_per_second(100), 0.0, 128'000},
    {"connectivityu-wifi", sim::DataRate::megabits_per_second(18),
     sim::DataRate::megabits_per_second(8), 0.008, 64'000},
    {"att-dsl-wifi", sim::DataRate::megabits_per_second(6),
     sim::DataRate::kilobits_per_second(700), 0.01, 384'000},
}};
}  // namespace

std::span<const HomeNetProfile> home_profiles() { return kProfiles; }

HomeNetEnv::HomeNetEnv(HomeNetConfig config) : config_{config} {
  sim::Random rng{config_.seed};
  server_rtts_.reserve(static_cast<std::size_t>(config_.server_count));
  for (int i = 0; i < config_.server_count; ++i) {
    // Sampled in ms, converted to sim::Time at the boundary.
    server_rtts_.push_back(sim::Time::milliseconds(
        std::clamp(rng.lognormal(std::log(60.0), 1.0), 2.0, 400.0)));
  }
}

std::vector<TrialResult> HomeNetEnv::run(schemes::Scheme scheme,
                                         const HomeNetProfile& profile) const {
  std::vector<TrialResult> results(server_rtts_.size());
  parallel_for(
      server_rtts_.size(),
      [&](std::size_t i) {
        sim::Simulator simulator{config_.seed * 131 + i};
        net::Network network{simulator};
        net::AccessPathConfig apc;
        apc.rtt = server_rtts_[i];
        apc.downlink_rate = profile.downlink;
        apc.uplink_rate = profile.uplink;
        apc.downlink_buffer_bytes = profile.buffer_bytes;
        apc.downlink_loss_rate = profile.loss_rate;
        net::AccessPath ap = net::build_access_path(network, apc);

        transport::TransportAgent server_agent{simulator, network, ap.server};
        transport::TransportAgent client_agent{simulator, network, ap.client};

        schemes::SchemeContext context;
        context.sender_config = config_.sender_config;
        auto sender = schemes::make_sender(scheme, context, simulator,
                                           network.node(ap.server), ap.client,
                                           /*flow=*/1, config_.flow_bytes);
        transport::SenderBase& ref = server_agent.start_flow(std::move(sender));
        // Same deadline-censoring semantics as PlanetLabEnv (exp/censor.h):
        // stop as soon as the flow completes, and charge an unfinished flow
        // the full timeout.
        drive_until_complete_or_deadline(
            simulator, [&]() -> const transport::SenderBase* { return &ref; },
            config_.per_trial_timeout);

        TrialResult r;
        r.path_rtt = server_rtts_[i];
        r.record = ref.record();
        r.finished = ref.complete();
        if (!r.finished) censor_record_at(r.record, config_.per_trial_timeout);
        r.saw_loss = r.record.normal_retx > 0 || r.record.timeouts > 0;
        results[i] = r;
      },
      config_.threads);
  return results;
}

}  // namespace halfback::exp
