// Home access network evaluation (§4.2.2, Fig. 9): clients behind four
// residential access profiles fetch 100 KB flows from 170 wide-area
// servers. Halfback vs TCP.
#pragma once

#include <span>
#include <vector>

#include "exp/planetlab.h"
#include "sim/bytes.h"

namespace halfback::exp {

/// An access-link profile standing in for one of the paper's measured home
/// connections (provider-level parameters; see DESIGN.md substitutions).
struct HomeNetProfile {
  const char* name = "";
  sim::DataRate downlink;
  sim::DataRate uplink;
  double loss_rate = 0.0;  ///< wireless residual loss
  sim::Bytes buffer_bytes;  ///< access-router buffer (DSL = bloated)
};

/// The four §4.2.2 profiles.
std::span<const HomeNetProfile> home_profiles();

struct HomeNetConfig {
  int server_count = 170;
  sim::Bytes flow_bytes = 100'000;
  std::uint64_t seed = 7;
  transport::SenderConfig sender_config;
  sim::Time per_trial_timeout = sim::Time::seconds(120);
  unsigned threads = 0;
};

/// Runs one scheme against every server through one access profile.
class HomeNetEnv {
 public:
  explicit HomeNetEnv(HomeNetConfig config);

  /// Wide-area RTTs to the simulated servers (shared across profiles and
  /// schemes).
  const std::vector<sim::Time>& server_rtts() const { return server_rtts_; }

  std::vector<TrialResult> run(schemes::Scheme scheme,
                               const HomeNetProfile& profile) const;

 private:
  HomeNetConfig config_;
  std::vector<sim::Time> server_rtts_;
};

}  // namespace halfback::exp
