// Tiny parallel-for over independent simulations.
//
// Each task builds and runs its own Simulator, so tasks share nothing; the
// only coordination is the work index.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace halfback::exp {

/// Run `fn(i)` for i in [0, count) on up to `threads` workers (defaults to
/// hardware concurrency). `fn` must only touch data owned by index i.
///
/// If a task throws, the first exception (by completion order) is captured,
/// the remaining queue is drained without running further tasks, and the
/// exception is rethrown on the calling thread after all workers join —
/// instead of std::terminate tearing the process down mid-campaign.
inline void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                         unsigned threads = 0) {
  if (count == 0) return;
  unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 4;
  n = static_cast<unsigned>(std::min<std::size_t>(n, count));
  if (n <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    workers.emplace_back([&] {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t i = next.fetch_add(1);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace halfback::exp
