// Tiny parallel-for over independent simulations.
//
// Each task builds and runs its own Simulator, so tasks share nothing; the
// only coordination is the work index and the failure log below. The log is
// the mutation surface the sharded experiment engine contends on, so its
// locking contract is declared with the thread-safety annotations from
// sim/annotations.h and checked by clang's -Wthread-safety (an error in
// this build; see the top-level CMakeLists).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/annotations.h"

namespace halfback::exp {

/// One failed shard of a parallel_for: which index threw, and what it said.
struct ShardFailure {
  std::size_t index = 0;
  std::string message;
};

/// Thrown by parallel_for when two or more shards fail before the early
/// stop drains the queue. Failures are ordered by shard index, so a
/// supervised sweep can report every failing cell instead of only the
/// first one the scheduler happened to finish.
class AggregateError : public std::runtime_error {
 public:
  explicit AggregateError(std::vector<ShardFailure> failures)
      : std::runtime_error{format(failures)}, failures_{std::move(failures)} {}

  const std::vector<ShardFailure>& failures() const { return failures_; }

 private:
  static std::string format(const std::vector<ShardFailure>& failures) {
    std::string out =
        std::to_string(failures.size()) + " parallel_for shards failed:";
    for (const ShardFailure& f : failures) {
      out += " [" + std::to_string(f.index) + "] " + f.message + ";";
    }
    return out;
  }

  std::vector<ShardFailure> failures_;
};

/// Failure capture shared by parallel_for workers. capture() races from
/// worker threads; rethrow_if_any() runs on the calling thread after every
/// worker has joined (it still takes the lock — join already ordered the
/// stores, but the annotated lock keeps the contract checkable rather than
/// argued).
class FailureLog {
 public:
  void capture(std::size_t index) HB_EXCLUDES(mu_) {
    MutexLock lock{mu_};
    entries_.push_back({index, std::current_exception()});
  }

  /// No failure: returns. Exactly one: rethrows the original exception,
  /// type intact. Two or more: throws an AggregateError carrying every
  /// (index, message) pair, index order.
  void rethrow_if_any() HB_EXCLUDES(mu_) {
    std::vector<Entry> entries;
    {
      MutexLock lock{mu_};
      entries = entries_;
    }
    if (entries.empty()) return;
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.index < b.index; });
    if (entries.size() == 1) std::rethrow_exception(entries.front().error);
    std::vector<ShardFailure> failures;
    failures.reserve(entries.size());
    for (const Entry& entry : entries) {
      failures.push_back({entry.index, describe(entry.error)});
    }
    throw AggregateError{std::move(failures)};
  }

 private:
  struct Entry {
    std::size_t index = 0;
    std::exception_ptr error;
  };

  static std::string describe(const std::exception_ptr& error) {
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      return e.what();
    } catch (...) {
      return "unknown exception";
    }
  }

  Mutex mu_;
  std::vector<Entry> entries_ HB_GUARDED_BY(mu_);
};

/// Run `fn(i)` for i in [0, count) on up to `threads` workers (defaults to
/// hardware concurrency). `fn` must only touch data owned by index i.
///
/// If a task throws, the failure is logged, the remaining queue is drained
/// without running further tasks, and the calling thread rethrows after
/// all workers join — instead of std::terminate tearing the process down
/// mid-campaign. Tasks already in flight when the stop flag goes up may
/// fail too; every logged failure is reported (see FailureLog). The serial
/// path (one worker) propagates the first exception directly.
inline void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                         unsigned threads = 0) {
  if (count == 0) return;
  unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 4;
  n = static_cast<unsigned>(std::min<std::size_t>(n, count));
  if (n <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  FailureLog failures;
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    workers.emplace_back([&] {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t i = next.fetch_add(1);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          failures.capture(i);
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  failures.rethrow_if_any();
}

}  // namespace halfback::exp
