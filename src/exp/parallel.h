// Tiny parallel-for over independent simulations.
//
// Each task builds and runs its own Simulator, so tasks share nothing; the
// only coordination is the work index and the error slot below. The slot is
// the mutation surface the sharded experiment engine contends on, so its
// locking contract is declared with the thread-safety annotations from
// sim/annotations.h and checked by clang's -Wthread-safety (an error in
// this build; see the top-level CMakeLists).
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "sim/annotations.h"

namespace halfback::exp {

/// First-exception-wins capture shared by parallel_for workers. capture()
/// races from worker threads; rethrow_if_set() runs on the calling thread
/// after every worker has joined (it still takes the lock — join already
/// ordered the stores, but the annotated lock keeps the contract checkable
/// rather than argued).
class ErrorSlot {
 public:
  void capture() HB_EXCLUDES(mu_) {
    MutexLock lock{mu_};
    if (!error_) error_ = std::current_exception();
  }

  void rethrow_if_set() HB_EXCLUDES(mu_) {
    std::exception_ptr error;
    {
      MutexLock lock{mu_};
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  Mutex mu_;
  std::exception_ptr error_ HB_GUARDED_BY(mu_);
};

/// Run `fn(i)` for i in [0, count) on up to `threads` workers (defaults to
/// hardware concurrency). `fn` must only touch data owned by index i.
///
/// If a task throws, the first exception (by completion order) is captured,
/// the remaining queue is drained without running further tasks, and the
/// exception is rethrown on the calling thread after all workers join —
/// instead of std::terminate tearing the process down mid-campaign.
inline void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                         unsigned threads = 0) {
  if (count == 0) return;
  unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 4;
  n = static_cast<unsigned>(std::min<std::size_t>(n, count));
  if (n <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  ErrorSlot first_error;
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    workers.emplace_back([&] {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t i = next.fetch_add(1);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          first_error.capture();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  first_error.rethrow_if_set();
}

}  // namespace halfback::exp
