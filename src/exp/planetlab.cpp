#include "exp/planetlab.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "audit/invariant_auditor.h"
#include "exp/censor.h"
#include "exp/parallel.h"
#include "schemes/factory.h"
#include "sim/random.h"
#include "telemetry/hub.h"
#include "transport/agent.h"

namespace halfback::exp {
namespace {

/// Canonical text form of the reproducibility-relevant knobs, hashed into
/// the trial manifest's config digest. Paths are derived deterministically
/// from `seed` in the constructor, so the ensemble config plus the trial
/// seed pins down the whole trial; individual path parameters need not be
/// fingerprinted.
std::string config_fingerprint(const PlanetLabConfig& c,
                               std::uint64_t trial_seed) {
  std::ostringstream out;
  out << "seed=" << c.seed << ";trial_seed=" << trial_seed
      << ";pairs=" << c.pair_count << ";bytes=" << c.flow_bytes.count()
      << ";iw=" << c.sender_config.initial_window
      << ";rwnd=" << c.sender_config.receive_window_segments
      << ";timeout_ns=" << c.per_trial_timeout.ns();
  return out.str();
}

}  // namespace

PlanetLabEnv::PlanetLabEnv(PlanetLabConfig config) : config_{config} {
  sim::Random rng{config_.seed};
  paths_.reserve(static_cast<std::size_t>(config_.pair_count));
  for (int i = 0; i < config_.pair_count; ++i) {
    PathSample p;
    // RTT: heavy-tailed around a 60 ms median (continental to
    // intercontinental), clamped to the paper's observed 0.2-400 ms. The
    // sample becomes a sim::Time here, at the boundary; no raw unit-bearing
    // double escapes.
    p.rtt = sim::Time::milliseconds(
        std::clamp(rng.lognormal(std::log(60.0), 1.1), 0.2, 400.0));
    // Bottleneck bandwidth: PlanetLab sites are well connected; a log-
    // uniform spread 8 Mbps - 1 Gbps captures the occasional slow site.
    p.bottleneck = sim::DataRate::megabits_per_second(rng.log_uniform(8.0, 1000.0));
    // Buffer: a fraction of the path BDP, floored (tiny-buffer routers are
    // what give the paced schemes their 99th-percentile losses, §4.2.1).
    const double bdp = p.bottleneck.bytes_per_second() * p.rtt.to_seconds();
    p.buffer_bytes = static_cast<std::uint64_t>(
        std::clamp(bdp * rng.uniform(0.3, 1.5), 6'000.0, 400'000.0));
    // ~30% of paths carry competing traffic (a long TCP flow).
    p.cross_traffic = rng.bernoulli(0.30);
    // A sliver of lossy (wireless / overloaded) paths.
    p.random_loss = rng.bernoulli(0.10) ? rng.uniform(0.001, 0.01) : 0.0;
    paths_.push_back(p);
  }
}

TrialResult PlanetLabEnv::run_one(schemes::Scheme scheme, const PathSample& path,
                                  std::uint64_t trial_seed,
                                  telemetry::Hub* telemetry) const {
  sim::Simulator simulator{trial_seed};
  net::Network network{simulator};

#ifdef HALFBACK_AUDIT
  // One auditor per trial: shards share nothing (see parallel_for), so each
  // simulator carries its own invariant checker and determinism hash.
  audit::InvariantAuditor auditor;
  network.install_auditor(auditor);
#endif

  net::AccessPathConfig apc;
  apc.rtt = path.rtt;
  apc.downlink_rate = path.bottleneck;
  apc.uplink_rate = std::max(path.bottleneck * 0.25,
                             sim::DataRate::megabits_per_second(2.0));
  apc.downlink_buffer_bytes = path.buffer_bytes;
  apc.downlink_loss_rate = path.random_loss;
  net::AccessPath ap = net::build_access_path(network, apc);

  if (telemetry != nullptr) telemetry->instrument_network(network);

  transport::TransportAgent server_agent{simulator, network, ap.server};
  transport::TransportAgent client_agent{simulator, network, ap.client};
  if (telemetry != nullptr) {
    server_agent.set_telemetry(telemetry);
    client_agent.set_telemetry(telemetry);
  }

  std::uint32_t flow_drops = 0;
  const net::FlowId kFlow = 1;
  ap.downlink->queue().set_drop_callback([&](const net::Packet& p) {
    if (p.flow == kFlow && p.type == net::PacketType::data) ++flow_drops;
  });

  schemes::SchemeContext context;
  context.sender_config = config_.sender_config;

  sim::Time flow_start;
  if (path.cross_traffic) {
    // A long-lived TCP flow fills the queue first (2 s head start).
    auto cross = schemes::make_sender(schemes::Scheme::tcp, context, simulator,
                                      network.node(ap.server), ap.client,
                                      /*flow=*/2, /*bytes=*/50'000'000);
    server_agent.start_flow(std::move(cross));
    flow_start = sim::Time::seconds(2);
  }

  transport::SenderBase* sender_ptr = nullptr;
  simulator.schedule_at(flow_start, [&] {
    auto sender = schemes::make_sender(scheme, context, simulator,
                                       network.node(ap.server), ap.client, kFlow,
                                       config_.flow_bytes);
    sender_ptr = &server_agent.start_flow(std::move(sender));
  });

  // Run until the short flow completes (or the trial times out); the
  // censor-at-deadline accounting is the shared semantics in exp/censor.h
  // (HomeNetEnv uses the identical path).
  const sim::Time deadline = flow_start + config_.per_trial_timeout;
  drive_until_complete_or_deadline(
      simulator,
      [&]() -> const transport::SenderBase* { return sender_ptr; }, deadline);

  TrialResult result;
  result.path_rtt = path.rtt;
  if (sender_ptr != nullptr) {
    result.record = sender_ptr->record();
    result.finished = sender_ptr->complete();
    result.saw_loss = flow_drops > 0 || result.record.normal_retx > 0 ||
                      result.record.timeouts > 0;
    if (!result.finished) censor_record_at(result.record, deadline);
  }
#ifdef HALFBACK_AUDIT
  auditor.finalize(simulator.queue().empty());
  result.trace_hash = auditor.trace_hash();
  result.audit_violations = auditor.total_violations();
#endif
  if (telemetry != nullptr) telemetry->snapshot_network(network, simulator.now());
  return result;
}

telemetry::RunManifest PlanetLabEnv::manifest(
    const TrialResult& result, schemes::Scheme scheme, std::uint64_t trial_seed,
    const telemetry::Hub* telemetry) const {
  telemetry::RunManifest m;
  m.experiment = "planetlab";
  m.scheme = schemes::name(scheme);
  m.seed = trial_seed;
  m.config_digest = telemetry::fnv1a64(config_fingerprint(config_, trial_seed));
  m.trace_hash = result.trace_hash;
  // TrialResult carries no separate sim-end clock; the completion time is
  // the flow's finish (or its censoring point for unfinished trials).
  m.sim_end = result.record.completion_time;
  if (telemetry != nullptr) {
    const telemetry::MetricRegistry& registry = telemetry->registry();
    if (const auto* e = registry.find("sim.events_dispatched")) {
      m.events_dispatched = registry.counter_at(*e).value();
    }
  }
  return m;
}

std::vector<TrialResult> PlanetLabEnv::run(schemes::Scheme scheme) const {
  std::vector<TrialResult> results(paths_.size());
  parallel_for(
      paths_.size(),
      [&](std::size_t i) {
        results[i] = run_one(scheme, paths_[i], config_.seed * 31 + i);
      },
      config_.threads);
  return results;
}

}  // namespace halfback::exp
