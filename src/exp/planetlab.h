// Synthetic wide-area path ensemble standing in for the paper's PlanetLab
// campaign (§4.2.1): 2.6 K sender/receiver pairs across five continents,
// RTTs 0.2-400 ms, 100 KB flows.
//
// Substitution (see DESIGN.md): each pair becomes an AccessPath topology
// whose RTT, bottleneck bandwidth, buffer depth and background traffic are
// drawn from documented distributions. What the PlanetLab figures measure
// is how each scheme behaves across heterogeneous paths — in particular
// that the aggressive paced start overruns the slowest ~quarter of paths —
// and the ensemble is calibrated so that roughly 25% of trials see loss,
// matching §4.2.1.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"
#include "schemes/scheme.h"
#include "sim/bytes.h"
#include "telemetry/manifest.h"
#include "transport/sender.h"

namespace halfback::telemetry {
class Hub;
}  // namespace halfback::telemetry

namespace halfback::exp {

/// One sampled wide-area path.
struct PathSample {
  sim::Time rtt;
  sim::DataRate bottleneck;
  sim::Bytes buffer_bytes;
  double random_loss = 0.0;       ///< residual wireless/overload loss
  bool cross_traffic = false;     ///< a competing TCP flow shares the path
};

/// Outcome of one (path, scheme) trial.
struct TrialResult {
  transport::FlowRecord record;
  sim::Time path_rtt;
  bool finished = false;
  bool saw_loss = false;  ///< any retransmission or drop observed

  /// Filled when the build compiles audit hooks (HALFBACK_AUDIT): an
  /// order-sensitive hash of the trial's run trace — identical seeds must
  /// reproduce it exactly — and the invariant-violation count (0 = clean).
  std::uint64_t trace_hash = 0;
  std::uint64_t audit_violations = 0;
};

struct PlanetLabConfig {
  int pair_count = 2600;
  sim::Bytes flow_bytes = 100'000;
  std::uint64_t seed = 42;
  transport::SenderConfig sender_config;
  sim::Time per_trial_timeout = sim::Time::seconds(120);
  unsigned threads = 0;
};

/// The ensemble: paths are generated once from the seed, then every scheme
/// runs over the *same* paths (fresh simulator per trial).
class PlanetLabEnv {
 public:
  explicit PlanetLabEnv(PlanetLabConfig config);

  const std::vector<PathSample>& paths() const { return paths_; }

  /// Run one scheme across all paths.
  std::vector<TrialResult> run(schemes::Scheme scheme) const;

  /// Run a single trial (exposed for tests). When `telemetry` is non-null
  /// the trial installs it on the simulator, links, and flow — purely
  /// observational, the trace hash is unchanged. One hub covers one trial;
  /// run() shards trials across threads, so a shared hub would race.
  TrialResult run_one(schemes::Scheme scheme, const PathSample& path,
                      std::uint64_t trial_seed,
                      telemetry::Hub* telemetry = nullptr) const;

  /// Provenance manifest for one finished trial. `telemetry` (if given)
  /// supplies the end-of-run event count; wall time is left zero for the
  /// caller to stamp.
  telemetry::RunManifest manifest(const TrialResult& result,
                                  schemes::Scheme scheme,
                                  std::uint64_t trial_seed,
                                  const telemetry::Hub* telemetry = nullptr) const;

 private:
  PlanetLabConfig config_;
  std::vector<PathSample> paths_;
};

}  // namespace halfback::exp
