#include "exp/supervisor.h"

#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "exp/parallel.h"

namespace halfback::exp {

AttemptOutcome AttemptOutcome::from_budget(const sim::BudgetReport& report) {
  AttemptOutcome out;
  out.completed = false;
  out.reason = sim::to_string(report.tripped);
  out.detail = report.summary();
  out.events_at_trip = report.events_executed;
  out.sim_time_at_trip = report.sim_now;
  return out;
}

std::uint64_t attempt_seed(std::uint64_t base, std::size_t cell,
                           std::uint32_t attempt) {
  if (attempt == 0) return base;
  // splitmix64 over a mix of the three coordinates; any bit flip in any
  // coordinate decorrelates the whole stream.
  std::uint64_t x = base ^ (static_cast<std::uint64_t>(cell) * 0x9e3779b97f4a7c15ULL) ^
                    (static_cast<std::uint64_t>(attempt) << 32);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

/// Per-cell supervision state, owned by exactly one worker at a time
/// (parallel_for's contract), compacted into the manifest after join.
struct CellState {
  std::uint32_t attempts = 0;
  bool completed = false;
  AttemptOutcome last;
};

}  // namespace

SupervisedReport supervised_for(
    std::size_t count,
    const std::function<AttemptOutcome(const CellAttempt&)>& attempt,
    const SupervisorConfig& config,
    const std::function<std::string(std::size_t)>& cell_name) {
  const std::uint32_t max_attempts =
      config.retry.max_attempts == 0 ? 1 : config.retry.max_attempts;
  std::vector<CellState> states(count);

  parallel_for(
      count,
      [&](std::size_t i) {
        CellState& state = states[i];
        for (std::uint32_t a = 0; a < max_attempts; ++a) {
          if (a > 0 && config.retry.backoff_base.count() > 0) {
            // Exponential wall-clock backoff. Real time only: simulated
            // clocks are untouched, so results stay seed-deterministic.
            std::this_thread::sleep_for(config.retry.backoff_base *
                                        (1u << (a - 1)));
          }
          CellAttempt id;
          id.index = i;
          id.attempt = a;
          id.seed = attempt_seed(config.seed, i, a);
          AttemptOutcome outcome;
          try {
            outcome = attempt(id);
          } catch (const std::exception& e) {
            outcome.completed = false;
            outcome.reason = "exception";
            outcome.detail = e.what();
          } catch (...) {
            outcome.completed = false;
            outcome.reason = "exception";
            outcome.detail = "unknown exception";
          }
          state.attempts = a + 1;
          state.last = std::move(outcome);
          if (state.last.completed) {
            state.completed = true;
            break;
          }
        }
      },
      config.threads);

  // Compact in index order on the calling thread, so the manifest bytes
  // are independent of worker count and scheduling.
  SupervisedReport report;
  telemetry::QuarantineManifest& manifest = report.manifest;
  manifest.attempted = count;
  for (std::size_t i = 0; i < count; ++i) {
    const CellState& state = states[i];
    manifest.retries += state.attempts > 0 ? state.attempts - 1 : 0;
    if (state.completed) {
      ++manifest.completed;
      continue;
    }
    ++manifest.quarantined;
    telemetry::QuarantineRecord record;
    record.cell_index = i;
    record.cell = cell_name ? cell_name(i) : std::to_string(i);
    record.attempts = state.attempts;
    record.reason = state.last.reason;
    record.events_at_trip = state.last.events_at_trip;
    record.sim_time_at_trip = state.last.sim_time_at_trip;
    record.detail = state.last.detail;
    manifest.records.push_back(std::move(record));
  }
  return report;
}

}  // namespace halfback::exp
