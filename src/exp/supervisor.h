// Supervised experiment executor: parallel_for plus budgets, bounded
// retry, quarantine, and partial-result accounting.
//
// A sweep cell that storms (see sim/budget.h) should cost one budget trip,
// a bounded number of retries, and one quarantine-manifest record — never
// a hung CI job or a silently poisoned aggregate. supervised_for() wraps
// exp::parallel_for with exactly that policy:
//
//   * each cell attempt gets a deterministic seed from attempt_seed():
//     attempt 0 is the caller's base seed unchanged, so a fully healthy
//     supervised sweep is bit-identical to an unsupervised one;
//   * a failed attempt (budget trip or exception) is retried up to
//     RetryPolicy::max_attempts times, with exponential wall-clock backoff
//     between attempts (backoff never touches simulated time);
//   * a cell that exhausts its attempts is quarantined: the sweep keeps
//     going, and the telemetry::QuarantineManifest records who failed,
//     how, and what the surviving aggregate covers
//     (attempted / completed / quarantined).
//
// The manifest is a pure function of (seed, budgets, cell set) — worker
// count never changes its bytes (tests/exp/supervisor_test.cpp pins this).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "sim/annotations.h"
#include "sim/budget.h"
#include "telemetry/quarantine.h"

namespace halfback::exp {

/// How hard the supervisor tries before quarantining a cell.
struct RetryPolicy {
  /// Total attempts per cell, first try included (minimum 1; 0 is treated
  /// as 1).
  std::uint32_t max_attempts = 1;

  /// Wall-clock pause before retry k (k >= 1): backoff_base * 2^(k-1).
  /// Zero (the default) retries immediately — the right choice for
  /// deterministic simulations, where a retry only helps via its fresh
  /// seed; nonzero suits harnesses contending for real resources.
  std::chrono::milliseconds backoff_base{0};
};

/// Identity of one attempt at one cell, handed to the attempt callback.
struct CellAttempt {
  std::size_t index = 0;      ///< cell index in [0, count)
  std::uint32_t attempt = 0;  ///< 0 = first try
  std::uint64_t seed = 0;     ///< attempt_seed(base, index, attempt)
};

/// What an attempt reports back. Default-constructed = success.
struct AttemptOutcome {
  bool completed = true;
  std::string reason;  ///< on failure: a BudgetTrip name or "exception"
  std::string detail;  ///< human detail: report summary / what() text
  std::uint64_t events_at_trip = 0;
  sim::Time sim_time_at_trip;

  /// Failure described by a tripped budget's report.
  static AttemptOutcome from_budget(const sim::BudgetReport& report)
      HB_EFFECTS(alloc);
};

struct SupervisorConfig {
  /// Base seed. Attempt 0 of every cell runs with exactly this value (the
  /// attempt callback composes in the cell index however the experiment
  /// already does), so healthy cells reproduce the unsupervised sweep
  /// bit-for-bit; retries draw fresh seeds from attempt_seed().
  std::uint64_t seed = 1;
  RetryPolicy retry;
  unsigned threads = 0;  ///< parallel_for worker count (0 = hardware)
};

/// Deterministic per-attempt seed: attempt 0 returns `base` unchanged;
/// attempt k >= 1 mixes (base, cell, k) through splitmix64 so retry
/// streams are independent of each other and of every first-try stream.
std::uint64_t attempt_seed(std::uint64_t base, std::size_t cell,
                           std::uint32_t attempt) HB_EFFECTS();

/// Outcome of a supervised sweep: the quarantine manifest doubles as the
/// completeness accounting (attempted / completed / quarantined / retries).
struct SupervisedReport {
  telemetry::QuarantineManifest manifest;

  /// True when every cell completed (possibly after retries).
  bool complete() const { return manifest.clean(); }
};

/// Run `attempt` for every cell index in [0, count) under `config`,
/// retrying and quarantining as described above. `cell_name` labels
/// quarantine records (e.g. "adversarial/rc3"); it is only called for
/// quarantined cells. Exceptions escaping `attempt` count as failed
/// attempts (reason "exception") rather than aborting the sweep.
SupervisedReport supervised_for(
    std::size_t count,
    const std::function<AttemptOutcome(const CellAttempt&)>& attempt,
    const SupervisorConfig& config,
    const std::function<std::string(std::size_t)>& cell_name);

}  // namespace halfback::exp
