#include "exp/sweep.h"

#include <mutex>

#include "exp/parallel.h"
#include "workload/flow_schedule.h"

namespace halfback::exp {

namespace {

SweepCell summarize(schemes::Scheme scheme, double utilization, const RunResult& run) {
  SweepCell cell;
  cell.scheme = scheme;
  cell.utilization = utilization;
  cell.flows = run.flows.size();
  cell.unfinished = run.unfinished_count(FlowRole::primary);
  cell.mean_fct_ms = run.mean_fct_ms(FlowRole::primary);
  stats::Summary fct = run.fct_ms(FlowRole::primary);
  cell.median_fct_ms = fct.empty() ? 0.0 : fct.median();
  stats::Summary retx = run.metric(FlowRole::primary, [](const FlowResult& f) {
    return static_cast<double>(f.record.normal_retx);
  });
  cell.mean_normal_retx = retx.empty() ? 0.0 : retx.mean();
  stats::Summary proactive = run.metric(FlowRole::primary, [](const FlowResult& f) {
    return static_cast<double>(f.record.proactive_retx);
  });
  cell.mean_proactive_retx = proactive.empty() ? 0.0 : proactive.mean();
  stats::Summary timeouts = run.metric(FlowRole::primary, [](const FlowResult& f) {
    return static_cast<double>(f.record.timeouts);
  });
  cell.mean_timeouts = timeouts.empty() ? 0.0 : timeouts.mean();
  return cell;
}

}  // namespace

std::vector<SweepCell> utilization_sweep(const UtilizationSweepConfig& config,
                                         std::span<const schemes::Scheme> schemes) {
  const int reps = std::max(config.replications, 1);

  // One schedule per (utilization, replication), shared across schemes
  // (§4.3.2: "the same schedule of flow arrivals for each network
  // utilization").
  std::vector<std::vector<workload::FlowArrival>> schedules;  // [u * reps + r]
  for (std::size_t u = 0; u < config.utilizations.size(); ++u) {
    for (int r = 0; r < reps; ++r) {
      sim::Random rng{config.runner.seed * 7919 + u * 1000 +
                      static_cast<std::uint64_t>(r)};
      workload::ScheduleConfig sc;
      sc.target_utilization = config.utilizations[u];
      sc.bottleneck = config.runner.dumbbell.bottleneck_rate;
      sc.duration = config.duration;
      schedules.push_back(workload::make_schedule(
          workload::FlowSizeDist::fixed(config.flow_bytes), sc, rng));
    }
  }

  // Jobs: utilization-major, scheme-minor, replication-innermost.
  const std::size_t scheme_count = schemes.size();
  std::vector<SweepCell> raw(config.utilizations.size() * scheme_count *
                             static_cast<std::size_t>(reps));
  parallel_for(
      raw.size(),
      [&](std::size_t i) {
        const std::size_t r = i % static_cast<std::size_t>(reps);
        const std::size_t si = (i / static_cast<std::size_t>(reps)) % scheme_count;
        const std::size_t u = i / (static_cast<std::size_t>(reps) * scheme_count);
        EmulabRunner::Config runner_config = config.runner;
        runner_config.seed = config.runner.seed + 7 * r;
        EmulabRunner runner{runner_config};
        WorkloadPart part;
        part.scheme = schemes[si];
        part.schedule = schedules[u * static_cast<std::size_t>(reps) + r];
        part.role = FlowRole::primary;
        RunResult run = runner.run({part});
        raw[i] = summarize(schemes[si], config.utilizations[u], run);
      },
      config.threads);

  // Average replications into one cell per (utilization, scheme).
  std::vector<SweepCell> cells(config.utilizations.size() * scheme_count);
  for (std::size_t u = 0; u < config.utilizations.size(); ++u) {
    for (std::size_t si = 0; si < scheme_count; ++si) {
      SweepCell& out = cells[u * scheme_count + si];
      out.scheme = schemes[si];
      out.utilization = config.utilizations[u];
      for (int r = 0; r < reps; ++r) {
        const SweepCell& in =
            raw[(u * scheme_count + si) * static_cast<std::size_t>(reps) +
                static_cast<std::size_t>(r)];
        out.mean_fct_ms += in.mean_fct_ms;
        out.median_fct_ms += in.median_fct_ms;
        out.mean_normal_retx += in.mean_normal_retx;
        out.mean_proactive_retx += in.mean_proactive_retx;
        out.mean_timeouts += in.mean_timeouts;
        out.flows += in.flows;
        out.unfinished += in.unfinished;
      }
      out.mean_fct_ms /= reps;
      out.median_fct_ms /= reps;
      out.mean_normal_retx /= reps;
      out.mean_proactive_retx /= reps;
      out.mean_timeouts /= reps;
    }
  }
  return cells;
}

std::map<schemes::Scheme, double> feasible_capacities(
    const std::vector<SweepCell>& sweep, const stats::CollapseCriterion& criterion,
    double (*metric)(const SweepCell&)) {
  if (metric == nullptr) {
    metric = [](const SweepCell& c) { return c.mean_fct_ms; };
  }
  std::map<schemes::Scheme, std::vector<stats::SweepPoint>> by_scheme;
  for (const SweepCell& cell : sweep) {
    by_scheme[cell.scheme].push_back({cell.utilization, metric(cell)});
  }
  std::map<schemes::Scheme, double> out;
  for (auto& [scheme, points] : by_scheme) {
    out[scheme] = stats::feasible_capacity(points, criterion);
  }
  return out;
}

std::map<schemes::Scheme, double> low_load_fct(const std::vector<SweepCell>& sweep) {
  std::map<schemes::Scheme, std::pair<double, double>> best;  // util -> fct
  for (const SweepCell& cell : sweep) {
    auto it = best.find(cell.scheme);
    if (it == best.end() || cell.utilization < it->second.first) {
      best[cell.scheme] = {cell.utilization, cell.mean_fct_ms};
    }
  }
  std::map<schemes::Scheme, double> out;
  for (auto& [scheme, entry] : best) out[scheme] = entry.second;
  return out;
}

std::vector<MixCell> mix_sweep(const MixSweepConfig& config,
                               std::span<const schemes::Scheme> schemes) {
  // Schedules per utilization: short flows carry `short_traffic_fraction`
  // of the offered bytes, long TCP flows the rest.
  struct Schedules {
    std::vector<workload::FlowArrival> shorts;
    std::vector<workload::FlowArrival> longs;
  };
  std::vector<Schedules> schedules;
  for (std::size_t u = 0; u < config.utilizations.size(); ++u) {
    sim::Random rng{config.runner.seed * 104729 + u};
    workload::ScheduleConfig sc;
    sc.bottleneck = config.runner.dumbbell.bottleneck_rate;
    sc.duration = config.duration;
    Schedules s;
    sc.target_utilization = config.utilizations[u] * config.short_traffic_fraction;
    s.shorts = workload::make_schedule(workload::FlowSizeDist::fixed(config.short_bytes),
                                       sc, rng);
    sc.target_utilization =
        config.utilizations[u] * (1.0 - config.short_traffic_fraction);
    s.longs = workload::make_schedule(workload::FlowSizeDist::fixed(config.long_bytes),
                                      sc, rng);
    schedules.push_back(std::move(s));
  }

  // Baseline: short flows run TCP.
  const std::size_t u_count = config.utilizations.size();
  std::vector<double> base_short(u_count), base_long(u_count);
  parallel_for(
      u_count,
      [&](std::size_t u) {
        EmulabRunner runner{config.runner};
        WorkloadPart shorts{schemes::Scheme::tcp, schedules[u].shorts, FlowRole::primary, {}};
        WorkloadPart longs{schemes::Scheme::tcp, schedules[u].longs, FlowRole::background, {}};
        RunResult run = runner.run({shorts, longs});
        base_short[u] = run.mean_fct_ms(FlowRole::primary);
        base_long[u] = run.mean_fct_ms(FlowRole::background);
      },
      config.threads);

  struct Job {
    schemes::Scheme scheme = schemes::Scheme::tcp;
    std::size_t u = 0;
  };
  std::vector<Job> jobs;
  for (std::size_t u = 0; u < u_count; ++u) {
    for (schemes::Scheme s : schemes) jobs.push_back(Job{s, u});
  }
  std::vector<MixCell> cells(jobs.size());
  parallel_for(
      jobs.size(),
      [&](std::size_t i) {
        const Job& job = jobs[i];
        EmulabRunner runner{config.runner};
        WorkloadPart shorts{job.scheme, schedules[job.u].shorts, FlowRole::primary, {}};
        WorkloadPart longs{schemes::Scheme::tcp, schedules[job.u].longs,
                           FlowRole::background, {}};
        RunResult run = runner.run({shorts, longs});
        MixCell cell;
        cell.scheme = job.scheme;
        cell.utilization = config.utilizations[job.u];
        cell.short_fct_ms = run.mean_fct_ms(FlowRole::primary);
        cell.long_fct_ms = run.mean_fct_ms(FlowRole::background);
        cell.short_fct_normalized =
            base_short[job.u] > 0 ? cell.short_fct_ms / base_short[job.u] : 0.0;
        cell.long_fct_normalized =
            base_long[job.u] > 0 ? cell.long_fct_ms / base_long[job.u] : 0.0;
        cells[i] = cell;
      },
      config.threads);
  return cells;
}

std::vector<FriendlinessPoint> friendliness_matrix(
    const FriendlinessConfig& config, std::span<const schemes::Scheme> schemes) {
  const std::size_t u_count = config.utilizations.size();

  // Shared schedules; in the mixed runs flows alternate between the scheme
  // under test and TCP (half and half).
  std::vector<std::vector<workload::FlowArrival>> schedules;
  for (std::size_t u = 0; u < u_count; ++u) {
    sim::Random rng{config.runner.seed * 15485863 + u};
    workload::ScheduleConfig sc;
    sc.target_utilization = config.utilizations[u];
    sc.bottleneck = config.runner.dumbbell.bottleneck_rate;
    sc.duration = config.duration;
    schedules.push_back(workload::make_schedule(
        workload::FlowSizeDist::fixed(config.flow_bytes), sc, rng));
  }

  auto split = [](const std::vector<workload::FlowArrival>& all) {
    std::pair<std::vector<workload::FlowArrival>, std::vector<workload::FlowArrival>> out;
    for (std::size_t i = 0; i < all.size(); ++i) {
      (i % 2 == 0 ? out.first : out.second).push_back(all[i]);
    }
    return out;
  };

  // Reference runs: all flows the same protocol.
  std::vector<double> tcp_reference(u_count);
  parallel_for(
      u_count,
      [&](std::size_t u) {
        EmulabRunner runner{config.runner};
        RunResult run = runner.run(
            {WorkloadPart{schemes::Scheme::tcp, schedules[u], FlowRole::primary, {}}});
        tcp_reference[u] = run.mean_fct_ms(FlowRole::primary);
      },
      config.threads);

  struct Job {
    schemes::Scheme scheme = schemes::Scheme::tcp;
    std::size_t u = 0;
  };
  std::vector<Job> jobs;
  for (schemes::Scheme s : schemes) {
    for (std::size_t u = 0; u < u_count; ++u) jobs.push_back(Job{s, u});
  }
  std::vector<FriendlinessPoint> points(jobs.size());
  parallel_for(
      jobs.size(),
      [&](std::size_t i) {
        const Job& job = jobs[i];
        auto [scheme_half, tcp_half] = split(schedules[job.u]);

        // All-scheme reference.
        EmulabRunner ref_runner{config.runner};
        RunResult ref_run = ref_runner.run(
            {WorkloadPart{job.scheme, schedules[job.u], FlowRole::primary, {}}});
        const double scheme_reference = ref_run.mean_fct_ms(FlowRole::primary);

        // Mixed run.
        EmulabRunner runner{config.runner};
        RunResult mixed = runner.run(
            {WorkloadPart{job.scheme, scheme_half, FlowRole::primary, {}},
             WorkloadPart{schemes::Scheme::tcp, tcp_half, FlowRole::competing, {}}});

        FriendlinessPoint p;
        p.scheme = job.scheme;
        p.utilization = config.utilizations[job.u];
        std::vector<double> fcts;
        for (const FlowResult& flow : mixed.flows) {
          fcts.push_back(flow.finished ? flow.record.fct().to_ms()
                                       : flow.censored_fct.to_ms());
        }
        p.fct_fairness = fcts.empty() ? 1.0 : stats::Summary::jain_fairness(fcts);
        const double tcp_mixed = mixed.mean_fct_ms(FlowRole::competing);
        const double scheme_mixed = mixed.mean_fct_ms(FlowRole::primary);
        p.tcp_fct_vs_reference =
            tcp_reference[job.u] > 0 ? tcp_mixed / tcp_reference[job.u] : 0.0;
        p.scheme_fct_vs_reference =
            scheme_reference > 0 ? scheme_mixed / scheme_reference : 0.0;
        points[i] = p;
      },
      config.threads);
  return points;
}

std::vector<FlowSizeCell> flow_size_sweep(const FlowSizeSweepConfig& config,
                                          std::span<const schemes::Scheme> schemes) {
  // One shared schedule from the truncated distribution.
  workload::FlowSizeDist sizes = config.sizes.truncated(config.truncate_bytes);
  sim::Random rng{config.runner.seed * 179426549};
  workload::ScheduleConfig sc;
  sc.target_utilization = config.utilization;
  sc.bottleneck = config.runner.dumbbell.bottleneck_rate;
  sc.duration = config.duration;
  std::vector<workload::FlowArrival> schedule = workload::make_schedule(sizes, sc, rng);

  std::vector<std::vector<FlowSizeCell>> per_scheme(schemes.size());
  parallel_for(
      schemes.size(),
      [&](std::size_t si) {
        EmulabRunner runner{config.runner};
        RunResult run =
            runner.run({WorkloadPart{schemes[si], schedule, FlowRole::primary, {}}});
        // Bin FCT by flow size.
        const double bin_width = static_cast<double>(config.bin_bytes);
        std::map<std::size_t, stats::Summary> bins;
        for (const FlowResult& f : run.flows) {
          const auto bin = static_cast<std::size_t>(
              static_cast<double>(f.record.flow_bytes) / bin_width);
          bins[bin].add(f.finished ? f.record.fct().to_ms() : f.censored_fct.to_ms());
        }
        for (auto& [bin, summary] : bins) {
          FlowSizeCell cell;
          cell.scheme = schemes[si];
          cell.bin_center_kb = (static_cast<double>(bin) + 0.5) * config.bin_bytes.to_kb();
          cell.mean_fct_ms = summary.mean();
          cell.flows = summary.count();
          per_scheme[si].push_back(cell);
        }
      },
      config.threads);

  std::vector<FlowSizeCell> out;
  for (auto& cells : per_scheme) {
    out.insert(out.end(), cells.begin(), cells.end());
  }
  return out;
}

}  // namespace halfback::exp
