// Utilization sweeps: the engines behind Figs. 1, 12, 13, 14 and 17.
#pragma once

#include <map>
#include <vector>

#include "exp/emulab.h"
#include "sim/bytes.h"
#include "schemes/scheme.h"
#include "stats/feasible_capacity.h"

namespace halfback::exp {

/// One (scheme, utilization) cell of a sweep.
struct SweepCell {
  schemes::Scheme scheme;
  double utilization = 0.0;
  double mean_fct_ms = 0.0;    // lint: unit-ok(statistics edge: report column in ms)
  double median_fct_ms = 0.0;  // lint: unit-ok(statistics edge: report column in ms)
  double mean_normal_retx = 0.0;
  double mean_proactive_retx = 0.0;
  double mean_timeouts = 0.0;
  std::size_t flows = 0;
  std::size_t unfinished = 0;
};

/// Fig. 12 / Fig. 17: all-short-flow workload at each utilization, same
/// arrival schedule for every scheme at a given utilization.
struct UtilizationSweepConfig {
  EmulabRunner::Config runner;
  std::vector<double> utilizations;       ///< e.g. 0.05 .. 0.90
  sim::Bytes flow_bytes = 100'000;
  sim::Time duration = sim::Time::seconds(60);
  unsigned threads = 0;
  /// Independent replications per cell (distinct seeds and schedules);
  /// cell statistics are averaged across replications.
  int replications = 1;
};

std::vector<SweepCell> utilization_sweep(const UtilizationSweepConfig& config,
                                         std::span<const schemes::Scheme> schemes);

/// Feasible capacity per scheme from a finished sweep (Fig. 1's x-axis).
/// `metric` selects the FCT statistic the collapse criterion applies to;
/// the median is robust to censoring noise in short sweep windows, the
/// mean (the paper's y-axis) reacts to tail blowups earlier.
std::map<schemes::Scheme, double> feasible_capacities(
    const std::vector<SweepCell>& sweep,
    const stats::CollapseCriterion& criterion = {},
    double (*metric)(const SweepCell&) = nullptr);

/// Low-load mean FCT per scheme from a finished sweep (Fig. 1's y-axis).
std::map<schemes::Scheme, double> low_load_fct(const std::vector<SweepCell>& sweep);

/// Fig. 13: 10% of traffic from short flows (the scheme under test), 90%
/// from long TCP flows; FCTs normalized by the all-TCP baseline.
struct MixSweepConfig {
  EmulabRunner::Config runner;
  std::vector<double> utilizations;  ///< e.g. 0.30 .. 0.85
  sim::Bytes short_bytes = 100'000;
  sim::Bytes long_bytes = 5'000'000;  ///< paper: 100 MB; scaled by default
  double short_traffic_fraction = 0.10;
  sim::Time duration = sim::Time::seconds(60);
  unsigned threads = 0;
};

struct MixCell {
  schemes::Scheme scheme;
  double utilization = 0.0;
  double short_fct_ms = 0.0;  // lint: unit-ok(statistics edge: report column in ms)
  double long_fct_ms = 0.0;   // lint: unit-ok(statistics edge: report column in ms)
  /// Normalized by the same-utilization all-TCP baseline (1.0 = no change).
  double short_fct_normalized = 0.0;
  double long_fct_normalized = 0.0;
};

std::vector<MixCell> mix_sweep(const MixSweepConfig& config,
                               std::span<const schemes::Scheme> schemes);

/// Fig. 14: half the flows run `scheme`, half run TCP, at utilizations
/// 5%..30%. Coordinates are factor-changes in FCT due to co-existence.
struct FriendlinessConfig {
  EmulabRunner::Config runner;
  std::vector<double> utilizations{0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  sim::Bytes flow_bytes = 100'000;
  sim::Time duration = sim::Time::seconds(60);
  unsigned threads = 0;
};

struct FriendlinessPoint {
  schemes::Scheme scheme;
  double utilization = 0.0;
  double tcp_fct_vs_reference = 0.0;     ///< x-axis
  double scheme_fct_vs_reference = 0.0;  ///< y-axis
  /// Jain fairness index over all flows' FCTs in the mixed run (1 = every
  /// flow fared equally, regardless of protocol).
  double fct_fairness = 0.0;
};

std::vector<FriendlinessPoint> friendliness_matrix(
    const FriendlinessConfig& config, std::span<const schemes::Scheme> schemes);

/// Fig. 11: FCT as a function of flow size at 25% utilization, with flow
/// sizes drawn from a measured distribution truncated at 1 MB.
struct FlowSizeSweepConfig {
  EmulabRunner::Config runner;
  workload::FlowSizeDist sizes = workload::FlowSizeDist::internet();
  double utilization = 0.25;
  sim::Bytes truncate_bytes = 1'000'000;
  sim::Time duration = sim::Time::seconds(60);
  sim::Bytes bin_bytes = sim::Bytes::kilobytes(25);  ///< FCT reported per flow-size bin
  unsigned threads = 0;
};

struct FlowSizeCell {
  schemes::Scheme scheme;
  double bin_center_kb = 0.0;  // lint: unit-ok(statistics edge: bin center in KB for the Fig. 11 axis)
  double mean_fct_ms = 0.0;    // lint: unit-ok(statistics edge: report column in ms)
  std::size_t flows = 0;
};

std::vector<FlowSizeCell> flow_size_sweep(const FlowSizeSweepConfig& config,
                                          std::span<const schemes::Scheme> schemes);

}  // namespace halfback::exp
