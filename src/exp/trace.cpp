#include "exp/trace.h"

#include <memory>

#include "sim/timer.h"

namespace halfback::exp {

const char* to_string(TraceScenario scenario) {
  switch (scenario) {
    case TraceScenario::optimal: return "optimal";
    case TraceScenario::halfback: return "halfback";
    case TraceScenario::single_tcp: return "single-tcp";
    case TraceScenario::two_tcp_halves: return "two-tcp-halves";
  }
  return "?";
}

std::vector<FlowTrace> run_trace(const TraceConfig& config, TraceScenario scenario) {
  sim::Simulator simulator{config.seed};
  net::Network network{simulator};
  net::DumbbellConfig dc = config.dumbbell;
  dc.sender_count = std::max(dc.sender_count, 3);
  dc.receiver_count = std::max(dc.receiver_count, 3);
  net::Dumbbell dumbbell = net::build_dumbbell(network, dc);

  std::vector<std::unique_ptr<transport::TransportAgent>> server_agents;
  std::vector<std::unique_ptr<transport::TransportAgent>> client_agents;
  for (net::NodeId id : dumbbell.senders) {
    server_agents.push_back(
        std::make_unique<transport::TransportAgent>(simulator, network, id));
  }
  for (net::NodeId id : dumbbell.receivers) {
    client_agents.push_back(
        std::make_unique<transport::TransportAgent>(simulator, network, id));
  }

  schemes::SchemeContext context;
  context.sender_config = config.sender_config;
  context.halfback_config = config.halfback_config;

  struct Tracked {
    std::string label;
    net::FlowId flow;
    std::size_t pair = 0;
    stats::TimeSeries series;
    std::uint32_t seen_segments = 0;
    transport::SenderBase* sender = nullptr;
  };
  std::vector<std::unique_ptr<Tracked>> tracked;

  auto start_flow = [&](const std::string& label, schemes::Scheme scheme,
                        std::uint64_t bytes, std::size_t pair, sim::Time at,
                        std::uint32_t burst_window) {
    auto t = std::make_unique<Tracked>(
        Tracked{label, static_cast<net::FlowId>(tracked.size() + 1), pair,
                stats::TimeSeries{config.bucket}, 0, nullptr});
    Tracked* raw = t.get();
    tracked.push_back(std::move(t));
    simulator.schedule_at(at, [&, raw, scheme, bytes, burst_window] {
      std::unique_ptr<transport::SenderBase> sender;
      if (burst_window > 0) {
        // "Optimal": the whole flow leaves in one immediate burst (an ICW
        // covering the flow), the best a sender-side scheme could do.
        sender = schemes::make_optimal_sender(
            context, simulator, network.node(dumbbell.senders[raw->pair]),
            dumbbell.receivers[raw->pair], raw->flow, bytes, burst_window);
      } else {
        sender = schemes::make_sender(scheme, context, simulator,
                                      network.node(dumbbell.senders[raw->pair]),
                                      dumbbell.receivers[raw->pair], raw->flow, bytes);
      }
      raw->sender = &server_agents[raw->pair]->start_flow(std::move(sender));
    });
  };

  // Background TCP flow on pair 0 from t=0.
  start_flow("background", schemes::Scheme::tcp, config.background_bytes, 0,
             sim::Time::zero(), 0);

  switch (scenario) {
    case TraceScenario::optimal:
      start_flow("short-optimal", schemes::Scheme::tcp, config.short_bytes, 1,
                 config.short_start, /*burst_window=*/97);
      break;
    case TraceScenario::halfback:
      start_flow("short-halfback", schemes::Scheme::halfback, config.short_bytes, 1,
                 config.short_start, 0);
      break;
    case TraceScenario::single_tcp:
      start_flow("short-tcp", schemes::Scheme::tcp, config.short_bytes, 1,
                 config.short_start, 0);
      break;
    case TraceScenario::two_tcp_halves:
      start_flow("short-tcp-1", schemes::Scheme::tcp, config.short_bytes / 2, 1,
                 config.short_start, 0);
      start_flow("short-tcp-2", schemes::Scheme::tcp, config.short_bytes / 2, 2,
                 config.short_start, 0);
      break;
  }

  // Sample receiver progress every bucket, on one reusable timer.
  sim::Timer sampler;
  sampler.bind(simulator, [&] {
    for (auto& t : tracked) {
      transport::Receiver* r = client_agents[t->pair]->receiver(t->flow);
      if (r == nullptr) continue;
      const std::uint32_t now_segments = r->stats().unique_segments;
      if (now_segments > t->seen_segments) {
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(now_segments - t->seen_segments) *
            net::kSegmentPayloadBytes;
        // Attribute to the bucket that just ended.
        t->series.add_bytes(simulator.now() - config.bucket, bytes);
        t->seen_segments = now_segments;
      }
    }
    if (simulator.now() < config.duration) {
      sampler.schedule_after(config.bucket);
    }
  });
  sampler.schedule_after(config.bucket);

  simulator.run_until(config.duration);

  std::vector<FlowTrace> out;
  for (auto& t : tracked) {
    FlowTrace ft;
    ft.label = t->label;
    ft.throughput = t->series.throughput();
    if (t->sender != nullptr && t->sender->complete()) {
      ft.completion = t->sender->record().completion_time;
    }
    out.push_back(std::move(ft));
  }
  return out;
}

}  // namespace halfback::exp
