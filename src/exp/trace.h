// Throughput-over-time traces (§4.3.4, Fig. 15): how a newly arriving
// short flow disturbs a saturated background TCP flow.
#pragma once

#include <string>
#include <vector>

#include "exp/emulab.h"
#include "sim/bytes.h"
#include "stats/time_series.h"

namespace halfback::exp {

/// The four Fig. 15 panels.
enum class TraceScenario {
  optimal,        ///< (a) short flow delivered as one immediate burst
  halfback,       ///< (b) short flow runs Halfback
  single_tcp,     ///< (c) short flow runs TCP
  two_tcp_halves  ///< (d) two TCP flows, each with half the bytes
};

const char* to_string(TraceScenario scenario);

struct TraceConfig {
  net::DumbbellConfig dumbbell;
  std::uint64_t seed = 1;
  transport::SenderConfig sender_config;
  schemes::HalfbackConfig halfback_config;
  sim::Bytes short_bytes = 100'000;
  sim::Bytes background_bytes = 20'000'000;
  sim::Time short_start = sim::Time::seconds(1);  ///< after bg reaches full rate
  sim::Time bucket = sim::Time::milliseconds(60); ///< the paper's 60 ms bins
  sim::Time duration = sim::Time::seconds(4);
};

/// Per-flow throughput series, sampled at the receiver (unique bytes
/// delivered per bucket — "successfully transmitted packets").
struct FlowTrace {
  std::string label;
  std::vector<stats::TimeSeries::Sample> throughput;
  sim::Time completion;  ///< zero if the flow did not finish
};

std::vector<FlowTrace> run_trace(const TraceConfig& config, TraceScenario scenario);

}  // namespace halfback::exp
