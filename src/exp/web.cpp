#include "exp/web.h"

#include <algorithm>
#include <functional>
#include <memory>

namespace halfback::exp {

namespace {

/// Live state of one in-flight page request.
struct PageState {
  const workload::WebPage* page = nullptr;
  std::size_t pair = 0;
  std::size_t next_object = 0;
  std::size_t completed_objects = 0;
  PageResult result;
  /// Per-page flow-completion handler. Every flow of this page hands the
  /// agent a FunctionRef to this one callable: the reference needs a
  /// referent that outlives the flow, and the page does (one allocation
  /// per page, none per flow).
  std::function<void(const transport::FlowRecord&)> on_flow_complete;
};

}  // namespace

double WebRunOutcome::mean_response_s() const {
  if (pages.empty()) return 0.0;
  double total = 0.0;
  for (const PageResult& p : pages) total += p.response_time().to_seconds();
  return total / static_cast<double>(pages.size());
}

std::size_t WebRunOutcome::unfinished_pages() const {
  std::size_t n = 0;
  for (const PageResult& p : pages) n += p.finished ? 0 : 1;
  return n;
}

WebRunOutcome WebRunner::run(schemes::Scheme scheme,
                             const workload::WebsiteCatalog& catalog,
                             const std::vector<workload::WebRequest>& requests) {
  sim::Simulator simulator{config_.seed};
  net::Network network{simulator};
  net::Dumbbell dumbbell = net::build_dumbbell(network, config_.dumbbell);

  std::vector<std::unique_ptr<transport::TransportAgent>> server_agents;
  std::vector<std::unique_ptr<transport::TransportAgent>> client_agents;
  for (net::NodeId id : dumbbell.senders) {
    server_agents.push_back(
        std::make_unique<transport::TransportAgent>(simulator, network, id));
  }
  for (net::NodeId id : dumbbell.receivers) {
    client_agents.push_back(
        std::make_unique<transport::TransportAgent>(simulator, network, id));
  }
  const std::size_t pair_count = server_agents.size();

  schemes::SchemeContext context;
  context.sender_config = config_.sender_config;
  context.halfback_config = config_.halfback_config;

  std::vector<std::unique_ptr<PageState>> pages;
  net::FlowId next_flow = 1;

  // Launch the next object of `state` on one connection "lane"; the lane
  // continues with further objects as each flow completes.
  std::function<void(PageState&)> launch_next = [&](PageState& state) {
    if (state.next_object >= state.page->object_bytes.size()) return;
    const std::uint64_t bytes = state.page->object_bytes[state.next_object++];
    const net::FlowId flow = next_flow++;
    auto sender = schemes::make_sender(
        scheme, context, simulator, network.node(dumbbell.senders[state.pair]),
        dumbbell.receivers[state.pair], flow, bytes);
    (void)bytes;
    server_agents[state.pair]->start_flow(
        std::move(sender),
        transport::SenderBase::CompletionRef{state.on_flow_complete});
  };

  auto on_object_complete = [&](PageState& state) {
    ++state.completed_objects;
    if (state.completed_objects == state.page->object_bytes.size()) {
      state.result.finished = true;
      state.result.completed = simulator.now();
      return;
    }
    if (state.completed_objects == 1) {
      // HTML delivered: open the concurrent subresource lanes.
      const auto lanes = std::min<std::size_t>(
          static_cast<std::size_t>(config_.max_connections),
          state.page->object_bytes.size() - 1);
      for (std::size_t lane = 0; lane < lanes; ++lane) launch_next(state);
    } else {
      launch_next(state);  // this lane takes the next object
    }
  };

  sim::Time last_request;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const workload::WebRequest& req = requests[i];
    last_request = std::max(last_request, req.at);
    auto state = std::make_unique<PageState>();
    state->page = &catalog.page(req.page_index);
    state->pair = i % pair_count;
    state->result.requested = req.at;
    state->result.objects = state->page->object_bytes.size();
    state->result.bytes = state->page->total_bytes();
    PageState* raw = state.get();
    raw->on_flow_complete = [&, raw](const transport::FlowRecord&) {
      on_object_complete(*raw);
    };
    pages.push_back(std::move(state));
    // Browser behaviour: the HTML document is fetched first on a single
    // connection; the subresource lanes open once it arrives.
    simulator.schedule_at(req.at, [&, raw] { launch_next(*raw); });
  }

  simulator.run_until(last_request + config_.drain);

  WebRunOutcome outcome;
  outcome.pages.reserve(pages.size());
  for (const auto& page : pages) {
    PageResult r = page->result;
    if (!r.finished) r.completed = simulator.now();  // censored
    outcome.pages.push_back(r);
  }

  double fct = 0, timeouts = 0, normal = 0, proactive = 0;
  std::size_t flows = 0;
  for (const auto& agent : server_agents) {
    for (const transport::FlowRecord& record : agent->completed()) {
      ++flows;
      fct += record.fct().to_ms();
      timeouts += record.timeouts;
      normal += record.normal_retx;
      proactive += record.proactive_retx;
    }
  }
  if (flows > 0) {
    outcome.flow_stats.flows = flows;
    outcome.flow_stats.mean_fct_ms = fct / static_cast<double>(flows);
    outcome.flow_stats.mean_timeouts = timeouts / static_cast<double>(flows);
    outcome.flow_stats.mean_normal_retx = normal / static_cast<double>(flows);
    outcome.flow_stats.mean_proactive_retx = proactive / static_cast<double>(flows);
  }
  return outcome;
}

}  // namespace halfback::exp
