// Application-level web benchmark (§4.4, Fig. 16): page requests fan out
// into concurrent short flows, as a browser does.
#pragma once

#include <cstdint>
#include <vector>

#include "exp/emulab.h"
#include "workload/web.h"

namespace halfback::exp {

/// Outcome of one page request.
struct PageResult {
  sim::Time requested;
  sim::Time completed;
  bool finished = false;
  std::size_t objects = 0;
  std::uint64_t bytes = 0;

  sim::Time response_time() const { return completed - requested; }
};

/// Aggregate statistics over the individual object flows of a web run.
struct WebFlowStats {
  std::size_t flows = 0;
  double mean_fct_ms = 0.0;  // lint: unit-ok(statistics edge: report column in ms)
  double mean_timeouts = 0.0;
  double mean_normal_retx = 0.0;
  double mean_proactive_retx = 0.0;
};

/// Outcome of one web run: per-page results plus object-flow aggregates.
struct WebRunOutcome {
  std::vector<PageResult> pages;
  WebFlowStats flow_stats;

  double mean_response_s() const;
  std::size_t unfinished_pages() const;
};

/// Runs a schedule of page requests with one scheme. The HTML document is
/// fetched first on one connection; then up to `max_connections` concurrent
/// lanes (Chrome's per-host default of 6) fetch the remaining objects, each
/// lane back to back.
class WebRunner {
 public:
  struct Config {
    net::DumbbellConfig dumbbell;
    std::uint64_t seed = 1;
    transport::SenderConfig sender_config;
    schemes::HalfbackConfig halfback_config;
    int max_connections = 6;
    sim::Time drain = sim::Time::seconds(30);
  };

  explicit WebRunner(Config config) : config_{std::move(config)} {}

  WebRunOutcome run(schemes::Scheme scheme, const workload::WebsiteCatalog& catalog,
                    const std::vector<workload::WebRequest>& requests);

 private:
  Config config_;
};

}  // namespace halfback::exp
