// Fault-injection hook interface for links.
//
// This header sits at the bottom of the net layer (depends only on sim/time
// and a Packet forward declaration) so that Link can carry a hook pointer
// without the net library depending on the concrete fault models. The
// deterministic, composable implementation lives in src/netfault/ — see
// docs/fault-injection.md. With no hook installed the link fast path pays
// exactly one null-pointer test per packet.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace halfback::net {

struct Packet;

/// What the fault layer decided for one packet that finished serializing.
/// The default-constructed decision is "deliver normally".
struct FaultDecision {
  /// Discard the packet (bursty loss, blackout window). Overrides the rest.
  bool drop = false;

  /// Deliver the packet with its payload corrupted: the packet still
  /// occupies the pipe and arrives, but the receiving transport's checksum
  /// check rejects it (see transport::TransportAgent).
  bool corrupt = false;

  /// Extra copies to launch into the propagation pipe alongside the
  /// original (packet duplication, e.g. L2 retransmit races).
  std::uint32_t duplicates = 0;

  /// Extra propagation delay for the original packet (delay jitter /
  /// delay spikes). Packets serialized later can overtake it: reordering.
  sim::Time extra_delay;

  /// Additional delay applied to duplicate copies on top of `extra_delay`,
  /// so the copies trail the original instead of arriving in lockstep.
  sim::Time duplicate_spacing;
};

/// Per-link fault-injection hook, consulted after serialization (the same
/// point where the built-in random-loss process runs) for every packet.
/// Implementations must be deterministic: the decision may depend only on
/// seeded randomness, the packet, and virtual time.
class FaultHook {
 public:
  virtual ~FaultHook() = default;

  /// Decide the fate of `packet`, which finished serializing at `now`.
  virtual FaultDecision on_transmit(const Packet& packet, sim::Time now) = 0;
};

}  // namespace halfback::net
