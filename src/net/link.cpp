// lint: hot-path — per-packet code; no per-packet allocation or type erasure.
#include "net/link.h"

#include <stdexcept>
#include <utility>

#include "audit/auditor.h"

namespace halfback::net {

Link::Link(sim::Simulator& simulator, sim::DataRate rate, sim::Time delay,
           std::unique_ptr<PacketQueue> queue, LossRate random_loss_rate,
           PacketPool* pool)
    : simulator_{simulator},
      rate_{rate},
      delay_{delay},
      queue_{std::move(queue)},
      random_loss_rate_{random_loss_rate},
      loss_rng_{simulator.random().fork(0x11bbULL)},
      pool_{pool} {
  if (rate_.is_zero()) throw std::invalid_argument{"Link rate must be positive"};
  if (!queue_) throw std::invalid_argument{"Link requires a queue"};
  if (pool_ == nullptr) {
    fallback_pool_ = std::make_unique<PacketPool>();
    pool_ = fallback_pool_.get();
  }
}

void Link::send(Packet p) {
  HALFBACK_AUDIT_HOOK(simulator_.auditor(), on_link_offered(*this, p));
  if (packet_filter_ && !packet_filter_(p)) {
    ++stats_.corrupted_packets;
    HALFBACK_AUDIT_HOOK(simulator_.auditor(), on_link_filtered(*this, p));
    return;
  }
  if (transmitting_) {
    // The queue raises the series' queue-depth peak itself (it knows its
    // resident count without a virtual packet_count() call).
    queue_->enqueue(std::move(p), simulator_.now());
    return;
  }
  begin_transmission(std::move(p));
}

void Link::begin_transmission(Packet p) {
  transmitting_ = true;
  const sim::Time tx = rate_.transmission_time(p.size_bytes);
  stats_.busy_time += tx;
  tx_packet_ = std::move(p);
  simulator_.schedule_event(tx, tx_done_);
}

void Link::on_serialization_done() {
  // Serialization done: launch the packet into the propagation pipe.
  // Multiple packets can be in flight in the pipe simultaneously, so each
  // launch takes a pooled node; the single tx_done_ event is free to be
  // re-armed for the next packet in on_transmission_complete().
  const bool corrupted = !random_loss_rate_.is_zero() &&
                         loss_rng_.bernoulli(random_loss_rate_.value());
  if (corrupted) {
    ++stats_.corrupted_packets;
    HALFBACK_AUDIT_HOOK(simulator_.auditor(), on_link_corrupted(*this, tx_packet_));
  } else if (fault_hook_ == nullptr) {
    launch(std::move(tx_packet_), delay_);
  } else {
    apply_faults();
  }
  on_transmission_complete();
}

void Link::launch(Packet p, sim::Time pipe_delay) {
  PacketEvent& node = pool_->acquire(&Link::deliver_trampoline, this);
  node.packet = std::move(p);
  simulator_.schedule_event(pipe_delay, node);
}

void Link::apply_faults() {
  // Out of line so the fault-free fast path in on_serialization_done stays
  // a single null test. The hook decides; the link executes.
  FaultDecision decision = fault_hook_->on_transmit(tx_packet_, simulator_.now());
  if (decision.drop) {
    ++stats_.fault_dropped_packets;
    HALFBACK_AUDIT_HOOK(simulator_.auditor(),
                        on_link_fault_dropped(*this, tx_packet_));
    record_fault(telemetry::FaultKind::drop);
    if (series_ != nullptr) series_->tally_drop(simulator_.now());
    return;
  }
  if (decision.corrupt && !tx_packet_.corrupted) {
    tx_packet_.corrupted = true;
    ++stats_.fault_corrupted_packets;
    HALFBACK_AUDIT_HOOK(simulator_.auditor(),
                        on_link_fault_corrupted(*this, tx_packet_));
    record_fault(telemetry::FaultKind::corrupt);
  }
  if (decision.extra_delay < sim::Time::zero() ||
      decision.duplicate_spacing < sim::Time::zero()) {
    // lint: hot-ok(hook-contract guard; unreachable for well-formed fault hooks)
    throw std::logic_error{"FaultHook returned a negative delay"};
  }
  if (!decision.extra_delay.is_zero()) {
    ++stats_.fault_delayed_packets;
    record_fault(telemetry::FaultKind::delay);
  }
  const sim::Time pipe = delay_ + decision.extra_delay;
  if (decision.duplicates == 0) {
    launch(std::move(tx_packet_), pipe);
    return;
  }
  // Launch the original first so that with zero spacing the copies still
  // trail it in same-timestamp FIFO order.
  Packet original = tx_packet_;
  launch(std::move(tx_packet_), pipe);
  sim::Time copy_at = pipe;
  for (std::uint32_t i = 0; i < decision.duplicates; ++i) {
    ++stats_.fault_duplicated_packets;
    HALFBACK_AUDIT_HOOK(simulator_.auditor(),
                        on_link_fault_duplicated(*this, original));
    record_fault(telemetry::FaultKind::duplicate);
    copy_at += decision.duplicate_spacing;
    launch(original, copy_at);
  }
}

void Link::record_fault(telemetry::FaultKind kind) {
  if (tape_ == nullptr) return;
  tape_->record(simulator_.now(), telemetry::TapeEventKind::fault_hit,
                static_cast<std::uint32_t>(kind), tx_packet_.uid);
}

void Link::deliver_trampoline(void* context, PacketEvent& node) {
  static_cast<Link*>(context)->deliver(node);
}

void Link::deliver(PacketEvent& node) {
  Packet p = std::move(node.packet);
  pool_->release(node);
  ++stats_.delivered_packets;
  stats_.delivered_bytes += p.size_bytes;
  if (series_ != nullptr) {
    series_->tally_packets(simulator_.now(), 1);
    series_->tally_bytes(simulator_.now(), p.size_bytes);
  }
  HALFBACK_AUDIT_HOOK(simulator_.auditor(), on_link_delivered(*this, p));
  if (receiver_) {
    receiver_(std::move(p));
  } else if (dst_node_ != nullptr) {
    HALFBACK_AUDIT_HOOK(simulator_.auditor(), on_node_received(dst_node_->id(), p));
    dst_node_->handle(std::move(p));
  }
}

// lint: function-ok(tap-chaining accessor; wiring time only, never per packet)
std::function<void(Packet)> Link::receiver() const {
  if (receiver_) return receiver_;
  if (dst_node_ == nullptr) return {};
  // Wrap the node fast path so a tap's captured downstream still delivers
  // (and still reports the arrival to an attached auditor).
  Node* node = dst_node_;
  sim::Simulator& simulator = simulator_;
  return [node, &simulator](Packet p) {
    (void)simulator;
    HALFBACK_AUDIT_HOOK(simulator.auditor(), on_node_received(node->id(), p));
    node->handle(std::move(p));
  };
}

void Link::on_transmission_complete() {
  if (auto next = queue_->dequeue(simulator_.now())) {
    begin_transmission(std::move(*next));
  } else {
    transmitting_ = false;
  }
}

}  // namespace halfback::net
