#include "net/link.h"

#include <stdexcept>
#include <utility>

#include "audit/auditor.h"

namespace halfback::net {

Link::Link(sim::Simulator& simulator, sim::DataRate rate, sim::Time delay,
           std::unique_ptr<PacketQueue> queue, double random_loss_rate)
    : simulator_{simulator},
      rate_{rate},
      delay_{delay},
      queue_{std::move(queue)},
      random_loss_rate_{random_loss_rate},
      loss_rng_{simulator.random().fork(0x11bbULL)} {
  if (rate_.is_zero()) throw std::invalid_argument{"Link rate must be positive"};
  if (!queue_) throw std::invalid_argument{"Link requires a queue"};
}

void Link::send(Packet p) {
  HALFBACK_AUDIT_HOOK(simulator_.auditor(), on_link_offered(*this, p));
  if (packet_filter_ && !packet_filter_(p)) {
    ++stats_.corrupted_packets;
    HALFBACK_AUDIT_HOOK(simulator_.auditor(), on_link_filtered(*this, p));
    return;
  }
  if (transmitting_) {
    queue_->enqueue(std::move(p), simulator_.now());
    return;
  }
  begin_transmission(std::move(p));
}

void Link::begin_transmission(Packet p) {
  transmitting_ = true;
  const sim::Time tx = rate_.transmission_time(p.size_bytes);
  stats_.busy_time += tx;
  simulator_.schedule(tx, [this, p = std::move(p)]() mutable {
    // Serialization done: launch the packet into the propagation pipe.
    // Multiple packets can be in flight in the pipe simultaneously.
    const bool corrupted = random_loss_rate_ > 0.0 && loss_rng_.bernoulli(random_loss_rate_);
    if (corrupted) {
      ++stats_.corrupted_packets;
      HALFBACK_AUDIT_HOOK(simulator_.auditor(), on_link_corrupted(*this, p));
    } else {
      simulator_.schedule(delay_, [this, p = std::move(p)]() mutable {
        ++stats_.delivered_packets;
        stats_.delivered_bytes += p.size_bytes;
        HALFBACK_AUDIT_HOOK(simulator_.auditor(), on_link_delivered(*this, p));
        if (receiver_) receiver_(std::move(p));
      });
    }
    on_transmission_complete();
  });
}

void Link::on_transmission_complete() {
  if (auto next = queue_->dequeue(simulator_.now())) {
    begin_transmission(std::move(*next));
  } else {
    transmitting_ = false;
  }
}

}  // namespace halfback::net
