// Unidirectional point-to-point link with an egress queue.
//
// lint: hot-path — per-packet code; no per-packet allocation or type erasure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>

#include "net/fault_hook.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "net/queue.h"
#include "sim/annotations.h"
#include "sim/bytes.h"
#include "sim/data_rate.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace halfback::net {

/// A per-packet random-loss probability, validated at construction: an
/// out-of-range rate fails loudly at topology build time instead of running
/// a silently absurd experiment. Converts implicitly from double so config
/// literals like `0.01` keep working.
class LossRate {
 public:
  constexpr LossRate() = default;
  constexpr LossRate(double rate) : rate_{validated(rate)} {}  // NOLINT(google-explicit-constructor)

  constexpr double value() const { return rate_; }
  constexpr bool is_zero() const { return rate_ <= 0.0; }

 private:
  static constexpr double validated(double rate) {
    if (!(rate >= 0.0 && rate <= 1.0)) {  // negated so NaN is rejected too
      throw std::invalid_argument{"loss rate must be within [0, 1]"};
    }
    return rate;
  }
  double rate_ = 0.0;
};

/// Counters a link maintains.
struct LinkStats {
  std::uint64_t delivered_packets = 0;
  sim::Bytes delivered_bytes;
  std::uint64_t corrupted_packets = 0;  ///< random-loss drops
  sim::Time busy_time;                  ///< total serialization time

  // Injected faults (zero unless a FaultHook is installed; see
  // src/netfault/ and docs/fault-injection.md).
  std::uint64_t fault_dropped_packets = 0;     ///< discarded by the hook
  std::uint64_t fault_duplicated_packets = 0;  ///< extra copies launched
  std::uint64_t fault_corrupted_packets = 0;   ///< delivered with bad payload
  std::uint64_t fault_delayed_packets = 0;     ///< given extra propagation delay
};

/// One direction of a point-to-point link.
///
/// Models serialization at `rate`, propagation over `delay`, an egress
/// queue for contention, and (optionally, for wireless access profiles) a
/// random per-packet error rate applied after serialization.
///
/// Event model: the transmitter serializes one packet at a time, so the
/// serialization-done event is a single reusable intrusive event embedded
/// in the link (`tx_done_`) and the in-service packet parks in
/// `tx_packet_`. The propagation pipe holds many packets at once, so each
/// launch draws a PacketEvent from the packet pool and returns it on
/// delivery. Steady-state forwarding therefore allocates nothing per hop.
class Link {
 public:
  /// `pool` is the recycling pool for in-flight packets, normally the
  /// owning Network's. Links built bare (tests, micro-benchmarks) may pass
  /// nullptr to get a private fallback pool.
  Link(sim::Simulator& simulator, sim::DataRate rate, sim::Time delay,
       std::unique_ptr<PacketQueue> queue, LossRate random_loss_rate = {},
       PacketPool* pool = nullptr);

  /// Where delivered packets go (the far-end node). The node fast path: a
  /// direct call into Node::handle with no type erasure on the per-packet
  /// hop. An installed set_receiver() callback takes precedence, so taps
  /// and tests can still intercept delivery.
  void set_receiver_node(Node& node) { dst_node_ = &node; }

  /// Custom delivery callback; overrides the node fast path while set.
  // lint: function-ok(bound once at wiring time; invoked, never rebound, per packet)
  void set_receiver(std::function<void(Packet)> receiver) {
    receiver_ = std::move(receiver);
  }
  /// Current delivery target (empty if none) — lets taps chain. When the
  /// link delivers straight to a node, the returned callable wraps that
  /// node so a tap's downstream keeps delivering.
  // lint: function-ok(accessor for the once-bound delivery target)
  std::function<void(Packet)> receiver() const;

  /// Fault-injection hook: packets for which the filter returns false are
  /// dropped before entering the queue (counted as corrupted). Used by
  /// tests and the Fig. 3 walkthrough to force specific losses.
  // lint: function-ok(test-only fault-injection hook, unset in experiments)
  void set_packet_filter(std::function<bool(const Packet&)> filter) {
    packet_filter_ = std::move(filter);
  }

  /// Install (or clear, with nullptr) a fault-injection hook, consulted
  /// after serialization for every packet. Not owned; the caller must keep
  /// it alive as long as the link transmits. With no hook installed the
  /// per-packet cost is a single null test (see on_serialization_done).
  void set_fault_hook(FaultHook* hook) { fault_hook_ = hook; }
  FaultHook* fault_hook() const { return fault_hook_; }

  /// Attach this link's flight-recorder tape (nullptr detaches; owned by
  /// the telemetry Hub). Fault hits are recorded on it; queue drops go on
  /// the same tape via PacketQueue::set_tape. Recording is confined to the
  /// apply_faults slow path — the fault-free per-packet cost is unchanged.
  void set_tape(telemetry::Tape* tape) { tape_ = tape; }
  telemetry::Tape* tape() const { return tape_; }

  /// Attach this link's windowed time-series (nullptr detaches; owned by
  /// the telemetry Hub, which hands the same series to the egress queue for
  /// drop tallies). Deliveries and queue-depth peaks land in the tumbling
  /// window of their instant; each tally is a bounds check plus indexed
  /// adds, so the per-packet cost with no series attached stays one null
  /// test.
  void set_series(telemetry::WindowSeries* series) { series_ = series; }
  telemetry::WindowSeries* series() const { return series_; }

  /// Hand a packet to the link. It is queued if the transmitter is busy and
  /// may be dropped by the queue discipline.
  void send(Packet p) HB_EFFECTS(alloc, throw);

  sim::DataRate rate() const { return rate_; }
  sim::Time propagation_delay() const { return delay_; }
  PacketQueue& queue() { return *queue_; }
  const PacketQueue& queue() const { return *queue_; }
  const LinkStats& stats() const { return stats_; }

  /// The pool this link draws in-flight packet nodes from.
  PacketPool& packet_pool() { return *pool_; }

  /// Fraction of [0, now] this link spent serializing packets.
  double utilization(sim::Time now) const {
    return now.is_zero() ? 0.0 : stats_.busy_time / now;
  }

 private:
  /// Serialization-complete event; one per link, reused for every packet
  /// (the transmitter serializes strictly one at a time).
  class TxDoneEvent final : public sim::Event {
   public:
    explicit TxDoneEvent(Link& link) : link_{link} {}

   private:
    // lint: fire-may-throw(drains the queue into transport logic whose invariant checks throw; exceptions must reach run()'s caller)
    void fire() override { link_.on_serialization_done(); }
    Link& link_;
  };

  void begin_transmission(Packet p);
  void on_serialization_done();
  void on_transmission_complete();

  /// Launch a packet into the propagation pipe, arriving after
  /// `pipe_delay` (>= delay_; fault hooks may stretch it).
  void launch(Packet p, sim::Time pipe_delay);
  /// Out-of-line slow path: consult fault_hook_ and act on its decision.
  void apply_faults();
  /// Record a fault-hit tape event for tx_packet_ (no-op without a tape).
  void record_fault(telemetry::FaultKind kind);

  static void deliver_trampoline(void* context, PacketEvent& node);
  void deliver(PacketEvent& node);

  sim::Simulator& simulator_;
  sim::DataRate rate_;
  sim::Time delay_;
  std::unique_ptr<PacketQueue> queue_;
  LossRate random_loss_rate_;
  sim::Random loss_rng_;
  Node* dst_node_ = nullptr;                        ///< direct-delivery fast path
  std::function<void(Packet)> receiver_;            // lint: function-ok(bound once at wiring time)
  std::function<bool(const Packet&)> packet_filter_;  // lint: function-ok(test-only hook)
  FaultHook* fault_hook_ = nullptr;  ///< not owned; nullptr = fault-free fast path
  telemetry::Tape* tape_ = nullptr;  ///< not owned; nullptr = no recording
  telemetry::WindowSeries* series_ = nullptr;  ///< not owned; nullptr = none
  bool transmitting_ = false;
  LinkStats stats_;

  std::unique_ptr<PacketPool> fallback_pool_;  ///< only for bare links
  PacketPool* pool_;
  TxDoneEvent tx_done_{*this};
  Packet tx_packet_;  ///< the packet currently serializing; valid while transmitting_
};

}  // namespace halfback::net
