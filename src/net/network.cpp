#include "net/network.h"

#include <queue>
#include <utility>

#include "audit/auditor.h"

namespace halfback::net {

NodeId Network::add_node() {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id));
  return id;
}

Link* Network::make_link(NodeId from, NodeId to, const LinkConfig& config) {
  std::unique_ptr<PacketQueue> queue;
  switch (config.queue_kind) {
    case QueueKind::red: {
      RedQueue::Config red;
      red.capacity_bytes = config.queue_bytes;
      queue = std::make_unique<RedQueue>(red, simulator_.random().fork(0xaedULL + to));
      break;
    }
    case QueueKind::codel: {
      CoDelQueue::Config codel;
      codel.capacity_bytes = config.queue_bytes;
      queue = std::make_unique<CoDelQueue>(codel);
      break;
    }
    case QueueKind::priority:
      queue = std::make_unique<PriorityQueue>(config.queue_bytes);
      break;
    case QueueKind::drop_tail:
      queue = std::make_unique<DropTailQueue>(config.queue_bytes);
      break;
  }
  auto link = std::make_unique<Link>(simulator_, config.rate, config.delay,
                                     std::move(queue), config.random_loss_rate,
                                     &pool_);
  Link* raw = link.get();
  raw->set_receiver_node(*nodes_.at(to));
  nodes_.at(from)->add_egress(to, raw);
  links_.push_back(std::move(link));
  edges_.push_back(Edge{from, to});
#ifdef HALFBACK_AUDIT
  if (audit::Auditor* auditor = simulator_.auditor()) {
    raw->queue().set_auditor(auditor);
    auditor->on_link_registered(*raw);
  }
#endif
  return raw;
}

void Network::install_auditor(audit::Auditor& auditor) {
#ifdef HALFBACK_AUDIT
  simulator_.set_auditor(&auditor);
  for (const auto& link : links_) {
    link->queue().set_auditor(&auditor);
    auditor.on_link_registered(*link);
  }
#else
  (void)auditor;
#endif
}

LinkPair Network::connect(NodeId a, NodeId b, const LinkConfig& forward,
                          const LinkConfig& reverse) {
  LinkPair pair;
  pair.forward = make_link(a, b, forward);
  pair.reverse = make_link(b, a, reverse);
  return pair;
}

void Network::compute_routes() {
  // Adjacency from the directed edge list.
  std::vector<std::vector<NodeId>> adjacency(nodes_.size());
  for (const Edge& e : edges_) adjacency[e.from].push_back(e.to);

  // BFS from every destination over reversed edges would be equivalent;
  // with our small topologies a BFS from every source is simplest.
  for (NodeId src = 0; src < nodes_.size(); ++src) {
    std::vector<NodeId> parent(nodes_.size(), src);
    std::vector<bool> visited(nodes_.size(), false);
    std::queue<NodeId> frontier;
    visited[src] = true;
    frontier.push(src);
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : adjacency[u]) {
        if (visited[v]) continue;
        visited[v] = true;
        parent[v] = u;
        frontier.push(v);
      }
    }
    for (NodeId dst = 0; dst < nodes_.size(); ++dst) {
      if (dst == src || !visited[dst]) continue;
      // Walk back from dst to find the first hop out of src.
      NodeId hop = dst;
      while (parent[hop] != src) hop = parent[hop];
      nodes_[src]->set_route(dst, hop);
    }
  }
}

std::uint64_t Network::total_queue_drops() const {
  std::uint64_t drops = 0;
  for (const auto& link : links_) drops += link->queue().stats().dropped_packets;
  return drops;
}

}  // namespace halfback::net
