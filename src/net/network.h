// Network container: owns nodes and links, computes static routes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/link.h"
#include "net/node.h"
#include "net/packet_pool.h"
#include "net/queue.h"
#include "sim/annotations.h"
#include "sim/data_rate.h"
#include "sim/simulator.h"

namespace halfback::net {

/// Parameters for one direction of a link.
struct LinkConfig {
  sim::DataRate rate;
  sim::Time delay;
  sim::Bytes queue_bytes = 150000;
  LossRate random_loss_rate;
  QueueKind queue_kind = QueueKind::drop_tail;
};

/// A pair of directed links forming a bidirectional connection.
struct LinkPair {
  Link* forward = nullptr;  ///< a -> b
  Link* reverse = nullptr;  ///< b -> a
};

/// Owns the topology for one simulation and computes shortest-path routes.
class Network {
 public:
  explicit Network(sim::Simulator& simulator) : simulator_{simulator} {}

  /// Create a node and return its id (ids are dense, starting at 0).
  NodeId add_node();

  /// Connect two nodes bidirectionally. `forward` configures a->b;
  /// `reverse` configures b->a.
  // HB_EFFECTS covers the overload set (the two-config overload below
  // forwards here): wiring allocates links and forks per-link RNG.
  LinkPair connect(NodeId a, NodeId b, const LinkConfig& forward,
                   const LinkConfig& reverse) HB_EFFECTS(alloc, rng);

  /// Symmetric convenience overload.
  LinkPair connect(NodeId a, NodeId b, const LinkConfig& both) {
    return connect(a, b, both, both);
  }

  /// Populate every node's routing table with shortest-hop routes.
  /// Must be called after the topology is final and before traffic starts.
  void compute_routes() HB_EFFECTS(alloc);

  Node& node(NodeId id) { return *nodes_.at(id); }
  const Node& node(NodeId id) const { return *nodes_.at(id); }
  std::size_t node_count() const { return nodes_.size(); }

  sim::Simulator& simulator() { return simulator_; }

  /// All links, for statistics sweeps.
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

  /// The per-simulation recycling pool all of this network's links draw
  /// in-flight packet nodes from (diagnostics / allocation assertions).
  const PacketPool& packet_pool() const { return pool_; }

  /// Total packets dropped by all queues in the network.
  std::uint64_t total_queue_drops() const;

  /// Install `auditor` on the simulator, every existing link's queue, and
  /// every link created afterwards, and register each link with it. Call
  /// before traffic starts so the auditor's shadow accounting is complete.
  /// The auditor is owned by the caller and must outlive the run; a no-op
  /// unless the build defines HALFBACK_AUDIT.
  void install_auditor(audit::Auditor& auditor);

 private:
  Link* make_link(NodeId from, NodeId to, const LinkConfig& config);

  sim::Simulator& simulator_;
  // Declared before links_ so it outlives them: queued PacketEvents cancel
  // themselves out of the event queue when the pool's slab destructs.
  PacketPool pool_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  struct Edge {
    NodeId from;
    NodeId to;
  };
  std::vector<Edge> edges_;
};

}  // namespace halfback::net
