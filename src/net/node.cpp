#include "net/node.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "net/link.h"

namespace halfback::net {

void Node::add_egress(NodeId neighbor, Link* link) {
  egress_[neighbor] = link;
  // Routes installed before their link existed now resolve; refresh them.
  for (const auto& [dest, next_hop] : routes_) {
    if (next_hop == neighbor) refresh_forward(dest);
  }
}

void Node::set_route(NodeId dest, NodeId next_hop) {
  routes_[dest] = next_hop;
  refresh_forward(dest);
}

void Node::refresh_forward(NodeId dest) {
  if (forward_.size() <= dest) forward_.resize(dest + 1, nullptr);
  Link* link = nullptr;
  auto route = routes_.find(dest);
  if (route != routes_.end()) {
    auto egress = egress_.find(route->second);
    if (egress != egress_.end()) link = egress->second;
  }
  forward_[dest] = link;
}

void Node::handle(Packet p) {
  if (p.dst == id_) {
    if (local_handler_) local_handler_(std::move(p));
    return;
  }
  if (p.dst < forward_.size()) {
    if (Link* link = forward_[p.dst]; link != nullptr) {
      link->send(std::move(p));
      return;
    }
  }
  // Unresolved destination: consult the maps to name the missing piece.
  auto route = routes_.find(p.dst);
  if (route == routes_.end()) {
    throw std::logic_error{"node " + std::to_string(id_) + " has no route to " +
                           std::to_string(p.dst)};
  }
  throw std::logic_error{"node " + std::to_string(id_) + " has no link to next hop " +
                         std::to_string(route->second)};
}

bool Node::has_route_to(NodeId dest) const {
  return dest == id_ || routes_.contains(dest);
}

}  // namespace halfback::net
