#include "net/node.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "net/link.h"

namespace halfback::net {

void Node::handle(Packet p) {
  if (p.dst == id_) {
    if (local_handler_) local_handler_(std::move(p));
    return;
  }
  auto route = routes_.find(p.dst);
  if (route == routes_.end()) {
    throw std::logic_error{"node " + std::to_string(id_) + " has no route to " +
                           std::to_string(p.dst)};
  }
  auto egress = egress_.find(route->second);
  if (egress == egress_.end()) {
    throw std::logic_error{"node " + std::to_string(id_) + " has no link to next hop " +
                           std::to_string(route->second)};
  }
  egress->second->send(std::move(p));
}

bool Node::has_route_to(NodeId dest) const {
  return dest == id_ || routes_.contains(dest);
}

}  // namespace halfback::net
