// A network node: host or router.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/annotations.h"

namespace halfback::net {

class Link;

/// A node forwards packets by destination using a static routing table and
/// delivers locally-addressed packets to its attached protocol stack.
/// Hosts and routers are the same class; hosts just have a local handler.
class Node {
 public:
  explicit Node(NodeId id) : id_{id} {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }

  /// Attach the egress link toward a directly-connected neighbor.
  void add_egress(NodeId neighbor, Link* link);

  /// Install a route: packets for `dest` leave via `next_hop`.
  void set_route(NodeId dest, NodeId next_hop);

  /// Protocol stack entry point for packets addressed to this node.
  void set_local_handler(std::function<void(Packet)> handler) {
    local_handler_ = std::move(handler);
  }
  /// Currently-installed handler (empty if none) — lets taps chain.
  const std::function<void(Packet)>& local_handler() const { return local_handler_; }

  /// A packet arriving at this node (from a link or the local stack).
  void handle(Packet p);

  /// Send a locally-originated packet.
  void send(Packet p) HB_EFFECTS(alloc, throw) { handle(std::move(p)); }

  bool has_route_to(NodeId dest) const;

 private:
  /// Rebuild the forwarding-cache entry for `dest` from routes_ + egress_.
  void refresh_forward(NodeId dest);

  NodeId id_;
  std::unordered_map<NodeId, Link*> egress_;
  std::unordered_map<NodeId, NodeId> routes_;
  /// Destination-indexed forwarding cache: node ids are small and dense
  /// (Network hands them out sequentially), so the per-hop lookup is one
  /// array load instead of two hash probes. nullptr marks "no resolved
  /// route"; handle() falls back to the maps there to raise the precise
  /// misconfiguration error.
  std::vector<Link*> forward_;
  std::function<void(Packet)> local_handler_;
};

}  // namespace halfback::net
