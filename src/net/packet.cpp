#include "net/packet.h"

#include <cstdio>

namespace halfback::net {

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::syn: return "SYN";
    case PacketType::syn_ack: return "SYN-ACK";
    case PacketType::data: return "DATA";
    case PacketType::ack: return "ACK";
  }
  return "?";
}

std::string Packet::to_string() const {
  char buf[160];
  if (type == PacketType::data) {
    std::snprintf(buf, sizeof buf, "DATA flow=%llu seq=%u/%u%s%s%s uid=%llu",
                  static_cast<unsigned long long>(flow), seq, total_segments,
                  is_retx ? " retx" : "", is_proactive ? " proactive" : "",
                  corrupted ? " corrupt" : "",
                  static_cast<unsigned long long>(uid));
  } else if (type == PacketType::ack) {
    std::snprintf(buf, sizeof buf, "ACK flow=%llu cum=%u sacks=%zu%s",
                  static_cast<unsigned long long>(flow), cum_ack, sacks.size(),
                  corrupted ? " corrupt" : "");
  } else {
    std::snprintf(buf, sizeof buf, "%s flow=%llu", net::to_string(type),
                  static_cast<unsigned long long>(flow));
  }
  return buf;
}

}  // namespace halfback::net
