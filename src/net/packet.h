// Wire packets exchanged by simulated hosts.
//
// The transport in this codebase (like the paper's UDT substrate) works at
// segment granularity: a data packet carries one MSS-sized segment and is
// identified by its segment index within the flow, not a byte offset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "sim/time.h"

namespace halfback::net {

using NodeId = std::uint32_t;
using FlowId = std::uint64_t;

/// Wire sizes, matching the paper's setup: "the segment size is 1500 bytes
/// including the header".
inline constexpr std::uint32_t kSegmentWireBytes = 1500;
inline constexpr std::uint32_t kHeaderBytes = 52;
inline constexpr std::uint32_t kSegmentPayloadBytes = kSegmentWireBytes - kHeaderBytes;
inline constexpr std::uint32_t kAckWireBytes = 52;
inline constexpr std::uint32_t kControlWireBytes = 52;  // SYN / SYN-ACK

enum class PacketType : std::uint8_t {
  syn,
  syn_ack,
  data,
  ack,
};

const char* to_string(PacketType t);

/// A half-open range of segment indices [begin, end) reported by a
/// selective acknowledgement.
struct SackBlock {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;

  bool operator==(const SackBlock&) const = default;
};

/// The SACK option of one ACK: a bounded, inline list of blocks.
///
/// A real SACK option caps out at three or four blocks, so the list lives
/// inline in the packet rather than on the heap — packets stay trivially
/// copyable and the per-ACK path never allocates. push_back beyond capacity
/// drops the block, mirroring how a real option silently omits runs that
/// do not fit (the receiver already bounds itself via max_sack_blocks).
class SackList {
 public:
  static constexpr std::size_t kMaxBlocks = 4;

  void push_back(const SackBlock& block) {
    if (size_ < kMaxBlocks) blocks_[size_++] = block;
  }
  void clear() { size_ = 0; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const SackBlock& operator[](std::size_t i) const { return blocks_[i]; }

  const SackBlock* begin() const { return blocks_; }
  const SackBlock* end() const { return blocks_ + size_; }
  const SackBlock* data() const { return blocks_; }

  operator std::span<const SackBlock>() const { return {blocks_, size_}; }

  bool operator==(const SackList& other) const {
    if (size_ != other.size_) return false;
    for (std::size_t i = 0; i < size_; ++i) {
      if (!(blocks_[i] == other.blocks_[i])) return false;
    }
    return true;
  }

 private:
  SackBlock blocks_[kMaxBlocks];
  std::size_t size_ = 0;
};

/// A simulated packet. Value type; links copy it as it propagates.
struct Packet {
  FlowId flow = 0;
  PacketType type = PacketType::data;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t size_bytes = 0;

  /// data: segment index carried. ack: echoes the segment being acked
  /// (used by the sender for tracing; RTT sampling uses echo_uid).
  std::uint32_t seq = 0;

  /// ack: cumulative acknowledgement — the lowest segment index the
  /// receiver has NOT yet received.
  std::uint32_t cum_ack = 0;

  /// data/syn: flow length in segments, so the receiver knows when the
  /// flow is complete.
  std::uint32_t total_segments = 0;

  /// ack: selective acknowledgement blocks above cum_ack (most recent
  /// first, bounded length like a real SACK option).
  SackList sacks;

  /// data: true when this is any kind of retransmission.
  bool is_retx = false;
  /// Service priority: 0 = normal, 1 = background/low (RC3's RLP copies).
  /// Only PriorityQueue bottlenecks differentiate; other queues ignore it.
  std::uint8_t priority = 0;
  /// data: true when this is a *proactive* retransmission (ROPR or
  /// Proactive-TCP duplicate), as opposed to a loss-triggered one.
  bool is_proactive = false;

  /// Payload was corrupted in flight by a fault injector (net::FaultHook).
  /// The packet still propagates and consumes link/queue resources; the
  /// receiving transport's checksum check rejects it on arrival.
  bool corrupted = false;

  /// Unique id of this transmission (every send, including retransmissions,
  /// gets a fresh uid). ACKs echo the uid of the packet that triggered them
  /// so senders can take Karn-safe RTT samples.
  std::uint64_t uid = 0;
  std::uint64_t echo_uid = 0;

  /// Time the packet was handed to the first link (for tracing).
  sim::Time sent_at;

  std::string to_string() const;
};

}  // namespace halfback::net
