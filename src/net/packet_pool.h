// Recycling pool for in-flight packet events.
//
// lint: hot-path — per-hop code; no per-packet allocation or type erasure.
//
// Every packet crossing a link needs a simulator event to land it at the far
// end of the propagation pipe, and many such packets are in flight at once.
// Before this pool existed each hop heap-allocated a type-erased callback
// capturing the packet; now a hop draws a PacketEvent node — an intrusive
// event with the packet payload embedded — from the pool and returns it on
// delivery, so steady-state forwarding performs no allocation per hop. The
// pool only mallocs when the number of simultaneously in-flight packets
// reaches a new high-water mark.
//
// Ownership rules (see docs/architecture.md, "Event & memory model"):
//  * One pool per Simulator. Network owns it (a Network is 1:1 with its
//    Simulator); bare links built without a Network fall back to a private
//    pool so tests keep working.
//  * acquire() transfers ownership to the in-flight path: the caller must
//    either schedule the node and release() it exactly once from its
//    handler, or release() it immediately. Never release a queued node.
//  * The pool must outlive every node it handed out — components must not
//    hold PacketEvent pointers across simulator teardown.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "sim/annotations.h"
#include "sim/event_queue.h"

namespace halfback::net {

/// An in-flight packet bound to the simulator event that will land it.
/// The handler is a plain function pointer plus context (re-bound on every
/// acquisition without allocating); it receives the node and must release()
/// it back to the pool when done with the payload.
class PacketEvent final : public sim::Event {
 public:
  using Handler = void (*)(void* context, PacketEvent& self);

  Packet packet;

 private:
  friend class PacketPool;

  // lint: fire-may-throw(delivery runs transport logic whose invariant checks throw; exceptions must reach run()'s caller)
  void fire() override { handler_(context_, *this); }

  Handler handler_ = nullptr;
  void* context_ = nullptr;
  PacketEvent* next_free_ = nullptr;
};

/// Allocation counters, exposed so tests can assert the steady state is
/// allocation-free.
struct PacketPoolStats {
  std::uint64_t acquired = 0;   ///< total acquire() calls
  std::uint64_t recycled = 0;   ///< acquires served from the free list
  std::uint64_t allocated = 0;  ///< acquires that had to malloc a node
  std::uint64_t outstanding = 0;  ///< nodes currently out of the pool
};

class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Draw a node and bind its dispatch handler. The node's packet field
  /// holds whatever the previous user left; assign it before scheduling.
  PacketEvent& acquire(PacketEvent::Handler handler, void* context)
      HB_EFFECTS(alloc) {
    ++stats_.acquired;
    ++stats_.outstanding;
    PacketEvent* node;
    if (free_head_ != nullptr) {
      ++stats_.recycled;
      node = free_head_;
      free_head_ = node->next_free_;
      node->next_free_ = nullptr;
    } else {
      ++stats_.allocated;
      // lint: hot-ok(pool growth path; steady state recycles the free list)
      slab_.push_back(std::make_unique<PacketEvent>());
      node = slab_.back().get();
    }
    node->handler_ = handler;
    node->context_ = context;
    return *node;
  }

  /// Return a node. It must not be queued in the event queue.
  void release(PacketEvent& node) HB_EFFECTS() {
    --stats_.outstanding;
    node.next_free_ = free_head_;
    free_head_ = &node;
  }

  const PacketPoolStats& stats() const { return stats_; }
  std::size_t slab_size() const { return slab_.size(); }

 private:
  std::vector<std::unique_ptr<PacketEvent>> slab_;
  PacketEvent* free_head_ = nullptr;
  PacketPoolStats stats_;
};

}  // namespace halfback::net
