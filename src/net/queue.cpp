#include "net/queue.h"

#include <cmath>

namespace halfback::net {

void PacketQueue::record_enqueue(const Packet& p, sim::Time now,
                                 std::size_t resident_packets) {
  ++stats_.enqueued_packets;
  stats_.enqueued_bytes += p.size_bytes;
  stats_.max_backlog_bytes =
      std::max(stats_.max_backlog_bytes, sim::Bytes{byte_length()});
  HALFBACK_AUDIT_HOOK(auditor_, on_queue_enqueued(*this, p));
  if (series_ != nullptr) series_->raise_queue_peak(now, resident_packets);
}

void PacketQueue::record_drop(const Packet& p, sim::Time now,
                              [[maybe_unused]] audit::DropContext context) {
  ++stats_.dropped_packets;
  stats_.dropped_bytes += p.size_bytes;
  HALFBACK_AUDIT_HOOK(auditor_, on_queue_dropped(*this, p, context));
  if (tape_ != nullptr) {
    tape_->record(now, telemetry::TapeEventKind::queue_drop, p.seq, p.flow);
  }
  if (series_ != nullptr) series_->tally_drop(now);
  if (drop_callback_) drop_callback_(p);
}

void PacketQueue::record_dequeue(const Packet& p) {
  ++stats_.dequeued_packets;
  stats_.dequeued_bytes += p.size_bytes;
  HALFBACK_AUDIT_HOOK(auditor_, on_queue_dequeued(*this, p));
}

bool DropTailQueue::enqueue(Packet p, sim::Time now) {
  if (bytes_ + p.size_bytes > capacity_bytes_) {
    record_drop(p, now);
    return false;
  }
  bytes_ += p.size_bytes;
  // lint: hot-ok(queue owns packet storage; deque growth is amortized and capacity-bounded)
  packets_.push_back(std::move(p));
  record_enqueue(packets_.back(), now, packets_.size());
  return true;
}

std::optional<Packet> DropTailQueue::dequeue(sim::Time /*now*/) {
  if (packets_.empty()) return std::nullopt;
  Packet p = std::move(packets_.front());
  packets_.pop_front();
  bytes_ -= p.size_bytes;
  record_dequeue(p);
  return p;
}

bool PriorityQueue::enqueue(Packet p, sim::Time now) {
  const std::size_t band = p.priority == 0 ? 0 : 1;
  if (bytes_[band] + p.size_bytes > band_capacity_bytes_) {
    record_drop(p, now);
    return false;
  }
  bytes_[band] += p.size_bytes;
  // lint: hot-ok(queue owns packet storage; deque growth is amortized and capacity-bounded)
  bands_[band].push_back(std::move(p));
  record_enqueue(bands_[band].back(), now,
                 bands_[0].size() + bands_[1].size());
  return true;
}

std::optional<Packet> PriorityQueue::dequeue(sim::Time /*now*/) {
  for (std::size_t band = 0; band < 2; ++band) {
    if (bands_[band].empty()) continue;
    Packet p = std::move(bands_[band].front());
    bands_[band].pop_front();
    bytes_[band] -= p.size_bytes;
    record_dequeue(p);
    return p;
  }
  return std::nullopt;
}

bool CoDelQueue::enqueue(Packet p, sim::Time now) {
  if (bytes_ + p.size_bytes > config_.capacity_bytes) {
    record_drop(p, now);
    return false;
  }
  bytes_ += p.size_bytes;
  // lint: hot-ok(queue owns packet storage; deque growth is amortized and capacity-bounded)
  packets_.push_back(Entry{now, std::move(p)});
  record_enqueue(packets_.back().packet, now, packets_.size());
  return true;
}

sim::Time CoDelQueue::control_law(sim::Time t) const {
  return t + config_.interval / std::sqrt(static_cast<double>(std::max(drop_count_, 1)));
}

std::optional<Packet> CoDelQueue::dequeue(sim::Time now) {
  while (!packets_.empty()) {
    Entry entry = std::move(packets_.front());
    packets_.pop_front();
    bytes_ -= entry.packet.size_bytes;
    const sim::Time sojourn = now - entry.enqueued_at;

    if (sojourn < config_.target || bytes_ == 0) {
      // Sojourn back under control: leave the dropping state.
      first_above_time_ = sim::Time::zero();
      if (dropping_) dropping_ = false;
      record_dequeue(entry.packet);
      return entry.packet;
    }

    if (first_above_time_.is_zero()) {
      // Start the grace interval before the first drop.
      first_above_time_ = now + config_.interval;
      record_dequeue(entry.packet);
      return entry.packet;
    }

    if (!dropping_) {
      if (now >= first_above_time_) {
        dropping_ = true;
        drop_count_ = std::max(1, drop_count_ / 2);  // CoDel's hysteresis
        drop_next_ = control_law(now);
        record_drop(entry.packet, now, audit::DropContext::in_queue);
        continue;  // drop and look at the next packet
      }
      record_dequeue(entry.packet);
      return entry.packet;
    }

    // Dropping state: drop whenever the control-law clock fires.
    if (now >= drop_next_) {
      ++drop_count_;
      drop_next_ = control_law(drop_next_);
      record_drop(entry.packet, now, audit::DropContext::in_queue);
      continue;
    }
    record_dequeue(entry.packet);
    return entry.packet;
  }
  return std::nullopt;
}

bool RedQueue::enqueue(Packet p, sim::Time now) {
  // Update the EWMA of the backlog on every arrival.
  avg_bytes_ = (1.0 - config_.ewma_weight) * avg_bytes_ +
               config_.ewma_weight * static_cast<double>(bytes_);

  const double min_th = config_.min_threshold_frac * static_cast<double>(config_.capacity_bytes);
  const double max_th = config_.max_threshold_frac * static_cast<double>(config_.capacity_bytes);

  bool drop = false;
  if (bytes_ + p.size_bytes > config_.capacity_bytes) {
    drop = true;  // hard limit
  } else if (avg_bytes_ >= max_th) {
    drop = true;
  } else if (avg_bytes_ > min_th) {
    double drop_p = config_.max_drop_probability * (avg_bytes_ - min_th) / (max_th - min_th);
    drop = rng_.bernoulli(drop_p);
  }
  if (drop) {
    record_drop(p, now);
    return false;
  }
  bytes_ += p.size_bytes;
  // lint: hot-ok(queue owns packet storage; deque growth is amortized and capacity-bounded)
  packets_.push_back(std::move(p));
  record_enqueue(packets_.back(), now, packets_.size());
  return true;
}

std::optional<Packet> RedQueue::dequeue(sim::Time /*now*/) {
  if (packets_.empty()) return std::nullopt;
  Packet p = std::move(packets_.front());
  packets_.pop_front();
  bytes_ -= p.size_bytes;
  record_dequeue(p);
  return p;
}

}  // namespace halfback::net
