// Router queue disciplines.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "audit/auditor.h"
#include "net/packet.h"
#include "sim/annotations.h"
#include "sim/bytes.h"
#include "sim/random.h"
#include "sim/time.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/timeseries.h"

namespace halfback::net {

/// Queue disciplines a link can use.
enum class QueueKind : std::uint8_t {
  drop_tail,  ///< FIFO, byte-bounded (the paper's default)
  red,        ///< Random Early Detection
  codel,      ///< CoDel (sojourn-time AQM)
  priority,   ///< two-band strict priority (RC3's in-network support)
};

/// Counters every queue maintains.
struct QueueStats {
  std::uint64_t enqueued_packets = 0;
  sim::Bytes enqueued_bytes;
  std::uint64_t dequeued_packets = 0;
  sim::Bytes dequeued_bytes;
  std::uint64_t dropped_packets = 0;
  sim::Bytes dropped_bytes;
  sim::Bytes max_backlog_bytes;
};

/// Interface for an egress queue attached to a link.
///
/// Implementations decide admission (drop policy); the link drains the
/// queue in FIFO order as transmissions complete.
class PacketQueue {
 public:
  virtual ~PacketQueue() = default;

  /// Try to admit `p`. Returns false (and records a drop) if the packet was
  /// discarded.
  virtual bool enqueue(Packet p, sim::Time now) = 0;

  /// Remove the next packet to transmit, if any.
  virtual std::optional<Packet> dequeue(sim::Time now) = 0;

  virtual std::uint64_t byte_length() const = 0;
  virtual std::size_t packet_count() const = 0;

  /// Hard byte bound the discipline enforces, 0 when unbounded/unknown.
  /// The invariant auditor checks byte_length() never exceeds this.
  virtual std::uint64_t capacity_bytes() const { return 0; }

  const QueueStats& stats() const { return stats_; }

  /// Install an audit observer (nullptr detaches; owned by the caller).
  /// Network::install_auditor and Network::make_link call this for every
  /// link's queue; set it manually for bare queues in tests.
  void set_auditor(audit::Auditor* auditor) { auditor_ = auditor; }
  audit::Auditor* auditor() const { return auditor_; }

  /// Attach this queue's flight-recorder tape (nullptr detaches; owned by
  /// the telemetry Hub). Drops are recorded on it; see
  /// telemetry::Hub::instrument_network.
  void set_tape(telemetry::Tape* tape) { tape_ = tape; }
  telemetry::Tape* tape() const { return tape_; }

  /// Attach this queue's windowed time-series (nullptr detaches; owned by
  /// the telemetry Hub — the same per-link series the owning Link tallies
  /// deliveries on). Drops are tallied into the window of their instant.
  void set_series(telemetry::WindowSeries* series) { series_ = series; }
  telemetry::WindowSeries* series() const { return series_; }

  /// Invoked for every dropped packet (for per-flow loss accounting).
  void set_drop_callback(std::function<void(const Packet&)> cb) {
    drop_callback_ = std::move(cb);
  }
  /// Currently-installed drop callback (empty if none) — lets taps chain.
  const std::function<void(const Packet&)>& drop_callback() const {
    return drop_callback_;
  }

 protected:
  /// Implementations call these at every admission, drop, and release so
  /// the stats and the audit hooks see one consistent stream. `record_drop`
  /// distinguishes admission drops (packet never entered the backlog) from
  /// in-queue drops (CoDel discarding a resident packet at dequeue).
  /// `resident_packets` is the post-admission depth, which the caller knows
  /// statically — keeping the time-series queue-peak tap off the virtual
  /// packet_count() so the hot path stays devirtualized.
  void record_enqueue(const Packet& p, sim::Time now,
                      std::size_t resident_packets);
  void record_drop(const Packet& p, sim::Time now,
                   audit::DropContext context = audit::DropContext::admission);
  void record_dequeue(const Packet& p);

 private:
  QueueStats stats_;
  std::function<void(const Packet&)> drop_callback_;
  audit::Auditor* auditor_ = nullptr;
  telemetry::Tape* tape_ = nullptr;  ///< not owned; nullptr = no recording
  telemetry::WindowSeries* series_ = nullptr;  ///< not owned; nullptr = none
};

/// Classic FIFO drop-tail queue bounded in bytes — the discipline used at
/// the paper's Emulab bottleneck.
class DropTailQueue final : public PacketQueue {
 public:
  explicit DropTailQueue(sim::Bytes capacity_bytes)
      : capacity_bytes_{capacity_bytes} {}

  bool enqueue(Packet p, sim::Time now) override HB_EFFECTS(alloc);
  std::optional<Packet> dequeue(sim::Time now) override HB_EFFECTS(alloc);
  std::uint64_t byte_length() const override { return bytes_; }
  std::size_t packet_count() const override { return packets_.size(); }
  std::uint64_t capacity_bytes() const override { return capacity_bytes_; }

 private:
  sim::Bytes capacity_bytes_;
  std::uint64_t bytes_ = 0;
  std::deque<Packet> packets_;
};

/// CoDel [Nichols & Jacobson], the modern AQM the paper's §6 cites: drops
/// based on packet *sojourn time* rather than queue length. Provided so the
/// bufferbloat experiments can show that AQM (reducing the RTT) and
/// Halfback (reducing the number of RTTs) are complementary.
class CoDelQueue final : public PacketQueue {
 public:
  struct Config {
    sim::Bytes capacity_bytes;                      ///< hard limit
    sim::Time target = sim::Time::milliseconds(5);  ///< acceptable sojourn
    sim::Time interval = sim::Time::milliseconds(100);
  };

  explicit CoDelQueue(Config config) : config_{config} {}

  bool enqueue(Packet p, sim::Time now) override HB_EFFECTS(alloc);
  std::optional<Packet> dequeue(sim::Time now) override HB_EFFECTS(alloc);
  std::uint64_t byte_length() const override { return bytes_; }
  std::size_t packet_count() const override { return packets_.size(); }
  std::uint64_t capacity_bytes() const override { return config_.capacity_bytes; }

  bool dropping() const { return dropping_; }

 private:
  /// Next drop instant in the dropping state: interval / sqrt(count).
  sim::Time control_law(sim::Time t) const;

  struct Entry {
    sim::Time enqueued_at;
    Packet packet;
  };

  Config config_;
  std::uint64_t bytes_ = 0;
  std::deque<Entry> packets_;
  bool dropping_ = false;
  sim::Time first_above_time_;   ///< zero = sojourn not persistently above
  sim::Time drop_next_;
  int drop_count_ = 0;
};

/// Two-band strict-priority queue: band 0 (normal) is always served before
/// band 1 (low priority). This is the in-network support RC3 [Mittal et
/// al., NSDI '14] depends on — its Recursive Low Priority copies ride band
/// 1 and are only forwarded when the link would otherwise idle. Each band
/// has its own byte budget of the full capacity, so low-priority occupancy
/// can never cause a normal-priority drop.
class PriorityQueue final : public PacketQueue {
 public:
  explicit PriorityQueue(sim::Bytes capacity_bytes)
      : band_capacity_bytes_{capacity_bytes} {}

  bool enqueue(Packet p, sim::Time now) override HB_EFFECTS(alloc);
  std::optional<Packet> dequeue(sim::Time now) override HB_EFFECTS(alloc);
  std::uint64_t byte_length() const override { return bytes_[0] + bytes_[1]; }
  std::size_t packet_count() const override {
    return bands_[0].size() + bands_[1].size();
  }
  /// Each band has its own full-capacity budget.
  std::uint64_t capacity_bytes() const override { return 2 * band_capacity_bytes_; }

  std::uint64_t band_bytes(int band) const {
    return bytes_[static_cast<std::size_t>(band)];
  }

 private:
  sim::Bytes band_capacity_bytes_;
  std::uint64_t bytes_[2] = {0, 0};
  std::deque<Packet> bands_[2];
};

/// Random Early Detection (gentle RED), provided as the AQM point of
/// comparison for the bufferbloat discussion (§6 of the paper): AQM reduces
/// RTT inflation and is complementary to Halfback's fewer-RTTs approach.
class RedQueue final : public PacketQueue {
 public:
  struct Config {
    sim::Bytes capacity_bytes;         ///< hard limit
    double min_threshold_frac = 0.25;  ///< of capacity
    double max_threshold_frac = 0.75;  ///< of capacity
    double max_drop_probability = 0.1;
    double ewma_weight = 0.002;
  };

  RedQueue(Config config, sim::Random rng)
      : config_{config}, rng_{std::move(rng)} {}

  bool enqueue(Packet p, sim::Time now) override HB_EFFECTS(alloc, rng);
  std::optional<Packet> dequeue(sim::Time now) override HB_EFFECTS(alloc);
  std::uint64_t byte_length() const override { return bytes_; }
  std::size_t packet_count() const override { return packets_.size(); }
  std::uint64_t capacity_bytes() const override { return config_.capacity_bytes; }

  double average_backlog_bytes() const { return avg_bytes_; }

 private:
  Config config_;
  sim::Random rng_;
  std::uint64_t bytes_ = 0;
  double avg_bytes_ = 0.0;  // lint: unit-ok(RED's EWMA backlog is intrinsically fractional)
  std::deque<Packet> packets_;
};

}  // namespace halfback::net
