#include "net/topology.h"

#include <stdexcept>

namespace halfback::net {

namespace {
constexpr auto kAccessDelay = sim::Time::microseconds(10);
}

Dumbbell build_dumbbell(Network& network, const DumbbellConfig& config) {
  if (config.sender_count <= 0 || config.receiver_count <= 0) {
    throw std::invalid_argument{"dumbbell needs at least one sender and receiver"};
  }
  Dumbbell d;
  d.config = config;
  d.left_router = network.add_node();
  d.right_router = network.add_node();

  // The RTT budget not consumed by the four access hops sits on the
  // bottleneck's propagation delay.
  sim::Time bottleneck_delay = config.rtt / 2.0 - 2.0 * kAccessDelay;
  if (bottleneck_delay < sim::Time::zero()) {
    throw std::invalid_argument{"dumbbell RTT too small for access delays"};
  }

  LinkConfig access;
  access.rate = config.access_rate;
  access.delay = kAccessDelay;
  access.queue_bytes = config.access_buffer_bytes;

  for (int i = 0; i < config.sender_count; ++i) {
    NodeId host = network.add_node();
    d.senders.push_back(host);
    network.connect(host, d.left_router, access);
  }
  for (int i = 0; i < config.receiver_count; ++i) {
    NodeId host = network.add_node();
    d.receivers.push_back(host);
    network.connect(host, d.right_router, access);
  }

  LinkConfig bottleneck;
  bottleneck.rate = config.bottleneck_rate;
  bottleneck.delay = bottleneck_delay;
  bottleneck.queue_bytes = config.bottleneck_buffer_bytes;
  bottleneck.queue_kind = config.bottleneck_queue;
  LinkPair pair = network.connect(d.left_router, d.right_router, bottleneck);
  d.bottleneck_forward = pair.forward;
  d.bottleneck_reverse = pair.reverse;

  network.compute_routes();
  return d;
}

AccessPath build_access_path(Network& network, const AccessPathConfig& config) {
  AccessPath path;
  path.config = config;
  path.server = network.add_node();
  path.router = network.add_node();
  path.client = network.add_node();

  // Most of the propagation delay lives on the wide-area (server<->router)
  // segment; the access hop is short.
  sim::Time wan_delay = config.rtt / 2.0 - kAccessDelay;
  if (wan_delay < sim::Time::zero()) wan_delay = sim::Time::zero();

  LinkConfig wan;
  wan.rate = config.server_rate;
  wan.delay = wan_delay;
  wan.queue_bytes = 4u << 20;
  network.connect(path.server, path.router, wan);

  LinkConfig down;
  down.rate = config.downlink_rate;
  down.delay = kAccessDelay;
  down.queue_bytes = config.downlink_buffer_bytes;
  down.random_loss_rate = config.downlink_loss_rate;

  LinkConfig up;
  up.rate = config.uplink_rate;
  up.delay = kAccessDelay;
  up.queue_bytes = config.downlink_buffer_bytes;
  up.random_loss_rate = config.downlink_loss_rate;

  LinkPair pair = network.connect(path.router, path.client, down, up);
  path.downlink = pair.forward;

  network.compute_routes();
  return path;
}

ParkingLot build_parking_lot(Network& network, const ParkingLotConfig& config) {
  if (config.hops < 1) throw std::invalid_argument{"parking lot needs >= 1 hop"};
  ParkingLot lot;
  lot.config = config;

  for (int i = 0; i <= config.hops; ++i) lot.routers.push_back(network.add_node());

  LinkConfig access;
  access.rate = config.access_rate;
  access.delay = kAccessDelay;
  access.queue_bytes = 4u << 20;

  lot.main_sender = network.add_node();
  network.connect(lot.main_sender, lot.routers.front(), access);
  lot.main_receiver = network.add_node();
  network.connect(lot.main_receiver, lot.routers.back(), access);

  // The per-hop RTT budget, minus the access hops, sits on the hop link.
  sim::Time hop_delay = config.per_hop_rtt / 2.0;
  if (hop_delay <= sim::Time::zero()) {
    throw std::invalid_argument{"per-hop RTT too small"};
  }

  LinkConfig hop;
  hop.rate = config.bottleneck_rate;
  hop.delay = hop_delay;
  hop.queue_bytes = config.buffer_bytes;
  for (int i = 0; i < config.hops; ++i) {
    LinkPair pair = network.connect(lot.routers[static_cast<std::size_t>(i)],
                                    lot.routers[static_cast<std::size_t>(i) + 1], hop);
    lot.bottlenecks.push_back(pair.forward);

    NodeId cs = network.add_node();
    network.connect(cs, lot.routers[static_cast<std::size_t>(i)], access);
    lot.cross_senders.push_back(cs);
    NodeId cr = network.add_node();
    network.connect(cr, lot.routers[static_cast<std::size_t>(i) + 1], access);
    lot.cross_receivers.push_back(cr);
  }

  network.compute_routes();
  return lot;
}

}  // namespace halfback::net
