// Topology builders for the paper's evaluation environments.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "sim/annotations.h"

namespace halfback::net {

/// The Emulab single-bottleneck dumbbell of Fig. 4: sender hosts on 1 Gbps
/// access links, a 15 Mbps bottleneck with a 60 ms RTT, receiver hosts on
/// 1 Gbps access links. The bottleneck buffer defaults to the BDP (115 KB).
struct DumbbellConfig {
  int sender_count = 8;
  int receiver_count = 8;
  sim::DataRate access_rate = sim::DataRate::gigabits_per_second(1);
  sim::DataRate bottleneck_rate = sim::DataRate::megabits_per_second(15);
  sim::Time rtt = sim::Time::milliseconds(60);
  sim::Bytes bottleneck_buffer_bytes = 115000;
  sim::Bytes access_buffer_bytes = 4u << 20;
  QueueKind bottleneck_queue = QueueKind::drop_tail;
};

struct Dumbbell {
  std::vector<NodeId> senders;
  std::vector<NodeId> receivers;
  NodeId left_router = 0;
  NodeId right_router = 0;
  Link* bottleneck_forward = nullptr;  ///< senders -> receivers direction
  Link* bottleneck_reverse = nullptr;
  DumbbellConfig config;

  /// Bandwidth-delay product of the forward bottleneck, in bytes.
  std::uint64_t bdp_bytes() const {
    return static_cast<std::uint64_t>(config.bottleneck_rate.bytes_per_second() *
                                      config.rtt.to_seconds());
  }
};

/// Build the dumbbell inside `network` (which should be empty) and install
/// routes.
Dumbbell build_dumbbell(Network& network, const DumbbellConfig& config)
    HB_EFFECTS(alloc, throw, rng);

/// A single wide-area path with an access-link bottleneck: used for the
/// PlanetLab path ensemble and the home-network profiles. The server sits
/// behind a fast first hop; the bottleneck is the router->client "downlink".
struct AccessPathConfig {
  sim::DataRate server_rate = sim::DataRate::gigabits_per_second(1);
  sim::DataRate downlink_rate = sim::DataRate::megabits_per_second(25);
  sim::DataRate uplink_rate = sim::DataRate::megabits_per_second(10);
  sim::Time rtt = sim::Time::milliseconds(60);
  sim::Bytes downlink_buffer_bytes = 64000;
  LossRate downlink_loss_rate;  ///< random loss (wireless profiles)
};

struct AccessPath {
  NodeId server = 0;
  NodeId router = 0;
  NodeId client = 0;
  Link* downlink = nullptr;
  AccessPathConfig config;
};

AccessPath build_access_path(Network& network, const AccessPathConfig& config)
    HB_EFFECTS(alloc, rng);

/// Multi-bottleneck "parking lot" chain (the paper's §7 future work:
/// "emulation with more complex topologies"): routers R0..Rn in a line,
/// one end-to-end host pair traversing every hop, and one cross-traffic
/// host pair per hop whose flows occupy only that hop.
///
///   main_sender - R0 ===hop0=== R1 ===hop1=== R2 ... Rn - main_receiver
///                  \cross_s[0] -> cross_r[0] spans hop0 only, etc.
struct ParkingLotConfig {
  int hops = 3;
  sim::DataRate access_rate = sim::DataRate::gigabits_per_second(1);
  sim::DataRate bottleneck_rate = sim::DataRate::megabits_per_second(15);
  sim::Time per_hop_rtt = sim::Time::milliseconds(20);
  sim::Bytes buffer_bytes = 115'000;
};

struct ParkingLot {
  std::vector<NodeId> routers;          ///< hops+1 routers
  NodeId main_sender = 0;               ///< attached to routers.front()
  NodeId main_receiver = 0;             ///< attached to routers.back()
  std::vector<NodeId> cross_senders;    ///< one per hop, at routers[i]
  std::vector<NodeId> cross_receivers;  ///< one per hop, at routers[i+1]
  std::vector<Link*> bottlenecks;       ///< forward link of each hop
  ParkingLotConfig config;

  /// End-to-end propagation RTT of the main path.
  sim::Time end_to_end_rtt() const {
    return config.per_hop_rtt * static_cast<double>(config.hops);
  }
};

ParkingLot build_parking_lot(Network& network, const ParkingLotConfig& config)
    HB_EFFECTS(alloc, throw, rng);

}  // namespace halfback::net
