#include "net/tracer.h"

#include <utility>

namespace halfback::net {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::delivered: return "DELIVER";
    case TraceEventKind::queue_drop: return "DROP";
    case TraceEventKind::local_arrival: return "ARRIVE";
  }
  return "?";
}

std::string TraceEvent::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%10.3f ms  %-8s %-12s ", at.to_ms(),
                net::to_string(kind), where.c_str());
  return buf + packet.to_string();
}

void PacketTracer::record(TraceEventKind kind, const Packet& packet,
                          const std::string& where) {
  TraceEvent event{simulator_.now(), kind, packet, where};
  if (filter_ && !filter_(event)) return;
  // lint: hot-ok(tracing is opt-in diagnostics; measured runs attach no tracer)
  events_.push_back(std::move(event));
}

void PacketTracer::tap_link(Link& link, std::string label) {
  auto downstream = link.receiver();
  link.set_receiver(
      [this, label = std::move(label), downstream = std::move(downstream)](Packet p) {
        record(TraceEventKind::delivered, p, label);
        if (downstream) downstream(std::move(p));
      });
}

void PacketTracer::tap_queue(Link& link, std::string label) {
  auto downstream = link.queue().drop_callback();
  link.queue().set_drop_callback(
      [this, label = std::move(label), downstream = std::move(downstream)](
          const Packet& p) {
        record(TraceEventKind::queue_drop, p, label);
        if (downstream) downstream(p);
      });
}

void PacketTracer::tap_node(Node& node, std::string label) {
  auto downstream = node.local_handler();
  node.set_local_handler(
      [this, label = std::move(label), downstream = std::move(downstream)](Packet p) {
        record(TraceEventKind::local_arrival, p, label);
        if (downstream) downstream(std::move(p));
      });
}

std::vector<TraceEvent> PacketTracer::events_of(TraceEventKind kind) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::vector<TraceEvent> PacketTracer::events_for_flow(FlowId flow) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (e.packet.flow == flow) out.push_back(e);
  }
  return out;
}

std::string PacketTracer::timeline() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace halfback::net
