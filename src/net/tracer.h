// Structured packet tracing: observe every delivery, drop, and local
// arrival in a simulation and render a timeline.
//
// The tracer taps links (delivery + queue-drop callbacks) and node local
// handlers without disturbing them, records typed events, and can render a
// human-readable timeline or filter programmatically. Used by the Fig. 3
// walkthrough and available for debugging any experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace halfback::net {

/// What happened to a packet at one observation point.
enum class TraceEventKind : std::uint8_t {
  delivered,     ///< left a link into its far-end node
  queue_drop,    ///< discarded by a queue discipline
  local_arrival  ///< reached its destination's protocol stack
};

const char* to_string(TraceEventKind kind);

struct TraceEvent {
  sim::Time at;
  TraceEventKind kind;
  Packet packet;     ///< a copy at observation time
  std::string where; ///< label of the observation point

  std::string to_string() const;
};

/// Collects TraceEvents from taps installed on links and nodes.
class PacketTracer {
 public:
  explicit PacketTracer(sim::Simulator& simulator) : simulator_{simulator} {}

  PacketTracer(const PacketTracer&) = delete;
  PacketTracer& operator=(const PacketTracer&) = delete;

  /// Observe deliveries through `link`. Chains after any existing receiver,
  /// so install taps after the topology (and its receivers) are wired.
  void tap_link(Link& link, std::string label);

  /// Observe drops at `link`'s queue. Chains in front of any existing drop
  /// callback (like tap_link/tap_node), so experiment drop accounting
  /// installed earlier keeps firing.
  void tap_queue(Link& link, std::string label);

  /// Observe packets delivered to `node`'s protocol stack. Chains in front
  /// of the currently-installed local handler.
  void tap_node(Node& node, std::string label);

  /// Only record events matching this predicate (default: everything).
  void set_filter(std::function<bool(const TraceEvent&)> filter) {
    filter_ = std::move(filter);
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Events of one kind (convenience for assertions).
  std::vector<TraceEvent> events_of(TraceEventKind kind) const;

  /// Events concerning one flow.
  std::vector<TraceEvent> events_for_flow(FlowId flow) const;

  /// Render the whole timeline, one event per line.
  std::string timeline() const;

 private:
  void record(TraceEventKind kind, const Packet& packet, const std::string& where);

  sim::Simulator& simulator_;
  std::vector<TraceEvent> events_;
  std::function<bool(const TraceEvent&)> filter_;
};

}  // namespace halfback::net
