// Validated configuration for the fault-injection layer.
//
// Every knob is bounds-checked at construction, following the
// net::LossRate pattern: probabilities must lie in [0, 1] (NaN rejected),
// time windows must be non-negative and non-empty. A bad chaos config
// fails loudly at experiment build time instead of running a silently
// absurd sweep. See docs/fault-injection.md for the model semantics.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/time.h"

namespace halfback::netfault {

/// A probability validated at construction: in [0, 1], NaN-rejecting.
/// Converts implicitly from double so config literals like `0.05` work.
class Probability {
 public:
  constexpr Probability() = default;
  constexpr Probability(double p) : value_{validated(p)} {}  // NOLINT(google-explicit-constructor)

  constexpr double value() const { return value_; }
  constexpr bool is_zero() const { return value_ <= 0.0; }

 private:
  static constexpr double validated(double p) {
    if (!(p >= 0.0 && p <= 1.0)) {  // negated so NaN is rejected too
      throw std::invalid_argument{"probability must be within [0, 1]"};
    }
    return p;
  }
  double value_ = 0.0;
};

/// A half-open window [start, start + duration) of virtual time, validated
/// at construction: non-negative start, strictly positive duration.
class TimeWindow {
 public:
  TimeWindow(sim::Time start, sim::Time duration)
      : start_{start}, duration_{duration} {
    if (start_ < sim::Time::zero()) {
      throw std::invalid_argument{"TimeWindow start must be non-negative"};
    }
    if (duration_ <= sim::Time::zero()) {
      throw std::invalid_argument{"TimeWindow duration must be positive"};
    }
  }

  sim::Time start() const { return start_; }
  sim::Time duration() const { return duration_; }
  sim::Time end() const { return start_ + duration_; }
  bool contains(sim::Time t) const { return t >= start_ && t < end(); }

 private:
  sim::Time start_;
  sim::Time duration_;
};

/// Gilbert–Elliott two-state bursty loss. The chain steps once per packet
/// consulted: from Good it moves to Bad with `p_good_to_bad`, from Bad back
/// with `p_bad_to_good`; the packet is then lost with the loss probability
/// of the resulting state. Defaults model the classic "rare long bursts"
/// regime once `p_good_to_bad` is raised above zero.
struct GilbertElliottConfig {
  Probability p_good_to_bad;        ///< per-packet transition Good → Bad
  Probability p_bad_to_good = 0.3;  ///< per-packet transition Bad → Good
  Probability loss_good;            ///< loss probability in Good
  Probability loss_bad = 0.5;       ///< loss probability in Bad

  bool enabled() const {
    return !loss_good.is_zero() ||
           (!p_good_to_bad.is_zero() && !loss_bad.is_zero());
  }
};

/// Packet reordering via delay jitter: with `probability`, a packet's
/// propagation is stretched by a uniform draw in (0, max_extra_delay], so
/// packets serialized later can overtake it.
struct ReorderConfig {
  Probability probability;
  sim::Time max_extra_delay;

  bool enabled() const {
    return !probability.is_zero() && max_extra_delay > sim::Time::zero();
  }
};

/// Packet duplication: with `probability`, launch uniform-in-[1, max_copies]
/// extra copies of the packet, each trailing the previous by `spacing`.
struct DuplicateConfig {
  Probability probability;
  std::uint32_t max_copies = 1;
  sim::Time spacing;

  bool enabled() const { return !probability.is_zero() && max_copies > 0; }
};

/// Payload corruption: with `probability`, the packet is delivered with its
/// corrupted flag set; the receiving transport drops it by checksum.
struct CorruptConfig {
  Probability probability;

  bool enabled() const { return !probability.is_zero(); }
};

/// Random link flapping: the link alternates between up and down phases
/// with independent exponential durations (means below). Disabled unless
/// both means are positive. For deterministic outages (e.g. "a blackout
/// from t=2s to t=4s") use FaultConfig::outages instead.
struct FlapConfig {
  sim::Time mean_up;
  sim::Time mean_down;

  bool enabled() const {
    return mean_up > sim::Time::zero() && mean_down > sim::Time::zero();
  }
};

/// Rare large delay spikes (e.g. a routing transient): with `probability`,
/// add the full `magnitude` to the packet's propagation delay.
struct DelaySpikeConfig {
  Probability probability;
  sim::Time magnitude;

  bool enabled() const {
    return !probability.is_zero() && magnitude > sim::Time::zero();
  }
};

/// Composite per-link fault configuration. Default-constructed = no faults
/// (`any()` is false), in which case no FaultInjector should be installed
/// at all so the link fast path stays untouched.
struct FaultConfig {
  GilbertElliottConfig gilbert_elliott;
  ReorderConfig reorder;
  DuplicateConfig duplicate;
  CorruptConfig corrupt;
  FlapConfig flap;
  DelaySpikeConfig delay_spike;
  /// Deterministic outage windows (link blackouts); every packet whose
  /// serialization completes inside a window is dropped.
  std::vector<TimeWindow> outages;

  bool any() const {
    return gilbert_elliott.enabled() || reorder.enabled() ||
           duplicate.enabled() || corrupt.enabled() || flap.enabled() ||
           delay_spike.enabled() || !outages.empty();
  }
};

/// Cross-field validation beyond what the value types enforce. Throws
/// std::invalid_argument on: negative durations, a flap config with exactly
/// one positive mean, overlapping or unsorted outage windows.
void validate(const FaultConfig& config);

}  // namespace halfback::netfault
