#include "netfault/fault_injector.h"

#include <utility>

#include "net/packet.h"

namespace halfback::netfault {

namespace {
// Fork salts for the per-model streams. Distinct constants keep the models
// on independent sequences; adding a draw to one model never shifts
// another's. (Outage schedules are deterministic and draw nothing.)
constexpr std::uint64_t kSaltFlap = 0xf1a9'0001ULL;
constexpr std::uint64_t kSaltGilbertElliott = 0x6e11'0002ULL;
constexpr std::uint64_t kSaltCorrupt = 0xc0de'0003ULL;
constexpr std::uint64_t kSaltDuplicate = 0xd0b1'0004ULL;
constexpr std::uint64_t kSaltReorder = 0x2e02'0005ULL;
constexpr std::uint64_t kSaltSpike = 0x5b1c'0006ULL;
}  // namespace

FaultInjector::FaultInjector(FaultConfig config, sim::Random rng)
    : config_{std::move(config)},
      corrupt_rng_{rng.fork(kSaltCorrupt)},
      duplicate_rng_{rng.fork(kSaltDuplicate)},
      reorder_rng_{rng.fork(kSaltReorder)},
      spike_rng_{rng.fork(kSaltSpike)} {
  validate(config_);
  if (!config_.outages.empty()) outages_.emplace(config_.outages);
  if (config_.flap.enabled()) {
    flap_.emplace(config_.flap, rng.fork(kSaltFlap));
  }
  if (config_.gilbert_elliott.enabled()) {
    gilbert_elliott_.emplace(config_.gilbert_elliott,
                             rng.fork(kSaltGilbertElliott));
  }
}

net::FaultDecision FaultInjector::on_transmit(const net::Packet& /*packet*/,
                                              sim::Time now) {
  ++stats_.packets_seen;
  net::FaultDecision decision;

  if (outages_ && outages_->is_down(now)) {
    ++stats_.outage_drops;
    decision.drop = true;
    return decision;
  }
  if (flap_ && flap_->is_down(now)) {
    ++stats_.flap_drops;
    decision.drop = true;
    return decision;
  }
  if (gilbert_elliott_ && gilbert_elliott_->should_drop()) {
    ++stats_.burst_drops;
    decision.drop = true;
    return decision;
  }

  if (config_.corrupt.enabled() &&
      corrupt_rng_.bernoulli(config_.corrupt.probability.value())) {
    ++stats_.corrupted;
    decision.corrupt = true;
  }
  if (config_.duplicate.enabled() &&
      duplicate_rng_.bernoulli(config_.duplicate.probability.value())) {
    decision.duplicates = static_cast<std::uint32_t>(duplicate_rng_.uniform_int(
        1, static_cast<std::int64_t>(config_.duplicate.max_copies)));
    decision.duplicate_spacing = config_.duplicate.spacing;
    stats_.duplicated += decision.duplicates;
  }
  if (config_.reorder.enabled() &&
      reorder_rng_.bernoulli(config_.reorder.probability.value())) {
    ++stats_.jittered;
    decision.extra_delay +=
        config_.reorder.max_extra_delay * reorder_rng_.uniform();
  }
  if (config_.delay_spike.enabled() &&
      spike_rng_.bernoulli(config_.delay_spike.probability.value())) {
    ++stats_.delay_spikes;
    decision.extra_delay += config_.delay_spike.magnitude;
  }
  return decision;
}

}  // namespace halfback::netfault
