// Deterministic per-link fault injector: composes the netfault models into
// a net::FaultHook that a Link consults after serialization.
//
// Determinism contract: a FaultInjector's decisions are a pure function of
// (FaultConfig, seed RNG, sequence of consulted packets+times). It owns its
// randomness outright — it never draws from the simulator's stream — so
// installing one cannot perturb arrival processes, queue draws, or any
// other seeded component, and a fault-free run's trace hash is untouched.
// Derive the injector's RNG from the experiment seed, NOT from
// simulator.random() (forking the live simulator stream would advance it
// and change the no-fault baseline). See docs/fault-injection.md.
#pragma once

#include <cstdint>
#include <optional>

#include "net/fault_hook.h"
#include "netfault/fault_config.h"
#include "netfault/fault_models.h"
#include "sim/random.h"

namespace halfback::netfault {

/// What an injector did, by model. Complements the owning link's
/// LinkStats fault counters with per-cause attribution.
struct InjectorStats {
  std::uint64_t packets_seen = 0;
  std::uint64_t outage_drops = 0;    ///< deterministic blackout windows
  std::uint64_t flap_drops = 0;      ///< random down phases
  std::uint64_t burst_drops = 0;     ///< Gilbert–Elliott losses
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;      ///< extra copies requested
  std::uint64_t jittered = 0;        ///< reorder jitter applied
  std::uint64_t delay_spikes = 0;

  std::uint64_t total_drops() const {
    return outage_drops + flap_drops + burst_drops;
  }
};

/// Composes the fault models in a fixed decision order per packet:
/// outage/flap (drop), Gilbert–Elliott (drop), corruption, duplication,
/// reorder jitter, delay spike. Models that a drop short-circuits are not
/// consulted for that packet.
class FaultInjector final : public net::FaultHook {
 public:
  /// Validates `config` (throws std::invalid_argument on bad values).
  /// `rng` seeds all models; pass a stream derived from the experiment
  /// seed, e.g. `sim::Random{seed}.fork(salt)`.
  FaultInjector(FaultConfig config, sim::Random rng);

  net::FaultDecision on_transmit(const net::Packet& packet,
                                 sim::Time now) override;

  const InjectorStats& stats() const { return stats_; }
  const FaultConfig& config() const { return config_; }

 private:
  FaultConfig config_;
  InjectorStats stats_;

  std::optional<OutageSchedule> outages_;
  std::optional<LinkFlap> flap_;
  std::optional<GilbertElliott> gilbert_elliott_;
  sim::Random corrupt_rng_;
  sim::Random duplicate_rng_;
  sim::Random reorder_rng_;
  sim::Random spike_rng_;
};

}  // namespace halfback::netfault
