#include "netfault/fault_models.h"

#include <stdexcept>
#include <utility>

namespace halfback::netfault {

void validate(const FaultConfig& config) {
  if (config.reorder.max_extra_delay < sim::Time::zero()) {
    throw std::invalid_argument{"reorder.max_extra_delay must be non-negative"};
  }
  if (config.duplicate.spacing < sim::Time::zero()) {
    throw std::invalid_argument{"duplicate.spacing must be non-negative"};
  }
  if (config.delay_spike.magnitude < sim::Time::zero()) {
    throw std::invalid_argument{"delay_spike.magnitude must be non-negative"};
  }
  if (config.flap.mean_up < sim::Time::zero() ||
      config.flap.mean_down < sim::Time::zero()) {
    throw std::invalid_argument{"flap means must be non-negative"};
  }
  const bool up_set = config.flap.mean_up > sim::Time::zero();
  const bool down_set = config.flap.mean_down > sim::Time::zero();
  if (up_set != down_set) {
    throw std::invalid_argument{
        "flap requires both mean_up and mean_down (or neither)"};
  }
  // TimeWindow construction already enforced per-window sanity; check the
  // list is sorted and non-overlapping so OutageSchedule's cursor is valid.
  for (std::size_t i = 1; i < config.outages.size(); ++i) {
    if (config.outages[i].start() < config.outages[i - 1].end()) {
      throw std::invalid_argument{
          "outage windows must be sorted and non-overlapping"};
    }
  }
}

OutageSchedule::OutageSchedule(std::vector<TimeWindow> windows)
    : windows_{std::move(windows)} {
  for (std::size_t i = 1; i < windows_.size(); ++i) {
    if (windows_[i].start() < windows_[i - 1].end()) {
      throw std::invalid_argument{
          "outage windows must be sorted and non-overlapping"};
    }
  }
}

bool OutageSchedule::is_down(sim::Time now) {
  while (cursor_ < windows_.size() && now >= windows_[cursor_].end()) {
    ++cursor_;
  }
  return cursor_ < windows_.size() && windows_[cursor_].contains(now);
}

LinkFlap::LinkFlap(FlapConfig config, sim::Random rng)
    : config_{config}, rng_{rng} {
  if (!config_.enabled()) {
    throw std::invalid_argument{
        "LinkFlap requires positive mean_up and mean_down"};
  }
  phase_end_ = rng_.exponential(config_.mean_up);
}

bool LinkFlap::is_down(sim::Time now) {
  while (now >= phase_end_) {
    up_ = !up_;
    const sim::Time mean = up_ ? config_.mean_up : config_.mean_down;
    // Exponential draws truncate to whole nanoseconds; clamp to 1 ns so a
    // tiny draw can never stall the phase clock.
    sim::Time phase = rng_.exponential(mean);
    if (phase.is_zero()) phase = sim::Time::nanoseconds(1);
    phase_end_ += phase;
  }
  return !up_;
}

}  // namespace halfback::netfault
