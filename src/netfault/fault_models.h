// Stateful per-link fault models composed by netfault::FaultInjector.
//
// Each model owns a forked sim::Random stream, so adding draws to one model
// never perturbs another's sequence, and each is independently unit-testable
// (tests/netfault/fault_models_test.cpp). All models are deterministic
// functions of (config, seed, packet/consultation sequence).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netfault/fault_config.h"
#include "sim/random.h"
#include "sim/time.h"

namespace halfback::netfault {

/// Gilbert–Elliott two-state Markov loss process. `should_drop()` steps the
/// chain once and then draws against the resulting state's loss rate.
class GilbertElliott {
 public:
  GilbertElliott(GilbertElliottConfig config, sim::Random rng)
      : config_{config}, rng_{rng} {}

  /// Step the chain for one packet and decide whether it is lost.
  bool should_drop() {
    if (bad_) {
      if (rng_.bernoulli(config_.p_bad_to_good.value())) bad_ = false;
    } else {
      if (rng_.bernoulli(config_.p_good_to_bad.value())) bad_ = true;
    }
    const Probability loss = bad_ ? config_.loss_bad : config_.loss_good;
    return !loss.is_zero() && rng_.bernoulli(loss.value());
  }

  bool in_bad_state() const { return bad_; }

 private:
  GilbertElliottConfig config_;
  sim::Random rng_;
  bool bad_ = false;  ///< chain starts in Good, like a freshly-up path
};

/// Deterministic outage schedule: a sorted list of non-overlapping
/// blackout windows. Queries must come with non-decreasing `now` (virtual
/// time is monotone), which lets the cursor advance in O(1) amortized.
class OutageSchedule {
 public:
  /// Throws std::invalid_argument if windows are unsorted or overlap.
  explicit OutageSchedule(std::vector<TimeWindow> windows);

  /// True when `now` falls inside an outage window.
  bool is_down(sim::Time now);

  bool empty() const { return windows_.empty(); }

 private:
  std::vector<TimeWindow> windows_;
  std::size_t cursor_ = 0;
};

/// Random link flapping: alternating exponential up/down phases. Phase
/// boundaries are drawn lazily as `now` advances, so the draw sequence is a
/// pure function of the seed and the boundary-crossing pattern.
class LinkFlap {
 public:
  /// Throws std::invalid_argument unless both means are positive (use a
  /// default FlapConfig — disabled — instead of a half-configured one).
  LinkFlap(FlapConfig config, sim::Random rng);

  /// True when the link is in a down phase at `now` (non-decreasing).
  bool is_down(sim::Time now);

 private:
  FlapConfig config_;
  sim::Random rng_;
  bool up_ = true;             ///< link starts up
  sim::Time phase_end_;        ///< current phase ends here (exclusive)
};

}  // namespace halfback::netfault
