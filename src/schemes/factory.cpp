#include "schemes/factory.h"

#include <stdexcept>

#include "schemes/jumpstart.h"
#include "schemes/pcp.h"
#include "schemes/proactive.h"
#include "schemes/rc3.h"
#include "schemes/reactive.h"
#include "transport/tcp_sender.h"

namespace halfback::schemes {

std::unique_ptr<transport::SenderBase> make_sender(
    Scheme scheme, SchemeContext& context, sim::Simulator& simulator,
    net::Node& local_node, net::NodeId peer, net::FlowId flow,
    sim::Bytes flow_bytes) {
  transport::SenderConfig config = context.sender_config;
  switch (scheme) {
    case Scheme::tcp:
      return std::make_unique<transport::TcpSender>(
          simulator, local_node, peer, flow, flow_bytes, config, "tcp");
    case Scheme::tcp10:
      config.initial_window = 10;
      return std::make_unique<transport::TcpSender>(
          simulator, local_node, peer, flow, flow_bytes, config, "tcp10");
    case Scheme::tcp_cache: {
      if (!context.path_cache) {
        context.path_cache = std::make_shared<PathCache>(context.path_cache_max_age);
      }
      return std::make_unique<TcpCacheSender>(simulator, local_node, peer, flow,
                                              flow_bytes, config, context.path_cache);
    }
    case Scheme::reactive:
      return std::make_unique<ReactiveSender>(simulator, local_node, peer, flow,
                                              flow_bytes, config);
    case Scheme::proactive:
      return std::make_unique<ProactiveSender>(simulator, local_node, peer, flow,
                                               flow_bytes, config);
    case Scheme::jumpstart:
      return std::make_unique<JumpStartSender>(simulator, local_node, peer, flow,
                                               flow_bytes, config);
    case Scheme::pcp:
      return std::make_unique<PcpSender>(simulator, local_node, peer, flow,
                                         flow_bytes, config);
    case Scheme::halfback: {
      HalfbackConfig h = context.halfback_config;
      h.order = HalfbackConfig::Order::reverse;
      h.rate = HalfbackConfig::RetxRate::ack_clocked;
      if (h.history_threshold && !context.throughput_history) {
        context.throughput_history = std::make_shared<ThroughputHistory>();
      }
      return std::make_unique<HalfbackSender>(simulator, local_node, peer, flow,
                                              flow_bytes, config, h, "halfback",
                                              context.throughput_history);
    }
    case Scheme::halfback_forward: {
      HalfbackConfig h = context.halfback_config;
      h.order = HalfbackConfig::Order::forward;
      h.rate = HalfbackConfig::RetxRate::ack_clocked;
      return std::make_unique<HalfbackSender>(simulator, local_node, peer, flow,
                                              flow_bytes, config, h,
                                              "halfback-forward");
    }
    case Scheme::rc3:
      return std::make_unique<Rc3Sender>(simulator, local_node, peer, flow,
                                         flow_bytes, config);
    case Scheme::halfback_burst: {
      HalfbackConfig h = context.halfback_config;
      h.order = HalfbackConfig::Order::reverse;
      h.rate = HalfbackConfig::RetxRate::line_rate;
      return std::make_unique<HalfbackSender>(simulator, local_node, peer, flow,
                                              flow_bytes, config, h, "halfback-burst");
    }
  }
  throw std::invalid_argument{"unknown scheme"};
}

std::unique_ptr<transport::SenderBase> make_optimal_sender(
    const SchemeContext& context, sim::Simulator& simulator,
    net::Node& local_node, net::NodeId peer, net::FlowId flow,
    sim::Bytes flow_bytes, std::uint32_t burst_window) {
  transport::SenderConfig config = context.sender_config;
  config.initial_window = burst_window;
  return std::make_unique<transport::TcpSender>(
      simulator, local_node, peer, flow, flow_bytes, config, "optimal");
}

}  // namespace halfback::schemes
