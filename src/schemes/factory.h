// Construct a sender for any scheme.
#pragma once

#include <memory>

#include "net/network.h"
#include "sim/annotations.h"
#include "schemes/halfback.h"
#include "schemes/scheme.h"
#include "schemes/tcp_cache.h"
#include "transport/sender.h"

namespace halfback::schemes {

/// Everything a scheme may need beyond the per-flow parameters.
struct SchemeContext {
  transport::SenderConfig sender_config;  ///< shared transport knobs
  HalfbackConfig halfback_config;         ///< Halfback / ablation knobs
  std::shared_ptr<PathCache> path_cache;  ///< created on demand for TCP-Cache
  /// Aging horizon for on-demand-created path caches (§6: aged entries
  /// draw back to slow start). Zero = never ages.
  sim::Time path_cache_max_age;
  /// Created on demand when halfback_config.history_threshold is set.
  std::shared_ptr<ThroughputHistory> throughput_history;
};

/// Build a sender of the given scheme for one flow. `local_node` must be a
/// node of `network`; the caller hands the result to a TransportAgent.
std::unique_ptr<transport::SenderBase> make_sender(
    Scheme scheme, SchemeContext& context, sim::Simulator& simulator,
    net::Node& local_node, net::NodeId peer, net::FlowId flow,
    sim::Bytes flow_bytes) HB_EFFECTS(throw);

/// Build the "optimal" reference sender (Fig. 2's upper bound): plain TCP
/// whose initial window is forced to `burst_window` segments, so the whole
/// flow leaves in one immediate burst — the best any sender-side scheme
/// could do. Lives here so every sender in the tree, including the
/// comparison baselines, is constructed through this factory — the single
/// type-erased seam of the static pipeline.
std::unique_ptr<transport::SenderBase> make_optimal_sender(
    const SchemeContext& context, sim::Simulator& simulator,
    net::Node& local_node, net::NodeId peer, net::FlowId flow,
    sim::Bytes flow_bytes, std::uint32_t burst_window) HB_EFFECTS();

}  // namespace halfback::schemes
