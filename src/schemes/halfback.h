// Halfback (this paper, §3): Pacing phase + Reverse-Ordered Proactive
// Retransmission (ROPR) + fallback to TCP for long flows.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "schemes/paced_start.h"
#include "schemes/throughput_history.h"

namespace halfback::schemes {

/// Knobs distinguishing Halfback from its §5 ablations.
struct HalfbackConfig {
  /// Pacing Threshold (§3.1) in segments. The paper's experiments set it
  /// to the flow-control window (141 KB = 97 segments).
  std::uint32_t pacing_threshold_segments = 97;

  /// ROPR retransmission order (§5 "Retransmission direction").
  enum class Order { reverse, forward };
  Order order = Order::reverse;

  /// ROPR retransmission rate (§5 "Retransmission rate"): one proactive
  /// retransmission per received ACK, or everything at line rate.
  enum class RetxRate { ack_clocked, line_rate };
  RetxRate rate = RetxRate::ack_clocked;

  /// §5 extension ("it is also possible to dynamically tune the additional
  /// bandwidth used for proactive retransmission ... instead of sending one
  /// retransmission for each ACK, we could send two retransmissions for
  /// every three ACKs"): proactive copies per received ACK. 1.0 is the
  /// paper's Halfback; 2.0/3.0 would be the example above.
  double copies_per_ack = 1.0;

  /// §4.2.4 refinement ("send a first batch of data as a burst (either 10
  /// segments as in TCP-10 ...) before Halfback's Pacing Phase") — fixes
  /// the small-flow region where TCP-Cache/TCP-10 beat Halfback because
  /// pacing delays tiny flows by a full RTT. 0 disables the refinement.
  std::uint32_t initial_burst_segments = 0;

  /// §3.1's second threshold option: derive the Pacing Threshold from "the
  /// largest throughput observed on recent connections, times the RTT"
  /// instead of the constant. Requires a ThroughputHistory in the
  /// SchemeContext; falls back to the constant until history exists.
  bool history_threshold = false;
};

/// The Halfback sender.
///
/// Phase 1 (Pacing, §3.1): pace min(flow, rwnd, threshold) segments evenly
/// over the handshake RTT.
///
/// Phase 2 (ROPR, §3.2): starting with the first ACK that arrives after
/// pacing has finished, each received ACK triggers one *proactive*
/// retransmission of the highest-sequence segment that is not yet
/// acknowledged, not SACKed, and not already proactively retransmitted —
/// walking backwards from the end of the batch. The phase ends when the
/// backward pointer meets the ACK frontier (typically mid-flow, so ~50% of
/// the flow is re-sent — hence the name). Normal TCP retransmission (fast
/// retransmit + RTO) runs in parallel throughout.
///
/// Phase 3 (fallback, §3.3): flows longer than the threshold continue with
/// normal congestion avoidance from cwnd = s·RTT, where s is the ACK
/// arrival rate observed during ROPR.
class HalfbackSender final : public PacedStartImpl<HalfbackSender> {
  using Base = PacedStartImpl<HalfbackSender>;
  using Tcp = transport::TcpSenderImpl<HalfbackSender>;

 public:
  HalfbackSender(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
                 net::FlowId flow, sim::Bytes flow_bytes,
                 transport::SenderConfig config, HalfbackConfig halfback_config,
                 std::string scheme_name = "halfback",
                 std::shared_ptr<ThroughputHistory> history = nullptr)
      : Base{simulator,
             local_node,
             peer,
             flow,
             flow_bytes,
             config,
             halfback_config.pacing_threshold_segments,
             std::move(scheme_name),
             Base::kDefaultPacingQuantum,
             halfback_config.initial_burst_segments},
        halfback_{halfback_config},
        history_{std::move(history)} {
    // Normal retransmissions are ACK-clocked too — at most one per ACK,
    // like the ROPR copies ("limits aggressiveness at retransmission").
    retx_per_call_limit_ = 1;
  }

  bool ropr_active() const { return ropr_active_; }
  bool ropr_done() const { return ropr_done_; }

  // --- policy hooks (statically dispatched by Sender<HalfbackSender>) ------

  void on_established() {
    if (halfback_.history_threshold && history_ != nullptr) {
      // §3.1: threshold = best recent throughput x handshake RTT.
      if (auto bps = history_->best_bytes_per_second(node_.id(), peer_)) {
        const double bytes = *bps * record_.handshake_rtt.to_seconds();
        set_pacing_threshold_segments(
            static_cast<std::uint32_t>(bytes / net::kSegmentPayloadBytes));
      }
    }
    Base::on_established();
  }

  void on_flow_complete() {
    if (history_ != nullptr && record_.completion_time > record_.established_time) {
      const double elapsed =
          (record_.completion_time - record_.established_time).to_seconds();
      history_->store(node_.id(), peer_,
                      static_cast<double>(record_.flow_bytes) / elapsed);
    }
  }

  void on_pacing_complete() {
    // ROPR is armed; it begins with the next ACK (§3.2: "we choose to start
    // this phase when the sender receives the first ACK after the Pacing
    // phase"; early ACKs "will not trigger proactive retransmission until
    // all new packets are paced out").
    ropr_armed_ = true;
  }

  void handle_ack(const net::Packet& ack, const transport::AckUpdate& update) {
    Tcp::handle_ack(ack, update);
    if (complete()) return;
    if (ropr_armed_ && !ropr_done_) {
      if (!ropr_active_) begin_ropr();
      ++ropr_acks_;
      if (halfback_.rate == HalfbackConfig::RetxRate::ack_clocked) {
        // `copies_per_ack` proactive retransmissions per received ACK
        // (1.0 = the paper's Halfback; fractional ratios are the §5
        // bandwidth-tuning extension). Credit is capped so a burst cannot
        // build up while no segment is eligible.
        ropr_credit_ = std::min(ropr_credit_ + halfback_.copies_per_ack, 3.0);
        while (ropr_credit_ >= 1.0 && retransmit_one_proactive()) {
          ropr_credit_ -= 1.0;
        }
      }
      check_ropr_finished();
    }
  }

  void on_timeout() {
    // Graceful degradation under severe loss (§3.2's machinery assumes ACKs
    // keep arriving): an RTO means the ACK clock collapsed — the paced
    // batch, the ROPR copies, or the ACKs themselves are being lost in
    // bulk (bursty loss, a blackout). Proactively re-duplicating segments
    // on top of go-back-N RTO recovery would only re-congest the
    // recovering path, so abandon the proactive phase and let standard
    // slow-start recovery (with its capped, backed-off timer) finish the
    // flow. Runs that never hit an RTO — every fault-free run — are
    // untouched.
    if (!ropr_done_) {
      const bool was_active = ropr_active_;
      ropr_done_ = true;
      ropr_active_ = false;
      if (was_active) {
        if (auto* probes = scheme_probes()) probes->ropr_abandoned->increment();
        if (tape() != nullptr) {
          tape()->record(simulator_.now(),
                         telemetry::TapeEventKind::ropr_abandoned, ropr_back_);
        }
        // Mark the interrupted ROPR span abandoned before fallback closes it,
        // so the span log distinguishes a cut-short repair from a finished one.
        abandon_phase_span();
        enter_phase(telemetry::FlowPhase::fallback);
      }
    }
    Base::on_timeout();
  }

  void after_transmit(std::uint32_t seq, bool proactive) {
    Base::after_transmit(seq, proactive);
    auto* probes = scheme_probes();
    if (probes == nullptr) return;
    if (proactive) {
      probes->ropr_packets->increment();
      probes->ropr_low_water->set(static_cast<double>(seq));
    } else if (pacing_done() && ropr_done_) {
      probes->fallback_packets->increment();
    }
  }

  std::uint32_t new_data_limit() const {
    // No new data competes with the paced batch or with ROPR (§3.3: the
    // first k bytes are delivered by Pacing + ROPR, *then* TCP resumes).
    if (!pacing_done()) return 0;
    if (!ropr_done_) return batch_end();
    return Tcp::new_data_limit();
  }

 private:
  void begin_ropr() {
    ropr_active_ = true;
    enter_phase(telemetry::FlowPhase::ropr);
    ropr_started_at_ = simulator_.now();
    ropr_back_ = batch_end();          // reverse pointer (one past)
    ropr_front_ = scoreboard_.cum_ack();  // forward pointer (ablation)
    if (halfback_.rate == HalfbackConfig::RetxRate::line_rate) {
      // Halfback-Burst ablation: all proactive retransmissions at once.
      while (retransmit_one_proactive()) {
      }
      check_ropr_finished();
    }
  }

  /// Send the next proactive retransmission in the configured order.
  /// Returns false when no eligible segment remains.
  bool retransmit_one_proactive() {
    if (halfback_.order == HalfbackConfig::Order::reverse) {
      while (ropr_back_ > scoreboard_.cum_ack()) {
        std::uint32_t seq = ropr_back_ - 1;
        --ropr_back_;
        if (eligible_for_proactive(seq)) {
          send_segment(seq, /*proactive=*/true);
          return true;
        }
      }
      return false;
    }
    // Forward ablation: walk upward from the ACK frontier.
    ropr_front_ = std::max(ropr_front_, scoreboard_.cum_ack());
    while (ropr_front_ < batch_end()) {
      std::uint32_t seq = ropr_front_;
      ++ropr_front_;
      if (eligible_for_proactive(seq)) {
        send_segment(seq, /*proactive=*/true);
        return true;
      }
    }
    return false;
  }

  bool eligible_for_proactive(std::uint32_t seq) const {
    if (scoreboard_.is_acked(seq)) return false;
    const transport::SegmentState* s = scoreboard_.state(seq);
    if (s == nullptr || s->times_sent == 0) return false;  // never sent (RTO aborts)
    return s->proactive_sent == 0;
  }

  void check_ropr_finished() {
    const bool exhausted = halfback_.order == HalfbackConfig::Order::reverse
                               ? ropr_back_ <= scoreboard_.cum_ack()
                               : ropr_front_ >= batch_end();
    if (!exhausted) return;
    ropr_done_ = true;
    enter_fallback();
  }

  void enter_fallback() {
    if (batch_end() >= total_segments()) return;  // nothing left to send
    enter_phase(telemetry::FlowPhase::fallback);
    // §3.3: cwnd = s * RTT with s estimated from ACK arrivals during ROPR.
    sim::Time span = simulator_.now() - ropr_started_at_;
    double s_per_sec = span > sim::Time::zero()
                           ? static_cast<double>(ropr_acks_) / span.to_seconds()
                           : 0.0;
    double window = s_per_sec * smoothed_rtt().to_seconds();
    cwnd_ = std::max(2.0, window);
    ssthresh_ = cwnd_;  // continue in congestion avoidance
    send_available();
  }

  HalfbackConfig halfback_;
  std::shared_ptr<ThroughputHistory> history_;
  bool ropr_armed_ = false;
  bool ropr_active_ = false;
  bool ropr_done_ = false;
  std::uint32_t ropr_back_ = 0;
  std::uint32_t ropr_front_ = 0;
  std::uint32_t ropr_acks_ = 0;
  double ropr_credit_ = 0.0;
  sim::Time ropr_started_at_;
};

}  // namespace halfback::schemes
