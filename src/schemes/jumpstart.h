// JumpStart [Liu et al., PFLDNeT '07]: transmit the entire (short) flow
// paced across the first RTT, then fall back to normal TCP.
#pragma once

#include "schemes/paced_start.h"

namespace halfback::schemes {

/// JumpStart: aggressive paced startup with TCP's reactive-only recovery.
///
/// The critical behaviour the paper diagnoses (§2.2): "JumpStart uses TCP's
/// retransmission mechanism and will aggressively burst out all lost
/// packets and will often incur even more loss." We model that burst
/// explicitly — every newly detected loss is retransmitted immediately at
/// line rate, outside any congestion-window budget.
class JumpStartSender final : public PacedStartImpl<JumpStartSender> {
  using Base = PacedStartImpl<JumpStartSender>;
  using Tcp = transport::TcpSenderImpl<JumpStartSender>;

 public:
  JumpStartSender(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
                  net::FlowId flow, sim::Bytes flow_bytes,
                  transport::SenderConfig config)
      : Base{simulator,
             local_node,
             peer,
             flow,
             flow_bytes,
             config,
             config.receive_window_segments,
             "jumpstart"} {}

  // --- policy hooks (statically dispatched by Sender<JumpStartSender>) -----

  void handle_ack(const net::Packet& ack, const transport::AckUpdate& update) {
    Tcp::handle_ack(ack, update);
    // Bursty recovery: whatever the SACK scoreboard deems lost goes out
    // back to back, and is burst *again* every NAK round it stays unfilled
    // ("each lost packet may require multiple retransmissions", §4.2.3).
    burst_stale_lost_segments();
  }

  void on_timeout() {
    Base::on_timeout();  // abort pacing, collapse cwnd, retransmit hole
    // The UDT substrate's EXP timeout is go-back-N: every segment not yet
    // covered by the *cumulative* ACK goes back on the wire at line rate,
    // SACKed or not. Flows that lost packets together time out together,
    // and their synchronized full-window bursts collide again — the
    // repeated-loss / repeated-timeout spiral behind JumpStart's early
    // performance collapse (§2.2, §4.3.1).
    scoreboard_.mark_all_outstanding_lost();
    for (std::uint32_t seq = scoreboard_.cum_ack(); seq < scoreboard_.highest_sent();
         ++seq) {
      const transport::SegmentState* s = scoreboard_.state(seq);
      if (s != nullptr && s->times_sent > 0) send_segment(seq);
    }
    if (!rto_armed()) arm_rto();
  }
};

}  // namespace halfback::schemes
