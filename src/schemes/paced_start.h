// Shared machinery for schemes that pace their initial batch over one RTT
// (JumpStart and all Halfback variants).
#pragma once

#include <algorithm>

#include "sim/timer.h"
#include "transport/tcp_sender.h"

namespace halfback::schemes {

/// TCP sender whose startup phase paces segments evenly across one RTT
/// (the handshake sample) instead of slow-starting.
///
/// The batch is min(flow size, receive window, pacing threshold). After the
/// batch, behaviour returns to the derived scheme: JumpStart falls back to
/// plain (bursty) TCP, Halfback enters its ROPR phase. Like TcpSenderImpl,
/// this is a policy layer of the static pipeline: `Derived` is the concrete
/// scheme class, and hooks it shadows (after_transmit, on_timeout,
/// new_data_limit, on_pacing_complete) dispatch to it statically.
template <class Derived>
class PacedStartImpl : public transport::TcpSenderImpl<Derived> {
  using Base = transport::TcpSenderImpl<Derived>;

 public:
  /// Pacing-timer granularity. The paper's schemes are user-space UDT
  /// implementations (§4.1), and a user-space pacer fires on a coarse
  /// timer: segments due within one tick leave as a back-to-back clump at
  /// line rate. This quantization is what makes overlapping paced flows
  /// overflow a BDP-sized buffer — with idealized per-packet pacing the
  /// 115 KB Emulab buffer would absorb two overlapping 100 KB flows
  /// loss-free and the paper's §4.3 loss dynamics would not reproduce.
  /// Tests that need ideal pacing set this to zero.
  static constexpr auto kDefaultPacingQuantum = sim::Time::milliseconds(10);

  bool pacing_done() const { return pacing_done_; }
  std::uint32_t batch_end() const { return batch_end_; }

  // --- policy hooks (statically dispatched) --------------------------------

  void on_established() {
    this->enter_phase(telemetry::FlowPhase::pacing);
    batch_end_ = std::min({this->total_segments(),
                           this->config_.receive_window_segments,
                           pacing_threshold_segments_});
    // The whole batch is "released" at once: post-pacing TCP machinery
    // starts from a window covering everything already in flight.
    this->cwnd_ = static_cast<double>(batch_end_);
    this->ssthresh_ = this->cwnd_;
    // §4.2.4 refinement: optionally blast an initial window as a burst
    // before pacing, so tiny flows don't pay a full pacing RTT.
    const std::uint32_t burst = std::min(initial_burst_segments_, batch_end_);
    for (std::uint32_t seq = 0; seq < burst; ++seq) this->send_segment(seq);
    if (burst >= batch_end_) {
      finish_pacing();
      if (this->scoreboard_.pipe() > 0 && !this->rto_armed()) this->arm_rto();
      return;
    }
    // Pace the batch evenly across the measured RTT (§3.1): for n segments,
    // one every RTT/n, the first immediately.
    pace_interval_ =
        this->record_.handshake_rtt / static_cast<double>(batch_end_);
    pace_next();
  }

  /// Called once, when the last batch segment has been handed to the NIC.
  /// A derived scheme defining its own shadows this default.
  void on_pacing_complete() {}

  /// Count paced-phase transmissions (including the initial burst). Runs
  /// for every data transmission; shadowing schemes must call through.
  void after_transmit(std::uint32_t /*seq*/, bool proactive) {
    if (!proactive && !pacing_done_) {
      if (auto* probes = this->scheme_probes()) {
        probes->paced_packets->increment();
      }
    }
  }

  void on_timeout() {
    // An RTO during the pacing phase aborts pacing (everything outstanding
    // is marked lost anyway and will be recovered by TCP machinery).
    if (!pacing_done_) finish_pacing();
    Base::on_timeout();
  }

  /// During the pacing phase new data leaves only through the pacer.
  std::uint32_t new_data_limit() const {
    if (!pacing_done_) return 0;
    return Base::new_data_limit();
  }

 protected:
  PacedStartImpl(sim::Simulator& simulator, net::Node& local_node,
                 net::NodeId peer, net::FlowId flow, sim::Bytes flow_bytes,
                 transport::SenderConfig config,
                 std::uint32_t pacing_threshold_segments,
                 std::string scheme_name,
                 sim::Time pacing_quantum = kDefaultPacingQuantum,
                 std::uint32_t initial_burst_segments = 0)
      : Base{simulator,  local_node, peer, flow,
             flow_bytes, config,     std::move(scheme_name)},
        pacing_threshold_segments_{pacing_threshold_segments},
        pacing_quantum_{pacing_quantum},
        initial_burst_segments_{initial_burst_segments} {
    pace_timer_.bind(
        simulator,
        sim::FunctionRef<void()>::from<&PacedStartImpl::pace_next>(*this));
  }

  /// UDT-style NAK-driven recovery (§4.1: the schemes are implemented over
  /// UDT with selective ACKs): every segment still deemed lost and not yet
  /// SACKed is retransmitted again once per RTT round, at line rate. This
  /// is the "propensity to retransmit the same packets multiple times" the
  /// paper diagnoses in JumpStart; for Halfback the same machinery runs,
  /// but ROPR's copies usually fill the holes before a second round fires.
  void burst_stale_lost_segments(double rounds_per_rtt = 1.0) {
    // Nothing lost and un-SACKed → the scan below would retransmit
    // nothing; skip the per-ACK window walk (the common case once
    // recovery has caught up, and always on clean paths).
    if (!this->scoreboard_.any_lost_unsacked()) return;
    const sim::Time now = this->simulator_.now();
    const sim::Time round = this->smoothed_rtt() / rounds_per_rtt;
    for (std::uint32_t seq = this->scoreboard_.cum_ack();
         seq < this->scoreboard_.highest_sent(); ++seq) {
      const transport::SegmentState* s = this->scoreboard_.state(seq);
      if (s == nullptr || !s->lost || s->sacked || s->times_sent == 0) continue;
      if (now - s->last_sent >= round) this->send_segment(seq);
    }
  }

  /// Derived schemes may adjust the threshold before on_established() runs
  /// (Halfback's history-based threshold option).
  void set_pacing_threshold_segments(std::uint32_t segments) {
    pacing_threshold_segments_ = std::max(1u, segments);
  }

  void finish_pacing() {
    if (pacing_done_) return;
    pacing_done_ = true;
    pace_timer_.cancel();
    // Derived schemes refine further (Halfback enters "ropr" with the first
    // post-pacing ACK); until then the flow is in generic transfer.
    this->enter_phase(telemetry::FlowPhase::transfer);
    // The pacer may finish within one timer tick (RTT shorter than the
    // pacing quantum); the retransmission timer must be armed regardless,
    // or a fully-lost batch would never recover.
    if (this->scoreboard_.pipe() > 0 && !this->rto_armed()) this->arm_rto();
    this->self().on_pacing_complete();
  }

 private:
  void pace_next() {
    if (this->complete()) return;
    // Send every segment due in this timer tick as one clump.
    const std::int64_t due =
        pacing_quantum_ > pace_interval_
            ? std::max<std::int64_t>(1,
                                     pacing_quantum_.ns() / pace_interval_.ns())
            : 1;
    for (std::int64_t i = 0; i < due; ++i) {
      auto next = this->scoreboard_.next_unsent();
      if (!next.has_value() || *next >= batch_end_) {
        finish_pacing();
        return;
      }
      this->send_segment(*next);
    }
    if (this->scoreboard_.pipe() > 0 && !this->rto_armed()) this->arm_rto();
    auto upcoming = this->scoreboard_.next_unsent();
    if (!upcoming.has_value() || *upcoming >= batch_end_) {
      finish_pacing();
      return;
    }
    pace_timer_.schedule_after(pace_interval_ * static_cast<double>(due));
  }

  std::uint32_t pacing_threshold_segments_ = 0;
  sim::Time pacing_quantum_;
  std::uint32_t initial_burst_segments_ = 0;
  std::uint32_t batch_end_ = 0;
  sim::Time pace_interval_;
  bool pacing_done_ = false;
  sim::StaticTimer pace_timer_;  ///< one-shot pacing tick, re-armed per clump
};

}  // namespace halfback::schemes
