#include "schemes/pcp.h"

#include <algorithm>

namespace halfback::schemes {

PcpSender::PcpSender(sim::Simulator& simulator, net::Node& local_node,
                     net::NodeId peer, net::FlowId flow, sim::Bytes flow_bytes,
                     transport::SenderConfig config)
    : Sender{simulator, local_node, peer,  flow,
             flow_bytes, config,    "pcp"} {
  tick_timer_.bind(simulator,
                   sim::FunctionRef<void()>::from<&PcpSender::on_tick>(*this));
  round_timer_.bind(
      simulator, sim::FunctionRef<void()>::from<&PcpSender::end_round>(*this));
}

void PcpSender::on_tick() {
  tick_pending_ = false;
  data_tick();
}

PcpSender::~PcpSender() { train_event_.cancel(); }

void PcpSender::on_established() {
  // Initial verified rate: two segments per RTT (a slow-start-like floor);
  // the first probe immediately tests double that. The floor is applied in
  // the time domain so no raw seconds value floats around.
  const sim::Time rtt =
      std::max(record_.handshake_rtt, sim::Time::microseconds(100.0));
  base_rate_ = 2.0 / rtt.to_seconds();
  probe_rate_ = 2.0 * base_rate_;
  begin_round();
  schedule_data_tick();
}

std::optional<std::uint32_t> PcpSender::next_to_send() {
  if (auto lost = scoreboard_.next_lost_needing_retx()) return lost;
  auto next = scoreboard_.next_unsent();
  if (next.has_value() &&
      *next < scoreboard_.flow_control_limit(config_.receive_window_segments) &&
      scoreboard_.pipe() < config_.receive_window_segments) {
    return next;
  }
  return std::nullopt;
}

void PcpSender::begin_round() {
  round_has_sample_ = false;
  send_probe_train();
  round_timer_.schedule_after(smoothed_rtt());
}

void PcpSender::send_probe_train() {
  // A short train paced at the probe rate. Probe packets carry real data
  // (PCP probes with payload), so they advance the flow too.
  const sim::Time spacing = sim::Time::seconds(1.0 / std::max(probe_rate_, 1.0));
  train_step(kTrainLength, spacing);
}

void PcpSender::train_step(int remaining, sim::Time spacing) {
  if (remaining <= 0 || complete()) return;
  auto seq = next_to_send();
  if (!seq.has_value()) return;
  send_segment(*seq);
  if (!rto_armed()) arm_rto();
  train_event_ = simulator_.schedule(
      spacing, [this, remaining, spacing] { train_step(remaining - 1, spacing); });
}

void PcpSender::data_tick() {
  if (complete()) return;
  if (paused_) {
    idle_ = true;  // data gated until a clean round
    return;
  }
  auto seq = next_to_send();
  if (!seq.has_value()) {
    idle_ = true;
    return;
  }
  idle_ = false;
  send_segment(*seq);
  if (!rto_armed()) arm_rto();
  schedule_data_tick();
}

void PcpSender::schedule_data_tick() {
  if (tick_pending_ || complete()) return;
  tick_pending_ = true;
  const sim::Time interval = sim::Time::seconds(1.0 / std::max(base_rate_, 1.0));
  tick_timer_.schedule_after(interval);
}

void PcpSender::handle_ack(const net::Packet& /*ack*/,
                           const transport::AckUpdate& /*update*/) {
  if (rtt_.has_sample()) {
    const sim::Time latest = rtt_.latest_rtt();
    if (!round_has_sample_ || latest < round_min_rtt_) round_min_rtt_ = latest;
    round_has_sample_ = true;
  }
  scoreboard_.detect_losses(config_.dup_threshold);
  if (idle_ && !paused_) {
    idle_ = false;
    if (!tick_pending_) schedule_data_tick();
  }
}

void PcpSender::end_round() {
  if (complete()) return;
  if (round_has_sample_) {
    // Probe verdict: if even the best RTT this round shows queue build-up,
    // the probed rate exceeds what the path can absorb.
    const double base = rtt_.min_rtt().to_seconds();
    const double seen = round_min_rtt_.to_seconds();
    if (seen > base * (1.0 + kDelayTolerance)) {
      // Congested: hold the verified rate, halve the next probe toward it,
      // and send nothing but probes for a round.
      probe_rate_ = std::max(base_rate_, (base_rate_ + probe_rate_) / 2.0);
      paused_ = true;
    } else {
      // Verified: adopt the probed rate and aim double next round.
      base_rate_ = probe_rate_;
      probe_rate_ = 2.0 * base_rate_;
      paused_ = false;
    }
  }
  // Without samples (everything lost, or nothing outstanding) hold rates;
  // loss recovery is driven by the RTO.
  begin_round();
  if (!paused_ && idle_) data_tick();
}

void PcpSender::on_timeout() {
  scoreboard_.mark_all_outstanding_lost();
  base_rate_ = std::max(base_rate_ * 0.5, 1.0);
  probe_rate_ = std::max(probe_rate_ * 0.5, 2.0);
  arm_rto();
  if (!tick_pending_) {
    paused_ = false;
    data_tick();
  }
}

}  // namespace halfback::schemes
