// PCP [Anderson et al., NSDI '06]: endpoint congestion control that probes
// for available bandwidth and sends paced at the *verified* rate.
//
// Reimplemented from the paper's description (the original user-level code
// is not available here — see DESIGN.md). The model keeps the protocol's
// structure and the qualitative behaviours that matter for the Halfback
// comparison:
//
//   * rate doubling by *probing*: each RTT round a short packet train goes
//     out at double the current base rate; only if the round shows no
//     added queueing delay does the base rate rise to the probed rate —
//     so data transmission never runs ahead of verification, which costs
//     start-up time and is often conservative on short flows (§2.2:
//     "unacceptably long FCT ... can have higher flow completion time than
//     TCP");
//   * when the probe shows rising delay, PCP holds its rate and sends
//     nothing but the next probe for a round (§4.2.3: "It will not send
//     data, except probing, when the queuing delay is increasing"), which
//     makes it extremely conservative against queue-filling TCP;
//   * paced transmission throughout, never bursts — the fewest
//     retransmissions of all schemes (Fig. 10b).
#pragma once

#include "sim/timer.h"
#include "transport/sender.h"

namespace halfback::schemes {

/// PCP does not reuse the TCP machinery at all, so it sits directly on
/// Sender<PcpSender> rather than on TcpSenderImpl.
class PcpSender final : public transport::Sender<PcpSender> {
 public:
  PcpSender(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
            net::FlowId flow, sim::Bytes flow_bytes, transport::SenderConfig config);
  ~PcpSender() override;

  double base_rate_segments_per_second() const { return base_rate_; }
  double probe_rate_segments_per_second() const { return probe_rate_; }
  bool paused() const { return paused_; }

  // --- policy hooks (statically dispatched by Sender<PcpSender>) -----------
  void on_established();
  void handle_ack(const net::Packet& ack, const transport::AckUpdate& update);
  void on_timeout();

 private:
  /// Segments per probe train (the paper's PCP uses short trains).
  static constexpr int kTrainLength = 5;
  /// Added queueing delay (above the path minimum) that marks a probe
  /// round as congested.
  static constexpr double kDelayTolerance = 0.15;  // +15% of base RTT

  void on_tick();
  void begin_round();
  void end_round();
  void send_probe_train();
  void train_step(int remaining, sim::Time spacing);
  void data_tick();
  void schedule_data_tick();
  std::optional<std::uint32_t> next_to_send();

  double base_rate_ = 0.0;   ///< verified rate, segments per second
  double probe_rate_ = 0.0;  ///< rate under test this round
  bool paused_ = false;      ///< congested verdict: probe only, no data

  bool tick_pending_ = false;
  bool idle_ = false;
  sim::StaticTimer tick_timer_;   ///< paced data clock, one outstanding tick
  sim::StaticTimer round_timer_;  ///< per-RTT probe-round boundary
  // Probe trains deliberately stay on the std::function shim: a new round
  // can start while the previous round's train is still stepping, and those
  // chains must coexist (a reusable Timer would cancel the older chain).
  sim::EventHandle train_event_;

  bool round_has_sample_ = false;
  sim::Time round_min_rtt_;
};

}  // namespace halfback::schemes
