// Proactive TCP [Flach et al., SIGCOMM '13]: "transmits two copies of
// every packet in a short flow". 100% proactive bandwidth overhead.
#pragma once

#include "transport/tcp_sender.h"

namespace halfback::schemes {

/// TCP whose every data transmission is immediately followed by a duplicate
/// copy. The duplicate is flagged proactive so it is not counted as a
/// normal (loss-triggered) retransmission and does not occupy the pipe a
/// second time. The paper shows this doubling collapses the network at
/// ~45% utilization (Fig. 12).
class ProactiveSender final : public transport::TcpSenderImpl<ProactiveSender> {
 public:
  ProactiveSender(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
                  net::FlowId flow, sim::Bytes flow_bytes,
                  transport::SenderConfig config)
      : TcpSenderImpl{simulator, local_node, peer, flow, flow_bytes, config, "proactive"} {}

  // Statically dispatched by Sender<ProactiveSender>.
  void after_transmit(std::uint32_t seq, bool proactive) {
    if (!proactive) send_segment(seq, /*proactive=*/true);
  }
};

}  // namespace halfback::schemes
