// RC3 [Mittal, Sherry, Ratnasamy, Shenker — NSDI '14]: Recursively Cautious
// Congestion Control, the §3.2 comparison point for ROPR's reverse-order
// transmission.
//
// RC3 runs normal TCP from the front of the flow and *simultaneously*
// launches the rest of the flow from the back, at line rate, tagged as
// low-priority traffic. The network (not the sender) provides safety: a
// strict-priority bottleneck forwards the low-priority copies only when
// the link would otherwise idle, so they can never hurt normal traffic.
// The paper contrasts this with Halfback (§3.2): RC3's reverse ordering
// avoids sending the same packet from both control loops, needs in-network
// support, and transmits at line rate; Halfback's reverse ordering is for
// proactive loss recovery, works on unmodified networks, and is
// ACK-clocked.
//
// Simplifications vs the full protocol (documented in DESIGN.md): one
// low-priority level instead of recursive levels, and the RLP copies are
// fire-and-forget (no low-priority retransmission) — recovery of anything
// the RLP batch misses falls to the primary TCP loop, which skips segments
// the copies already delivered (their SACKs arrive within the first RTT).
#pragma once

#include "transport/tcp_sender.h"

namespace halfback::schemes {

class Rc3Sender final : public transport::TcpSenderImpl<Rc3Sender> {
  using Tcp = transport::TcpSenderImpl<Rc3Sender>;

 public:
  Rc3Sender(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
            net::FlowId flow, sim::Bytes flow_bytes,
            transport::SenderConfig config)
      : TcpSenderImpl{simulator, local_node, peer, flow, flow_bytes, config, "rc3"} {}

  std::uint32_t rlp_copies_sent() const { return rlp_sent_; }

  // Statically dispatched by Sender<Rc3Sender>.
  void on_established() {
    Tcp::on_established();  // the primary loop slow-starts from seq 0
    // RLP: the whole remaining flow, reverse order, line rate, priority 1.
    // Bounded by the receive window like everything else.
    const std::uint32_t window_limit =
        std::min(total_segments(), config_.receive_window_segments);
    const std::uint32_t already_sent = scoreboard_.highest_sent();
    for (std::uint32_t seq = window_limit; seq-- > already_sent;) {
      send_rlp_copy(seq);
    }
  }

 private:
  void send_rlp_copy(std::uint32_t seq) {
    // RLP packets bypass the primary loop's scoreboard: the primary learns
    // about them only through the receiver's SACKs, exactly as a separate
    // control loop would.
    net::Packet p;
    p.flow = record_.flow;
    p.type = net::PacketType::data;
    p.src = node_.id();
    p.dst = peer_;
    p.seq = seq;
    p.total_segments = record_.total_segments;
    p.size_bytes = net::kSegmentWireBytes;
    p.is_retx = false;
    p.is_proactive = true;
    p.priority = 1;
    p.uid = (record_.flow << 24) + 0x800000u + (++rlp_sent_);
    p.sent_at = simulator_.now();
    ++record_.data_packets_sent;
    ++record_.proactive_retx;
    node_.send(std::move(p));
  }

  std::uint32_t rlp_sent_ = 0;
};

}  // namespace halfback::schemes
