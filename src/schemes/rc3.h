// RC3 [Mittal, Sherry, Ratnasamy, Shenker — NSDI '14]: Recursively Cautious
// Congestion Control, the §3.2 comparison point for ROPR's reverse-order
// transmission.
//
// RC3 runs normal TCP from the front of the flow and *simultaneously*
// launches the rest of the flow from the back, at line rate, tagged as
// low-priority traffic. The network (not the sender) provides safety: a
// strict-priority bottleneck forwards the low-priority copies only when
// the link would otherwise idle, so they can never hurt normal traffic.
// The paper contrasts this with Halfback (§3.2): RC3's reverse ordering
// avoids sending the same packet from both control loops, needs in-network
// support, and transmits at line rate; Halfback's reverse ordering is for
// proactive loss recovery, works on unmodified networks, and is
// ACK-clocked.
//
// Simplifications vs the full protocol (documented in DESIGN.md): one
// low-priority level instead of recursive levels, and the RLP copies are
// fire-and-forget (no low-priority retransmission) — recovery of anything
// the RLP batch misses falls to the primary TCP loop, which skips segments
// the copies already delivered (their SACKs arrive within the first RTT).
#pragma once

#include <algorithm>

#include "transport/tcp_sender.h"

namespace halfback::schemes {

class Rc3Sender final : public transport::TcpSenderImpl<Rc3Sender> {
  using Tcp = transport::TcpSenderImpl<Rc3Sender>;

 public:
  Rc3Sender(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
            net::FlowId flow, sim::Bytes flow_bytes,
            transport::SenderConfig config)
      : TcpSenderImpl{simulator, local_node, peer, flow, flow_bytes, config, "rc3"} {}

  std::uint32_t rlp_copies_sent() const { return rlp_sent_; }
  bool rlp_abandoned() const { return rlp_abandoned_; }

  // Statically dispatched by Sender<Rc3Sender>.
  void on_established() {
    Tcp::on_established();  // the primary loop slow-starts from seq 0
    // RLP: the whole remaining flow, reverse order, line rate, priority 1.
    // Bounded by the receive window like everything else.
    const std::uint32_t window_limit =
        std::min(total_segments(), config_.receive_window_segments);
    const std::uint32_t already_sent = scoreboard_.highest_sent();
    for (std::uint32_t seq = window_limit; seq-- > already_sent;) {
      send_rlp_copy(seq);
    }
  }

  void handle_ack(const net::Packet& ack, const transport::AckUpdate& update) {
    if (rlp_abandoned_ && update.backfill_acked > 0) {
      // Post-abandon, strip the congestion-window credit the backfill
      // earned (see on_timeout below): acknowledgements for segments this
      // loop never sent still advance the window edge and complete the
      // flow, they just no longer open cwnd during RTO recovery.
      transport::AckUpdate damped = update;
      std::uint32_t strip = update.backfill_acked;
      const std::uint32_t from_cum = std::min(strip, damped.newly_cum_acked);
      damped.newly_cum_acked -= from_cum;
      strip -= from_cum;
      while (strip > 0 && !damped.newly_sacked.empty()) {
        damped.newly_sacked.pop_back();
        --strip;
      }
      Tcp::handle_ack(ack, damped);
      return;
    }
    Tcp::handle_ack(ack, update);
  }

  void on_timeout() {
    // Graceful degradation mirroring Halfback's ROPR abandon (PR 4): an RTO
    // means the RLP batch's promise — its SACKs arrive within the first RTT
    // — has collapsed, and the primary loop falls back to go-back-N
    // recovery from cwnd = 1. Copies of the batch may still trickle in
    // afterwards (they sat in a low-priority queue through the loss event);
    // crediting their delivery to the congestion window would open the
    // recovering path far faster than slow start intends, on bytes this
    // control loop never clocked out. Abandon the backfill: keep skipping
    // segments the copies delivered (the receiver has them), but stop
    // growing cwnd on their acknowledgements. Runs that never hit an RTO —
    // every fault-free run — are untouched.
    if (!rlp_abandoned_) {
      rlp_abandoned_ = true;
      if (auto* probes = scheme_probes()) probes->rlp_abandoned->increment();
      if (tape() != nullptr) {
        tape()->record(simulator_.now(), telemetry::TapeEventKind::rlp_abandoned,
                       scoreboard_.cum_ack());
      }
    }
    Tcp::on_timeout();
  }

 private:
  void send_rlp_copy(std::uint32_t seq) {
    // RLP packets bypass the primary loop's scoreboard: the primary learns
    // about them only through the receiver's SACKs, exactly as a separate
    // control loop would.
    net::Packet p;
    p.flow = record_.flow;
    p.type = net::PacketType::data;
    p.src = node_.id();
    p.dst = peer_;
    p.seq = seq;
    p.total_segments = record_.total_segments;
    p.size_bytes = net::kSegmentWireBytes;
    p.is_retx = false;
    p.is_proactive = true;
    p.priority = 1;
    p.uid = (record_.flow << 24) + 0x800000u + (++rlp_sent_);
    p.sent_at = simulator_.now();
    ++record_.data_packets_sent;
    ++record_.proactive_retx;
    node_.send(std::move(p));
  }

  std::uint32_t rlp_sent_ = 0;
  bool rlp_abandoned_ = false;
};

}  // namespace halfback::schemes
