// Reactive TCP [Flach et al., SIGCOMM '13]: TCP plus a probe timeout (PTO)
// that retransmits the last outstanding packet well before the RTO,
// converting tail losses into SACK-recoverable episodes.
#pragma once

#include "sim/timer.h"
#include "transport/tcp_sender.h"

namespace halfback::schemes {

/// TCP with a tail-loss probe.
///
/// Whenever data is outstanding, a probe timer of max(2·SRTT, 10 ms) runs
/// alongside the RTO. If no ACK arrives in time, the highest outstanding
/// segment is retransmitted as a probe; its SACK lets the ordinary
/// fast-retransmit machinery find the real holes. As the paper notes
/// (§2.2), this "does not solve the problem that the starting phase is too
/// conservative" — only the tail-loss penalty is reduced.
class ReactiveSender final : public transport::TcpSenderImpl<ReactiveSender> {
  using Tcp = transport::TcpSenderImpl<ReactiveSender>;

 public:
  ReactiveSender(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
                 net::FlowId flow, sim::Bytes flow_bytes,
                 transport::SenderConfig config)
      : TcpSenderImpl{simulator, local_node, peer, flow, flow_bytes, config, "reactive"} {
    pto_timer_.bind(
        simulator,
        sim::FunctionRef<void()>::from<&ReactiveSender::fire_probe>(*this));
  }

  // --- policy hooks (statically dispatched by Sender<ReactiveSender>) ------

  void handle_ack(const net::Packet& ack, const transport::AckUpdate& update) {
    Tcp::handle_ack(ack, update);
    // Each ACK re-opens the probe opportunity.
    probe_sent_ = false;
    rearm_pto();
  }

  void after_transmit(std::uint32_t /*seq*/, bool /*proactive*/) {
    rearm_pto();
  }

  void on_timeout() {
    pto_timer_.cancel();
    Tcp::on_timeout();
  }

 private:
  void rearm_pto() {
    pto_timer_.cancel();
    if (complete() || probe_sent_ || scoreboard_.pipe() == 0) return;
    sim::Time pto = std::max(smoothed_rtt() * 2.0, sim::Time::milliseconds(10));
    pto_timer_.schedule_after(pto);
  }

  void fire_probe() {
    if (complete() || scoreboard_.pipe() == 0) return;
    // Retransmit the highest sent, not-yet-acknowledged segment.
    std::uint32_t top = scoreboard_.highest_sent();
    while (top > scoreboard_.cum_ack()) {
      --top;
      if (!scoreboard_.is_acked(top)) {
        probe_sent_ = true;  // one probe per episode
        send_segment(top);
        arm_rto();
        return;
      }
    }
  }

  sim::StaticTimer pto_timer_;
  bool probe_sent_ = false;
};

}  // namespace halfback::schemes
