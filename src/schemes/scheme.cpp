#include "schemes/scheme.h"

#include <array>
#include <stdexcept>

namespace halfback::schemes {

namespace {

constexpr std::array<SchemeInfo, 11> kSchemes{{
    {Scheme::tcp, "tcp", "TCP", "slow start, ICW 2", "0%", "original order",
     "ACK clocked (bursty)", true},
    {Scheme::tcp10, "tcp10", "TCP-10", "slow start, ICW 10", "0%", "original order",
     "ACK clocked (bursty)", true},
    {Scheme::tcp_cache, "tcp-cache", "TCP-Cache", "cached cwnd/ssthresh", "0%",
     "original order", "ACK clocked (bursty)", true},
    {Scheme::reactive, "reactive", "Reactive", "slow start, ICW 2 + PTO", "0%",
     "tail probe first", "ACK clocked (bursty)", true},
    {Scheme::proactive, "proactive", "Proactive", "slow start, ICW 2", "100%",
     "original order (duplicates)", "with original transmission", true},
    {Scheme::jumpstart, "jumpstart", "JumpStart", "pace whole flow in 1 RTT", "0%",
     "original order", "line-rate burst", true},
    {Scheme::pcp, "pcp", "PCP", "probe trains, rate doubling", "0%", "original order",
     "paced at probed rate", true},
    {Scheme::halfback, "halfback", "Halfback", "pace whole flow in 1 RTT", "~50%",
     "reverse order", "paced by ACK arrival", true},
    {Scheme::halfback_forward, "halfback-forward", "Halfback-Forward",
     "pace whole flow in 1 RTT", "~50%", "forward order", "paced by ACK arrival", true},
    {Scheme::halfback_burst, "halfback-burst", "Halfback-Burst",
     "pace whole flow in 1 RTT", "~100%", "reverse order", "line rate", true},
    {Scheme::rc3, "rc3", "RC3", "slow start + low-priority rest of flow",
     "up to 100%", "reverse order (RLP)", "line rate (low priority)", false},
}};

constexpr std::array<Scheme, 8> kEvaluationSet{
    Scheme::tcp,       Scheme::tcp10, Scheme::tcp_cache, Scheme::reactive,
    Scheme::proactive, Scheme::jumpstart, Scheme::pcp,   Scheme::halfback,
};

constexpr std::array<Scheme, 6> kPlanetLabSet{
    Scheme::tcp,       Scheme::tcp10,     Scheme::reactive,
    Scheme::proactive, Scheme::jumpstart, Scheme::halfback,
};

}  // namespace

std::span<const SchemeInfo> all_schemes() { return kSchemes; }

const SchemeInfo& info(Scheme scheme) {
  for (const SchemeInfo& i : kSchemes) {
    if (i.scheme == scheme) return i;
  }
  throw std::invalid_argument{"unknown scheme"};
}

const char* name(Scheme scheme) { return info(scheme).name; }

std::optional<Scheme> parse_scheme(const std::string& name) {
  for (const SchemeInfo& i : kSchemes) {
    if (name == i.name || name == i.display_name) return i.scheme;
  }
  return std::nullopt;
}

std::span<const Scheme> evaluation_set() { return kEvaluationSet; }

std::span<const Scheme> planetlab_set() { return kPlanetLabSet; }

}  // namespace halfback::schemes
