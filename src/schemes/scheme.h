// The eight transmission schemes evaluated by the paper, plus the two ROPR
// ablations from §5.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "sim/annotations.h"

namespace halfback::schemes {

enum class Scheme : std::uint8_t {
  tcp,               ///< vanilla TCP, ICW = 2
  tcp10,             ///< TCP with ICW = 10 [Dukkipati et al.]
  tcp_cache,         ///< cached cwnd/ssthresh per path [Padmanabhan & Katz]
  reactive,          ///< tail-loss probe TCP [Flach et al.]
  proactive,         ///< every packet sent twice [Flach et al.]
  jumpstart,         ///< pace whole flow in 1 RTT, then TCP [Liu et al.]
  pcp,               ///< probe-based rate control [Anderson et al.]
  halfback,          ///< Pacing + ROPR (this paper)
  halfback_forward,  ///< ablation: ROPR in forward order (§5)
  halfback_burst,    ///< ablation: ROPR at line rate (§5)
  rc3,               ///< RC3 [Mittal et al.] — needs in-network priority (§3.2)
};

/// Design-space row for Table 1: how each scheme starts up and recovers.
struct SchemeInfo {
  Scheme scheme = Scheme::tcp;
  const char* name = "";            ///< short identifier, e.g. "halfback"
  const char* display_name = "";    ///< the paper's name, e.g. "Halfback"
  const char* startup = "";         ///< startup-phase description
  const char* extra_bandwidth = ""; ///< proactive bandwidth overhead
  const char* retx_order = "";      ///< retransmission direction
  const char* retx_rate = "";       ///< retransmission pacing
  bool sender_side_only = false;
};

/// Metadata for every scheme (Table 1's design-space axes).
std::span<const SchemeInfo> all_schemes() HB_EFFECTS();

const SchemeInfo& info(Scheme scheme) HB_EFFECTS(throw);
const char* name(Scheme scheme) HB_EFFECTS(throw);
std::optional<Scheme> parse_scheme(const std::string& name) HB_EFFECTS();

/// The paper's main eight-way comparison set (Figs. 10, 12).
std::span<const Scheme> evaluation_set() HB_EFFECTS();

/// The six schemes plotted in the PlanetLab figures (Figs. 5-8).
std::span<const Scheme> planetlab_set();

}  // namespace halfback::schemes
