// TCP-Cache [after Padmanabhan & Katz's TCP Fast Start]: reuse the
// congestion state (cwnd, ssthresh) of the previous connection to the same
// destination instead of slow-starting from scratch.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include "transport/tcp_sender.h"

namespace halfback::schemes {

/// Shared per-path congestion-state cache. One instance is shared by every
/// TCP-Cache sender in an experiment (the paper notes this gives TCP-Cache
/// an "unrealistic advantage" on a static topology — which we faithfully
/// reproduce, including the Fig. 11 region where it beats Halfback for
/// tens-of-KB flows).
class PathCache {
 public:
  struct Entry {
    double cwnd = 0;
    double ssthresh = 0;
    sim::Time stored_at;
  };

  /// `max_age` implements the paper's §6 critique of caching schemes:
  /// "Caching schemes will draw back to Slow-Start when the variables are
  /// aged." Zero (the default) disables aging — the paper's §4.2.4 setup,
  /// which it itself calls "an unrealistic advantage".
  explicit PathCache(sim::Time max_age = sim::Time::zero()) : max_age_{max_age} {}

  void store(net::NodeId src, net::NodeId dst, Entry entry) {
    cache_[{src, dst}] = entry;
  }

  /// Entry for this path, or nullptr if absent or aged out at time `now`.
  const Entry* lookup(net::NodeId src, net::NodeId dst, sim::Time now) const {
    auto it = cache_.find({src, dst});
    if (it == cache_.end()) return nullptr;
    if (!max_age_.is_zero() && now - it->second.stored_at > max_age_) return nullptr;
    return &it->second;
  }

  std::size_t size() const { return cache_.size(); }
  sim::Time max_age() const { return max_age_; }

 private:
  sim::Time max_age_;
  std::map<std::pair<net::NodeId, net::NodeId>, Entry> cache_;
};

/// TCP that starts from the cached window of the last flow on this path.
class TcpCacheSender final : public transport::TcpSenderImpl<TcpCacheSender> {
  using Tcp = transport::TcpSenderImpl<TcpCacheSender>;

 public:
  TcpCacheSender(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
                 net::FlowId flow, sim::Bytes flow_bytes,
                 transport::SenderConfig config, std::shared_ptr<PathCache> cache)
      : TcpSenderImpl{simulator, local_node, peer,  flow,
                      flow_bytes, config,    "tcp-cache"},
        cache_{std::move(cache)} {}

  // --- policy hooks (statically dispatched by Sender<TcpCacheSender>) ------

  void on_established() {
    Tcp::on_established();
    const PathCache::Entry* entry =
        cache_ ? cache_->lookup(node_.id(), peer_, simulator_.now()) : nullptr;
    if (entry != nullptr) {
      // Resume from the cached state, bounded by the receive window.
      cwnd_ = std::min(std::max(entry->cwnd, cwnd_),
                       static_cast<double>(config_.receive_window_segments));
      ssthresh_ = entry->ssthresh;
      send_available();
    }
  }

  void on_flow_complete() {
    if (!cache_) return;
    PathCache::Entry entry;
    entry.cwnd = cwnd_;
    entry.ssthresh = ssthresh_;
    entry.stored_at = simulator_.now();
    cache_->store(node_.id(), peer_, entry);
  }

 private:
  std::shared_ptr<PathCache> cache_;
};

}  // namespace halfback::schemes
