// Per-path throughput history for Halfback's history-based Pacing
// Threshold (§3.1, the paper's second, unevaluated option: "set the
// threshold to the largest throughput observed on recent connections,
// times the RTT derived from the three-way handshake. This setting
// efficiently avoids a too-aggressive startup phase.").
#pragma once

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <utility>

#include "net/packet.h"

namespace halfback::schemes {

/// Remembers the goodput of recent flows per (src, dst) path and answers
/// with the largest recent observation.
class ThroughputHistory {
 public:
  explicit ThroughputHistory(std::size_t window = 8) : window_{window} {}

  void store(net::NodeId src, net::NodeId dst, double bytes_per_second) {
    if (bytes_per_second <= 0) return;
    std::deque<double>& recent = history_[{src, dst}];
    recent.push_back(bytes_per_second);
    while (recent.size() > window_) recent.pop_front();
  }

  /// Largest throughput among the last `window` flows on this path.
  std::optional<double> best_bytes_per_second(net::NodeId src, net::NodeId dst) const {
    auto it = history_.find({src, dst});
    if (it == history_.end() || it->second.empty()) return std::nullopt;
    return *std::max_element(it->second.begin(), it->second.end());
  }

  std::size_t paths() const { return history_.size(); }

 private:
  std::size_t window_;
  std::map<std::pair<net::NodeId, net::NodeId>, std::deque<double>> history_;
};

}  // namespace halfback::schemes
