// Clang Thread Safety Analysis annotations (HB_ prefix).
//
// The sharded parallel experiment engine (ROADMAP) will run many simulator
// instances concurrently and contend on a small, explicit set of mutation
// surfaces: registry registration/merge in telemetry and the error slot in
// exp::parallel_for. Those surfaces declare their locking contracts with
// the macros below, and the build treats -Wthread-safety as an error (see
// the top-level CMakeLists), so a forgotten lock is a compile failure on
// clang rather than a data race found in production.
//
// On compilers without the attribute (GCC) every macro expands to nothing;
// the annotations are pure documentation there and CI's clang leg keeps
// them honest.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define HB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HB_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define HB_CAPABILITY(x) HB_THREAD_ANNOTATION_(capability(x))

/// Data member readable/writable only while holding `x`.
#define HB_GUARDED_BY(x) HB_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define HB_PT_GUARDED_BY(x) HB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that must be called with the listed capabilities held.
#define HB_REQUIRES(...) \
  HB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that must be called WITHOUT the listed capabilities (it takes
/// them itself; calling with them held would deadlock).
#define HB_EXCLUDES(...) HB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function that acquires the listed capabilities and returns holding them.
#define HB_ACQUIRE(...) HB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases the listed capabilities.
#define HB_RELEASE(...) HB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function returning a reference to data guarded by `x` (caller must hold).
#define HB_RETURN_CAPABILITY(x) HB_THREAD_ANNOTATION_(lock_returned(x))

/// Marks a scoped-guard type (ctor acquires, dtor releases).
#define HB_SCOPED_CAPABILITY HB_THREAD_ANNOTATION_(scoped_lockable)

/// Escape hatch: the function's safety is established by reasoning the
/// analysis cannot follow (e.g. join() as a barrier). Use sparingly and
/// always with a comment saying why.
#define HB_NO_THREAD_SAFETY_ANALYSIS \
  HB_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Effect contract, checked by halfback-analyze (docs/static-analysis.md).
///
/// Declares the complete set of effects a function may produce, directly
/// or through anything it calls: `alloc`, `throw`, `clock` (wall-clock
/// reads — Simulator::now() is virtual time and does not count), `rng`,
/// `io` (ambient I/O — writing to a caller-supplied stream does not
/// count), `global_mut`, `block`. `HB_EFFECTS()` with no arguments
/// declares the function pure in this sense.
///
/// The macro expands to nothing for every compiler; the analyzer's
/// `effects` rule gives it teeth, checking the contract in both
/// directions — an undeclared-but-reachable effect is a violation (with
/// the call chain that proves it), and a declared-but-unreachable effect
/// is stale breadth. Place it after the parameter list, next to where
/// noexcept would go:
///
///   void send(Packet p) HB_EFFECTS(alloc, global_mut);
#define HB_EFFECTS(...)

namespace halfback {

/// std::mutex with the capability attribute clang's analysis keys on
/// (libstdc++'s std::mutex carries none, so HB_GUARDED_BY(a std::mutex)
/// would be an -Wthread-safety-attributes error there). Same semantics and
/// cost; exists purely so guarded members can name their lock.
class HB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HB_ACQUIRE() { mu_.lock(); }
  void unlock() HB_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex (std::lock_guard is unannotated for the same
/// reason std::mutex is).
class HB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HB_ACQUIRE(mu) : mu_{mu} { mu_.lock(); }
  ~MutexLock() HB_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace halfback
