#include "sim/budget.h"

#include <algorithm>
#include <map>
#include <typeinfo>
#include <utility>

#include "sim/event_queue.h"
#include "sim/simulator.h"

#if __has_include(<cxxabi.h>)
#include <cstdlib>
#include <cxxabi.h>
#define HALFBACK_HAS_CXA_DEMANGLE 1
#endif

namespace halfback::sim {
namespace {

/// Demangle an RTTI type name; falls back to the raw mangled form on
/// toolchains without <cxxabi.h> (the census is still deterministic within
/// one binary, which is all byte-identical manifests require).
std::string demangled(const char* raw) {
#ifdef HALFBACK_HAS_CXA_DEMANGLE
  int status = 0;
  char* text = abi::__cxa_demangle(raw, nullptr, nullptr, &status);
  if (text != nullptr) {
    std::string out{text};
    std::free(text);
    return out;
  }
#endif
  return std::string{raw};
}

/// How many pending-event classes the report keeps. Storms are dominated
/// by one or two timer classes; eight leaves room for the long tail
/// without turning the report into a dump.
constexpr std::size_t kTopPendingClasses = 8;

}  // namespace

std::string_view to_string(BudgetTrip trip) {
  switch (trip) {
    case BudgetTrip::none: return "none";
    case BudgetTrip::event_count: return "event_count";
    case BudgetTrip::sim_horizon: return "sim_horizon";
    case BudgetTrip::storm: return "storm";
    case BudgetTrip::wall_clock: return "wall_clock";
  }
  return "?";
}

std::string BudgetReport::summary() const {
  // Times render as raw nanoseconds (rather than Time::to_string) to keep
  // this function's effect contract at exactly {alloc}: the pretty-printer
  // drags in formatting helpers whose inferred effects are wider.
  std::string out{"budget tripped: "};
  out.append(sim::to_string(tripped));
  out.append(" after ");
  out.append(std::to_string(events_executed));
  out.append(" events at t=");
  out.append(std::to_string(sim_now.ns()));
  out.append("ns");
  if (tripped == BudgetTrip::storm) {
    out.append(" (window span ");
    out.append(std::to_string(window_span.ns()));
    out.append("ns, ");
    out.append(std::to_string(
        static_cast<std::uint64_t>(window_events_per_sim_second)));
    out.append(" events/sim-s)");
  }
  out.append("; ");
  out.append(std::to_string(pending_events));
  out.append(" pending");
  const char* sep = " (top: ";
  for (const PendingClassCount& cls : top_pending) {
    out.append(sep);
    out.append(cls.type_name);
    out.append(" x");
    out.append(std::to_string(cls.count));
    sep = ", ";
  }
  if (!top_pending.empty()) out.append(")");
  return out;
}

void BudgetEnforcer::record_trip(BudgetTrip trip, const Simulator& simulator) {
  report_.tripped = trip;
  report_.events_executed = simulator.events_executed();
  report_.sim_now = simulator.now();
  report_.pending_events = simulator.queue().size();
  if (trip == BudgetTrip::storm) {
    report_.window_span = last_window_span_;
    const double span_seconds = last_window_span_.to_seconds();
    report_.window_events_per_sim_second =
        span_seconds > 0.0 ? static_cast<double>(budget_.storm_window) /
                                 span_seconds
                           : 0.0;
  }

  // Pending-event census: group by dynamic type. std::map keys the census
  // deterministically by name; the report then orders by count (largest
  // first), breaking ties by name, so the same trip always yields the
  // same top_pending bytes.
  std::map<std::string, std::uint64_t> census;
  auto tally = [&census](const Event& event) {
    census[demangled(typeid(event).name())] += 1;
  };
  simulator.queue().for_each_pending(tally);

  std::vector<std::pair<std::string, std::uint64_t>> ranked;
  ranked.reserve(census.size());
  for (auto& [name, count] : census) ranked.emplace_back(name, count);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > kTopPendingClasses) ranked.resize(kTopPendingClasses);
  report_.top_pending.clear();
  for (auto& [name, count] : ranked) {
    report_.top_pending.push_back({std::move(name), count});
  }
}

WallClockWatchdog::WallClockWatchdog(Simulator& simulator,
                                     std::chrono::milliseconds limit)
    : simulator_{simulator},
      thread_{[this, limit] { watch(limit); }} {}

WallClockWatchdog::~WallClockWatchdog() { disarm(); }

void WallClockWatchdog::disarm() {
  {
    std::lock_guard<std::mutex> hold{mu_};
    disarmed_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool WallClockWatchdog::fired() const {
  std::lock_guard<std::mutex> hold{mu_};
  return fired_;
}

void WallClockWatchdog::watch(std::chrono::milliseconds limit) {
  std::unique_lock<std::mutex> hold{mu_};
  if (cv_.wait_for(hold, limit, [this] { return disarmed_; })) {
    return;  // disarmed in time: the run finished on its own
  }
  fired_ = true;
  simulator_.request_abort();
}

}  // namespace halfback::sim
