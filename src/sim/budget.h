// Run budgets: deterministic limits a simulation run must stay inside, and
// the structured report produced when one trips.
//
// The rc3×adversarial×seed-42 storm (ROADMAP, PR 8) showed that a single
// pathological cell can balloon to tens of millions of events and crawl for
// minutes before anyone notices. A RunBudget turns that failure mode into a
// fast, structured abort: the simulator checks the budget before each
// dispatch and, on a trip, stops with a BudgetReport naming which limit
// tripped, how far the run got, and what event classes dominate the pending
// queue — enough to triage the storm from the report alone.
//
// Determinism contract: the event-count, sim-horizon, and storm checks are
// pure functions of the event stream, so a budgeted run either completes
// bit-identically to the unbudgeted run or aborts at the same event on
// every replay. The wall-clock watchdog is the one deliberately
// non-deterministic piece: it can only request an abort (recorded as
// BudgetTrip::wall_clock), never alter a completed run's results, so
// fault-free golden trace hashes stay bit-identical whether or not a
// watchdog was armed.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/annotations.h"
#include "sim/time.h"

namespace halfback::sim {

class Simulator;

/// Limits for one run. A zero field disables that check; a
/// default-constructed RunBudget enforces nothing.
struct RunBudget {
  /// Abort after this many executed events (0 = unlimited).
  std::uint64_t max_events = 0;

  /// Abort once the next event's deadline passes this horizon
  /// (zero = unlimited). Distinct from run_until(): the horizon is a
  /// tripwire with a report, not a normal end of run.
  Time max_sim_time = Time::zero();

  /// Storm detector window, in events (0 = detector off). Each time the
  /// window fills, the detector compares events dispatched against sim
  /// time elapsed; a run that burns `storm_window` events while the sim
  /// clock advances less than storm_window / storm_events_per_sim_second
  /// is livelocked or storming and is aborted.
  std::uint64_t storm_window = 0;

  /// Dispatch-rate threshold for the storm detector, in events per
  /// simulated second. Only meaningful with storm_window > 0.
  double storm_events_per_sim_second = 0.0;

  /// True if any check is enabled.
  bool any() const {
    return max_events > 0 || max_sim_time > Time::zero() || storm_window > 0;
  }
};

/// Which limit ended the run.
enum class BudgetTrip : std::uint8_t {
  none = 0,
  event_count,  ///< RunBudget::max_events exhausted
  sim_horizon,  ///< next event past RunBudget::max_sim_time
  storm,        ///< dispatch rate over RunBudget::storm_events_per_sim_second
  wall_clock,   ///< WallClockWatchdog (or other abort request) fired
};

std::string_view to_string(BudgetTrip trip);

/// One pending-event class in the post-trip census: demangled event type
/// name plus how many instances sit in the queue.
struct PendingClassCount {
  std::string type_name;
  std::uint64_t count = 0;
};

/// Structured account of a tripped budget, filled at the abort point.
struct BudgetReport {
  BudgetTrip tripped = BudgetTrip::none;
  std::uint64_t events_executed = 0;  ///< dispatched before the trip
  Time sim_now;                       ///< sim clock at the trip
  std::uint64_t pending_events = 0;   ///< queue depth at the trip

  /// Storm-detector state at the trip (meaningful for BudgetTrip::storm):
  /// sim time spanned by the last full window and the dispatch rate over it.
  Time window_span;
  double window_events_per_sim_second = 0.0;

  /// Pending-event census, largest class first (ties by name): the "top
  /// timer classes" a storm triage starts from.
  std::vector<PendingClassCount> top_pending;

  /// One human-readable line, e.g. for a quarantine manifest detail field.
  std::string summary() const HB_EFFECTS(alloc);
};

/// Budget checks for one Simulator run. Install with
/// Simulator::set_budget(); the simulator consults before_dispatch() ahead
/// of every event and calls record_trip() when a check (or an external
/// abort request) fires.
///
/// The per-event path is the two inline compares in before_dispatch();
/// everything that allocates (the census, the report) runs only at the
/// abort point.
class BudgetEnforcer {
 public:
  explicit BudgetEnforcer(RunBudget budget) : budget_{budget} {}

  const RunBudget& budget() const { return budget_; }

  /// Check the budget against the event about to run. `next` is its
  /// deadline, `executed` the number of events dispatched so far. Returns
  /// the first limit the dispatch would break, or BudgetTrip::none.
  BudgetTrip before_dispatch(Time next, std::uint64_t executed) {
    if (budget_.max_events > 0 && executed >= budget_.max_events) {
      return BudgetTrip::event_count;
    }
    if (budget_.max_sim_time > Time::zero() && next > budget_.max_sim_time) {
      return BudgetTrip::sim_horizon;
    }
    if (budget_.storm_window > 0) {
      if (window_events_ == 0) window_start_ = next;
      if (++window_events_ >= budget_.storm_window) {
        const Time span = next - window_start_;
        window_events_ = 0;
        const double span_seconds = span.to_seconds();
        const double events = static_cast<double>(budget_.storm_window);
        if (span_seconds <= 0.0 ||
            events / span_seconds > budget_.storm_events_per_sim_second) {
          last_window_span_ = span;
          return BudgetTrip::storm;
        }
      }
    }
    return BudgetTrip::none;
  }

  /// Record the abort: fill the report from the simulator's state,
  /// including the pending-event census. Called once, at the trip. The
  /// census builds strings and a map, so the contract is alloc + throw
  /// (bad_alloc from the containers); it never runs on the per-event path.
  void record_trip(BudgetTrip trip, const Simulator& simulator)
      HB_EFFECTS(alloc, throw);

  bool tripped() const { return report_.tripped != BudgetTrip::none; }
  const BudgetReport& report() const { return report_; }

  /// Reset for a fresh run (clears the report and the detector window).
  void reset() {
    report_ = BudgetReport{};
    window_events_ = 0;
    window_start_ = Time::zero();
    last_window_span_ = Time::zero();
  }

 private:
  RunBudget budget_;
  BudgetReport report_;
  std::uint64_t window_events_ = 0;
  Time window_start_;
  Time last_window_span_;
};

/// Wall-clock safety net for a run that the deterministic budgets missed.
///
/// Arms a watcher thread that, after `limit` of real time, asks the
/// simulator to abort (Simulator::request_abort()); the budgeted dispatch
/// loop notices the request at the next event boundary and stops with
/// BudgetTrip::wall_clock. The watchdog can only abort — it never touches
/// simulator state directly — so a run that completes before the limit is
/// bit-identical to an unwatched run.
///
/// disarm() (also run by the destructor) wakes the watcher and joins it;
/// after disarm() returns, fired() is stable.
class WallClockWatchdog {
 public:
  WallClockWatchdog(Simulator& simulator, std::chrono::milliseconds limit);
  ~WallClockWatchdog();
  WallClockWatchdog(const WallClockWatchdog&) = delete;
  WallClockWatchdog& operator=(const WallClockWatchdog&) = delete;

  /// Stop the watcher (idempotent). Blocks until the thread joins.
  void disarm() HB_EFFECTS(block);

  /// True if the limit elapsed and an abort was requested.
  bool fired() const HB_EFFECTS(block);

 private:
  void watch(std::chrono::milliseconds limit) HB_EFFECTS(block);

  Simulator& simulator_;
  // std::condition_variable requires the raw std::mutex, which carries no
  // capability attribute (see annotations.h), so the guard relation is
  // stated here instead of via HB_GUARDED_BY: disarmed_ and fired_ are
  // read/written only under mu_.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  bool fired_ = false;
  std::thread thread_;
};

}  // namespace halfback::sim
