// Byte counts as a unit, not a number.
//
// Bytes is deliberately a *transparent* strong type: it converts implicitly
// to and from std::uint64_t so that interface types can carry the unit in
// their type while arithmetic-heavy call sites (workload sampling, byte
// accounting, tests) keep reading like plain integer code. The value it
// adds is at API boundaries — a `sim::Bytes flow_bytes` parameter cannot be
// confused with a count of packets or kilobytes — not in forbidding math.
#pragma once

#include <cstdint>

namespace halfback::sim {

/// An amount of data in whole bytes.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr Bytes(std::uint64_t count) : count_{count} {}  // NOLINT(google-explicit-constructor)

  static constexpr Bytes kilobytes(double kb) {
    return Bytes{static_cast<std::uint64_t>(kb * 1e3)};
  }
  static constexpr Bytes megabytes(double mb) {
    return Bytes{static_cast<std::uint64_t>(mb * 1e6)};
  }
  static constexpr Bytes zero() { return Bytes{0}; }

  constexpr std::uint64_t count() const { return count_; }
  constexpr operator std::uint64_t() const { return count_; }  // NOLINT(google-explicit-constructor)

  /// Floating-point views for the statistics edges (mirrors Time::to_ms).
  constexpr double to_kb() const { return static_cast<double>(count_) * 1e-3; }
  constexpr double to_mb() const { return static_cast<double>(count_) * 1e-6; }

  constexpr bool is_zero() const { return count_ == 0; }

  Bytes& operator+=(Bytes other) {
    count_ += other.count_;
    return *this;
  }
  Bytes& operator-=(Bytes other) {
    count_ -= other.count_;
    return *this;
  }

  // Comparisons and arithmetic go through the std::uint64_t conversion; a
  // member operator<=> would make `bytes < 100` ambiguous against it.

 private:
  std::uint64_t count_ = 0;
};

namespace literals {
constexpr Bytes operator""_bytes(unsigned long long v) {
  return Bytes{static_cast<std::uint64_t>(v)};
}
constexpr Bytes operator""_kb(unsigned long long v) {
  return Bytes::kilobytes(static_cast<double>(v));
}
constexpr Bytes operator""_mb(unsigned long long v) {
  return Bytes::megabytes(static_cast<double>(v));
}
}  // namespace literals

}  // namespace halfback::sim
