// Link and pacing rates.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace halfback::sim {

/// A data rate in bits per second.
///
/// The zero rate is valid and means "never transmits"; callers must not ask
/// a zero rate for a serialization time.
class DataRate {
 public:
  constexpr DataRate() = default;

  static constexpr DataRate bits_per_second(double bps) { return DataRate{bps}; }
  static constexpr DataRate kilobits_per_second(double kbps) {
    return DataRate{kbps * 1e3};
  }
  static constexpr DataRate megabits_per_second(double mbps) {
    return DataRate{mbps * 1e6};
  }
  static constexpr DataRate gigabits_per_second(double gbps) {
    return DataRate{gbps * 1e9};
  }
  /// Rate that transmits `bytes` bytes per `interval`.
  static constexpr DataRate bytes_per(std::int64_t bytes, Time interval) {
    return DataRate{static_cast<double>(bytes) * 8.0 * 1e9 /
                    static_cast<double>(interval.ns())};
  }

  constexpr double bps() const { return bps_; }
  constexpr double bytes_per_second() const { return bps_ / 8.0; }
  constexpr bool is_zero() const { return bps_ <= 0.0; }

  /// Time to serialize `bytes` bytes at this rate. Requires a nonzero rate.
  constexpr Time transmission_time(std::int64_t bytes) const {
    return Time::seconds(static_cast<double>(bytes) * 8.0 / bps_);
  }

  constexpr DataRate operator*(double k) const { return DataRate{bps_ * k}; }
  constexpr DataRate operator/(double k) const { return DataRate{bps_ / k}; }
  constexpr double operator/(DataRate other) const { return bps_ / other.bps_; }
  constexpr auto operator<=>(const DataRate&) const = default;

 private:
  explicit constexpr DataRate(double bps) : bps_{bps} {}
  double bps_ = 0.0;
};

}  // namespace halfback::sim
