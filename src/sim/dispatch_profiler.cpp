#include "sim/dispatch_profiler.h"

#include <algorithm>

#if __has_include(<cxxabi.h>)
#include <cstdlib>
#include <cxxabi.h>
#define HALFBACK_HAS_CXA_DEMANGLE 1
#endif

namespace halfback::sim {
namespace {

// Same fallback discipline as the budget census (budget.cpp): the raw
// mangled name is still deterministic within one binary.
std::string demangled_type(const char* raw) {
#ifdef HALFBACK_HAS_CXA_DEMANGLE
  int status = 0;
  char* text = abi::__cxa_demangle(raw, nullptr, nullptr, &status);
  if (text != nullptr) {
    std::string out{text};
    std::free(text);
    return out;
  }
#endif
  return std::string{raw};
}

}  // namespace

std::vector<DispatchProfiler::Row> DispatchProfiler::rows() const {
  std::vector<Row> out;
  out.reserve(kSlots + 1);
  for (const Slot& s : slots_) {
    if (s.key == nullptr) continue;
    out.push_back(Row{demangled_type(s.key->name()), s.count, s.cycles});
  }
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.type_name < b.type_name;
  });
  if (overflow_count_ > 0) {
    out.push_back(Row{"(other)", overflow_count_, overflow_cycles_});
  }
  return out;
}

}  // namespace halfback::sim
