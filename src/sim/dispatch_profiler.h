// In-sim cost profiler: where do the ~11M events/s go?
//
// A DispatchProfiler, installed via Simulator::set_profiler(), is tapped
// once per dispatched event with the event's dynamic type and the cycle
// count its fire() consumed. It answers "which event class dominates the
// run" ahead of any hot-path work — per-type dispatch counts and cycle
// attribution, exported into the run manifest.
//
// Cost model: like BudgetEnforcer, installation is opt-in; without a
// profiler the dispatch loops are exactly the unprofiled seed paths. The
// per-event tap is a fixed-capacity open-addressing probe keyed by the
// event's type_info address — pure stores, no allocation, no throwing —
// so the tap is legal on the dispatch path and its HB_EFFECTS contract is
// empty.
//
// Determinism: per-type dispatch *counts* are a pure function of the event
// stream and replay bit-identically. Cycle counts come from the CPU's raw
// cycle counter and are explicitly nondeterministic, like the manifest's
// wall_time_seconds — they attribute cost, they are not part of any golden
// output. Installing a profiler never perturbs the simulation (it only
// observes), so trace hashes stay bit-identical.
//
// Cycle attribution is *sampled*: reading the cycle counter twice per
// event costs more than the dispatch itself (rdtsc serializes), so only
// every kSamplePeriod-th dispatch is timed. Which dispatches are sampled
// is a function of the dispatch index alone — deterministic given the
// event stream — and counts are still exact for every dispatch. Cycle
// columns are therefore ~1/kSamplePeriod of the true totals; their
// *shares* are what the manifest reports them for.
#pragma once

#include <cstdint>
#include <string>
#include <typeinfo>
#include <vector>

#include "sim/annotations.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace halfback::sim {

/// Raw monotonic cycle stamp for cost attribution. Deliberately not a
/// wall clock (wall clocks are banned in src/ — lint rule
/// `nondeterminism`): the value feeds only the profiler's cycle columns,
/// which are documented as nondeterministic, never simulation state.
inline std::uint64_t read_cycle_counter() HB_EFFECTS() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v = 0;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return 0;
#endif
}

/// Per-event-type dispatch counter and cycle-attribution table.
class DispatchProfiler {
 public:
  /// Fixed table size; must be a power of two. A run has a handful of
  /// event classes (timers, TX-done, arrivals) — 256 slots is far past any
  /// real population; overflow lands in an aggregate bucket.
  static constexpr std::size_t kSlots = 256;

  /// Cycle-sampling period; must be a power of two. Dispatch i is timed
  /// iff i % kSamplePeriod == 0, so sampling is deterministic in the
  /// dispatch index and the unsampled path never reads the cycle counter.
  static constexpr std::uint64_t kSamplePeriod = 64;

  /// Export-time view of one event class.
  struct Row {
    std::string type_name;      ///< demangled event class name
    std::uint64_t count = 0;    ///< dispatches (deterministic)
    std::uint64_t cycles = 0;   ///< attributed cycles (nondeterministic)
  };

  DispatchProfiler() { slots_.resize(kSlots); }

  /// True when the *next* note_dispatch() falls on a sampling tick: the
  /// dispatch loop brackets fire() with cycle-counter reads only then.
  bool should_sample() const HB_EFFECTS() {
    return (total_ & (kSamplePeriod - 1)) == 0;
  }

  /// Per-dispatch tap: attribute one fire() of `type`; `cycles` is the
  /// measured cost on sampling ticks and 0 otherwise. Fixed-table probe,
  /// pure stores — safe on the dispatch path.
  void note_dispatch(const std::type_info& type,
                     std::uint64_t cycles) HB_EFFECTS() {
    ++total_;
    // Event streams run the same type for long stretches (timer storms,
    // packet trains); one pointer compare beats the hash+probe then.
    if (&type == last_key_) {
      ++last_slot_->count;
      last_slot_->cycles += cycles;
      return;
    }
    std::size_t i =
        (reinterpret_cast<std::uintptr_t>(&type) >> 4) & (kSlots - 1);
    for (std::size_t probes = 0; probes < kSlots; ++probes) {
      Slot& s = slots_[i];
      if (s.key == &type) {
        ++s.count;
        s.cycles += cycles;
        last_key_ = &type;
        last_slot_ = &s;
        return;
      }
      if (s.key == nullptr) {
        s.key = &type;
        s.count = 1;
        s.cycles = cycles;
        last_key_ = &type;
        last_slot_ = &s;
        return;
      }
      i = (i + 1) & (kSlots - 1);
    }
    ++overflow_count_;
    overflow_cycles_ += cycles;
  }

  /// Total dispatches attributed (deterministic).
  std::uint64_t total_dispatches() const { return total_; }

  /// Export the table, demangled and deterministically ordered (count
  /// descending, then name). Overflowed classes aggregate into one
  /// "(other)" row. Export path only.
  std::vector<Row> rows() const HB_EFFECTS(alloc, throw);

  /// Reset for a fresh run.
  void reset() HB_EFFECTS() {
    for (Slot& s : slots_) s = Slot{};
    total_ = 0;
    overflow_count_ = 0;
    overflow_cycles_ = 0;
    last_key_ = nullptr;
    last_slot_ = nullptr;
  }

 private:
  struct Slot {
    const std::type_info* key = nullptr;
    std::uint64_t count = 0;
    std::uint64_t cycles = 0;
  };

  std::vector<Slot> slots_;
  const std::type_info* last_key_ = nullptr;  ///< memo of the hot slot
  Slot* last_slot_ = nullptr;                 ///< (slots_ never reallocates)
  std::uint64_t total_ = 0;
  std::uint64_t overflow_count_ = 0;
  std::uint64_t overflow_cycles_ = 0;
};

}  // namespace halfback::sim
