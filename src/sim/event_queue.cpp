// lint: hot-path — event dispatch; no per-event allocation or type erasure.
#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "audit/auditor.h"

namespace halfback::sim {

/// Slab node backing the std::function shim. Owned by the queue; recycled
/// through a free list. `token_` identifies one incarnation (one schedule),
/// so stale EventHandles to a recycled node are inert.
class FunctionEvent final : public Event {
 public:
  explicit FunctionEvent(EventQueue* owner) : owner_{owner} {}

 private:
  friend class EventQueue;
  friend class EventHandle;

  // lint: fire-may-throw(runs an arbitrary user callback; throws must reach run()'s caller)
  void fire() override {
    // Move the callback out and recycle the node first, so the callback can
    // schedule (and the queue can reuse this node) while it runs.
    // lint: function-ok(shim node; only setup/test events reach this path)
    std::function<void()> fn = std::move(fn_);  // lint: hot-ok(moves the preallocated callback out; no construction)
    owner_->release_shim(this);
    fn();
  }

  EventQueue* owner_;
  std::function<void()> fn_;  // lint: function-ok(shim node storage)
  std::uint64_t token_ = 0;
  FunctionEvent* next_free_ = nullptr;
};

Event::~Event() {
  if (queued()) queue_->cancel_event(*this);
}

void EventHandle::cancel() {
  if (node_ == nullptr || node_->token_ != token_ || !node_->queued()) return;
  EventQueue* owner = node_->owner_;
  owner->cancel_event(*node_);
  owner->release_shim(node_);
}

bool EventHandle::pending() const {
  return node_ != nullptr && node_->token_ == token_ && node_->queued();
}

EventQueue::EventQueue() = default;
EventQueue::~EventQueue() { clear(); }

// --- heap maintenance --------------------------------------------------------

// The heap is 4-ary: for pointer-light slots the extra compares per level
// are all against contiguous memory, while the halved depth halves the
// slot moves and the scattered heap_index_ writes that go with them.

void EventQueue::sift_up(std::size_t i) {
  const HeapSlot s = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(s, heap_[parent])) break;
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, s);
}

void EventQueue::sift_down(std::size_t i) {
  const HeapSlot s = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first = kArity * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + kArity, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], s)) break;
    place(i, heap_[best]);
    i = best;
  }
  place(i, s);
}

Event* EventQueue::pop_root() {
  Event* root = heap_.front().event;
  root->heap_index_ = Event::kNotQueued;
  root->queue_ = nullptr;
  const HeapSlot last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    place(0, last);
    sift_down(0);
  }
  return root;
}

// --- intrusive API -----------------------------------------------------------

void EventQueue::schedule_event(Event& event, Time at) {
  if (event.queued()) {
    // lint: hot-ok(programming-error guard; unreachable in a correct scheduler)
    throw std::logic_error{"EventQueue::schedule_event on an already-queued event"};
  }
  event.at_ = at;
  event.seq_ = next_seq_++;
  event.queue_ = this;
  // lint: hot-ok(amortized heap growth; steady state reuses capacity)
  heap_.push_back(HeapSlot{at, event.seq_, &event});
  event.heap_index_ = heap_.size() - 1;
  sift_up(event.heap_index_);
}

void EventQueue::reschedule_event(Event& event, Time at) {
  if (!event.queued()) {
    schedule_event(event, at);
    return;
  }
  event.at_ = at;
  event.seq_ = next_seq_++;
  const std::size_t i = event.heap_index_;
  heap_[i].at = at;
  heap_[i].seq = event.seq_;
  // The new position can be in either direction; one of the sifts is a no-op.
  sift_up(i);
  sift_down(event.heap_index_);
}

void EventQueue::cancel_event(Event& event) {
  if (!event.queued() || event.queue_ != this) return;
  const std::size_t i = event.heap_index_;
  event.heap_index_ = Event::kNotQueued;
  event.queue_ = nullptr;
  const HeapSlot last = heap_.back();
  heap_.pop_back();
  if (i < heap_.size()) {
    place(i, last);
    sift_up(i);
    sift_down(last.event->heap_index_);
  }
}

// --- std::function shim ------------------------------------------------------

FunctionEvent* EventQueue::acquire_shim() {
  if (free_head_ != nullptr) {
    FunctionEvent* node = free_head_;
    free_head_ = node->next_free_;
    node->next_free_ = nullptr;
    return node;
  }
  slab_.push_back(std::make_unique<FunctionEvent>(this));
  return slab_.back().get();
}

void EventQueue::release_shim(FunctionEvent* node) {
  ++node->token_;  // invalidate outstanding handles to this incarnation
  node->fn_ = nullptr;
  node->next_free_ = free_head_;
  free_head_ = node;
}

// lint: function-ok(the one sanctioned shim; setup/test path, slab-recycled)
EventHandle EventQueue::schedule(Time at, std::function<void()> fn) {
  FunctionEvent* node = acquire_shim();
  node->fn_ = std::move(fn);
  schedule_event(*node, at);
  return EventHandle{node, node->token_};
}

// --- queue driving -----------------------------------------------------------

Time EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error{"EventQueue::next_time on empty queue"};
  return heap_.front().at;
}

Time EventQueue::run_next() {
  if (heap_.empty()) throw std::logic_error{"EventQueue::run_next on empty queue"};
  Event* event = pop_root();
  const Time at = event->at_;
  HALFBACK_AUDIT_HOOK(auditor_, on_event_run(at, event->seq_));
  // fire() may reschedule the event, or even destroy it (a timer firing its
  // owner's completion path); do not touch it after this call.
  event->fire();
  return at;
}

void EventQueue::clear() {
  for (const HeapSlot& slot : heap_) {
    slot.event->heap_index_ = Event::kNotQueued;
    slot.event->queue_ = nullptr;
  }
  heap_.clear();
  // Recycle shim nodes (they are ours); intrusive events stay with their
  // owners. A non-empty fn_ marks a node that was scheduled and neither
  // fired nor cancelled — exactly the ones clear() just dropped.
  for (const std::unique_ptr<FunctionEvent>& node : slab_) {
    if (node->fn_ != nullptr) release_shim(node.get());
  }
}

}  // namespace halfback::sim
