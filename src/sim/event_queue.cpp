#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

#include "audit/auditor.h"

namespace halfback::sim {

void EventHandle::cancel() {
  if (state_ && !state_->fired) state_->cancelled = true;
}

bool EventHandle::pending() const {
  return state_ && !state_->fired && !state_->cancelled;
}

EventHandle EventQueue::schedule(Time at, std::function<void()> fn) {
  auto state = std::make_shared<EventHandle::State>();
  heap_.push(Entry{at, next_seq_++, std::move(fn), state});
  return EventHandle{std::move(state)};
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() && heap_.top().state->cancelled) heap_.pop();
}

bool EventQueue::empty() const {
  skip_cancelled();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  skip_cancelled();
  if (heap_.empty()) throw std::logic_error{"EventQueue::next_time on empty queue"};
  return heap_.top().at;
}

Time EventQueue::run_next() {
  skip_cancelled();
  if (heap_.empty()) throw std::logic_error{"EventQueue::run_next on empty queue"};
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because the entry is popped immediately and never compared again.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  entry.state->fired = true;
  HALFBACK_AUDIT_HOOK(auditor_, on_event_run(entry.at, entry.seq));
  entry.fn();
  return entry.at;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace halfback::sim
