// The event queue at the heart of the discrete-event engine.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace halfback::audit {
class Auditor;
}  // namespace halfback::audit

namespace halfback::sim {

/// Cancellable handle to a scheduled event.
///
/// EventHandle is a weak reference: cancelling after the event fired (or was
/// already cancelled) is a no-op. A default-constructed handle refers to
/// nothing.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Safe to call at any time.
  void cancel();

  /// True if the event is still scheduled to fire.
  bool pending() const;

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> state) : state_{std::move(state)} {}
  std::shared_ptr<State> state_;
};

/// Time-ordered queue of callbacks. Events at equal times fire in
/// scheduling order (FIFO), which keeps runs deterministic. Cancelled
/// entries are discarded lazily when they reach the head of the queue.
class EventQueue {
 public:
  /// Schedule `fn` at absolute time `at`.
  EventHandle schedule(Time at, std::function<void()> fn);

  /// True if no live (non-cancelled) event remains.
  bool empty() const;

  /// Time of the earliest live event. Requires !empty().
  Time next_time() const;

  /// Pop and run the earliest live event; returns its time.
  /// Requires !empty().
  Time run_next();

  /// Drop all pending events.
  void clear();

  /// Install an audit observer (nullptr detaches). The queue reports each
  /// dispatch so the auditor can verify time monotonicity and FIFO
  /// tie-break order. Owned by the caller; ignored unless the build defines
  /// HALFBACK_AUDIT.
  void set_auditor(audit::Auditor* auditor) { auditor_ = auditor; }
  audit::Auditor* auditor() const { return auditor_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Discard cancelled events at the head.
  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  audit::Auditor* auditor_ = nullptr;
};

}  // namespace halfback::sim
