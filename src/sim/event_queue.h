// The event queue at the heart of the discrete-event engine.
//
// The queue is an indexed binary min-heap over *intrusive* events: an Event
// carries its own deadline, FIFO sequence number, and heap slot, so
// scheduling, O(log n) cancellation, and in-place reschedule never allocate.
// Components that fire the same logical event repeatedly (retransmission
// timers, pacers, link transmissions) embed an Event subclass — usually via
// sim::Timer — and reuse it for the lifetime of the component.
//
// A thin `schedule(Time, std::function)` shim remains for tests, examples,
// and one-shot experiment setup (see docs/architecture.md, "Event & memory
// model", for when the shim is acceptable). Shim events are drawn from a
// slab of recycled FunctionEvent nodes owned by the queue, so even the shim
// does not malloc per event in steady state — only when the number of
// simultaneously-pending shim events reaches a new high-water mark.
//
// lint: hot-path — per-event code; no per-event allocation or type erasure.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/annotations.h"
#include "sim/function_ref.h"
#include "sim/time.h"

namespace halfback::audit {
class Auditor;
}  // namespace halfback::audit

namespace halfback::sim {

class EventQueue;
class FunctionEvent;

/// Base class for intrusive events.
///
/// An Event is scheduled into at most one EventQueue at a time. The queue
/// does not own it: the embedding component does, and must keep it alive
/// while queued (destroying a queued Event removes it from its queue
/// first). Dispatch removes the event from the queue *before* calling
/// fire(), so a callback may immediately reschedule the same object.
class Event {
 public:
  Event() = default;
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  virtual ~Event();

  /// True while the event sits in a queue awaiting dispatch.
  bool queued() const { return heap_index_ != kNotQueued; }

  /// Absolute dispatch time; meaningful only while queued().
  Time deadline() const { return at_; }

 protected:
  /// Dispatch hook. Called with the event already removed from the queue.
  virtual void fire() = 0;

 private:
  friend class EventQueue;
  static constexpr std::size_t kNotQueued = static_cast<std::size_t>(-1);

  Time at_;
  std::uint64_t seq_ = 0;            ///< FIFO tie-break, fresh per (re)schedule
  std::size_t heap_index_ = kNotQueued;
  EventQueue* queue_ = nullptr;      ///< the queue holding us, while queued
};

/// Cancellable handle to an event scheduled through the std::function shim.
///
/// EventHandle is a weak reference: cancelling after the event fired (or was
/// already cancelled) is a no-op. A default-constructed handle refers to
/// nothing. Handles must not outlive the queue that issued them.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing. Safe to call at any time while the
  /// issuing queue is alive.
  void cancel();

  /// True if the event is still scheduled to fire.
  bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(FunctionEvent* node, std::uint64_t token)
      : node_{node}, token_{token} {}

  FunctionEvent* node_ = nullptr;
  std::uint64_t token_ = 0;  ///< incarnation the handle refers to
};

/// Time-ordered queue of events. Events at equal times fire in scheduling
/// order (FIFO), which keeps runs deterministic; a reschedule counts as a
/// fresh scheduling for tie-break purposes.
class EventQueue {
 public:
  EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue();

  // --- intrusive API (the allocation-free fast path) -----------------------

  /// Insert `event` at absolute time `at`. The event must not be queued.
  void schedule_event(Event& event, Time at) HB_EFFECTS(alloc, throw);

  /// Move `event` to absolute time `at`, in place, whether or not it is
  /// currently queued. Equivalent to cancel + schedule (the event receives
  /// a fresh FIFO sequence number) but without touching the heap twice.
  void reschedule_event(Event& event, Time at) HB_EFFECTS(alloc, throw);

  /// Remove `event` if queued; no-op otherwise.
  void cancel_event(Event& event) HB_EFFECTS();

  // --- std::function shim --------------------------------------------------

  /// Schedule `fn` at absolute time `at` on a recycled slab node.
  // lint: function-ok(the one sanctioned shim; setup/test path, slab-recycled)
  EventHandle schedule(Time at, std::function<void()> fn)
      HB_EFFECTS(alloc, throw);

  // --- queue driving -------------------------------------------------------

  /// True if no event remains.
  bool empty() const { return heap_.empty(); }

  /// Number of pending events.
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest event. Requires !empty().
  Time next_time() const;

  /// The earliest event, without removing it. Requires !empty(). Read-only
  /// peek for the instrumented dispatch loop: the profiler captures the
  /// event's dynamic type here, before run_next() hands the event to a
  /// fire() that may destroy or reschedule it.
  const Event& peek_next() const HB_EFFECTS() { return *heap_[0].event; }

  /// Pop and run the earliest event; returns its time. Requires !empty().
  Time run_next() HB_EFFECTS(alloc, throw, rng);

  /// Drop all pending events.
  void clear();

  /// Visit every pending event in heap (unspecified) order. Read-only
  /// diagnostics walk — the budget machinery uses it for the post-trip
  /// pending-event census; callers must not schedule or cancel from `fn`.
  void for_each_pending(FunctionRef<void(const Event&)> fn) const {
    for (const HeapSlot& slot : heap_) fn(*slot.event);
  }

  /// Number of shim slab nodes ever allocated (diagnostics: steady-state
  /// shim traffic must not grow this).
  std::size_t shim_slab_size() const { return slab_.size(); }

  /// Install an audit observer (nullptr detaches). The queue reports each
  /// dispatch so the auditor can verify time monotonicity and FIFO
  /// tie-break order. Owned by the caller; ignored unless the build defines
  /// HALFBACK_AUDIT.
  void set_auditor(audit::Auditor* auditor) { auditor_ = auditor; }
  audit::Auditor* auditor() const { return auditor_; }

 private:
  friend class EventHandle;
  friend class FunctionEvent;

  /// Heap entry: the ordering key is replicated next to the event pointer
  /// so sift comparisons read the contiguous heap array instead of chasing
  /// pointers to scattered Event nodes (the dominant cost at depth).
  struct HeapSlot {
    Time at;
    std::uint64_t seq = 0;
    Event* event = nullptr;
  };

  /// Heap branching factor (4-ary: shallower than binary, and the extra
  /// per-level compares all hit contiguous slots).
  static constexpr std::size_t kArity = 4;

  /// Heap ordering: earliest deadline first, FIFO on ties.
  static bool earlier(const HeapSlot& a, const HeapSlot& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void place(std::size_t i, const HeapSlot& s) {
    heap_[i] = s;
    s.event->heap_index_ = i;
  }

  /// Detach the heap root (marking it unqueued) and restore heap order.
  Event* pop_root();

  FunctionEvent* acquire_shim();
  void release_shim(FunctionEvent* node);

  std::vector<HeapSlot> heap_;
  std::uint64_t next_seq_ = 0;

  // Shim slab: every FunctionEvent ever created lives here; free nodes are
  // chained through their next_free_ pointers.
  std::vector<std::unique_ptr<FunctionEvent>> slab_;
  FunctionEvent* free_head_ = nullptr;

  audit::Auditor* auditor_ = nullptr;
};

}  // namespace halfback::sim
