// A non-owning, non-allocating callable reference: two words (object
// pointer + invoker function pointer), trivially copyable, never touches
// the heap. This is what the static sender pipeline uses instead of
// std::function for per-flow callbacks — completion notifications, timer
// callbacks — where the callee outlives the reference by construction.
//
// lint: hot-path — FunctionRef is invoked per packet; nothing here may
// allocate.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace halfback::sim {

template <class Sig>
class FunctionRef;  // undefined; only the function-signature partial below

/// Usage:
///   * `FunctionRef<void(int)> ref{callable};` — binds to any lvalue
///     callable (lambda, functor). Temporaries are rejected at compile
///     time: the referent must outlive the reference, and a temporary
///     never does.
///   * `FunctionRef<void()>::from<&T::method>(obj)` — binds a member
///     function with zero per-call overhead beyond one indirect call (the
///     member call is inlined into the generated thunk).
///   * default-constructed / `nullptr` is empty; test with `operator bool`.
template <class R, class... Args>
class FunctionRef<R(Args...)> {
 public:
  constexpr FunctionRef() = default;
  constexpr FunctionRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Bind an lvalue callable. Intentionally not accepting rvalues: a
  /// FunctionRef never extends lifetimes.
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F& callable)  // NOLINT(google-explicit-constructor)
      : object_(const_cast<void*>(static_cast<const void*>(&callable))),
        invoke_([](void* object, Args... args) -> R {
          return (*static_cast<F*>(object))(std::forward<Args>(args)...);
        }) {}

  /// Bind a member function: `FunctionRef<void()>::from<&T::method>(obj)`.
  template <auto Method, class T>
  static FunctionRef from(T& object) {
    FunctionRef ref;
    ref.object_ = const_cast<void*>(static_cast<const void*>(&object));
    ref.invoke_ = [](void* o, Args... args) -> R {
      return (static_cast<T*>(o)->*Method)(std::forward<Args>(args)...);
    };
    return ref;
  }

  R operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void* object_ = nullptr;
  R (*invoke_)(void*, Args...) = nullptr;
};

}  // namespace halfback::sim
