#include "sim/random.h"

#include <numeric>
#include <stdexcept>

namespace halfback::sim {

std::size_t Random::weighted_index(std::span<const double> weights) {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument{"weighted_index: nonpositive total weight"};
  double x = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace halfback::sim
