// Deterministic randomness for experiments.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "sim/annotations.h"
#include "sim/time.h"

namespace halfback::sim {

/// A seeded random stream. Every experiment owns its streams explicitly so
/// that a run is reproducible bit-for-bit from its seed, and so that adding
/// draws to one component does not perturb another component's sequence.
class Random {
 public:
  explicit Random(std::uint64_t seed) : engine_{seed} {}

  /// Derive an independent child stream; `salt` distinguishes siblings.
  Random fork(std::uint64_t salt) HB_EFFECTS(rng) {
    std::uint64_t child_seed = engine_() ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Random{child_seed};
  }

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>{0.0, 1.0}(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  Time exponential(Time mean) { return Time::seconds(exponential(mean.to_seconds())); }

  /// Log-normal given the mean and sigma of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>{mu, sigma}(engine_);
  }

  /// Pareto with given scale (minimum) and shape alpha.
  double pareto(double scale, double alpha) {
    double u = uniform();
    return scale / std::pow(1.0 - u, 1.0 / alpha);
  }

  /// Log-uniform in [lo, hi): uniform in the exponent.
  double log_uniform(double lo, double hi) {
    return lo * std::pow(hi / lo, uniform());
  }

  /// Index into a discrete weight vector proportional to its entries.
  std::size_t weighted_index(std::span<const double> weights)
      HB_EFFECTS(throw);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace halfback::sim
