#include "sim/simulator.h"

namespace halfback::sim {

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    now_ = queue_.next_time();  // clock is correct inside the callback
    queue_.run_next();
    ++events_executed_;
  }
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++events_executed_;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

}  // namespace halfback::sim
