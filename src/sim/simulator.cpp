#include "sim/simulator.h"

#include "sim/budget.h"
#include "telemetry/hub.h"

namespace halfback::sim {

// The dispatch loops are duplicated so the telemetry null test is hoisted
// out of the loop entirely: with no hub installed the per-event cost is
// exactly the seed's. The budgeted loop is a third, separate path entered
// only when an enforcer is installed, so unbudgeted runs keep the seed's
// per-event cost and event-for-event behavior.

void Simulator::run() {
  if (budget_ != nullptr) {
    run_budgeted(Time::infinity());
    return;
  }
  stopped_ = false;
  if (telemetry_ != nullptr) {
    while (!stopped_ && !queue_.empty()) {
      telemetry_->on_event_dispatched(queue_.size());
      now_ = queue_.next_time();  // clock is correct inside the callback
      queue_.run_next();
      ++events_executed_;
    }
    return;
  }
  while (!stopped_ && !queue_.empty()) {
    now_ = queue_.next_time();  // clock is correct inside the callback
    queue_.run_next();
    ++events_executed_;
  }
}

void Simulator::run_until(Time deadline) {
  if (budget_ != nullptr) {
    run_budgeted(deadline);
    return;
  }
  stopped_ = false;
  if (telemetry_ != nullptr) {
    while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
      telemetry_->on_event_dispatched(queue_.size());
      now_ = queue_.next_time();
      queue_.run_next();
      ++events_executed_;
    }
    if (!stopped_ && now_ < deadline) now_ = deadline;
    return;
  }
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++events_executed_;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

void Simulator::run_budgeted(Time deadline) {
  stopped_ = false;
  // A tripped budget is sticky: once a run aborted, further driving (e.g.
  // the next poll slice of a deadline-censored loop) stays aborted.
  if (budget_->tripped()) {
    stopped_ = true;
    return;
  }
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    if (abort_requested_.load(std::memory_order_relaxed)) {
      budget_->record_trip(BudgetTrip::wall_clock, *this);
      stopped_ = true;
      return;
    }
    const Time next = queue_.next_time();
    const BudgetTrip trip = budget_->before_dispatch(next, events_executed_);
    if (trip != BudgetTrip::none) {
      budget_->record_trip(trip, *this);
      stopped_ = true;
      return;
    }
    if (telemetry_ != nullptr) telemetry_->on_event_dispatched(queue_.size());
    now_ = next;
    queue_.run_next();
    ++events_executed_;
  }
  // Mirror run_until()'s clock advance; run() enters with an infinite
  // deadline, which must not drag the clock to the sentinel.
  if (!stopped_ && !deadline.is_infinite() && now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace halfback::sim
