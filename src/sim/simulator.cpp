#include "sim/simulator.h"

#include "telemetry/hub.h"

namespace halfback::sim {

// The dispatch loops are duplicated so the telemetry null test is hoisted
// out of the loop entirely: with no hub installed the per-event cost is
// exactly the seed's.

void Simulator::run() {
  stopped_ = false;
  if (telemetry_ != nullptr) {
    while (!stopped_ && !queue_.empty()) {
      telemetry_->on_event_dispatched(queue_.size());
      now_ = queue_.next_time();  // clock is correct inside the callback
      queue_.run_next();
      ++events_executed_;
    }
    return;
  }
  while (!stopped_ && !queue_.empty()) {
    now_ = queue_.next_time();  // clock is correct inside the callback
    queue_.run_next();
    ++events_executed_;
  }
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  if (telemetry_ != nullptr) {
    while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
      telemetry_->on_event_dispatched(queue_.size());
      now_ = queue_.next_time();
      queue_.run_next();
      ++events_executed_;
    }
    if (!stopped_ && now_ < deadline) now_ = deadline;
    return;
  }
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++events_executed_;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

}  // namespace halfback::sim
