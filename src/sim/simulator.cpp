#include "sim/simulator.h"

#include <typeinfo>

#include "sim/budget.h"
#include "sim/dispatch_profiler.h"
#include "telemetry/hub.h"

namespace halfback::sim {

// The dispatch loops are duplicated so the telemetry null test is hoisted
// out of the loop entirely: with no hub installed the per-event cost is
// exactly the seed's. The instrumented loop is a third, separate path
// entered only when a budget enforcer or a dispatch profiler is installed,
// so uninstrumented runs keep the seed's per-event cost and event-for-event
// behavior.

void Simulator::run() {
  if (budget_ != nullptr || profiler_ != nullptr) {
    run_instrumented(Time::infinity());
    return;
  }
  stopped_ = false;
  if (telemetry_ != nullptr) {
    // Count and heap peak are tracked locally and flushed once at slice
    // exit: an integer compare per event instead of two instrument taps.
    std::size_t heap_peak = 0;
    const std::uint64_t executed_before = events_executed_;
    while (!stopped_ && !queue_.empty()) {
      if (queue_.size() > heap_peak) heap_peak = queue_.size();
      now_ = queue_.next_time();  // clock is correct inside the callback
      queue_.run_next();
      ++events_executed_;
    }
    telemetry_->on_run_slice_done(events_executed_ - executed_before,
                                  heap_peak);
    return;
  }
  while (!stopped_ && !queue_.empty()) {
    now_ = queue_.next_time();  // clock is correct inside the callback
    queue_.run_next();
    ++events_executed_;
  }
}

void Simulator::run_until(Time deadline) {
  if (budget_ != nullptr || profiler_ != nullptr) {
    run_instrumented(deadline);
    return;
  }
  stopped_ = false;
  if (telemetry_ != nullptr) {
    std::size_t heap_peak = 0;
    const std::uint64_t executed_before = events_executed_;
    while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
      if (queue_.size() > heap_peak) heap_peak = queue_.size();
      now_ = queue_.next_time();
      queue_.run_next();
      ++events_executed_;
    }
    telemetry_->on_run_slice_done(events_executed_ - executed_before,
                                  heap_peak);
    if (!stopped_ && now_ < deadline) now_ = deadline;
    return;
  }
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++events_executed_;
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

void Simulator::run_instrumented(Time deadline) {
  stopped_ = false;
  // A tripped budget is sticky: once a run aborted, further driving (e.g.
  // the next poll slice of a deadline-censored loop) stays aborted.
  if (budget_ != nullptr && budget_->tripped()) {
    stopped_ = true;
    return;
  }
  std::size_t heap_peak = 0;
  const std::uint64_t executed_before = events_executed_;
  // next_time() is out-of-line (it carries an empty-queue check); read it
  // once per iteration, not once in the condition and again in the body.
  while (!stopped_ && !queue_.empty()) {
    const Time next = queue_.next_time();
    if (next > deadline) break;
    if (budget_ != nullptr) {
      if (abort_requested_.load(std::memory_order_relaxed)) {
        budget_->record_trip(BudgetTrip::wall_clock, *this);
        stopped_ = true;
        break;
      }
      const BudgetTrip trip =
          budget_->before_dispatch(next, events_executed_);
      if (trip != BudgetTrip::none) {
        budget_->record_trip(trip, *this);
        stopped_ = true;
        break;
      }
    }
    if (queue_.size() > heap_peak) heap_peak = queue_.size();
    now_ = next;
    if (profiler_ != nullptr) {
      // The dynamic type must be read before run_next(): fire() may
      // destroy or reschedule the event object. Cycle reads bracket
      // fire() only on sampling ticks; counting is every dispatch.
      const std::type_info& type = typeid(queue_.peek_next());
      if (profiler_->should_sample()) {
        const std::uint64_t entered = read_cycle_counter();
        queue_.run_next();
        profiler_->note_dispatch(type, read_cycle_counter() - entered);
      } else {
        queue_.run_next();
        profiler_->note_dispatch(type, 0);
      }
    } else {
      queue_.run_next();
    }
    ++events_executed_;
  }
  // Flushed on every exit, including budget trips mid-slice: the metrics
  // must account for the events that did run before the abort.
  if (telemetry_ != nullptr) {
    telemetry_->on_run_slice_done(events_executed_ - executed_before,
                                  heap_peak);
  }
  // Mirror run_until()'s clock advance; run() enters with an infinite
  // deadline, which must not drag the clock to the sentinel.
  if (!stopped_ && !deadline.is_infinite() && now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace halfback::sim
