// The simulation driver: owns virtual time and the event queue.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>

#include "audit/auditor.h"
#include "sim/annotations.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/time.h"

namespace halfback::telemetry {
class Hub;
}

namespace halfback::sim {

class BudgetEnforcer;
class DispatchProfiler;

/// A single simulation run.
///
/// Components hold a Simulator& and use it to read the clock, schedule
/// future work, and draw randomness. The simulator is not thread-safe; a
/// run is strictly single-threaded (parallelism, where wanted, is across
/// independent Simulator instances).
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : random_{seed} {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Time now() const HB_EFFECTS() { return now_; }

  /// Schedule `fn` to run after `delay` (>= 0) from now. This is the
  /// std::function shim over the intrusive event core — fine for tests,
  /// examples, and one-shot setup; hot-path components embed an Event or
  /// sim::Timer and use the schedule_event family below instead.
  EventHandle schedule(Time delay, std::function<void()> fn)
      HB_EFFECTS(alloc, throw) {
    HALFBACK_AUDIT_HOOK(auditor_, on_event_scheduled(now_, now_ + delay));
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at absolute time `at` (>= now).
  EventHandle schedule_at(Time at, std::function<void()> fn)
      HB_EFFECTS(alloc, throw) {
    HALFBACK_AUDIT_HOOK(auditor_, on_event_scheduled(now_, at));
    return queue_.schedule(at, std::move(fn));
  }

  /// Schedule an intrusive event after `delay` (>= 0) from now. The event
  /// must not already be queued; the caller keeps ownership and must keep
  /// it alive until it fires or is cancelled.
  void schedule_event(Time delay, Event& event) HB_EFFECTS(alloc, throw) {
    HALFBACK_AUDIT_HOOK(auditor_, on_event_scheduled(now_, now_ + delay));
    queue_.schedule_event(event, now_ + delay);
  }

  /// Schedule an intrusive event at absolute time `at` (>= now).
  void schedule_event_at(Time at, Event& event) HB_EFFECTS(alloc, throw) {
    HALFBACK_AUDIT_HOOK(auditor_, on_event_scheduled(now_, at));
    queue_.schedule_event(event, at);
  }

  /// Move an intrusive event to `delay` from now, scheduling it if idle.
  /// Equivalent to cancel + schedule (fresh FIFO tie-break) without
  /// touching the heap twice.
  void reschedule_event(Time delay, Event& event) HB_EFFECTS(alloc, throw) {
    HALFBACK_AUDIT_HOOK(auditor_, on_event_scheduled(now_, now_ + delay));
    queue_.reschedule_event(event, now_ + delay);
  }

  /// Move an intrusive event to absolute time `at`, scheduling it if idle.
  void reschedule_event_at(Time at, Event& event) HB_EFFECTS(alloc, throw) {
    HALFBACK_AUDIT_HOOK(auditor_, on_event_scheduled(now_, at));
    queue_.reschedule_event(event, at);
  }

  /// Remove an intrusive event if queued; no-op otherwise.
  void cancel_event(Event& event) HB_EFFECTS() { queue_.cancel_event(event); }

  /// Run until the event queue drains or stop() is called.
  void run() HB_EFFECTS(alloc, throw, rng);

  /// Run events up to and including time `deadline`; afterwards
  /// now() == deadline unless the queue drained earlier or stop() fired.
  void run_until(Time deadline) HB_EFFECTS(alloc, throw, rng);

  /// Make run()/run_until() return after the current event completes.
  void stop() HB_EFFECTS() { stopped_ = true; }

  bool stopped() const { return stopped_; }

  Random& random() { return random_; }
  EventQueue& queue() { return queue_; }
  const EventQueue& queue() const { return queue_; }

  /// Number of events executed so far (for diagnostics and benchmarks).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Install an audit observer for this run (nullptr detaches). The pointer
  /// is shared with the event queue; network components reach it through
  /// their Simulator&. Owned by the caller and ignored unless the build
  /// defines HALFBACK_AUDIT. Install before any traffic starts so the
  /// auditor's shadow accounting sees every transition.
  void set_auditor(audit::Auditor* auditor) {
    auditor_ = auditor;
    queue_.set_auditor(auditor);
  }
  audit::Auditor* auditor() const { return auditor_; }

  /// Install a telemetry hub for this run (nullptr detaches). Owned by the
  /// caller. Purely observational: the hub counts dispatches and heap
  /// depth but never schedules or draws randomness, so installing one does
  /// not change the run (trace hashes stay bit-identical).
  void set_telemetry(telemetry::Hub* hub) { telemetry_ = hub; }
  telemetry::Hub* telemetry() const { return telemetry_; }

  /// Install a budget enforcer for this run (nullptr detaches). Owned by
  /// the caller. With an enforcer installed, run()/run_until() check the
  /// budget before every dispatch and stop early — recording a
  /// BudgetReport on the enforcer — when a limit trips; without one the
  /// dispatch loops are exactly the unbudgeted seed paths.
  void set_budget(BudgetEnforcer* budget) { budget_ = budget; }
  BudgetEnforcer* budget() const { return budget_; }

  /// Install a dispatch profiler for this run (nullptr detaches). Owned by
  /// the caller. Like the budget enforcer, installation selects the
  /// instrumented dispatch loop; without one the loops are exactly the
  /// unprofiled seed paths. The profiler only observes (per-type counts
  /// and cycles), so trace hashes stay bit-identical.
  void set_profiler(DispatchProfiler* profiler) { profiler_ = profiler; }
  DispatchProfiler* profiler() const { return profiler_; }

  /// Ask the run to abort at the next event boundary (recorded as
  /// BudgetTrip::wall_clock when a budget enforcer is installed). The one
  /// cross-thread entry point: safe to call from a watchdog thread while
  /// the run executes. Without an enforcer the request is ignored — the
  /// deterministic loops stay byte-identical to the seed.
  void request_abort() { abort_requested_ = true; }
  bool abort_requested() const {
    return abort_requested_.load(std::memory_order_relaxed);
  }

 private:
  /// Dispatch loop used when a budget enforcer or a dispatch profiler is
  /// installed: identical to the plain loops plus the per-event budget
  /// check, the abort flag poll, and the profiler tap — each guarded by
  /// its own null test. run() enters it with an infinite deadline.
  void run_instrumented(Time deadline) HB_EFFECTS(alloc, throw, rng);

  Time now_ = Time::zero();
  EventQueue queue_;
  Random random_;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
  audit::Auditor* auditor_ = nullptr;
  telemetry::Hub* telemetry_ = nullptr;
  BudgetEnforcer* budget_ = nullptr;
  DispatchProfiler* profiler_ = nullptr;
  std::atomic<bool> abort_requested_{false};
};

}  // namespace halfback::sim
