#include "sim/time.h"

#include <cmath>
#include <cstdio>

namespace halfback::sim {

std::string Time::to_string() const {
  if (is_infinite()) return "+inf";
  char buf[32];
  const double abs_ns = std::abs(static_cast<double>(ns_));
  if (abs_ns >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fs", to_seconds());
  } else if (abs_ns >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fms", to_ms());
  } else if (abs_ns >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3fus", to_us());
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

}  // namespace halfback::sim
