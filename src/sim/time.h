// Virtual time for the discrete-event simulator.
//
// Time is a strong type wrapping a signed 64-bit nanosecond count. All
// simulator components express instants and durations with it; the only
// conversions to floating point happen at the edges (statistics, printing).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace halfback::sim {

/// An instant or duration in virtual time, with nanosecond resolution.
///
/// Time is totally ordered and supports the usual affine arithmetic
/// (difference of instants is a duration; instant plus duration is an
/// instant). A default-constructed Time is zero.
class Time {
 public:
  constexpr Time() = default;

  /// Named constructors. `seconds`/`milliseconds`/`microseconds` accept
  /// fractional values; the result is truncated toward zero to whole
  /// nanoseconds.
  static constexpr Time nanoseconds(std::int64_t ns) { return Time{ns}; }
  static constexpr Time microseconds(double us) {
    return Time{static_cast<std::int64_t>(us * 1e3)};
  }
  static constexpr Time milliseconds(double ms) {
    return Time{static_cast<std::int64_t>(ms * 1e6)};
  }
  static constexpr Time seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e9)};
  }
  static constexpr Time zero() { return Time{0}; }
  /// A sentinel later than any reachable simulation time.
  static constexpr Time infinity() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_ms() const { return static_cast<double>(ns_) * 1e-6; }
  constexpr double to_us() const { return static_cast<double>(ns_) * 1e-3; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_infinite() const {
    return ns_ == std::numeric_limits<std::int64_t>::max();
  }

  constexpr Time operator+(Time other) const { return Time{ns_ + other.ns_}; }
  constexpr Time operator-(Time other) const { return Time{ns_ - other.ns_}; }
  constexpr Time operator*(double k) const {
    return Time{static_cast<std::int64_t>(static_cast<double>(ns_) * k)};
  }
  constexpr Time operator/(double k) const {
    return Time{static_cast<std::int64_t>(static_cast<double>(ns_) / k)};
  }
  constexpr double operator/(Time other) const {
    return static_cast<double>(ns_) / static_cast<double>(other.ns_);
  }
  Time& operator+=(Time other) {
    ns_ += other.ns_;
    return *this;
  }
  Time& operator-=(Time other) {
    ns_ -= other.ns_;
    return *this;
  }

  constexpr auto operator<=>(const Time&) const = default;

  /// Human-readable rendering with an auto-selected unit, e.g. "12.5ms".
  std::string to_string() const;

 private:
  explicit constexpr Time(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

constexpr Time operator*(double k, Time t) { return t * k; }

namespace literals {
constexpr Time operator""_ns(unsigned long long v) {
  return Time::nanoseconds(static_cast<std::int64_t>(v));
}
constexpr Time operator""_us(unsigned long long v) {
  return Time::microseconds(static_cast<double>(v));
}
constexpr Time operator""_ms(unsigned long long v) {
  return Time::milliseconds(static_cast<double>(v));
}
constexpr Time operator""_s(unsigned long long v) {
  return Time::seconds(static_cast<double>(v));
}
constexpr Time operator""_ms(long double v) {
  return Time::milliseconds(static_cast<double>(v));
}
constexpr Time operator""_s(long double v) {
  return Time::seconds(static_cast<double>(v));
}
}  // namespace literals

}  // namespace halfback::sim
