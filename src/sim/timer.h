// Reusable one-shot timer over the intrusive event core.
//
// lint: hot-path — arming/cancelling happen per packet; nothing here may
// allocate after bind().
#pragma once

#include <functional>
#include <utility>

#include "sim/event_queue.h"
#include "sim/function_ref.h"
#include "sim/simulator.h"

namespace halfback::sim {

/// A timer a component embeds once and re-arms for its whole lifetime: the
/// callback is bound at construction (one allocation, ever), and arming,
/// re-arming, and cancelling are heap operations on the embedded event —
/// nothing on the per-event path allocates. This is what retransmission
/// timers, pacers, delayed-ACK timers, and link transmissions use instead
/// of the `Simulator::schedule` std::function shim.
///
/// A Timer is one-shot: it fires once per arming and must be re-armed from
/// the callback for periodic behaviour. Arming while pending replaces the
/// deadline (semantically cancel + schedule: the timer moves to the back of
/// the FIFO tie-break at its new time).
///
/// Lifetime: the owning component must not outlive the Simulator while the
/// timer is pending. Destroying a pending Timer cancels it.
class Timer final : public Event {
 public:
  /// An unbound timer; call bind() before the first schedule.
  Timer() = default;

  // lint: function-ok(callback bound once at construction, never per event)
  Timer(Simulator& simulator, std::function<void()> callback) {
    bind(simulator, std::move(callback));
  }

  ~Timer() override { cancel(); }

  /// Attach the simulator and callback. Must be called exactly once, before
  /// the first schedule_after/schedule_at.
  // lint: function-ok(callback bound once at bind() time, never per event)
  void bind(Simulator& simulator, std::function<void()> callback) {
    simulator_ = &simulator;
    callback_ = std::move(callback);
  }
  bool bound() const { return simulator_ != nullptr; }

  /// (Re)arm to fire after `delay` (>= 0) from now.
  void schedule_after(Time delay) HB_EFFECTS(alloc, throw) {
    simulator_->reschedule_event(delay, *this);
  }

  /// (Re)arm to fire at absolute time `at` (>= now).
  void schedule_at(Time at) HB_EFFECTS(alloc, throw) {
    simulator_->reschedule_event_at(at, *this);
  }

  /// Disarm; no-op if not pending. Safe to call from inside the callback.
  void cancel() {
    if (queued()) simulator_->cancel_event(*this);
  }

  /// True while armed and not yet fired.
  bool pending() const { return queued(); }

 private:
  // lint: fire-may-throw(runs an arbitrary user callback; throws must reach run()'s caller)
  void fire() override { callback_(); }

  Simulator* simulator_ = nullptr;
  std::function<void()> callback_;  // lint: function-ok(bound once, reused)
};

/// Timer over a FunctionRef instead of a std::function: two words of
/// callback state, zero allocations ever (not even at bind time), one
/// indirect call to fire. This is what the static sender pipeline embeds
/// for its per-flow timers (RTO, SYN retransmission, pacing quanta, probe
/// ticks): with thousands to millions of concurrent flows, the per-timer
/// footprint and the bind-time allocation of std::function both matter.
///
/// Semantics are identical to Timer (one-shot, re-arm from the callback,
/// arming while pending replaces the deadline and moves to the back of
/// the FIFO tie-break). Lifetime: the callback's referent must outlive
/// the timer's pending window; in the sender pipeline the referent *is*
/// the owning component, so this holds by construction.
class StaticTimer final : public Event {
 public:
  StaticTimer() = default;
  ~StaticTimer() override { cancel(); }

  /// Attach the simulator and callback. Must be called exactly once,
  /// before the first schedule_after/schedule_at.
  void bind(Simulator& simulator, FunctionRef<void()> callback) {
    simulator_ = &simulator;
    callback_ = callback;
  }
  bool bound() const { return simulator_ != nullptr; }

  /// (Re)arm to fire after `delay` (>= 0) from now.
  void schedule_after(Time delay) HB_EFFECTS(alloc, throw) {
    simulator_->reschedule_event(delay, *this);
  }

  /// (Re)arm to fire at absolute time `at` (>= now).
  void schedule_at(Time at) HB_EFFECTS(alloc, throw) {
    simulator_->reschedule_event_at(at, *this);
  }

  /// Disarm; no-op if not pending. Safe to call from inside the callback.
  void cancel() {
    if (queued()) simulator_->cancel_event(*this);
  }

  /// True while armed and not yet fired.
  bool pending() const { return queued(); }

 private:
  // lint: fire-may-throw(runs an arbitrary user callback; throws must reach run()'s caller)
  void fire() override { callback_(); }

  Simulator* simulator_ = nullptr;
  FunctionRef<void()> callback_;
};

}  // namespace halfback::sim
