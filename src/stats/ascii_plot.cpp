#include "stats/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace halfback::stats {

namespace {

constexpr char kGlyphs[] = "*o+x#@%&$~";

double transform_x(double x, bool log_x) {
  return log_x ? std::log10(std::max(x, 1e-12)) : x;
}

std::string format_number(double v) {
  char buf[32];
  if (v == 0) return "0";
  const double av = std::fabs(v);
  if (av >= 1e6 || av < 1e-2) {
    std::snprintf(buf, sizeof buf, "%.1e", v);
  } else if (av >= 100) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", v);
  }
  return buf;
}

}  // namespace

std::string ascii_plot(const std::vector<PlotSeries>& series,
                       const PlotOptions& options) {
  const int width = std::max(options.width, 16);
  const int height = std::max(options.height, 6);

  // Bounds across all series.
  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -min_x;
  double min_y = std::numeric_limits<double>::infinity();
  double max_y = -min_y;
  bool any = false;
  for (const PlotSeries& s : series) {
    for (const auto& [x, y] : s.points) {
      const double tx = transform_x(x, options.log_x);
      min_x = std::min(min_x, tx);
      max_x = std::max(max_x, tx);
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
      any = true;
    }
  }
  if (!any) return "(no data)\n";
  if (max_x == min_x) max_x = min_x + 1;
  if (max_y == min_y) max_y = min_y + 1;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));

  auto plot_point = [&](double x, double y, char glyph) {
    const double tx = transform_x(x, options.log_x);
    int col = static_cast<int>(std::lround((tx - min_x) / (max_x - min_x) * (width - 1)));
    int row = static_cast<int>(std::lround((y - min_y) / (max_y - min_y) * (height - 1)));
    col = std::clamp(col, 0, width - 1);
    row = std::clamp(row, 0, height - 1);
    // Row 0 is the top of the chart.
    grid[static_cast<std::size_t>(height - 1 - row)][static_cast<std::size_t>(col)] =
        glyph;
  };

  // Connect consecutive points of each series with linear interpolation so
  // sparse series still read as curves.
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof kGlyphs - 1)];
    const auto& pts = series[si].points;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      plot_point(pts[i].first, pts[i].second, glyph);
      if (i + 1 < pts.size()) {
        const double x0 = transform_x(pts[i].first, options.log_x);
        const double x1 = transform_x(pts[i + 1].first, options.log_x);
        const int col0 = static_cast<int>((x0 - min_x) / (max_x - min_x) * (width - 1));
        const int col1 = static_cast<int>((x1 - min_x) / (max_x - min_x) * (width - 1));
        const int steps = std::abs(col1 - col0);
        for (int step = 1; step < steps; ++step) {
          const double t = static_cast<double>(step) / steps;
          const double y = pts[i].second + t * (pts[i + 1].second - pts[i].second);
          const double x_lin = x0 + t * (x1 - x0);
          const double x_back = options.log_x ? std::pow(10.0, x_lin) : x_lin;
          plot_point(x_back, y, glyph);
        }
      }
    }
  }

  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  const std::string y_hi = format_number(max_y);
  const std::string y_lo = format_number(min_y);
  const std::size_t margin = std::max(y_hi.size(), y_lo.size()) + 1;

  for (int row = 0; row < height; ++row) {
    std::string prefix(margin, ' ');
    if (row == 0) prefix = y_hi + std::string(margin - y_hi.size(), ' ');
    if (row == height - 1) prefix = y_lo + std::string(margin - y_lo.size(), ' ');
    out += prefix + "|" + grid[static_cast<std::size_t>(row)] + "\n";
  }
  out += std::string(margin, ' ') + "+" + std::string(static_cast<std::size_t>(width), '-') + "\n";
  const std::string x_lo =
      format_number(options.log_x ? std::pow(10.0, min_x) : min_x);
  const std::string x_hi =
      format_number(options.log_x ? std::pow(10.0, max_x) : max_x);
  std::string x_axis = std::string(margin + 1, ' ') + x_lo;
  const std::size_t pad = margin + 1 + static_cast<std::size_t>(width) > x_axis.size() + x_hi.size()
                              ? margin + 1 + static_cast<std::size_t>(width) - x_axis.size() - x_hi.size()
                              : 1;
  x_axis += std::string(pad, ' ') + x_hi;
  out += x_axis + "\n";
  if (!options.x_label.empty() || !options.y_label.empty()) {
    out += std::string(margin + 1, ' ') + "x: " + options.x_label +
           "   y: " + options.y_label + "\n";
  }
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += std::string(margin + 1, ' ');
    out += kGlyphs[si % (sizeof kGlyphs - 1)];
    out += " = " + series[si].label + "\n";
  }
  return out;
}

std::string ascii_histogram(const std::vector<HistogramBin>& bins,
                            const HistogramOptions& options) {
  // Trim leading/trailing empty bins; interior gaps stay.
  std::size_t first = bins.size();
  std::size_t last = 0;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (bins[i].count == 0) continue;
    first = std::min(first, i);
    last = i;
  }
  if (first == bins.size()) return "(no data)\n";
  std::vector<HistogramBin> rows(bins.begin() + static_cast<std::ptrdiff_t>(first),
                                 bins.begin() + static_cast<std::ptrdiff_t>(last) + 1);

  // Merge adjacent bins pairwise until the row budget fits — the same
  // halving a log-linear layout does when you drop one sub-bucket bit.
  const std::size_t max_rows = static_cast<std::size_t>(std::max(options.max_rows, 4));
  while (rows.size() > max_rows) {
    std::vector<HistogramBin> merged;
    merged.reserve(rows.size() / 2 + 1);
    for (std::size_t i = 0; i < rows.size(); i += 2) {
      HistogramBin bin = rows[i];
      if (i + 1 < rows.size()) {
        bin.upper = rows[i + 1].upper;
        bin.count += rows[i + 1].count;
      }
      merged.push_back(bin);
    }
    rows = std::move(merged);
  }

  std::uint64_t peak = 0;
  for (const HistogramBin& bin : rows) peak = std::max(peak, bin.count);

  // Edge labels, right-aligned to a common width.
  std::vector<std::string> lo_labels;
  std::vector<std::string> hi_labels;
  std::size_t lo_width = 0;
  std::size_t hi_width = 0;
  for (const HistogramBin& bin : rows) {
    lo_labels.push_back(format_number(bin.lower));
    hi_labels.push_back(format_number(bin.upper));
    lo_width = std::max(lo_width, lo_labels.back().size());
    hi_width = std::max(hi_width, hi_labels.back().size());
  }

  const int width = std::max(options.width, 8);
  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::uint64_t count = rows[i].count;
    const int len = peak == 0 ? 0
                              : static_cast<int>((count * static_cast<std::uint64_t>(width) +
                                                  peak - 1) /
                                                 peak);
    const auto pad = [](std::size_t total, std::size_t used) {
      return total > used ? total - used : std::size_t{0};
    };
    out += "[";
    out.append(pad(lo_width, lo_labels[i].size()), ' ');
    out += lo_labels[i] + ", ";
    out.append(pad(hi_width, hi_labels[i].size()), ' ');
    out += hi_labels[i] + ")";
    if (!options.unit.empty()) out += " " + options.unit;
    out += " |";
    out.append(static_cast<std::size_t>(len), '#');
    out.append(static_cast<std::size_t>(width - len) + 2, ' ');
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(count));
    out += buf;
    out += "\n";
  }
  return out;
}

}  // namespace halfback::stats
