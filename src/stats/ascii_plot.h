// Terminal plotting for the bench harnesses: render (x, y) series as an
// ASCII chart so the paper figures' *shapes* are visible directly in bench
// output, without external tooling.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace halfback::stats {

/// One named series of points.
struct PlotSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;
};

struct PlotOptions {
  int width = 72;    ///< plot area columns
  int height = 20;   ///< plot area rows
  bool log_x = false;
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Render series into a char grid with per-series glyphs and a legend.
/// Series are drawn in order; later series overwrite earlier ones where
/// they collide. Returns a multi-line string ending in '\n'.
std::string ascii_plot(const std::vector<PlotSeries>& series,
                       const PlotOptions& options = {});

/// One bin of a pre-binned histogram — e.g. a telemetry::Histogram bucket
/// (telemetry/export.h has the bridge) or any bespoke binning.
struct HistogramBin {
  double lower = 0.0;  ///< inclusive lower edge
  double upper = 0.0;  ///< exclusive upper edge
  std::uint64_t count = 0;
};

struct HistogramOptions {
  int width = 48;     ///< bar columns for the fullest row
  int max_rows = 20;  ///< adjacent bins merge pairwise until they fit
  std::string title;
  std::string unit;   ///< printed after the edge labels, e.g. "ms"
};

/// Render bins as horizontal count bars, one row per bin:
///
///   [  4.00,   8.00) ms |############                       123
///
/// Empty bins outside the occupied range are trimmed; interior empty bins
/// keep their row so gaps stay visible. When more than `max_rows` bins
/// survive trimming, adjacent bins merge pairwise (halving resolution, as
/// log-linear bucket layouts do) until they fit. Returns a multi-line
/// string ending in '\n', or "(no data)\n" when every count is zero.
std::string ascii_histogram(const std::vector<HistogramBin>& bins,
                            const HistogramOptions& options = {});

}  // namespace halfback::stats
