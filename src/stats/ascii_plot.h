// Terminal plotting for the bench harnesses: render (x, y) series as an
// ASCII chart so the paper figures' *shapes* are visible directly in bench
// output, without external tooling.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace halfback::stats {

/// One named series of points.
struct PlotSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;
};

struct PlotOptions {
  int width = 72;    ///< plot area columns
  int height = 20;   ///< plot area rows
  bool log_x = false;
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Render series into a char grid with per-series glyphs and a legend.
/// Series are drawn in order; later series overwrite earlier ones where
/// they collide. Returns a multi-line string ending in '\n'.
std::string ascii_plot(const std::vector<PlotSeries>& series,
                       const PlotOptions& options = {});

}  // namespace halfback::stats
