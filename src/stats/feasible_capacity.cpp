#include "stats/feasible_capacity.h"

#include <algorithm>
#include <stdexcept>

namespace halfback::stats {

double feasible_capacity(const std::vector<SweepPoint>& sweep,
                         const CollapseCriterion& criterion) {
  if (sweep.empty()) throw std::invalid_argument{"empty sweep"};
  std::vector<SweepPoint> points = sweep;
  std::sort(points.begin(), points.end(),
            [](const SweepPoint& a, const SweepPoint& b) {
              return a.utilization < b.utilization;
            });
  const double base = points.front().mean_fct;
  const double limit_rel = base * criterion.fct_factor;
  double feasible = 0.0;
  for (const SweepPoint& p : points) {
    const bool collapsed =
        p.mean_fct > limit_rel ||
        (criterion.fct_absolute > 0.0 && p.mean_fct > criterion.fct_absolute);
    if (collapsed) break;
    feasible = p.utilization;
  }
  return feasible;
}

}  // namespace halfback::stats
