// Feasible-capacity detection (§4, §4.3.1).
//
// The paper defines feasible network utilization as "the maximum network
// utilization achievable before the throughput collapses", observed in the
// Fig. 12 / Fig. 17 sweeps as the utilization where mean FCT spikes.
#pragma once

#include <utility>
#include <vector>

namespace halfback::stats {

/// One sweep point: utilization (fraction) and the mean FCT measured there
/// (any consistent unit).
struct SweepPoint {
  double utilization = 0.0;
  double mean_fct = 0.0;
};

struct CollapseCriterion {
  /// Collapse when mean FCT exceeds `fct_factor` x the FCT at the lowest
  /// utilization in the sweep...
  double fct_factor = 3.0;
  /// ...or exceeds this absolute bound (same unit as mean_fct), whichever
  /// detects earlier. Zero disables the absolute bound.
  double fct_absolute = 0.0;
};

/// The largest utilization in the sweep whose FCT is still below the
/// collapse criterion; points after the first collapse do not resurrect
/// feasibility (collapse is treated as monotone, matching the paper's
/// reading of Fig. 12). Returns 0 if even the first point collapsed.
double feasible_capacity(const std::vector<SweepPoint>& sweep,
                         const CollapseCriterion& criterion = {});

}  // namespace halfback::stats
