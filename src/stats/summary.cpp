#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace halfback::stats {

namespace {
void require_nonempty(const std::vector<double>& v) {
  if (v.empty()) throw std::logic_error{"Summary: no samples"};
}
}  // namespace

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::mean() const {
  require_nonempty(samples_);
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Summary::min() const {
  require_nonempty(samples_);
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  require_nonempty(samples_);
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const {
  require_nonempty(samples_);
  if (samples_.size() == 1) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (double s : samples_) ss += (s - m) * (s - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double p) const {
  require_nonempty(samples_);
  if (p < 0.0 || p > 100.0) throw std::invalid_argument{"percentile out of range"};
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double t = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - t) + samples_[hi] * t;
}

std::vector<Summary::CdfPoint> Summary::cdf(std::size_t max_points) const {
  require_nonempty(samples_);
  ensure_sorted();
  std::vector<CdfPoint> out;
  const std::size_t n = samples_.size();
  const std::size_t stride = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += stride) {
    out.push_back({samples_[i], 100.0 * static_cast<double>(i + 1) / static_cast<double>(n)});
  }
  if (out.back().percent < 100.0) out.push_back({samples_[n - 1], 100.0});
  return out;
}

std::vector<Summary::CdfPoint> Summary::ccdf(std::size_t max_points) const {
  std::vector<CdfPoint> points = cdf(max_points);
  for (CdfPoint& p : points) p.percent = 100.0 - p.percent;
  return points;
}

double Summary::fraction_at_most(double threshold) const {
  require_nonempty(samples_);
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), threshold);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double Summary::jain_fairness(std::span<const double> values) {
  if (values.empty()) throw std::logic_error{"jain_fairness: no values"};
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero allocations are trivially fair
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

}  // namespace halfback::stats
