// Sample statistics: mean, percentiles, CDF/CCDF extraction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace halfback::stats {

/// Accumulates scalar samples and answers summary queries. Samples are
/// retained (experiments here are small enough), so percentiles are exact.
class Summary {
 public:
  void add(double value) {
    samples_.push_back(value);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;

  /// Exact percentile by linear interpolation, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// CDF points (value, percent-of-samples <= value), one per sample,
  /// optionally downsampled to at most `max_points`.
  struct CdfPoint {
    double value = 0.0;
    double percent = 0.0;
  };
  std::vector<CdfPoint> cdf(std::size_t max_points = 200) const;

  /// Complementary CDF: (value, percent-of-samples > value).
  std::vector<CdfPoint> ccdf(std::size_t max_points = 200) const;

  /// Fraction of samples satisfying value <= threshold.
  double fraction_at_most(double threshold) const;

  const std::vector<double>& samples() const { return samples_; }

  /// Jain's fairness index over a set of per-entity allocations:
  /// (sum x)^2 / (n * sum x^2), in (0, 1], 1 = perfectly fair. Used by the
  /// TCP-friendliness analysis to summarize how evenly co-existing flows
  /// fared.
  static double jain_fairness(std::span<const double> values);

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace halfback::stats
