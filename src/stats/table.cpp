#include "stats/table.h"

#include <algorithm>
#include <cstdio>

namespace halfback::stats {

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out += cell;
      if (i + 1 < widths.size()) out.append(widths[i] - cell.size() + 2, ' ');
    }
    out += '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) emit(row);
  return out;
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += csv_escape(row[i]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

bool Table::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const std::string csv = to_csv();
  std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  return true;
}

void print_series(const std::string& title, const std::string& x_label,
                  const std::string& y_label,
                  const std::vector<std::pair<double, double>>& points) {
  std::printf("# %s\n# %s\t%s\n", title.c_str(), x_label.c_str(), y_label.c_str());
  for (const auto& [x, y] : points) std::printf("%g\t%g\n", x, y);
  std::printf("\n");
}

}  // namespace halfback::stats
