// Plain-text table/series printing for the bench harnesses: every bench
// binary prints the same rows/series the corresponding paper figure plots.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace halfback::stats {

/// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_{std::move(header)} {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Render to a string (and print() to stdout).
  std::string to_string() const;
  void print() const { std::fputs(to_string().c_str(), stdout); }

  /// RFC 4180-style CSV rendering (quotes cells containing separators).
  std::string to_csv() const;
  /// Write the CSV to `path`; returns false (and reports to stderr) on
  /// I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a named (x, y) series in gnuplot-friendly columns.
void print_series(const std::string& title, const std::string& x_label,
                  const std::string& y_label,
                  const std::vector<std::pair<double, double>>& points);

}  // namespace halfback::stats
