#include "stats/time_series.h"

namespace halfback::stats {

void TimeSeries::add_bytes(sim::Time at, std::uint64_t bytes) {
  if (at < sim::Time::zero()) return;
  const auto index = static_cast<std::size_t>(at.ns() / bucket_width_.ns());
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  buckets_[index] += bytes;
  total_bytes_ += bytes;
}

std::vector<TimeSeries::Sample> TimeSeries::throughput() const {
  std::vector<Sample> out;
  out.reserve(buckets_.size());
  const double seconds = bucket_width_.to_seconds();
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    Sample s;
    s.bucket_start = bucket_width_ * static_cast<double>(i);
    s.mbps = static_cast<double>(buckets_[i]) * 8.0 / seconds / 1e6;
    out.push_back(s);
  }
  return out;
}

}  // namespace halfback::stats
