// Bucketed time series, used for the Fig. 15 throughput traces.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/bytes.h"
#include "sim/data_rate.h"
#include "sim/time.h"

namespace halfback::stats {

/// Accumulates byte counts into fixed-width time buckets and reports the
/// per-bucket throughput. The paper's Fig. 15 counts "successfully
/// transmitted packets in every 60 ms".
class TimeSeries {
 public:
  explicit TimeSeries(sim::Time bucket_width) : bucket_width_{bucket_width} {}

  void add_bytes(sim::Time at, std::uint64_t bytes);

  struct Sample {
    sim::Time bucket_start;
    double mbps = 0.0;
  };

  /// Throughput per bucket from 0 to the last nonempty bucket.
  std::vector<Sample> throughput() const;

  sim::Time bucket_width() const { return bucket_width_; }
  std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  sim::Time bucket_width_;
  std::vector<std::uint64_t> buckets_;
  sim::Bytes total_bytes_;
};

}  // namespace halfback::stats
