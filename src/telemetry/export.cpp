#include "telemetry/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace halfback::telemetry {
namespace {

/// Nanoseconds rendered as microseconds with three decimals (trace_event
/// `ts`/`dur` are in microseconds; integer math keeps the text stable).
std::string micros(std::int64_t ns) {
  if (ns < 0) ns = 0;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000);
  return buf;
}

void write_histogram_fields(std::ostream& out, const Histogram& h) {
  out << "\"count\":" << h.count() << ",\"sum\":" << h.sum()
      << ",\"min\":" << h.min() << ",\"max\":" << h.max()
      << ",\"p50\":" << h.quantile_upper_bound(0.5)
      << ",\"p99\":" << h.quantile_upper_bound(0.99)
      << ",\"sub_bucket_bits\":" << h.sub_bucket_bits() << ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket_value(i) == 0) continue;
    if (!first) out << ',';
    first = false;
    out << '[' << Histogram::bucket_lower(i, h.sub_bucket_bits()) << ','
        << Histogram::bucket_upper(i, h.sub_bucket_bits()) << ','
        << h.bucket_value(i) << ']';
  }
  out << ']';
}

/// Metric names use dots as section separators; Prometheus wants [a-z_].
std::string prometheus_name(std::string_view name) {
  std::string out{name};
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 9007199254740992.0) {  // 2^53
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void write_metrics_jsonl(std::ostream& out, const MetricRegistry& registry) {
  for (const MetricRegistry::Entry& e : registry.entries()) {
    out << "{\"name\":\"" << json_escape(e.name) << "\",\"kind\":\""
        << to_string(e.kind) << "\",\"unit\":\"" << to_string(e.unit)
        << "\",\"help\":\"" << json_escape(e.help) << "\",";
    switch (e.kind) {
      case MetricKind::counter:
        out << "\"value\":" << registry.counter_at(e).value();
        break;
      case MetricKind::gauge:
        out << "\"value\":" << format_double(registry.gauge_at(e).value());
        break;
      case MetricKind::histogram:
        write_histogram_fields(out, registry.histogram_at(e));
        break;
    }
    out << "}\n";
  }
}

std::string metrics_jsonl(const MetricRegistry& registry) {
  std::ostringstream out;
  write_metrics_jsonl(out, registry);
  return out.str();
}

void write_prometheus(std::ostream& out, const MetricRegistry& registry) {
  for (const MetricRegistry::Entry& e : registry.entries()) {
    const std::string name = prometheus_name(e.name);
    if (!e.help.empty()) out << "# HELP " << name << ' ' << e.help << '\n';
    switch (e.kind) {
      case MetricKind::counter:
        out << "# TYPE " << name << " counter\n"
            << name << ' ' << registry.counter_at(e).value() << '\n';
        break;
      case MetricKind::gauge:
        out << "# TYPE " << name << " gauge\n"
            << name << ' ' << format_double(registry.gauge_at(e).value())
            << '\n';
        break;
      case MetricKind::histogram: {
        const Histogram& h = registry.histogram_at(e);
        out << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          if (h.bucket_value(i) == 0) continue;
          cumulative += h.bucket_value(i);
          out << name << "_bucket{le=\""
              << Histogram::bucket_upper(i, h.sub_bucket_bits()) << "\"} "
              << cumulative << '\n';
        }
        out << name << "_bucket{le=\"+Inf\"} " << h.count() << '\n'
            << name << "_sum " << h.sum() << '\n'
            << name << "_count " << h.count() << '\n';
        break;
      }
    }
  }
}

std::string prometheus_text(const MetricRegistry& registry) {
  std::ostringstream out;
  write_prometheus(out, registry);
  return out.str();
}

void write_chrome_trace(std::ostream& out, const FlightRecorder& recorder,
                        sim::Time end) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"flows\"}}";
  out << ",\n{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"links\"}}";

  for (std::size_t t = 0; t < recorder.tape_count(); ++t) {
    const Tape& tape = recorder.tape_at(t);
    const int pid = tape.track() == TrackKind::flow ? 1 : 2;
    const std::size_t tid = t + 1;
    std::string label = tape.label();
    if (label.empty()) {
      label = (pid == 1 ? "flow " : "link ") + std::to_string(tape.id());
    }
    out << ",\n{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(label) << "\"}}";

    const auto& phases = tape.phases();
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const sim::Time start = phases[i].start;
      const sim::Time stop = i + 1 < phases.size() ? phases[i + 1].start : end;
      const std::int64_t dur = stop.ns() - start.ns();
      out << ",\n{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
          << ",\"cat\":\"phase\",\"name\":\"" << to_string(phases[i].phase)
          << "\",\"ts\":" << micros(start.ns()) << ",\"dur\":" << micros(dur)
          << "}";
    }

    for (std::size_t i = 0; i < tape.size(); ++i) {
      const TapeEvent& ev = tape.event(i);
      // Phase transitions already render as duration spans above.
      if (ev.kind == TapeEventKind::phase_enter) continue;
      out << ",\n{\"ph\":\"i\",\"pid\":" << pid << ",\"tid\":" << tid
          << ",\"cat\":\"tape\",\"s\":\"t\",\"name\":\"" << to_string(ev.kind)
          << "\",\"ts\":" << micros(ev.at.ns()) << ",\"args\":{\"a\":" << ev.a
          << ",\"b\":" << ev.b << "}}";
    }
  }
  out << "\n]}\n";
}

std::string chrome_trace_json(const FlightRecorder& recorder, sim::Time end) {
  std::ostringstream out;
  write_chrome_trace(out, recorder, end);
  return out.str();
}

}  // namespace halfback::telemetry
