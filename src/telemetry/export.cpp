#include "telemetry/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace halfback::telemetry {
namespace {

/// Nanoseconds rendered as microseconds with three decimals (trace_event
/// `ts`/`dur` are in microseconds; integer math keeps the text stable).
std::string micros(std::int64_t ns) {
  if (ns < 0) ns = 0;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000);
  return buf;
}

void write_histogram_fields(std::ostream& out, const Histogram& h) {
  out << "\"count\":" << h.count() << ",\"sum\":" << h.sum()
      << ",\"min\":" << h.min() << ",\"max\":" << h.max()
      << ",\"p50\":" << h.value_at_quantile(0.5)
      << ",\"p90\":" << h.value_at_quantile(0.9)
      << ",\"p99\":" << h.value_at_quantile(0.99)
      << ",\"p999\":" << h.value_at_quantile(0.999)
      << ",\"sub_bucket_bits\":" << h.sub_bucket_bits() << ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket_value(i) == 0) continue;
    if (!first) out << ',';
    first = false;
    out << '[' << Histogram::bucket_lower(i, h.sub_bucket_bits()) << ','
        << Histogram::bucket_upper(i, h.sub_bucket_bits()) << ','
        << h.bucket_value(i) << ']';
  }
  out << ']';
}

/// Metric names use dots as section separators; Prometheus wants [a-z_].
std::string prometheus_name(std::string_view name) {
  std::string out{name};
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 9007199254740992.0) {  // 2^53
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void write_metrics_jsonl(std::ostream& out, const MetricRegistry& registry) {
  for (const MetricRegistry::Entry& e : registry.entries()) {
    out << "{\"name\":\"" << json_escape(e.name) << "\",\"kind\":\""
        << to_string(e.kind) << "\",\"unit\":\"" << to_string(e.unit)
        << "\",\"help\":\"" << json_escape(e.help) << "\",";
    switch (e.kind) {
      case MetricKind::counter:
        out << "\"value\":" << registry.counter_at(e).value();
        break;
      case MetricKind::gauge:
        out << "\"value\":" << format_double(registry.gauge_at(e).value());
        break;
      case MetricKind::histogram:
        write_histogram_fields(out, registry.histogram_at(e));
        break;
    }
    out << "}\n";
  }
}

std::string metrics_jsonl(const MetricRegistry& registry) {
  std::ostringstream out;
  write_metrics_jsonl(out, registry);
  return out.str();
}

void write_prometheus(std::ostream& out, const MetricRegistry& registry) {
  for (const MetricRegistry::Entry& e : registry.entries()) {
    const std::string name = prometheus_name(e.name);
    if (!e.help.empty()) out << "# HELP " << name << ' ' << e.help << '\n';
    switch (e.kind) {
      case MetricKind::counter:
        out << "# TYPE " << name << " counter\n"
            << name << ' ' << registry.counter_at(e).value() << '\n';
        break;
      case MetricKind::gauge:
        out << "# TYPE " << name << " gauge\n"
            << name << ' ' << format_double(registry.gauge_at(e).value())
            << '\n';
        break;
      case MetricKind::histogram: {
        const Histogram& h = registry.histogram_at(e);
        out << "# TYPE " << name << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bucket_count(); ++i) {
          if (h.bucket_value(i) == 0) continue;
          cumulative += h.bucket_value(i);
          out << name << "_bucket{le=\""
              << Histogram::bucket_upper(i, h.sub_bucket_bits()) << "\"} "
              << cumulative << '\n';
        }
        out << name << "_bucket{le=\"+Inf\"} " << h.count() << '\n'
            << name << "_sum " << h.sum() << '\n'
            << name << "_count " << h.count() << '\n';
        break;
      }
    }
  }
}

std::string prometheus_text(const MetricRegistry& registry) {
  std::ostringstream out;
  write_prometheus(out, registry);
  return out.str();
}

namespace {

/// Everything except the closing "]}" — shared by the recorder-only and
/// full-hub overloads so the recorder prefix stays byte-identical.
void write_trace_tape_events(std::ostream& out, const FlightRecorder& recorder,
                             sim::Time end) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"flows\"}}";
  out << ",\n{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"links\"}}";

  for (std::size_t t = 0; t < recorder.tape_count(); ++t) {
    const Tape& tape = recorder.tape_at(t);
    const int pid = tape.track() == TrackKind::flow ? 1 : 2;
    const std::size_t tid = t + 1;
    std::string label = tape.label();
    if (label.empty()) {
      label = (pid == 1 ? "flow " : "link ") + std::to_string(tape.id());
    }
    out << ",\n{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(label) << "\"}}";

    const auto& phases = tape.phases();
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const sim::Time start = phases[i].start;
      const sim::Time stop = i + 1 < phases.size() ? phases[i + 1].start : end;
      const std::int64_t dur = stop.ns() - start.ns();
      out << ",\n{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
          << ",\"cat\":\"phase\",\"name\":\"" << to_string(phases[i].phase)
          << "\",\"ts\":" << micros(start.ns()) << ",\"dur\":" << micros(dur)
          << "}";
    }

    for (std::size_t i = 0; i < tape.size(); ++i) {
      const TapeEvent& ev = tape.event(i);
      // Phase transitions already render as duration spans above.
      if (ev.kind == TapeEventKind::phase_enter) continue;
      out << ",\n{\"ph\":\"i\",\"pid\":" << pid << ",\"tid\":" << tid
          << ",\"cat\":\"tape\",\"s\":\"t\",\"name\":\"" << to_string(ev.kind)
          << "\",\"ts\":" << micros(ev.at.ns()) << ",\"args\":{\"a\":" << ev.a
          << ",\"b\":" << ev.b << "}}";
    }
  }
}

/// One nested B/E pair, clamped to [lo, hi].
void write_span_pair(std::ostream& out, int tid, const Span& s, sim::Time lo,
                     sim::Time hi) {
  sim::Time b = s.begin < lo ? lo : s.begin;
  sim::Time e = s.open ? hi : s.end;
  if (e > hi) e = hi;
  if (e < b) e = b;
  out << ",\n{\"ph\":\"B\",\"pid\":3,\"tid\":" << tid
      << ",\"cat\":\"span\",\"name\":\"" << to_string(s.kind)
      << "\",\"ts\":" << micros(b.ns()) << ",\"args\":{\"span\":" << s.id
      << ",\"parent\":" << s.parent
      << (s.abandoned ? ",\"abandoned\":true" : "") << "}}";
  out << ",\n{\"ph\":\"E\",\"pid\":3,\"tid\":" << tid
      << ",\"cat\":\"span\",\"name\":\"" << to_string(s.kind)
      << "\",\"ts\":" << micros(e.ns()) << "}";
}

/// Span log as pid-3 duration events: per flow, one thread for the phase
/// tree (the flow root's B/E bracketing its sequential phase children) and
/// one for RTO-recovery episodes, so every thread's B/E events nest.
void write_trace_span_events(std::ostream& out, const SpanRecorder& spans,
                             sim::Time end) {
  out << ",\n{\"ph\":\"M\",\"pid\":3,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"spans\"}}";
  // Flows in first-appearance order; span ids are open-ordered, so this is
  // deterministic.
  std::vector<std::uint64_t> flows;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const std::uint64_t flow = spans.at(i).flow;
    bool seen = false;
    for (const std::uint64_t f : flows) {
      if (f == flow) {
        seen = true;
        break;
      }
    }
    if (!seen) flows.push_back(flow);
  }
  for (std::size_t f = 0; f < flows.size(); ++f) {
    const std::uint64_t flow = flows[f];
    const int tid_phase = static_cast<int>(2 * f + 1);
    const int tid_rto = static_cast<int>(2 * f + 2);
    out << ",\n{\"ph\":\"M\",\"pid\":3,\"tid\":" << tid_phase
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"flow "
        << flow << "\"}}";

    // Phase thread: the flow root wraps its children.
    const Span* root = nullptr;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const Span& s = spans.at(i);
      if (s.flow == flow && s.kind == SpanKind::flow) {
        root = &s;
        break;
      }
    }
    const sim::Time lo = root != nullptr ? root->begin : sim::Time::zero();
    const sim::Time hi =
        root == nullptr || root->open
            ? end
            : (root->end > end ? end : root->end);
    if (root != nullptr) {
      out << ",\n{\"ph\":\"B\",\"pid\":3,\"tid\":" << tid_phase
          << ",\"cat\":\"span\",\"name\":\"" << to_string(root->kind)
          << "\",\"ts\":" << micros(lo.ns()) << ",\"args\":{\"span\":"
          << root->id << ",\"parent\":" << root->parent << "}}";
    }
    bool any_rto = false;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const Span& s = spans.at(i);
      if (s.flow != flow) continue;
      if (s.kind == SpanKind::flow) continue;
      if (s.kind == SpanKind::rto_recovery) {
        any_rto = true;
        continue;
      }
      write_span_pair(out, tid_phase, s, lo, hi);
    }
    if (root != nullptr) {
      out << ",\n{\"ph\":\"E\",\"pid\":3,\"tid\":" << tid_phase
          << ",\"cat\":\"span\",\"name\":\"" << to_string(root->kind)
          << "\",\"ts\":" << micros(hi.ns()) << "}";
    }

    // RTO thread: episodes are sequential (one open at a time per flow).
    if (any_rto) {
      out << ",\n{\"ph\":\"M\",\"pid\":3,\"tid\":" << tid_rto
          << ",\"name\":\"thread_name\",\"args\":{\"name\":\"flow " << flow
          << " rto\"}}";
      for (std::size_t i = 0; i < spans.size(); ++i) {
        const Span& s = spans.at(i);
        if (s.flow != flow || s.kind != SpanKind::rto_recovery) continue;
        write_span_pair(out, tid_rto, s, lo, end);
      }
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out, const FlightRecorder& recorder,
                        sim::Time end) {
  write_trace_tape_events(out, recorder, end);
  out << "\n]}\n";
}

std::string chrome_trace_json(const FlightRecorder& recorder, sim::Time end) {
  std::ostringstream out;
  write_chrome_trace(out, recorder, end);
  return out.str();
}

void write_chrome_trace(std::ostream& out, const Hub& hub, sim::Time end) {
  write_trace_tape_events(out, hub.recorder(), end);
  write_trace_span_events(out, hub.spans(), end);
  out << "\n]}\n";
}

std::string chrome_trace_json(const Hub& hub, sim::Time end) {
  std::ostringstream out;
  write_chrome_trace(out, hub, end);
  return out.str();
}

void write_spans_jsonl(std::ostream& out, const SpanRecorder& spans,
                       sim::Time end) {
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans.at(i);
    const sim::Time stop = s.open ? end : s.end;
    out << "{\"span\":" << s.id << ",\"parent\":" << s.parent
        << ",\"flow\":" << s.flow << ",\"kind\":\"" << to_string(s.kind)
        << "\",\"begin_ns\":" << (s.begin.ns() < 0 ? 0 : s.begin.ns())
        << ",\"end_ns\":" << (stop.ns() < 0 ? 0 : stop.ns())
        << ",\"open\":" << (s.open ? "true" : "false")
        << ",\"abandoned\":" << (s.abandoned ? "true" : "false") << "}\n";
  }
  out << "{\"span_count\":" << spans.size()
      << ",\"dropped\":" << spans.dropped() << "}\n";
}

std::string spans_jsonl(const SpanRecorder& spans, sim::Time end) {
  std::ostringstream out;
  write_spans_jsonl(out, spans, end);
  return out.str();
}

void write_timeseries_jsonl(std::ostream& out, const Hub& hub) {
  for (std::size_t i = 0; i < hub.series_count(); ++i) {
    const WindowSeries& s = hub.series_at(i);
    out << "{\"series\":\"" << json_escape(s.name())
        << "\",\"window_ns\":" << s.width().ns()
        << ",\"dropped\":" << s.dropped() << ",\"windows\":[";
    bool first = true;
    for (std::size_t w = 0; w < s.window_count(); ++w) {
      const WindowSample& sample = s.window(w);
      if (!sample.touched()) continue;
      if (!first) out << ',';
      first = false;
      out << '[' << w << ',' << sample.bytes << ',' << sample.packets << ','
          << sample.drops << ',' << sample.retx << ',' << sample.dups << ','
          << sample.queue_peak << ',' << sample.inflight_peak << ']';
    }
    out << "]}\n";
  }
}

std::string timeseries_jsonl(const Hub& hub) {
  std::ostringstream out;
  write_timeseries_jsonl(out, hub);
  return out.str();
}

}  // namespace halfback::telemetry
