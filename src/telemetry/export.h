// Exporters: deterministic text serializations of a run's telemetry.
//
// All three formats iterate the registry / recorder in registration /
// creation order and format numbers with pure integer math wherever the
// value is integral, so two same-seed runs emit byte-identical output
// (tests/telemetry/export_test.cpp holds that contract).
//
//  - metrics JSONL: one self-describing JSON object per line per metric.
//  - Prometheus text: the conventional HELP/TYPE/sample exposition.
//  - Chrome trace_event JSON: load in Perfetto / chrome://tracing. pid 1
//    carries one thread per flow tape, pid 2 one per link tape; phase
//    spans render as duration events, tape points as instants.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/annotations.h"
#include "sim/time.h"
#include "stats/ascii_plot.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/hub.h"
#include "telemetry/registry.h"
#include "telemetry/span.h"

namespace halfback::telemetry {

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

/// Format a double without locale dependence: integral values (|v| < 2^53)
/// print as integers, everything else with enough digits to round-trip.
std::string format_double(double v);

// Writes to the caller-supplied stream: deliberately NOT an `io` effect
// (ambient I/O means touching a stream the caller did not hand over).
void write_metrics_jsonl(std::ostream& out, const MetricRegistry& registry)
    HB_EFFECTS(alloc, throw);
std::string metrics_jsonl(const MetricRegistry& registry)
    HB_EFFECTS(alloc, throw);

void write_prometheus(std::ostream& out, const MetricRegistry& registry);
std::string prometheus_text(const MetricRegistry& registry);

/// `end` closes the final phase span of every tape (pass the simulator
/// clock at snapshot time).
void write_chrome_trace(std::ostream& out, const FlightRecorder& recorder,
                        sim::Time end);
std::string chrome_trace_json(const FlightRecorder& recorder, sim::Time end)
    HB_EFFECTS(alloc, throw);

/// Full-hub Chrome trace: the recorder output above, byte-identical, plus
/// the causal span log as nested B/E duration events on pid 3 — one thread
/// per flow for the phase tree (flow root wrapping handshake / pacing /
/// blast / ropr / fallback children) and a second thread per flow for its
/// RTO-recovery episodes, so each thread's B/E events nest strictly.
/// Spans still open at export close at `end`; children clamp to their
/// parent's bounds.
void write_chrome_trace(std::ostream& out, const Hub& hub, sim::Time end);
std::string chrome_trace_json(const Hub& hub, sim::Time end)
    HB_EFFECTS(alloc, throw);

/// Span log as JSONL: one object per span in recorded (id) order, plus a
/// trailing summary line with the span count and overflow drops. Open
/// spans report `"open":true` with their end clamped to `end`.
void write_spans_jsonl(std::ostream& out, const SpanRecorder& spans,
                       sim::Time end) HB_EFFECTS(alloc, throw);
std::string spans_jsonl(const SpanRecorder& spans, sim::Time end)
    HB_EFFECTS(alloc, throw);

/// Windowed time-series as JSONL: one object per series in creation order;
/// each touched window renders as [index, bytes, packets, drops, retx,
/// dups, queue_peak, inflight_peak].
void write_timeseries_jsonl(std::ostream& out, const Hub& hub)
    HB_EFFECTS(alloc, throw);
std::string timeseries_jsonl(const Hub& hub) HB_EFFECTS(alloc, throw);

/// Bridge to stats::ascii_histogram: the histogram's occupied buckets as
/// bins, edges divided by `scale` (1e6 turns nanoseconds into ms). Inline
/// so benches that already link both libraries pay no extra dependency.
inline std::vector<stats::HistogramBin> histogram_bins(const Histogram& h,
                                                       double scale = 1.0) {
  std::vector<stats::HistogramBin> bins;
  bins.reserve(h.bucket_count());
  const unsigned k = h.sub_bucket_bits();
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    stats::HistogramBin bin;
    bin.lower = static_cast<double>(Histogram::bucket_lower(i, k)) / scale;
    bin.upper = static_cast<double>(Histogram::bucket_upper(i, k)) / scale;
    bin.count = h.bucket_value(i);
    bins.push_back(bin);
  }
  return bins;
}

}  // namespace halfback::telemetry
