#include "telemetry/flight_recorder.h"

namespace halfback::telemetry {

const char* to_string(FlowPhase phase) {
  switch (phase) {
    case FlowPhase::handshake: return "handshake";
    case FlowPhase::pacing: return "pacing";
    case FlowPhase::transfer: return "transfer";
    case FlowPhase::ropr: return "ropr";
    case FlowPhase::fallback: return "fallback";
    case FlowPhase::done: return "done";
  }
  return "?";
}

const char* to_string(TapeEventKind kind) {
  switch (kind) {
    case TapeEventKind::flow_start: return "flow_start";
    case TapeEventKind::syn_sent: return "syn_sent";
    case TapeEventKind::established: return "established";
    case TapeEventKind::phase_enter: return "phase_enter";
    case TapeEventKind::segment_sent: return "segment_sent";
    case TapeEventKind::retx_sent: return "retx_sent";
    case TapeEventKind::proactive_sent: return "proactive_sent";
    case TapeEventKind::ack_received: return "ack_received";
    case TapeEventKind::rtt_sample: return "rtt_sample";
    case TapeEventKind::karn_discard: return "karn_discard";
    case TapeEventKind::rto_fired: return "rto_fired";
    case TapeEventKind::ropr_abandoned: return "ropr_abandoned";
    case TapeEventKind::rlp_abandoned: return "rlp_abandoned";
    case TapeEventKind::fault_hit: return "fault_hit";
    case TapeEventKind::queue_drop: return "queue_drop";
    case TapeEventKind::complete: return "complete";
  }
  return "?";
}

}  // namespace halfback::telemetry
