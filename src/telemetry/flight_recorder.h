// Flow flight-recorder: always-on, bounded-memory event timelines.
//
// Each flow (and each instrumented link) gets a Tape: a fixed-capacity ring
// buffer of compact point events plus a small list of phase transitions.
// Rings are carved out of slab allocations — creating a tape in steady
// state touches the allocator only when a slab fills — and recording an
// event is a handful of stores, so tapes can stay installed in production
// runs, unlike net::PacketTracer's copy-the-packet model (debug only).
//
// When a ring wraps, the oldest point events are overwritten (a flight
// recorder keeps the newest history) and `dropped()` counts the loss; phase
// transitions are kept separately and never overwritten, so the Chrome
// exporter can always render complete phase spans.
//
// Everything here is inline and depends only on sim/time.h: the recording
// layers (net, transport, schemes) use Tape through a nullable pointer
// without linking against the telemetry library.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/annotations.h"
#include "sim/time.h"

namespace halfback::telemetry {

/// Transport/scheme phases a flow moves through. `transfer` is the generic
/// data phase for schemes without finer structure.
enum class FlowPhase : std::uint8_t {
  handshake,
  pacing,
  transfer,
  ropr,
  fallback,
  done,
};

const char* to_string(FlowPhase phase);

/// Point events a tape records. `a`/`b` carry kind-specific detail
/// (sequence numbers, nanosecond durations, fault kinds — see
/// docs/telemetry.md for the catalog).
enum class TapeEventKind : std::uint8_t {
  flow_start,
  syn_sent,        ///< a = attempt number (1 = first)
  established,     ///< b = handshake RTT in ns
  phase_enter,     ///< a = FlowPhase
  segment_sent,    ///< a = seq
  retx_sent,       ///< a = seq (loss-triggered)
  proactive_sent,  ///< a = seq, b = ROPR backward position
  ack_received,    ///< a = cumulative ack
  rtt_sample,      ///< b = sample in ns
  karn_discard,    ///< a = seq (ambiguous echo, sample dropped)
  rto_fired,       ///< a = consecutive backoffs
  ropr_abandoned,  ///< a = backward position at abandonment
  rlp_abandoned,   ///< a = cum ack when RC3 stopped crediting its backfill
  fault_hit,       ///< a = fault kind (netfault cause), b = flow uid
  queue_drop,      ///< a = seq (link tapes: b = flow id)
  complete,        ///< b = FCT in ns
};

const char* to_string(TapeEventKind kind);

/// The `a` payload of a fault_hit event: what the fault hook did.
enum class FaultKind : std::uint8_t { drop, corrupt, delay, duplicate };

/// What a tape describes.
enum class TrackKind : std::uint8_t { flow, link };

/// One compact recorded event (24 bytes).
struct TapeEvent {
  sim::Time at;
  std::uint64_t b = 0;
  std::uint32_t a = 0;
  TapeEventKind kind = TapeEventKind::flow_start;
};

/// One phase transition; the span ends at the next transition (or the
/// export end time).
struct PhaseSpan {
  sim::Time start;
  FlowPhase phase = FlowPhase::handshake;
};

/// A ring of TapeEvents plus the phase-transition list for one track.
class Tape {
 public:
  void record(sim::Time at, TapeEventKind kind, std::uint32_t a = 0,
              std::uint64_t b = 0) HB_EFFECTS() {
    TapeEvent& slot = ring_[head_ % capacity_];
    slot.at = at;
    slot.kind = kind;
    slot.a = a;
    slot.b = b;
    ++head_;
  }

  /// Record a phase transition (kept out of the ring; also mirrored into it
  /// as a phase_enter point event for the flat timeline view). Consecutive
  /// duplicate phases collapse.
  void enter_phase(sim::Time at, FlowPhase phase) HB_EFFECTS(alloc) {
    if (!phases_.empty() && phases_.back().phase == phase) return;
    if (!phases_.empty() && phases_.back().start == at) {
      // The previous phase lasted zero time (e.g. a base-class "transfer"
      // immediately refined to "pacing"); replace rather than keep a
      // zero-width span.
      phases_.back().phase = phase;
    } else if (phases_.size() < kMaxPhaseSpans) {
      phases_.push_back(PhaseSpan{at, phase});
    }
    record(at, TapeEventKind::phase_enter, static_cast<std::uint32_t>(phase));
  }

  TrackKind track() const { return track_; }
  std::uint64_t id() const { return id_; }
  const std::string& label() const { return label_; }

  /// Events currently held, oldest first.
  std::size_t size() const { return head_ < capacity_ ? head_ : capacity_; }
  /// Point events overwritten by ring wrap-around.
  std::uint64_t dropped() const { return head_ < capacity_ ? 0 : head_ - capacity_; }
  const TapeEvent& event(std::size_t i) const {
    return ring_[(head_ - size() + i) % capacity_];
  }

  const std::vector<PhaseSpan>& phases() const { return phases_; }

 private:
  friend class FlightRecorder;
  // A tape is pathological past a handful of transitions; cap so a buggy
  // caller cannot grow phases_ without bound.
  static constexpr std::size_t kMaxPhaseSpans = 16;

  Tape(TrackKind track, std::uint64_t id, std::string label, TapeEvent* ring,
       std::size_t capacity)
      : track_{track},
        id_{id},
        label_{std::move(label)},
        ring_{ring},
        capacity_{capacity} {}

  TrackKind track_;
  std::uint64_t id_;
  std::string label_;
  TapeEvent* ring_;  ///< capacity_ slots inside a FlightRecorder slab
  std::size_t capacity_;
  std::uint64_t head_ = 0;
  std::vector<PhaseSpan> phases_;
};

/// Owns the tapes and their slab-allocated rings. Tape creation order is
/// the export order (deterministic for a seeded run).
class FlightRecorder {
 public:
  struct Config {
    std::size_t events_per_tape = 256;  ///< ring capacity per tape
    std::size_t tapes_per_slab = 64;    ///< rings carved per allocation
  };

  FlightRecorder() : FlightRecorder(Config{}) {}
  explicit FlightRecorder(Config config) : config_{config} {
    if (config_.events_per_tape == 0) config_.events_per_tape = 1;
    if (config_.tapes_per_slab == 0) config_.tapes_per_slab = 1;
  }
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The tape for (`track`, `id`), created on first use. `label` is applied
  /// only at creation (later calls may pass empty).
  Tape& tape(TrackKind track, std::uint64_t id, std::string label = {})
      HB_EFFECTS(alloc) {
    const Key key{static_cast<std::uint8_t>(track), id};
    auto it = index_.find(key);
    if (it != index_.end()) return tapes_[it->second];
    TapeEvent* ring = allocate_ring();
    tapes_.push_back(
        Tape{track, id, std::move(label), ring, config_.events_per_tape});
    index_.emplace(key, tapes_.size() - 1);
    return tapes_.back();
  }

  /// The tape for (`track`, `id`) if it exists, else nullptr.
  Tape* find(TrackKind track, std::uint64_t id) {
    const auto it = index_.find(Key{static_cast<std::uint8_t>(track), id});
    return it == index_.end() ? nullptr : &tapes_[it->second];
  }

  /// All tapes in creation order.
  std::size_t tape_count() const { return tapes_.size(); }
  const Tape& tape_at(std::size_t i) const { return tapes_[i]; }

  const Config& config() const { return config_; }

 private:
  using Key = std::pair<std::uint8_t, std::uint64_t>;

  TapeEvent* allocate_ring() {
    if (slab_used_ == 0 || slab_used_ >= config_.tapes_per_slab) {
      slabs_.push_back(std::make_unique<TapeEvent[]>(config_.events_per_tape *
                                                     config_.tapes_per_slab));
      slab_used_ = 0;
    }
    TapeEvent* ring =
        slabs_.back().get() + slab_used_ * config_.events_per_tape;
    ++slab_used_;
    return ring;
  }

  Config config_;
  std::deque<Tape> tapes_;               ///< stable addresses, creation order
  std::map<Key, std::size_t> index_;     ///< ordered: no hash-order surprises
  std::vector<std::unique_ptr<TapeEvent[]>> slabs_;
  std::size_t slab_used_ = 0;
};

}  // namespace halfback::telemetry
