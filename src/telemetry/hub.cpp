#include "telemetry/hub.h"

#include <string>

#include "net/link.h"
#include "net/network.h"
#include "net/queue.h"
#include "netfault/fault_injector.h"

namespace halfback::telemetry {

Hub::Hub(Config config)
    : recorder_{config.recorder},
      spans_{config.span_capacity},
      series_window_{config.series_window},
      series_max_windows_{config.series_max_windows} {
  // Registration order here IS the export order; append new metrics at the
  // end of their section so existing golden exports keep their prefix.
  sim_.events_dispatched = registry_.counter(
      "sim.events_dispatched", "events executed by the simulator loop",
      Unit::events);
  sim_.event_queue_peak = registry_.gauge(
      "sim.event_queue_peak", "high-water event-heap size", Unit::events);
  sim_.sim_end_ns = registry_.gauge(
      "sim.end_ns", "simulated clock at the final snapshot", Unit::nanoseconds);

  transport_.flows_started = registry_.counter(
      "transport.flows_started", "flows that entered start()", Unit::flows);
  transport_.flows_completed = registry_.counter(
      "transport.flows_completed", "flows fully acked", Unit::flows);
  transport_.syn_sent = registry_.counter(
      "transport.syn_sent", "SYN transmissions (including retries)",
      Unit::segments);
  transport_.syn_retx = registry_.counter(
      "transport.syn_retx", "SYN retransmissions after timeout",
      Unit::segments);
  transport_.segments_sent = registry_.counter(
      "transport.segments_sent", "first-time data segment transmissions",
      Unit::segments);
  transport_.retx_sent = registry_.counter(
      "transport.retx_sent", "loss-triggered retransmissions", Unit::segments);
  transport_.proactive_sent = registry_.counter(
      "transport.proactive_sent", "proactive (ROPR-style) redundant copies",
      Unit::segments);
  transport_.acks_received = registry_.counter(
      "transport.acks_received", "ACK segments processed", Unit::segments);
  transport_.karn_discards = registry_.counter(
      "transport.karn_discards",
      "RTT samples discarded by Karn's rule (ambiguous echo)", Unit::events);
  transport_.rto_fired = registry_.counter(
      "transport.rto_fired", "retransmission timeouts fired", Unit::events);
  transport_.scoreboard_sacked = registry_.counter(
      "transport.scoreboard_sacked",
      "scoreboard transitions outstanding -> sacked", Unit::segments);
  transport_.scoreboard_acked = registry_.counter(
      "transport.scoreboard_acked",
      "scoreboard segments retired by cumulative ack", Unit::segments);
  transport_.rtt = registry_.histogram(
      "transport.rtt_ns", "accepted RTT samples", Unit::nanoseconds);
  transport_.handshake_rtt = registry_.histogram(
      "transport.handshake_rtt_ns", "SYN to SYN-ACK round trips",
      Unit::nanoseconds);
  transport_.fct = registry_.histogram(
      "transport.fct_ns", "flow completion times", Unit::nanoseconds);

  scheme_.paced_packets = registry_.counter(
      "scheme.paced_packets", "segments sent during the paced-start phase",
      Unit::segments);
  scheme_.ropr_packets = registry_.counter(
      "scheme.ropr_packets", "proactive copies sent by ROPR", Unit::segments);
  scheme_.fallback_packets = registry_.counter(
      "scheme.fallback_packets", "segments sent after entering fallback",
      Unit::segments);
  scheme_.ropr_abandoned = registry_.counter(
      "scheme.ropr_abandoned", "ROPR passes abandoned by RTO", Unit::events);
  scheme_.rlp_abandoned = registry_.counter(
      "scheme.rlp_abandoned", "RC3 backfill credit abandoned by RTO",
      Unit::events);
  scheme_.ropr_low_water = registry_.gauge(
      "scheme.ropr_low_water",
      "segment index of the most recent ROPR proactive copy", Unit::segments);

  fault_.packets_seen = registry_.counter(
      "fault.packets_seen", "packets inspected by fault injectors",
      Unit::packets);
  fault_.drops = registry_.counter(
      "fault.drops", "packets dropped by outage/flap/Gilbert-Elliott models",
      Unit::packets);
  fault_.corruptions = registry_.counter(
      "fault.corruptions", "packets corrupted in flight", Unit::packets);
  fault_.duplications = registry_.counter(
      "fault.duplications", "extra packet copies injected", Unit::packets);
  fault_.reorders = registry_.counter(
      "fault.reorders", "packets given reorder jitter", Unit::packets);
  fault_.delay_spikes = registry_.counter(
      "fault.delay_spikes", "packets given delay spikes", Unit::packets);
}

void Hub::instrument_network(net::Network& network) {
  network.simulator().set_telemetry(this);
  const auto& links = network.links();
  for (std::size_t i = 0; i < links.size(); ++i) {
    Tape& tape = recorder_.tape(TrackKind::link, i,
                                "link " + std::to_string(i));
    links[i]->set_tape(&tape);
    links[i]->queue().set_tape(&tape);
    WindowSeries& link_series = series("link." + std::to_string(i));
    links[i]->set_series(&link_series);
    links[i]->queue().set_series(&link_series);
  }
}

void Hub::snapshot_network(const net::Network& network, sim::Time now) {
  sim_.sim_end_ns->set(static_cast<double>(now.ns()));
  const auto& links = network.links();
  for (std::size_t i = 0; i < links.size(); ++i) {
    const net::Link& link = *links[i];
    const std::string prefix = "net.link." + std::to_string(i) + ".";
    registry_.gauge(prefix + "queue_packets", "packets resident in the queue",
                    Unit::packets)
        ->set(static_cast<double>(link.queue().packet_count()));
    registry_.gauge(prefix + "queue_max_backlog_bytes",
                    "high-water queue backlog", Unit::bytes)
        ->set(static_cast<double>(link.queue().stats().max_backlog_bytes.count()));
    registry_.gauge(prefix + "queue_drops", "packets discarded by the queue",
                    Unit::packets)
        ->set(static_cast<double>(link.queue().stats().dropped_packets));
    registry_.gauge(prefix + "delivered_packets", "packets delivered",
                    Unit::packets)
        ->set(static_cast<double>(link.stats().delivered_packets));
    registry_.gauge(prefix + "utilization",
                    "fraction of the run spent serializing", Unit::ratio)
        ->set(link.utilization(now));
    registry_.gauge(prefix + "fault_drops", "packets dropped by fault hooks",
                    Unit::packets)
        ->set(static_cast<double>(link.stats().fault_dropped_packets));
  }
}

void Hub::record_injector(const netfault::InjectorStats& stats) {
  fault_.packets_seen->add(stats.packets_seen);
  fault_.drops->add(stats.total_drops());
  fault_.corruptions->add(stats.corrupted);
  fault_.duplications->add(stats.duplicated);
  fault_.reorders->add(stats.jittered);
  fault_.delay_spikes->add(stats.delay_spikes);
}

}  // namespace halfback::telemetry
