// Telemetry Hub: one run's registry + flight recorder + probe bundles.
//
// The Hub is owned by the experiment layer (EmulabRunner, PlanetLabEnv,
// chaos_sweep, benches) and handed to instrumented components as a nullable
// pointer. Components that record on hot paths guard with a single null
// test and then update instruments through the pre-registered probe
// bundles below — no name lookups, no allocation, no type erasure after
// construction.
//
// Layering: this header is usable from sim/net/transport/schemes without
// linking the telemetry library — every member function called from those
// layers is inline, and the out-of-line pieces (the constructor that
// registers the metric catalog, the network/fault snapshots) are only
// invoked by code that already links halfback_telemetry.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "sim/annotations.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metric.h"
#include "telemetry/registry.h"
#include "telemetry/span.h"
#include "telemetry/timeseries.h"

namespace halfback::net {
class Network;
}
namespace halfback::netfault {
struct InjectorStats;
}

namespace halfback::telemetry {

class Hub {
 public:
  /// Event-core instruments (sim layer).
  struct SimProbes {
    Counter* events_dispatched = nullptr;
    Gauge* event_queue_peak = nullptr;  ///< high-water event-heap size
    Gauge* sim_end_ns = nullptr;        ///< clock at final snapshot
  };

  /// Transport instruments (SenderBase and friends).
  struct TransportProbes {
    Counter* flows_started = nullptr;
    Counter* flows_completed = nullptr;
    Counter* syn_sent = nullptr;
    Counter* syn_retx = nullptr;
    Counter* segments_sent = nullptr;
    Counter* retx_sent = nullptr;       ///< loss-triggered retransmissions
    Counter* proactive_sent = nullptr;  ///< ROPR / proactive-scheme copies
    Counter* acks_received = nullptr;
    Counter* karn_discards = nullptr;   ///< ambiguous RTT samples dropped
    Counter* rto_fired = nullptr;
    Counter* scoreboard_sacked = nullptr;  ///< outstanding -> sacked
    Counter* scoreboard_acked = nullptr;   ///< any -> cumulatively acked
    Histogram* rtt = nullptr;            ///< accepted RTT samples (ns)
    Histogram* handshake_rtt = nullptr;  ///< SYN -> SYN-ACK (ns)
    Histogram* fct = nullptr;            ///< flow completion times (ns)
  };

  /// Scheme instruments (paced start, ROPR, fallback).
  struct SchemeProbes {
    Counter* paced_packets = nullptr;     ///< sent during paced start
    Counter* ropr_packets = nullptr;      ///< proactive ROPR copies
    Counter* fallback_packets = nullptr;  ///< sent after fallback entry
    Counter* ropr_abandoned = nullptr;    ///< ROPR cut short by RTO
    Counter* rlp_abandoned = nullptr;     ///< RC3 backfill trust cut by RTO
    Gauge* ropr_low_water = nullptr;      ///< deepest backward ROPR position
  };

  /// Fault-injection instruments, per cause (netfault layer). Filled by
  /// record_injector() at end of run from each injector's InjectorStats.
  struct FaultProbes {
    Counter* packets_seen = nullptr;
    Counter* drops = nullptr;        ///< outage + flap + Gilbert–Elliott
    Counter* corruptions = nullptr;
    Counter* duplications = nullptr;
    Counter* reorders = nullptr;
    Counter* delay_spikes = nullptr;
  };

  struct Config {
    FlightRecorder::Config recorder;
    /// Span store size (spans past it are counted, not recorded).
    std::size_t span_capacity = SpanRecorder::kDefaultCapacity;
    /// Tumbling-window width for the time-series layer.
    sim::Time series_window = sim::Time::milliseconds(10);
    /// Windows per series; activity past the last window is counted as
    /// dropped, never recorded.
    std::size_t series_max_windows = WindowSeries::kDefaultMaxWindows;
  };

  /// Registers the whole metric catalog (see docs/telemetry.md) so probe
  /// bundles are valid immediately and export order is fixed regardless of
  /// which components end up recording.
  Hub() : Hub(Config{}) {}
  explicit Hub(Config config);
  Hub(const Hub&) = delete;
  Hub& operator=(const Hub&) = delete;

  MetricRegistry& registry() { return registry_; }
  const MetricRegistry& registry() const { return registry_; }
  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }

  SimProbes& sim() { return sim_; }
  TransportProbes& transport() { return transport_; }
  SchemeProbes& scheme() { return scheme_; }
  FaultProbes& fault() { return fault_; }

  SpanRecorder& spans() { return spans_; }
  const SpanRecorder& spans() const { return spans_; }

  /// Create-or-get the named windowed time-series (setup path: senders and
  /// instrument_network fetch their series pointer once, then record
  /// through it behind a null check). Creation order = export order, the
  /// same discipline MetricRegistry uses for instruments.
  WindowSeries& series(const std::string& name) {
    for (const auto& s : series_) {
      if (s->name() == name) return *s;
    }
    series_.push_back(std::make_unique<WindowSeries>(
        name, series_window_, series_max_windows_));
    return *series_.back();
  }
  std::size_t series_count() const { return series_.size(); }
  const WindowSeries& series_at(std::size_t i) const { return *series_[i]; }

  /// Batched event-dispatch hook: the simulator's dispatch loops track
  /// the count and the integer heap peak locally and flush once when a
  /// run slice exits, keeping the per-event telemetry cost to an integer
  /// compare. Final metric values equal per-event updates; only a hub
  /// read from *inside* a running callback would notice the deferral,
  /// and these two are end-of-run metrics.
  void on_run_slice_done(std::uint64_t dispatched, std::size_t heap_peak) {
    sim_.events_dispatched->add(dispatched);
    sim_.event_queue_peak->set_max(static_cast<double>(heap_peak));
  }

  /// Install this hub on `network`: set the simulator's telemetry pointer
  /// and attach a flight-recorder tape to every existing link and its
  /// queue. Call after the topology is final and before traffic starts
  /// (links created later are simply not taped).
  void instrument_network(net::Network& network);

  /// Snapshot per-link queue/drop/utilization gauges from `network` at
  /// `now`. Links are numbered in creation order, so repeated snapshots
  /// update the same instruments and export order is deterministic.
  void snapshot_network(const net::Network& network, sim::Time now)
      HB_EFFECTS(alloc, throw, block);

  /// Fold one injector's per-cause totals into the fault counters. Call
  /// once per injector at end of run.
  void record_injector(const netfault::InjectorStats& stats);

  /// Fold another hub's instruments into this one (sharded-engine reduce
  /// step: each shard runs with its own Hub, the parent merges after the
  /// shard's worker joins). Both hubs register the same catalog in their
  /// constructors, so export order is unchanged. Spans append in the other
  /// shard's recorded order (ids re-based) and series merge by name in the
  /// other shard's creation order, so a fixed shard-merge order yields
  /// byte-identical merged output at any worker count. Flight-recorder
  /// tapes are per-shard artifacts and are not merged.
  void merge_from(const Hub& other) HB_EFFECTS(alloc, throw, block) {
    registry_.merge_from(other.registry_);
    spans_.merge_from(other.spans_);
    for (const auto& s : other.series_) {
      series(s->name()).merge_from(*s);
    }
  }

 private:
  MetricRegistry registry_;
  FlightRecorder recorder_;
  SpanRecorder spans_;
  std::vector<std::unique_ptr<WindowSeries>> series_;
  sim::Time series_window_;
  std::size_t series_max_windows_;
  SimProbes sim_;
  TransportProbes transport_;
  SchemeProbes scheme_;
  FaultProbes fault_;
};

}  // namespace halfback::telemetry
