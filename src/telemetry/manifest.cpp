#include "telemetry/manifest.h"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "telemetry/export.h"
#include "telemetry/registry.h"

namespace halfback::telemetry {

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

void write_manifest_json(std::ostream& out, const RunManifest& manifest,
                         const MetricRegistry* registry) {
  out << "{\"experiment\":\"" << json_escape(manifest.experiment)
      << "\",\"scheme\":\"" << json_escape(manifest.scheme)
      << "\",\"seed\":" << manifest.seed << ",\"config_digest\":\""
      << hex64(manifest.config_digest) << "\",\"trace_hash\":\""
      << hex64(manifest.trace_hash) << "\",\"sim_end_ns\":"
      << manifest.sim_end.ns() << ",\"events_dispatched\":"
      << manifest.events_dispatched << ",\"wall_time_seconds\":"
      << format_double(manifest.wall_time_seconds);
  if (!manifest.profile.empty()) {
    out << ",\"profile\":[";
    bool first = true;
    for (const RunManifest::ProfileRow& row : manifest.profile) {
      if (!first) out << ',';
      first = false;
      out << "{\"type\":\"" << json_escape(row.event_type)
          << "\",\"count\":" << row.count << ",\"cycles\":" << row.cycles
          << '}';
    }
    out << ']';
  }
  if (registry != nullptr) {
    out << ",\"metrics\":[";
    std::ostringstream lines;
    write_metrics_jsonl(lines, *registry);
    std::string text = lines.str();
    // JSONL -> JSON array: newlines between objects become commas.
    bool first = true;
    std::size_t start = 0;
    while (start < text.size()) {
      const std::size_t stop = text.find('\n', start);
      if (!first) out << ',';
      first = false;
      out << text.substr(start, stop - start);
      if (stop == std::string::npos) break;
      start = stop + 1;
    }
    out << ']';
  }
  out << "}\n";
}

std::string manifest_json(const RunManifest& manifest,
                          const MetricRegistry* registry) {
  std::ostringstream out;
  write_manifest_json(out, manifest, registry);
  return out.str();
}

}  // namespace halfback::telemetry
