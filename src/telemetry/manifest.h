// Run manifest: the provenance record an experiment emits next to its
// telemetry files — enough to reproduce the run (seed, config digest) and
// to check it reproduced (trace hash, metric snapshot).
//
// Wall-clock time is banned inside src/ (lint rule "nondeterminism"), so
// `wall_time_seconds` defaults to zero here and is stamped by the bench /
// CLI layer that owns the stopwatch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/annotations.h"
#include "sim/time.h"

namespace halfback::telemetry {

class MetricRegistry;

struct RunManifest {
  /// One in-sim cost-profiler row (see sim::DispatchProfiler): cycle
  /// attribution for one event type. `count` is deterministic; `cycles`
  /// is wall-clock-adjacent and varies run to run, like wall_time_seconds.
  struct ProfileRow {
    std::string event_type;     ///< demangled event class name
    std::uint64_t count = 0;    ///< dispatches of this type (exact)
    std::uint64_t cycles = 0;   ///< sampled cycle ticks inside fire()
                                ///< (1 in DispatchProfiler::kSamplePeriod)
  };

  std::string experiment;        ///< e.g. "emulab", "planetlab", "chaos:rc-2"
  std::string scheme;            ///< scheme under test, if one
  std::uint64_t seed = 0;
  std::uint64_t config_digest = 0;  ///< fnv1a64 over the config's text form
  std::uint64_t trace_hash = 0;     ///< audit trace hash, 0 if not audited
  sim::Time sim_end;                ///< simulated clock at snapshot
  std::uint64_t events_dispatched = 0;
  double wall_time_seconds = 0.0;   ///< stamped outside src/ (see above)
  /// Dispatch-profiler table; empty when no profiler was installed (the
  /// manifest then omits its "profile" key entirely).
  std::vector<ProfileRow> profile;
};

/// FNV-1a 64-bit over `text`; the manifest's config digest.
std::uint64_t fnv1a64(std::string_view text);

/// "0x" + 16 lowercase hex digits, the repo's canonical hash spelling.
std::string hex64(std::uint64_t value);

/// One JSON object: the manifest fields plus, when `registry` is non-null,
/// a "metrics" array holding the full JSONL snapshot.
void write_manifest_json(std::ostream& out, const RunManifest& manifest,
                         const MetricRegistry* registry);
std::string manifest_json(const RunManifest& manifest,
                          const MetricRegistry* registry)
    HB_EFFECTS(alloc, throw);

}  // namespace halfback::telemetry
