// Metric instruments: typed counters, gauges, and fixed log-linear
// histograms.
//
// Instruments live inside a MetricRegistry (registry.h) and are handed out
// as stable pointers — the "compile-time-cheap handles" components keep for
// the lifetime of a run. A component that may run without telemetry holds a
// null handle and guards each update with a single branch; that branch is
// the entire hot-path cost of the disabled configuration.
//
// Determinism contract: instruments only *observe*. They never draw
// randomness, schedule events, or read wall clocks, so installing telemetry
// cannot perturb a seeded run (the trace-hash anchors in tests/audit/ stay
// bit-identical with a Hub installed).
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/annotations.h"
#include "sim/bytes.h"
#include "sim/time.h"

namespace halfback::telemetry {

/// Unit annotation carried by an instrument for export labeling. Purely
/// descriptive — values are stored as raw integers (nanoseconds for time,
/// bytes for data) and the exporters print the unit next to the name.
enum class Unit : std::uint8_t {
  none,
  events,
  packets,
  segments,
  flows,
  bytes,
  nanoseconds,
  ratio,
};

const char* to_string(Unit unit);

/// Monotonically increasing count.
class Counter {
 public:
  void add(std::uint64_t n) HB_EFFECTS() { value_ += n; }
  void increment() HB_EFFECTS() { ++value_; }
  std::uint64_t value() const { return value_; }

 private:
  friend class MetricRegistry;
  Counter() = default;
  std::uint64_t value_ = 0;
};

/// Last-written value (doubles, so utilization/ratios fit; integral values
/// round-trip exactly below 2^53).
class Gauge {
 public:
  void set(double v) HB_EFFECTS() { value_ = v; }
  /// High-water-mark update (e.g. max queue depth).
  void set_max(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }

 private:
  friend class MetricRegistry;
  Gauge() = default;
  double value_ = 0.0;
};

/// Fixed log-linear histogram over non-negative 64-bit values (HdrHistogram
/// style, pure integer math, no floating point on the record path).
///
/// The first 2^k buckets are unit-wide: value v < 2^k lands in bucket v.
/// Every further power of two is split into 2^k equal-width sub-buckets, so
/// relative bucket resolution stays ~2^-k across the whole 64-bit range.
/// Bucket edges are a pure function of k — they are locked by a golden file
/// in tests/telemetry/ so exported histograms stay comparable across
/// versions. Storage grows lazily to the highest occupied bucket.
class Histogram {
 public:
  /// Sub-bucket resolution: 2^sub_bucket_bits sub-buckets per octave.
  static constexpr unsigned kDefaultSubBucketBits = 3;

  void record(std::uint64_t v) HB_EFFECTS(alloc) {
    const std::size_t i = bucket_index(v, sub_bucket_bits_);
    if (i >= counts_.size()) counts_.resize(i + 1, 0);
    ++counts_[i];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  /// sim::Time values are recorded in nanoseconds; negative durations
  /// (clock bugs) clamp to zero rather than wrapping.
  void record_time(sim::Time t) {
    record(t.ns() < 0 ? 0u : static_cast<std::uint64_t>(t.ns()));
  }
  void record_bytes(sim::Bytes b) { record(b.count()); }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  unsigned sub_bucket_bits() const { return sub_bucket_bits_; }
  /// Occupied bucket range; buckets() is indexed [0, bucket_count()).
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket_value(std::size_t i) const { return counts_[i]; }

  /// Inclusive lower edge of bucket `i` for resolution `k` (pure function).
  static std::uint64_t bucket_lower(std::size_t i, unsigned k);
  /// Exclusive upper edge of bucket `i` (lower edge of bucket i+1).
  static std::uint64_t bucket_upper(std::size_t i, unsigned k);

  /// Smallest value `p` (0 < p <= 1) quantile estimate: upper edge of the
  /// bucket where the cumulative count first reaches p * count().
  std::uint64_t quantile_upper_bound(double p) const;

  /// Exact bucket-walk quantile: walk the cumulative distribution to the
  /// target rank q * count(), then interpolate linearly between the winning
  /// bucket's edges by the rank's position inside it. The result is clamped
  /// to the recorded [min(), max()] so sparse histograms report the exact
  /// extremes at q = 0 and q = 1 instead of bucket edges. This is the
  /// percentile the exporters and `hbreport` print (p50/p90/p99/p99.9);
  /// quantile_upper_bound() remains the conservative upper estimate.
  std::uint64_t value_at_quantile(double q) const;

  /// Fold another histogram's population into this one, bucket by bucket.
  /// Exact (not an approximation) because bucket edges are a pure function
  /// of the resolution — the caller (MetricRegistry::merge_from) guarantees
  /// both sides use the same sub_bucket_bits.
  void merge_from(const Histogram& other);

  static std::size_t bucket_index(std::uint64_t v, unsigned k) {
    const std::uint64_t m = std::uint64_t{1} << k;
    if (v < m) return static_cast<std::size_t>(v);
    const unsigned msb = static_cast<unsigned>(std::bit_width(v)) - 1;
    const unsigned shift = msb - k;
    const std::uint64_t sub = (v >> shift) - m;
    return static_cast<std::size_t>((static_cast<std::uint64_t>(shift) + 1) * m +
                                    sub);
  }

 private:
  friend class MetricRegistry;
  explicit Histogram(unsigned sub_bucket_bits)
      : sub_bucket_bits_{sub_bucket_bits} {}

  unsigned sub_bucket_bits_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
  std::vector<std::uint64_t> counts_;
};

}  // namespace halfback::telemetry
