#include "telemetry/quarantine.h"

#include <ostream>
#include <sstream>

#include "telemetry/export.h"

namespace halfback::telemetry {

void write_quarantine_json(std::ostream& out,
                           const QuarantineManifest& manifest) {
  out << "{\"attempted\":" << manifest.attempted
      << ",\"completed\":" << manifest.completed
      << ",\"quarantined\":" << manifest.quarantined
      << ",\"retries\":" << manifest.retries << ",\"cells\":[";
  bool first = true;
  for (const QuarantineRecord& record : manifest.records) {
    if (!first) out << ',';
    first = false;
    out << "{\"cell_index\":" << record.cell_index << ",\"cell\":\""
        << json_escape(record.cell) << "\",\"attempts\":" << record.attempts
        << ",\"reason\":\"" << json_escape(record.reason)
        << "\",\"events_at_trip\":" << record.events_at_trip
        << ",\"sim_time_at_trip_ns\":" << record.sim_time_at_trip.ns()
        << ",\"detail\":\"" << json_escape(record.detail) << "\"}";
  }
  out << "]}\n";
}

std::string quarantine_json(const QuarantineManifest& manifest) {
  std::ostringstream out;
  write_quarantine_json(out, manifest);
  return out.str();
}

}  // namespace halfback::telemetry
