// Quarantine manifest: the deterministic record of which cells of a
// supervised sweep failed their budgets, how hard the supervisor tried,
// and what the surviving aggregate actually covers.
//
// A supervised sweep (exp::supervised_for) degrades gracefully: cells that
// exhaust their retry budget are quarantined, the rest aggregate as usual,
// and this manifest is the accounting that makes the partial result honest
// — N attempted / N completed / N quarantined, plus one record per
// quarantined cell naming the tripped budget. The manifest is a pure
// function of (seed, budgets, cell set): same inputs give byte-identical
// JSON regardless of worker count, so it can be diffed and golden-tested
// like every other artifact in this repo.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/annotations.h"
#include "sim/time.h"

namespace halfback::telemetry {

/// One quarantined cell.
struct QuarantineRecord {
  std::uint64_t cell_index = 0;  ///< position in the sweep's cell order
  std::string cell;              ///< human name, e.g. "adversarial/rc3"
  std::uint32_t attempts = 0;    ///< attempts consumed (1 + retries)
  std::string reason;            ///< BudgetTrip name or "exception"
  std::uint64_t events_at_trip = 0;
  sim::Time sim_time_at_trip;
  std::string detail;            ///< BudgetReport::summary() or what()
};

/// Completeness accounting for one supervised sweep.
struct QuarantineManifest {
  std::uint64_t attempted = 0;    ///< cells the sweep tried
  std::uint64_t completed = 0;    ///< cells with usable results
  std::uint64_t quarantined = 0;  ///< cells that exhausted retries
  std::uint64_t retries = 0;      ///< extra attempts across all cells
  std::vector<QuarantineRecord> records;  ///< quarantined cells, index order

  bool clean() const { return quarantined == 0; }
};

/// One JSON object per manifest; record order is cell-index order, so the
/// bytes are stable across worker counts.
void write_quarantine_json(std::ostream& out,
                           const QuarantineManifest& manifest);
std::string quarantine_json(const QuarantineManifest& manifest)
    HB_EFFECTS(alloc);

}  // namespace halfback::telemetry
