#include "telemetry/registry.h"

#include "telemetry/metric.h"

namespace halfback::telemetry {

const char* to_string(Unit unit) {
  switch (unit) {
    case Unit::none: return "";
    case Unit::events: return "events";
    case Unit::packets: return "packets";
    case Unit::segments: return "segments";
    case Unit::flows: return "flows";
    case Unit::bytes: return "bytes";
    case Unit::nanoseconds: return "ns";
    case Unit::ratio: return "ratio";
  }
  return "";
}

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::counter: return "counter";
    case MetricKind::gauge: return "gauge";
    case MetricKind::histogram: return "histogram";
  }
  return "?";
}

std::uint64_t Histogram::bucket_lower(std::size_t i, unsigned k) {
  const std::uint64_t m = std::uint64_t{1} << k;
  if (i < m) return i;
  const std::uint64_t block = i / m;  // >= 1
  const std::uint64_t sub = i % m;
  const unsigned shift = static_cast<unsigned>(block - 1);
  return (m + sub) << shift;
}

std::uint64_t Histogram::bucket_upper(std::size_t i, unsigned k) {
  return bucket_lower(i + 1, k);
}

std::uint64_t Histogram::quantile_upper_bound(double p) const {
  if (count_ == 0) return 0;
  const double target = p * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= target) {
      return bucket_upper(i, sub_bucket_bits_);
    }
  }
  return bucket_upper(counts_.size() - 1, sub_bucket_bits_);
}

std::uint64_t Histogram::value_at_quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max_;
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= target) {
      const std::uint64_t lower = bucket_lower(i, sub_bucket_bits_);
      const std::uint64_t upper = bucket_upper(i, sub_bucket_bits_);
      const double inside =
          (target - static_cast<double>(before)) /
          static_cast<double>(counts_[i]);
      std::uint64_t v =
          lower + static_cast<std::uint64_t>(
                      inside * static_cast<double>(upper - lower));
      if (v < min()) v = min();
      if (v > max_) v = max_;
      return v;
    }
  }
  return max_;
}

MetricRegistry::Entry* MetricRegistry::find_mutable(const std::string& name) {
  for (Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const MetricRegistry::Entry* MetricRegistry::find(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Counter* MetricRegistry::counter(const std::string& name, const std::string& help,
                                 Unit unit) {
  MutexLock lock{mu_};
  if (Entry* e = find_mutable(name)) {
    if (e->kind != MetricKind::counter) {
      throw std::invalid_argument{"metric '" + name +
                                  "' already registered with a different kind"};
    }
    return &counters_[e->index];
  }
  counters_.emplace_back(Counter{});
  entries_.push_back(
      Entry{name, help, unit, MetricKind::counter, counters_.size() - 1});
  return &counters_.back();
}

Gauge* MetricRegistry::gauge(const std::string& name, const std::string& help,
                             Unit unit) {
  MutexLock lock{mu_};
  if (Entry* e = find_mutable(name)) {
    if (e->kind != MetricKind::gauge) {
      throw std::invalid_argument{"metric '" + name +
                                  "' already registered with a different kind"};
    }
    return &gauges_[e->index];
  }
  gauges_.emplace_back(Gauge{});
  entries_.push_back(
      Entry{name, help, unit, MetricKind::gauge, gauges_.size() - 1});
  return &gauges_.back();
}

Histogram* MetricRegistry::histogram(const std::string& name,
                                     const std::string& help, Unit unit,
                                     unsigned sub_bucket_bits) {
  MutexLock lock{mu_};
  if (Entry* e = find_mutable(name)) {
    if (e->kind != MetricKind::histogram) {
      throw std::invalid_argument{"metric '" + name +
                                  "' already registered with a different kind"};
    }
    return &histograms_[e->index];
  }
  histograms_.emplace_back(Histogram{sub_bucket_bits});
  entries_.push_back(
      Entry{name, help, unit, MetricKind::histogram, histograms_.size() - 1});
  return &histograms_.back();
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count_ == 0) return;
  if (counts_.size() < other.counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

void MetricRegistry::merge_from(const MetricRegistry& other) {
  if (&other == this) return;  // self-merge would double counts and deadlock
  MutexLock lock{mu_};
  MutexLock other_lock{other.mu_};
  for (const Entry& theirs : other.entries_) {
    Entry* mine = find_mutable(theirs.name);
    if (mine != nullptr && mine->kind != theirs.kind) {
      throw std::invalid_argument{"metric '" + theirs.name +
                                  "' merged with a different kind"};
    }
    switch (theirs.kind) {
      case MetricKind::counter: {
        if (mine == nullptr) {
          counters_.emplace_back(Counter{});
          entries_.push_back(Entry{theirs.name, theirs.help, theirs.unit,
                                   MetricKind::counter, counters_.size() - 1});
          mine = &entries_.back();
        }
        counters_[mine->index].add(other.counters_[theirs.index].value());
        break;
      }
      case MetricKind::gauge: {
        if (mine == nullptr) {
          gauges_.emplace_back(Gauge{});
          entries_.push_back(Entry{theirs.name, theirs.help, theirs.unit,
                                   MetricKind::gauge, gauges_.size() - 1});
          mine = &entries_.back();
        }
        gauges_[mine->index].set_max(other.gauges_[theirs.index].value());
        break;
      }
      case MetricKind::histogram: {
        const Histogram& from = other.histograms_[theirs.index];
        if (mine == nullptr) {
          histograms_.emplace_back(Histogram{from.sub_bucket_bits()});
          entries_.push_back(Entry{theirs.name, theirs.help, theirs.unit,
                                   MetricKind::histogram,
                                   histograms_.size() - 1});
          mine = &entries_.back();
        }
        Histogram& into = histograms_[mine->index];
        if (into.sub_bucket_bits() != from.sub_bucket_bits()) {
          throw std::invalid_argument{
              "histogram '" + theirs.name +
              "' merged with a different sub-bucket resolution"};
        }
        into.merge_from(from);
        break;
      }
    }
  }
}

}  // namespace halfback::telemetry
