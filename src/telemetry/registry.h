// MetricRegistry: the named catalog of one run's instruments.
//
// Registration order — not pointer order, not name order — defines export
// order, so two same-seed runs that register the same metrics in the same
// sequence produce byte-identical exports. Registering a name twice returns
// the existing instrument (the kind must match), which lets independent
// components share a counter without coordination.
#pragma once

#include <cstddef>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/metric.h"

namespace halfback::telemetry {

enum class MetricKind : std::uint8_t { counter, gauge, histogram };

const char* to_string(MetricKind kind);

class MetricRegistry {
 public:
  /// One catalog row, in registration order.
  struct Entry {
    std::string name;
    std::string help;
    Unit unit = Unit::none;
    MetricKind kind = MetricKind::counter;
    std::size_t index = 0;  ///< into the per-kind instrument store
  };

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Register (or look up) an instrument. Returned pointers are stable for
  /// the registry's lifetime. Throws std::invalid_argument if `name` is
  /// already registered with a different kind.
  Counter* counter(const std::string& name, const std::string& help,
                   Unit unit = Unit::none);
  Gauge* gauge(const std::string& name, const std::string& help,
               Unit unit = Unit::none);
  Histogram* histogram(const std::string& name, const std::string& help,
                       Unit unit = Unit::none,
                       unsigned sub_bucket_bits = Histogram::kDefaultSubBucketBits);

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  const Counter& counter_at(const Entry& e) const { return counters_[e.index]; }
  const Gauge& gauge_at(const Entry& e) const { return gauges_[e.index]; }
  const Histogram& histogram_at(const Entry& e) const {
    return histograms_[e.index];
  }

  /// Lookup by name (linear scan; registration-time convenience, not a hot
  /// path). Returns nullptr when absent.
  const Entry* find(const std::string& name) const;

 private:
  Entry* find_mutable(const std::string& name);

  std::vector<Entry> entries_;
  // Deques give instrument pointers stability across growth.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace halfback::telemetry
