// MetricRegistry: the named catalog of one run's instruments.
//
// Registration order — not pointer order, not name order — defines export
// order, so two same-seed runs that register the same metrics in the same
// sequence produce byte-identical exports. Registering a name twice returns
// the existing instrument (the kind must match), which lets independent
// components share a counter without coordination.
//
// Concurrency contract (the surface the sharded experiment engine contends
// on): registration and merge_from() are serialized by an internal mutex
// and safe to call from concurrent shard setup/teardown. Instrument
// *updates* through the returned pointers are NOT synchronized — each shard
// must own its instruments (its own registry) and fold results into a
// parent with merge_from() after its run completes. The read accessors are
// lock-free by design: they are meant for the export phase, after every
// worker has joined.
#pragma once

#include <cstddef>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/annotations.h"
#include "telemetry/metric.h"

namespace halfback::telemetry {

enum class MetricKind : std::uint8_t { counter, gauge, histogram };

const char* to_string(MetricKind kind);

class MetricRegistry {
 public:
  /// One catalog row, in registration order.
  struct Entry {
    std::string name;
    std::string help;
    Unit unit = Unit::none;
    MetricKind kind = MetricKind::counter;
    std::size_t index = 0;  ///< into the per-kind instrument store
  };

  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Register (or look up) an instrument. Returned pointers are stable for
  /// the registry's lifetime. Throws std::invalid_argument if `name` is
  /// already registered with a different kind.
  Counter* counter(const std::string& name, const std::string& help,
                   Unit unit = Unit::none) HB_EXCLUDES(mu_)
      HB_EFFECTS(alloc, throw, block);
  Gauge* gauge(const std::string& name, const std::string& help,
               Unit unit = Unit::none) HB_EXCLUDES(mu_)
      HB_EFFECTS(alloc, throw, block);
  Histogram* histogram(const std::string& name, const std::string& help,
                       Unit unit = Unit::none,
                       unsigned sub_bucket_bits = Histogram::kDefaultSubBucketBits)
      HB_EXCLUDES(mu_) HB_EFFECTS(alloc, throw, block);

  /// Fold another registry's instruments into this one, registering any
  /// names this registry has not seen (in `other`'s registration order, so
  /// merging identical catalogs preserves export order). Counters add,
  /// gauges keep the maximum, histograms add bucketwise (sub-bucket
  /// resolutions must match). Throws std::invalid_argument on a kind or
  /// resolution mismatch. Locks both registries; `other` must outlive the
  /// call but may be concurrently merged elsewhere.
  void merge_from(const MetricRegistry& other) HB_EXCLUDES(mu_)
      HB_EFFECTS(alloc, throw, block);

  // Read accessors are for the export phase, after all workers have joined
  // (the join is the synchronization); they take no lock so exporters can
  // hold references across iteration.
  const std::vector<Entry>& entries() const HB_NO_THREAD_SAFETY_ANALYSIS {
    return entries_;
  }
  std::size_t size() const HB_NO_THREAD_SAFETY_ANALYSIS {
    return entries_.size();
  }

  const Counter& counter_at(const Entry& e) const
      HB_NO_THREAD_SAFETY_ANALYSIS {
    return counters_[e.index];
  }
  const Gauge& gauge_at(const Entry& e) const HB_NO_THREAD_SAFETY_ANALYSIS {
    return gauges_[e.index];
  }
  const Histogram& histogram_at(const Entry& e) const
      HB_NO_THREAD_SAFETY_ANALYSIS {
    return histograms_[e.index];
  }

  /// Lookup by name (linear scan; registration-time convenience, not a hot
  /// path). Returns nullptr when absent. Export-phase accessor: no lock.
  const Entry* find(const std::string& name) const
      HB_NO_THREAD_SAFETY_ANALYSIS;

 private:
  Entry* find_mutable(const std::string& name) HB_REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<Entry> entries_ HB_GUARDED_BY(mu_);
  // Deques give instrument pointers stability across growth.
  std::deque<Counter> counters_ HB_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ HB_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ HB_GUARDED_BY(mu_);
};

}  // namespace halfback::telemetry
