#include "telemetry/span.h"

namespace halfback::telemetry {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::flow: return "flow";
    case SpanKind::handshake: return "handshake";
    case SpanKind::pacing: return "pacing";
    case SpanKind::blast: return "blast";
    case SpanKind::ropr_repair: return "ropr_repair";
    case SpanKind::fallback: return "fallback";
    case SpanKind::rto_recovery: return "rto_recovery";
  }
  return "?";
}

void SpanRecorder::merge_from(const SpanRecorder& other) {
  if (&other == this) return;
  const std::uint32_t base = static_cast<std::uint32_t>(used_);
  if (used_ + other.used_ > spans_.size()) {
    spans_.resize(used_ + other.used_);
  }
  for (std::size_t i = 0; i < other.used_; ++i) {
    Span s = other.spans_[i];
    s.id += base;
    if (s.parent != 0) s.parent += base;
    spans_[used_] = s;
    ++used_;
  }
  dropped_ += other.dropped_;
}

}  // namespace halfback::telemetry
