// Causal flow spans: where inside a flow the time went.
//
// A Span is one closed (or still-open) interval of simulated time in a
// flow's life — the whole flow, its handshake, the paced start, the blast
// phase, one ROPR repair episode, one RTO recovery episode — linked to its
// parent span so exporters can render the tree (nested Chrome B/E events)
// and `hbreport` can attribute tail latency to phases.
//
// The recorder follows the flight-recorder discipline: all storage is
// carved out at construction, the record path (open_span / close_span /
// abandon_span) is pure stores behind a null check, and overflow bumps a
// drop counter instead of growing. Installing a recorder never perturbs
// the simulation — no randomness, no scheduling, no wall clock — so the
// golden trace hashes stay bit-identical (tests/telemetry/hub_test.cpp).
//
// Determinism: span ids are assigned in open order, which is a pure
// function of the event stream; two same-seed runs produce byte-identical
// span logs. merge_from() appends another shard's spans in their recorded
// order (ids re-based), so a fixed shard-merge order yields byte-identical
// merged output at any worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/annotations.h"
#include "sim/time.h"

namespace halfback::telemetry {

/// What a span covers. `flow` is the per-flow root; the rest are children.
enum class SpanKind : std::uint8_t {
  flow = 0,      ///< whole flow: start() to completion (or export end)
  handshake,     ///< SYN out to established
  pacing,        ///< paced-start phase
  blast,         ///< capacity-blast transfer phase
  ropr_repair,   ///< one ROPR proactive-repair episode
  fallback,      ///< post-abandon fallback phase
  rto_recovery,  ///< one RTO episode: timeout fire to the next advancing ACK
};

const char* to_string(SpanKind kind);

/// One recorded interval. `id` is 1-based (0 = invalid/none); `parent` is
/// the enclosing span's id or 0 for a root. A span still open at export
/// time keeps open = true; exporters clamp its end to the run end.
struct Span {
  std::uint32_t id = 0;
  std::uint32_t parent = 0;
  std::uint64_t flow = 0;    ///< owning flow uid
  SpanKind kind = SpanKind::flow;
  bool open = false;
  bool abandoned = false;    ///< ROPR episode ended by abandonment
  sim::Time begin;
  sim::Time end;
};

/// Fixed-capacity span store. One per Hub; senders reach it through their
/// cached pointer the same way they reach their Tape.
class SpanRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit SpanRecorder(std::size_t capacity = kDefaultCapacity) {
    spans_.resize(capacity);
  }

  /// Open a span at `at`. Returns its id, or 0 when the store is full
  /// (counted in dropped()). Pure stores: the slot was preallocated.
  std::uint32_t open_span(std::uint64_t flow, SpanKind kind,
                          std::uint32_t parent, sim::Time at) HB_EFFECTS() {
    if (used_ == spans_.size()) {
      ++dropped_;
      return 0;
    }
    Span& s = spans_[used_];
    ++used_;
    s.id = static_cast<std::uint32_t>(used_);
    s.parent = parent;
    s.flow = flow;
    s.kind = kind;
    s.open = true;
    s.abandoned = false;
    s.begin = at;
    s.end = at;
    return s.id;
  }

  /// Close span `id` at `at`. Ignores 0 and already-closed ids, so callers
  /// can close unconditionally.
  void close_span(std::uint32_t id, sim::Time at) HB_EFFECTS() {
    if (id == 0 || id > used_) return;
    Span& s = spans_[id - 1];
    if (!s.open) return;
    s.open = false;
    s.end = at;
  }

  /// Flag span `id` as ended by abandonment (ROPR giving up to fallback).
  void abandon_span(std::uint32_t id) HB_EFFECTS() {
    if (id == 0 || id > used_) return;
    spans_[id - 1].abandoned = true;
  }

  std::size_t size() const { return used_; }
  const Span& at(std::size_t i) const { return spans_[i]; }
  std::size_t capacity() const { return spans_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  /// Append another recorder's spans in their recorded order, re-basing
  /// ids and parent links past this recorder's. Setup/merge path only.
  void merge_from(const SpanRecorder& other) HB_EFFECTS(alloc);

 private:
  std::vector<Span> spans_;
  std::size_t used_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace halfback::telemetry
