#include "telemetry/timeseries.h"

#include <stdexcept>

namespace halfback::telemetry {

void WindowSeries::merge_from(const WindowSeries& other) {
  if (&other == this) return;
  if (other.width_ != width_) {
    throw std::invalid_argument{"series '" + name_ +
                                "': window widths differ; cannot merge"};
  }
  const std::size_t shared =
      other.used_ < windows_.size() ? other.used_ : windows_.size();
  for (std::size_t i = 0; i < shared; ++i) {
    const WindowSample& from = other.windows_[i];
    WindowSample& into = windows_[i];
    into.bytes += from.bytes;
    into.packets += from.packets;
    into.drops += from.drops;
    into.retx += from.retx;
    into.dups += from.dups;
    if (from.queue_peak > into.queue_peak) into.queue_peak = from.queue_peak;
    if (from.inflight_peak > into.inflight_peak) {
      into.inflight_peak = from.inflight_peak;
    }
  }
  if (shared > used_) used_ = shared;
  dropped_ += other.dropped_;
  // Windows the other shard recorded past this series' capacity stay
  // dropped — both sides were constructed with the same limits in any
  // sane sharded setup, so shared == other.used_ in practice.
  if (other.used_ > windows_.size()) {
    dropped_ += other.used_ - windows_.size();
  }
}

}  // namespace halfback::telemetry
