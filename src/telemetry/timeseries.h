// Windowed time-series: tumbling sim-time windows of link and flow-class
// activity — queue depth, in-flight bytes, goodput, loss/retx/dup tallies —
// the dashboard input the end-of-run aggregates cannot provide.
//
// A WindowSeries owns a fixed array of tumbling windows, sized at
// construction: window i covers [i*width, (i+1)*width) of simulated time.
// The record path (the tally_* and raise_* calls) is pure stores into the
// preallocated slot for `at`; activity past the last window bumps a drop
// counter instead of growing, so instrumented components never allocate on
// the packet or ACK path.
//
// Determinism and sharding: window contents are a pure function of the
// event stream, so two same-seed runs export byte-identical series.
// merge_from() folds another shard's windows in (tallies add, peaks max)
// aligned by window index; Hub::merge_from merges series by name in the
// other hub's creation order — the same registration-order discipline
// MetricRegistry uses — so a fixed shard-merge order produces
// byte-identical merged output at any worker count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/annotations.h"
#include "sim/time.h"

namespace halfback::telemetry {

/// One tumbling window's tallies. Additive fields accumulate within the
/// window; *_peak fields are high-water marks.
struct WindowSample {
  std::uint64_t bytes = 0;          ///< delivered (link) / acked (flow) bytes
  std::uint64_t packets = 0;        ///< packets or segments sent/delivered
  std::uint64_t drops = 0;          ///< queue + fault drops
  std::uint64_t retx = 0;           ///< retransmitted segments
  std::uint64_t dups = 0;           ///< duplicate (non-advancing) ACKs
  std::uint64_t queue_peak = 0;     ///< high-water queue depth, packets
  std::uint64_t inflight_peak = 0;  ///< high-water in-flight bytes

  bool touched() const {
    return (bytes | packets | drops | retx | dups | queue_peak |
            inflight_peak) != 0;
  }
};

/// One named series of tumbling windows (per link or per flow class).
/// Create through Hub::series(); components hold the pointer and record
/// behind a null check, exactly like Tape.
class WindowSeries {
 public:
  static constexpr std::size_t kDefaultMaxWindows = 4096;

  WindowSeries(std::string name, sim::Time width, std::size_t max_windows)
      : name_{std::move(name)},
        width_{width.ns() > 0 ? width : sim::Time::nanoseconds(1)} {
    windows_.resize(max_windows);
  }

  void tally_bytes(sim::Time at, std::uint64_t n) HB_EFFECTS() {
    if (WindowSample* w = window_slot(at)) w->bytes += n;
  }
  void tally_packets(sim::Time at, std::uint64_t n) HB_EFFECTS() {
    if (WindowSample* w = window_slot(at)) w->packets += n;
  }
  void tally_drop(sim::Time at) HB_EFFECTS() {
    if (WindowSample* w = window_slot(at)) ++w->drops;
  }
  void tally_retx(sim::Time at) HB_EFFECTS() {
    if (WindowSample* w = window_slot(at)) ++w->retx;
  }
  void tally_dup(sim::Time at) HB_EFFECTS() {
    if (WindowSample* w = window_slot(at)) ++w->dups;
  }
  void raise_queue_peak(sim::Time at, std::uint64_t depth) HB_EFFECTS() {
    WindowSample* w = window_slot(at);
    if (w != nullptr && depth > w->queue_peak) w->queue_peak = depth;
  }
  void raise_inflight_peak(sim::Time at, std::uint64_t bytes) HB_EFFECTS() {
    WindowSample* w = window_slot(at);
    if (w != nullptr && bytes > w->inflight_peak) w->inflight_peak = bytes;
  }

  const std::string& name() const { return name_; }
  sim::Time width() const { return width_; }
  /// Windows [0, window_count()) cover everything recorded; trailing
  /// untouched windows are not counted.
  std::size_t window_count() const { return used_; }
  const WindowSample& window(std::size_t i) const { return windows_[i]; }
  std::size_t max_windows() const { return windows_.size(); }
  std::uint64_t dropped() const { return dropped_; }

  /// Fold another series' windows into this one, aligned by index
  /// (tallies add, peaks max). Throws if the window widths differ —
  /// mismatched shards cannot be merged meaningfully. Merge path only.
  void merge_from(const WindowSeries& other);

 private:
  WindowSample* window_slot(sim::Time at) HB_EFFECTS() {
    const std::int64_t ns = at.ns() < 0 ? 0 : at.ns();
    const std::size_t i = static_cast<std::size_t>(ns / width_.ns());
    if (i >= windows_.size()) {
      ++dropped_;
      return nullptr;
    }
    if (i + 1 > used_) used_ = i + 1;
    return &windows_[i];
  }

  std::string name_;
  sim::Time width_;
  std::vector<WindowSample> windows_;
  std::size_t used_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace halfback::telemetry
