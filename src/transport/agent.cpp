#include "transport/agent.h"

#include <utility>

namespace halfback::transport {

TransportAgent::TransportAgent(sim::Simulator& simulator, net::Network& network,
                               net::NodeId node)
    : simulator_{simulator}, node_{network.node(node)} {
  node_.set_local_handler([this](net::Packet p) { on_packet(std::move(p)); });
}

SenderBase& TransportAgent::start_flow(std::unique_ptr<SenderBase> sender,
                                       SenderBase::CompletionRef on_complete) {
  SenderBase& ref = *sender;
  const net::FlowId flow = ref.record().flow;
  ref.set_completion_callback(
      SenderBase::CompletionRef::from<&TransportAgent::on_sender_complete>(
          *this));
  senders_[flow] = FlowSlot{std::move(sender), on_complete};
  // Pre-size the dedup set for the ACK-per-segment this flow will deliver
  // (plus headroom for retransmissions): growth rehashes showed up as a
  // measurable slice of per-packet cost in steady state.
  seen_uids_.reserve(seen_uids_.size() + 2 * ref.record().total_segments);
  if (telemetry_ != nullptr) ref.set_telemetry(telemetry_);
  ref.start();
  return ref;
}

void TransportAgent::on_sender_complete(const FlowRecord& record) {
  completed_.push_back(record);
  auto it = senders_.find(record.flow);
  if (it != senders_.end() && it->second.on_complete) {
    it->second.on_complete(record);
  }
}

void TransportAgent::on_receiver_complete(const Receiver& receiver) {
  if (on_receive_complete_) on_receive_complete_(receiver);
}

SenderBase* TransportAgent::sender(net::FlowId flow) {
  auto it = senders_.find(flow);
  return it == senders_.end() ? nullptr : it->second.sender.get();
}

Receiver* TransportAgent::receiver(net::FlowId flow) {
  auto it = receivers_.find(flow);
  return it == receivers_.end() ? nullptr : it->second.get();
}

std::size_t TransportAgent::active_sender_count() const {
  std::size_t active = 0;
  for (const auto& [flow, slot] : senders_) {
    if (!slot.sender->complete()) ++active;
  }
  return active;
}

void TransportAgent::on_packet(net::Packet packet) {
  // Checksum check: a payload corrupted in flight (netfault) fails
  // verification here, before any flow state can act on it. The sender's
  // normal loss machinery recovers, exactly as for a dropped packet.
  if (packet.corrupted) {
    ++delivery_stats_.corrupted_rejected;
    return;
  }
  // Wire-duplicate rejection: a link-level duplicate is an exact copy of an
  // earlier transmission, uid included. Transport state downstream is
  // idempotent anyway (receiver bitmap, scoreboard monotonicity), but
  // rejecting the copy here keeps duplication from double-sampling RTTs or
  // re-triggering ACK-clocked machinery. uid 0 marks packets outside the
  // uid scheme (bare-component tests); those skip dedup.
  if (packet.uid != 0) {
    const std::uint64_t key =
        packet.uid ^ (static_cast<std::uint64_t>(packet.type) << 62);
    if (!seen_uids_.insert(key)) {
      ++delivery_stats_.duplicate_rejected;
      return;
    }
  }
  ++delivery_stats_.accepted;
  switch (packet.type) {
    case net::PacketType::syn: {
      auto it = receivers_.find(packet.flow);
      if (it == receivers_.end()) {
        // The SYN announces the flow length; pre-size the dedup set for the
        // data packets about to arrive (see start_flow).
        seen_uids_.reserve(seen_uids_.size() + 2 * packet.total_segments);
        auto receiver = std::make_unique<Receiver>(simulator_, node_, packet.src,
                                                   packet.flow, receiver_config_);
        receiver->set_completion_callback(
            Receiver::CompletionRef::from<
                &TransportAgent::on_receiver_complete>(*this));
        it = receivers_.emplace(packet.flow, std::move(receiver)).first;
      }
      it->second->on_packet(packet);
      break;
    }
    case net::PacketType::data: {
      auto it = receivers_.find(packet.flow);
      if (it != receivers_.end()) it->second->on_packet(packet);
      // Data for an unknown flow (SYN lost): drop; the sender's SYN retry
      // will re-create state. Senders only emit data after the handshake,
      // so this happens only in pathological reorderings.
      break;
    }
    case net::PacketType::syn_ack:
    case net::PacketType::ack: {
      auto it = senders_.find(packet.flow);
      if (it != senders_.end()) it->second.sender->on_packet(packet);
      break;
    }
  }
}

}  // namespace halfback::transport
