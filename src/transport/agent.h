// Per-host protocol stack: demultiplexes flows to senders and receivers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "net/node.h"
#include "net/packet.h"
#include "sim/annotations.h"
#include "transport/receiver.h"
#include "transport/sender.h"
#include "transport/uid_set.h"

namespace halfback::transport {

/// Wire-delivery accounting for one host: what arrived, and what the
/// transport refused to act on. The rejected counters stay zero unless a
/// netfault::FaultInjector (or similar) is corrupting or duplicating
/// packets upstream.
struct DeliveryStats {
  std::uint64_t accepted = 0;            ///< packets dispatched to a flow
  std::uint64_t corrupted_rejected = 0;  ///< failed the checksum check
  std::uint64_t duplicate_rejected = 0;  ///< exact wire duplicate (same uid)
};

/// The host-side glue: owns every sender started on this host and every
/// receiver spawned by an incoming SYN, and routes arriving packets to
/// them. Install one agent per end host.
class TransportAgent {
 public:
  TransportAgent(sim::Simulator& simulator, net::Network& network, net::NodeId node);

  TransportAgent(const TransportAgent&) = delete;
  TransportAgent& operator=(const TransportAgent&) = delete;

  /// Take ownership of a sender and start it. The agent chains your
  /// completion callback after its own bookkeeping. The callback is a
  /// non-owning FunctionRef: its referent must outlive the flow (capture
  /// state in a long-lived object, not a temporary lambda).
  SenderBase& start_flow(std::unique_ptr<SenderBase> sender,
                         SenderBase::CompletionRef on_complete = {})
      HB_EFFECTS(alloc, throw);

  /// Attach a telemetry hub (nullptr detaches; owned by the caller).
  /// Senders started afterwards get their flight-recorder tape installed
  /// before start() runs.
  void set_telemetry(telemetry::Hub* hub) { telemetry_ = hub; }

  /// Configuration applied to receivers this agent spawns (delayed ACKs,
  /// SACK block budget). Affects only receivers created afterwards.
  void set_receiver_config(Receiver::Config config) { receiver_config_ = config; }

  /// Invoked whenever a receiver on this host completes a flow
  /// (application-level delivery of all bytes).
  void set_receiver_completion_callback(std::function<void(const Receiver&)> cb) {
    on_receive_complete_ = std::move(cb);
  }

  net::NodeId node_id() const { return node_.id(); }
  net::Node& node() { return node_; }

  /// Look up a live sender/receiver (nullptr if absent).
  SenderBase* sender(net::FlowId flow);
  Receiver* receiver(net::FlowId flow);

  /// Completed flow records accumulated on this host.
  const std::vector<FlowRecord>& completed() const { return completed_; }

  /// Wire-delivery accounting (checksum + duplicate rejection counters).
  const DeliveryStats& delivery_stats() const { return delivery_stats_; }

  std::size_t active_sender_count() const;

 private:
  /// A sender plus the caller's completion callback. The sender notifies
  /// the agent (on_sender_complete) through a FunctionRef; the agent then
  /// records the flow and chains the caller's callback — no per-flow
  /// std::function anywhere.
  struct FlowSlot {
    std::unique_ptr<SenderBase> sender;
    SenderBase::CompletionRef on_complete;
  };

  void on_packet(net::Packet packet) HB_EFFECTS(alloc);
  void on_sender_complete(const FlowRecord& record);
  void on_receiver_complete(const Receiver& receiver);

  sim::Simulator& simulator_;
  net::Node& node_;
  std::unordered_map<net::FlowId, FlowSlot> senders_;
  std::unordered_map<net::FlowId, std::unique_ptr<Receiver>> receivers_;
  std::vector<FlowRecord> completed_;
  std::function<void(const Receiver&)> on_receive_complete_;
  Receiver::Config receiver_config_;
  DeliveryStats delivery_stats_;
  telemetry::Hub* telemetry_ = nullptr;  ///< not owned; nullptr = off
  /// Wire uids already dispatched on this host (keyed with the packet type
  /// so a sender-assigned data uid and a receiver-assigned ACK uid of the
  /// same flow can never collide). Injected duplicates are exact copies —
  /// same uid — so they are rejected here, once, at the delivery boundary.
  UidSet seen_uids_;
};

}  // namespace halfback::transport
