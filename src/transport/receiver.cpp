#include "transport/receiver.h"

#include <algorithm>

namespace halfback::transport {

Receiver::Receiver(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
                   net::FlowId flow, Config config)
    : simulator_{simulator},
      node_{local_node},
      peer_{peer},
      flow_{flow},
      config_{config} {
  delack_timer_.bind(
      simulator_,
      sim::FunctionRef<void()>::from<&Receiver::fire_delayed_ack>(*this));
}

// delack_timer_ cancels itself on destruction.
Receiver::~Receiver() = default;

void Receiver::on_packet(const net::Packet& packet) {
  switch (packet.type) {
    case net::PacketType::syn:
      handle_syn(packet);
      break;
    case net::PacketType::data:
      handle_data(packet);
      break;
    default:
      break;  // receivers ignore stray ACK/SYN-ACK
  }
}

void Receiver::handle_syn(const net::Packet& syn) {
  if (received_.empty() && syn.total_segments > 0) {
    stats_.total_segments = syn.total_segments;
    received_.assign(syn.total_segments, false);
  }
  net::Packet reply;
  reply.flow = flow_;
  reply.type = net::PacketType::syn_ack;
  reply.src = node_.id();
  reply.dst = peer_;
  reply.size_bytes = net::kControlWireBytes;
  reply.echo_uid = syn.uid;
  reply.uid = (flow_ << 24) + next_uid_++;
  reply.sent_at = simulator_.now();
  node_.send(std::move(reply));
}

void Receiver::handle_data(const net::Packet& data) {
  // A receiver can see data before the SYN if the SYN-ACK was lost and the
  // sender opened anyway; size the bitmap from the data header.
  if (received_.empty() && data.total_segments > 0) {
    stats_.total_segments = data.total_segments;
    received_.assign(data.total_segments, false);
  }
  ++stats_.data_packets;
  if (stats_.data_packets == 1) stats_.first_data_at = simulator_.now();

  if (data.seq < received_.size() && !received_[data.seq]) {
    received_[data.seq] = true;
    note_received(data.seq);
    ++stats_.unique_segments;
    highest_received_ = std::max(highest_received_, data.seq + 1);
    while (cum_ack_ < received_.size() && received_[cum_ack_]) ++cum_ack_;
    if (!stats_.complete && stats_.unique_segments == stats_.total_segments) {
      stats_.complete = true;
      stats_.complete_at = simulator_.now();
      if (on_complete_) on_complete_(*this);
    }
  } else {
    ++stats_.duplicate_segments;
  }
  const bool in_order = data.seq < cum_ack_ || stats_.complete ||
                        (data.seq + 1 == cum_ack_);
  maybe_ack(data, in_order);
}

void Receiver::maybe_ack(const net::Packet& trigger, bool in_order) {
  if (!config_.delayed_ack) {
    send_ack(trigger);
    return;
  }
  ++unacked_arrivals_;
  pending_trigger_ = trigger;
  // RFC 1122-style: ACK at least every second segment and never delay an
  // ACK that carries loss information (out-of-order arrival).
  if (!in_order || unacked_arrivals_ >= 2 || stats_.complete) {
    fire_delayed_ack();
    return;
  }
  if (!delack_timer_.pending()) {
    delack_timer_.schedule_after(config_.delayed_ack_timeout);
  }
}

void Receiver::fire_delayed_ack() {
  if (unacked_arrivals_ == 0) return;
  delack_timer_.cancel();
  unacked_arrivals_ = 0;
  send_ack(pending_trigger_);
}

void Receiver::note_received(std::uint32_t seq) {
  // Merge [seq, seq + 1) into the run set: extend the left-adjacent run,
  // absorb the right-adjacent one, or open a new run.
  auto right = runs_.find(seq + 1);
  auto after = runs_.upper_bound(seq);
  if (after != runs_.begin()) {
    auto left = std::prev(after);
    if (left->second == seq) {
      left->second = seq + 1;
      if (right != runs_.end()) {
        left->second = right->second;
        runs_.erase(right);
      }
      return;
    }
  }
  if (right != runs_.end()) {
    const std::uint32_t end = right->second;
    runs_.erase(right);
    runs_.emplace(seq, end);
  } else {
    runs_.emplace(seq, seq + 1);
  }
}

net::SackBlock Receiver::run_containing(std::uint32_t seq) const {
  net::SackBlock block{seq, seq};
  auto after = runs_.upper_bound(seq);  // first run starting above seq
  if (after == runs_.begin()) return block;  // empty: seq not received
  const auto run = std::prev(after);
  if (seq >= run->second) return block;  // empty: gap after the prior run
  // A run never reports below the cumulative ACK (those segments are
  // covered by cum_ack, exactly where the bitmap walk used to stop).
  block.begin = std::max(run->first, cum_ack_);
  block.end = run->second;
  return block;
}

net::SackList Receiver::build_sack_blocks(std::uint32_t trigger_seq) {
  // TCP SACK semantics: the first block covers the segment that triggered
  // this ACK; the remaining slots repeat the most recently reported other
  // runs. The sender accumulates blocks across ACKs in its scoreboard.
  if (trigger_seq >= cum_ack_) {
    std::erase(recent_seqs_, trigger_seq);
    recent_seqs_.insert(recent_seqs_.begin(), trigger_seq);
    if (recent_seqs_.size() > 2 * config_.max_sack_blocks) {
      recent_seqs_.resize(2 * config_.max_sack_blocks);
    }
  }
  const std::size_t limit =
      std::min(config_.max_sack_blocks, net::SackList::kMaxBlocks);
  net::SackList blocks;
  for (std::uint32_t anchor : recent_seqs_) {
    if (blocks.size() >= limit) break;
    if (anchor < cum_ack_) continue;  // merged into the cumulative ACK
    net::SackBlock block = run_containing(anchor);
    if (block.begin >= block.end) continue;
    bool duplicate = false;
    for (const net::SackBlock& existing : blocks) {
      if (existing.begin <= block.begin && block.end <= existing.end) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) blocks.push_back(block);
  }
  // Drop anchors that have been absorbed by the cumulative ACK.
  std::erase_if(recent_seqs_, [this](std::uint32_t s) { return s < cum_ack_; });
  return blocks;
}

void Receiver::send_ack(const net::Packet& trigger) {
  net::Packet ack;
  ack.flow = flow_;
  ack.type = net::PacketType::ack;
  ack.src = node_.id();
  ack.dst = peer_;
  ack.size_bytes = net::kAckWireBytes;
  ack.seq = trigger.seq;
  ack.cum_ack = cum_ack_;
  ack.sacks = build_sack_blocks(trigger.seq);
  ack.echo_uid = trigger.uid;
  ack.uid = (flow_ << 24) + next_uid_++;
  ack.sent_at = simulator_.now();
  ++stats_.acks_sent;
  node_.send(std::move(ack));
}

}  // namespace halfback::transport
