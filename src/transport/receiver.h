// Flow receiver: acknowledges data with cumulative + selective ACKs.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/node.h"
#include "net/packet.h"
#include "sim/function_ref.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace halfback::transport {

/// Receiver half of a flow. Created by the TransportAgent when a SYN
/// arrives. By default sends one ACK per arriving data packet (the paper's
/// UDT substrate used per-packet selective acknowledgements); classic TCP
/// delayed ACKs (ack every 2nd in-order segment, or after a timer) are
/// available as a realism knob — they halve the ACK clock that paces both
/// TCP's window growth and Halfback's ROPR.
class Receiver {
 public:
  struct Config {
    std::size_t max_sack_blocks = 3;
    bool delayed_ack = false;
    sim::Time delayed_ack_timeout = sim::Time::milliseconds(40);
  };
  struct Stats {
    std::uint32_t total_segments = 0;
    std::uint32_t unique_segments = 0;
    std::uint32_t duplicate_segments = 0;  ///< arrivals of already-held data
    std::uint32_t data_packets = 0;
    std::uint32_t acks_sent = 0;
    bool complete = false;
    sim::Time first_data_at;
    sim::Time complete_at;
  };

  /// Non-owning completion notification (see SenderBase::CompletionRef):
  /// the callee — in practice the spawning TransportAgent — must outlive
  /// the receiver.
  using CompletionRef = sim::FunctionRef<void(const Receiver&)>;

  /// `config.max_sack_blocks` defaults to 3, matching the TCP SACK
  /// option's practical limit. Scattered losses across more than three
  /// runs are therefore only partially visible to the sender per ACK — the
  /// fragility of purely reactive loss detection that §2.2 highlights.
  Receiver(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
           net::FlowId flow)
      : Receiver{simulator, local_node, peer, flow, Config{}} {}
  Receiver(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
           net::FlowId flow, Config config);
  ~Receiver();

  void set_completion_callback(CompletionRef cb) { on_complete_ = cb; }

  /// Entry point for SYN and DATA packets of this flow.
  void on_packet(const net::Packet& packet) HB_EFFECTS(alloc, throw);

  const Stats& stats() const { return stats_; }
  net::FlowId flow() const { return flow_; }

  /// Lowest segment index not yet received.
  std::uint32_t cum_ack() const { return cum_ack_; }

 private:
  void handle_syn(const net::Packet& syn);
  void handle_data(const net::Packet& data);
  void send_ack(const net::Packet& trigger);
  /// Delayed-ACK policy: ACK immediately on the 2nd in-order arrival, any
  /// out-of-order arrival (dupACK duty), or the delack timer; otherwise
  /// hold and arm the timer.
  void maybe_ack(const net::Packet& trigger, bool in_order);
  void fire_delayed_ack();
  /// Up to max_sack_blocks blocks (clamped to net::SackList::kMaxBlocks):
  /// the run containing the triggering segment first, then the most
  /// recently reported other runs (TCP SACK option semantics).
  net::SackList build_sack_blocks(std::uint32_t trigger_seq);
  net::SackBlock run_containing(std::uint32_t seq) const;
  /// Merge a newly-received segment into runs_.
  void note_received(std::uint32_t seq);

  sim::Simulator& simulator_;
  net::Node& node_;
  net::NodeId peer_;
  net::FlowId flow_;
  Config config_;
  CompletionRef on_complete_;
  sim::StaticTimer delack_timer_;
  int unacked_arrivals_ = 0;
  net::Packet pending_trigger_;  ///< newest data packet awaiting an ACK

  std::vector<bool> received_;
  /// Maximal runs of received segments, keyed by run start (half-open
  /// [begin, end)). Mirrors received_: SACK-block construction reads a run
  /// in one lookup instead of walking the bitmap, whose runs grow to the
  /// whole window as a flow progresses.
  std::map<std::uint32_t, std::uint32_t> runs_;
  std::uint32_t cum_ack_ = 0;
  std::uint32_t highest_received_ = 0;  ///< one past highest received index
  std::vector<std::uint32_t> recent_seqs_;  ///< anchors of recently reported runs
  std::uint64_t next_uid_ = 1;
  Stats stats_;
};

}  // namespace halfback::transport
