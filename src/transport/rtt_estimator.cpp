#include "transport/rtt_estimator.h"

#include <algorithm>

namespace halfback::transport {

void RttEstimator::add_sample(sim::Time rtt) {
  if (rtt < sim::Time::zero()) return;
  latest_rtt_ = rtt;
  min_rtt_ = std::min(min_rtt_, rtt);
  if (!has_sample_) {
    // RFC 6298 (2.2): first measurement.
    srtt_ = rtt;
    rttvar_ = rtt / 2.0;
    has_sample_ = true;
  } else {
    // RFC 6298 (2.3): RTTVAR before SRTT, beta = 1/4, alpha = 1/8.
    sim::Time err = srtt_ - rtt;
    if (err < sim::Time::zero()) err = rtt - srtt_;
    rttvar_ = rttvar_ * 0.75 + err * 0.25;
    srtt_ = srtt_ * 0.875 + rtt * 0.125;
  }
  backoff_multiplier_ = 1;
}

sim::Time RttEstimator::rto() const {
  sim::Time base = has_sample_ ? srtt_ + 4.0 * rttvar_ : config_.initial_rto;
  base = std::max(base, config_.min_rto);
  base = base * static_cast<double>(backoff_multiplier_);
  return std::min(base, config_.max_rto);
}

void RttEstimator::backoff() {
  if (backoff_multiplier_ < (1 << 16)) backoff_multiplier_ *= 2;
}

}  // namespace halfback::transport
