// RFC 6298 round-trip-time estimation and retransmission timeout.
#pragma once

#include "sim/annotations.h"
#include "sim/time.h"

namespace halfback::transport {

/// Smoothed RTT / RTT variance estimator with exponential RTO backoff.
///
/// All schemes in the paper share this machinery; what differs between them
/// is *when* they transmit, not how they estimate the path.
class RttEstimator {
 public:
  struct Config {
    sim::Time initial_rto = sim::Time::seconds(1);
    /// RFC 6298's 1-second floor (the paper's UDT substrate behaves the
    /// same way). The magnitude of the timeout is exactly what Halfback's
    /// ROPR masks and what makes JumpStart's reactive-only recovery
    /// expensive, so lowering this (Linux uses 200 ms) compresses the
    /// paper's gaps.
    sim::Time min_rto = sim::Time::seconds(1);
    sim::Time max_rto = sim::Time::seconds(60);
  };

  RttEstimator() : RttEstimator{Config{}} {}
  explicit RttEstimator(Config config) : config_{config} {}

  /// Feed one Karn-valid RTT sample.
  void add_sample(sim::Time rtt) HB_EFFECTS();

  /// Current retransmission timeout, including any backoff in effect.
  sim::Time rto() const HB_EFFECTS();

  /// Double the timeout after a retransmission timeout fires.
  void backoff();

  /// Collapse accumulated backoff (called when new data is acked).
  void reset_backoff() { backoff_multiplier_ = 1; }

  bool has_sample() const { return has_sample_; }
  sim::Time srtt() const { return srtt_; }
  sim::Time rttvar() const { return rttvar_; }
  sim::Time min_rtt() const { return min_rtt_; }
  sim::Time latest_rtt() const { return latest_rtt_; }

 private:
  Config config_;
  bool has_sample_ = false;
  sim::Time srtt_;
  sim::Time rttvar_;
  sim::Time min_rtt_ = sim::Time::infinity();
  sim::Time latest_rtt_;
  int backoff_multiplier_ = 1;
};

}  // namespace halfback::transport
