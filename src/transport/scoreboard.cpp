#include "transport/scoreboard.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace halfback::transport {

Scoreboard::Scoreboard(std::uint32_t total_segments) : total_{total_segments} {
  if (total_segments == 0) throw std::invalid_argument{"flow must have at least one segment"};
}

std::optional<std::uint32_t> Scoreboard::next_unsent() const {
  if (next_sent_ >= total_) return std::nullopt;
  return next_sent_;
}

SegmentState& Scoreboard::ensure_state(std::uint32_t seq) {
  if (seq < window_base_) {
    throw std::logic_error{"ensure_state below the acknowledged window"};
  }
  while (window_base_ + window_.size() <= seq) window_.emplace_back();
  return window_[seq - window_base_];
}

const SegmentState* Scoreboard::state(std::uint32_t seq) const {
  if (seq < window_base_ || seq >= window_base_ + window_.size()) return nullptr;
  return &window_[seq - window_base_];
}

SegmentState* Scoreboard::mutable_state(std::uint32_t seq) {
  if (seq < window_base_ || seq >= window_base_ + window_.size()) return nullptr;
  return &window_[seq - window_base_];
}

void Scoreboard::on_sent(std::uint32_t seq, std::uint64_t uid, sim::Time now,
                         bool proactive) {
  if (seq >= total_) throw std::logic_error{"on_sent beyond flow length"};
  if (seq < cum_ack_) return;  // stale retransmission of an acked segment
  SegmentState& s = ensure_state(seq);
  account(s, seq, -1);
  if (s.times_sent == 0) s.first_sent = now;
  // Saturate rather than wrap: a pathological retransmit storm (RTO backoff
  // bugs, fuzzed traces) could otherwise overflow the 16-bit counters and
  // make a 65536th transmission look like a first send to Karn's filter.
  constexpr auto kMaxSent = std::numeric_limits<std::uint16_t>::max();
  if (s.times_sent < kMaxSent) ++s.times_sent;
  if (proactive && s.proactive_sent < kMaxSent) ++s.proactive_sent;
  s.last_sent = now;
  s.last_uid = uid;
  if (s.lost && !proactive) s.retx_after_loss = true;
  account(s, seq, +1);
  if (seq >= next_sent_) next_sent_ = seq + 1;
}

void Scoreboard::trim() {
  while (!window_.empty() && window_base_ < cum_ack_) {
    account(window_.front(), window_base_, -1);
    window_.pop_front();
    ++window_base_;
  }
  if (window_.empty()) window_base_ = cum_ack_;
}

AckUpdate Scoreboard::apply_ack(std::uint32_t cum_ack,
                                std::span<const net::SackBlock> sacks) {
  AckUpdate update;
  update.cum_ack_before = cum_ack_;
  if (cum_ack > cum_ack_) {
    update.newly_cum_acked = cum_ack - cum_ack_;
    // Segments newly covered by the cumulative ACK that had been SACKed
    // already were counted when the SACK arrived; subtract them so callers
    // can use newly_acked_total() for congestion-window growth.
    for (std::uint32_t seq = cum_ack_; seq < cum_ack; ++seq) {
      const SegmentState* s = state(seq);
      if (s != nullptr && s->sacked) {
        --update.newly_cum_acked;
      } else if (s == nullptr || s->times_sent == 0) {
        ++update.backfill_acked;  // delivered by an out-of-band copy
      }
    }
    cum_ack_ = std::min(cum_ack, total_);
    // The cumulative ACK can overtake next_sent_ when an out-of-band copy
    // (RC3's low-priority batch) delivered segments this loop never sent.
    // Those segments need no transmission — advance the new-data cursor past
    // them, or next_unsent() would hand send_available() a sequence whose
    // on_sent() is dropped as stale and the send loop would never progress.
    if (next_sent_ < cum_ack_) next_sent_ = cum_ack_;
    trim();
  }
  update.cum_ack_after = cum_ack_;

  for (const net::SackBlock& block : sacks) {
    for (std::uint32_t seq = std::max(block.begin, cum_ack_); seq < block.end; ++seq) {
      if (seq >= total_) break;
      SegmentState& s = ensure_state(seq);
      if (!s.sacked) {
        account(s, seq, -1);
        s.sacked = true;
        account(s, seq, +1);
        update.newly_sacked.push_back(seq);
        if (s.times_sent == 0) ++update.backfill_acked;
      }
    }
  }
  return update;
}

std::vector<std::uint32_t> Scoreboard::detect_losses(int dup_threshold) {
  std::vector<std::uint32_t> newly_lost;
  if (window_.empty()) return newly_lost;
  // Loss-free fast path: with nothing SACKed, no un-SACKed segment can have
  // dup_threshold SACKed segments above it, so the scan below would mark
  // nothing. This skips the per-ACK window walk for the common clean flow.
  if (sacked_in_window_ == 0 && dup_threshold > 0) return newly_lost;

  // Count SACKed segments above each un-SACKed, sent segment: walk the
  // window from the top accumulating the count. Positions at or above
  // highest_sacked_ (a conservative-high hint) contain no SACKed segment,
  // so for a positive threshold they can neither be marked lost nor change
  // the accumulator — skip them.
  std::size_t start = window_.size();
  if (dup_threshold > 0) {
    const std::size_t cap =
        highest_sacked_ > window_base_ ? highest_sacked_ - window_base_ : 0;
    start = std::min(start, cap);
  }
  int sacked_above = 0;
  for (std::size_t i = start; i-- > 0;) {
    SegmentState& s = window_[i];
    const std::uint32_t seq = window_base_ + static_cast<std::uint32_t>(i);
    if (seq < cum_ack_) break;
    if (s.sacked) {
      ++sacked_above;
      continue;
    }
    if (s.times_sent > 0 && !s.lost && sacked_above >= dup_threshold) {
      account(s, seq, -1);
      s.lost = true;
      s.retx_after_loss = false;
      account(s, seq, +1);
      newly_lost.push_back(seq);
    }
  }
  std::reverse(newly_lost.begin(), newly_lost.end());
  return newly_lost;
}

void Scoreboard::mark_all_outstanding_lost() {
  for (std::size_t i = 0; i < window_.size(); ++i) {
    SegmentState& s = window_[i];
    if (s.times_sent > 0 && !s.sacked) {
      const std::uint32_t seq = window_base_ + static_cast<std::uint32_t>(i);
      account(s, seq, -1);
      s.lost = true;
      s.retx_after_loss = false;
      account(s, seq, +1);
    }
  }
}

std::optional<std::uint32_t> Scoreboard::next_lost_needing_retx() const {
  if (lost_pending_ == 0) return std::nullopt;
  // lost_floor_ is a conservative-low bound on the lowest matching seq, so
  // the scan can start there instead of at the window base; the result is
  // the same as a full scan. Found position re-tightens the hint.
  std::size_t i = lost_floor_ > window_base_ ? lost_floor_ - window_base_ : 0;
  for (; i < window_.size(); ++i) {
    const SegmentState& s = window_[i];
    if (s.lost && !s.retx_after_loss && !s.sacked && s.times_sent > 0) {
      const std::uint32_t seq = window_base_ + static_cast<std::uint32_t>(i);
      lost_floor_ = seq;
      return seq;
    }
  }
  return std::nullopt;
}

std::uint32_t Scoreboard::pipe() const {
#ifndef NDEBUG
  // Cross-check the incremental aggregate against a window scan in debug
  // builds: any mutation path that skips its account() bracket shows up in
  // the unit/fuzz suites as an assertion, not as a silent behaviour drift.
  std::uint32_t scanned = 0;
  for (std::size_t i = 0; i < window_.size(); ++i) {
    const std::uint32_t seq = window_base_ + static_cast<std::uint32_t>(i);
    if (seq < cum_ack_ || seq >= next_sent_) continue;
    const SegmentState& s = window_[i];
    if (s.times_sent == 0 || s.sacked) continue;
    if (s.lost && !s.retx_after_loss) continue;
    ++scanned;
  }
  assert(scanned == static_cast<std::uint32_t>(pipe_) &&
         "incremental pipe aggregate out of sync with window state");
#endif
  return static_cast<std::uint32_t>(pipe_);
}

std::uint32_t Scoreboard::flow_control_limit(std::uint32_t window) const {
  return std::min(cum_ack_ + window, total_);
}

std::uint32_t Scoreboard::highest_sent() const { return next_sent_; }

bool Scoreboard::is_sacked(std::uint32_t seq) const {
  const SegmentState* s = state(seq);
  return s != nullptr && s->sacked;
}

bool Scoreboard::is_acked(std::uint32_t seq) const {
  return seq < cum_ack_ || is_sacked(seq);
}

}  // namespace halfback::transport
