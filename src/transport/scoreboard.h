// Sender-side SACK scoreboard over a sliding window of segments.
#pragma once

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.h"
#include "sim/annotations.h"
#include "sim/time.h"

namespace halfback::transport {

/// Per-segment transmission state tracked by the sender.
struct SegmentState {
  std::uint16_t times_sent = 0;      ///< all transmissions, incl. proactive
  std::uint16_t proactive_sent = 0;  ///< proactive retransmissions only
  bool sacked = false;
  bool lost = false;                  ///< deemed lost by SACK rule or RTO
  bool retx_after_loss = false;       ///< loss-triggered retransmission done
  bool rtt_sampled = false;           ///< an RTT sample was taken for this segment
  sim::Time first_sent;
  sim::Time last_sent;
  std::uint64_t last_uid = 0;
};

/// What an arriving ACK changed.
struct AckUpdate {
  std::uint32_t cum_ack_before = 0;
  std::uint32_t cum_ack_after = 0;
  std::uint32_t newly_cum_acked = 0;          ///< segments newly covered by cum ack
  std::vector<std::uint32_t> newly_sacked;    ///< segment indices newly SACKed
  /// Of the segments newly acknowledged above, how many this loop never
  /// transmitted (times_sent == 0): delivery credit earned by an
  /// out-of-band copy (RC3's low-priority batch), not by this sender.
  /// Always 0 for schemes whose every segment goes through on_sent().
  std::uint32_t backfill_acked = 0;
  bool advanced() const { return cum_ack_after > cum_ack_before; }
  std::uint32_t newly_acked_total() const {
    return newly_cum_acked + static_cast<std::uint32_t>(newly_sacked.size());
  }
};

/// Tracks which segments of a flow were sent, acknowledged, SACKed, deemed
/// lost, and retransmitted.
///
/// Memory is a sliding window: state below the cumulative ACK is discarded,
/// so the footprint is bounded by the flow-control window even for very
/// long flows (the paper's Fig. 13 background flows are 100 MB).
///
/// Aggregates the senders poll per ACK — pipe(), the existence of a
/// loss needing retransmission, the presence of any SACKed segment — are
/// maintained incrementally as segment state changes, so the per-ACK send
/// loop (which re-reads pipe() after every transmission) costs O(1) per
/// query instead of a window scan. All segment-state mutations go through
/// this class; the only external mutation, mutable_state(), is used for
/// the rtt_sampled flag, which no aggregate depends on.
class Scoreboard {
 public:
  explicit Scoreboard(std::uint32_t total_segments);

  std::uint32_t total_segments() const { return total_; }

  /// Next segment index never sent before, or nullopt when all segments
  /// have had a first transmission.
  std::optional<std::uint32_t> next_unsent() const;
  bool all_sent_once() const { return next_sent_ >= total_; }

  /// Record a transmission of `seq` at time `now` with wire uid `uid`.
  void on_sent(std::uint32_t seq, std::uint64_t uid, sim::Time now,
               bool proactive) HB_EFFECTS(alloc, throw);

  /// Apply an arriving cumulative + selective acknowledgement. The span
  /// overload is the core; net::SackList (via its span conversion),
  /// std::vector, and braced block lists all route to it. The
  /// initializer_list overload exists because a span cannot be formed from
  /// a braced list until C++26; list arguments prefer it, so `{}` stays
  /// unambiguous.
  AckUpdate apply_ack(std::uint32_t cum_ack,
                      std::span<const net::SackBlock> sacks)
      HB_EFFECTS(alloc, throw);
  AckUpdate apply_ack(std::uint32_t cum_ack,
                      std::initializer_list<net::SackBlock> sacks) {
    return apply_ack(
        cum_ack, std::span<const net::SackBlock>{sacks.begin(), sacks.size()});
  }

  /// SACK-based loss detection (simplified RFC 6675 / FACK rule): an
  /// un-SACKed segment is deemed lost once at least `dup_threshold`
  /// segments above it have been SACKed. Returns newly-lost indices.
  std::vector<std::uint32_t> detect_losses(int dup_threshold);

  /// Mark every outstanding (sent, un-SACKed) segment lost (RTO recovery).
  /// Clears retx_after_loss so they become eligible for retransmission.
  void mark_all_outstanding_lost();

  /// Lowest segment deemed lost whose loss-triggered retransmission has not
  /// happened yet.
  std::optional<std::uint32_t> next_lost_needing_retx() const;

  /// True while any sent segment in the window is deemed lost and not yet
  /// SACKed. O(1): lets per-ACK repair scans (UDT-style round-robin
  /// retransmission in the paced schemes) skip the window walk entirely
  /// once every loss has been repaired or absorbed.
  bool any_lost_unsacked() const { return lost_unsacked_ > 0; }

  /// Count of segments considered in flight (sent, not cum-acked, not
  /// SACKed, and not deemed lost-without-retransmission).
  std::uint32_t pipe() const;

  /// Highest index that may be sent under a receive window of `window`
  /// segments (exclusive bound).
  std::uint32_t flow_control_limit(std::uint32_t window) const;

  std::uint32_t cum_ack() const { return cum_ack_; }
  std::uint32_t highest_sent() const;  ///< one past the highest sent index (0 if none)
  bool complete() const { return cum_ack_ >= total_; }
  bool is_sacked(std::uint32_t seq) const;
  bool is_acked(std::uint32_t seq) const;  ///< cum-acked or SACKed

  /// State access for segments at or above the cumulative ACK. Segments
  /// below the window return nullptr (they are acknowledged and forgotten).
  const SegmentState* state(std::uint32_t seq) const;
  SegmentState* mutable_state(std::uint32_t seq);

  /// Ensure a state entry exists for `seq` (used before first send).
  SegmentState& ensure_state(std::uint32_t seq);

 private:
  void trim();

  /// Add (`delta` = +1) or remove (`delta` = -1) `s`'s contribution to the
  /// incremental aggregates. Every mutation of a window entry is bracketed
  /// by an account(-1) / account(+1) pair.
  ///
  /// The pipe predicate drops the range checks the scan performed:
  /// times_sent > 0 implies seq < next_sent_ (on_sent advances next_sent_
  /// past every transmission), and window membership implies
  /// seq >= cum_ack_ (trim() discards below the cumulative ACK and
  /// decrements aggregates for each entry it pops).
  void account(const SegmentState& s, std::uint32_t seq, int delta) {
    const int d = delta;
    if (s.times_sent > 0 && !s.sacked && !(s.lost && !s.retx_after_loss)) {
      pipe_ += d;
    }
    if (s.lost && !s.retx_after_loss && !s.sacked && s.times_sent > 0) {
      lost_pending_ += d;
      // Scan hint only tightens on entry; removals leave it conservative
      // (low), which is safe: the next scan starts at or below the true
      // minimum and advances it.
      if (d > 0 && seq < lost_floor_) lost_floor_ = seq;
    }
    if (s.lost && !s.sacked && s.times_sent > 0) lost_unsacked_ += d;
    if (s.sacked) {
      sacked_in_window_ += d;
      // Conservative (high) top hint for the loss-detection scan.
      if (d > 0 && seq >= highest_sacked_) highest_sacked_ = seq + 1;
    }
  }

  std::uint32_t total_;
  std::uint32_t cum_ack_ = 0;
  std::uint32_t next_sent_ = 0;     ///< next never-sent index
  std::uint32_t window_base_ = 0;   ///< seq of window_[0]
  std::deque<SegmentState> window_;

  // Incremental aggregates over window_ (see account()).
  int pipe_ = 0;             ///< segments matching the pipe() predicate
  int lost_pending_ = 0;     ///< segments matching next_lost_needing_retx()
  int lost_unsacked_ = 0;    ///< lost, sent, not-yet-SACKed segments
  int sacked_in_window_ = 0; ///< SACKed segments still in the window
  /// Scan hints (caches, not invariants): lost_floor_ is a lower bound on
  /// the lowest lost-pending seq; highest_sacked_ an upper bound (one
  /// past) on the highest SACKed seq. Both only bound the scans — results
  /// are unchanged.
  mutable std::uint32_t lost_floor_ = 0;
  std::uint32_t highest_sacked_ = 0;
};

}  // namespace halfback::transport
