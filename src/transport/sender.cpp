#include "transport/sender.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "audit/auditor.h"

namespace halfback::transport {

std::uint32_t segments_for_bytes(std::uint64_t bytes) {
  if (bytes == 0) return 1;  // a zero-byte request still occupies one segment
  return static_cast<std::uint32_t>((bytes + net::kSegmentPayloadBytes - 1) /
                                    net::kSegmentPayloadBytes);
}

SenderBase::SenderBase(sim::Simulator& simulator, net::Node& local_node,
                       net::NodeId peer, net::FlowId flow, sim::Bytes flow_bytes,
                       SenderConfig config, std::string scheme_name)
    : simulator_{simulator},
      node_{local_node},
      peer_{peer},
      scoreboard_{segments_for_bytes(flow_bytes)},
      rtt_{config.rtt},
      config_{config} {
  record_.flow = flow;
  record_.scheme = std::move(scheme_name);
  record_.flow_bytes = flow_bytes;
  record_.total_segments = scoreboard_.total_segments();
  // rto_timer_ is bound by Sender<Policy>'s constructor: its callback runs
  // the scheme's statically-dispatched on_timeout, which this base cannot
  // name. Nothing can arm it before that constructor body runs.
  syn_timer_.bind(simulator_,
                  sim::FunctionRef<void()>::from<&SenderBase::on_syn_timeout>(
                      *this));
}

// Timer members cancel themselves on destruction.
SenderBase::~SenderBase() = default;

void SenderBase::start() {
  record_.start_time = simulator_.now();
  if (hub_ != nullptr) {
    hub_->transport().flows_started->increment();
    tape_->record(simulator_.now(), telemetry::TapeEventKind::flow_start, 0,
                  record_.flow_bytes.count());
  }
  if (spans_ != nullptr) {
    // Root span of this flow's causal tree; phase and RTO-recovery spans
    // parent under it.
    span_flow_ = spans_->open_span(record_.flow, telemetry::SpanKind::flow, 0,
                                   simulator_.now());
  }
  enter_phase(telemetry::FlowPhase::handshake);
  send_syn();
}

void SenderBase::send_syn() {
  net::Packet syn;
  syn.flow = record_.flow;
  syn.type = net::PacketType::syn;
  syn.src = node_.id();
  syn.dst = peer_;
  syn.size_bytes = net::kControlWireBytes;
  syn.total_segments = record_.total_segments;
  syn.uid = next_uid();
  syn.sent_at = simulator_.now();
  syn_last_sent_ = simulator_.now();
  ++syn_tries_;
  if (syn_tries_ > 1) ++record_.syn_retx;
  if (hub_ != nullptr) {
    hub_->transport().syn_sent->increment();
    if (syn_tries_ > 1) hub_->transport().syn_retx->increment();
    tape_->record(simulator_.now(), telemetry::TapeEventKind::syn_sent,
                  static_cast<std::uint32_t>(syn_tries_));
  }
  node_.send(std::move(syn));

  sim::Time timeout = config_.syn_timeout;
  for (int i = 1; i < syn_tries_ && timeout < config_.max_syn_timeout; ++i) {
    timeout = timeout * 2.0;
  }
  timeout = std::min(timeout, config_.max_syn_timeout);
  syn_timer_.schedule_after(timeout);
}

void SenderBase::on_syn_timeout() {
  if (established_) return;
  if (syn_tries_ > config_.max_syn_retries) return;  // give up silently
  send_syn();
}

bool SenderBase::begin_established() {
  if (established_) return false;  // duplicate SYN-ACK
  established_ = true;
  syn_timer_.cancel();
  record_.established_time = simulator_.now();
  // The handshake provides the first RTT sample (Karn-valid only if the SYN
  // was not retransmitted).
  sim::Time sample = simulator_.now() - syn_last_sent_;
  if (syn_tries_ == 1) rtt_.add_sample(sample);
  record_.handshake_rtt = sample;
  if (hub_ != nullptr) {
    // The histogram keeps Karn-valid samples only; the tape keeps them all.
    if (syn_tries_ == 1) hub_->transport().handshake_rtt->record_time(sample);
    tape_->record(simulator_.now(), telemetry::TapeEventKind::established, 0,
                  static_cast<std::uint64_t>(sample.ns() < 0 ? 0 : sample.ns()));
  }
  // Schemes with finer structure (paced start, ROPR) refine this from
  // on_established(); the same-timestamp span then replaces "transfer".
  enter_phase(telemetry::FlowPhase::transfer);
  return true;
}

AckUpdate SenderBase::apply_ack(const net::Packet& packet) {
  ++record_.acks_received;
  take_rtt_sample(packet);
  AckUpdate update = scoreboard_.apply_ack(packet.cum_ack, packet.sacks);
  HALFBACK_AUDIT_HOOK(simulator_.auditor(),
                      on_ack_applied(scoreboard_, record_.flow, packet, update));
  if (hub_ != nullptr) {
    hub_->transport().acks_received->increment();
    hub_->transport().scoreboard_acked->add(update.newly_cum_acked);
    hub_->transport().scoreboard_sacked->add(update.newly_sacked.size());
    tape_->record(simulator_.now(), telemetry::TapeEventKind::ack_received,
                  packet.cum_ack);
  }
  if (class_series_ != nullptr) {
    // Goodput credit: every segment newly reported received — cum-ack
    // progress plus fresh SACKs (newly_cum_acked already excludes segments
    // credited at SACK time) — in payload bytes. An ack carrying no new
    // information at all is the duplicate worth counting.
    const std::uint64_t credited = update.newly_acked_total();
    if (credited > 0) {
      class_series_->tally_bytes(simulator_.now(),
                                 credited * net::kSegmentPayloadBytes);
    } else {
      class_series_->tally_dup(simulator_.now());
    }
  }
  if (update.advanced()) {
    if (spans_ != nullptr && span_rto_ != 0) {
      // Cumulative progress ends the RTO-recovery episode.
      spans_->close_span(span_rto_, simulator_.now());
      span_rto_ = 0;
    }
    rtt_.reset_backoff();
    if (!scoreboard_.complete()) arm_rto();
  }
  return update;
}

void SenderBase::take_rtt_sample(const net::Packet& ack) {
  SegmentState* s = scoreboard_.mutable_state(ack.seq);
  if (s == nullptr) return;
  // Karn's algorithm: only sample segments transmitted exactly once, and
  // only when the ACK echoes that transmission. At most one sample per
  // transmission: under injected duplication the same echo can arrive
  // repeatedly (a duplicated ACK, or a re-ACK of duplicated data), and the
  // later copies carry an RTT inflated by the duplication spacing.
  if (s->times_sent == 1 && s->last_uid == ack.echo_uid && !s->rtt_sampled) {
    s->rtt_sampled = true;
    const sim::Time sample = simulator_.now() - s->last_sent;
    rtt_.add_sample(sample);
    if (hub_ != nullptr) {
      hub_->transport().rtt->record_time(sample);
      tape_->record(simulator_.now(), telemetry::TapeEventKind::rtt_sample, 0,
                    static_cast<std::uint64_t>(sample.ns() < 0 ? 0 : sample.ns()));
    }
  } else if (hub_ != nullptr) {
    hub_->transport().karn_discards->increment();
    tape_->record(simulator_.now(), telemetry::TapeEventKind::karn_discard,
                  ack.seq);
  }
}

void SenderBase::transmit_segment(std::uint32_t seq, bool proactive) {
  if (seq >= record_.total_segments) {
    throw std::logic_error{"send_segment beyond flow length"};
  }
  const SegmentState* existing = scoreboard_.state(seq);
  const bool retx = existing != nullptr && existing->times_sent > 0;

  net::Packet p;
  p.flow = record_.flow;
  p.type = net::PacketType::data;
  p.src = node_.id();
  p.dst = peer_;
  p.seq = seq;
  p.total_segments = record_.total_segments;
  const std::uint64_t offset =
      static_cast<std::uint64_t>(seq) * net::kSegmentPayloadBytes;
  const std::uint64_t payload =
      std::min<std::uint64_t>(net::kSegmentPayloadBytes,
                              std::max<std::uint64_t>(record_.flow_bytes - std::min<std::uint64_t>(record_.flow_bytes, offset), 1));
  p.size_bytes = static_cast<std::uint32_t>(payload) + net::kHeaderBytes;
  p.is_retx = retx;
  p.is_proactive = proactive;
  p.uid = next_uid();
  p.sent_at = simulator_.now();

  scoreboard_.on_sent(seq, p.uid, simulator_.now(), proactive);
  HALFBACK_AUDIT_HOOK(simulator_.auditor(),
                      on_segment_sent(scoreboard_, record_.flow, record_.scheme,
                                      seq, proactive, p.uid));
  ++record_.data_packets_sent;
  if (retx) {
    if (proactive) {
      ++record_.proactive_retx;
    } else {
      ++record_.normal_retx;
    }
  } else if (proactive) {
    // First transmission flagged proactive (Proactive TCP sends the copy
    // first in some orderings); count it as proactive overhead.
    ++record_.proactive_retx;
  }
  if (hub_ != nullptr) {
    if (proactive) {
      hub_->transport().proactive_sent->increment();
      tape_->record(simulator_.now(), telemetry::TapeEventKind::proactive_sent,
                    seq);
    } else if (retx) {
      hub_->transport().retx_sent->increment();
      tape_->record(simulator_.now(), telemetry::TapeEventKind::retx_sent, seq);
    } else {
      hub_->transport().segments_sent->increment();
      tape_->record(simulator_.now(), telemetry::TapeEventKind::segment_sent,
                    seq);
    }
  }
  if (class_series_ != nullptr) {
    class_series_->tally_packets(simulator_.now(), 1);
    if (retx) class_series_->tally_retx(simulator_.now());
    class_series_->raise_inflight_peak(
        simulator_.now(), static_cast<std::uint64_t>(scoreboard_.pipe()) *
                              net::kSegmentPayloadBytes);
  }
  node_.send(std::move(p));
}

void SenderBase::arm_rto() { rto_timer_.schedule_after(rtt_.rto()); }

bool SenderBase::note_timeout() {
  if (record_.completed) return false;
  ++record_.timeouts;
  rtt_.backoff();
  if (hub_ != nullptr) {
    hub_->transport().rto_fired->increment();
    tape_->record(simulator_.now(), telemetry::TapeEventKind::rto_fired,
                  record_.timeouts);
  }
  if (spans_ != nullptr && span_rto_ == 0) {
    // One recovery episode per outage: back-to-back RTOs with no
    // intervening cumulative progress extend the same span.
    span_rto_ = spans_->open_span(record_.flow,
                                  telemetry::SpanKind::rto_recovery,
                                  span_flow_, simulator_.now());
  }
  return true;
}

void SenderBase::cancel_rto() { rto_timer_.cancel(); }

sim::Time SenderBase::smoothed_rtt() const {
  if (rtt_.has_sample()) return rtt_.srtt();
  if (!record_.handshake_rtt.is_zero()) return record_.handshake_rtt;
  return sim::Time::milliseconds(100);
}

bool SenderBase::finish_transfer() {
  if (record_.completed || !scoreboard_.complete()) return false;
  record_.completed = true;
  record_.completion_time = simulator_.now();
  cancel_rto();
  syn_timer_.cancel();
  if (hub_ != nullptr) {
    const sim::Time fct = record_.fct();
    hub_->transport().flows_completed->increment();
    hub_->transport().fct->record_time(fct);
    tape_->record(simulator_.now(), telemetry::TapeEventKind::complete, 0,
                  static_cast<std::uint64_t>(fct.ns() < 0 ? 0 : fct.ns()));
  }
  if (spans_ != nullptr && span_rto_ != 0) {
    // Completion resolves a recovery episode still in flight.
    spans_->close_span(span_rto_, simulator_.now());
    span_rto_ = 0;
  }
  enter_phase(telemetry::FlowPhase::done);
  if (spans_ != nullptr && span_flow_ != 0) {
    spans_->close_span(span_flow_, simulator_.now());
    span_flow_ = 0;
  }
  return true;
}

void SenderBase::notify_complete() {
  if (on_complete_) on_complete_(record_);
}

}  // namespace halfback::transport
