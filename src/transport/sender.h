// Sender base class: handshake, segment transmission, ACK bookkeeping,
// retransmission timer. Scheme-specific behaviour lives in subclasses.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/node.h"
#include "net/packet.h"
#include "sim/bytes.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "telemetry/hub.h"
#include "transport/rtt_estimator.h"
#include "transport/scoreboard.h"

namespace halfback::transport {

/// Knobs shared by every scheme. Values follow the paper's setup (§4.1):
/// 1500-byte segments, a 141 KB receive window (Windows XP default), and a
/// 2-segment initial window for TCP-family schemes.
struct SenderConfig {
  std::uint32_t initial_window = 2;  ///< segments
  std::uint32_t receive_window_segments = 97;  ///< 141 KB / 1448 B payload
  int dup_threshold = 3;
  RttEstimator::Config rtt;
  sim::Time syn_timeout = sim::Time::seconds(1);
  int max_syn_retries = 8;
  /// RFC 6298-style ceiling on the exponential SYN backoff: however many
  /// retries have happened, the next SYN timer never exceeds this. Keeps a
  /// long blackout from scheduling absurd timers (the data-path RTO has the
  /// matching cap in RttEstimator::Config::max_rto).
  sim::Time max_syn_timeout = sim::Time::seconds(60);
};

/// Everything an experiment wants to know about a finished (or ongoing)
/// flow.
struct FlowRecord {
  net::FlowId flow = 0;
  std::string scheme;
  sim::Bytes flow_bytes = 0;
  std::uint32_t total_segments = 0;

  sim::Time start_time;
  sim::Time established_time;
  sim::Time completion_time;
  bool completed = false;

  std::uint32_t data_packets_sent = 0;
  std::uint32_t normal_retx = 0;     ///< loss-triggered retransmissions
  std::uint32_t proactive_retx = 0;  ///< ROPR / Proactive-TCP copies
  std::uint32_t timeouts = 0;
  std::uint32_t syn_retx = 0;
  std::uint32_t acks_received = 0;

  /// Base path RTT measured by the handshake.
  sim::Time handshake_rtt;

  /// Flow completion time: from flow start (before the SYN) to the sender
  /// holding a cumulative ACK of the last segment — the paper's definition
  /// ("FCT includes both the data transmission time and connection setup
  /// time").
  sim::Time fct() const { return completion_time - start_time; }

  /// FCT expressed in path RTTs (Fig. 7).
  double rtts_used() const {
    return handshake_rtt.is_zero() ? 0.0 : fct() / handshake_rtt;
  }

  /// Total wire transmissions of data segments beyond the first copy.
  std::uint32_t all_retx() const { return normal_retx + proactive_retx; }
};

/// Abstract sender. Subclasses implement the scheme's transmission policy
/// through three hooks: on_established(), handle_ack(), on_timeout().
///
/// The base class provides the services every scheme shares: the three-way
/// handshake (with SYN retry), segment transmission with retransmission
/// accounting, Karn-filtered RTT sampling, scoreboard maintenance, RTO
/// arming, and completion detection.
class SenderBase {
 public:
  using CompletionCallback = std::function<void(const FlowRecord&)>;

  SenderBase(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
             net::FlowId flow, sim::Bytes flow_bytes, SenderConfig config,
             std::string scheme_name);
  virtual ~SenderBase();

  SenderBase(const SenderBase&) = delete;
  SenderBase& operator=(const SenderBase&) = delete;

  /// Begin the flow: records the start time and sends the SYN.
  void start();

  /// Entry point for SYN-ACK and ACK packets of this flow.
  void on_packet(const net::Packet& packet);

  void set_completion_callback(CompletionCallback cb) { on_complete_ = std::move(cb); }

  /// Attach a telemetry hub (nullptr detaches; owned by the caller). Call
  /// before start(): creates this flow's flight-recorder tape and caches
  /// the transport probe bundle. Purely observational — never schedules or
  /// draws randomness, so trace hashes are unchanged.
  void set_telemetry(telemetry::Hub* hub) {
    hub_ = hub;
    tape_ = hub == nullptr
                ? nullptr
                : &hub->recorder().tape(
                      telemetry::TrackKind::flow, record_.flow,
                      record_.scheme + " flow " + std::to_string(record_.flow));
  }

  const FlowRecord& record() const { return record_; }
  bool complete() const { return record_.completed; }
  const Scoreboard& scoreboard() const { return scoreboard_; }
  const RttEstimator& rtt() const { return rtt_; }
  const std::string& scheme_name() const { return record_.scheme; }

 protected:
  /// Called once when the handshake completes; begin transmitting here.
  virtual void on_established() = 0;

  /// Called for each ACK after base bookkeeping (RTT sample, scoreboard
  /// update, completion check). Not called once the flow has completed.
  virtual void handle_ack(const net::Packet& ack, const AckUpdate& update) = 0;

  /// Called when the retransmission timeout fires (after backoff and stats
  /// are recorded). The scheme must perform its recovery and re-arm.
  virtual void on_timeout() = 0;

  /// Called after every data transmission (Proactive TCP duplicates each
  /// packet here).
  virtual void after_transmit(std::uint32_t /*seq*/, bool /*proactive*/) {}

  /// Called once when the flow completes, before the completion callback
  /// (TCP-Cache stores its path state here).
  virtual void on_flow_complete() {}

  // --- services for subclasses -------------------------------------------

  /// Transmit segment `seq`. First transmissions, loss-triggered
  /// retransmissions, and proactive retransmissions are distinguished
  /// automatically for the statistics.
  void send_segment(std::uint32_t seq, bool proactive = false);

  /// (Re)arm the retransmission timer at the current RTO.
  void arm_rto();
  void cancel_rto();
  bool rto_armed() const { return rto_timer_.pending(); }

  /// Estimated RTT to use before any ACK sample exists (handshake value).
  sim::Time smoothed_rtt() const;

  /// This flow's flight-recorder tape, nullptr when telemetry is off.
  telemetry::Tape* tape() { return tape_; }
  /// Scheme probe bundle, nullptr when telemetry is off.
  telemetry::Hub::SchemeProbes* scheme_probes() {
    return hub_ == nullptr ? nullptr : &hub_->scheme();
  }
  /// Record a phase transition on this flow's tape (no-op without one).
  void enter_phase(telemetry::FlowPhase phase) {
    if (tape_ != nullptr) tape_->enter_phase(simulator_.now(), phase);
  }

  sim::Bytes flow_bytes() const { return record_.flow_bytes; }
  std::uint32_t total_segments() const { return record_.total_segments; }

  sim::Simulator& simulator_;
  net::Node& node_;
  net::NodeId peer_;
  Scoreboard scoreboard_;
  RttEstimator rtt_;
  SenderConfig config_;
  FlowRecord record_;

 private:
  void send_syn();
  void on_syn_timeout();
  void on_rto();
  void handle_syn_ack(const net::Packet& packet);
  void take_rtt_sample(const net::Packet& ack);
  void maybe_complete();
  std::uint64_t next_uid() { return (record_.flow << 24) + (++uid_counter_); }

  CompletionCallback on_complete_;
  telemetry::Hub* hub_ = nullptr;    ///< not owned; nullptr = telemetry off
  telemetry::Tape* tape_ = nullptr;  ///< this flow's tape, owned by the hub
  // Embedded reusable timers: bound once at construction, re-armed in place
  // for the flow's whole life. Their destructors cancel any pending arm.
  sim::Timer rto_timer_;
  sim::Timer syn_timer_;
  sim::Time syn_last_sent_;
  int syn_tries_ = 0;
  bool established_ = false;
  std::uint64_t uid_counter_ = 0;
};

/// Number of segments needed to carry `bytes` of application data.
std::uint32_t segments_for_bytes(std::uint64_t bytes);

}  // namespace halfback::transport
