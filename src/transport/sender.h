// The static sender pipeline: SenderBase (the type-erased seam) +
// Sender<Policy> (the CRTP template every scheme instantiates).
//
// SenderBase owns everything schemes share — handshake with SYN retry,
// segment transmission with retransmission accounting, Karn-filtered RTT
// sampling, scoreboard maintenance, RTO arming, completion detection — and
// exposes exactly one virtual function: on_packet(), the per-packet entry
// the TransportAgent dispatches through. Scheme policy (handle_ack,
// on_timeout, after_transmit, ...) is NOT virtual: Sender<Policy>
// dispatches those hooks statically to the most-derived scheme class, so
// they devirtualize and inline into the per-ACK path. The only place a
// scheme is type-erased back to SenderBase is schemes/factory.cpp — the
// single seam the CLI/bench/exp name-based selection goes through.
//
// Per-flow callbacks are sim::FunctionRef (two words, non-owning, never
// allocates) rather than std::function; per-flow timers are
// sim::StaticTimer for the same reason.
#pragma once

#include <cstdint>
#include <string>

#include "net/node.h"
#include "net/packet.h"
#include "sim/bytes.h"
#include "sim/function_ref.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "telemetry/hub.h"
#include "transport/rtt_estimator.h"
#include "transport/scoreboard.h"

namespace halfback::transport {

/// Knobs shared by every scheme. Values follow the paper's setup (§4.1):
/// 1500-byte segments, a 141 KB receive window (Windows XP default), and a
/// 2-segment initial window for TCP-family schemes.
struct SenderConfig {
  std::uint32_t initial_window = 2;  ///< segments
  std::uint32_t receive_window_segments = 97;  ///< 141 KB / 1448 B payload
  int dup_threshold = 3;
  RttEstimator::Config rtt;
  sim::Time syn_timeout = sim::Time::seconds(1);
  int max_syn_retries = 8;
  /// RFC 6298-style ceiling on the exponential SYN backoff: however many
  /// retries have happened, the next SYN timer never exceeds this. Keeps a
  /// long blackout from scheduling absurd timers (the data-path RTO has the
  /// matching cap in RttEstimator::Config::max_rto).
  sim::Time max_syn_timeout = sim::Time::seconds(60);
};

/// Everything an experiment wants to know about a finished (or ongoing)
/// flow.
struct FlowRecord {
  net::FlowId flow = 0;
  std::string scheme;
  sim::Bytes flow_bytes = 0;
  std::uint32_t total_segments = 0;

  sim::Time start_time;
  sim::Time established_time;
  sim::Time completion_time;
  bool completed = false;

  std::uint32_t data_packets_sent = 0;
  std::uint32_t normal_retx = 0;     ///< loss-triggered retransmissions
  std::uint32_t proactive_retx = 0;  ///< ROPR / Proactive-TCP copies
  std::uint32_t timeouts = 0;
  std::uint32_t syn_retx = 0;
  std::uint32_t acks_received = 0;

  /// Base path RTT measured by the handshake.
  sim::Time handshake_rtt;

  /// Flow completion time: from flow start (before the SYN) to the sender
  /// holding a cumulative ACK of the last segment — the paper's definition
  /// ("FCT includes both the data transmission time and connection setup
  /// time").
  sim::Time fct() const { return completion_time - start_time; }

  /// FCT expressed in path RTTs (Fig. 7).
  double rtts_used() const {
    return handshake_rtt.is_zero() ? 0.0 : fct() / handshake_rtt;
  }

  /// Total wire transmissions of data segments beyond the first copy.
  std::uint32_t all_retx() const { return normal_retx + proactive_retx; }
};

/// The type-erased sender seam.
///
/// Everything the TransportAgent, the experiment runners, and the tests
/// touch goes through this class: start(), on_packet() (the one virtual),
/// the completion callback, telemetry attachment, and the read-only
/// accessors. Concrete behaviour lives in Sender<Policy> below; construct
/// schemes through schemes::make_sender() (or a concrete scheme class
/// directly when the test knows the type).
class SenderBase {
 public:
  /// Per-flow completion notification. Non-owning: the callee must outlive
  /// the flow (the TransportAgent does, by construction).
  using CompletionRef = sim::FunctionRef<void(const FlowRecord&)>;

  virtual ~SenderBase();

  SenderBase(const SenderBase&) = delete;
  SenderBase& operator=(const SenderBase&) = delete;

  /// Begin the flow: records the start time and sends the SYN.
  void start() HB_EFFECTS(alloc, throw);

  /// Entry point for SYN-ACK and ACK packets of this flow — the single
  /// virtual dispatch on the per-packet path. Sender<Policy> implements it
  /// and fans out to the scheme's statically-dispatched hooks.
  virtual void on_packet(const net::Packet& packet) = 0;

  void set_completion_callback(CompletionRef cb) { on_complete_ = cb; }

  /// Attach a telemetry hub (nullptr detaches; owned by the caller). Call
  /// before start(): creates this flow's flight-recorder tape and caches
  /// the transport probe bundle. Purely observational — never schedules or
  /// draws randomness, so trace hashes are unchanged.
  void set_telemetry(telemetry::Hub* hub) {
    hub_ = hub;
    tape_ = hub == nullptr
                ? nullptr
                : &hub->recorder().tape(
                      telemetry::TrackKind::flow, record_.flow,
                      record_.scheme + " flow " + std::to_string(record_.flow));
    spans_ = hub == nullptr ? nullptr : &hub->spans();
    // Per-flow-class windowed series, keyed by scheme name so every flow of
    // a scheme tallies into the same tumbling windows.
    class_series_ =
        hub == nullptr ? nullptr : &hub->series("class." + record_.scheme);
  }

  const FlowRecord& record() const { return record_; }
  bool complete() const { return record_.completed; }
  const Scoreboard& scoreboard() const { return scoreboard_; }
  const RttEstimator& rtt() const { return rtt_; }
  const std::string& scheme_name() const { return record_.scheme; }

 protected:
  SenderBase(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
             net::FlowId flow, sim::Bytes flow_bytes, SenderConfig config,
             std::string scheme_name);

  // --- services for Sender<Policy> and the scheme classes ------------------

  /// (Re)arm the retransmission timer at the current RTO.
  void arm_rto();
  void cancel_rto();
  bool rto_armed() const { return rto_timer_.pending(); }

  /// Estimated RTT to use before any ACK sample exists (handshake value).
  sim::Time smoothed_rtt() const;

  /// This flow's flight-recorder tape, nullptr when telemetry is off.
  telemetry::Tape* tape() { return tape_; }
  /// Scheme probe bundle, nullptr when telemetry is off.
  telemetry::Hub::SchemeProbes* scheme_probes() {
    return hub_ == nullptr ? nullptr : &hub_->scheme();
  }
  /// Record a phase transition on this flow's tape AND in the causal span
  /// log: the current phase span (if any) closes and — except for `done` —
  /// a new one opens as a child of the root flow span. No-op without
  /// telemetry. Allocation-free: spans land in the recorder's preallocated
  /// store.
  void enter_phase(telemetry::FlowPhase phase) {
    if (tape_ != nullptr) tape_->enter_phase(simulator_.now(), phase);
    if (spans_ == nullptr) return;
    if (span_phase_ != 0) {
      spans_->close_span(span_phase_, simulator_.now());
      span_phase_ = 0;
    }
    if (phase != telemetry::FlowPhase::done) {
      span_phase_ = spans_->open_span(record_.flow, span_kind_for(phase),
                                      span_flow_, simulator_.now());
    }
  }

  /// Flag the current phase span abandoned (ROPR cut short by an RTO)
  /// without closing it; the following enter_phase() closes it as usual.
  void abandon_phase_span() {
    if (spans_ != nullptr && span_phase_ != 0) {
      spans_->abandon_span(span_phase_);
    }
  }

  sim::Bytes flow_bytes() const { return record_.flow_bytes; }
  std::uint32_t total_segments() const { return record_.total_segments; }
  bool established() const { return established_; }

  // --- pieces of the packet path assembled by Sender<Policy> ---------------
  // These are the hook-free halves of the old virtual-dispatch methods: the
  // template stitches them together with the statically-dispatched scheme
  // hooks in exactly the pre-refactor order.

  /// Transmit segment `seq` (everything except the after_transmit hook,
  /// which Sender<Policy>::send_segment appends). First transmissions,
  /// loss-triggered retransmissions, and proactive retransmissions are
  /// distinguished automatically for the statistics.
  void transmit_segment(std::uint32_t seq, bool proactive);

  /// SYN-ACK bookkeeping (duplicate filtering, handshake RTT sample,
  /// telemetry). Returns true when the handshake just completed and the
  /// scheme's on_established() must run.
  bool begin_established();

  /// Per-ACK bookkeeping: stats, Karn RTT sample, scoreboard update, audit
  /// hook, backoff reset, RTO re-arm.
  AckUpdate apply_ack(const net::Packet& packet);

  /// Per-RTO bookkeeping (backoff + stats). Returns false when the flow is
  /// already complete and the scheme's on_timeout() must not run.
  bool note_timeout();

  /// Completion detection minus the on_flow_complete hook: returns true
  /// when the flow just completed (timers cancelled, record stamped) and
  /// the hook plus notify_complete() must run.
  bool finish_transfer();

  /// Fire the owner's completion callback (after on_flow_complete).
  void notify_complete();

  sim::Simulator& simulator_;
  net::Node& node_;
  net::NodeId peer_;
  Scoreboard scoreboard_;
  RttEstimator rtt_;
  SenderConfig config_;
  FlowRecord record_;
  /// Retransmission timer; bound by Sender<Policy>'s constructor (the
  /// callback targets the template's statically-dispatched on_rto).
  sim::StaticTimer rto_timer_;

 private:
  void send_syn();
  void on_syn_timeout();
  void take_rtt_sample(const net::Packet& ack);
  std::uint64_t next_uid() { return (record_.flow << 24) + (++uid_counter_); }

  /// Phase -> span-kind mapping for enter_phase(). `done` never reaches
  /// this (it only closes the current span).
  static telemetry::SpanKind span_kind_for(telemetry::FlowPhase phase) {
    switch (phase) {
      case telemetry::FlowPhase::handshake:
        return telemetry::SpanKind::handshake;
      case telemetry::FlowPhase::pacing:
        return telemetry::SpanKind::pacing;
      case telemetry::FlowPhase::ropr:
        return telemetry::SpanKind::ropr_repair;
      case telemetry::FlowPhase::fallback:
        return telemetry::SpanKind::fallback;
      case telemetry::FlowPhase::transfer:
      case telemetry::FlowPhase::done:
        break;
    }
    return telemetry::SpanKind::blast;
  }

  CompletionRef on_complete_;
  telemetry::Hub* hub_ = nullptr;    ///< not owned; nullptr = telemetry off
  telemetry::Tape* tape_ = nullptr;  ///< this flow's tape, owned by the hub
  telemetry::SpanRecorder* spans_ = nullptr;  ///< hub's span log; may be null
  telemetry::WindowSeries* class_series_ = nullptr;  ///< per-scheme series
  std::uint32_t span_flow_ = 0;   ///< root flow span id (0 = none)
  std::uint32_t span_phase_ = 0;  ///< current phase span id (0 = none)
  std::uint32_t span_rto_ = 0;    ///< open RTO-recovery span id (0 = none)
  sim::StaticTimer syn_timer_;
  sim::Time syn_last_sent_;
  int syn_tries_ = 0;
  bool established_ = false;
  std::uint64_t uid_counter_ = 0;
};

/// The static pipeline: CRTP base instantiated once per scheme, with
/// `Policy` the most-derived scheme class. The scheme provides its policy
/// as plain (non-virtual) public methods:
///
///   void on_established();                               // required
///   void handle_ack(const net::Packet&, const AckUpdate&);  // required
///   void on_timeout();                                   // required
///   void after_transmit(std::uint32_t seq, bool proactive);  // optional
///   void on_flow_complete();                             // optional
///
/// self() calls devirtualize: on_packet() inlines the scheme's ACK policy,
/// on_rto() inlines its recovery, send_segment() inlines its
/// after_transmit. Adding a scheme means writing a policy class and one
/// factory case — never touching this dispatch.
template <class Policy>
class Sender : public SenderBase {
 public:
  void on_packet(const net::Packet& packet) final {
    if (record_.completed) return;
    switch (packet.type) {
      case net::PacketType::syn_ack:
        if (begin_established()) self().on_established();
        break;
      case net::PacketType::ack: {
        if (!established()) return;  // data ACK before handshake: ignore
        const AckUpdate update = apply_ack(packet);
        maybe_complete();
        if (!record_.completed) self().handle_ack(packet, update);
        break;
      }
      default:
        break;
    }
  }

  // Default (empty) optional hooks; a scheme defining its own shadows these.
  void after_transmit(std::uint32_t /*seq*/, bool /*proactive*/) {}
  void on_flow_complete() {}

 protected:
  Sender(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
         net::FlowId flow, sim::Bytes flow_bytes, SenderConfig config,
         std::string scheme_name)
      : SenderBase{simulator,  local_node, peer, flow,
                   flow_bytes, config,     std::move(scheme_name)} {
    rto_timer_.bind(simulator_,
                    sim::FunctionRef<void()>::from<&Sender::on_rto>(*this));
  }

  Policy& self() { return static_cast<Policy&>(*this); }
  const Policy& self() const { return static_cast<const Policy&>(*this); }

  /// Transmit segment `seq`, then run the scheme's after_transmit hook.
  void send_segment(std::uint32_t seq, bool proactive = false) {
    transmit_segment(seq, proactive);
    self().after_transmit(seq, proactive);
  }

  /// Completion check: on the transition, runs the scheme's
  /// on_flow_complete() and then the owner's completion callback.
  void maybe_complete() {
    if (!finish_transfer()) return;
    self().on_flow_complete();
    notify_complete();
  }

 private:
  void on_rto() {
    if (!note_timeout()) return;
    self().on_timeout();
  }
};

/// Number of segments needed to carry `bytes` of application data.
std::uint32_t segments_for_bytes(std::uint64_t bytes);

}  // namespace halfback::transport
