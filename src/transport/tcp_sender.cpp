#include "transport/tcp_sender.h"

#include <algorithm>

namespace halfback::transport {

TcpSender::TcpSender(sim::Simulator& simulator, net::Node& local_node,
                     net::NodeId peer, net::FlowId flow, sim::Bytes flow_bytes,
                     SenderConfig config, std::string scheme_name)
    : SenderBase{simulator, local_node, peer,    flow,
                 flow_bytes, config,     std::move(scheme_name)} {}

void TcpSender::on_established() {
  cwnd_ = static_cast<double>(config_.initial_window);
  send_available();
}

void TcpSender::grow_cwnd(std::uint32_t newly_acked) {
  if (in_recovery_) return;
  for (std::uint32_t i = 0; i < newly_acked; ++i) {
    if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // slow start
    } else {
      cwnd_ += 1.0 / cwnd_;  // congestion avoidance
    }
  }
}

void TcpSender::enter_recovery() {
  in_recovery_ = true;
  recovery_point_ = scoreboard_.highest_sent();
  ssthresh_ = std::max(static_cast<double>(scoreboard_.pipe()) / 2.0, 2.0);
  cwnd_ = ssthresh_;
}

void TcpSender::handle_ack(const net::Packet& /*ack*/, const AckUpdate& update) {
  grow_cwnd(update.newly_acked_total());

  if (in_recovery_ && update.cum_ack_after >= recovery_point_) {
    in_recovery_ = false;
    cwnd_ = ssthresh_;
  }

  std::vector<std::uint32_t> newly_lost = scoreboard_.detect_losses(config_.dup_threshold);
  if (!newly_lost.empty() && !in_recovery_) enter_recovery();

  send_available();
}

void TcpSender::on_timeout() {
  // RFC 5681 RTO recovery: collapse to one segment, mark everything
  // outstanding lost and start over from the hole.
  ssthresh_ = std::max(static_cast<double>(scoreboard_.pipe()) / 2.0, 2.0);
  cwnd_ = 1.0;
  in_recovery_ = false;
  scoreboard_.mark_all_outstanding_lost();
  send_available();
  if (!rto_armed()) arm_rto();  // keep the timer alive even if nothing was sendable
}

std::uint32_t TcpSender::new_data_limit() const {
  return scoreboard_.flow_control_limit(config_.receive_window_segments);
}

void TcpSender::send_available() {
  const auto window = static_cast<std::uint32_t>(cwnd_);
  std::uint32_t retx_sent = 0;
  while (true) {
    if (scoreboard_.pipe() >= window) break;
    if (retx_sent < retx_per_call_limit_) {
      if (auto lost = scoreboard_.next_lost_needing_retx()) {
        send_segment(*lost);
        ++retx_sent;
        continue;
      }
    }
    auto next = scoreboard_.next_unsent();
    if (next.has_value() && *next < new_data_limit()) {
      if (scoreboard_.is_sacked(*next)) {
        // Already delivered by an out-of-band copy (RC3's low-priority
        // batch): account it as virtually sent and move on.
        scoreboard_.on_sent(*next, 0, simulator_.now(), /*proactive=*/true);
        continue;
      }
      send_segment(*next);
      continue;
    }
    break;
  }
  if (scoreboard_.pipe() > 0 && !rto_armed()) arm_rto();
}

}  // namespace halfback::transport
