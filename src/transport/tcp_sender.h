// Vanilla TCP sender: slow start, congestion avoidance, SACK-based fast
// retransmit, NewReno-style recovery, RTO. The baseline of the paper, and
// the machinery most schemes reuse.
#pragma once

#include "transport/sender.h"

namespace halfback::transport {

/// TCP with a configurable initial congestion window.
///
/// "TCP" in the paper uses ICW = 2 (its evaluation default) and "TCP-10"
/// uses ICW = 10; both are this class.
class TcpSender : public SenderBase {
 public:
  TcpSender(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
            net::FlowId flow, sim::Bytes flow_bytes, SenderConfig config,
            std::string scheme_name = "tcp");

  double cwnd() const { return cwnd_; }
  double ssthresh() const { return ssthresh_; }
  bool in_recovery() const { return in_recovery_; }

 protected:
  void on_established() override;
  void handle_ack(const net::Packet& ack, const AckUpdate& update) override;
  void on_timeout() override;

  /// Grow cwnd for `newly_acked` segments (slow start or congestion
  /// avoidance). No growth during fast recovery.
  void grow_cwnd(std::uint32_t newly_acked);

  /// Enter fast recovery: halve the window once per loss episode.
  void enter_recovery();

  /// Transmit retransmissions and new data as the congestion, flow-control
  /// and scheme-specific windows allow. Classic TCP sends in bursts (no
  /// pacing) — exactly the behaviour the paper's JumpStart critique rests
  /// on. Arms the RTO if data is outstanding.
  virtual void send_available();

  /// Upper bound (exclusive) on new-data sequence numbers; subclasses can
  /// restrict it (e.g. Halfback's fallback region management).
  virtual std::uint32_t new_data_limit() const;

  double cwnd_ = 2.0;
  double ssthresh_ = 1e9;
  bool in_recovery_ = false;
  std::uint32_t recovery_point_ = 0;
  /// Cap on loss-triggered retransmissions per send_available() call.
  /// Unlimited for TCP (retransmissions ride the cwnd budget); Halfback
  /// sets it to 1 so its normal retransmissions are ACK-clocked like ROPR
  /// (§3: "limits aggressiveness at retransmission").
  std::uint32_t retx_per_call_limit_ = UINT32_MAX;
};

}  // namespace halfback::transport
