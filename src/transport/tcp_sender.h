// Vanilla TCP sender: slow start, congestion avoidance, SACK-based fast
// retransmit, NewReno-style recovery, RTO. The baseline of the paper, and
// the machinery most schemes reuse.
//
// TcpSenderImpl<Derived> is the reusable policy layer of the static
// pipeline: schemes derive as `class X final : public TcpSenderImpl<X>` and
// shadow the hooks they specialize; calls to send_available() /
// new_data_limit() dispatch statically through self(), so a scheme's
// overrides inline into the shared machinery with no vtable on the path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "transport/sender.h"

namespace halfback::transport {

/// TCP with a configurable initial congestion window.
///
/// "TCP" in the paper uses ICW = 2 (its evaluation default) and "TCP-10"
/// uses ICW = 10; both are the concrete TcpSender below.
template <class Derived>
class TcpSenderImpl : public Sender<Derived> {
  using Base = Sender<Derived>;

 public:
  double cwnd() const { return cwnd_; }
  double ssthresh() const { return ssthresh_; }
  bool in_recovery() const { return in_recovery_; }

  // --- policy hooks (statically dispatched by Sender<Derived>) -------------

  void on_established() {
    cwnd_ = static_cast<double>(this->config_.initial_window);
    this->self().send_available();
  }

  void handle_ack(const net::Packet& /*ack*/, const AckUpdate& update) {
    grow_cwnd(update.newly_acked_total());

    if (in_recovery_ && update.cum_ack_after >= recovery_point_) {
      in_recovery_ = false;
      cwnd_ = ssthresh_;
    }

    std::vector<std::uint32_t> newly_lost =
        this->scoreboard_.detect_losses(this->config_.dup_threshold);
    if (!newly_lost.empty() && !in_recovery_) enter_recovery();

    this->self().send_available();
  }

  void on_timeout() {
    // RFC 5681 RTO recovery: collapse to one segment, mark everything
    // outstanding lost and start over from the hole.
    ssthresh_ =
        std::max(static_cast<double>(this->scoreboard_.pipe()) / 2.0, 2.0);
    cwnd_ = 1.0;
    in_recovery_ = false;
    this->scoreboard_.mark_all_outstanding_lost();
    this->self().send_available();
    if (!this->rto_armed()) {
      this->arm_rto();  // keep the timer alive even if nothing was sendable
    }
  }

  /// Transmit retransmissions and new data as the congestion, flow-control
  /// and scheme-specific windows allow. Classic TCP sends in bursts (no
  /// pacing) — exactly the behaviour the paper's JumpStart critique rests
  /// on. Arms the RTO if data is outstanding. Derived classes may shadow
  /// this (e.g. PCP replaces it entirely).
  void send_available() {
    const auto window = static_cast<std::uint32_t>(cwnd_);
    std::uint32_t retx_sent = 0;
    while (true) {
      if (this->scoreboard_.pipe() >= window) break;
      if (retx_sent < retx_per_call_limit_) {
        if (auto lost = this->scoreboard_.next_lost_needing_retx()) {
          this->send_segment(*lost);
          ++retx_sent;
          continue;
        }
      }
      auto next = this->scoreboard_.next_unsent();
      if (next.has_value() && *next < this->self().new_data_limit()) {
        if (this->scoreboard_.is_sacked(*next)) {
          // Already delivered by an out-of-band copy (RC3's low-priority
          // batch): account it as virtually sent and move on.
          this->scoreboard_.on_sent(*next, 0, this->simulator_.now(),
                                    /*proactive=*/true);
          continue;
        }
        this->send_segment(*next);
        continue;
      }
      break;
    }
    if (this->scoreboard_.pipe() > 0 && !this->rto_armed()) this->arm_rto();
  }

  /// Upper bound (exclusive) on new-data sequence numbers; derived classes
  /// shadow it to restrict (e.g. Halfback's fallback region management).
  std::uint32_t new_data_limit() const {
    return this->scoreboard_.flow_control_limit(
        this->config_.receive_window_segments);
  }

 protected:
  TcpSenderImpl(sim::Simulator& simulator, net::Node& local_node,
                net::NodeId peer, net::FlowId flow, sim::Bytes flow_bytes,
                SenderConfig config, std::string scheme_name = "tcp")
      : Base{simulator,  local_node, peer, flow,
             flow_bytes, config,     std::move(scheme_name)} {}

  /// Grow cwnd for `newly_acked` segments (slow start or congestion
  /// avoidance). No growth during fast recovery.
  void grow_cwnd(std::uint32_t newly_acked) {
    if (in_recovery_) return;
    for (std::uint32_t i = 0; i < newly_acked; ++i) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += 1.0;  // slow start
      } else {
        cwnd_ += 1.0 / cwnd_;  // congestion avoidance
      }
    }
  }

  /// Enter fast recovery: halve the window once per loss episode.
  void enter_recovery() {
    in_recovery_ = true;
    recovery_point_ = this->scoreboard_.highest_sent();
    ssthresh_ =
        std::max(static_cast<double>(this->scoreboard_.pipe()) / 2.0, 2.0);
    cwnd_ = ssthresh_;
  }

  double cwnd_ = 2.0;
  double ssthresh_ = 1e9;
  bool in_recovery_ = false;
  std::uint32_t recovery_point_ = 0;
  /// Cap on loss-triggered retransmissions per send_available() call.
  /// Unlimited for TCP (retransmissions ride the cwnd budget); Halfback
  /// sets it to 1 so its normal retransmissions are ACK-clocked like ROPR
  /// (§3: "limits aggressiveness at retransmission").
  std::uint32_t retx_per_call_limit_ = UINT32_MAX;
};

/// The concrete baseline sender ("tcp" / "tcp10" by initial window).
class TcpSender final : public TcpSenderImpl<TcpSender> {
 public:
  TcpSender(sim::Simulator& simulator, net::Node& local_node, net::NodeId peer,
            net::FlowId flow, sim::Bytes flow_bytes, SenderConfig config,
            std::string scheme_name = "tcp")
      : TcpSenderImpl{simulator,  local_node, peer, flow,
                      flow_bytes, config,     std::move(scheme_name)} {}
};

}  // namespace halfback::transport
