// Flat open-addressing membership set for wire uids.
//
// The delivery boundary inserts one key per accepted packet, so the dedup
// structure is on the per-packet hot path. std::unordered_set allocates a
// node per element; this set keeps keys inline in a power-of-two slot
// array with linear probing — no allocation per insert, one cache line
// touched per probe. Determinism: membership answers are identical to any
// set, and iteration order is never observed.
//
// lint: hot-path — per-packet code; no per-packet allocation or type erasure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace halfback::transport {

/// Insert-only set of 64-bit keys. Key 0 is handled out of band so the
/// slot array can use 0 as the empty marker.
class UidSet {
 public:
  UidSet() = default;

  /// Pre-size for `n` expected keys (amortized growth otherwise).
  void reserve(std::size_t n) {
    std::size_t want = 2;
    while (want < 2 * n + 1) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

  /// Insert `key`; returns true if it was not present before.
  bool insert(std::uint64_t key) {
    if (key == 0) {
      const bool fresh = !has_zero_;
      has_zero_ = true;
      return fresh;
    }
    // Grow at 50% load: probes stay short even in the worst case.
    if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) {
      rehash(slots_.empty() ? 64 : slots_.size() * 2);
    }
    std::size_t i = mix(key) & mask_;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  bool contains(std::uint64_t key) const {
    if (key == 0) return has_zero_;
    if (slots_.empty()) return false;
    std::size_t i = mix(key) & mask_;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  std::size_t size() const { return size_ + (has_zero_ ? 1 : 0); }

 private:
  /// splitmix64 finalizer: full-avalanche mix so sequential uids spread
  /// across the table instead of clustering into one probe chain.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  void rehash(std::size_t capacity) {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(capacity, 0);
    mask_ = capacity - 1;
    for (std::uint64_t key : old) {
      if (key == 0) continue;
      std::size_t i = mix(key) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = key;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  bool has_zero_ = false;
};

}  // namespace halfback::transport
