#include "workload/flow_schedule.h"

#include <stdexcept>

namespace halfback::workload {

std::vector<FlowArrival> make_schedule(const FlowSizeDist& sizes,
                                       const ScheduleConfig& config,
                                       sim::Random& rng) {
  if (config.target_utilization <= 0.0) {
    throw std::invalid_argument{"target utilization must be positive"};
  }
  const double bytes_per_second =
      config.target_utilization * config.bottleneck.bytes_per_second();
  const double mean_interarrival_s = sizes.mean_bytes() / bytes_per_second;

  std::vector<FlowArrival> schedule;
  sim::Time t = config.warmup;
  const sim::Time end = config.warmup + config.duration;
  while (true) {
    t += sim::Time::seconds(rng.exponential(mean_interarrival_s));
    if (t >= end) break;
    schedule.push_back(FlowArrival{t, sizes.sample(rng)});
  }
  return schedule;
}

double offered_utilization(const std::vector<FlowArrival>& schedule,
                           const ScheduleConfig& config) {
  if (schedule.empty() || config.duration <= sim::Time::zero()) return 0.0;
  double total_bytes = 0.0;
  for (const FlowArrival& f : schedule) total_bytes += static_cast<double>(f.bytes);
  return total_bytes / (config.bottleneck.bytes_per_second() *
                        config.duration.to_seconds());
}

}  // namespace halfback::workload
