// Flow arrival schedules.
//
// Experiments that compare schemes "use the same schedule of flow arrivals
// for each network utilization" (§4.3.2), so schedules are generated once
// (seeded) and replayed against every scheme.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/data_rate.h"
#include "sim/random.h"
#include "sim/time.h"
#include "workload/flow_size.h"

namespace halfback::workload {

/// One planned flow.
struct FlowArrival {
  sim::Time at;
  std::uint64_t bytes = 0;
};

/// Poisson arrivals of flows drawn from a size distribution, paced to hit a
/// target utilization of a bottleneck.
struct ScheduleConfig {
  double target_utilization = 0.25;  ///< fraction of the bottleneck rate
  sim::DataRate bottleneck = sim::DataRate::megabits_per_second(15);
  sim::Time duration = sim::Time::seconds(60);
  sim::Time warmup;  ///< arrivals start after this offset
};

/// Generate a schedule. Exponential interarrival times with mean chosen so
/// that mean_flow_bytes / mean_interarrival = utilization * bottleneck.
std::vector<FlowArrival> make_schedule(const FlowSizeDist& sizes,
                                       const ScheduleConfig& config,
                                       sim::Random& rng);

/// Offered load of an existing schedule against a bottleneck (sanity
/// checks and utilization accounting).
double offered_utilization(const std::vector<FlowArrival>& schedule,
                           const ScheduleConfig& config);

}  // namespace halfback::workload
