#include "workload/flow_size.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace halfback::workload {

FlowSizeDist::FlowSizeDist(std::string name, std::vector<Point> points)
    : name_{std::move(name)}, points_{std::move(points)} {
  if (points_.size() < 2) throw std::invalid_argument{"need at least two CDF points"};
  if (points_.front().cum_fraction != 0.0 || points_.back().cum_fraction != 1.0) {
    throw std::invalid_argument{"CDF must start at 0 and end at 1"};
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].bytes < points_[i - 1].bytes ||
        points_[i].cum_fraction < points_[i - 1].cum_fraction) {
      throw std::invalid_argument{"CDF points must be nondecreasing"};
    }
  }
}

FlowSizeDist FlowSizeDist::internet() {
  // Tier-1 ISP backbone [Qian et al. 2009]: almost all flows are small
  // (99% < 100 KB) but a sliver of very large flows carries most bytes —
  // only 34.7% of bytes are in flows < 141 KB.
  // Calibrated so that 99% of flows are < 100 KB ("around 99% of flows
  // carry traffic less than 100 KB", §1) while flows < 141 KB carry 34.5%
  // of the bytes (§2.1 reports 34.7%).
  return FlowSizeDist{"internet",
                      {{200, 0.0},
                       {1e3, 0.35},
                       {3e3, 0.58},
                       {1e4, 0.78},
                       {3e4, 0.905},
                       {1e5, 0.99},
                       {3e5, 0.9965},
                       {1e6, 0.9985},
                       {1e7, 0.99973},
                       {1e8, 1.0}}};
}

FlowSizeDist FlowSizeDist::benson() {
  // Private enterprise data center [Benson et al. 2010]: mice everywhere,
  // bytes concentrated in a few elephants (<1% of bytes in flows <141 KB).
  return FlowSizeDist{"benson",
                      {{100, 0.0},
                       {500, 0.28},
                       {2e3, 0.55},
                       {1e4, 0.80},
                       {1e5, 0.95},
                       {1e6, 0.982},
                       {1e7, 0.995},
                       {1e8, 0.999},
                       {1e9, 1.0}}};
}

FlowSizeDist FlowSizeDist::vl2() {
  // Public data center [Greenberg et al., VL2 2009]: bimodal — many small
  // control flows plus 100 MB-class storage transfers holding the bytes.
  return FlowSizeDist{"vl2",
                      {{300, 0.0},
                       {1e3, 0.18},
                       {1e4, 0.55},
                       {1e5, 0.80},
                       {1e6, 0.91},
                       {3e7, 0.955},
                       {3e8, 0.992},
                       {1e9, 1.0}}};
}

FlowSizeDist FlowSizeDist::fixed(std::uint64_t bytes) {
  const double b = static_cast<double>(bytes);
  return FlowSizeDist{"fixed", {{b, 0.0}, {b, 1.0}}};
}

std::uint64_t FlowSizeDist::sample(sim::Random& rng) const {
  const double u = rng.uniform();
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const Point& lo = points_[i - 1];
    const Point& hi = points_[i];
    if (u > hi.cum_fraction) continue;
    if (hi.cum_fraction == lo.cum_fraction || hi.bytes == lo.bytes) {
      return static_cast<std::uint64_t>(hi.bytes);
    }
    // Log-linear: conditional on the segment, size is log-uniform.
    const double t = (u - lo.cum_fraction) / (hi.cum_fraction - lo.cum_fraction);
    const double log_b = std::log(lo.bytes) + t * (std::log(hi.bytes) - std::log(lo.bytes));
    return static_cast<std::uint64_t>(std::exp(log_b));
  }
  return static_cast<std::uint64_t>(points_.back().bytes);
}

FlowSizeDist FlowSizeDist::truncated(sim::Bytes max_bytes) const {
  const double cap = static_cast<double>(max_bytes);
  if (cap >= points_.back().bytes) return *this;
  if (cap <= points_.front().bytes) return fixed(max_bytes);
  std::vector<Point> clipped;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].bytes < cap) {
      clipped.push_back(points_[i]);
      continue;
    }
    // Interpolate the CDF at the cap, then pile the remaining mass there.
    const Point& lo = points_[i - 1];
    const Point& hi = points_[i];
    double f_at_cap = hi.cum_fraction;
    if (hi.bytes > lo.bytes) {
      const double t = (std::log(cap) - std::log(lo.bytes)) /
                       (std::log(hi.bytes) - std::log(lo.bytes));
      f_at_cap = lo.cum_fraction + t * (hi.cum_fraction - lo.cum_fraction);
    }
    clipped.push_back({cap, f_at_cap});
    clipped.push_back({cap, 1.0});
    break;
  }
  return FlowSizeDist{name_ + "-trunc", std::move(clipped)};
}

double FlowSizeDist::segment_mean(const Point& lo, const Point& hi) {
  if (hi.bytes == lo.bytes) return lo.bytes;
  // Mean of a log-uniform variable on [lo, hi].
  return (hi.bytes - lo.bytes) / (std::log(hi.bytes) - std::log(lo.bytes));
}

double FlowSizeDist::mean_bytes() const {
  double mean = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const Point& lo = points_[i - 1];
    const Point& hi = points_[i];
    mean += (hi.cum_fraction - lo.cum_fraction) * segment_mean(lo, hi);
  }
  return mean;
}

double FlowSizeDist::byte_weighted_cdf(double bytes) const {
  const double total = mean_bytes();
  if (total <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const Point& lo = points_[i - 1];
    const Point& hi = points_[i];
    const double p = hi.cum_fraction - lo.cum_fraction;
    if (p <= 0.0) continue;
    if (bytes >= hi.bytes) {
      acc += p * segment_mean(lo, hi);
    } else if (bytes > lo.bytes && hi.bytes > lo.bytes) {
      // Partial segment: flows in [lo, bytes]. Log-uniform density gives
      // expected contribution (x - lo) / ln(hi/lo) per unit probability.
      acc += p * (bytes - lo.bytes) / (std::log(hi.bytes) - std::log(lo.bytes));
      break;
    } else {
      break;
    }
  }
  return acc / total;
}

}  // namespace halfback::workload
