// Flow-size distributions used in the paper's evaluation (§4.2.4, Fig. 2,
// Fig. 11): a Tier-1 ISP backbone ("Internet", Qian et al.), a private
// enterprise data center ("Benson"), and Microsoft's VL2 cluster.
//
// As in the paper, "original data sets were not available; the
// distributions here were approximated from figures in the publications":
// each distribution is a piecewise log-linear CDF over flow sizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/bytes.h"
#include "sim/random.h"

namespace halfback::workload {

/// A flow-size distribution: sampleable, truncatable, and able to report
/// the byte-weighted CDF that Fig. 2 plots.
class FlowSizeDist {
 public:
  /// A control point: `cum_fraction` of flows are of size <= `bytes`.
  struct Point {
    double bytes = 0.0;
    double cum_fraction = 0.0;
  };

  FlowSizeDist(std::string name, std::vector<Point> points);

  /// The three measured distributions of Fig. 2.
  static FlowSizeDist internet();
  static FlowSizeDist benson();
  static FlowSizeDist vl2();
  /// Degenerate distribution (the 100 KB fixed-size workloads).
  static FlowSizeDist fixed(std::uint64_t bytes);

  /// Inverse-transform sample with log-linear interpolation between
  /// control points.
  std::uint64_t sample(sim::Random& rng) const;

  /// The same distribution with all mass above `max_bytes` moved to
  /// `max_bytes` (Fig. 11 truncates at 1 MB: "longer flows would use TCP").
  FlowSizeDist truncated(sim::Bytes max_bytes) const;

  /// Mean flow size in bytes (analytic, from the piecewise form).
  double mean_bytes() const;

  /// Fraction of *bytes* carried by flows of size <= `bytes` — the y-axis
  /// of Fig. 2. Computed analytically from the piecewise form.
  double byte_weighted_cdf(double bytes) const;

  const std::string& name() const { return name_; }
  const std::vector<Point>& points() const { return points_; }
  double min_bytes() const { return points_.front().bytes; }
  double max_bytes() const { return points_.back().bytes; }

 private:
  /// Expected bytes contributed by flows in [lo_bytes, hi_bytes] covering
  /// probability mass [lo_frac, hi_frac], under log-linear interpolation.
  static double segment_mean(const Point& lo, const Point& hi);

  std::string name_;
  std::vector<Point> points_;
};

}  // namespace halfback::workload
