#include "workload/web.h"

#include <algorithm>
#include <cmath>

namespace halfback::workload {

WebsiteCatalog::WebsiteCatalog(const WebCatalogConfig& config, sim::Random rng) {
  pages_.reserve(static_cast<std::size_t>(config.site_count));
  for (int i = 0; i < config.site_count; ++i) {
    WebPage page;
    const double raw_count =
        rng.lognormal(std::log(config.objects_median), config.objects_sigma);
    const int count = std::clamp(static_cast<int>(std::lround(raw_count)),
                                 config.objects_min, config.objects_max);
    page.object_bytes.reserve(static_cast<std::size_t>(count));
    for (int j = 0; j < count; ++j) {
      const double raw_bytes =
          rng.lognormal(std::log(config.object_bytes_median), config.object_bytes_sigma);
      const auto bytes = static_cast<std::uint64_t>(raw_bytes);
      page.object_bytes.push_back(
          std::clamp(bytes, config.object_bytes_min, config.object_bytes_max));
    }
    pages_.push_back(std::move(page));
  }
}

double WebsiteCatalog::mean_page_bytes() const {
  if (pages_.empty()) return 0.0;
  double total = 0.0;
  for (const WebPage& page : pages_) total += static_cast<double>(page.total_bytes());
  return total / static_cast<double>(pages_.size());
}

std::vector<WebRequest> make_web_schedule(const WebsiteCatalog& catalog,
                                          double target_utilization,
                                          sim::DataRate bottleneck,
                                          sim::Time duration, sim::Random& rng) {
  std::vector<WebRequest> schedule;
  const double pages_per_second =
      target_utilization * bottleneck.bytes_per_second() / catalog.mean_page_bytes();
  const double mean_interarrival_s = 1.0 / pages_per_second;
  sim::Time t;
  while (true) {
    t += sim::Time::seconds(rng.exponential(mean_interarrival_s));
    if (t >= duration) break;
    schedule.push_back(WebRequest{t, catalog.sample_index(rng)});
  }
  return schedule;
}

}  // namespace halfback::workload
