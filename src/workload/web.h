// Web workload model for the application-level benchmark (§4.4, Fig. 16).
//
// The paper replays the front pages of the 100 most popular web sites,
// delivering each page's objects over concurrent connections as Chrome
// would. The site data is not available offline, so we synthesize a
// catalog of 100 pages whose object-count and object-size dispersion match
// published top-site measurements (see DESIGN.md); what Fig. 16 depends on
// is the burst of concurrent short flows per request, which this preserves.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/data_rate.h"
#include "sim/random.h"
#include "sim/time.h"
#include "workload/flow_size.h"

namespace halfback::workload {

/// One front page: the sizes of its fetchable objects, in the order the
/// browser requests them.
struct WebPage {
  std::vector<std::uint64_t> object_bytes;

  std::uint64_t total_bytes() const {
    std::uint64_t sum = 0;
    for (std::uint64_t b : object_bytes) sum += b;
    return sum;
  }
};

/// Parameters of the synthetic page generator.
struct WebCatalogConfig {
  int site_count = 100;
  /// Object count per page ~ lognormal, clamped.
  double objects_median = 30.0;
  double objects_sigma = 0.7;
  int objects_min = 3;
  int objects_max = 150;
  /// Object size ~ lognormal, clamped (bytes). 2015-era front pages carry
  /// ~1.5-2 MB over a few dozen objects.
  double object_bytes_median = 14'000.0;
  double object_bytes_sigma = 1.3;
  std::uint64_t object_bytes_min = 200;
  std::uint64_t object_bytes_max = 1'000'000;
};

/// A fixed catalog of synthetic front pages.
class WebsiteCatalog {
 public:
  WebsiteCatalog(const WebCatalogConfig& config, sim::Random rng);

  const WebPage& page(std::size_t index) const { return pages_.at(index); }
  std::size_t size() const { return pages_.size(); }

  /// Mean bytes per page over the catalog (for utilization pacing).
  double mean_page_bytes() const;

  /// Pick a page uniformly at random.
  std::size_t sample_index(sim::Random& rng) const {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pages_.size()) - 1));
  }

 private:
  std::vector<WebPage> pages_;
};

/// One planned page request.
struct WebRequest {
  sim::Time at;
  std::size_t page_index = 0;
};

/// Poisson page requests paced to a target utilization (given the catalog's
/// mean page weight).
std::vector<WebRequest> make_web_schedule(const WebsiteCatalog& catalog,
                                          double target_utilization,
                                          sim::DataRate bottleneck,
                                          sim::Time duration, sim::Random& rng);

}  // namespace halfback::workload
