// The auditor must stay silent on correct runs and fire on every class of
// seeded violation: stale events, reordered dispatch, double delivery,
// over-full queues, scoreboard inconsistencies, and broken ROPR order.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "audit/invariant_auditor.h"
#include "net/link.h"
#include "net/packet.h"
#include "net/queue.h"
#include "sim/simulator.h"
#include "support/dumbbell_fixture.h"
#include "transport/scoreboard.h"

namespace halfback::audit {
namespace {

using namespace halfback::sim::literals;

net::Packet make_data_packet(std::uint64_t uid, std::uint32_t seq = 0) {
  net::Packet p;
  p.flow = 1;
  p.type = net::PacketType::data;
  p.src = 0;
  p.dst = 2;
  p.seq = seq;
  p.size_bytes = 1500;
  p.uid = uid;
  return p;
}

// --- clean runs -------------------------------------------------------------

TEST(InvariantAuditorTest, RealDumbbellRunIsClean) {
#ifndef HALFBACK_AUDIT
  GTEST_SKIP() << "audit hooks compiled out (HALFBACK_AUDIT=OFF)";
#endif
  testing::DumbbellFixture fx;
  InvariantAuditor auditor;
  fx.net.install_auditor(auditor);

  auto& flow = fx.start(schemes::Scheme::halfback, 100'000);
  fx.sim.run();

  ASSERT_TRUE(flow.complete());
  auditor.finalize(/*drained=*/fx.sim.queue().empty());
  EXPECT_TRUE(auditor.ok()) << auditor.report();
  EXPECT_NE(auditor.trace_hash(), 0u);
}

TEST(InvariantAuditorTest, LossyCoDelBottleneckRunIsClean) {
#ifndef HALFBACK_AUDIT
  GTEST_SKIP() << "audit hooks compiled out (HALFBACK_AUDIT=OFF)";
#endif
  // A tight CoDel bottleneck forces both admission and in-queue drops, the
  // two accounting paths that differ (see audit::DropContext).
  net::DumbbellConfig config;
  config.bottleneck_queue = net::QueueKind::codel;
  config.bottleneck_buffer_bytes = 20'000;
  config.bottleneck_rate = sim::DataRate::megabits_per_second(5);
  testing::DumbbellFixture fx{config};
  InvariantAuditor auditor;
  fx.net.install_auditor(auditor);

  for (std::size_t pair = 0; pair < 4; ++pair) {
    fx.start(schemes::Scheme::tcp, 400'000, pair);
  }
  fx.sim.run();

  auditor.finalize(fx.sim.queue().empty());
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

// --- event-engine violations ------------------------------------------------

TEST(InvariantAuditorTest, SchedulingInThePastIsFlagged) {
#ifndef HALFBACK_AUDIT
  GTEST_SKIP() << "audit hooks compiled out (HALFBACK_AUDIT=OFF)";
#endif
  sim::Simulator simulator;
  InvariantAuditor auditor;
  simulator.set_auditor(&auditor);

  // An event at t=5ms schedules another at absolute t=1ms — in the past.
  // Both the stale scheduling and the resulting backwards dispatch must be
  // flagged.
  simulator.schedule_at(5_ms, [&] { simulator.schedule_at(1_ms, [] {}); });
  simulator.run();

  EXPECT_FALSE(auditor.ok());
  EXPECT_GE(auditor.total_violations(), 2u) << auditor.report();
}

TEST(InvariantAuditorTest, FifoTieBreakViolationIsFlagged) {
  InvariantAuditor auditor;
  auditor.on_event_run(2_ms, 7);
  auditor.on_event_run(2_ms, 7);  // same time, non-increasing seq
  EXPECT_FALSE(auditor.ok());
}

TEST(InvariantAuditorTest, MonotoneEqualTimeDispatchIsClean) {
  InvariantAuditor auditor;
  auditor.on_event_run(1_ms, 1);
  auditor.on_event_run(1_ms, 2);
  auditor.on_event_run(3_ms, 0);  // seq may reset across times
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

// --- packet conservation ----------------------------------------------------

TEST(InvariantAuditorTest, DoubleDeliveredPacketIsFlagged) {
  InvariantAuditor auditor;
  const net::Packet p = make_data_packet(/*uid=*/7);
  auditor.on_node_received(2, p);
  EXPECT_TRUE(auditor.ok());
  auditor.on_node_received(2, p);  // the same wire transmission arrives again
  EXPECT_FALSE(auditor.ok());
}

TEST(InvariantAuditorTest, InjectedDuplicateExtendsTheDeliveryBudget) {
  // netfault duplication legitimately lands the same uid at its
  // destination more than once; each on_link_fault_duplicated event buys
  // exactly one extra arrival, no more.
  sim::Simulator sim{1};
  net::Link link{sim, sim::DataRate::megabits_per_second(10), 1_ms,
                 std::make_unique<net::DropTailQueue>(1 << 20), 0.0};
  InvariantAuditor auditor;
  const net::Packet p = make_data_packet(/*uid=*/21);
  auditor.on_link_fault_duplicated(link, p);  // one injected copy
  auditor.on_node_received(2, p);
  auditor.on_node_received(2, p);  // the copy: within the extended budget
  EXPECT_TRUE(auditor.ok()) << auditor.report();
  auditor.on_node_received(2, p);  // a third arrival exceeds 1 + 1
  EXPECT_FALSE(auditor.ok());
}

TEST(InvariantAuditorTest, ForwardingHopsDoNotCountAsDeliveries) {
  InvariantAuditor auditor;
  const net::Packet p = make_data_packet(/*uid=*/9);
  auditor.on_node_received(1, p);  // transit hop: p.dst == 2
  auditor.on_node_received(2, p);  // destination
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

// --- queue accounting -------------------------------------------------------

/// A buggy queue that admits everything, ignoring its capacity — the class
/// of bug the byte-accounting audit exists to catch.
class OverfullQueue final : public net::PacketQueue {
 public:
  explicit OverfullQueue(std::uint64_t capacity) : capacity_{capacity} {}

  bool enqueue(net::Packet p, sim::Time now) override {
    bytes_ += p.size_bytes;
    packets_.push_back(std::move(p));
    record_enqueue(packets_.back(), now, packets_.size());
    return true;
  }
  std::optional<net::Packet> dequeue(sim::Time /*now*/) override {
    if (packets_.empty()) return std::nullopt;
    net::Packet p = std::move(packets_.front());
    packets_.pop_front();
    bytes_ -= p.size_bytes;
    record_dequeue(p);
    return p;
  }
  std::uint64_t byte_length() const override { return bytes_; }
  std::size_t packet_count() const override { return packets_.size(); }
  std::uint64_t capacity_bytes() const override { return capacity_; }

 private:
  std::uint64_t capacity_;
  std::uint64_t bytes_ = 0;
  std::deque<net::Packet> packets_;
};

TEST(InvariantAuditorTest, OverFullQueueIsFlagged) {
#ifndef HALFBACK_AUDIT
  // The queue's record_* helpers only reach the auditor through the
  // compiled-out hook macro.
  GTEST_SKIP() << "audit hooks compiled out (HALFBACK_AUDIT=OFF)";
#endif
  InvariantAuditor auditor;
  OverfullQueue queue{2'000};
  queue.set_auditor(&auditor);

  ASSERT_TRUE(queue.enqueue(make_data_packet(1), sim::Time::zero()));
  EXPECT_TRUE(auditor.ok());
  ASSERT_TRUE(queue.enqueue(make_data_packet(2), sim::Time::zero()));  // 3000 B > 2000 B
  EXPECT_FALSE(auditor.ok());
}

TEST(InvariantAuditorTest, DropTailAccountingIsClean) {
  InvariantAuditor auditor;
  net::DropTailQueue queue{3'000};
  queue.set_auditor(&auditor);

  EXPECT_TRUE(queue.enqueue(make_data_packet(1), sim::Time::zero()));
  EXPECT_TRUE(queue.enqueue(make_data_packet(2), sim::Time::zero()));
  EXPECT_FALSE(queue.enqueue(make_data_packet(3), sim::Time::zero()));  // admission drop
  EXPECT_TRUE(queue.dequeue(sim::Time::zero()).has_value());
  EXPECT_TRUE(queue.dequeue(sim::Time::zero()).has_value());
  EXPECT_FALSE(queue.dequeue(sim::Time::zero()).has_value());

  EXPECT_TRUE(auditor.ok()) << auditor.report();
  EXPECT_EQ(queue.stats().dequeued_packets, 2u);
  EXPECT_EQ(queue.stats().dropped_packets, 1u);
}

// --- scoreboard consistency -------------------------------------------------

TEST(InvariantAuditorTest, SackForNeverSentSegmentIsFlagged) {
  InvariantAuditor auditor;
  transport::Scoreboard scoreboard{10};
  // Segments 0..4 sent; a corrupted ACK SACKs segment 7, which never left
  // the sender.
  for (std::uint32_t seq = 0; seq < 5; ++seq) {
    scoreboard.on_sent(seq, seq + 1, 1_ms, false);
  }
  net::Packet ack;
  ack.type = net::PacketType::ack;
  ack.cum_ack = 0;
  transport::AckUpdate update = scoreboard.apply_ack(0, {{7, 8}});
  ASSERT_EQ(update.newly_sacked.size(), 1u);

  auditor.on_ack_applied(scoreboard, /*flow=*/1, ack, update);
  EXPECT_FALSE(auditor.ok());
}

TEST(InvariantAuditorTest, CumAckRegressionIsFlagged) {
  InvariantAuditor auditor;
  transport::Scoreboard scoreboard{10};
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    scoreboard.on_sent(seq, seq + 1, 1_ms, false);
  }
  net::Packet ack;
  ack.type = net::PacketType::ack;

  transport::AckUpdate forward;
  forward.cum_ack_before = 0;
  forward.cum_ack_after = 6;
  auditor.on_ack_applied(scoreboard, 1, ack, forward);
  EXPECT_TRUE(auditor.ok());

  transport::AckUpdate backward;
  backward.cum_ack_before = 6;
  backward.cum_ack_after = 3;  // the ACK clock ran backwards
  auditor.on_ack_applied(scoreboard, 1, ack, backward);
  EXPECT_FALSE(auditor.ok());
}

TEST(InvariantAuditorTest, ScoreboardUpdatesThroughSenderPathAreClean) {
  InvariantAuditor auditor;
  transport::Scoreboard scoreboard{4};
  net::Packet ack;
  ack.type = net::PacketType::ack;
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    scoreboard.on_sent(seq, seq + 1, 1_ms, false);
    auditor.on_segment_sent(scoreboard, 1, "tcp", seq, false, seq + 1);
  }
  transport::AckUpdate update = scoreboard.apply_ack(2, {{3, 4}});
  auditor.on_ack_applied(scoreboard, 1, ack, update);
  update = scoreboard.apply_ack(4, {});
  auditor.on_ack_applied(scoreboard, 1, ack, update);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

// --- ROPR reverse-order property --------------------------------------------

TEST(InvariantAuditorTest, RoprReverseOrderViolationIsFlagged) {
  InvariantAuditor auditor;
  transport::Scoreboard scoreboard{10};
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    scoreboard.on_sent(seq, seq + 1, 1_ms, false);
  }
  auditor.on_segment_sent(scoreboard, 1, "halfback", 8, /*proactive=*/true, 11);
  auditor.on_segment_sent(scoreboard, 1, "halfback", 6, /*proactive=*/true, 12);
  EXPECT_TRUE(auditor.ok());
  // Walking forward again breaks §3.2's reverse-order property.
  auditor.on_segment_sent(scoreboard, 1, "halfback", 7, /*proactive=*/true, 13);
  EXPECT_FALSE(auditor.ok());
}

TEST(InvariantAuditorTest, ForwardAblationIsExemptFromRoprOrder) {
  InvariantAuditor auditor;
  transport::Scoreboard scoreboard{10};
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    scoreboard.on_sent(seq, seq + 1, 1_ms, false);
  }
  auditor.on_segment_sent(scoreboard, 1, "halfback-forward", 2, true, 11);
  auditor.on_segment_sent(scoreboard, 1, "halfback-forward", 3, true, 12);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

// --- reporting --------------------------------------------------------------

TEST(InvariantAuditorTest, ReportListsViolationsAndCapsStorage) {
  InvariantAuditor auditor;
  for (int i = 0; i < 200; ++i) {
    auditor.on_event_run(2_ms, 1);
    auditor.on_event_run(1_ms, 2);  // time goes backwards every iteration
  }
  EXPECT_FALSE(auditor.ok());
  EXPECT_LE(auditor.violations().size(), InvariantAuditor::kMaxStoredViolations);
  EXPECT_GT(auditor.total_violations(), auditor.violations().size());
  EXPECT_NE(auditor.report().find("further violations"), std::string::npos);
}

}  // namespace
}  // namespace halfback::audit
