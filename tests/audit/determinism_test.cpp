// Per-seed determinism: the audit trace hash must be reproduced exactly by
// a second run with the same seed, and real experiment runs must be clean.
#include <gtest/gtest.h>

#include "exp/emulab.h"
#include "exp/planetlab.h"
#include "schemes/scheme.h"
#include "workload/flow_schedule.h"

namespace halfback::exp {
namespace {

PlanetLabEnv small_env() {
  PlanetLabConfig config;
  config.pair_count = 4;
  config.seed = 7;
  config.per_trial_timeout = sim::Time::seconds(60);
  return PlanetLabEnv{config};
}

TEST(DeterminismTest, SameSeedPlanetLabTrialsProduceIdenticalTraceHashes) {
#ifndef HALFBACK_AUDIT
  GTEST_SKIP() << "audit hooks compiled out (HALFBACK_AUDIT=OFF)";
#endif
  const PlanetLabEnv env = small_env();
  const PathSample& path = env.paths().front();

  const TrialResult a = env.run_one(schemes::Scheme::halfback, path, 1234);
  const TrialResult b = env.run_one(schemes::Scheme::halfback, path, 1234);

  EXPECT_TRUE(a.finished);
  EXPECT_EQ(a.audit_violations, 0u);
  EXPECT_EQ(b.audit_violations, 0u);
  EXPECT_NE(a.trace_hash, 0u);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

TEST(DeterminismTest, DifferentPathsProduceDifferentTraceHashes) {
#ifndef HALFBACK_AUDIT
  GTEST_SKIP() << "audit hooks compiled out (HALFBACK_AUDIT=OFF)";
#endif
  const PlanetLabEnv env = small_env();
  ASSERT_GE(env.paths().size(), 2u);

  const TrialResult a = env.run_one(schemes::Scheme::halfback, env.paths()[0], 1234);
  const TrialResult b = env.run_one(schemes::Scheme::halfback, env.paths()[1], 1234);

  // Distinct topologies drive distinct packet traces; a hash collision here
  // would mean the hash is not actually mixing the trace.
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

TEST(DeterminismTest, AllSchemesRunAuditCleanOnPlanetLabPaths) {
#ifndef HALFBACK_AUDIT
  GTEST_SKIP() << "audit hooks compiled out (HALFBACK_AUDIT=OFF)";
#endif
  const PlanetLabEnv env = small_env();
  const PathSample& path = env.paths().front();

  for (schemes::Scheme scheme :
       {schemes::Scheme::tcp, schemes::Scheme::reactive, schemes::Scheme::proactive,
        schemes::Scheme::halfback, schemes::Scheme::halfback_forward,
        schemes::Scheme::rc3}) {
    const TrialResult r = env.run_one(scheme, path, 99);
    EXPECT_EQ(r.audit_violations, 0u)
        << "scheme " << static_cast<int>(scheme) << " violated an invariant";
    EXPECT_NE(r.trace_hash, 0u);
  }
}

TEST(DeterminismTest, SameSeedEmulabRunsProduceIdenticalTraceHashes) {
#ifndef HALFBACK_AUDIT
  GTEST_SKIP() << "audit hooks compiled out (HALFBACK_AUDIT=OFF)";
#endif
  EmulabRunner::Config config;
  config.seed = 5;
  config.dumbbell.sender_count = 4;
  config.dumbbell.receiver_count = 4;
  config.drain = sim::Time::seconds(20);

  std::vector<WorkloadPart> parts(1);
  parts[0].scheme = schemes::Scheme::halfback;
  for (int i = 0; i < 6; ++i) {
    parts[0].schedule.push_back(workload::FlowArrival{
        sim::Time::milliseconds(50.0 * i), /*bytes=*/100'000});
  }

  const RunResult a = EmulabRunner{config}.run(parts);
  const RunResult b = EmulabRunner{config}.run(parts);

  EXPECT_EQ(a.audit_violations, 0u);
  EXPECT_EQ(b.audit_violations, 0u);
  EXPECT_NE(a.trace_hash, 0u);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.flows.size(), 6u);
}

}  // namespace
}  // namespace halfback::exp
