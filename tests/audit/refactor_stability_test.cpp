// Refactor-stability anchors: golden trace hashes captured from the seed
// implementation (std::function event queue, per-hop packet allocation)
// before the intrusive-event/packet-pool refactor. The refactor — and any
// future scheduling-layer change — must keep same-seed runs bit-identical:
// every event sequence number, dispatch order, and packet uid feeds the
// hash, so a single reordered or extra schedule() call shows up here.
//
// If one of these fails after an intentional semantic change to the
// schemes or workloads, re-capture the constants and say so in the PR; if
// it fails after a "pure" performance or refactoring change, the change is
// not pure.
#include <gtest/gtest.h>

#include "exp/emulab.h"
#include "exp/planetlab.h"
#include "schemes/scheme.h"
#include "workload/flow_schedule.h"

namespace halfback::exp {
namespace {

// Captured from the seed build (commit 624a883) with the configs below.
constexpr std::uint64_t kGoldenPlanetLabTcp = 0xe6e86e6f4b6fd07dULL;
constexpr std::uint64_t kGoldenPlanetLabHalfback = 0xc1ea3c0a33978304ULL;
constexpr std::uint64_t kGoldenPlanetLabRc3 = 0xa9ca10dd2bef1ccaULL;
constexpr std::uint64_t kGoldenEmulabHalfback = 0xf36e16201b236f8aULL;

PlanetLabEnv golden_env() {
  PlanetLabConfig config;
  config.pair_count = 4;
  config.seed = 7;
  config.per_trial_timeout = sim::Time::seconds(60);
  return PlanetLabEnv{config};
}

TEST(RefactorStability, PlanetLabTraceHashesMatchSeedGolden) {
#ifndef HALFBACK_AUDIT
  GTEST_SKIP() << "audit hooks compiled out (HALFBACK_AUDIT=OFF)";
#endif
  const PlanetLabEnv env = golden_env();
  const PathSample& path = env.paths().front();

  const TrialResult tcp = env.run_one(schemes::Scheme::tcp, path, 1234);
  EXPECT_EQ(tcp.audit_violations, 0u);
  EXPECT_EQ(tcp.trace_hash, kGoldenPlanetLabTcp);

  const TrialResult halfback = env.run_one(schemes::Scheme::halfback, path, 1234);
  EXPECT_EQ(halfback.audit_violations, 0u);
  EXPECT_EQ(halfback.trace_hash, kGoldenPlanetLabHalfback);

  const TrialResult rc3 = env.run_one(schemes::Scheme::rc3, path, 1234);
  EXPECT_EQ(rc3.audit_violations, 0u);
  EXPECT_EQ(rc3.trace_hash, kGoldenPlanetLabRc3);
}

TEST(RefactorStability, EmulabTraceHashMatchesSeedGolden) {
#ifndef HALFBACK_AUDIT
  GTEST_SKIP() << "audit hooks compiled out (HALFBACK_AUDIT=OFF)";
#endif
  EmulabRunner::Config config;
  config.seed = 5;
  config.dumbbell.sender_count = 4;
  config.dumbbell.receiver_count = 4;
  config.drain = sim::Time::seconds(20);

  std::vector<WorkloadPart> parts(1);
  parts[0].scheme = schemes::Scheme::halfback;
  for (int i = 0; i < 6; ++i) {
    parts[0].schedule.push_back(workload::FlowArrival{
        sim::Time::milliseconds(50.0 * i), /*bytes=*/100'000});
  }

  const RunResult run = EmulabRunner{config}.run(parts);
  EXPECT_EQ(run.audit_violations, 0u);
  EXPECT_EQ(run.flows.size(), 6u);
  EXPECT_EQ(run.trace_hash, kGoldenEmulabHalfback);
}

}  // namespace
}  // namespace halfback::exp
