// Static-vs-dynamic pipeline equivalence anchors.
//
// Golden same-seed trace hashes for every scheme (all eleven, ablations
// included) across the full chaos scenario catalog, captured from the
// pre-refactor *dynamic* sender pipeline (virtual handle_ack/on_timeout
// hooks, std::function completion callbacks) immediately before the
// compile-time transport specialization landed. The static CRTP pipeline
// must reproduce every one of these 99 hashes bit-identically: the
// refactor devirtualizes dispatch and removes per-flow allocation, but a
// single reordered schedule() call, extra RNG draw, or changed packet uid
// shows up here as a hash mismatch naming the exact (scenario, scheme)
// cell.
//
// Re-capture (only after an *intentional* semantic change, and say so in
// the PR):
//   HALFBACK_CAPTURE_GOLDEN=1 ./audit_tests \
//     --gtest_filter='StaticPipelineEquivalence.*' 2>&1 | grep '0x'
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exp/chaos.h"
#include "exp/emulab.h"
#include "schemes/scheme.h"

namespace halfback::exp {
namespace {

// One golden cell; order is scenario-major, matching chaos_sweep().
struct GoldenCell {
  const char* scenario;
  schemes::Scheme scheme;
  std::uint64_t trace_hash;
};

using schemes::Scheme;

// Captured from the pre-refactor dynamic pipeline (seed 1, 8 flows of
// 100 kB per cell at 800 ms spacing — the chaos_sweep defaults). Seed 1
// deliberately: rc3 × adversarial wedges into a retransmission event
// storm at some other seeds (e.g. 42) — a pre-existing pathology in a
// cell no other suite runs, tracked in the ROADMAP, and not what this
// suite is for.
constexpr GoldenCell kGolden[] = {
    {"clean", Scheme::tcp, 0x83a074e525ffe198ULL},
    {"clean", Scheme::tcp10, 0x23cdc08faec5234cULL},
    {"clean", Scheme::tcp_cache, 0x83a074e525ffe198ULL},
    {"clean", Scheme::reactive, 0xd4febaba10e526aaULL},
    {"clean", Scheme::proactive, 0x7a8fb1e678352c02ULL},
    {"clean", Scheme::jumpstart, 0xfec8862ae4e7a4b0ULL},
    {"clean", Scheme::pcp, 0xb5bb523684203013ULL},
    {"clean", Scheme::halfback, 0xfcb991dbfca5d099ULL},
    {"clean", Scheme::halfback_forward, 0xf74738b839312c82ULL},
    {"clean", Scheme::halfback_burst, 0x60b71f3bd7f6e4b3ULL},
    {"clean", Scheme::rc3, 0xad93ccc122d13e6aULL},
    {"bursty-loss", Scheme::tcp, 0xb7be5f174019d7baULL},
    {"bursty-loss", Scheme::tcp10, 0x7cb08ca42a4e201aULL},
    {"bursty-loss", Scheme::tcp_cache, 0xb7be5f174019d7baULL},
    {"bursty-loss", Scheme::reactive, 0x90f5887767d2d528ULL},
    {"bursty-loss", Scheme::proactive, 0xacddca289925c663ULL},
    {"bursty-loss", Scheme::jumpstart, 0x97c690dd3d7c4663ULL},
    {"bursty-loss", Scheme::pcp, 0x695367dc76c0b221ULL},
    {"bursty-loss", Scheme::halfback, 0x78d142ed720e44ebULL},
    {"bursty-loss", Scheme::halfback_forward, 0xe9ce71ea1ac508e1ULL},
    {"bursty-loss", Scheme::halfback_burst, 0xdfed0651bb9bec19ULL},
    {"bursty-loss", Scheme::rc3, 0xcce7f4b4a33e6fcfULL},
    {"reorder", Scheme::tcp, 0x1d024e0c358149a2ULL},
    {"reorder", Scheme::tcp10, 0x292953f6ccaaada6ULL},
    {"reorder", Scheme::tcp_cache, 0x1d024e0c358149a2ULL},
    {"reorder", Scheme::reactive, 0x59dada7ce0f2524bULL},
    {"reorder", Scheme::proactive, 0x96c494a74dd9e673ULL},
    {"reorder", Scheme::jumpstart, 0x1e012cc8d33cbf11ULL},
    {"reorder", Scheme::pcp, 0x8e1db1053932dd3ULL},
    {"reorder", Scheme::halfback, 0xea322221333dc5e2ULL},
    {"reorder", Scheme::halfback_forward, 0x24684e30698ed39ULL},
    {"reorder", Scheme::halfback_burst, 0xf510e2499763de35ULL},
    {"reorder", Scheme::rc3, 0x100db4ea58a7dcaULL},
    {"duplicate", Scheme::tcp, 0x28d42e914bdfaae4ULL},
    {"duplicate", Scheme::tcp10, 0x5ee8153507a0b3cULL},
    {"duplicate", Scheme::tcp_cache, 0x28d42e914bdfaae4ULL},
    {"duplicate", Scheme::reactive, 0xb415f03817e32c09ULL},
    {"duplicate", Scheme::proactive, 0x70ef8fd3faff9414ULL},
    {"duplicate", Scheme::jumpstart, 0x7e0a74a981d1cef8ULL},
    {"duplicate", Scheme::pcp, 0x949353c4a885fa82ULL},
    {"duplicate", Scheme::halfback, 0x2087e056ec93bc7bULL},
    {"duplicate", Scheme::halfback_forward, 0x87af585de92b23c1ULL},
    {"duplicate", Scheme::halfback_burst, 0xed0d69d848b227b5ULL},
    {"duplicate", Scheme::rc3, 0xcb789825f04cdc8eULL},
    {"corrupt", Scheme::tcp, 0x6cb44c6f4462512eULL},
    {"corrupt", Scheme::tcp10, 0x34601c984cfde9caULL},
    {"corrupt", Scheme::tcp_cache, 0x6cb44c6f4462512eULL},
    {"corrupt", Scheme::reactive, 0xcc16d4772e0b5b1dULL},
    {"corrupt", Scheme::proactive, 0xd916154b20cc3de1ULL},
    {"corrupt", Scheme::jumpstart, 0x1f2251f7b1a0d09ULL},
    {"corrupt", Scheme::pcp, 0xbfae56f328fd4519ULL},
    {"corrupt", Scheme::halfback, 0xed6d0492fd65629fULL},
    {"corrupt", Scheme::halfback_forward, 0xa66df187c8f38ea8ULL},
    {"corrupt", Scheme::halfback_burst, 0xda396e5ea1a3e1ebULL},
    {"corrupt", Scheme::rc3, 0x6f839c842fd4cb2bULL},
    {"blackout", Scheme::tcp, 0x9ee768c3b8b37da1ULL},
    {"blackout", Scheme::tcp10, 0xc83cd123e1dbd69cULL},
    {"blackout", Scheme::tcp_cache, 0x9ee768c3b8b37da1ULL},
    {"blackout", Scheme::reactive, 0x8bd31d6a17a0e86ULL},
    {"blackout", Scheme::proactive, 0x1222cb4d2bfbe787ULL},
    {"blackout", Scheme::jumpstart, 0x18ff8201a138aa4ULL},
    {"blackout", Scheme::pcp, 0x816d403e9e332903ULL},
    {"blackout", Scheme::halfback, 0x3d1978dbb4ef96c6ULL},
    {"blackout", Scheme::halfback_forward, 0x8edba15d68475be7ULL},
    {"blackout", Scheme::halfback_burst, 0x1042288d9ecc11dfULL},
    {"blackout", Scheme::rc3, 0xb73a0416496be7d3ULL},
    {"flap", Scheme::tcp, 0xcdb49027dbd6b6f7ULL},
    {"flap", Scheme::tcp10, 0xa89d9c55f695260cULL},
    {"flap", Scheme::tcp_cache, 0xcdb49027dbd6b6f7ULL},
    {"flap", Scheme::reactive, 0xc9b5462e4ba672cdULL},
    {"flap", Scheme::proactive, 0xb7d7eca0615ee55eULL},
    {"flap", Scheme::jumpstart, 0x71fb0400bbf537eULL},
    {"flap", Scheme::pcp, 0x8187d2f61115664fULL},
    {"flap", Scheme::halfback, 0x4b2a19dd99892741ULL},
    {"flap", Scheme::halfback_forward, 0x191875c80857257dULL},
    {"flap", Scheme::halfback_burst, 0x8bb8a527556cc2daULL},
    {"flap", Scheme::rc3, 0x3e79a06dc533d37cULL},
    {"delay-spike", Scheme::tcp, 0xf1484aa011a949bcULL},
    {"delay-spike", Scheme::tcp10, 0x6fed034ac49e8c08ULL},
    {"delay-spike", Scheme::tcp_cache, 0xf1484aa011a949bcULL},
    {"delay-spike", Scheme::reactive, 0x9dc78b3ff83a7040ULL},
    {"delay-spike", Scheme::proactive, 0xb2bba8b455bb7447ULL},
    {"delay-spike", Scheme::jumpstart, 0x189ba499a89f2911ULL},
    {"delay-spike", Scheme::pcp, 0x5f36994895657b29ULL},
    {"delay-spike", Scheme::halfback, 0x84c6a175ee5cbe31ULL},
    {"delay-spike", Scheme::halfback_forward, 0x575bbe99bd278353ULL},
    {"delay-spike", Scheme::halfback_burst, 0x9c6e748957615412ULL},
    {"delay-spike", Scheme::rc3, 0xf1eecb52399289c2ULL},
    {"adversarial", Scheme::tcp, 0x45d3e23fbfc47844ULL},
    {"adversarial", Scheme::tcp10, 0xf936093a7f809daULL},
    {"adversarial", Scheme::tcp_cache, 0x45d3e23fbfc47844ULL},
    {"adversarial", Scheme::reactive, 0xee8ace3576f27eddULL},
    {"adversarial", Scheme::proactive, 0xf9914c36e7061533ULL},
    {"adversarial", Scheme::jumpstart, 0x81817a70953559c4ULL},
    {"adversarial", Scheme::pcp, 0x6344dcf637ad872eULL},
    {"adversarial", Scheme::halfback, 0x916b9f5a60d5addbULL},
    {"adversarial", Scheme::halfback_forward, 0x84883a66b035dd40ULL},
    {"adversarial", Scheme::halfback_burst, 0x3cbe43ff4265e780ULL},
    {"adversarial", Scheme::rc3, 0x7426c67a41a8509aULL},
};

ChaosSweepConfig golden_config() {
  ChaosSweepConfig config;
  config.runner.seed = 1;
  return config;
}

std::vector<schemes::Scheme> every_scheme() {
  std::vector<schemes::Scheme> out;
  for (const schemes::SchemeInfo& info : schemes::all_schemes()) {
    out.push_back(info.scheme);
  }
  return out;
}

TEST(StaticPipelineEquivalence, EverySchemeEveryScenarioMatchesDynamicGolden) {
#ifndef HALFBACK_AUDIT
  GTEST_SKIP() << "audit hooks compiled out (HALFBACK_AUDIT=OFF)";
#endif
  const std::vector<schemes::Scheme> all = every_scheme();
  const std::vector<ChaosCell> cells = chaos_sweep(golden_config(), all).cells;
  ASSERT_EQ(cells.size(), chaos_catalog().size() * all.size());

  if (std::getenv("HALFBACK_CAPTURE_GOLDEN") != nullptr) {
    for (const ChaosCell& cell : cells) {
      // The enum identifier, not the display name: s/-/_/ for the ablations.
      std::string id = schemes::name(cell.scheme);
      for (char& c : id) {
        if (c == '-') c = '_';
      }
      std::printf("    {\"%s\", Scheme::%s, 0x%llxULL},\n",
                  cell.scenario.c_str(), id.c_str(),
                  static_cast<unsigned long long>(cell.trace_hash));
    }
    GTEST_SKIP() << "golden capture mode: table printed, assertions skipped";
  }

  ASSERT_EQ(cells.size(), std::size(kGolden));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ChaosCell& cell = cells[i];
    const GoldenCell& golden = kGolden[i];
    SCOPED_TRACE(cell.scenario + " / " + schemes::name(cell.scheme));
    EXPECT_EQ(cell.scenario, golden.scenario);
    EXPECT_EQ(cell.scheme, golden.scheme);
    EXPECT_EQ(cell.unfinished, 0u);
    EXPECT_EQ(cell.audit_violations, 0u);
    EXPECT_EQ(cell.trace_hash, golden.trace_hash)
        << "static pipeline diverged from the pre-refactor dynamic golden";
  }
}

}  // namespace
}  // namespace halfback::exp
