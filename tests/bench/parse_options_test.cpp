// bench::parse_options argument validation: numeric flags must reject junk
// instead of silently reading 0 (the old atoi/strtoul behaviour), which
// turned typos into misconfigured hour-long campaigns.
#include "common.h"

#include <gtest/gtest.h>

#include <vector>

namespace halfback::bench {
namespace {

Options parse(std::vector<const char*> args) {
  args.insert(args.begin(), "bench_test");
  return parse_options(static_cast<int>(args.size()),
                       const_cast<char**>(args.data()));
}

TEST(ParseOptions, ParsesValidNumericFlags) {
  const Options opt = parse({"--seed=42", "--threads=8", "--pairs=20",
                             "--duration=2.5", "--reps=3"});
  EXPECT_EQ(opt.seed, 42u);
  EXPECT_EQ(opt.threads, 8u);
  EXPECT_EQ(opt.pairs, 20);
  EXPECT_DOUBLE_EQ(opt.duration_s, 2.5);
  EXPECT_EQ(opt.replications, 3);
}

TEST(ParseOptions, DefaultsSurviveWhenFlagsAbsent) {
  const Options opt = parse({"--full"});
  EXPECT_TRUE(opt.full);
  EXPECT_EQ(opt.threads, 0u);
  EXPECT_EQ(opt.pairs, -1);
  EXPECT_DOUBLE_EQ(opt.duration_s, -1.0);
  EXPECT_EQ(opt.replications, 1);
}

using ParseOptionsDeath = ::testing::Test;

TEST(ParseOptionsDeath, RejectsNonNumericThreads) {
  EXPECT_EXIT(parse({"--threads=abc"}), ::testing::ExitedWithCode(2),
              "--threads expects a non-negative integer");
}

TEST(ParseOptionsDeath, RejectsNegativeThreads) {
  EXPECT_EXIT(parse({"--threads=-2"}), ::testing::ExitedWithCode(2),
              "--threads expects a non-negative integer");
}

TEST(ParseOptionsDeath, RejectsEmptyPairs) {
  EXPECT_EXIT(parse({"--pairs="}), ::testing::ExitedWithCode(2),
              "--pairs expects a non-negative integer");
}

TEST(ParseOptionsDeath, RejectsNegativePairs) {
  EXPECT_EXIT(parse({"--pairs=-3"}), ::testing::ExitedWithCode(2),
              "--pairs expects a non-negative integer");
}

TEST(ParseOptionsDeath, RejectsTrailingJunkInReps) {
  EXPECT_EXIT(parse({"--reps=3x"}), ::testing::ExitedWithCode(2),
              "--reps expects a non-negative integer");
}

TEST(ParseOptionsDeath, RejectsNonNumericDuration) {
  EXPECT_EXIT(parse({"--duration=fast"}), ::testing::ExitedWithCode(2),
              "--duration expects a non-negative number of seconds");
}

TEST(ParseOptionsDeath, RejectsNegativeDuration) {
  EXPECT_EXIT(parse({"--duration=-1.5"}), ::testing::ExitedWithCode(2),
              "--duration expects a non-negative number of seconds");
}

TEST(ParseOptionsDeath, RejectsUnknownOption) {
  EXPECT_EXIT(parse({"--bogus"}), ::testing::ExitedWithCode(2),
              "unknown option");
}

}  // namespace
}  // namespace halfback::bench
