// bench::parse_options argument validation: numeric flags must reject junk
// instead of silently reading 0 (the old atoi/strtoul behaviour), which
// turned typos into misconfigured hour-long campaigns.
#include "common.h"

#include <gtest/gtest.h>

#include <vector>

namespace halfback::bench {
namespace {

Options parse(std::vector<const char*> args) {
  args.insert(args.begin(), "bench_test");
  return parse_options(static_cast<int>(args.size()),
                       const_cast<char**>(args.data()));
}

TEST(ParseOptions, ParsesValidNumericFlags) {
  const Options opt = parse({"--seed=42", "--threads=8", "--pairs=20",
                             "--duration=2.5", "--reps=3"});
  EXPECT_EQ(opt.seed, 42u);
  EXPECT_EQ(opt.threads, 8u);
  EXPECT_EQ(opt.pairs, 20);
  EXPECT_DOUBLE_EQ(opt.duration_s, 2.5);
  EXPECT_EQ(opt.replications, 3);
}

TEST(ParseOptions, DefaultsSurviveWhenFlagsAbsent) {
  const Options opt = parse({"--full"});
  EXPECT_TRUE(opt.full);
  EXPECT_EQ(opt.threads, 0u);
  EXPECT_EQ(opt.pairs, -1);
  EXPECT_DOUBLE_EQ(opt.duration_s, -1.0);
  EXPECT_EQ(opt.replications, 1);
}

TEST(ParseOptions, ParsesPercentilesAndTelemetryFlags) {
  const Options opt = parse({"--percentiles", "--telemetry=/tmp/telem"});
  EXPECT_TRUE(opt.percentiles);
  EXPECT_EQ(opt.telemetry_dir, "/tmp/telem");
}

TEST(ParseOptions, PercentilesDefaultOff) {
  const Options opt = parse({});
  EXPECT_FALSE(opt.percentiles);
  EXPECT_TRUE(opt.telemetry_dir.empty());
}

TEST(ParseOptions, ParsesSupervisionFlags) {
  const Options opt =
      parse({"--allow-quarantine", "--budget-events=5000", "--storm-window=250",
             "--storm-rate=1e6", "--cell-attempts=3", "--quarantine=/tmp/q.json"});
  EXPECT_TRUE(opt.allow_quarantine);
  EXPECT_EQ(opt.budget_events, 5000u);
  EXPECT_EQ(opt.storm_window, 250u);
  EXPECT_DOUBLE_EQ(opt.storm_rate, 1e6);
  EXPECT_EQ(opt.cell_attempts, 3u);
  EXPECT_EQ(opt.quarantine_path, "/tmp/q.json");
}

TEST(ParseOptions, SupervisionDefaultsAreOff) {
  const Options opt = parse({});
  EXPECT_FALSE(opt.allow_quarantine);
  EXPECT_EQ(opt.budget_events, 0u);
  EXPECT_EQ(opt.storm_window, 0u);
  EXPECT_DOUBLE_EQ(opt.storm_rate, 0.0);
  EXPECT_EQ(opt.cell_attempts, 0u);
  EXPECT_TRUE(opt.quarantine_path.empty());
}

using ParseOptionsDeath = ::testing::Test;

TEST(ParseOptionsDeath, RejectsNegativeStormRate) {
  EXPECT_EXIT(parse({"--storm-rate=-5"}), ::testing::ExitedWithCode(2),
              "--storm-rate expects a non-negative number");
}

TEST(ParseOptionsDeath, RejectsNonNumericBudgetEvents) {
  EXPECT_EXIT(parse({"--budget-events=lots"}), ::testing::ExitedWithCode(2),
              "--budget-events expects a non-negative integer");
}

TEST(ParseOptionsDeath, RejectsNonNumericThreads) {
  EXPECT_EXIT(parse({"--threads=abc"}), ::testing::ExitedWithCode(2),
              "--threads expects a non-negative integer");
}

TEST(ParseOptionsDeath, RejectsNegativeThreads) {
  EXPECT_EXIT(parse({"--threads=-2"}), ::testing::ExitedWithCode(2),
              "--threads expects a non-negative integer");
}

TEST(ParseOptionsDeath, RejectsEmptyPairs) {
  EXPECT_EXIT(parse({"--pairs="}), ::testing::ExitedWithCode(2),
              "--pairs expects a non-negative integer");
}

TEST(ParseOptionsDeath, RejectsNegativePairs) {
  EXPECT_EXIT(parse({"--pairs=-3"}), ::testing::ExitedWithCode(2),
              "--pairs expects a non-negative integer");
}

TEST(ParseOptionsDeath, RejectsTrailingJunkInReps) {
  EXPECT_EXIT(parse({"--reps=3x"}), ::testing::ExitedWithCode(2),
              "--reps expects a non-negative integer");
}

TEST(ParseOptionsDeath, RejectsNonNumericDuration) {
  EXPECT_EXIT(parse({"--duration=fast"}), ::testing::ExitedWithCode(2),
              "--duration expects a non-negative number of seconds");
}

TEST(ParseOptionsDeath, RejectsNegativeDuration) {
  EXPECT_EXIT(parse({"--duration=-1.5"}), ::testing::ExitedWithCode(2),
              "--duration expects a non-negative number of seconds");
}

TEST(ParseOptionsDeath, RejectsUnknownOption) {
  EXPECT_EXIT(parse({"--bogus"}), ::testing::ExitedWithCode(2),
              "unknown option");
}

}  // namespace
}  // namespace halfback::bench
