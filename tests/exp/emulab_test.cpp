#include "exp/emulab.h"

#include <gtest/gtest.h>

namespace halfback::exp {
namespace {

using namespace halfback::sim::literals;

std::vector<workload::FlowArrival> fixed_schedule(int count, sim::Time gap,
                                                  std::uint64_t bytes) {
  std::vector<workload::FlowArrival> schedule;
  for (int i = 0; i < count; ++i) {
    schedule.push_back({gap * static_cast<double>(i), bytes});
  }
  return schedule;
}

TEST(EmulabRunnerTest, LightLoadAllFlowsFinish) {
  EmulabRunner::Config config;
  EmulabRunner runner{config};
  WorkloadPart part{schemes::Scheme::tcp, fixed_schedule(10, 1_s, 100'000),
                    FlowRole::primary, {}};
  RunResult result = runner.run({part});
  EXPECT_EQ(result.flows.size(), 10u);
  EXPECT_EQ(result.finished_count(FlowRole::primary), 10u);
  EXPECT_EQ(result.unfinished_count(FlowRole::primary), 0u);
  EXPECT_GT(result.mean_fct_ms(FlowRole::primary), 300.0);
  EXPECT_LT(result.mean_fct_ms(FlowRole::primary), 600.0);
}

TEST(EmulabRunnerTest, DeterministicGivenSeed) {
  EmulabRunner::Config config;
  WorkloadPart part{schemes::Scheme::halfback, fixed_schedule(5, 500_ms, 100'000),
                    FlowRole::primary, {}};
  RunResult a = EmulabRunner{config}.run({part});
  RunResult b = EmulabRunner{config}.run({part});
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].record.fct().ns(), b.flows[i].record.fct().ns());
    EXPECT_EQ(a.flows[i].record.normal_retx, b.flows[i].record.normal_retx);
  }
}

TEST(EmulabRunnerTest, RolesSeparated) {
  EmulabRunner::Config config;
  EmulabRunner runner{config};
  WorkloadPart shorts{schemes::Scheme::halfback, fixed_schedule(4, 1_s, 100'000),
                      FlowRole::primary, {}};
  WorkloadPart longs{schemes::Scheme::tcp, fixed_schedule(1, 1_s, 2'000'000),
                     FlowRole::background, {}};
  RunResult result = runner.run({shorts, longs});
  EXPECT_EQ(result.fct_ms(FlowRole::primary).count(), 4u);
  EXPECT_EQ(result.fct_ms(FlowRole::background).count(), 1u);
  EXPECT_GT(result.mean_fct_ms(FlowRole::background),
            result.mean_fct_ms(FlowRole::primary));
}

TEST(EmulabRunnerTest, OverloadRecordsDropsAndCensored) {
  // Offered load far beyond capacity: drops must be observed and some
  // flows reported unfinished (censored) rather than silently vanishing.
  EmulabRunner::Config config;
  config.drain = 2_s;
  EmulabRunner runner{config};
  WorkloadPart part{schemes::Scheme::jumpstart, fixed_schedule(200, 10_ms, 100'000),
                    FlowRole::primary, {}};
  RunResult result = runner.run({part});
  EXPECT_GT(result.bottleneck_drops_total, 0u);
  std::uint32_t per_flow_drops = 0;
  for (const FlowResult& f : result.flows) per_flow_drops += f.bottleneck_drops;
  EXPECT_GT(per_flow_drops, 0u);
  EXPECT_GT(result.unfinished_count(FlowRole::primary), 0u);
  // Censored flows contribute to the mean.
  EXPECT_GT(result.mean_fct_ms(FlowRole::primary), 1000.0);
}

TEST(EmulabRunnerTest, UtilizationReported) {
  EmulabRunner::Config config;
  EmulabRunner runner{config};
  // 30 x 100 KB over ~3 s at 15 Mbps ~ 53% while active.
  WorkloadPart part{schemes::Scheme::tcp, fixed_schedule(30, 100_ms, 100'000),
                    FlowRole::primary, {}};
  RunResult result = runner.run({part});
  EXPECT_GT(result.bottleneck_utilization, 0.0);
  EXPECT_LE(result.bottleneck_utilization, 1.0);
}

}  // namespace
}  // namespace halfback::exp
