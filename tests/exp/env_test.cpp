// Smoke + shape tests for the PlanetLab / home-network / web / trace
// experiment environments (scaled-down configurations).
#include <gtest/gtest.h>

#include "exp/homenet.h"
#include "exp/planetlab.h"
#include "exp/trace.h"
#include "exp/web.h"
#include "stats/summary.h"

namespace halfback::exp {
namespace {

using namespace halfback::sim::literals;

stats::Summary fct_ms(const std::vector<TrialResult>& trials) {
  stats::Summary s;
  for (const TrialResult& t : trials) s.add(t.record.fct().to_ms());
  return s;
}

TEST(PlanetLabEnvTest, PathsAreWithinDocumentedRanges) {
  PlanetLabConfig config;
  config.pair_count = 200;
  PlanetLabEnv env{config};
  ASSERT_EQ(env.paths().size(), 200u);
  for (const PathSample& p : env.paths()) {
    EXPECT_GE(p.rtt, sim::Time::milliseconds(0.2));
    EXPECT_LE(p.rtt, sim::Time::milliseconds(400));
    EXPECT_GE(p.bottleneck.bps(), 8e6);
    EXPECT_LE(p.bottleneck.bps(), 1e9);
    EXPECT_GE(p.buffer_bytes, 6'000u);
  }
}

TEST(PlanetLabEnvTest, EnsembleIsDeterministic) {
  PlanetLabConfig config;
  config.pair_count = 50;
  PlanetLabEnv a{config};
  PlanetLabEnv b{config};
  for (std::size_t i = 0; i < a.paths().size(); ++i) {
    EXPECT_EQ(a.paths()[i].rtt, b.paths()[i].rtt);
    EXPECT_EQ(a.paths()[i].buffer_bytes, b.paths()[i].buffer_bytes);
  }
}

TEST(PlanetLabEnvTest, HalfbackBeatsTcpAcrossEnsemble) {
  PlanetLabConfig config;
  config.pair_count = 60;
  config.threads = 4;
  PlanetLabEnv env{config};
  auto halfback = env.run(schemes::Scheme::halfback);
  auto tcp = env.run(schemes::Scheme::tcp);
  ASSERT_EQ(halfback.size(), 60u);
  // §4.2.1: Halfback's FCT is ~half TCP's on average.
  EXPECT_LT(fct_ms(halfback).mean() * 1.5, fct_ms(tcp).mean());
  // Nearly all trials must finish.
  int finished = 0;
  for (const auto& t : halfback) finished += t.finished ? 1 : 0;
  EXPECT_GE(finished, 58);
}

TEST(PlanetLabEnvTest, SomeButNotAllTrialsSeeLoss) {
  // §4.2.1: ~25% of PlanetLab trials saw loss (aggressive schemes).
  PlanetLabConfig config;
  config.pair_count = 100;
  config.threads = 4;
  PlanetLabEnv env{config};
  auto trials = env.run(schemes::Scheme::halfback);
  int lossy = 0;
  for (const auto& t : trials) lossy += t.saw_loss ? 1 : 0;
  EXPECT_GT(lossy, 5);
  EXPECT_LT(lossy, 70);
}

TEST(HomeNetEnvTest, ProfilesExist) {
  auto profiles = home_profiles();
  ASSERT_EQ(profiles.size(), 4u);
  EXPECT_STREQ(profiles[0].name, "comcast-wired");
}

TEST(HomeNetEnvTest, HalfbackBeatsTcpOnComcast) {
  HomeNetConfig config;
  config.server_count = 30;
  config.threads = 4;
  HomeNetEnv env{config};
  auto halfback = env.run(schemes::Scheme::halfback, home_profiles()[0]);
  auto tcp = env.run(schemes::Scheme::tcp, home_profiles()[0]);
  // §4.2.2: ~50% median FCT reduction on the wired 25 Mbps profile.
  EXPECT_LT(fct_ms(halfback).median(), fct_ms(tcp).median() * 0.75);
}

TEST(HomeNetEnvTest, LowBandwidthProfileShrinksTheGain) {
  HomeNetConfig config;
  config.server_count = 30;
  config.threads = 4;
  HomeNetEnv env{config};
  const HomeNetProfile& comcast = home_profiles()[0];
  const HomeNetProfile& dsl = home_profiles()[3];
  auto h_fast = env.run(schemes::Scheme::halfback, comcast);
  auto t_fast = env.run(schemes::Scheme::tcp, comcast);
  auto h_slow = env.run(schemes::Scheme::halfback, dsl);
  auto t_slow = env.run(schemes::Scheme::tcp, dsl);
  const double gain_fast = 1.0 - fct_ms(h_fast).median() / fct_ms(t_fast).median();
  const double gain_slow = 1.0 - fct_ms(h_slow).median() / fct_ms(t_slow).median();
  // §4.2.2: AT&T's low-bandwidth link shows the smallest improvement.
  EXPECT_LT(gain_slow, gain_fast);
  EXPECT_GT(gain_fast, 0.2);
}

TEST(DeadlineCensoringTest, BothEnvironmentsChargeUnfinishedTrialsTheFullTimeout) {
  // Regression for the unified censor-at-deadline semantics (exp/censor.h):
  // PlanetLabEnv and HomeNetEnv must account for an unfinished flow
  // identically — completion censored AT the deadline, so a censored trial
  // contributes exactly the timeout to FCT aggregates, never whatever
  // instant its queue happened to drain at.
  const sim::Time timeout = sim::Time::milliseconds(10);
  const sim::Bytes huge_flow = 50'000'000;  // cannot finish inside 10 ms

  PlanetLabConfig pl;
  pl.pair_count = 20;
  pl.flow_bytes = huge_flow;
  pl.per_trial_timeout = timeout;
  pl.threads = 2;
  const auto pl_trials = PlanetLabEnv{pl}.run(schemes::Scheme::tcp);

  HomeNetConfig hn;
  hn.server_count = 20;
  hn.flow_bytes = huge_flow;
  hn.per_trial_timeout = timeout;
  hn.threads = 2;
  const auto hn_trials =
      HomeNetEnv{hn}.run(schemes::Scheme::tcp, home_profiles()[0]);

  ASSERT_EQ(pl_trials.size(), 20u);
  ASSERT_EQ(hn_trials.size(), 20u);
  for (const auto* trials : {&pl_trials, &hn_trials}) {
    for (const TrialResult& t : *trials) {
      ASSERT_FALSE(t.finished);
      EXPECT_FALSE(t.record.completed);
      EXPECT_EQ(t.record.fct(), timeout);
    }
  }
}

TEST(WebRunnerTest, PagesCompleteUnderLightLoad) {
  workload::WebCatalogConfig cc;
  cc.site_count = 10;
  workload::WebsiteCatalog catalog{cc, sim::Random{3}};
  WebRunner::Config config;
  WebRunner runner{config};
  std::vector<workload::WebRequest> requests;
  for (int i = 0; i < 5; ++i) {
    requests.push_back({sim::Time::seconds(3.0 * i), static_cast<std::size_t>(i)});
  }
  auto results = runner.run(schemes::Scheme::halfback, catalog, requests).pages;
  ASSERT_EQ(results.size(), 5u);
  for (const PageResult& r : results) {
    EXPECT_TRUE(r.finished);
    EXPECT_GT(r.response_time(), 100_ms);
    EXPECT_LT(r.response_time(), 10_s);
  }
}

TEST(WebRunnerTest, HalfbackPagesFasterThanTcp) {
  workload::WebCatalogConfig cc;
  cc.site_count = 8;
  workload::WebsiteCatalog catalog{cc, sim::Random{4}};
  std::vector<workload::WebRequest> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back({sim::Time::seconds(4.0 * i), static_cast<std::size_t>(i)});
  }
  WebRunner::Config config;
  auto halfback = WebRunner{config}.run(schemes::Scheme::halfback, catalog, requests).pages;
  auto tcp = WebRunner{config}.run(schemes::Scheme::tcp, catalog, requests).pages;
  stats::Summary h, t;
  for (const auto& r : halfback) h.add(r.response_time().to_ms());
  for (const auto& r : tcp) t.add(r.response_time().to_ms());
  EXPECT_LT(h.mean(), t.mean());
}

TEST(TraceTest, BackgroundFlowDipsAndRecovers) {
  TraceConfig config;
  auto traces = run_trace(config, TraceScenario::halfback);
  ASSERT_EQ(traces.size(), 2u);
  const FlowTrace& bg = traces[0];
  // Background reaches near-full rate before the short flow starts...
  double before = 0.0;
  for (const auto& s : bg.throughput) {
    if (s.bucket_start > 600_ms && s.bucket_start < 1_s) {
      before = std::max(before, s.mbps);
    }
  }
  EXPECT_GT(before, 10.0);
  // ...dips while the short flow runs...
  double during = 1e9;
  for (const auto& s : bg.throughput) {
    if (s.bucket_start >= 1_s && s.bucket_start < 1.4_s) {
      during = std::min(during, s.mbps);
    }
  }
  EXPECT_LT(during, before);
  // ...and the short flow completes.
  EXPECT_GT(traces[1].completion, 1_s);
}

TEST(TraceTest, AllScenariosProduceShortFlows) {
  for (TraceScenario scenario :
       {TraceScenario::optimal, TraceScenario::halfback, TraceScenario::single_tcp,
        TraceScenario::two_tcp_halves}) {
    TraceConfig config;
    auto traces = run_trace(config, scenario);
    const std::size_t expected = scenario == TraceScenario::two_tcp_halves ? 3u : 2u;
    EXPECT_EQ(traces.size(), expected) << to_string(scenario);
    for (std::size_t i = 1; i < traces.size(); ++i) {
      EXPECT_GT(traces[i].completion, sim::Time::zero()) << to_string(scenario);
    }
  }
}

}  // namespace
}  // namespace halfback::exp
