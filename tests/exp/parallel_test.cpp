// parallel_for semantics, in particular worker-exception propagation: a
// throwing task used to escape its worker thread and std::terminate the
// whole process.
#include "exp/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>

namespace halfback::exp {
namespace {

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 64;
  std::atomic<int> counts[kCount] = {};
  parallel_for(kCount, [&](std::size_t i) { ++counts[i]; }, /*threads=*/4);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(counts[i].load(), 1);
}

TEST(ParallelFor, PropagatesWorkerExceptionToCaller) {
  EXPECT_THROW(
      parallel_for(
          16,
          [](std::size_t i) {
            if (i == 5) throw std::runtime_error{"task 5 failed"};
          },
          /*threads=*/4),
      std::runtime_error);
}

TEST(ParallelFor, PropagatedExceptionCarriesTheOriginalMessage) {
  try {
    parallel_for(
        8, [](std::size_t) { throw std::runtime_error{"boom"}; },
        /*threads=*/2);
    FAIL() << "parallel_for should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ParallelFor, FailureStopsHandingOutNewWork) {
  // After a task throws, workers must drain without starting fresh tasks;
  // with a failure on the very first index most of the queue stays unrun.
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(parallel_for(
                   1'000'000,
                   [&](std::size_t i) {
                     ++executed;
                     if (i == 0) throw std::runtime_error{"early"};
                   },
                   /*threads=*/2),
               std::runtime_error);
  EXPECT_LT(executed.load(), 1'000'000u);
}

TEST(ParallelFor, MultipleFailuresAggregateIntoOneIndexedError) {
  // Hold every worker at a barrier until all four have claimed a task, then
  // fail them all: the early stop cannot drain the queue first, so all four
  // failures must surface — ordered by shard index, each with its message —
  // instead of whichever one the scheduler happened to log first.
  std::atomic<int> started{0};
  try {
    parallel_for(
        4,
        [&](std::size_t i) {
          ++started;
          while (started.load() < 4) std::this_thread::yield();
          throw std::runtime_error{"shard " + std::to_string(i)};
        },
        /*threads=*/4);
    FAIL() << "parallel_for should have thrown";
  } catch (const AggregateError& e) {
    ASSERT_EQ(e.failures().size(), 4u);
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(e.failures()[k].index, k);
      EXPECT_EQ(e.failures()[k].message, "shard " + std::to_string(k));
    }
    EXPECT_NE(std::string{e.what()}.find("4 parallel_for shards failed"),
              std::string::npos);
  }
}

TEST(ParallelFor, SingleThreadedPathAlsoPropagates) {
  EXPECT_THROW(parallel_for(
                   4, [](std::size_t) { throw std::logic_error{"serial"}; },
                   /*threads=*/1),
               std::logic_error);
}

}  // namespace
}  // namespace halfback::exp
