// The supervised executor (exp/supervisor.h): deterministic attempt seeds,
// bounded retry, quarantine records, and a manifest whose bytes never
// depend on worker count.
#include "exp/supervisor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "telemetry/quarantine.h"

namespace halfback::exp {
namespace {

TEST(AttemptSeedTest, FirstAttemptIsTheBaseSeedUnchanged) {
  // The healthy-path contract: a supervised sweep whose cells all succeed
  // on attempt 0 must see exactly the seeds an unsupervised sweep would.
  EXPECT_EQ(attempt_seed(1, 0, 0), 1u);
  EXPECT_EQ(attempt_seed(42, 17, 0), 42u);
  EXPECT_EQ(attempt_seed(0xdeadbeef, 999, 0), 0xdeadbeefu);
}

TEST(AttemptSeedTest, RetrySeedsAreDistinctAcrossCellsAndAttempts) {
  std::set<std::uint64_t> seeds;
  for (std::size_t cell = 0; cell < 16; ++cell) {
    for (std::uint32_t attempt = 1; attempt <= 4; ++attempt) {
      seeds.insert(attempt_seed(1, cell, attempt));
    }
  }
  EXPECT_EQ(seeds.size(), 16u * 4u);  // no collisions in this small grid
  EXPECT_EQ(seeds.count(1u), 0u);     // and none equals the base seed
}

TEST(SupervisorTest, HealthyCellsRunOnceAndTheManifestIsClean) {
  std::vector<std::uint64_t> seeds(8, 0);
  SupervisorConfig config;
  config.seed = 99;
  const SupervisedReport report = supervised_for(
      8,
      [&](const CellAttempt& id) {
        seeds[id.index] = id.seed;
        return AttemptOutcome{};
      },
      config, nullptr);

  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.manifest.attempted, 8u);
  EXPECT_EQ(report.manifest.completed, 8u);
  EXPECT_EQ(report.manifest.quarantined, 0u);
  EXPECT_EQ(report.manifest.retries, 0u);
  EXPECT_TRUE(report.manifest.records.empty());
  for (std::uint64_t seed : seeds) EXPECT_EQ(seed, 99u);
}

TEST(SupervisorTest, AFailingCellExhaustsItsAttemptsAndIsQuarantined) {
  SupervisorConfig config;
  config.retry.max_attempts = 3;
  const SupervisedReport report = supervised_for(
      5,
      [&](const CellAttempt& id) {
        AttemptOutcome outcome;
        if (id.index == 3) {
          outcome.completed = false;
          outcome.reason = "event_count";
          outcome.detail = "synthetic storm";
          outcome.events_at_trip = 12345;
        }
        return outcome;
      },
      config, [](std::size_t i) { return "cell-" + std::to_string(i); });

  EXPECT_FALSE(report.complete());
  EXPECT_EQ(report.manifest.attempted, 5u);
  EXPECT_EQ(report.manifest.completed, 4u);
  EXPECT_EQ(report.manifest.quarantined, 1u);
  EXPECT_EQ(report.manifest.retries, 2u);  // cell 3 retried twice
  ASSERT_EQ(report.manifest.records.size(), 1u);
  const telemetry::QuarantineRecord& record = report.manifest.records.front();
  EXPECT_EQ(record.cell_index, 3u);
  EXPECT_EQ(record.cell, "cell-3");
  EXPECT_EQ(record.attempts, 3u);
  EXPECT_EQ(record.reason, "event_count");
  EXPECT_EQ(record.detail, "synthetic storm");
  EXPECT_EQ(record.events_at_trip, 12345u);
}

TEST(SupervisorTest, ARetryWithAFreshSeedCanRescueACell) {
  SupervisorConfig config;
  config.seed = 7;
  config.retry.max_attempts = 2;
  std::vector<std::uint64_t> attempt1_seeds(4, 0);
  const SupervisedReport report = supervised_for(
      4,
      [&](const CellAttempt& id) {
        AttemptOutcome outcome;
        if (id.index == 2 && id.attempt == 0) {
          outcome.completed = false;
          outcome.reason = "storm";
        }
        if (id.attempt == 1) attempt1_seeds[id.index] = id.seed;
        return outcome;
      },
      config, nullptr);

  EXPECT_TRUE(report.complete());
  EXPECT_EQ(report.manifest.completed, 4u);
  EXPECT_EQ(report.manifest.quarantined, 0u);
  EXPECT_EQ(report.manifest.retries, 1u);
  // Only the rescued cell ran a second attempt, with its derived seed.
  EXPECT_EQ(attempt1_seeds[2], attempt_seed(7, 2, 1));
  for (std::size_t i : {0u, 1u, 3u}) EXPECT_EQ(attempt1_seeds[i], 0u);
}

TEST(SupervisorTest, ExceptionsAreQuarantinedNotPropagated) {
  SupervisorConfig config;
  const SupervisedReport report = supervised_for(
      3,
      [&](const CellAttempt& id) -> AttemptOutcome {
        if (id.index == 1) throw std::runtime_error{"worker blew up"};
        return AttemptOutcome{};
      },
      config, nullptr);

  EXPECT_EQ(report.manifest.quarantined, 1u);
  ASSERT_EQ(report.manifest.records.size(), 1u);
  EXPECT_EQ(report.manifest.records.front().reason, "exception");
  EXPECT_EQ(report.manifest.records.front().detail, "worker blew up");
}

TEST(SupervisorTest, ManifestBytesAreIndependentOfWorkerCount) {
  // Deterministic failure pattern; only the thread count differs between
  // the two sweeps. The manifest must be byte-identical — the compaction
  // happens in index order on the calling thread.
  const auto run = [](unsigned threads) {
    SupervisorConfig config;
    config.seed = 5;
    config.threads = threads;
    config.retry.max_attempts = 2;
    return supervised_for(
        12,
        [](const CellAttempt& id) {
          AttemptOutcome outcome;
          if (id.index % 3 == 0) {
            outcome.completed = false;
            outcome.reason = "storm";
            outcome.detail = "cell " + std::to_string(id.index);
            outcome.events_at_trip = 1000 + id.index;
          }
          return outcome;
        },
        config, [](std::size_t i) { return "c" + std::to_string(i); });
  };

  const SupervisedReport serial = run(1);
  const SupervisedReport wide = run(4);
  EXPECT_EQ(telemetry::quarantine_json(serial.manifest),
            telemetry::quarantine_json(wide.manifest));
  EXPECT_EQ(serial.manifest.quarantined, 4u);  // cells 0, 3, 6, 9
  EXPECT_EQ(serial.manifest.retries, 4u);      // each failed cell retried once
}

TEST(SupervisorTest, ZeroMaxAttemptsIsTreatedAsOne) {
  SupervisorConfig config;
  config.retry.max_attempts = 0;
  std::atomic<int> calls{0};
  const SupervisedReport report = supervised_for(
      2,
      [&](const CellAttempt&) {
        ++calls;
        AttemptOutcome outcome;
        outcome.completed = false;
        outcome.reason = "storm";
        return outcome;
      },
      config, nullptr);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(report.manifest.quarantined, 2u);
  EXPECT_EQ(report.manifest.retries, 0u);
}

}  // namespace
}  // namespace halfback::exp
