// Tests for the sweep engines behind Figs. 1, 11, 12, 13, 14 and 17.
#include <gtest/gtest.h>

#include "exp/sweep.h"

namespace halfback::exp {
namespace {

using namespace halfback::sim::literals;

UtilizationSweepConfig small_sweep() {
  UtilizationSweepConfig config;
  config.utilizations = {0.10, 0.40};
  config.duration = 8_s;
  config.threads = 2;
  return config;
}

TEST(UtilizationSweepTest, ProducesCellPerSchemePerUtilization) {
  constexpr std::array<schemes::Scheme, 2> set{schemes::Scheme::tcp,
                                               schemes::Scheme::halfback};
  auto cells = utilization_sweep(small_sweep(), set);
  ASSERT_EQ(cells.size(), 4u);
  // Layout: utilization-major, scheme-minor.
  EXPECT_EQ(cells[0].scheme, schemes::Scheme::tcp);
  EXPECT_EQ(cells[1].scheme, schemes::Scheme::halfback);
  EXPECT_DOUBLE_EQ(cells[0].utilization, 0.10);
  EXPECT_DOUBLE_EQ(cells[2].utilization, 0.40);
  for (const SweepCell& cell : cells) {
    EXPECT_GT(cell.flows, 0u);
    EXPECT_GT(cell.mean_fct_ms, 50.0);
    EXPECT_LT(cell.mean_fct_ms, 10'000.0);
  }
}

TEST(UtilizationSweepTest, SharedScheduleAcrossSchemes) {
  constexpr std::array<schemes::Scheme, 2> set{schemes::Scheme::tcp,
                                               schemes::Scheme::tcp10};
  auto cells = utilization_sweep(small_sweep(), set);
  // Same arrivals at a given utilization: same flow counts.
  EXPECT_EQ(cells[0].flows, cells[1].flows);
  EXPECT_EQ(cells[2].flows, cells[3].flows);
}

TEST(UtilizationSweepTest, PacedSchemeFasterAtLowLoad) {
  constexpr std::array<schemes::Scheme, 2> set{schemes::Scheme::tcp,
                                               schemes::Scheme::halfback};
  auto cells = utilization_sweep(small_sweep(), set);
  EXPECT_LT(cells[1].mean_fct_ms, cells[0].mean_fct_ms);
}

TEST(FeasibleCapacityHelpersTest, MapPerScheme) {
  std::vector<SweepCell> cells;
  for (double u : {0.1, 0.5, 0.9}) {
    SweepCell tcp;
    tcp.scheme = schemes::Scheme::tcp;
    tcp.utilization = u;
    tcp.mean_fct_ms = tcp.median_fct_ms = 100;
    cells.push_back(tcp);
    SweepCell hb;
    hb.scheme = schemes::Scheme::halfback;
    hb.utilization = u;
    hb.mean_fct_ms = hb.median_fct_ms = u > 0.4 ? 1000 : 100;
    cells.push_back(hb);
  }
  auto capacities = feasible_capacities(cells);
  EXPECT_DOUBLE_EQ(capacities[schemes::Scheme::tcp], 0.9);
  EXPECT_DOUBLE_EQ(capacities[schemes::Scheme::halfback], 0.1);
  auto low = low_load_fct(cells);
  EXPECT_DOUBLE_EQ(low[schemes::Scheme::tcp], 100);
  EXPECT_DOUBLE_EQ(low[schemes::Scheme::halfback], 100);
}

TEST(FeasibleCapacityHelpersTest, CustomMetric) {
  std::vector<SweepCell> cells;
  for (double u : {0.1, 0.5}) {
    SweepCell c;
    c.scheme = schemes::Scheme::tcp;
    c.utilization = u;
    c.mean_fct_ms = u > 0.4 ? 1000 : 100;  // mean collapses
    c.median_fct_ms = 100;                 // median does not
    cells.push_back(c);
  }
  auto by_mean = feasible_capacities(cells);
  auto by_median = feasible_capacities(
      cells, {}, [](const SweepCell& c) { return c.median_fct_ms; });
  EXPECT_DOUBLE_EQ(by_mean[schemes::Scheme::tcp], 0.1);
  EXPECT_DOUBLE_EQ(by_median[schemes::Scheme::tcp], 0.5);
}

TEST(MixSweepTest, NormalizedBaselineIsUnity) {
  MixSweepConfig config;
  config.utilizations = {0.40};
  config.duration = 8_s;
  config.long_bytes = 1'000'000;
  config.threads = 2;
  constexpr std::array<schemes::Scheme, 1> set{schemes::Scheme::tcp};
  auto cells = mix_sweep(config, set);
  ASSERT_EQ(cells.size(), 1u);
  // TCP shorts vs the TCP baseline: the same run, so exactly 1.0.
  EXPECT_NEAR(cells[0].short_fct_normalized, 1.0, 1e-9);
  EXPECT_NEAR(cells[0].long_fct_normalized, 1.0, 1e-9);
}

TEST(MixSweepTest, HalfbackShortsBeatTcpShorts) {
  MixSweepConfig config;
  config.utilizations = {0.40};
  config.duration = 10_s;
  config.long_bytes = 1'000'000;
  config.threads = 2;
  constexpr std::array<schemes::Scheme, 1> set{schemes::Scheme::halfback};
  auto cells = mix_sweep(config, set);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_LT(cells[0].short_fct_normalized, 0.8);
}

TEST(FriendlinessTest, TcpAgainstItselfIsNeutral) {
  FriendlinessConfig config;
  config.utilizations = {0.20};
  config.duration = 10_s;
  config.threads = 2;
  constexpr std::array<schemes::Scheme, 1> set{schemes::Scheme::tcp};
  auto points = friendliness_matrix(config, set);
  ASSERT_EQ(points.size(), 1u);
  // TCP mixed with TCP: both coordinates near 1 (sampling noise only).
  EXPECT_NEAR(points[0].tcp_fct_vs_reference, 1.0, 0.15);
  EXPECT_NEAR(points[0].scheme_fct_vs_reference, 1.0, 0.15);
}

TEST(FlowSizeSweepTest, BinsCoverDistribution) {
  FlowSizeSweepConfig config;
  config.duration = 10_s;
  config.threads = 2;
  config.bin_bytes = sim::Bytes::kilobytes(100);
  constexpr std::array<schemes::Scheme, 1> set{schemes::Scheme::tcp};
  auto cells = flow_size_sweep(config, set);
  ASSERT_FALSE(cells.empty());
  std::size_t total_flows = 0;
  for (const FlowSizeCell& cell : cells) {
    EXPECT_EQ(cell.scheme, schemes::Scheme::tcp);
    EXPECT_LE(cell.bin_center_kb, 1000.0);  // truncated at 1 MB
    total_flows += cell.flows;
  }
  EXPECT_GT(total_flows, 10u);
}

}  // namespace
}  // namespace halfback::exp
