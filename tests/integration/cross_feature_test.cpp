// Cross-feature integration: combinations of schemes with the optional
// substrate features (delayed ACKs, AQM queues, priority bands, complex
// topologies) that no single-module test exercises together.
#include <gtest/gtest.h>

#include "net/topology.h"
#include "net/tracer.h"
#include "schemes/factory.h"
#include "support/dumbbell_fixture.h"
#include "transport/agent.h"

namespace halfback {
namespace {

using schemes::Scheme;
using testing::DumbbellFixture;
using namespace halfback::sim::literals;

// ----------------------------------------------------- delayed ACKs x scheme

class DelayedAckSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(DelayedAckSchemeTest, CompletesWithDelayedAckReceiver) {
  DumbbellFixture f;
  transport::Receiver::Config rc;
  rc.delayed_ack = true;
  for (auto& agent : f.receiver_agents) agent->set_receiver_config(rc);
  transport::SenderBase& s = f.start(GetParam(), 100'000);
  f.sim.run_until(60_s);
  ASSERT_TRUE(s.complete()) << schemes::name(GetParam());
  transport::Receiver* r = f.receiver_for(s.record().flow);
  EXPECT_EQ(r->stats().unique_segments, s.record().total_segments);
  // Delayed ACKs halve the ACK count but never stall the flow for long:
  // the flow still finishes within ~1.5x its per-packet-ACK time + delack.
  EXPECT_LT(s.record().fct(), 2_s);
}

INSTANTIATE_TEST_SUITE_P(Schemes, DelayedAckSchemeTest,
                         ::testing::Values(Scheme::tcp, Scheme::tcp10,
                                           Scheme::reactive, Scheme::jumpstart,
                                           Scheme::halfback, Scheme::pcp),
                         [](const ::testing::TestParamInfo<Scheme>& param_info) {
                           std::string n = schemes::name(param_info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// --------------------------------------------------------- CoDel x transport

TEST(CoDelIntegrationTest, BulkFlowKeepsStandingQueueSmall) {
  // A bulk TCP flow with a large window through a bloated buffer: drop-tail
  // lets the standing queue grow to the window; CoDel holds it near the
  // 5 ms target (~9.4 KB at 15 Mbps).
  auto standing_queue = [](net::QueueKind kind) {
    net::DumbbellConfig config;
    config.sender_count = 1;
    config.receiver_count = 1;
    config.bottleneck_buffer_bytes = 600'000;
    config.bottleneck_queue = kind;
    DumbbellFixture f{config};
    f.context.sender_config.receive_window_segments = 1000;
    f.start(Scheme::tcp, 20'000'000);
    // Steady state, mid-transfer: the *standing* queue, not the slow-start
    // overshoot (CoDel deliberately tolerates transients).
    f.sim.run_until(10_s);
    return f.dumbbell.bottleneck_forward->queue().byte_length();
  };
  const std::uint64_t droptail = standing_queue(net::QueueKind::drop_tail);
  const std::uint64_t codel = standing_queue(net::QueueKind::codel);
  EXPECT_GT(droptail, 200'000u);  // deep standing queue (Reno sawtooth mid-cycle)
  EXPECT_LT(codel, 100'000u);     // held near the sojourn target
}

TEST(CoDelIntegrationTest, HalfbackShortFlowsSurviveCoDel) {
  net::DumbbellConfig config;
  config.bottleneck_queue = net::QueueKind::codel;
  DumbbellFixture f{config};
  transport::SenderBase& s = f.start(Scheme::halfback, 100'000);
  f.sim.run_until(30_s);
  ASSERT_TRUE(s.complete());
  EXPECT_LT(s.record().fct(), 400_ms);
}

// ----------------------------------------------------------- RC3 under loss

TEST(Rc3LossTest, PrimaryLoopCoversRlpLosses) {
  // Random loss kills some low-priority copies AND some primary packets;
  // the primary loop must still deliver everything exactly once.
  sim::Simulator simulator{5};
  net::Network network{simulator};
  net::DumbbellConfig config;
  config.sender_count = 1;
  config.receiver_count = 1;
  config.bottleneck_queue = net::QueueKind::priority;
  net::Dumbbell d = net::build_dumbbell(network, config);
  // 5% random loss on the bottleneck.
  auto rng = std::make_shared<sim::Random>(11);
  d.bottleneck_forward->set_packet_filter(
      [rng](const net::Packet&) { return !rng->bernoulli(0.05); });

  transport::TransportAgent sender{simulator, network, d.senders[0]};
  transport::TransportAgent receiver{simulator, network, d.receivers[0]};
  schemes::SchemeContext context;
  auto rc3 = schemes::make_sender(Scheme::rc3, context, simulator,
                                  network.node(d.senders[0]), d.receivers[0], 1,
                                  100'000);
  transport::SenderBase& flow = sender.start_flow(std::move(rc3));
  simulator.run_until(60_s);
  ASSERT_TRUE(flow.complete());
  transport::Receiver* r = receiver.receiver(1);
  EXPECT_EQ(r->stats().unique_segments, flow.record().total_segments);
}

// --------------------------------------------------- parking lot x schemes

TEST(ParkingLotIntegrationTest, HalfbackPacesOverSummedRtt) {
  sim::Simulator simulator{9};
  net::Network network{simulator};
  net::ParkingLotConfig topo;
  topo.hops = 3;  // 60 ms end to end
  net::ParkingLot lot = net::build_parking_lot(network, topo);
  transport::TransportAgent sender{simulator, network, lot.main_sender};
  transport::TransportAgent receiver{simulator, network, lot.main_receiver};
  schemes::SchemeContext context;
  auto halfback = schemes::make_sender(Scheme::halfback, context, simulator,
                                       network.node(lot.main_sender),
                                       lot.main_receiver, 1, 100'000);
  transport::SenderBase& flow = sender.start_flow(std::move(halfback));
  simulator.run();
  ASSERT_TRUE(flow.complete());
  // Handshake measured the summed RTT; pacing + ROPR behave as on a single
  // 60 ms path: ~3 RTTs, ~50% copies.
  EXPECT_NEAR(flow.record().handshake_rtt.to_ms(), 60.0, 2.0);
  EXPECT_LT(flow.record().rtts_used(), 3.6);
  EXPECT_NEAR(static_cast<double>(flow.record().proactive_retx), 35.0, 6.0);
}

// -------------------------------------------- pacing quantization visible

TEST(PacingQuantizationTest, SegmentsLeaveInTimerClumps) {
  // With the 10 ms default quantum and a 60 ms RTT, the 70-segment batch
  // leaves in ~6-7 clumps; the tracer at the bottleneck sees long runs of
  // back-to-back arrivals (spaced by the 1 Gbps access serialization, not
  // the pacing interval).
  sim::Simulator simulator{2};
  net::Network network{simulator};
  net::DumbbellConfig config;
  config.sender_count = 1;
  config.receiver_count = 1;
  net::Dumbbell d = net::build_dumbbell(network, config);
  transport::TransportAgent sender{simulator, network, d.senders[0]};
  transport::TransportAgent receiver{simulator, network, d.receivers[0]};

  // Observe *arrival* instants at the bottleneck (the packet filter runs
  // at link entry, before the queue smooths the clumps out).
  std::vector<sim::Time> arrivals;
  d.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
    if (p.type == net::PacketType::data && !p.is_retx) {
      arrivals.push_back(simulator.now());
    }
    return true;
  });

  schemes::SchemeContext context;
  auto halfback = schemes::make_sender(Scheme::halfback, context, simulator,
                                       network.node(d.senders[0]), d.receivers[0],
                                       1, 100'000);
  sender.start_flow(std::move(halfback));
  simulator.run();

  // Count distinct "bursts": gaps > 2 ms between consecutive first-copy
  // arrivals delimit pacing ticks.
  ASSERT_GE(arrivals.size(), 70u);
  int bursts = 1;
  for (std::size_t i = 1; i < 70; ++i) {
    if (arrivals[i] - arrivals[i - 1] > 2_ms) ++bursts;
  }
  EXPECT_GE(bursts, 4);
  EXPECT_LE(bursts, 9);
}

}  // namespace
}  // namespace halfback
