// Parameterized property tests: invariants that must hold for every scheme
// under every network condition we can throw at it.
//
//   * liveness   — the flow eventually completes (retransmission machinery
//                  survives arbitrary loss patterns);
//   * integrity  — the receiver assembles exactly the flow's segments,
//                  each delivered to the application exactly once;
//   * accounting — every wire transmission is classified as first copy,
//                  normal retransmission, or proactive retransmission;
//   * determinism— identical seeds give identical results.
#include <gtest/gtest.h>

#include <tuple>

#include "net/topology.h"
#include "schemes/factory.h"
#include "sim/simulator.h"
#include "support/dumbbell_fixture.h"
#include "transport/agent.h"

namespace halfback {
namespace {

using schemes::Scheme;
using namespace halfback::sim::literals;

constexpr Scheme kAllSchemes[] = {
    Scheme::tcp,       Scheme::tcp10,     Scheme::tcp_cache,
    Scheme::reactive,  Scheme::proactive, Scheme::jumpstart,
    Scheme::pcp,       Scheme::halfback,  Scheme::halfback_forward,
    Scheme::halfback_burst,
};

std::string scheme_label(Scheme s) {
  std::string n = schemes::name(s);
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

// ---------------------------------------------------------------- lossy path

struct LossyTrial {
  Scheme scheme;
  double loss_rate;
};

class LossyPathTest : public ::testing::TestWithParam<LossyTrial> {};

TEST_P(LossyPathTest, CompletesWithExactDelivery) {
  const LossyTrial& trial = GetParam();
  sim::Simulator simulator{99};
  net::Network network{simulator};
  net::AccessPathConfig apc;
  apc.downlink_rate = sim::DataRate::megabits_per_second(20);
  apc.rtt = 40_ms;
  apc.downlink_loss_rate = trial.loss_rate;
  net::AccessPath path = net::build_access_path(network, apc);

  transport::TransportAgent server{simulator, network, path.server};
  transport::TransportAgent client{simulator, network, path.client};

  schemes::SchemeContext context;
  auto sender = schemes::make_sender(trial.scheme, context, simulator,
                                     network.node(path.server), path.client,
                                     /*flow=*/1, 100'000);
  transport::SenderBase& flow = server.start_flow(std::move(sender));
  simulator.run_until(5_s + sim::Time::seconds(600.0 * trial.loss_rate));

  ASSERT_TRUE(flow.complete())
      << schemes::name(trial.scheme) << " at loss " << trial.loss_rate;
  transport::Receiver* r = client.receiver(1);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->stats().complete);
  EXPECT_EQ(r->stats().unique_segments, flow.record().total_segments);

  // Accounting: every wire packet is exactly one of the three classes.
  const transport::FlowRecord& rec = flow.record();
  EXPECT_EQ(rec.data_packets_sent,
            rec.total_segments + rec.normal_retx + rec.proactive_retx);
  // FCT is at least the handshake plus one data RTT.
  EXPECT_GE(rec.fct(), 2.0 * rec.handshake_rtt - 1_ms);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesUnderLoss, LossyPathTest,
    ::testing::ValuesIn([] {
      std::vector<LossyTrial> trials;
      for (Scheme s : kAllSchemes) {
        for (double loss : {0.0, 0.01, 0.05, 0.15}) {
          trials.push_back({s, loss});
        }
      }
      return trials;
    }()),
    [](const ::testing::TestParamInfo<LossyTrial>& param_info) {
      return scheme_label(param_info.param.scheme) + "_loss" +
             std::to_string(static_cast<int>(param_info.param.loss_rate * 100));
    });

// ------------------------------------------------------------- flow sizes

struct SizeTrial {
  Scheme scheme;
  std::uint64_t bytes;
};

class FlowSizeEdgeTest : public ::testing::TestWithParam<SizeTrial> {};

TEST_P(FlowSizeEdgeTest, EdgeSizesComplete) {
  const SizeTrial& trial = GetParam();
  net::DumbbellConfig config;
  config.bottleneck_buffer_bytes = 300'000;  // room for the biggest flows
  testing::DumbbellFixture f{config};
  transport::SenderBase& s = f.start(trial.scheme, trial.bytes);
  f.sim.run_until(60_s);
  ASSERT_TRUE(s.complete()) << schemes::name(trial.scheme) << " " << trial.bytes;
  transport::Receiver* r = f.receiver_for(s.record().flow);
  EXPECT_EQ(r->stats().unique_segments, s.record().total_segments);
  EXPECT_EQ(s.record().total_segments,
            transport::segments_for_bytes(trial.bytes));
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAcrossSizes, FlowSizeEdgeTest,
    ::testing::ValuesIn([] {
      std::vector<SizeTrial> trials;
      for (Scheme s : kAllSchemes) {
        for (std::uint64_t bytes : {std::uint64_t{1}, std::uint64_t{1448},
                                    std::uint64_t{1449}, std::uint64_t{141'000},
                                    std::uint64_t{500'000}}) {
          trials.push_back({s, bytes});
        }
      }
      return trials;
    }()),
    [](const ::testing::TestParamInfo<SizeTrial>& param_info) {
      return scheme_label(param_info.param.scheme) + "_" +
             std::to_string(param_info.param.bytes) + "b";
    });

// ------------------------------------------------------------ determinism

class DeterminismTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(DeterminismTest, IdenticalSeedsIdenticalOutcomes) {
  auto run = [&](std::uint64_t seed) {
    net::DumbbellConfig config;
    config.bottleneck_rate = sim::DataRate::megabits_per_second(8);
    config.bottleneck_buffer_bytes = 20'000;  // force loss and recovery
    testing::DumbbellFixture f{config, seed};
    transport::SenderBase& a = f.start(GetParam(), 100'000, 0);
    transport::SenderBase& b = f.start(GetParam(), 100'000, 1);
    f.sim.run_until(60_s);
    return std::tuple{a.record().fct().ns(),    b.record().fct().ns(),
                      a.record().normal_retx,   b.record().normal_retx,
                      a.record().proactive_retx, a.record().timeouts};
  };
  EXPECT_EQ(run(5), run(5));
  // A different seed perturbs link fault RNG only; with no random loss the
  // runs are identical too, so don't assert inequality here.
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, DeterminismTest, ::testing::ValuesIn(kAllSchemes),
                         [](const ::testing::TestParamInfo<Scheme>& param_info) {
                           return scheme_label(param_info.param);
                         });

// ------------------------------------------------------- mixed concurrency

TEST(MixedSchemesTest, AllSchemesCoexistOnOneBottleneck) {
  net::DumbbellConfig config;
  config.sender_count = 10;
  config.receiver_count = 10;
  testing::DumbbellFixture f{config};
  std::vector<transport::SenderBase*> flows;
  std::size_t pair = 0;
  for (Scheme s : kAllSchemes) {
    flows.push_back(&f.start(s, 100'000, pair++));
  }
  f.sim.run_until(120_s);
  for (transport::SenderBase* flow : flows) {
    EXPECT_TRUE(flow->complete()) << flow->scheme_name();
    transport::Receiver* r = f.receiver_for(flow->record().flow);
    ASSERT_NE(r, nullptr) << flow->scheme_name();
    EXPECT_EQ(r->stats().unique_segments, flow->record().total_segments)
        << flow->scheme_name();
  }
}

TEST(MixedSchemesTest, ChurnOfManyShortFlows) {
  // 60 staggered Halfback flows against 60 TCP flows: everything must
  // complete and deliver exactly once, whatever the loss pattern.
  net::DumbbellConfig config;
  config.bottleneck_buffer_bytes = 50'000;
  testing::DumbbellFixture f{config, 21};
  std::vector<transport::SenderBase*> flows;
  for (int i = 0; i < 60; ++i) {
    f.sim.schedule(sim::Time::milliseconds(40.0 * i), [&f, &flows, i] {
      flows.push_back(&f.start(i % 2 == 0 ? Scheme::halfback : Scheme::tcp, 50'000,
                               static_cast<std::size_t>(i)));
    });
  }
  f.sim.run_until(180_s);
  ASSERT_EQ(flows.size(), 60u);
  int completed = 0;
  for (transport::SenderBase* flow : flows) {
    if (!flow->complete()) continue;
    ++completed;
    transport::Receiver* r = f.receiver_for(flow->record().flow);
    EXPECT_EQ(r->stats().unique_segments, flow->record().total_segments);
  }
  EXPECT_EQ(completed, 60);
}

}  // namespace
}  // namespace halfback
