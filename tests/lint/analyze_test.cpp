// Pins halfback-analyze's behaviour: each mini-tree under
// tests/lint/fixtures/analyze/ carries a known set of cross-TU violations
// (red), the clean/allowlisted trees analyze clean (green), and — the
// teeth — the live repository analyzes clean against the empty-by-policy
// baseline and allowlist. The fixtures run through analyze_tree(), the
// exact code path the CLI and CI exercise.
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "analysis.h"
#include "model.h"

namespace lint = halfback::lint;

namespace {

std::filesystem::path analyze_fixture_dir() {
  return std::filesystem::path{HALFBACK_LINT_FIXTURES} / "analyze";
}
std::filesystem::path repo_root() { return HALFBACK_REPO_ROOT; }

std::string describe(const std::vector<lint::Finding>& findings) {
  std::ostringstream out;
  for (const lint::Finding& f : findings) {
    out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return std::move(out).str();
}

std::vector<lint::Finding> analyze_fixture(const std::string& name,
                                           std::string_view only_rule = {}) {
  return lint::analyze_tree(analyze_fixture_dir() / name, only_rule);
}

/// In-memory model over hand-written files — for cases a disk fixture
/// cannot express (custom allowlists, single-file probes).
lint::ProjectModel model_of(
    std::vector<std::pair<std::string, std::string>> files) {
  lint::ProjectModel model;
  for (auto& [path, text] : files) {
    model.add_file(lint::SourceFile{path, std::move(text)});
  }
  model.finalize();
  return model;
}

// ---- layering ---------------------------------------------------------------

TEST(LayeringRule, IncludeCycleFixtureTripsOnce) {
  const auto findings = analyze_fixture("cycle");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_NE(findings[0].message.find("include cycle"), std::string::npos)
      << findings[0].message;
  // The cycle is spelled out end to end.
  EXPECT_NE(findings[0].message.find("src/net/cycle_a.h -> "
                                     "src/net/cycle_b.h -> "
                                     "src/net/cycle_a.h"),
            std::string::npos)
      << findings[0].message;
}

TEST(LayeringRule, UpwardIncludeFixtureTripsOnce) {
  const auto findings = analyze_fixture("upward");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_EQ(findings[0].path, "src/net/uses_exp.h");
  EXPECT_NE(findings[0].message.find("may not include"), std::string::npos);
}

TEST(LayeringRule, SuppressionCommentSilencesAnUpwardInclude) {
  const auto model = model_of({
      {"src/exp/top.h", "#pragma once\n"},
      {"src/net/low.h",
       "#pragma once\n"
       "// lint: layer-ok(fixture: sanctioned exception)\n"
       "#include \"exp/top.h\"\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "layering");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LayeringRule, ObservabilityInterfaceHeadersAreSanctioned) {
  // net/ may include the telemetry probe surface (hub.h) but not the rest
  // of the telemetry layer (exporters etc.).
  const auto model = model_of({
      {"src/telemetry/hub.h", "#pragma once\n"},
      {"src/telemetry/export.h", "#pragma once\n"},
      {"src/net/a.h", "#pragma once\n#include \"telemetry/hub.h\"\n"},
      {"src/net/b.h", "#pragma once\n#include \"telemetry/export.h\"\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "layering");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].path, "src/net/b.h");
}

TEST(LayeringRule, LayerGraphDotNamesLayersAndAggregatesEdges) {
  const auto model = model_of({
      {"src/sim/base.h", "#pragma once\n"},
      {"src/net/a.h", "#pragma once\n#include \"sim/base.h\"\n"},
      {"src/net/b.h", "#pragma once\n#include \"sim/base.h\"\n"},
  });
  const std::string dot = model.layer_graph_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"net\" -> \"sim\" [label=\"2\"]"), std::string::npos)
      << dot;
}

// ---- transitive hot-path proofs --------------------------------------------

TEST(HotPathReachRule, TransitiveAllocationFixtureTrips) {
  const auto findings = analyze_fixture("hotalloc");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "hot_path_reach");
  EXPECT_EQ(findings[0].path, "src/sim/deep.h");
  // The proof names the call chain from the fire() root.
  EXPECT_NE(findings[0].message.find("HotTimer::fire -> "
                                     "halfback::sim::deep_stage"),
            std::string::npos)
      << findings[0].message;
}

TEST(HotPathReachRule, UnreachableAllocationIsNotCharged) {
  // Same allocating helper, but nothing on the hot path calls it.
  const auto model = model_of({
      {"src/sim/cold.h",
       "#pragma once\n"
       "namespace halfback::sim {\n"
       "inline int* setup_only() { return new int{4}; }\n"
       "}  // namespace halfback::sim\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "hot_path_reach");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(HotPathReachRule, SuppressionAtTheEvidenceSiteSilences) {
  const auto model = model_of({
      {"src/sim/ev.h",
       "#pragma once\n"
       "namespace halfback::sim {\n"
       "struct E {\n"
       "  void fire() noexcept override {\n"
       "    // lint: hot-ok(fixture: amortized)\n"
       "    buf_.push_back(1);\n"
       "  }\n"
       "  std::vector<int> buf_;\n"
       "};\n"
       "}  // namespace halfback::sim\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "hot_path_reach");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(HotPathReachRule, SenderPipelineEntriesAreRootsAndVirtualDispatchTrips) {
  const auto findings = analyze_fixture("virtualhot");
  ASSERT_EQ(findings.size(), 2u) << describe(findings);
  // on_packet -> hook_->deliver(): a virtual call on the per-packet path.
  EXPECT_EQ(findings[0].rule, "hot_path_reach");
  EXPECT_EQ(findings[0].path, "src/transport/pipe.h");
  EXPECT_NE(findings[0].message.find("virtual call"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("'deliver'"), std::string::npos)
      << findings[0].message;
  // on_rto -> rearm_timer(): std::function construction one TU away.
  EXPECT_EQ(findings[1].path, "src/transport/slow_helper.h");
  EXPECT_NE(findings[1].message.find("std::function construction"),
            std::string::npos)
      << findings[1].message;
  EXPECT_NE(findings[1].message.find("StaticSender::on_rto -> "
                                     "halfback::transport::rearm_timer"),
            std::string::npos)
      << findings[1].message;
}

TEST(HotPathReachRule, NonVirtualMemberCallsAreNotFlagged) {
  // A member call whose name matches no virtual declaration is plain
  // devirtualized CRTP plumbing — no finding.
  const auto model = model_of({
      {"src/transport/crtp.h",
       "#pragma once\n"
       "namespace halfback::transport {\n"
       "struct Policy {\n"
       "  void on_ack_hook(int n) { count_ += n; }\n"
       "  int count_ = 0;\n"
       "};\n"
       "struct S {\n"
       "  void on_packet(int n) { policy_.on_ack_hook(n); }\n"
       "  Policy policy_;\n"
       "};\n"
       "}  // namespace halfback::transport\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "hot_path_reach");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(HotPathReachRule, SuppressionTagsTheSanctionedVirtualSeam) {
  const auto model = model_of({
      {"src/transport/seam.h",
       "#pragma once\n"
       "namespace halfback::transport {\n"
       "struct Base {\n"
       "  virtual void on_segment(int seq) = 0;\n"
       "};\n"
       "struct Agent {\n"
       "  void on_packet(int seq) {\n"
       "    // lint: hot-ok(fixture: the one type-erased seam)\n"
       "    sender_->on_segment(seq);\n"
       "  }\n"
       "  Base* sender_ = nullptr;\n"
       "};\n"
       "}  // namespace halfback::transport\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "hot_path_reach");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// ---- shard safety -----------------------------------------------------------

TEST(ShardSafetyRule, HiddenGlobalsFixtureTripsBothKinds) {
  const auto findings = analyze_fixture("global");
  ASSERT_EQ(findings.size(), 2u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "shard_safety");
  EXPECT_NE(findings[0].message.find("halfback::net::g_total_packets"),
            std::string::npos);
  EXPECT_NE(findings[1].message.find("halfback::net::sequence::next"),
            std::string::npos);
}

TEST(ShardSafetyRule, JustifiedAllowlistEntriesAreClean) {
  // Identical tree to `global`, plus a tools/lint/shard_allowlist.txt whose
  // entries carry justifications.
  const auto findings = analyze_fixture("global_allowed");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(ShardSafetyRule, UnjustifiedAllowlistEntryIsAFinding) {
  lint::ShardAllowlist allowlist;
  std::string error;
  ASSERT_TRUE(lint::ShardAllowlist::parse(
      "halfback::net::g_x src/net/g.h\n", allowlist, error))
      << error;
  const auto model = model_of({
      {"src/net/g.h",
       "#pragma once\nnamespace halfback::net {\nint g_x = 0;\n}\n"},
  });
  lint::AnalyzeInputs inputs;
  inputs.shard_allowlist = std::move(allowlist);
  const auto findings =
      lint::analyze_model(model, std::move(inputs), "shard_safety");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_NE(findings[0].message.find("no justification"), std::string::npos)
      << findings[0].message;
}

TEST(ShardSafetyRule, StaleAllowlistEntryIsAFinding) {
  lint::ShardAllowlist allowlist;
  std::string error;
  ASSERT_TRUE(lint::ShardAllowlist::parse(
      "halfback::net::gone src/net/g.h removed long ago\n", allowlist, error))
      << error;
  const auto model = model_of({
      {"src/net/g.h", "#pragma once\n"},
  });
  lint::AnalyzeInputs inputs;
  inputs.shard_allowlist = std::move(allowlist);
  const auto findings =
      lint::analyze_model(model, std::move(inputs), "shard_safety");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_NE(findings[0].message.find("stale"), std::string::npos)
      << findings[0].message;
}

TEST(ShardSafetyRule, ConstAndConstexprStateIsNotInventoried) {
  const auto model = model_of({
      {"src/net/tables.h",
       "#pragma once\n"
       "namespace halfback::net {\n"
       "constexpr int kWindow = 64;\n"
       "const char* const kName = \"halfback\";\n"
       "inline int lookup(int i) {\n"
       "  static constexpr int kTable[2] = {1, 2};\n"
       "  return kTable[i & 1];\n"
       "}\n"
       "}  // namespace halfback::net\n"},
  });
  const auto findings =
      lint::analyze_model(model, {}, "shard_safety");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// ---- determinism taint ------------------------------------------------------

TEST(RngTaintRule, AmbientAndDefaultConstructionFixtureTrips) {
  const auto findings = analyze_fixture("rng");
  ASSERT_EQ(findings.size(), 2u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "rng_taint");
  EXPECT_NE(findings[0].message.find("default-constructed"),
            std::string::npos);
  EXPECT_NE(findings[1].message.find("ambient source"), std::string::npos);
}

TEST(RngTaintRule, SeedDerivedConstructionsAreClean) {
  const auto model = model_of({
      {"src/sim/ok.h",
       "#pragma once\n"
       "namespace halfback::sim {\n"
       "struct S {\n"
       "  explicit S(const Random& parent) : rng_{parent.fork(0x11bbULL)} {}\n"
       "  Random rng_{0};\n"
       "};\n"
       "inline Random stream(unsigned long long seed) {\n"
       "  Random r{seed};\n"
       "  return r;\n"
       "}\n"
       "}  // namespace halfback::sim\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "rng_taint");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(RngTaintRule, MemberInitFromAmbientSourceTrips) {
  // The ctor-init-list path: the member's RNG type is declared on one line,
  // the tainted construction happens in the initializer list.
  const auto model = model_of({
      {"src/sim/bad_member.h",
       "#pragma once\n"
       "#include <random>\n"
       "namespace halfback::sim {\n"
       "struct S {\n"
       "  S() : gen_{std::random_device{}()} {}\n"
       "  std::mt19937 gen_{1};\n"
       "};\n"
       "}  // namespace halfback::sim\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "rng_taint");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_NE(findings[0].message.find("ambient"), std::string::npos)
      << findings[0].message;
}

// ---- effect contracts -------------------------------------------------------

TEST(EffectsRule, UndeclaredDirectEffectFixtureTrips) {
  const auto findings = analyze_fixture("effects_undeclared");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "effects");
  EXPECT_EQ(findings[0].path, "src/sim/pure_claim.h");
  EXPECT_NE(findings[0].message.find("declares {pure} but 'alloc'"),
            std::string::npos)
      << findings[0].message;
}

TEST(EffectsRule, AllocatingTelemetryTapFixtureTrips) {
  // The span/series record-path discipline: a telemetry tap reached from
  // the dispatch path must be pure stores on preallocated storage. This
  // fixture's tap claims HB_EFFECTS() but grows a vector on overflow —
  // the analyzer must catch the false claim.
  const auto findings = analyze_fixture("tapalloc", "effects");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "effects");
  EXPECT_EQ(findings[0].path, "src/telemetry/tap.h");
  EXPECT_NE(findings[0].message.find("declares {pure} but 'alloc'"),
            std::string::npos)
      << findings[0].message;
}

TEST(EffectsRule, TransitiveContractTooNarrowCarriesTheWitnessChain) {
  const auto findings = analyze_fixture("effects_narrow");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "effects");
  EXPECT_EQ(findings[0].path, "src/net/sender.h");
  // The witness names the chain down to the leaf evidence in the other TU.
  EXPECT_NE(findings[0].message.find(
                "halfback::net::open_window -> "
                "halfback::sim::check_window: throw"),
            std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("src/sim/guard.h:7"), std::string::npos)
      << findings[0].message;
}

TEST(EffectsRule, IndirectDispatchPropagatesConservatively) {
  // With no sanctioned seam, the virtual call's possible target charges its
  // alloc to the caller's contract.
  const auto findings = analyze_fixture("effects_indirect", "effects");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "effects");
  EXPECT_NE(findings[0].message.find("RingHook::deliver: alloc"),
            std::string::npos)
      << findings[0].message;
}

TEST(EffectsRule, SanctionedSeamCutsPropagationForBothEngines) {
  // Green twin of effects_indirect: the hot_seams.txt entry silences the
  // hot_path_reach dispatch report AND stops the effect engine from
  // charging the implementor's alloc to the caller — across every rule,
  // with no stale-seam finding.
  const auto findings = analyze_fixture("effects_seam");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(EffectsRule, ContractTooWideIsAFinding) {
  const auto model = model_of({
      {"src/sim/wide.h",
       "#pragma once\n"
       "namespace halfback::sim {\n"
       "inline int twice(int v) HB_EFFECTS(alloc) { return v * 2; }\n"
       "}  // namespace halfback::sim\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "effects");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_NE(findings[0].message.find("too wide"), std::string::npos)
      << findings[0].message;
}

TEST(EffectsRule, ConflictingDuplicateContractsAreAFinding) {
  const auto model = model_of({
      {"src/sim/a.h",
       "#pragma once\n"
       "namespace halfback::sim {\n"
       "void poke() HB_EFFECTS(alloc);\n"
       "}  // namespace halfback::sim\n"},
      {"src/sim/b.h",
       "#pragma once\n"
       "namespace halfback::sim {\n"
       "void poke() HB_EFFECTS(throw);\n"
       "}  // namespace halfback::sim\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "effects");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_NE(findings[0].message.find("conflicting"), std::string::npos)
      << findings[0].message;
}

TEST(EffectsRule, UnknownEffectTokenIsAFinding) {
  const auto model = model_of({
      {"src/sim/typo.h",
       "#pragma once\n"
       "namespace halfback::sim {\n"
       "inline void quiet() HB_EFFECTS(alloc, blocc) {}\n"
       "}  // namespace halfback::sim\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "effects");
  // One unknown-token finding, plus "too wide" for alloc (the body is
  // pure). Same site, so the (path, line, message) sort puts "too wide"
  // first.
  ASSERT_EQ(findings.size(), 2u) << describe(findings);
  EXPECT_NE(findings[0].message.find("too wide"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[1].message.find("unknown effect token 'blocc'"),
            std::string::npos)
      << findings[1].message;
}

TEST(EffectsRule, SuppressionTagSilencesAContractSite) {
  const auto model = model_of({
      {"src/sim/tagged.h",
       "#pragma once\n"
       "namespace halfback::sim {\n"
       "// lint: effects-ok(fixture: alloc is setup-only by construction)\n"
       "inline int* boot() HB_EFFECTS() { return new int{1}; }\n"
       "}  // namespace halfback::sim\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "effects");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// ---- simulator escape -------------------------------------------------------

TEST(SimEscapeRule, StaticInstanceCachesFixtureTripsBothStorageKinds) {
  const auto findings = analyze_fixture("escape_static");
  ASSERT_EQ(findings.size(), 2u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "sim_escape");
  EXPECT_NE(findings[0].message.find("halfback::net::g_primary_sim"),
            std::string::npos);
  // The function-local static is qualified by its owning function.
  EXPECT_NE(findings[1].message.find("last_simulator::cached"),
            std::string::npos);
}

TEST(SimEscapeRule, CrossInstanceCaptureFixtureTripsAllThreeRoutes) {
  const auto findings = analyze_fixture("escape_capture");
  ASSERT_EQ(findings.size(), 3u) << describe(findings);
  for (const lint::Finding& f : findings) EXPECT_EQ(f.rule, "sim_escape");
  EXPECT_NE(findings[0].message.find("takes 2 Simulator parameters"),
            std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[1].message.find("holds 2 Simulator references"),
            std::string::npos)
      << findings[1].message;
  EXPECT_NE(findings[2].message.find("unclear Simulator provenance"),
            std::string::npos)
      << findings[2].message;
}

TEST(SimEscapeRule, SingleIdentifierProvenanceIsClean) {
  const auto model = model_of({
      {"src/net/owner.h",
       "#pragma once\n"
       "namespace halfback::net {\n"
       "class Port {\n"
       " public:\n"
       "  explicit Port(sim::Simulator& simulator) : sim_{simulator} {}\n"
       " private:\n"
       "  sim::Simulator& sim_;\n"
       "};\n"
       "}  // namespace halfback::net\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "sim_escape");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(SimEscapeRule, ConstexprStaticsAreExempt) {
  const auto model = model_of({
      {"src/net/table.h",
       "#pragma once\n"
       "namespace halfback::net {\n"
       "inline int pick(int i) {\n"
       "  static constexpr int kPrimes[2] = {2, 3};\n"
       "  return kPrimes[i & 1];\n"
       "}\n"
       "}  // namespace halfback::net\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "sim_escape");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(SimEscapeRule, EscapeAllowlistMatchesAndStaleEntriesReport) {
  lint::ShardAllowlist escape;
  std::string error;
  ASSERT_TRUE(lint::ShardAllowlist::parse(
      "halfback::net::g_cache src/net/c.h fixture: sanctioned\n"
      "halfback::net::gone src/net/c.h fixture: matches nothing\n",
      escape, error))
      << error;
  const auto model = model_of({
      {"src/net/c.h",
       "#pragma once\n"
       "namespace halfback::net {\n"
       "inline sim::Simulator* const g_cache = nullptr;\n"
       "}  // namespace halfback::net\n"},
  });
  lint::AnalyzeInputs inputs;
  inputs.escape_allowlist = std::move(escape);
  const auto findings =
      lint::analyze_model(model, std::move(inputs), "sim_escape");
  // g_cache is allowlisted away; the unmatched entry is reported stale.
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].path, "tools/lint/escape_allowlist.txt");
  EXPECT_NE(findings[0].message.find("stale escape allowlist entry"),
            std::string::npos)
      << findings[0].message;
}

// ---- seam inventory ---------------------------------------------------------

TEST(SeamInventory, ParsesEntriesAndFindsByCallerCalleePath) {
  lint::SeamInventory seams;
  std::string error;
  ASSERT_TRUE(lint::SeamInventory::parse(
      "# comment\n"
      "halfback::net::Link::send enqueue src/net/link.cpp the queue seam\n",
      seams, error))
      << error;
  ASSERT_EQ(seams.entries.size(), 1u);
  EXPECT_EQ(seams.entries[0].justification, "the queue seam");
  EXPECT_EQ(
      seams.find("halfback::net::Link::send", "enqueue", "src/net/link.cpp"),
      0u);
  EXPECT_EQ(seams.find("halfback::net::Link::send", "dequeue",
                       "src/net/link.cpp"),
            seams.entries.size());
}

TEST(SeamInventory, MalformedLineFailsTheParse) {
  lint::SeamInventory seams;
  std::string error;
  EXPECT_FALSE(lint::SeamInventory::parse("just_one_field\n", seams, error));
  EXPECT_FALSE(error.empty());
}

TEST(SeamInventory, StaleSeamEntryIsAHotPathFinding) {
  lint::SeamInventory seams;
  std::string error;
  ASSERT_TRUE(lint::SeamInventory::parse(
      "halfback::net::Link::send enqueue src/net/gone.cpp devirtualized\n",
      seams, error))
      << error;
  const auto model = model_of({
      {"src/net/quiet.h", "#pragma once\n"},
  });
  lint::AnalyzeInputs inputs;
  inputs.seams = std::move(seams);
  const auto findings =
      lint::analyze_model(model, std::move(inputs), "hot_path_reach");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].path, "tools/lint/hot_seams.txt");
  EXPECT_NE(findings[0].message.find("stale seam entry"), std::string::npos)
      << findings[0].message;
}

// ---- green fixtures and the live tree --------------------------------------

TEST(CleanFixture, AnalyzesCleanAcrossAllRules) {
  const auto findings = analyze_fixture("clean");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(Registry, EveryModelRuleHasAStableIdAndDescription) {
  std::set<std::string_view> ids;
  for (const auto& rule : lint::all_model_rules()) {
    EXPECT_FALSE(rule->id().empty());
    EXPECT_FALSE(rule->description().empty());
    EXPECT_TRUE(ids.insert(rule->id()).second)
        << "duplicate rule id " << rule->id();
  }
  EXPECT_EQ(ids.size(), 6u);
}

TEST(ShardAllowlistFile, CheckedInAllowlistIsEmptyByPolicy) {
  std::ifstream in{repo_root() / "tools/lint/shard_allowlist.txt"};
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  lint::ShardAllowlist allowlist;
  std::string error;
  ASSERT_TRUE(lint::ShardAllowlist::parse(text.str(), allowlist, error))
      << error;
  EXPECT_TRUE(allowlist.entries.empty())
      << "policy: simulator state belongs behind instance pointers; adding "
         "an entry needs a sharded-engine design reason";
}

TEST(Model, LiveTreeBuildsAndSeesTheHotPathRoots) {
  const auto model = lint::ProjectModel::build(repo_root());
  ASSERT_FALSE(model.files().empty());
  bool saw_fire_override = false;
  bool saw_link_send = false;
  for (const lint::FunctionDef& fn : model.functions()) {
    if (fn.is_fire_override &&
        model.file(fn.file).path().starts_with("src/")) {
      saw_fire_override = true;
    }
    if (fn.name == "send" && fn.class_name == "Link") saw_link_send = true;
  }
  EXPECT_TRUE(saw_fire_override);
  EXPECT_TRUE(saw_link_send);
  // The factory seam's one virtual is inventoried for the dispatch check.
  bool saw_sender_virtual = false;
  for (const lint::VirtualMethod& vm : model.virtual_methods()) {
    if (vm.name == "on_packet" && vm.class_name == "SenderBase") {
      saw_sender_virtual = true;
    }
  }
  EXPECT_TRUE(saw_sender_virtual);
  // The sanctioned observability edges are present and dashed in the dot.
  const std::string dot = model.layer_graph_dot();
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Model, LayerGraphDotIsByteDeterministic) {
  // CI publishes the dot; two builds over the same tree must serialize to
  // the identical byte sequence (ordered containers end to end — no
  // pointer-keyed or hash-ordered iteration may leak into the output).
  const auto first = lint::ProjectModel::build(repo_root());
  const auto second = lint::ProjectModel::build(repo_root());
  EXPECT_EQ(first.layer_graph_dot(), second.layer_graph_dot());
}

TEST(Model, EveryLiveContractBindsToAModeledDefinition) {
  // A contract whose qualified name matches no definition checks nothing —
  // legal for pure-virtual interfaces, but the live annotation surface is
  // all concrete functions, so an unbound contract here means a rename or
  // a parser regression silently disabled verification.
  const auto model = lint::ProjectModel::build(repo_root());
  ASSERT_GE(model.contracts().size(), 40u)
      << "the HB_EFFECTS annotation surface shrank unexpectedly";
  std::set<std::string_view> defined;
  for (const lint::FunctionDef& fn : model.functions()) {
    defined.insert(fn.qualified);
  }
  for (const lint::EffectContract& contract : model.contracts()) {
    EXPECT_TRUE(defined.contains(contract.qualified))
        << "contract on '" << contract.qualified << "' ("
        << model.file(contract.file).path() << ":" << contract.line
        << ") matches no modeled definition";
  }
}

TEST(Tree, LiveTreeAnalyzesCleanAgainstEmptyBaselineAndAllowlist) {
  // The tentpole's teeth: a new upward include, hot-path allocation, hidden
  // global, or ambient-seeded RNG anywhere in the repository fails here
  // with the full finding text, mirroring the `analyze` build target.
  const auto findings = lint::analyze_tree(repo_root());
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

}  // namespace
