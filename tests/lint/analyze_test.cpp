// Pins halfback-analyze's behaviour: each mini-tree under
// tests/lint/fixtures/analyze/ carries a known set of cross-TU violations
// (red), the clean/allowlisted trees analyze clean (green), and — the
// teeth — the live repository analyzes clean against the empty-by-policy
// baseline and allowlist. The fixtures run through analyze_tree(), the
// exact code path the CLI and CI exercise.
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "analysis.h"
#include "model.h"

namespace lint = halfback::lint;

namespace {

std::filesystem::path analyze_fixture_dir() {
  return std::filesystem::path{HALFBACK_LINT_FIXTURES} / "analyze";
}
std::filesystem::path repo_root() { return HALFBACK_REPO_ROOT; }

std::string describe(const std::vector<lint::Finding>& findings) {
  std::ostringstream out;
  for (const lint::Finding& f : findings) {
    out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return std::move(out).str();
}

std::vector<lint::Finding> analyze_fixture(const std::string& name,
                                           std::string_view only_rule = {}) {
  return lint::analyze_tree(analyze_fixture_dir() / name, only_rule);
}

/// In-memory model over hand-written files — for cases a disk fixture
/// cannot express (custom allowlists, single-file probes).
lint::ProjectModel model_of(
    std::vector<std::pair<std::string, std::string>> files) {
  lint::ProjectModel model;
  for (auto& [path, text] : files) {
    model.add_file(lint::SourceFile{path, std::move(text)});
  }
  model.finalize();
  return model;
}

// ---- layering ---------------------------------------------------------------

TEST(LayeringRule, IncludeCycleFixtureTripsOnce) {
  const auto findings = analyze_fixture("cycle");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_NE(findings[0].message.find("include cycle"), std::string::npos)
      << findings[0].message;
  // The cycle is spelled out end to end.
  EXPECT_NE(findings[0].message.find("src/net/cycle_a.h -> "
                                     "src/net/cycle_b.h -> "
                                     "src/net/cycle_a.h"),
            std::string::npos)
      << findings[0].message;
}

TEST(LayeringRule, UpwardIncludeFixtureTripsOnce) {
  const auto findings = analyze_fixture("upward");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "layering");
  EXPECT_EQ(findings[0].path, "src/net/uses_exp.h");
  EXPECT_NE(findings[0].message.find("may not include"), std::string::npos);
}

TEST(LayeringRule, SuppressionCommentSilencesAnUpwardInclude) {
  const auto model = model_of({
      {"src/exp/top.h", "#pragma once\n"},
      {"src/net/low.h",
       "#pragma once\n"
       "// lint: layer-ok(fixture: sanctioned exception)\n"
       "#include \"exp/top.h\"\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "layering");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(LayeringRule, ObservabilityInterfaceHeadersAreSanctioned) {
  // net/ may include the telemetry probe surface (hub.h) but not the rest
  // of the telemetry layer (exporters etc.).
  const auto model = model_of({
      {"src/telemetry/hub.h", "#pragma once\n"},
      {"src/telemetry/export.h", "#pragma once\n"},
      {"src/net/a.h", "#pragma once\n#include \"telemetry/hub.h\"\n"},
      {"src/net/b.h", "#pragma once\n#include \"telemetry/export.h\"\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "layering");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].path, "src/net/b.h");
}

TEST(LayeringRule, LayerGraphDotNamesLayersAndAggregatesEdges) {
  const auto model = model_of({
      {"src/sim/base.h", "#pragma once\n"},
      {"src/net/a.h", "#pragma once\n#include \"sim/base.h\"\n"},
      {"src/net/b.h", "#pragma once\n#include \"sim/base.h\"\n"},
  });
  const std::string dot = model.layer_graph_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"net\" -> \"sim\" [label=\"2\"]"), std::string::npos)
      << dot;
}

// ---- transitive hot-path proofs --------------------------------------------

TEST(HotPathReachRule, TransitiveAllocationFixtureTrips) {
  const auto findings = analyze_fixture("hotalloc");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "hot_path_reach");
  EXPECT_EQ(findings[0].path, "src/sim/deep.h");
  // The proof names the call chain from the fire() root.
  EXPECT_NE(findings[0].message.find("HotTimer::fire -> "
                                     "halfback::sim::deep_stage"),
            std::string::npos)
      << findings[0].message;
}

TEST(HotPathReachRule, UnreachableAllocationIsNotCharged) {
  // Same allocating helper, but nothing on the hot path calls it.
  const auto model = model_of({
      {"src/sim/cold.h",
       "#pragma once\n"
       "namespace halfback::sim {\n"
       "inline int* setup_only() { return new int{4}; }\n"
       "}  // namespace halfback::sim\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "hot_path_reach");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(HotPathReachRule, SuppressionAtTheEvidenceSiteSilences) {
  const auto model = model_of({
      {"src/sim/ev.h",
       "#pragma once\n"
       "namespace halfback::sim {\n"
       "struct E {\n"
       "  void fire() noexcept override {\n"
       "    // lint: hot-ok(fixture: amortized)\n"
       "    buf_.push_back(1);\n"
       "  }\n"
       "  std::vector<int> buf_;\n"
       "};\n"
       "}  // namespace halfback::sim\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "hot_path_reach");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(HotPathReachRule, SenderPipelineEntriesAreRootsAndVirtualDispatchTrips) {
  const auto findings = analyze_fixture("virtualhot");
  ASSERT_EQ(findings.size(), 2u) << describe(findings);
  // on_packet -> hook_->deliver(): a virtual call on the per-packet path.
  EXPECT_EQ(findings[0].rule, "hot_path_reach");
  EXPECT_EQ(findings[0].path, "src/transport/pipe.h");
  EXPECT_NE(findings[0].message.find("virtual call"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("'deliver'"), std::string::npos)
      << findings[0].message;
  // on_rto -> rearm_timer(): std::function construction one TU away.
  EXPECT_EQ(findings[1].path, "src/transport/slow_helper.h");
  EXPECT_NE(findings[1].message.find("std::function construction"),
            std::string::npos)
      << findings[1].message;
  EXPECT_NE(findings[1].message.find("StaticSender::on_rto -> "
                                     "halfback::transport::rearm_timer"),
            std::string::npos)
      << findings[1].message;
}

TEST(HotPathReachRule, NonVirtualMemberCallsAreNotFlagged) {
  // A member call whose name matches no virtual declaration is plain
  // devirtualized CRTP plumbing — no finding.
  const auto model = model_of({
      {"src/transport/crtp.h",
       "#pragma once\n"
       "namespace halfback::transport {\n"
       "struct Policy {\n"
       "  void on_ack_hook(int n) { count_ += n; }\n"
       "  int count_ = 0;\n"
       "};\n"
       "struct S {\n"
       "  void on_packet(int n) { policy_.on_ack_hook(n); }\n"
       "  Policy policy_;\n"
       "};\n"
       "}  // namespace halfback::transport\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "hot_path_reach");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(HotPathReachRule, SuppressionTagsTheSanctionedVirtualSeam) {
  const auto model = model_of({
      {"src/transport/seam.h",
       "#pragma once\n"
       "namespace halfback::transport {\n"
       "struct Base {\n"
       "  virtual void on_segment(int seq) = 0;\n"
       "};\n"
       "struct Agent {\n"
       "  void on_packet(int seq) {\n"
       "    // lint: hot-ok(fixture: the one type-erased seam)\n"
       "    sender_->on_segment(seq);\n"
       "  }\n"
       "  Base* sender_ = nullptr;\n"
       "};\n"
       "}  // namespace halfback::transport\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "hot_path_reach");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// ---- shard safety -----------------------------------------------------------

TEST(ShardSafetyRule, HiddenGlobalsFixtureTripsBothKinds) {
  const auto findings = analyze_fixture("global");
  ASSERT_EQ(findings.size(), 2u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "shard_safety");
  EXPECT_NE(findings[0].message.find("halfback::net::g_total_packets"),
            std::string::npos);
  EXPECT_NE(findings[1].message.find("halfback::net::sequence::next"),
            std::string::npos);
}

TEST(ShardSafetyRule, JustifiedAllowlistEntriesAreClean) {
  // Identical tree to `global`, plus a tools/lint/shard_allowlist.txt whose
  // entries carry justifications.
  const auto findings = analyze_fixture("global_allowed");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(ShardSafetyRule, UnjustifiedAllowlistEntryIsAFinding) {
  lint::ShardAllowlist allowlist;
  std::string error;
  ASSERT_TRUE(lint::ShardAllowlist::parse(
      "halfback::net::g_x src/net/g.h\n", allowlist, error))
      << error;
  const auto model = model_of({
      {"src/net/g.h",
       "#pragma once\nnamespace halfback::net {\nint g_x = 0;\n}\n"},
  });
  const auto findings =
      lint::analyze_model(model, allowlist, "shard_safety");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_NE(findings[0].message.find("no justification"), std::string::npos)
      << findings[0].message;
}

TEST(ShardSafetyRule, StaleAllowlistEntryIsAFinding) {
  lint::ShardAllowlist allowlist;
  std::string error;
  ASSERT_TRUE(lint::ShardAllowlist::parse(
      "halfback::net::gone src/net/g.h removed long ago\n", allowlist, error))
      << error;
  const auto model = model_of({
      {"src/net/g.h", "#pragma once\n"},
  });
  const auto findings =
      lint::analyze_model(model, allowlist, "shard_safety");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_NE(findings[0].message.find("stale"), std::string::npos)
      << findings[0].message;
}

TEST(ShardSafetyRule, ConstAndConstexprStateIsNotInventoried) {
  const auto model = model_of({
      {"src/net/tables.h",
       "#pragma once\n"
       "namespace halfback::net {\n"
       "constexpr int kWindow = 64;\n"
       "const char* const kName = \"halfback\";\n"
       "inline int lookup(int i) {\n"
       "  static constexpr int kTable[2] = {1, 2};\n"
       "  return kTable[i & 1];\n"
       "}\n"
       "}  // namespace halfback::net\n"},
  });
  const auto findings =
      lint::analyze_model(model, {}, "shard_safety");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

// ---- determinism taint ------------------------------------------------------

TEST(RngTaintRule, AmbientAndDefaultConstructionFixtureTrips) {
  const auto findings = analyze_fixture("rng");
  ASSERT_EQ(findings.size(), 2u) << describe(findings);
  EXPECT_EQ(findings[0].rule, "rng_taint");
  EXPECT_NE(findings[0].message.find("default-constructed"),
            std::string::npos);
  EXPECT_NE(findings[1].message.find("ambient source"), std::string::npos);
}

TEST(RngTaintRule, SeedDerivedConstructionsAreClean) {
  const auto model = model_of({
      {"src/sim/ok.h",
       "#pragma once\n"
       "namespace halfback::sim {\n"
       "struct S {\n"
       "  explicit S(const Random& parent) : rng_{parent.fork(0x11bbULL)} {}\n"
       "  Random rng_{0};\n"
       "};\n"
       "inline Random stream(unsigned long long seed) {\n"
       "  Random r{seed};\n"
       "  return r;\n"
       "}\n"
       "}  // namespace halfback::sim\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "rng_taint");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(RngTaintRule, MemberInitFromAmbientSourceTrips) {
  // The ctor-init-list path: the member's RNG type is declared on one line,
  // the tainted construction happens in the initializer list.
  const auto model = model_of({
      {"src/sim/bad_member.h",
       "#pragma once\n"
       "#include <random>\n"
       "namespace halfback::sim {\n"
       "struct S {\n"
       "  S() : gen_{std::random_device{}()} {}\n"
       "  std::mt19937 gen_{1};\n"
       "};\n"
       "}  // namespace halfback::sim\n"},
  });
  const auto findings = lint::analyze_model(model, {}, "rng_taint");
  ASSERT_EQ(findings.size(), 1u) << describe(findings);
  EXPECT_NE(findings[0].message.find("ambient"), std::string::npos)
      << findings[0].message;
}

// ---- green fixtures and the live tree --------------------------------------

TEST(CleanFixture, AnalyzesCleanAcrossAllRules) {
  const auto findings = analyze_fixture("clean");
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(Registry, EveryModelRuleHasAStableIdAndDescription) {
  std::set<std::string_view> ids;
  for (const auto& rule : lint::all_model_rules()) {
    EXPECT_FALSE(rule->id().empty());
    EXPECT_FALSE(rule->description().empty());
    EXPECT_TRUE(ids.insert(rule->id()).second)
        << "duplicate rule id " << rule->id();
  }
  EXPECT_EQ(ids.size(), 4u);
}

TEST(ShardAllowlistFile, CheckedInAllowlistIsEmptyByPolicy) {
  std::ifstream in{repo_root() / "tools/lint/shard_allowlist.txt"};
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  lint::ShardAllowlist allowlist;
  std::string error;
  ASSERT_TRUE(lint::ShardAllowlist::parse(text.str(), allowlist, error))
      << error;
  EXPECT_TRUE(allowlist.entries.empty())
      << "policy: simulator state belongs behind instance pointers; adding "
         "an entry needs a sharded-engine design reason";
}

TEST(Model, LiveTreeBuildsAndSeesTheHotPathRoots) {
  const auto model = lint::ProjectModel::build(repo_root());
  ASSERT_FALSE(model.files().empty());
  bool saw_fire_override = false;
  bool saw_link_send = false;
  for (const lint::FunctionDef& fn : model.functions()) {
    if (fn.is_fire_override &&
        model.file(fn.file).path().starts_with("src/")) {
      saw_fire_override = true;
    }
    if (fn.name == "send" && fn.class_name == "Link") saw_link_send = true;
  }
  EXPECT_TRUE(saw_fire_override);
  EXPECT_TRUE(saw_link_send);
  // The factory seam's one virtual is inventoried for the dispatch check.
  bool saw_sender_virtual = false;
  for (const lint::VirtualMethod& vm : model.virtual_methods()) {
    if (vm.name == "on_packet" && vm.class_name == "SenderBase") {
      saw_sender_virtual = true;
    }
  }
  EXPECT_TRUE(saw_sender_virtual);
  // The sanctioned observability edges are present and dashed in the dot.
  const std::string dot = model.layer_graph_dot();
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(Tree, LiveTreeAnalyzesCleanAgainstEmptyBaselineAndAllowlist) {
  // The tentpole's teeth: a new upward include, hot-path allocation, hidden
  // global, or ambient-seeded RNG anywhere in the repository fails here
  // with the full finding text, mirroring the `analyze` build target.
  const auto findings = lint::analyze_tree(repo_root());
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

}  // namespace
