// Fixture for the "naked-new-delete" rule. Linted as src/fixture/alloc.cpp.
// Expected findings: 2.

namespace fixture {

struct Widget {
  int value = 0;
};

Widget* make_widget() {
  return new Widget{};  // EXPECT: naked new
}

void unmake_widget(Widget* w) {
  delete w;  // EXPECT: naked delete
}

struct NonCopyable {
  NonCopyable() = default;
  NonCopyable(const NonCopyable&) = delete;  // deleted function: not flagged
  void* operator new(unsigned long) = delete;  // operator new: not flagged
};

Widget* justified() {
  return new Widget{};  // lint: new-ok(fixture exercises the suppression)
}

}  // namespace fixture
