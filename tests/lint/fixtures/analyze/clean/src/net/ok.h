// Fixture: everything the analyzer allows — a downward include, a pure
// fire() chain, and seed-derived RNG construction (direct and member-init).
#pragma once
#include "sim/base.h"
namespace halfback::net {

inline int accumulate(int x) { return x + 1; }

struct TickEvent : sim::Event {
  explicit TickEvent(const sim::Random& parent)
      : rng_{parent.fork(0x11bbULL)} {}
  void fire() noexcept override { total_ = accumulate(total_); }

  sim::Random rng_{0};
  int total_ = 0;
};

inline sim::Random make_stream(unsigned long long seed) {
  sim::Random rng{seed};
  return rng.fork(7);
}

}  // namespace halfback::net
