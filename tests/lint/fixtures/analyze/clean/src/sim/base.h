// Fixture: the bottom layer of the clean mini-tree.
#pragma once
namespace halfback::sim {

struct Event {
  virtual ~Event() = default;
  virtual void fire() noexcept = 0;
};

class Random {
 public:
  explicit Random(unsigned long long seed) : state_{seed} {}
  Random fork(unsigned long long salt) const { return Random{state_ ^ salt}; }
  unsigned long long state() const { return state_; }

 private:
  unsigned long long state_;
};

}  // namespace halfback::sim
