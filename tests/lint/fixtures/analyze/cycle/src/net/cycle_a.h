// Fixture: file-level include cycle (same layer, so only the cycle trips).
#pragma once
#include "net/cycle_b.h"
