// Fixture: closes the include cycle back to cycle_a.h.
#pragma once
#include "net/cycle_a.h"
