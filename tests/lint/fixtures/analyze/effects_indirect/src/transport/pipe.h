// Fixture: an indirect (virtual) call the effect engine must treat
// conservatively. on_packet() claims purity, but the dispatch can land in
// RingHook::deliver, which allocates — with no sanctioned seam, the alloc
// propagates to the caller and the contract is violated.
#pragma once
namespace halfback::transport {

struct Hook {
  virtual void deliver(int seq) = 0;
};

struct RingHook final : Hook {
  void deliver(int seq) override { slots_ = new int[8]; slots_[0] = seq; }
  int* slots_ = nullptr;
};

struct StaticSender {
  void on_packet(int seq) HB_EFFECTS() { hook_->deliver(seq); }
  Hook* hook_ = nullptr;
};

}  // namespace halfback::transport
