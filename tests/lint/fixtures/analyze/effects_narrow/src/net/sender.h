// Fixture: a contract that is too narrow transitively. open_window()
// declares only `alloc`, but the guard it calls in another translation
// unit throws; the effects rule must carry the call chain down to the
// throw site in sim/guard.h.
#pragma once
#include "sim/guard.h"
namespace halfback::net {

inline int* open_window(int w) HB_EFFECTS(alloc) {
  sim::check_window(w);
  return new int{w};
}

}  // namespace halfback::net
