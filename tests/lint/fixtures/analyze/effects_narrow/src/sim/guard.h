// Fixture: the helper one layer down whose throw the contract above must
// account for. The violation's witness chain ends at this line.
#pragma once
namespace halfback::sim {

inline void check_window(int w) {
  if (w < 0) throw 1;
}

}  // namespace halfback::sim
