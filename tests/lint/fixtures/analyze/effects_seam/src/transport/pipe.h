// Fixture: the green twin of effects_indirect. The same virtual dispatch
// is sanctioned in tools/lint/hot_seams.txt, so the effect engine cuts
// propagation at the call site (the implementor's own effects are checked
// at its definition, not charged to the caller) and hot_path_reach skips
// the dispatch report. The tree analyzes clean.
#pragma once
namespace halfback::transport {

struct Hook {
  virtual void deliver(int seq) = 0;
};

struct RingHook final : Hook {
  void deliver(int seq) override { slots_ = new int[8]; slots_[0] = seq; }
  int* slots_ = nullptr;
};

struct StaticSender {
  void on_packet(int seq) HB_EFFECTS() { hook_->deliver(seq); }
  Hook* hook_ = nullptr;
};

}  // namespace halfback::transport
