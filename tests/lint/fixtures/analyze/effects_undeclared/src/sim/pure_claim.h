// Fixture: a contract that claims purity over a body that allocates. The
// effects rule must report the undeclared `alloc` with its local witness.
#pragma once
namespace halfback::sim {

inline int* make_slot() HB_EFFECTS() { return new int{7}; }

}  // namespace halfback::sim
