// Fixture: cross-instance capture. Mirror aliases two simulators at once
// (the member pair and the constructor signature are each a bridge), and
// Peer's member is initialized from another object's field rather than a
// constructor parameter — its provenance cannot be audited.
#pragma once
namespace halfback::net {

class Mirror {
 public:
  Mirror(sim::Simulator& a, sim::Simulator& b) : primary_{a}, shadow_{b} {}

  sim::Simulator& primary_;
  sim::Simulator& shadow_;
};

class Peer {
 public:
  explicit Peer(const Mirror& other) : sim_{&other.primary_} {}

  sim::Simulator* sim_;
};

}  // namespace halfback::net
