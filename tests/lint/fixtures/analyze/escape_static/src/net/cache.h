// Fixture: static-storage instance caches the escape analysis must refuse.
// Both declarations are `const`, so shard_safety's mutable-global inventory
// ignores them — but a const pointer aliases a live Simulator just fine,
// which is exactly the gap sim_escape closes.
#pragma once
namespace halfback::net {

// A process-scope alias to one instance's state (const applies to the
// pointer, not the pointee).
inline sim::Simulator* const g_primary_sim = nullptr;

// A function-local cache has static storage duration all the same.
inline sim::Simulator* last_simulator() {
  static sim::Simulator* const cached = nullptr;
  return cached;
}

}  // namespace halfback::net
