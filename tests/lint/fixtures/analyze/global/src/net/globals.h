// Fixture: hidden mutable static-storage state — exactly what shard_safety
// inventories (a namespace-scope variable and a singleton-style local
// static).
#pragma once
namespace halfback::net {

int g_total_packets = 0;

inline long sequence() {
  static long next = 0;
  return ++next;
}

}  // namespace halfback::net
