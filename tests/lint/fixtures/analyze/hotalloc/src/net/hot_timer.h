// Fixture: a fire() override whose body looks clean but transitively
// allocates through sim::deep_stage() in another translation unit.
#pragma once
#include "sim/deep.h"
namespace halfback::net {

struct HotTimer : Event {
  void fire() noexcept override { sim::deep_stage(); }
};

}  // namespace halfback::net
