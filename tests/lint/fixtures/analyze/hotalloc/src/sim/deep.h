// Fixture: the helper a hot-path fire() reaches one layer down. The
// per-file rules cannot see this allocation from the fire() body; the
// cross-TU reachability proof must.
#pragma once
namespace halfback::sim {

inline int* deep_stage() { return new int{4}; }

}  // namespace halfback::sim
