// Fixture: RNG constructions that break the seed-derivation contract — a
// default-constructed engine and an ambient (random_device) seed.
#pragma once
#include <random>
namespace halfback::sim {

inline unsigned ambient_jitter() {
  std::mt19937 gen;
  std::mt19937_64 gen2{std::random_device{}()};
  return static_cast<unsigned>(gen() + gen2());
}

}  // namespace halfback::sim
