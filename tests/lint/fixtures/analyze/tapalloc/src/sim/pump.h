// Fixture: the dispatch-path caller. fire() reaches the tap, so the tap's
// false HB_EFFECTS() claim sits on the hot path — the contract violation
// in src/telemetry/tap.h is what keeps this legal-looking call honest.
#pragma once
#include "telemetry/tap.h"
namespace halfback::sim {

struct PumpEvent {
  halfback::telemetry::GrowingTap* tap_ = nullptr;
  void fire() {
    if (tap_ != nullptr) tap_->record(1);
  }
};

}  // namespace halfback::sim
