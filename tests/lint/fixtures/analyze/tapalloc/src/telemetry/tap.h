// Fixture: a telemetry tap that claims the record-path contract (pure
// stores, HB_EFFECTS()) but grows a vector per sample. This is exactly the
// bug the span/series record-path discipline forbids — the effects rule
// must report the undeclared alloc so a hot-path tap can never silently
// start allocating.
#pragma once
namespace halfback::telemetry {

struct GrowingTap {
  int samples_[4];
  int used_ = 0;
  // Claims pure, but the overflow branch grows heap storage.
  void record(int v) HB_EFFECTS() {
    if (used_ < 4) {
      samples_[used_] = v;
      ++used_;
    } else {
      overflow_.push_back(v);
    }
  }
  std::vector<int> overflow_;
};

}  // namespace halfback::telemetry
