// Fixture: an upper-layer header for the upward-include case to reach for.
#pragma once
