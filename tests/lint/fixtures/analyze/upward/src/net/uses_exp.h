// Fixture: net/ reaching up into exp/ — an upward include the DAG forbids.
#pragma once
#include "exp/runner.h"
