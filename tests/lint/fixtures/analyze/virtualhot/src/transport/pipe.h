// Fixture: a static-pipeline hot entry that dispatches through a virtual
// and one that reaches a std::function construction two calls away. The
// per-file rules see neither; the reachability proof must flag both.
#pragma once
#include "transport/slow_helper.h"
namespace halfback::transport {

struct DeliveryHook {
  virtual void deliver(int seq) = 0;
};

struct StaticSender {
  void on_packet(int seq) { hook_->deliver(seq); }
  void on_rto() { rearm_timer(); }
  DeliveryHook* hook_ = nullptr;
};

}  // namespace halfback::transport
