// Fixture: the helper an on_rto() hot entry reaches; constructing a
// std::function here erases a callback type on the retransmission path.
#pragma once
#include <functional>
namespace halfback::transport {

inline void rearm_timer() {
  std::function<void()> cb = [] {};
  cb();
}

}  // namespace halfback::transport
