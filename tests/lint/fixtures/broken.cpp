// Deliberately broken fixture: proves the `lint` entrypoint actually goes
// red. CI runs `halfback-lint --as src/fixture/broken.cpp` over this file
// and asserts a nonzero exit; tests/lint/lint_test.cpp pins the findings at
// exactly 3 (uninitialized-pod-member, naked-new-delete, nondeterminism).
#include <cstdlib>

namespace fixture {

struct Broken {
  int garbage;  // uninitialized-pod-member
};

inline int* leak() {
  return new int(rand());  // naked-new-delete + nondeterminism
}

}  // namespace fixture
