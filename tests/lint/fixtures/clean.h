// Negative fixture: tricky-looking content that must produce ZERO findings
// across every rule. The banned names below appear only inside comments,
// string literals, and raw strings — the tokenizer must not see them as
// code: rand(), time(nullptr), std::random_device, new, delete,
// std::function, for (auto& x : counts).
#pragma once

#include <cstdint>
#include <string>

namespace fixture {

struct Clean {
  int count = 0;
  double fraction = 0.0;
  std::uint64_t total = 0;
};

inline std::string describe() {
  return "calls rand() and time(nullptr), mentions system_clock and new";
}

inline std::string raw_description() {
  return R"(delete everything; std::random_device rd; double rtt_ms;)";
}

}  // namespace fixture
