// Fixture for the "noexcept-fire" rule. Linted as src/fixture/fire.h.
// Expected findings: 1.
#pragma once

namespace fixture {

struct Event {
  virtual ~Event() = default;
  virtual void fire() = 0;  // the pure-virtual base is not an override
};

struct Bad final : Event {
  void fire() override {}  // EXPECT: override without noexcept
};

struct Good final : Event {
  void fire() noexcept override {}
};

struct Justified final : Event {
  // lint: fire-may-throw(fixture: forwards a user callback that may throw)
  void fire() override {}
};

}  // namespace fixture
