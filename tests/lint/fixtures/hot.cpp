// lint: hot-path
// Fixture for the "hot-path-std-function" rule. Linted as
// src/fixture/hot.cpp. Expected findings: 1.
#include <functional>

namespace fixture {

struct Dispatcher {
  std::function<void()> callback;  // EXPECT: type-erased alloc on a hot path
  // lint: function-ok(fixture: bound once at setup, never rebound)
  std::function<void()> justified;
};

}  // namespace fixture
