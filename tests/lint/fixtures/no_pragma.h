// Fixture for the "pragma-once" rule: a header with no include guard at
// all. Linted as src/fixture/no_pragma.h. Expected findings: 1.

namespace fixture {
inline int answer() { return 42; }
}  // namespace fixture
