// Fixture for the "nondeterminism" rule. Linted as src/fixture/nondet.cpp;
// the sites marked EXPECT must each produce exactly one finding, everything
// else must stay silent. tests/lint/lint_test.cpp pins the total at 6.
#include <chrono>
#include <ctime>
#include <random>

namespace fixture {

long wall_clock_seed() {
  long t = time(nullptr);  // EXPECT: call to banned time()
  t += rand();             // EXPECT: call to banned rand()
  t += std::rand();        // EXPECT: std-qualified rand() is still banned
  return t;
}

void banned_types() {
  std::random_device rd;                        // EXPECT: random_device
  auto now = std::chrono::system_clock::now();  // EXPECT: system_clock
  (void)rd;
  (void)now;
}

void timestamp(struct timeval* tv) {
  gettimeofday(tv, nullptr);  // EXPECT: call to banned gettimeofday()
}

// --- everything below is deliberately NOT a finding ---

struct Host {
  long time() const { return 0; }  // declaration of an accessor, not a call
};

long member_call(const Host& h) { return h.time(); }  // member access

namespace other {
long time(long);
}
long qualified_call() { return other::time(3); }  // non-std qualifier

long suppressed() {
  return rand();  // lint: nondet-ok(fixture exercises the suppression)
}

}  // namespace fixture
