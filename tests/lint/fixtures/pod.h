// Fixture for the "uninitialized-pod-member" rule. Linted as
// src/fixture/pod.h. Expected findings: 4.
#pragma once

#include <cstdint>

namespace fixture {

struct Uninitialized {
  int count;            // EXPECT: garbage on a missed brace-init field
  double fraction;      // EXPECT
  std::uint32_t flags;  // EXPECT
  char* buffer;         // EXPECT: wild pointer
  int ready = 0;        // initialized: fine
  bool armed;  // lint: init-ok(fixture exercises the suppression)
};

struct WithCtor {
  WithCtor() : started(false) {}
  bool started;  // a ctor-owning class is left to the sanitizers
};

enum class Mode { off, on };  // not a class body

}  // namespace fixture
