// Fixture for the "stdout-accounting" rule. Five violations: std::cout,
// std::printf, unqualified printf, puts, and fprintf(stdout). The stderr
// diagnostic, buffer snprintf, and member .printf are all fine.
#include <cstdio>
#include <iostream>

void report_drops(int drops, Logger& logger) {
  std::cout << "drops=" << drops << "\n";
  std::printf("drops=%d\n", drops);
  printf("again %d\n", drops);
  puts("done");
  std::fprintf(stdout, "drops=%d\n", drops);

  std::fprintf(stderr, "diagnostic only\n");
  char buf[32];
  std::snprintf(buf, sizeof buf, "%d", drops);
  logger.printf("member call, not <cstdio>");
}
