// Fixture for the "raw-unit-type" rule. Linted as src/fixture/units.h (the
// rule only watches public headers under src/). Expected findings: 3.
#pragma once

#include <cstdint>

namespace fixture {

struct PathConfig {
  double rtt_ms = 0.0;             // EXPECT: unit in the name, not the type
  std::uint64_t buffer_bytes = 0;  // EXPECT: should be sim::Bytes
  double utilization = 0.0;        // unit-less: fine
  double mean_fct_ms = 0.0;  // lint: unit-ok(fixture: statistics-edge column)
};

void set_rate(double rate_mbps);  // EXPECT: parameter should be sim::DataRate
void set_fraction(double fraction);  // unit-less: fine

}  // namespace fixture
