// Fixture for the "unordered-iteration" rule. Linted as
// src/exp/fixture_unordered.cpp (the rule only watches the trace-hashed
// directories). Expected findings: 2.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

int iterate_everything() {
  std::unordered_map<int, int> counts;
  std::unordered_set<std::string> names;
  std::map<int, int> ordered;
  int total = 0;

  for (const auto& [key, value] : counts) {  // EXPECT: range-for, unordered
    total += key + value;
  }

  for (auto it = names.begin(); it != names.end(); ++it) {  // EXPECT: .begin()
    total += static_cast<int>(it->size());
  }

  for (const auto& [key, value] : ordered) {  // std::map: order is defined
    total += key + value;
  }

  // lint: ordered-ok(fixture: the loop only accumulates a commutative sum)
  for (const auto& [key, value] : counts) {
    total += key + value;
  }

  return total;
}

}  // namespace fixture
