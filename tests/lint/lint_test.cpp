// Pins halfback-lint's behaviour: each fixture under tests/lint/fixtures/
// carries a known number of violations per rule, the clean fixture carries
// none, and — the teeth — the live src/ tree lints clean against the empty
// checked-in baseline. The fixtures lint files on disk through the same
// `--as` logical-path mechanism the CLI exposes, so these tests cover the
// exact code path CI runs.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "baseline.h"
#include "rules.h"
#include "runner.h"
#include "source_file.h"

namespace lint = halfback::lint;

namespace {

std::filesystem::path fixture_dir() { return HALFBACK_LINT_FIXTURES; }
std::filesystem::path repo_root() { return HALFBACK_REPO_ROOT; }

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in{path};
  EXPECT_TRUE(in.good()) << "cannot read fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

/// Load a fixture from disk, posing as `logical_path` (the path rules scope
/// on), exactly like `halfback-lint --as`.
lint::SourceFile fixture(const std::string& name, std::string logical_path) {
  return {std::move(logical_path), slurp(fixture_dir() / name)};
}

std::vector<lint::Finding> run_rule(const lint::SourceFile& file,
                                    std::string_view rule) {
  return lint::lint_file(file, rule);
}

std::string describe(const std::vector<lint::Finding>& findings) {
  std::ostringstream out;
  for (const lint::Finding& f : findings) {
    out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  return std::move(out).str();
}

TEST(NondeterminismRule, FixtureHasExactlySixFindings) {
  const auto file = fixture("nondet.cpp", "src/fixture/nondet.cpp");
  const auto findings = run_rule(file, "nondeterminism");
  EXPECT_EQ(findings.size(), 6u) << describe(findings);
}

TEST(NondeterminismRule, IgnoresFilesOutsideSrc) {
  const auto file = fixture("nondet.cpp", "tools/fixture/nondet.cpp");
  EXPECT_TRUE(run_rule(file, "nondeterminism").empty());
}

TEST(NondeterminismRule, AccessorDeclarationIsNotACall) {
  // The regression that motivated the declaration heuristic: an accessor
  // named like a banned function (sim::Simulator::random()).
  const lint::SourceFile file{"src/fixture/accessor.h",
                              "#pragma once\n"
                              "struct S {\n"
                              "  Random& random() { return rng_; }\n"
                              "  double time() const;\n"
                              "};\n"};
  EXPECT_TRUE(run_rule(file, "nondeterminism").empty());
}

TEST(NondeterminismRule, StatementKeywordBeforeNameIsACall) {
  const lint::SourceFile file{"src/fixture/call.cpp",
                              "long f() { return time(nullptr); }\n"};
  EXPECT_EQ(run_rule(file, "nondeterminism").size(), 1u);
}

TEST(NondeterminismRule, SameLineSuppressionSilencesTheFinding) {
  const lint::SourceFile file{
      "src/fixture/sup.cpp",
      "long f() { return rand(); }  // lint: nondet-ok(test)\n"};
  EXPECT_TRUE(run_rule(file, "nondeterminism").empty());
}

TEST(UnorderedIterationRule, FixtureHasExactlyTwoFindings) {
  const auto file = fixture("unordered.cpp", "src/exp/fixture_unordered.cpp");
  const auto findings = run_rule(file, "unordered-iteration");
  EXPECT_EQ(findings.size(), 2u) << describe(findings);
}

TEST(UnorderedIterationRule, OnlyWatchesTraceHashedDirs) {
  // The same iteration is legal in, say, src/net/ — order there never
  // reaches a trace or a results table.
  const auto file = fixture("unordered.cpp", "src/net/fixture_unordered.cpp");
  EXPECT_TRUE(run_rule(file, "unordered-iteration").empty());
}

TEST(RawUnitTypeRule, FixtureHasExactlyThreeFindings) {
  const auto file = fixture("units.h", "src/fixture/units.h");
  const auto findings = run_rule(file, "raw-unit-type");
  EXPECT_EQ(findings.size(), 3u) << describe(findings);
}

TEST(RawUnitTypeRule, OnlyWatchesHeaders) {
  const auto file = fixture("units.h", "src/fixture/units.cpp");
  EXPECT_TRUE(run_rule(file, "raw-unit-type").empty());
}

TEST(RawUnitTypeRule, SuggestsTheMatchingStrongType) {
  const auto file = fixture("units.h", "src/fixture/units.h");
  const auto findings = run_rule(file, "raw-unit-type");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_NE(findings[0].message.find("sim::Time"), std::string::npos)
      << findings[0].message;  // rtt_ms
  EXPECT_NE(findings[1].message.find("sim::Bytes"), std::string::npos)
      << findings[1].message;  // buffer_bytes
  EXPECT_NE(findings[2].message.find("sim::DataRate"), std::string::npos)
      << findings[2].message;  // rate_mbps
}

TEST(NakedNewDeleteRule, FixtureHasExactlyTwoFindings) {
  const auto file = fixture("alloc.cpp", "src/fixture/alloc.cpp");
  const auto findings = run_rule(file, "naked-new-delete");
  EXPECT_EQ(findings.size(), 2u) << describe(findings);
}

TEST(UninitializedPodMemberRule, FixtureHasExactlyFourFindings) {
  const auto file = fixture("pod.h", "src/fixture/pod.h");
  const auto findings = run_rule(file, "uninitialized-pod-member");
  EXPECT_EQ(findings.size(), 4u) << describe(findings);
  // The pointer member gets the sharper message.
  EXPECT_NE(findings[3].message.find("wild pointer"), std::string::npos)
      << findings[3].message;
}

TEST(PragmaOnceRule, FlagsGuardlessHeader) {
  const auto file = fixture("no_pragma.h", "src/fixture/no_pragma.h");
  const auto findings = run_rule(file, "pragma-once");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1);
}

TEST(PragmaOnceRule, IgnoresSourceFiles) {
  const auto file = fixture("alloc.cpp", "src/fixture/alloc.cpp");
  EXPECT_TRUE(run_rule(file, "pragma-once").empty());
}

TEST(HotPathFunctionRule, FixtureHasExactlyOneFinding) {
  const auto file = fixture("hot.cpp", "src/fixture/hot.cpp");
  const auto findings = run_rule(file, "hot-path-std-function");
  EXPECT_EQ(findings.size(), 1u) << describe(findings);
}

TEST(HotPathFunctionRule, UnannotatedFilesAreExempt) {
  // Identical content minus the first line (the hot-path annotation).
  std::string text = slurp(fixture_dir() / "hot.cpp");
  text.erase(0, text.find('\n') + 1);
  const lint::SourceFile file{"src/fixture/cold.cpp", std::move(text)};
  EXPECT_TRUE(run_rule(file, "hot-path-std-function").empty());
}

TEST(NoexceptFireRule, FixtureHasExactlyOneFinding) {
  const auto file = fixture("fire.h", "src/fixture/fire.h");
  const auto findings = run_rule(file, "noexcept-fire");
  EXPECT_EQ(findings.size(), 1u) << describe(findings);
}

TEST(StdoutAccountingRule, FixtureHasExactlyFiveFindings) {
  const auto file = fixture("stdout.cpp", "src/fixture/stdout.cpp");
  const auto findings = run_rule(file, "stdout-accounting");
  EXPECT_EQ(findings.size(), 5u) << describe(findings);
}

TEST(StdoutAccountingRule, ReportingLayersAndNonSrcAreExempt) {
  // The exporters (src/telemetry/) and renderers (src/stats/) are the
  // designated print layers; bench/tools code is out of scope entirely.
  EXPECT_TRUE(run_rule(fixture("stdout.cpp", "src/telemetry/fixture.cpp"),
                       "stdout-accounting")
                  .empty());
  EXPECT_TRUE(run_rule(fixture("stdout.cpp", "src/stats/fixture.cpp"),
                       "stdout-accounting")
                  .empty());
  EXPECT_TRUE(run_rule(fixture("stdout.cpp", "bench/fixture.cpp"),
                       "stdout-accounting")
                  .empty());
}

TEST(StdoutAccountingRule, StderrAndBufferFormattingAreFine) {
  const lint::SourceFile file{"src/fixture/ok.cpp",
                              "void f(double v) {\n"
                              "  char buf[32];\n"
                              "  std::snprintf(buf, sizeof buf, \"%g\", v);\n"
                              "  std::fprintf(stderr, \"warn %g\\n\", v);\n"
                              "}\n"};
  EXPECT_TRUE(run_rule(file, "stdout-accounting").empty());
}

TEST(StdoutAccountingRule, SameLineSuppressionSilencesTheFinding) {
  const lint::SourceFile file{
      "src/fixture/sup.cpp",
      "void f() { std::printf(\"x\"); }  // lint: stdout-ok(test)\n"};
  EXPECT_TRUE(run_rule(file, "stdout-accounting").empty());
}

TEST(CleanFixture, ProducesZeroFindingsAcrossAllRules) {
  // Banned names live only in comments, strings, and raw strings here — a
  // tokenizer that leaked them into code tokens would fail this test.
  const auto file = fixture("clean.h", "src/fixture/clean.h");
  const auto findings = lint::lint_file(file);
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(BrokenFixture, TripsExactlyTheThreeExpectedRules) {
  // CI's red proof runs the CLI over this file and asserts exit 1; this
  // test pins what it trips on so the proof cannot silently go stale.
  const auto file = fixture("broken.cpp", "src/fixture/broken.cpp");
  const auto findings = lint::lint_file(file);
  std::set<std::string> rules;
  for (const lint::Finding& f : findings) rules.insert(f.rule);
  EXPECT_EQ(findings.size(), 3u) << describe(findings);
  EXPECT_EQ(rules, (std::set<std::string>{"naked-new-delete",
                                          "nondeterminism",
                                          "uninitialized-pod-member"}));
}

TEST(Registry, EveryRuleHasAStableIdAndDescription) {
  std::set<std::string_view> ids;
  for (const auto& rule : lint::all_rules()) {
    EXPECT_FALSE(rule->id().empty());
    EXPECT_FALSE(rule->description().empty());
    EXPECT_TRUE(ids.insert(rule->id()).second)
        << "duplicate rule id " << rule->id();
  }
  EXPECT_EQ(ids.size(), 9u);
}

TEST(BaselineFile, ParsesEntriesAndMatchesFindings) {
  lint::Baseline baseline;
  std::string error;
  ASSERT_TRUE(baseline.parse("# comment\n"
                             "\n"
                             "nondeterminism src/exp/trace.cpp:42\n"
                             "raw-unit-type src/net/link.h:7\n",
                             error))
      << error;
  EXPECT_EQ(baseline.size(), 2u);
  EXPECT_TRUE(baseline.contains(
      {"nondeterminism", "src/exp/trace.cpp", 42, "msg ignored"}));
  EXPECT_FALSE(baseline.contains(
      {"nondeterminism", "src/exp/trace.cpp", 43, "different line"}));
}

TEST(BaselineFile, RejectsMalformedLinesLoudly) {
  // A silently ignored typo would neither suppress nor un-suppress —
  // malformed lines must be a hard error.
  lint::Baseline baseline;
  std::string error;
  EXPECT_FALSE(baseline.parse("nondeterminism src/exp/trace.cpp\n", error));
  EXPECT_FALSE(error.empty());
}

TEST(BaselineFile, RenderRoundTripsThroughParse) {
  const std::vector<lint::Finding> findings{
      {"pragma-once", "src/fixture/no_pragma.h", 1, "missing"},
      {"naked-new-delete", "src/fixture/alloc.cpp", 11, "naked new"},
  };
  lint::Baseline baseline;
  std::string error;
  ASSERT_TRUE(baseline.parse(lint::Baseline::render(findings), error)) << error;
  EXPECT_EQ(baseline.size(), 2u);
  for (const lint::Finding& f : findings) EXPECT_TRUE(baseline.contains(f));
}

TEST(CheckedInBaseline, ExistsAndIsEmptyByPolicy) {
  lint::Baseline baseline;
  std::string error;
  ASSERT_TRUE(baseline.parse(slurp(repo_root() / "tools/lint/baseline.txt"),
                             error))
      << error;
  EXPECT_EQ(baseline.size(), 0u)
      << "policy: fix or justify findings inline, do not grow the baseline";
}

TEST(Tree, DiscoveryIsSortedAndFindsTheCore) {
  const auto files = lint::discover_files(repo_root());
  ASSERT_FALSE(files.empty());
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  const auto has = [&](std::string_view tail) {
    for (const auto& f : files) {
      if (f.generic_string().ends_with(tail)) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("src/sim/simulator.h"));
  EXPECT_TRUE(has("src/net/link.cpp"));
}

TEST(Tree, SrcLintsCleanAgainstTheEmptyBaseline) {
  // The sweep's teeth: any regression anywhere under src/ fails here with
  // the full finding text, mirroring the `lint-halfback` build target.
  const auto findings = lint::lint_tree(repo_root());
  EXPECT_TRUE(findings.empty()) << describe(findings);
}

TEST(Tree, ParallelSweepIsByteIdenticalToSequential) {
  // --jobs N must not reorder or drop findings: every file has a fixed
  // slot in the path-sorted output. The fixtures are off the discovery
  // path, so this exercises the live tree (empty either way) AND a
  // per-rule sweep that visits every file.
  EXPECT_EQ(lint::lint_tree(repo_root(), {}, 4), lint::lint_tree(repo_root()));
  EXPECT_EQ(lint::lint_tree(repo_root(), "pragma-once", 3),
            lint::lint_tree(repo_root(), "pragma-once", 1));
}

TEST(BaselineFile, StaleEntriesAreTheOnesMatchingNoFinding) {
  lint::Baseline baseline;
  std::string error;
  ASSERT_TRUE(baseline.parse("nondeterminism src/exp/trace.cpp:42\n"
                             "raw-unit-type src/net/link.h:7\n",
                             error))
      << error;
  const std::vector<lint::Finding> findings{
      {"nondeterminism", "src/exp/trace.cpp", 42, "still present"},
  };
  const auto stale = baseline.stale_entries(findings);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "raw-unit-type src/net/link.h:7");
  EXPECT_TRUE(baseline.stale_entries({findings[0],
                                      {"raw-unit-type", "src/net/link.h", 7,
                                       "also present"}})
                  .empty());
}

}  // namespace
