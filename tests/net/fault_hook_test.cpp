// Link-level fault-hook semantics: with no hook the link behaves exactly
// as before; with a hook, drops/corruption/duplication/extra delay are
// applied after serialization, counted in LinkStats, and keep FIFO order
// for the original packet.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "net/fault_hook.h"
#include "net/link.h"
#include "sim/simulator.h"

namespace halfback::net {
namespace {

using sim::DataRate;
using sim::Simulator;
using sim::Time;
using namespace halfback::sim::literals;

/// Replays a scripted sequence of decisions; default-constructed decisions
/// (deliver normally) once the script runs out.
class ScriptedHook final : public FaultHook {
 public:
  FaultDecision on_transmit(const Packet& /*packet*/, Time /*now*/) override {
    if (script_.empty()) return {};
    FaultDecision d = script_.front();
    script_.pop_front();
    return d;
  }

  void push(FaultDecision d) { script_.push_back(d); }

 private:
  std::deque<FaultDecision> script_;
};

Packet make_packet(std::uint32_t seq = 0) {
  Packet p;
  p.type = PacketType::data;
  p.size_bytes = 1500;
  p.seq = seq;
  p.uid = seq + 1;
  return p;
}

struct HookFixture {
  Simulator sim{1};
  ScriptedHook hook;
  std::vector<std::pair<Time, Packet>> arrivals;
  std::unique_ptr<Link> link;

  HookFixture() {
    // 15 Mbps, 10 ms: one 1500 B packet = 0.8 ms serialization, arrivals
    // land at 10.8 ms + queueing.
    link = std::make_unique<Link>(
        sim, DataRate::megabits_per_second(15), 10_ms,
        std::make_unique<DropTailQueue>(1 << 20), 0.0);
    link->set_receiver(
        [this](Packet p) { arrivals.emplace_back(sim.now(), std::move(p)); });
    link->set_fault_hook(&hook);
  }
};

TEST(FaultHookTest, HookAccessors) {
  HookFixture f;
  EXPECT_EQ(f.link->fault_hook(), &f.hook);
  f.link->set_fault_hook(nullptr);
  EXPECT_EQ(f.link->fault_hook(), nullptr);
}

TEST(FaultHookTest, DefaultDecisionDeliversOnSchedule) {
  HookFixture f;
  f.link->send(make_packet());
  f.sim.run();
  ASSERT_EQ(f.arrivals.size(), 1u);
  EXPECT_EQ(f.arrivals[0].first, 10.8_ms);
  const LinkStats& s = f.link->stats();
  EXPECT_EQ(s.fault_dropped_packets, 0u);
  EXPECT_EQ(s.fault_corrupted_packets, 0u);
  EXPECT_EQ(s.fault_duplicated_packets, 0u);
  EXPECT_EQ(s.fault_delayed_packets, 0u);
}

TEST(FaultHookTest, DropDiscardsAfterSerialization) {
  HookFixture f;
  FaultDecision drop;
  drop.drop = true;
  f.hook.push(drop);
  f.link->send(make_packet(0));
  f.link->send(make_packet(1));  // second packet unaffected
  f.sim.run();
  ASSERT_EQ(f.arrivals.size(), 1u);
  EXPECT_EQ(f.arrivals[0].second.seq, 1u);
  EXPECT_EQ(f.link->stats().fault_dropped_packets, 1u);
  // The dropped packet still consumed its serialization slot: the survivor
  // arrives a full extra serialization time later.
  EXPECT_EQ(f.arrivals[0].first, 11.6_ms);
}

TEST(FaultHookTest, CorruptionFlagsThePacketButDeliversIt) {
  HookFixture f;
  FaultDecision corrupt;
  corrupt.corrupt = true;
  f.hook.push(corrupt);
  f.link->send(make_packet());
  f.sim.run();
  ASSERT_EQ(f.arrivals.size(), 1u);
  EXPECT_TRUE(f.arrivals[0].second.corrupted);
  EXPECT_EQ(f.arrivals[0].first, 10.8_ms);  // timing untouched
  EXPECT_EQ(f.link->stats().fault_corrupted_packets, 1u);
}

TEST(FaultHookTest, DuplicationKeepsOriginalFirst) {
  HookFixture f;
  FaultDecision dup;
  dup.duplicates = 2;  // zero spacing: copies tie with the original
  f.hook.push(dup);
  f.link->send(make_packet(7));
  f.sim.run();
  ASSERT_EQ(f.arrivals.size(), 3u);
  for (const auto& [at, p] : f.arrivals) {
    EXPECT_EQ(at, 10.8_ms);  // FIFO same-timestamp: original launched first
    EXPECT_EQ(p.seq, 7u);
    EXPECT_EQ(p.uid, 8u);  // copies carry the same wire uid
  }
  EXPECT_EQ(f.link->stats().fault_duplicated_packets, 2u);
}

TEST(FaultHookTest, DuplicateSpacingStaggersTheCopies) {
  HookFixture f;
  FaultDecision dup;
  dup.duplicates = 2;
  dup.duplicate_spacing = 3_ms;
  f.hook.push(dup);
  f.link->send(make_packet());
  f.sim.run();
  ASSERT_EQ(f.arrivals.size(), 3u);
  EXPECT_EQ(f.arrivals[0].first, 10.8_ms);
  EXPECT_EQ(f.arrivals[1].first, 13.8_ms);
  EXPECT_EQ(f.arrivals[2].first, 16.8_ms);
}

TEST(FaultHookTest, ExtraDelayPostponesDelivery) {
  HookFixture f;
  FaultDecision slow;
  slow.extra_delay = 5_ms;
  f.hook.push(slow);
  f.link->send(make_packet(0));
  f.link->send(make_packet(1));
  f.sim.run();
  ASSERT_EQ(f.arrivals.size(), 2u);
  // The jittered packet (seq 0) was overtaken by seq 1: reordering.
  EXPECT_EQ(f.arrivals[0].second.seq, 1u);
  EXPECT_EQ(f.arrivals[0].first, 11.6_ms);
  EXPECT_EQ(f.arrivals[1].second.seq, 0u);
  EXPECT_EQ(f.arrivals[1].first, 15.8_ms);
  EXPECT_EQ(f.link->stats().fault_delayed_packets, 1u);
}

TEST(FaultHookTest, NegativeDelayFromAHookIsALogicError) {
  HookFixture f;
  FaultDecision bad;
  bad.extra_delay = Time::milliseconds(-1);
  f.hook.push(bad);
  f.link->send(make_packet());
  EXPECT_THROW(f.sim.run(), std::logic_error);
}

}  // namespace
}  // namespace halfback::net
