#include "net/link.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace halfback::net {
namespace {

using sim::DataRate;
using sim::Simulator;
using sim::Time;
using namespace halfback::sim::literals;

Packet make_packet(std::uint32_t bytes, std::uint32_t seq = 0) {
  Packet p;
  p.type = PacketType::data;
  p.size_bytes = bytes;
  p.seq = seq;
  return p;
}

struct LinkFixture {
  Simulator sim{1};
  std::vector<std::pair<Time, Packet>> arrivals;

  std::unique_ptr<Link> make_link(DataRate rate, Time delay,
                                  std::uint64_t queue_bytes = 1 << 20,
                                  double loss = 0.0) {
    auto link = std::make_unique<Link>(
        sim, rate, delay, std::make_unique<DropTailQueue>(queue_bytes), loss);
    link->set_receiver([this](Packet p) { arrivals.emplace_back(sim.now(), std::move(p)); });
    return link;
  }
};

TEST(LinkTest, DeliveryTimeIsSerializationPlusPropagation) {
  LinkFixture f;
  auto link = f.make_link(DataRate::megabits_per_second(15), 10_ms);
  link->send(make_packet(1500));
  f.sim.run();
  ASSERT_EQ(f.arrivals.size(), 1u);
  // 1500 B at 15 Mbps = 0.8 ms serialization + 10 ms propagation.
  EXPECT_EQ(f.arrivals[0].first, 10.8_ms);
}

TEST(LinkTest, BackToBackPacketsQueueBehindEachOther) {
  LinkFixture f;
  auto link = f.make_link(DataRate::megabits_per_second(15), 10_ms);
  link->send(make_packet(1500, 1));
  link->send(make_packet(1500, 2));
  f.sim.run();
  ASSERT_EQ(f.arrivals.size(), 2u);
  EXPECT_EQ(f.arrivals[0].first, 10.8_ms);
  EXPECT_EQ(f.arrivals[1].first, 11.6_ms);  // one extra serialization time
  EXPECT_EQ(f.arrivals[0].second.seq, 1u);
  EXPECT_EQ(f.arrivals[1].second.seq, 2u);
}

TEST(LinkTest, PipeliningInPropagation) {
  // With delay >> serialization, many packets are in flight at once; the
  // spacing between arrivals equals the serialization time.
  LinkFixture f;
  auto link = f.make_link(DataRate::megabits_per_second(150), 50_ms);
  for (int i = 0; i < 10; ++i) link->send(make_packet(1500, static_cast<std::uint32_t>(i)));
  f.sim.run();
  ASSERT_EQ(f.arrivals.size(), 10u);
  Time spacing = f.arrivals[1].first - f.arrivals[0].first;
  EXPECT_EQ(spacing, Time::microseconds(80));
  EXPECT_LT(f.arrivals[9].first, 51_ms);
}

TEST(LinkTest, QueueOverflowDrops) {
  LinkFixture f;
  // Queue of 3000 bytes: 1 transmitting + 2 queued; rest dropped.
  auto link = f.make_link(DataRate::megabits_per_second(1), 1_ms, 3000);
  for (int i = 0; i < 6; ++i) link->send(make_packet(1500, static_cast<std::uint32_t>(i)));
  f.sim.run();
  EXPECT_EQ(f.arrivals.size(), 3u);
  EXPECT_EQ(link->queue().stats().dropped_packets, 3u);
}

TEST(LinkTest, RandomLossDropsSomePackets) {
  LinkFixture f;
  auto link = f.make_link(DataRate::megabits_per_second(100), 1_ms, 1 << 20, 0.5);
  for (int i = 0; i < 200; ++i) link->send(make_packet(1500, static_cast<std::uint32_t>(i)));
  f.sim.run();
  EXPECT_GT(f.arrivals.size(), 50u);
  EXPECT_LT(f.arrivals.size(), 150u);
  EXPECT_EQ(f.arrivals.size() + link->stats().corrupted_packets, 200u);
}

TEST(LinkTest, StatsCountDeliveries) {
  LinkFixture f;
  auto link = f.make_link(DataRate::megabits_per_second(10), 1_ms);
  link->send(make_packet(1000));
  link->send(make_packet(500));
  f.sim.run();
  EXPECT_EQ(link->stats().delivered_packets, 2u);
  EXPECT_EQ(link->stats().delivered_bytes, 1500u);
}

TEST(LinkTest, UtilizationReflectsBusyTime) {
  LinkFixture f;
  auto link = f.make_link(DataRate::megabits_per_second(15), Time::zero());
  link->send(make_packet(1500));  // 0.8 ms busy
  f.sim.run_until(8_ms);
  EXPECT_NEAR(link->utilization(f.sim.now()), 0.1, 0.001);
}

TEST(LinkTest, RejectsZeroRate) {
  Simulator sim{1};
  EXPECT_THROW(Link(sim, sim::DataRate{}, 1_ms, std::make_unique<DropTailQueue>(1000)),
               std::invalid_argument);
}

}  // namespace
}  // namespace halfback::net
