#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace halfback::net {
namespace {

using sim::DataRate;
using sim::Simulator;
using namespace halfback::sim::literals;

LinkConfig fast_link() {
  LinkConfig c;
  c.rate = DataRate::megabits_per_second(100);
  c.delay = 1_ms;
  return c;
}

TEST(NetworkTest, NodesGetDenseIds) {
  Simulator sim{1};
  Network net{sim};
  EXPECT_EQ(net.add_node(), 0u);
  EXPECT_EQ(net.add_node(), 1u);
  EXPECT_EQ(net.add_node(), 2u);
  EXPECT_EQ(net.node_count(), 3u);
}

TEST(NetworkTest, DirectDelivery) {
  Simulator sim{1};
  Network net{sim};
  NodeId a = net.add_node();
  NodeId b = net.add_node();
  net.connect(a, b, fast_link());
  net.compute_routes();

  std::vector<Packet> got;
  net.node(b).set_local_handler([&](Packet p) { got.push_back(std::move(p)); });

  Packet p;
  p.type = PacketType::data;
  p.src = a;
  p.dst = b;
  p.size_bytes = 1000;
  net.node(a).send(p);
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].dst, b);
}

TEST(NetworkTest, MultiHopForwarding) {
  Simulator sim{1};
  Network net{sim};
  NodeId a = net.add_node();
  NodeId r1 = net.add_node();
  NodeId r2 = net.add_node();
  NodeId b = net.add_node();
  net.connect(a, r1, fast_link());
  net.connect(r1, r2, fast_link());
  net.connect(r2, b, fast_link());
  net.compute_routes();

  std::vector<Packet> got;
  net.node(b).set_local_handler([&](Packet p) { got.push_back(std::move(p)); });

  Packet p;
  p.type = PacketType::data;
  p.src = a;
  p.dst = b;
  p.size_bytes = 1500;
  net.node(a).send(p);
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  // Three hops of 1 ms propagation each plus three serializations.
  EXPECT_GT(sim.now(), 3_ms);
  EXPECT_LT(sim.now(), 4_ms);
}

TEST(NetworkTest, ReversePathWorks) {
  Simulator sim{1};
  Network net{sim};
  NodeId a = net.add_node();
  NodeId r = net.add_node();
  NodeId b = net.add_node();
  net.connect(a, r, fast_link());
  net.connect(r, b, fast_link());
  net.compute_routes();

  std::vector<Packet> got_at_a;
  net.node(a).set_local_handler([&](Packet p) { got_at_a.push_back(std::move(p)); });

  Packet p;
  p.type = PacketType::ack;
  p.src = b;
  p.dst = a;
  p.size_bytes = 40;
  net.node(b).send(p);
  sim.run();
  EXPECT_EQ(got_at_a.size(), 1u);
}

TEST(NetworkTest, MissingRouteThrows) {
  Simulator sim{1};
  Network net{sim};
  NodeId a = net.add_node();
  net.add_node();  // b, disconnected
  net.compute_routes();
  Packet p;
  p.src = a;
  p.dst = 1;
  EXPECT_THROW(net.node(a).send(p), std::logic_error);
}

TEST(NetworkTest, ShortestPathPreferred) {
  // a - r1 - b  and  a - r2 - r3 - b: traffic must take the 2-hop path.
  Simulator sim{1};
  Network net{sim};
  NodeId a = net.add_node();
  NodeId r1 = net.add_node();
  NodeId r2 = net.add_node();
  NodeId r3 = net.add_node();
  NodeId b = net.add_node();
  LinkPair short1 = net.connect(a, r1, fast_link());
  net.connect(r2, r3, fast_link());
  net.connect(a, r2, fast_link());
  net.connect(r3, b, fast_link());
  net.connect(r1, b, fast_link());
  net.compute_routes();

  net.node(b).set_local_handler([](Packet) {});
  Packet p;
  p.type = PacketType::data;
  p.src = a;
  p.dst = b;
  p.size_bytes = 1000;
  net.node(a).send(p);
  sim.run();
  EXPECT_EQ(short1.forward->stats().delivered_packets, 1u);
}

TEST(NetworkTest, TotalQueueDropsAggregates) {
  Simulator sim{1};
  Network net{sim};
  NodeId a = net.add_node();
  NodeId b = net.add_node();
  LinkConfig tiny = fast_link();
  tiny.rate = DataRate::kilobits_per_second(64);
  tiny.queue_bytes = 1500;
  net.connect(a, b, tiny);
  net.compute_routes();
  net.node(b).set_local_handler([](Packet) {});
  for (int i = 0; i < 5; ++i) {
    Packet p;
    p.type = PacketType::data;
    p.src = a;
    p.dst = b;
    p.size_bytes = 1500;
    net.node(a).send(p);
  }
  sim.run();
  EXPECT_EQ(net.total_queue_drops(), 3u);  // 1 transmitting + 1 queued survive
}

}  // namespace
}  // namespace halfback::net
