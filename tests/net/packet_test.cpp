#include "net/packet.h"

#include <gtest/gtest.h>

namespace halfback::net {
namespace {

TEST(PacketTest, WireSizesMatchPaperSetup) {
  // §4.1: "The segment size is 1500 bytes including the header."
  EXPECT_EQ(kSegmentWireBytes, 1500u);
  EXPECT_EQ(kSegmentPayloadBytes + kHeaderBytes, kSegmentWireBytes);
}

TEST(PacketTest, TypeNames) {
  EXPECT_STREQ(to_string(PacketType::syn), "SYN");
  EXPECT_STREQ(to_string(PacketType::syn_ack), "SYN-ACK");
  EXPECT_STREQ(to_string(PacketType::data), "DATA");
  EXPECT_STREQ(to_string(PacketType::ack), "ACK");
}

TEST(PacketTest, ToStringMentionsKeyFields) {
  Packet p;
  p.type = PacketType::data;
  p.flow = 7;
  p.seq = 3;
  p.total_segments = 10;
  p.is_retx = true;
  p.is_proactive = true;
  std::string s = p.to_string();
  EXPECT_NE(s.find("DATA"), std::string::npos);
  EXPECT_NE(s.find("seq=3/10"), std::string::npos);
  EXPECT_NE(s.find("retx"), std::string::npos);
  EXPECT_NE(s.find("proactive"), std::string::npos);
}

TEST(PacketTest, SackBlockEquality) {
  SackBlock a{1, 5};
  SackBlock b{1, 5};
  SackBlock c{1, 6};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace halfback::net
