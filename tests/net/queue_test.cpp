#include "net/queue.h"

#include <gtest/gtest.h>

namespace halfback::net {
namespace {

Packet make_packet(std::uint32_t bytes, std::uint32_t seq = 0) {
  Packet p;
  p.type = PacketType::data;
  p.size_bytes = bytes;
  p.seq = seq;
  return p;
}

TEST(DropTailQueueTest, FifoOrder) {
  DropTailQueue q{10000};
  q.enqueue(make_packet(1000, 1), {});
  q.enqueue(make_packet(1000, 2), {});
  q.enqueue(make_packet(1000, 3), {});
  EXPECT_EQ(q.packet_count(), 3u);
  EXPECT_EQ(q.dequeue({})->seq, 1u);
  EXPECT_EQ(q.dequeue({})->seq, 2u);
  EXPECT_EQ(q.dequeue({})->seq, 3u);
  EXPECT_FALSE(q.dequeue({}).has_value());
}

TEST(DropTailQueueTest, DropsWhenFull) {
  DropTailQueue q{2500};
  EXPECT_TRUE(q.enqueue(make_packet(1500), {}));
  EXPECT_TRUE(q.enqueue(make_packet(1000), {}));
  EXPECT_FALSE(q.enqueue(make_packet(1), {}));  // 2501 > 2500
  EXPECT_EQ(q.stats().dropped_packets, 1u);
  EXPECT_EQ(q.byte_length(), 2500u);
}

TEST(DropTailQueueTest, ByteAccountingAcrossOps) {
  DropTailQueue q{10000};
  q.enqueue(make_packet(1500), {});
  q.enqueue(make_packet(40), {});
  EXPECT_EQ(q.byte_length(), 1540u);
  q.dequeue({});
  EXPECT_EQ(q.byte_length(), 40u);
  q.dequeue({});
  EXPECT_EQ(q.byte_length(), 0u);
}

TEST(DropTailQueueTest, StatsTrackMaxBacklog) {
  DropTailQueue q{10000};
  q.enqueue(make_packet(4000), {});
  q.enqueue(make_packet(4000), {});
  q.dequeue({});
  q.enqueue(make_packet(1000), {});
  EXPECT_EQ(q.stats().max_backlog_bytes, 8000u);
  EXPECT_EQ(q.stats().enqueued_packets, 3u);
  EXPECT_EQ(q.stats().enqueued_bytes, 9000u);
}

TEST(DropTailQueueTest, DropCallbackFires) {
  DropTailQueue q{1000};
  std::uint32_t dropped_seq = 0;
  q.set_drop_callback([&](const Packet& p) { dropped_seq = p.seq; });
  q.enqueue(make_packet(900, 1), {});
  q.enqueue(make_packet(900, 2), {});
  EXPECT_EQ(dropped_seq, 2u);
}

TEST(DropTailQueueTest, ExactlyFullIsAccepted) {
  DropTailQueue q{3000};
  EXPECT_TRUE(q.enqueue(make_packet(1500), {}));
  EXPECT_TRUE(q.enqueue(make_packet(1500), {}));
  EXPECT_FALSE(q.enqueue(make_packet(1500), {}));
}

TEST(CoDelQueueTest, PassesTrafficWithLowSojourn) {
  CoDelQueue::Config config;
  config.capacity_bytes = 100000;
  CoDelQueue q{config};
  using sim::Time;
  for (int i = 0; i < 50; ++i) {
    Time now = Time::milliseconds(i);
    EXPECT_TRUE(q.enqueue(make_packet(1500), now));
    // Dequeued almost immediately: sojourn ~0, never drops.
    EXPECT_TRUE(q.dequeue(now + Time::microseconds(100)).has_value());
  }
  EXPECT_EQ(q.stats().dropped_packets, 0u);
  EXPECT_FALSE(q.dropping());
}

TEST(CoDelQueueTest, DropsWhenSojournStaysAboveTarget) {
  CoDelQueue::Config config;
  config.capacity_bytes = 1 << 20;
  CoDelQueue q{config};
  using sim::Time;
  // Fill a standing queue, then drain slowly so every packet's sojourn is
  // far above the 5 ms target for longer than the 100 ms interval.
  for (int i = 0; i < 200; ++i) q.enqueue(make_packet(1500), Time::milliseconds(i));
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    Time now = Time::milliseconds(400 + 10 * i);
    if (q.dequeue(now).has_value()) ++delivered;
    if (q.packet_count() == 0) break;
  }
  EXPECT_GT(q.stats().dropped_packets, 0u);
  EXPECT_GT(delivered, 0);
}

TEST(CoDelQueueTest, HardLimitStillApplies) {
  CoDelQueue::Config config;
  config.capacity_bytes = 3000;
  CoDelQueue q{config};
  EXPECT_TRUE(q.enqueue(make_packet(1500), {}));
  EXPECT_TRUE(q.enqueue(make_packet(1500), {}));
  EXPECT_FALSE(q.enqueue(make_packet(1500), {}));
}

TEST(CoDelQueueTest, RecoversWhenQueueDrains) {
  CoDelQueue::Config config;
  config.capacity_bytes = 1 << 20;
  CoDelQueue q{config};
  using sim::Time;
  for (int i = 0; i < 100; ++i) q.enqueue(make_packet(1500), Time::milliseconds(0));
  // Drain everything late (high sojourn), entering the dropping state.
  Time now = Time::milliseconds(500);
  while (q.packet_count() > 0) {
    q.dequeue(now);
    now += Time::milliseconds(10);
  }
  // Fresh traffic with low sojourn passes untouched.
  const std::uint64_t dropped_before = q.stats().dropped_packets;
  q.enqueue(make_packet(1500), now);
  EXPECT_TRUE(q.dequeue(now + Time::microseconds(10)).has_value());
  EXPECT_EQ(q.stats().dropped_packets, dropped_before);
  EXPECT_FALSE(q.dropping());
}

TEST(RedQueueTest, AcceptsWhenBelowMinThreshold) {
  RedQueue::Config config;
  config.capacity_bytes = 100000;
  RedQueue q{config, sim::Random{1}};
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(q.enqueue(make_packet(1500), {}));
    q.dequeue({});
  }
  EXPECT_EQ(q.stats().dropped_packets, 0u);
}

TEST(RedQueueTest, HardLimitAlwaysDrops) {
  RedQueue::Config config;
  config.capacity_bytes = 3000;
  RedQueue q{config, sim::Random{1}};
  q.enqueue(make_packet(1500), {});
  q.enqueue(make_packet(1500), {});
  EXPECT_FALSE(q.enqueue(make_packet(1500), {}));
}

TEST(RedQueueTest, DropsProbabilisticallyUnderSustainedLoad) {
  RedQueue::Config config;
  config.capacity_bytes = 30000;
  config.ewma_weight = 0.2;  // fast-moving average for the test
  RedQueue q{config, sim::Random{7}};
  // Fill to ~80% and keep offering packets without draining.
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    if (q.byte_length() + 1500 > 24000) q.dequeue({});
    if (q.enqueue(make_packet(1500), {})) ++accepted;
  }
  EXPECT_GT(q.stats().dropped_packets, 0u);
  EXPECT_GT(accepted, 0);
}

}  // namespace
}  // namespace halfback::net
