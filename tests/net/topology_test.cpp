#include "net/topology.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace halfback::net {
namespace {

using sim::Simulator;
using sim::Time;
using namespace halfback::sim::literals;

TEST(DumbbellTest, BuildsRequestedHosts) {
  Simulator sim{1};
  Network net{sim};
  DumbbellConfig config;
  config.sender_count = 4;
  config.receiver_count = 3;
  Dumbbell d = build_dumbbell(net, config);
  EXPECT_EQ(d.senders.size(), 4u);
  EXPECT_EQ(d.receivers.size(), 3u);
  EXPECT_EQ(net.node_count(), 9u);  // 2 routers + 7 hosts
  ASSERT_NE(d.bottleneck_forward, nullptr);
  EXPECT_EQ(d.bottleneck_forward->rate(), sim::DataRate::megabits_per_second(15));
}

TEST(DumbbellTest, RoundTripTimeMatchesConfig) {
  Simulator sim{1};
  Network net{sim};
  Dumbbell d = build_dumbbell(net, DumbbellConfig{});

  // Ping: send a 52-byte packet sender -> receiver, bounce it back.
  Time echo_at;
  bool got_echo = false;
  net.node(d.receivers[0]).set_local_handler([&](Packet p) {
    Packet reply = p;
    reply.src = p.dst;
    reply.dst = p.src;
    net.node(d.receivers[0]).send(reply);
  });
  net.node(d.senders[0]).set_local_handler([&](Packet) {
    echo_at = sim.now();
    got_echo = true;
  });
  Packet ping;
  ping.type = PacketType::ack;
  ping.src = d.senders[0];
  ping.dst = d.receivers[0];
  ping.size_bytes = 52;
  net.node(d.senders[0]).send(ping);
  sim.run();
  ASSERT_TRUE(got_echo);
  // Propagation RTT is 60 ms; serialization of a 52 B packet is negligible.
  EXPECT_GT(echo_at, 59_ms);
  EXPECT_LT(echo_at, 61_ms);
}

TEST(DumbbellTest, BdpMatchesPaper) {
  Simulator sim{1};
  Network net{sim};
  Dumbbell d = build_dumbbell(net, DumbbellConfig{});
  // 15 Mbps * 60 ms = 112.5 KB ~ the paper's 115 KB default buffer.
  EXPECT_NEAR(static_cast<double>(d.bdp_bytes()), 112500.0, 10.0);
}

TEST(DumbbellTest, RejectsEmptySides) {
  Simulator sim{1};
  Network net{sim};
  DumbbellConfig config;
  config.sender_count = 0;
  EXPECT_THROW(build_dumbbell(net, config), std::invalid_argument);
}

TEST(AccessPathTest, BuildsThreeNodes) {
  Simulator sim{1};
  Network net{sim};
  AccessPath path = build_access_path(net, AccessPathConfig{});
  EXPECT_EQ(net.node_count(), 3u);
  ASSERT_NE(path.downlink, nullptr);
  EXPECT_EQ(path.downlink->rate(), sim::DataRate::megabits_per_second(25));
}

TEST(AccessPathTest, RttMatchesConfig) {
  Simulator sim{1};
  Network net{sim};
  AccessPathConfig config;
  config.rtt = 100_ms;
  AccessPath path = build_access_path(net, config);

  Time echo_at;
  net.node(path.client).set_local_handler([&](Packet p) {
    Packet reply = p;
    reply.src = p.dst;
    reply.dst = p.src;
    net.node(path.client).send(reply);
  });
  net.node(path.server).set_local_handler([&](Packet) { echo_at = sim.now(); });
  Packet ping;
  ping.type = PacketType::ack;
  ping.src = path.server;
  ping.dst = path.client;
  ping.size_bytes = 52;
  net.node(path.server).send(ping);
  sim.run();
  EXPECT_GT(echo_at, 99_ms);
  EXPECT_LT(echo_at, 101_ms);
}

TEST(ParkingLotTest, BuildsChainWithCrossPairs) {
  Simulator sim{1};
  Network net{sim};
  ParkingLotConfig config;
  config.hops = 3;
  ParkingLot lot = build_parking_lot(net, config);
  EXPECT_EQ(lot.routers.size(), 4u);
  EXPECT_EQ(lot.bottlenecks.size(), 3u);
  EXPECT_EQ(lot.cross_senders.size(), 3u);
  // 4 routers + 2 main hosts + 3x2 cross hosts.
  EXPECT_EQ(net.node_count(), 12u);
  EXPECT_EQ(lot.end_to_end_rtt(), 60_ms);
}

TEST(ParkingLotTest, EndToEndRttSpansAllHops) {
  Simulator sim{1};
  Network net{sim};
  ParkingLotConfig config;
  config.hops = 3;
  ParkingLot lot = build_parking_lot(net, config);

  Time echo_at;
  net.node(lot.main_receiver).set_local_handler([&](Packet p) {
    Packet reply = p;
    std::swap(reply.src, reply.dst);
    net.node(lot.main_receiver).send(reply);
  });
  net.node(lot.main_sender).set_local_handler([&](Packet) { echo_at = sim.now(); });
  Packet ping;
  ping.type = PacketType::ack;
  ping.src = lot.main_sender;
  ping.dst = lot.main_receiver;
  ping.size_bytes = 52;
  net.node(lot.main_sender).send(ping);
  sim.run();
  EXPECT_GT(echo_at, 59_ms);
  EXPECT_LT(echo_at, 62_ms);
}

TEST(ParkingLotTest, CrossTrafficOccupiesOnlyItsHop) {
  Simulator sim{1};
  Network net{sim};
  ParkingLotConfig config;
  config.hops = 2;
  ParkingLot lot = build_parking_lot(net, config);
  net.node(lot.cross_receivers[0]).set_local_handler([](Packet) {});
  Packet p;
  p.type = PacketType::data;
  p.src = lot.cross_senders[0];
  p.dst = lot.cross_receivers[0];
  p.size_bytes = 1500;
  net.node(lot.cross_senders[0]).send(p);
  sim.run();
  EXPECT_EQ(lot.bottlenecks[0]->stats().delivered_packets, 1u);
  EXPECT_EQ(lot.bottlenecks[1]->stats().delivered_packets, 0u);
}

TEST(ParkingLotTest, RejectsZeroHops) {
  Simulator sim{1};
  Network net{sim};
  ParkingLotConfig config;
  config.hops = 0;
  EXPECT_THROW(build_parking_lot(net, config), std::invalid_argument);
}

TEST(AccessPathTest, WirelessLossProfileDropsPackets) {
  Simulator sim{3};
  Network net{sim};
  AccessPathConfig config;
  config.downlink_loss_rate = 0.5;
  AccessPath path = build_access_path(net, config);
  int received = 0;
  net.node(path.client).set_local_handler([&](Packet) { ++received; });
  for (int i = 0; i < 100; ++i) {
    Packet p;
    p.type = PacketType::data;
    p.src = path.server;
    p.dst = path.client;
    p.size_bytes = 1500;
    net.node(path.server).send(p);
  }
  sim.run();
  EXPECT_GT(received, 20);
  EXPECT_LT(received, 80);
}

}  // namespace
}  // namespace halfback::net
