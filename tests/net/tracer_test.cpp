#include "net/tracer.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sim/simulator.h"

namespace halfback::net {
namespace {

using namespace halfback::sim::literals;

struct TracerFixture {
  sim::Simulator sim{1};
  Network net{sim};
  NodeId a, b;
  LinkPair links;
  PacketTracer tracer{sim};

  TracerFixture(std::uint64_t queue_bytes = 1 << 20) {
    a = net.add_node();
    b = net.add_node();
    LinkConfig link;
    link.rate = sim::DataRate::megabits_per_second(10);
    link.delay = 1_ms;
    link.queue_bytes = queue_bytes;
    links = net.connect(a, b, link);
    net.compute_routes();
    net.node(b).set_local_handler([](Packet) {});
  }

  void send(std::uint32_t seq, std::uint32_t bytes = 1500) {
    Packet p;
    p.type = PacketType::data;
    p.src = a;
    p.dst = b;
    p.seq = seq;
    p.flow = 1 + seq % 2;
    p.size_bytes = bytes;
    net.node(a).send(p);
  }
};

TEST(PacketTracerTest, RecordsDeliveries) {
  TracerFixture f;
  f.tracer.tap_link(*f.links.forward, "a->b");
  f.send(0);
  f.send(1);
  f.sim.run();
  auto delivered = f.tracer.events_of(TraceEventKind::delivered);
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].packet.seq, 0u);
  EXPECT_EQ(delivered[0].where, "a->b");
  EXPECT_GT(delivered[0].at, 1_ms);
}

TEST(PacketTracerTest, TapChainsToExistingReceiver) {
  TracerFixture f;
  int arrived = 0;
  f.net.node(f.b).set_local_handler([&](Packet) { ++arrived; });
  f.tracer.tap_link(*f.links.forward, "a->b");
  f.send(0);
  f.sim.run();
  EXPECT_EQ(arrived, 1);  // delivery still reaches the node
  EXPECT_EQ(f.tracer.events().size(), 1u);
}

TEST(PacketTracerTest, RecordsQueueDrops) {
  TracerFixture f{/*queue_bytes=*/1400};
  f.tracer.tap_queue(*f.links.forward, "bottleneck");
  for (std::uint32_t i = 0; i < 5; ++i) f.send(i);
  f.sim.run();
  auto drops = f.tracer.events_of(TraceEventKind::queue_drop);
  EXPECT_EQ(drops.size(), 4u);  // 1 transmitting, rest dropped
  EXPECT_EQ(drops[0].kind, TraceEventKind::queue_drop);
}

TEST(PacketTracerTest, QueueTapChainsExistingDropCallback) {
  TracerFixture f{1400};
  int counted = 0;
  f.links.forward->queue().set_drop_callback([&](const Packet&) { ++counted; });
  f.tracer.tap_queue(*f.links.forward, "bottleneck");
  for (std::uint32_t i = 0; i < 3; ++i) f.send(i);
  f.sim.run();
  EXPECT_EQ(counted, 2);
  EXPECT_EQ(f.tracer.events_of(TraceEventKind::queue_drop).size(), 2u);
}

// Regression for the old header comment that claimed tap_queue *replaces*
// the drop callback: taps stack, and the pre-existing experiment
// accounting keeps firing underneath both of them.
TEST(PacketTracerTest, QueueTapStacksMultipleTaps) {
  TracerFixture f{1400};
  int counted = 0;
  f.links.forward->queue().set_drop_callback([&](const Packet&) { ++counted; });
  f.tracer.tap_queue(*f.links.forward, "first");
  PacketTracer second{f.sim};
  second.tap_queue(*f.links.forward, "second");
  for (std::uint32_t i = 0; i < 3; ++i) f.send(i);
  f.sim.run();
  EXPECT_EQ(counted, 2);
  EXPECT_EQ(f.tracer.events_of(TraceEventKind::queue_drop).size(), 2u);
  EXPECT_EQ(second.events_of(TraceEventKind::queue_drop).size(), 2u);
}

TEST(PacketTracerTest, NodeTapSeesLocalArrivals) {
  TracerFixture f;
  f.tracer.tap_node(f.net.node(f.b), "host-b");
  f.send(0);
  f.sim.run();
  auto arrivals = f.tracer.events_of(TraceEventKind::local_arrival);
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0].where, "host-b");
}

TEST(PacketTracerTest, FilterLimitsRecording) {
  TracerFixture f;
  f.tracer.set_filter([](const TraceEvent& e) { return e.packet.flow == 1; });
  f.tracer.tap_link(*f.links.forward, "a->b");
  for (std::uint32_t i = 0; i < 4; ++i) f.send(i);  // flows alternate 1,2
  f.sim.run();
  EXPECT_EQ(f.tracer.events().size(), 2u);
  for (const TraceEvent& e : f.tracer.events()) EXPECT_EQ(e.packet.flow, 1u);
}

TEST(PacketTracerTest, EventsForFlow) {
  TracerFixture f;
  f.tracer.tap_link(*f.links.forward, "a->b");
  for (std::uint32_t i = 0; i < 4; ++i) f.send(i);
  f.sim.run();
  EXPECT_EQ(f.tracer.events_for_flow(1).size(), 2u);
  EXPECT_EQ(f.tracer.events_for_flow(2).size(), 2u);
  EXPECT_TRUE(f.tracer.events_for_flow(99).empty());
}

TEST(PacketTracerTest, TimelineRendersAllEvents) {
  TracerFixture f;
  f.tracer.tap_link(*f.links.forward, "a->b");
  f.send(0);
  f.sim.run();
  std::string timeline = f.tracer.timeline();
  EXPECT_NE(timeline.find("DELIVER"), std::string::npos);
  EXPECT_NE(timeline.find("a->b"), std::string::npos);
  EXPECT_NE(timeline.find("DATA"), std::string::npos);
}

TEST(PacketTracerTest, ClearEmptiesBuffer) {
  TracerFixture f;
  f.tracer.tap_link(*f.links.forward, "a->b");
  f.send(0);
  f.sim.run();
  EXPECT_FALSE(f.tracer.events().empty());
  f.tracer.clear();
  EXPECT_TRUE(f.tracer.events().empty());
}

}  // namespace
}  // namespace halfback::net
