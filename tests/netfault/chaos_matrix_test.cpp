// The chaos-matrix acceptance gate: every scheme completes every flow
// across the whole fault catalog (including a blackout longer than the
// initial RTO), every cell passes the invariant audit, every cell is
// deterministic (same seed + same fault config ⇒ identical trace hash),
// and a clean cell is bit-identical to a run that never heard of netfault.
#include "exp/chaos.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "exp/emulab.h"
#include "schemes/scheme.h"
#include "telemetry/quarantine.h"

namespace halfback::exp {
namespace {

using namespace halfback::sim::literals;

ChaosSweepConfig test_config() {
  ChaosSweepConfig config;
  config.runner.seed = 1;
  config.verify_determinism = true;
  return config;
}

TEST(ChaosCatalogTest, BlackoutOutlastsTheInitialRto) {
  // The acceptance bar demands recovery from an outage the first RTO
  // cannot bridge: surviving it requires backed-off (and capped)
  // retransmission timers.
  const transport::SenderConfig defaults;
  bool found = false;
  for (const ChaosScenario& scenario : chaos_catalog()) {
    for (const netfault::TimeWindow& outage : scenario.faults.outages) {
      if (outage.duration() > defaults.rtt.min_rto) found = true;
    }
  }
  EXPECT_TRUE(found) << "no catalog outage exceeds the initial RTO";
}

TEST(ChaosMatrixTest, EverySchemeSurvivesEveryScenario) {
  const ChaosSweepResult sweep =
      chaos_sweep(test_config(), schemes::evaluation_set());
  const std::vector<ChaosCell>& cells = sweep.cells;
  ASSERT_EQ(cells.size(),
            chaos_catalog().size() * schemes::evaluation_set().size());
  EXPECT_TRUE(sweep.complete()) << "healthy matrix quarantined a cell";
  EXPECT_EQ(sweep.supervision.manifest.attempted, cells.size());
  EXPECT_EQ(sweep.supervision.manifest.completed, cells.size());
  for (const ChaosCell& cell : cells) {
    SCOPED_TRACE(cell.scenario + " / " + schemes::name(cell.scheme));
    EXPECT_EQ(cell.unfinished, 0u) << "flows failed to complete under faults";
    EXPECT_EQ(cell.flows, test_config().flows_per_cell);
    EXPECT_TRUE(cell.deterministic)
        << "same seed + same fault config produced a different trace hash";
#ifdef HALFBACK_AUDIT
    EXPECT_EQ(cell.audit_violations, 0u) << "invariants broke under chaos";
    EXPECT_NE(cell.trace_hash, 0u);
#endif
  }
}

TEST(ChaosMatrixTest, PercentileColumnsAreIdenticalAtAnyWorkerCount) {
  // The --percentiles satellite contract: the per-cell FCT tail columns
  // come from a per-cell hub, so the sweep's thread count must not change
  // a single value. jobs=1 vs jobs=4 over the same matrix.
  const std::vector<schemes::Scheme> pair{schemes::Scheme::tcp,
                                          schemes::Scheme::halfback};
  ChaosSweepConfig config;
  config.runner.seed = 3;
  config.record_percentiles = true;
  config.threads = 1;
  const std::vector<ChaosCell> serial = chaos_sweep(config, pair).cells;
  config.threads = 4;
  const std::vector<ChaosCell> parallel = chaos_sweep(config, pair).cells;

  ASSERT_EQ(serial.size(), parallel.size());
  bool any_nonzero = false;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].scenario + " / " +
                 schemes::name(serial[i].scheme));
    // Bit-equality, not near-equality: same seed, same per-cell hub.
    EXPECT_EQ(serial[i].p50_fct_ms, parallel[i].p50_fct_ms);
    EXPECT_EQ(serial[i].p99_fct_ms, parallel[i].p99_fct_ms);
    EXPECT_EQ(serial[i].p999_fct_ms, parallel[i].p999_fct_ms);
    // Percentiles are ordered and bracket the median the summary computed.
    EXPECT_LE(serial[i].p50_fct_ms, serial[i].p99_fct_ms);
    EXPECT_LE(serial[i].p99_fct_ms, serial[i].p999_fct_ms);
    if (serial[i].p50_fct_ms > 0.0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero) << "percentile columns never filled";
}

TEST(ChaosMatrixTest, FaultCountersAttributeWhatEachScenarioInjects) {
  const std::vector<schemes::Scheme> one{schemes::Scheme::tcp};
  const std::vector<ChaosCell> cells = chaos_sweep(test_config(), one).cells;
  for (const ChaosCell& cell : cells) {
    SCOPED_TRACE(cell.scenario);
    if (cell.scenario == "clean") {
      EXPECT_EQ(cell.fault_drops, 0u);
      EXPECT_EQ(cell.corrupted_rejected, 0u);
      EXPECT_EQ(cell.duplicate_rejected, 0u);
    } else if (cell.scenario == "bursty-loss" || cell.scenario == "blackout" ||
               cell.scenario == "flap") {
      EXPECT_GT(cell.fault_drops, 0u);
    } else if (cell.scenario == "corrupt") {
      EXPECT_GT(cell.corrupted_rejected, 0u);
      EXPECT_EQ(cell.fault_drops, 0u);
    } else if (cell.scenario == "duplicate") {
      EXPECT_GT(cell.duplicate_rejected, 0u);
      EXPECT_EQ(cell.fault_drops, 0u);
    }
  }
}

#ifdef HALFBACK_AUDIT
TEST(ChaosMatrixTest, CleanCellMatchesARunWithoutTheChaosLayer) {
  // Configuring zero faults must not install an injector, and must leave
  // the run bit-identical (same trace hash) to a plain EmulabRunner run of
  // the same workload — the zero-cost-when-off guarantee at system level.
  const ChaosSweepConfig config = test_config();
  EmulabRunner::Config runner_config = config.runner;
  ASSERT_FALSE(runner_config.faults.any());
  EmulabRunner runner{runner_config};
  WorkloadPart part;
  part.scheme = schemes::Scheme::halfback;
  part.role = FlowRole::primary;
  for (std::size_t i = 0; i < config.flows_per_cell; ++i) {
    part.schedule.push_back(
        {config.arrival_spacing * static_cast<double>(i), config.flow_bytes});
  }
  const RunResult plain = runner.run({part});

  const std::vector<schemes::Scheme> one{schemes::Scheme::halfback};
  const std::vector<ChaosCell> cells = chaos_sweep(config, one).cells;
  ASSERT_FALSE(cells.empty());
  ASSERT_EQ(cells.front().scenario, "clean");
  EXPECT_EQ(cells.front().trace_hash, plain.trace_hash);
  EXPECT_EQ(plain.delivery.corrupted_rejected, 0u);
  EXPECT_EQ(plain.delivery.duplicate_rejected, 0u);
  EXPECT_EQ(plain.faults.packets_seen, 0u);  // no injector existed at all
}
#endif

TEST(ChaosMatrixTest, Rc3AdversarialCellDoesNotStormTheEventQueue) {
  // Regression: rc3 under the adversarial composite at seed 42 once ran
  // ~90M events (a retransmission loop kept rescheduling without
  // advancing next_sent_ past the scoreboard's delivered prefix). The fix
  // bounds the cell near its peers — measured 8,259 events after the fix
  // vs 7,316 for tcp. The run now executes under the production event
  // budget (a generous 100k ceiling, orders of magnitude over healthy
  // counts); a relapse trips the budget and the structured BudgetReport
  // names the storming timer class instead of a bare count assertion.
  const std::vector<ChaosScenario> catalog = chaos_catalog();
  const auto adversarial =
      std::find_if(catalog.begin(), catalog.end(), [](const ChaosScenario& s) {
        return s.name == "adversarial";
      });
  ASSERT_NE(adversarial, catalog.end());

  ChaosSweepConfig config = test_config();
  EmulabRunner::Config runner_config = config.runner;
  runner_config.seed = 42;
  runner_config.faults = adversarial->faults;
  runner_config.budget.max_events = 100'000;
  WorkloadPart part;
  part.scheme = schemes::Scheme::rc3;
  for (std::size_t i = 0; i < config.flows_per_cell; ++i) {
    part.schedule.push_back(
        {config.arrival_spacing * static_cast<double>(i), config.flow_bytes});
  }
  const RunResult result = EmulabRunner{runner_config}.run({part});
  EXPECT_EQ(result.budget_report.tripped, sim::BudgetTrip::none)
      << "event-count explosion: the rc3 retransmission storm is back\n"
      << result.budget_report.summary();
  EXPECT_EQ(result.unfinished_count(FlowRole::primary), 0u)
      << "rc3 flows failed to complete under the adversarial composite";
}

TEST(ChaosMatrixTest, ATightBudgetQuarantinesStormCellsDeterministically) {
  // Synthetic storm: pick an event budget that splits the catalog — the
  // lighter half of the tcp column fits, the heavier half trips. The
  // supervised sweep must retry and quarantine the heavy cells, keep the
  // light cells bit-identical to an unbudgeted sweep, and produce a
  // byte-identical quarantine manifest whether it runs on 1 worker or 4.
  const std::vector<schemes::Scheme> one{schemes::Scheme::tcp};
  ChaosSweepConfig baseline = test_config();
  baseline.verify_determinism = false;
  const ChaosSweepResult healthy = chaos_sweep(baseline, one);
  ASSERT_TRUE(healthy.complete());

  std::vector<std::uint64_t> counts;
  for (const ChaosCell& cell : healthy.cells) {
    counts.push_back(cell.events_executed);
  }
  std::sort(counts.begin(), counts.end());
  const std::uint64_t threshold = counts[counts.size() / 2];
  ASSERT_GT(counts.back(), threshold) << "catalog too uniform to split";

  ChaosSweepConfig tight = baseline;
  tight.cell_budget.max_events = threshold;
  tight.retry.max_attempts = 2;
  const auto run = [&](unsigned threads) {
    ChaosSweepConfig c = tight;
    c.threads = threads;
    return chaos_sweep(c, one);
  };
  const ChaosSweepResult serial = run(1);
  const ChaosSweepResult wide = run(4);

  // Worker count never changes the manifest bytes or the aggregates.
  EXPECT_EQ(telemetry::quarantine_json(serial.supervision.manifest),
            telemetry::quarantine_json(wide.supervision.manifest));
  EXPECT_FALSE(serial.complete());
  EXPECT_GT(serial.supervision.manifest.quarantined, 0u);
  EXPECT_LT(serial.supervision.manifest.quarantined, serial.cells.size());
  EXPECT_EQ(serial.supervision.manifest.attempted, serial.cells.size());
  EXPECT_EQ(serial.supervision.manifest.completed +
                serial.supervision.manifest.quarantined,
            serial.cells.size());
  // A deterministic storm fails every retry the same way: each quarantined
  // cell burned all its attempts on an event_count trip.
  EXPECT_EQ(serial.supervision.manifest.retries,
            serial.supervision.manifest.quarantined);
  for (const telemetry::QuarantineRecord& record :
       serial.supervision.manifest.records) {
    SCOPED_TRACE(record.cell);
    EXPECT_EQ(record.reason, "event_count");
    EXPECT_EQ(record.attempts, 2u);
    EXPECT_FALSE(record.detail.empty());
  }

  ASSERT_EQ(serial.cells.size(), healthy.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const ChaosCell& cell = serial.cells[i];
    SCOPED_TRACE(cell.scenario);
    if (cell.quarantined) {
      EXPECT_EQ(cell.trip, sim::BudgetTrip::event_count);
      EXPECT_EQ(cell.attempts, 2u);
    } else {
      // Healthy cells are bit-identical to the unsupervised sweep.
      EXPECT_EQ(cell.trip, sim::BudgetTrip::none);
      EXPECT_EQ(cell.attempts, 1u);
      EXPECT_EQ(cell.events_executed, healthy.cells[i].events_executed);
#ifdef HALFBACK_AUDIT
      EXPECT_EQ(cell.trace_hash, healthy.cells[i].trace_hash);
#endif
    }
  }
}

TEST(ChaosMatrixTest, DifferentSeedsProduceDifferentFaultPatterns) {
  ChaosSweepConfig config = test_config();
  config.verify_determinism = false;
  EmulabRunner::Config a = config.runner;
  a.seed = 1;
  EmulabRunner::Config b = config.runner;
  b.seed = 2;
  for (EmulabRunner::Config* rc : {&a, &b}) {
    rc->faults.gilbert_elliott.p_good_to_bad = 0.02;
    rc->faults.gilbert_elliott.loss_good = 0.01;
  }
  WorkloadPart part;
  part.scheme = schemes::Scheme::tcp;
  part.schedule.push_back({sim::Time::zero(), 100'000});
  RunResult ra = EmulabRunner{a}.run({part});
  RunResult rb = EmulabRunner{b}.run({part});
#ifdef HALFBACK_AUDIT
  EXPECT_NE(ra.trace_hash, rb.trace_hash);
#else
  EXPECT_NE(ra.faults.burst_drops, rb.faults.burst_drops);
#endif
}

}  // namespace
}  // namespace halfback::exp
