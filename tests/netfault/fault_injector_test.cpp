// FaultInjector decision semantics: per-model attribution in
// InjectorStats, decision composition order (drops short-circuit the
// rest), validation at construction, and bit-exact determinism of the
// decision sequence for a fixed (config, seed).
#include "netfault/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/packet.h"
#include "sim/random.h"

namespace halfback::netfault {
namespace {

using sim::Time;
using namespace halfback::sim::literals;

net::Packet make_packet(std::uint64_t uid = 1) {
  net::Packet p;
  p.flow = 1;
  p.type = net::PacketType::data;
  p.size_bytes = 1500;
  p.uid = uid;
  return p;
}

TEST(FaultInjectorTest, ValidatesConfigAtConstruction) {
  FaultConfig config;
  config.flap.mean_up = 1_s;  // half-configured flap
  EXPECT_THROW(FaultInjector(config, sim::Random{1}), std::invalid_argument);
}

TEST(FaultInjectorTest, EmptyConfigLeavesEveryPacketAlone) {
  FaultInjector injector{FaultConfig{}, sim::Random{1}};
  for (int i = 0; i < 100; ++i) {
    net::FaultDecision d = injector.on_transmit(make_packet(), 1_ms);
    EXPECT_FALSE(d.drop);
    EXPECT_FALSE(d.corrupt);
    EXPECT_EQ(d.duplicates, 0u);
    EXPECT_TRUE(d.extra_delay.is_zero());
  }
  EXPECT_EQ(injector.stats().packets_seen, 100u);
  EXPECT_EQ(injector.stats().total_drops(), 0u);
}

TEST(FaultInjectorTest, OutageWindowDropsAndAttributes) {
  FaultConfig config;
  config.outages.emplace_back(1_s, 1_s);
  FaultInjector injector{config, sim::Random{1}};
  EXPECT_FALSE(injector.on_transmit(make_packet(), 500_ms).drop);
  EXPECT_TRUE(injector.on_transmit(make_packet(), 1500_ms).drop);
  EXPECT_FALSE(injector.on_transmit(make_packet(), 2500_ms).drop);
  EXPECT_EQ(injector.stats().outage_drops, 1u);
  EXPECT_EQ(injector.stats().total_drops(), 1u);
}

TEST(FaultInjectorTest, CertainCorruptionMarksEveryPacket) {
  FaultConfig config;
  config.corrupt.probability = 1.0;
  FaultInjector injector{config, sim::Random{1}};
  for (int i = 0; i < 50; ++i) {
    net::FaultDecision d = injector.on_transmit(make_packet(), 1_ms);
    EXPECT_FALSE(d.drop);
    EXPECT_TRUE(d.corrupt);
  }
  EXPECT_EQ(injector.stats().corrupted, 50u);
}

TEST(FaultInjectorTest, DuplicationBoundsAndSpacing) {
  FaultConfig config;
  config.duplicate.probability = 1.0;
  config.duplicate.max_copies = 3;
  config.duplicate.spacing = 2_ms;
  FaultInjector injector{config, sim::Random{1}};
  for (int i = 0; i < 200; ++i) {
    net::FaultDecision d = injector.on_transmit(make_packet(), 1_ms);
    ASSERT_GE(d.duplicates, 1u);
    ASSERT_LE(d.duplicates, 3u);
    EXPECT_EQ(d.duplicate_spacing, 2_ms);
  }
  EXPECT_GE(injector.stats().duplicated, 200u);
}

TEST(FaultInjectorTest, ReorderJitterStaysWithinBound) {
  FaultConfig config;
  config.reorder.probability = 1.0;
  config.reorder.max_extra_delay = 10_ms;
  FaultInjector injector{config, sim::Random{1}};
  for (int i = 0; i < 200; ++i) {
    net::FaultDecision d = injector.on_transmit(make_packet(), 1_ms);
    EXPECT_GE(d.extra_delay, Time::zero());
    EXPECT_LE(d.extra_delay, 10_ms);
  }
  EXPECT_EQ(injector.stats().jittered, 200u);
}

TEST(FaultInjectorTest, DelaySpikeAddsFullMagnitude) {
  FaultConfig config;
  config.delay_spike.probability = 1.0;
  config.delay_spike.magnitude = 150_ms;
  FaultInjector injector{config, sim::Random{1}};
  net::FaultDecision d = injector.on_transmit(make_packet(), 1_ms);
  EXPECT_EQ(d.extra_delay, 150_ms);
  EXPECT_EQ(injector.stats().delay_spikes, 1u);
}

TEST(FaultInjectorTest, DropShortCircuitsTheOtherModels) {
  // Inside an outage the packet is dropped before corruption/duplication
  // are even consulted — their counters stay zero even at probability 1.
  FaultConfig config;
  config.outages.emplace_back(Time::zero(), 10_s);
  config.corrupt.probability = 1.0;
  config.duplicate.probability = 1.0;
  FaultInjector injector{config, sim::Random{1}};
  for (int i = 0; i < 20; ++i) {
    net::FaultDecision d = injector.on_transmit(make_packet(), 1_ms);
    EXPECT_TRUE(d.drop);
    EXPECT_FALSE(d.corrupt);
    EXPECT_EQ(d.duplicates, 0u);
  }
  EXPECT_EQ(injector.stats().outage_drops, 20u);
  EXPECT_EQ(injector.stats().corrupted, 0u);
  EXPECT_EQ(injector.stats().duplicated, 0u);
}

TEST(FaultInjectorTest, SameSeedSameDecisionSequence) {
  FaultConfig config;
  config.gilbert_elliott.p_good_to_bad = 0.02;
  config.gilbert_elliott.loss_good = 0.01;
  config.reorder.probability = 0.3;
  config.reorder.max_extra_delay = 5_ms;
  config.duplicate.probability = 0.2;
  config.duplicate.max_copies = 2;
  config.corrupt.probability = 0.1;
  config.delay_spike.probability = 0.05;
  config.delay_spike.magnitude = 20_ms;
  config.flap.mean_up = 500_ms;
  config.flap.mean_down = 50_ms;

  FaultInjector a{config, sim::Random{99}};
  FaultInjector b{config, sim::Random{99}};
  for (int i = 0; i < 20'000; ++i) {
    const Time now = Time::microseconds(100) * static_cast<double>(i);
    net::FaultDecision da = a.on_transmit(make_packet(i), now);
    net::FaultDecision db = b.on_transmit(make_packet(i), now);
    ASSERT_EQ(da.drop, db.drop);
    ASSERT_EQ(da.corrupt, db.corrupt);
    ASSERT_EQ(da.duplicates, db.duplicates);
    ASSERT_EQ(da.extra_delay, db.extra_delay);
    ASSERT_EQ(da.duplicate_spacing, db.duplicate_spacing);
  }
  EXPECT_EQ(a.stats().total_drops(), b.stats().total_drops());
  EXPECT_EQ(a.stats().corrupted, b.stats().corrupted);
  EXPECT_EQ(a.stats().duplicated, b.stats().duplicated);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultConfig config;
  config.corrupt.probability = 0.5;
  FaultInjector a{config, sim::Random{1}};
  FaultInjector b{config, sim::Random{2}};
  int differing = 0;
  for (int i = 0; i < 1000; ++i) {
    const Time now = Time::microseconds(100) * static_cast<double>(i);
    if (a.on_transmit(make_packet(i), now).corrupt !=
        b.on_transmit(make_packet(i), now).corrupt) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

}  // namespace
}  // namespace halfback::netfault
