// Unit coverage for the netfault value types and per-link fault models:
// construction-time validation (the net::LossRate pattern), Gilbert–Elliott
// burstiness, outage schedules, link flapping — and the determinism
// contract: same config + same seed ⇒ identical decision sequence.
#include "netfault/fault_models.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "netfault/fault_config.h"
#include "sim/random.h"

namespace halfback::netfault {
namespace {

using sim::Time;
using namespace halfback::sim::literals;

// --- Probability ------------------------------------------------------------

TEST(ProbabilityTest, AcceptsTheClosedUnitInterval) {
  EXPECT_EQ(Probability{}.value(), 0.0);
  EXPECT_EQ(Probability{0.0}.value(), 0.0);
  EXPECT_EQ(Probability{0.25}.value(), 0.25);
  EXPECT_EQ(Probability{1.0}.value(), 1.0);
  EXPECT_TRUE(Probability{0.0}.is_zero());
  EXPECT_FALSE(Probability{1e-9}.is_zero());
}

TEST(ProbabilityTest, RejectsOutOfRangeAndNaN) {
  EXPECT_THROW(Probability{-0.01}, std::invalid_argument);
  EXPECT_THROW(Probability{1.01}, std::invalid_argument);
  EXPECT_THROW(Probability{std::numeric_limits<double>::quiet_NaN()},
               std::invalid_argument);
  EXPECT_THROW(Probability{std::numeric_limits<double>::infinity()},
               std::invalid_argument);
}

// --- TimeWindow -------------------------------------------------------------

TEST(TimeWindowTest, HalfOpenContainment) {
  TimeWindow w{1_s, 2_s};
  EXPECT_EQ(w.start(), 1_s);
  EXPECT_EQ(w.end(), 3_s);
  EXPECT_FALSE(w.contains(999_ms));
  EXPECT_TRUE(w.contains(1_s));
  EXPECT_TRUE(w.contains(2999_ms));
  EXPECT_FALSE(w.contains(3_s));
}

TEST(TimeWindowTest, RejectsNegativeStartAndEmptyDuration) {
  EXPECT_THROW(TimeWindow(Time::milliseconds(-1), 1_s), std::invalid_argument);
  EXPECT_THROW(TimeWindow(1_s, Time::zero()), std::invalid_argument);
  EXPECT_THROW(TimeWindow(1_s, Time::milliseconds(-1)), std::invalid_argument);
}

// --- FaultConfig::validate --------------------------------------------------

TEST(FaultConfigTest, DefaultIsEmptyAndValid) {
  FaultConfig config;
  EXPECT_FALSE(config.any());
  EXPECT_NO_THROW(validate(config));
}

TEST(FaultConfigTest, EachModelFlipsAny) {
  {
    FaultConfig c;
    c.gilbert_elliott.p_good_to_bad = 0.1;
    EXPECT_TRUE(c.any());  // bad-state loss defaults to 0.5
  }
  {
    FaultConfig c;
    c.reorder.probability = 0.1;
    c.reorder.max_extra_delay = 1_ms;
    EXPECT_TRUE(c.any());
  }
  {
    FaultConfig c;
    c.corrupt.probability = 0.1;
    EXPECT_TRUE(c.any());
  }
  {
    FaultConfig c;
    c.outages.emplace_back(1_s, 1_s);
    EXPECT_TRUE(c.any());
  }
}

TEST(FaultConfigTest, RejectsHalfConfiguredFlap) {
  FaultConfig config;
  config.flap.mean_up = 1_s;  // mean_down left zero
  EXPECT_THROW(validate(config), std::invalid_argument);
  config.flap.mean_up = Time::zero();
  config.flap.mean_down = 1_s;
  EXPECT_THROW(validate(config), std::invalid_argument);
  config.flap.mean_up = 1_s;
  EXPECT_NO_THROW(validate(config));
}

TEST(FaultConfigTest, RejectsNegativeDurations) {
  {
    FaultConfig c;
    c.reorder.probability = 0.1;
    c.reorder.max_extra_delay = Time::milliseconds(-1);
    EXPECT_THROW(validate(c), std::invalid_argument);
  }
  {
    FaultConfig c;
    c.duplicate.probability = 0.1;
    c.duplicate.spacing = Time::milliseconds(-1);
    EXPECT_THROW(validate(c), std::invalid_argument);
  }
  {
    FaultConfig c;
    c.delay_spike.probability = 0.1;
    c.delay_spike.magnitude = Time::milliseconds(-1);
    EXPECT_THROW(validate(c), std::invalid_argument);
  }
}

TEST(FaultConfigTest, RejectsUnsortedOrOverlappingOutages) {
  {
    FaultConfig c;
    c.outages.emplace_back(5_s, 1_s);
    c.outages.emplace_back(1_s, 1_s);  // unsorted
    EXPECT_THROW(validate(c), std::invalid_argument);
  }
  {
    FaultConfig c;
    c.outages.emplace_back(1_s, 2_s);   // [1, 3)
    c.outages.emplace_back(2_s, 1_s);   // overlaps
    EXPECT_THROW(validate(c), std::invalid_argument);
  }
  {
    FaultConfig c;
    c.outages.emplace_back(1_s, 1_s);   // [1, 2)
    c.outages.emplace_back(2_s, 1_s);   // back-to-back is fine (half-open)
    EXPECT_NO_THROW(validate(c));
  }
}

// --- GilbertElliott ---------------------------------------------------------

TEST(GilbertElliottTest, NeverDropsWhenLossless) {
  GilbertElliottConfig config;  // all zero except defaults gated off
  config.p_bad_to_good = 0.3;
  GilbertElliott ge{config, sim::Random{7}};
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(ge.should_drop());
  EXPECT_FALSE(ge.in_bad_state());
}

TEST(GilbertElliottTest, AlwaysDropsAtUnitLoss) {
  GilbertElliottConfig config;
  config.loss_good = 1.0;
  config.loss_bad = 1.0;
  GilbertElliott ge{config, sim::Random{7}};
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ge.should_drop());
}

TEST(GilbertElliottTest, LossesAreBursty) {
  // Loss only in the Bad state: drops must come in runs whose length
  // reflects 1/p_bad_to_good, not as isolated i.i.d. events.
  GilbertElliottConfig config;
  config.p_good_to_bad = 0.01;
  config.p_bad_to_good = 0.25;
  config.loss_good = 0.0;
  config.loss_bad = 1.0;
  GilbertElliott ge{config, sim::Random{42}};
  int drops = 0;
  int burst_starts = 0;
  bool in_burst = false;
  for (int i = 0; i < 100'000; ++i) {
    if (ge.should_drop()) {
      ++drops;
      if (!in_burst) ++burst_starts;
      in_burst = true;
    } else {
      in_burst = false;
    }
  }
  ASSERT_GT(drops, 0);
  ASSERT_GT(burst_starts, 0);
  const double mean_burst = static_cast<double>(drops) / burst_starts;
  // Expected residence in Bad is 1/0.25 = 4 consecutive packets.
  EXPECT_GT(mean_burst, 2.0);
  EXPECT_LT(mean_burst, 8.0);
  // Overall loss rate ≈ stationary Bad share = 0.01/(0.01+0.25) ≈ 3.8%.
  EXPECT_NEAR(drops / 100'000.0, 0.038, 0.02);
}

TEST(GilbertElliottTest, SameSeedSameSequence) {
  GilbertElliottConfig config;
  config.p_good_to_bad = 0.05;
  config.p_bad_to_good = 0.3;
  config.loss_good = 0.01;
  GilbertElliott a{config, sim::Random{9}};
  GilbertElliott b{config, sim::Random{9}};
  for (int i = 0; i < 5000; ++i) ASSERT_EQ(a.should_drop(), b.should_drop());
}

// --- OutageSchedule ---------------------------------------------------------

TEST(OutageScheduleTest, MonotoneQueriesAcrossWindows) {
  std::vector<TimeWindow> windows;
  windows.emplace_back(1_s, 1_s);   // [1, 2)
  windows.emplace_back(5_s, 2_s);   // [5, 7)
  OutageSchedule schedule{windows};
  EXPECT_FALSE(schedule.empty());
  EXPECT_FALSE(schedule.is_down(Time::zero()));
  EXPECT_TRUE(schedule.is_down(1_s));
  EXPECT_TRUE(schedule.is_down(1500_ms));
  EXPECT_FALSE(schedule.is_down(2_s));
  EXPECT_FALSE(schedule.is_down(4999_ms));
  EXPECT_TRUE(schedule.is_down(6999_ms));
  EXPECT_FALSE(schedule.is_down(7_s));
  EXPECT_FALSE(schedule.is_down(100_s));
}

TEST(OutageScheduleTest, EmptyScheduleIsAlwaysUp) {
  OutageSchedule schedule{{}};
  EXPECT_TRUE(schedule.empty());
  EXPECT_FALSE(schedule.is_down(3_s));
}

TEST(OutageScheduleTest, RejectsOverlap) {
  std::vector<TimeWindow> windows;
  windows.emplace_back(1_s, 3_s);
  windows.emplace_back(2_s, 1_s);
  EXPECT_THROW(OutageSchedule{windows}, std::invalid_argument);
}

// --- LinkFlap ---------------------------------------------------------------

TEST(LinkFlapTest, StartsUpAndEventuallyFlaps) {
  FlapConfig config;
  config.mean_up = 100_ms;
  config.mean_down = 100_ms;
  LinkFlap flap{config, sim::Random{3}};
  EXPECT_FALSE(flap.is_down(Time::zero()));  // link starts in an up phase
  int down = 0;
  int up = 0;
  for (int i = 0; i < 10'000; ++i) {
    // Sample every 10 ms: both phases must show up, roughly evenly given
    // equal means.
    (flap.is_down(Time::milliseconds(10) * static_cast<double>(i)) ? down : up)++;
  }
  EXPECT_GT(down, 2'000);
  EXPECT_GT(up, 2'000);
}

TEST(LinkFlapTest, SameSeedSameStateTrajectory) {
  FlapConfig config;
  config.mean_up = 50_ms;
  config.mean_down = 20_ms;
  LinkFlap a{config, sim::Random{11}};
  LinkFlap b{config, sim::Random{11}};
  for (int i = 0; i < 10'000; ++i) {
    const Time t = Time::milliseconds(1) * static_cast<double>(i);
    ASSERT_EQ(a.is_down(t), b.is_down(t));
  }
}

TEST(LinkFlapTest, RejectsDisabledConfig) {
  EXPECT_THROW(LinkFlap(FlapConfig{}, sim::Random{1}), std::invalid_argument);
}

}  // namespace
}  // namespace halfback::netfault
