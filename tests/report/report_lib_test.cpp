// hbreport's reader, driven in-process. The round-trip tests feed it
// strings produced by the real exporters (telemetry/export.h) so the
// reader and writers cannot drift apart silently.
#include "report_lib.h"

#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/export.h"
#include "telemetry/metric.h"
#include "telemetry/registry.h"
#include "telemetry/span.h"

namespace halfback::report {
namespace {

TEST(ParseJson, HandlesTheExportersVocabulary) {
  std::string error;
  const std::optional<JsonValue> v = parse_json(
      R"({"name":"transport.fct_ns","count":3,"neg":-1.5,"exp":2e3,)"
      R"("flag":true,"none":null,"buckets":[[1,2,3]],"s":"a\"b\\c	"})",
      &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->string_or("name", ""), "transport.fct_ns");
  EXPECT_EQ(v->number_or("count", 0.0), 3.0);
  EXPECT_EQ(v->number_or("neg", 0.0), -1.5);
  EXPECT_EQ(v->number_or("exp", 0.0), 2000.0);
  EXPECT_TRUE(v->bool_or("flag", false));
  const JsonValue* buckets = v->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->items.size(), 1u);
  EXPECT_EQ(buckets->items[0].items[1].number_value, 2.0);
  EXPECT_EQ(v->string_or("s", ""), "a\"b\\c\t");
  EXPECT_EQ(v->number_or("missing", 42.0), 42.0);
}

TEST(ParseJson, RejectsMalformedInput) {
  EXPECT_FALSE(parse_json("{\"a\":").has_value());
  EXPECT_FALSE(parse_json("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(parse_json("{'a':1}").has_value());
  std::string error;
  EXPECT_FALSE(parse_json("[1,]", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(LoadMetrics, RoundTripsTheRealExporter) {
  telemetry::MetricRegistry registry;
  telemetry::Counter* flows = registry.counter(
      "transport.flows_completed", "flows fully acked",
      telemetry::Unit::flows);
  flows->add(8);
  telemetry::Histogram* fct = registry.histogram(
      "transport.fct_ns", "flow completion times",
      telemetry::Unit::nanoseconds);
  for (int i = 1; i <= 100; ++i) fct->record(i * 1'000'000);  // 1..100 ms

  std::ostringstream out;
  telemetry::write_metrics_jsonl(out, registry);
  std::istringstream in{out.str()};
  const MetricsDigest digest = load_metrics(in);

  EXPECT_TRUE(digest.errors.empty());
  ASSERT_EQ(digest.histograms.size(), 1u);
  const HistogramDigest& h = digest.histograms[0];
  EXPECT_EQ(h.name, "transport.fct_ns");
  EXPECT_EQ(h.count, 100u);
  // The digest carries the exporter's exact value_at_quantile results.
  EXPECT_EQ(h.p50, static_cast<double>(fct->value_at_quantile(0.5)));
  EXPECT_EQ(h.p999, static_cast<double>(fct->value_at_quantile(0.999)));
  ASSERT_EQ(digest.scalars.size(), 1u);
  EXPECT_EQ(digest.scalars[0].first, "transport.flows_completed");
  EXPECT_EQ(digest.scalars[0].second, 8.0);
}

TEST(LoadSpans, RoundTripsTheRealExporter) {
  telemetry::SpanRecorder spans;
  const std::uint32_t root = spans.open_span(
      5, telemetry::SpanKind::flow, 0, sim::Time::milliseconds(1));
  const std::uint32_t hs = spans.open_span(
      5, telemetry::SpanKind::handshake, root, sim::Time::milliseconds(1));
  spans.close_span(hs, sim::Time::milliseconds(3));
  // root stays open: the exporter clamps, the reader keeps the flag.

  std::ostringstream out;
  telemetry::write_spans_jsonl(out, spans, sim::Time::milliseconds(10));
  std::istringstream in{out.str()};
  const SpanLog log = load_spans(in);

  EXPECT_TRUE(log.errors.empty());
  EXPECT_EQ(log.dropped, 0u);
  ASSERT_EQ(log.spans.size(), 2u);
  EXPECT_EQ(log.spans[0].kind, "flow");
  EXPECT_TRUE(log.spans[0].open);
  EXPECT_EQ(log.spans[0].end_ns, 10'000'000);  // clamped to export end
  EXPECT_EQ(log.spans[1].kind, "handshake");
  EXPECT_EQ(log.spans[1].parent, log.spans[0].id);
  EXPECT_EQ(log.spans[1].begin_ns, 1'000'000);
  EXPECT_EQ(log.spans[1].end_ns, 3'000'000);
}

TEST(PercentileTable, ConvertsNanosecondHistogramsToMilliseconds) {
  HistogramDigest fct;
  fct.name = "transport.fct_ns";
  fct.count = 100;
  fct.p50 = 5e6;
  fct.p90 = 9e6;
  fct.p99 = 20e6;
  fct.p999 = 80e6;
  fct.max = 100e6;
  HistogramDigest not_latency;
  not_latency.name = "transport.window_segments";  // no _ns suffix: skipped
  const std::string text =
      percentile_table({fct, not_latency}).to_string();
  EXPECT_NE(text.find("transport.fct_ns"), std::string::npos);
  EXPECT_NE(text.find("5.000"), std::string::npos);    // p50 ms
  EXPECT_NE(text.find("80.000"), std::string::npos);   // p99.9 ms
  EXPECT_EQ(text.find("window_segments"), std::string::npos);
}

TEST(PhaseTable, AttributesTimePerKindAgainstFlowTotal) {
  std::vector<SpanRow> spans;
  SpanRow flow;
  flow.id = 1;
  flow.kind = "flow";
  flow.begin_ns = 0;
  flow.end_ns = 10'000'000;  // 10 ms of flow time
  SpanRow handshake;
  handshake.id = 2;
  handshake.parent = 1;
  handshake.kind = "handshake";
  handshake.begin_ns = 0;
  handshake.end_ns = 2'000'000;
  SpanRow rto_a;
  rto_a.kind = "rto_recovery";
  rto_a.begin_ns = 3'000'000;
  rto_a.end_ns = 4'000'000;
  SpanRow rto_b;
  rto_b.kind = "rto_recovery";
  rto_b.begin_ns = 6'000'000;
  rto_b.end_ns = 8'000'000;
  spans = {flow, handshake, rto_a, rto_b};

  const std::string text = phase_table(spans).to_string();
  EXPECT_NE(text.find("handshake"), std::string::npos);
  EXPECT_NE(text.find("20.0%"), std::string::npos);   // 2 of 10 ms
  EXPECT_NE(text.find("rto_recovery"), std::string::npos);
  EXPECT_NE(text.find("30.0%"), std::string::npos);   // 3 of 10 ms, 2 episodes
  // The root is the baseline, not a row: "flow" appears only in the
  // "share of flow time" header column.
  EXPECT_EQ(text.find("flow"), text.rfind("flow"));
}

TEST(LoadSpans, KeepsGoingPastAMalformedLine) {
  std::istringstream in{
      "{\"span\":1,\"kind\":\"flow\",\"begin_ns\":0,\"end_ns\":5}\n"
      "not json\n"
      "{\"span_count\":1,\"dropped\":3}\n"};
  const SpanLog log = load_spans(in);
  ASSERT_EQ(log.spans.size(), 1u);
  EXPECT_EQ(log.dropped, 3u);
  ASSERT_EQ(log.errors.size(), 1u);
  EXPECT_NE(log.errors[0].find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace halfback::report
