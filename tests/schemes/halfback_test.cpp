#include "schemes/halfback.h"

#include <gtest/gtest.h>

#include "support/dumbbell_fixture.h"

namespace halfback::schemes {
namespace {

using halfback::testing::DumbbellFixture;
using transport::SenderBase;
using namespace halfback::sim::literals;

TEST(HalfbackTest, CleanPathFinishesInAboutThreeRtts) {
  // 1 RTT handshake + 1 RTT pacing spread + ~1 RTT for the tail ACK.
  DumbbellFixture f;
  SenderBase& s = f.start(Scheme::halfback, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_LT(s.record().fct(), 200_ms);
  EXPECT_GT(s.record().fct(), 170_ms);
  EXPECT_EQ(s.record().timeouts, 0u);
  EXPECT_EQ(s.record().normal_retx, 0u);
}

TEST(HalfbackTest, RoprRetransmitsAboutHalfTheFlow) {
  // §3.2: ACKs move forward while ROPR moves backward, meeting in the
  // middle — "ROPR typically retransmits only 50% of the short flow".
  DumbbellFixture f;
  SenderBase& s = f.start(Scheme::halfback, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  const double frac = static_cast<double>(s.record().proactive_retx) /
                      s.record().total_segments;
  EXPECT_GT(frac, 0.35);
  EXPECT_LT(frac, 0.6);
}

TEST(HalfbackTest, ProactiveCopiesAreNotNormalRetransmissions) {
  DumbbellFixture f;
  SenderBase& s = f.start(Scheme::halfback, 100'000);
  f.sim.run();
  EXPECT_EQ(s.record().normal_retx, 0u);
  EXPECT_GT(s.record().proactive_retx, 0u);
}

TEST(HalfbackTest, ReceiverSeesDuplicatesOnCleanPath) {
  // Without loss, every ROPR copy is a duplicate at the receiver.
  DumbbellFixture f;
  SenderBase& s = f.start(Scheme::halfback, 100'000);
  f.sim.run();
  transport::Receiver* r = f.receiver_for(s.record().flow);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->stats().complete);
  EXPECT_EQ(r->stats().unique_segments, 70u);
  EXPECT_EQ(r->stats().duplicate_segments, s.record().proactive_retx);
}

TEST(HalfbackTest, Fig3TailLossRecoveredByRoprWithoutTimeout) {
  // The §3.4 walkthrough: a 10-segment flow loses one packet near the tail
  // on its first transmission; the ROPR copy delivers it before any
  // timeout and without waiting for normal loss detection.
  DumbbellFixture f;
  bool dropped = false;
  f.dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
    if (!dropped && p.type == net::PacketType::data && p.seq == 8 && !p.is_retx) {
      dropped = true;
      return false;
    }
    return true;
  });
  SenderBase& s = f.start(Scheme::halfback, 10 * net::kSegmentPayloadBytes);
  f.sim.run();
  ASSERT_TRUE(dropped);
  ASSERT_TRUE(s.complete());
  EXPECT_EQ(s.record().timeouts, 0u);
  // FCT stays within ~2 data RTTs + handshake despite the loss.
  EXPECT_LT(s.record().fct(), 250_ms);
}

TEST(HalfbackTest, TailLossFasterThanVanillaTcp) {
  auto run_with_tail_loss = [](Scheme scheme) {
    DumbbellFixture f;
    bool dropped = false;
    f.dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
      if (!dropped && p.type == net::PacketType::data && p.seq == 9 && !p.is_retx) {
        dropped = true;
        return false;
      }
      return true;
    });
    SenderBase& s = f.start(scheme, 10 * net::kSegmentPayloadBytes);
    f.sim.run();
    EXPECT_TRUE(s.complete());
    return s.record().fct();
  };
  // The very last segment lost: TCP has no dupACKs at all and must RTO.
  EXPECT_LT(run_with_tail_loss(Scheme::halfback) + 50_ms,
            run_with_tail_loss(Scheme::tcp));
}

TEST(HalfbackTest, SmallBufferBeatsJumpStart) {
  // Fig. 10: with small router buffers Halfback achieves up to 45% lower
  // FCT than JumpStart thanks to ROPR's paced, proactive recovery. The
  // pacing rate (100 KB / 60 ms ~ 13.9 Mbps) must exceed the bottleneck for
  // the paced batch to overflow, so use a 10 Mbps bottleneck.
  net::DumbbellConfig config;
  config.bottleneck_rate = sim::DataRate::megabits_per_second(10);
  config.bottleneck_buffer_bytes = 15'000;

  DumbbellFixture fh{config};
  SenderBase& h = fh.start(Scheme::halfback, 100'000);
  fh.sim.run();

  DumbbellFixture fj{config};
  SenderBase& j = fj.start(Scheme::jumpstart, 100'000);
  fj.sim.run();

  ASSERT_TRUE(h.complete());
  ASSERT_TRUE(j.complete());
  EXPECT_LT(h.record().fct(), j.record().fct());
}

TEST(HalfbackTest, FallbackTransmitsLongFlows) {
  // Flow of 400 KB >> the 141 KB pacing threshold: Pacing+ROPR cover the
  // first 97 segments, the rest goes via the TCP fallback (§3.3).
  net::DumbbellConfig config;
  config.bottleneck_buffer_bytes = 200'000;
  DumbbellFixture f{config};
  SenderBase& s = f.start(Scheme::halfback, 400'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  transport::Receiver* r = f.receiver_for(s.record().flow);
  EXPECT_TRUE(r->stats().complete);
  EXPECT_EQ(r->stats().unique_segments, s.record().total_segments);
  // Proactive copies only cover the paced batch.
  EXPECT_LE(s.record().proactive_retx, 97u);
}

TEST(HalfbackTest, ForwardAblationCompletesButWastesCopies) {
  DumbbellFixture f;
  SenderBase& s = f.start(Scheme::halfback_forward, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_EQ(s.record().scheme, "halfback-forward");
  EXPECT_GT(s.record().proactive_retx, 0u);
}

TEST(HalfbackTest, BurstAblationRetransmitsNearlyEverything) {
  DumbbellFixture f;
  SenderBase& s = f.start(Scheme::halfback_burst, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  // At line rate the ACK frontier barely moves during the burst, so almost
  // the whole batch is duplicated (~100% overhead vs Halfback's ~50%).
  EXPECT_GT(s.record().proactive_retx, 55u);
}

TEST(HalfbackTest, PacingRespectsThresholdConfig) {
  DumbbellFixture f;
  f.context.halfback_config.pacing_threshold_segments = 20;
  SenderBase& s = f.start(Scheme::halfback, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_LE(s.record().proactive_retx, 20u);
}

TEST(HalfbackTest, InitialBurstRefinementSpeedsUpTinyFlows) {
  // §4.2.4: "send a first batch of data as a burst ... before Halfback's
  // Pacing Phase" to fix the small-flow region.
  DumbbellFixture paced;
  SenderBase& slow = paced.start(Scheme::halfback, 10'000);
  paced.sim.run();

  DumbbellFixture burst;
  burst.context.halfback_config.initial_burst_segments = 10;
  SenderBase& fast = burst.start(Scheme::halfback, 10'000);
  burst.sim.run();

  ASSERT_TRUE(slow.complete());
  ASSERT_TRUE(fast.complete());
  // 7 segments burst in one window: ~2 RTTs instead of ~3.
  EXPECT_LT(fast.record().fct() + 30_ms, slow.record().fct());
  EXPECT_LT(fast.record().fct(), 135_ms);
}

TEST(HalfbackTest, InitialBurstStillPacesLargeFlows) {
  DumbbellFixture f;
  f.context.halfback_config.initial_burst_segments = 10;
  SenderBase& s = f.start(Scheme::halfback, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  // ROPR still runs over the whole batch.
  EXPECT_GT(s.record().proactive_retx, 20u);
  EXPECT_EQ(s.record().timeouts, 0u);
}

TEST(HalfbackTest, CopiesPerAckRatioTunesOverhead) {
  // §5: "instead of sending one retransmission for each ACK, we could send
  // two retransmissions for every three ACKs" — less proactive bandwidth.
  DumbbellFixture full;
  SenderBase& one_per_ack = full.start(Scheme::halfback, 100'000);
  full.sim.run();

  DumbbellFixture tuned;
  tuned.context.halfback_config.copies_per_ack = 2.0 / 3.0;
  SenderBase& two_per_three = tuned.start(Scheme::halfback, 100'000);
  tuned.sim.run();

  ASSERT_TRUE(one_per_ack.complete());
  ASSERT_TRUE(two_per_three.complete());
  EXPECT_LT(two_per_three.record().proactive_retx,
            one_per_ack.record().proactive_retx);
  // The meet-in-the-middle algebra: frontier k = N - (2/3)k at the meeting
  // point, so copies ~ 0.4 N instead of 0.5 N.
  const double frac = static_cast<double>(two_per_three.record().proactive_retx) /
                      two_per_three.record().total_segments;
  EXPECT_GT(frac, 0.3);
  EXPECT_LT(frac, 0.47);
}

TEST(HalfbackTest, HistoryThresholdAdaptsToSlowPaths) {
  // §3.1's second option: threshold = best recent throughput x RTT. On a
  // 5 Mbps bottleneck (pacing 100 KB over 60 ms would be ~2.8x too fast),
  // the second flow should pace only what the path proved it can carry.
  net::DumbbellConfig config;
  config.bottleneck_rate = sim::DataRate::megabits_per_second(5);
  config.bottleneck_buffer_bytes = 20'000;
  DumbbellFixture f{config};
  f.context.halfback_config.history_threshold = true;

  SenderBase& first = f.start(Scheme::halfback, 100'000);
  f.sim.run();
  ASSERT_TRUE(first.complete());
  ASSERT_NE(f.context.throughput_history, nullptr);
  EXPECT_EQ(f.context.throughput_history->paths(), 1u);

  SenderBase& second = f.start(Scheme::halfback, 100'000);
  f.sim.run();
  ASSERT_TRUE(second.complete());
  // The learned threshold (~5 Mbps x 60 ms ~ 37 KB ~ 26 segments) bounds
  // both the paced batch and the ROPR sweep.
  EXPECT_LT(second.record().proactive_retx, 20u);
  // Gentler start -> fewer drops than the blind first flow.
  EXPECT_LE(second.record().normal_retx, first.record().normal_retx);
}

TEST(HalfbackTest, HistoryThresholdFallsBackWithoutHistory) {
  DumbbellFixture f;
  f.context.halfback_config.history_threshold = true;
  SenderBase& s = f.start(Scheme::halfback, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  // No history yet: behaves like the constant-threshold Halfback.
  EXPECT_NEAR(static_cast<double>(s.record().proactive_retx), 35.0, 5.0);
}

TEST(HalfbackTest, SingleSegmentFlow) {
  DumbbellFixture f;
  SenderBase& s = f.start(Scheme::halfback, 100);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_EQ(s.record().total_segments, 1u);
  // 1 RTT handshake + ~1 RTT data.
  EXPECT_LT(s.record().fct(), 130_ms);
}

}  // namespace
}  // namespace halfback::schemes
