#include "schemes/jumpstart.h"

#include <gtest/gtest.h>

#include "support/dumbbell_fixture.h"

namespace halfback::schemes {
namespace {

using halfback::testing::DumbbellFixture;
using transport::SenderBase;
using namespace halfback::sim::literals;

TEST(JumpStartTest, PacesWholeFlowInOneRtt) {
  DumbbellFixture f;
  SenderBase& s = f.start(Scheme::jumpstart, 100'000);
  // After handshake (60 ms) + one RTT of pacing, all 70 segments must have
  // left the sender.
  f.sim.run_until(125_ms);
  EXPECT_EQ(s.scoreboard().highest_sent(), 70u);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_LT(s.record().fct(), 200_ms);
}

TEST(JumpStartTest, MuchFasterThanTcpOnCleanPath) {
  DumbbellFixture fj;
  SenderBase& j = fj.start(Scheme::jumpstart, 100'000);
  fj.sim.run();

  DumbbellFixture ft;
  SenderBase& t = ft.start(Scheme::tcp, 100'000);
  ft.sim.run();

  // Paper §4.2.1: JumpStart ~2 RTTs vs TCP ~6-7 RTTs.
  EXPECT_LT(j.record().fct() * 2.0, t.record().fct());
}

TEST(JumpStartTest, NoProactiveRetransmissions) {
  DumbbellFixture f;
  SenderBase& s = f.start(Scheme::jumpstart, 100'000);
  f.sim.run();
  EXPECT_EQ(s.record().proactive_retx, 0u);
}

TEST(JumpStartTest, BurstyRecoveryRetransmitsAllDetectedLosses) {
  // Force a clump of mid-flow losses; once three SACKs sit above them the
  // whole clump must go out (bursty retransmission).
  DumbbellFixture f;
  int to_drop = 5;
  f.dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
    if (p.type == net::PacketType::data && !p.is_retx && p.seq >= 30 && p.seq < 35 &&
        to_drop > 0) {
      --to_drop;
      return false;
    }
    return true;
  });
  SenderBase& s = f.start(Scheme::jumpstart, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_GE(s.record().normal_retx, 5u);
  EXPECT_EQ(s.record().timeouts, 0u);  // enough SACKs above the clump
}

TEST(JumpStartTest, OverdrivenPathLosesAndRecovers) {
  // Pace 100 KB over a path whose bottleneck cannot absorb it (5 Mbps,
  // small buffer): heavy loss, but data integrity must survive.
  net::DumbbellConfig config;
  config.bottleneck_rate = sim::DataRate::megabits_per_second(5);
  config.bottleneck_buffer_bytes = 15'000;
  DumbbellFixture f{config};
  SenderBase& s = f.start(Scheme::jumpstart, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_GT(s.record().normal_retx, 0u);
  transport::Receiver* r = f.receiver_for(s.record().flow);
  EXPECT_EQ(r->stats().unique_segments, 70u);
}

TEST(JumpStartTest, RtoRecoveryIsGoBackN) {
  // The UDT-substrate EXP timeout re-sends everything above the cumulative
  // ACK, SACKed or not (DESIGN.md §5). Force it: drop the whole first half
  // of the paced batch so no fast retransmit can fill the leading hole,
  // then count the storm.
  DumbbellFixture f;
  int drops_left = 5;  // original + every pre-RTO retransmission
  f.dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
    if (p.type == net::PacketType::data && p.seq == 0 && drops_left > 0) {
      --drops_left;
      return false;  // the leading segment is gone; cum ack cannot move
    }
    return true;
  });
  SenderBase& s = f.start(Scheme::jumpstart, 30 * net::kSegmentPayloadBytes);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  ASSERT_GE(s.record().timeouts, 1u);
  // The go-back-N burst re-sent far more than the single lost segment.
  EXPECT_GT(s.record().normal_retx, 10u);
}

TEST(JumpStartTest, NakRoundsRetransmitSamePacketRepeatedly) {
  // "each lost packet may require multiple retransmissions": drop every
  // copy of one mid-flow segment a few times and watch the per-RTT NAK
  // rounds re-send it.
  DumbbellFixture f;
  int drops_left = 3;
  f.dumbbell.bottleneck_forward->set_packet_filter([&](const net::Packet& p) {
    if (p.type == net::PacketType::data && p.seq == 20 && drops_left > 0) {
      --drops_left;
      return false;
    }
    return true;
  });
  SenderBase& s = f.start(Scheme::jumpstart, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_EQ(drops_left, 0);
  EXPECT_GE(s.record().normal_retx, 3u);  // segment 20 needed 3+ re-sends
}

TEST(JumpStartTest, LongFlowContinuesAfterPacedBatch) {
  net::DumbbellConfig config;
  config.bottleneck_buffer_bytes = 200'000;
  DumbbellFixture f{config};
  SenderBase& s = f.start(Scheme::jumpstart, 400'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  transport::Receiver* r = f.receiver_for(s.record().flow);
  EXPECT_EQ(r->stats().unique_segments, s.record().total_segments);
}

}  // namespace
}  // namespace halfback::schemes
