// Behaviour tests for the PCP reimplementation (probe-verified rate
// control, §2.2 / §4.2.3 of the Halfback paper).
#include "schemes/pcp.h"

#include <gtest/gtest.h>

#include "support/dumbbell_fixture.h"

namespace halfback::schemes {
namespace {

using halfback::testing::DumbbellFixture;
using transport::SenderBase;
using namespace halfback::sim::literals;

PcpSender* start_pcp(DumbbellFixture& f, std::uint64_t bytes, std::size_t pair = 0) {
  return static_cast<PcpSender*>(&f.start(Scheme::pcp, bytes, pair));
}

TEST(PcpBehaviourTest, RateDoublesOnCleanPath) {
  DumbbellFixture f;
  PcpSender* pcp = start_pcp(f, 100'000);
  // After the handshake plus a few verified rounds the base rate should
  // have doubled several times from its 2-segments-per-RTT start.
  f.sim.run_until(400_ms);
  const double initial = 2.0 / 0.060;  // 2 segments per 60 ms RTT
  EXPECT_GT(pcp->base_rate_segments_per_second(), 3.0 * initial);
  f.sim.run();
  EXPECT_TRUE(pcp->complete());
}

TEST(PcpBehaviourTest, ProbeRateStaysAheadOfBase) {
  DumbbellFixture f;
  PcpSender* pcp = start_pcp(f, 100'000);
  f.sim.run_until(300_ms);
  EXPECT_GE(pcp->probe_rate_segments_per_second(),
            pcp->base_rate_segments_per_second());
  f.sim.run();
}

TEST(PcpBehaviourTest, SlowerThanTcpSometimes) {
  // §2.2: "it can have higher flow completion time than TCP" — probing
  // costs rounds that slow start doesn't pay.
  DumbbellFixture fp;
  SenderBase& pcp = *start_pcp(fp, 100'000);
  fp.sim.run();

  DumbbellFixture ft;
  SenderBase& tcp = ft.start(Scheme::tcp, 100'000);
  ft.sim.run();

  ASSERT_TRUE(pcp.complete());
  ASSERT_TRUE(tcp.complete());
  EXPECT_GT(pcp.record().fct(), tcp.record().fct() * 0.9);
}

TEST(PcpBehaviourTest, BacksOffAgainstQueueBuildup) {
  // A bulk TCP flow with a large receive window keeps the bottleneck queue
  // deep; PCP's probes must see the inflated delay and pause/back off,
  // making it the most conservative scheme (§4.2.3).
  net::DumbbellConfig config;
  config.sender_count = 2;
  config.receiver_count = 2;
  config.bottleneck_buffer_bytes = 400'000;  // bloated
  DumbbellFixture f{config};
  f.context.sender_config.receive_window_segments = 500;
  f.start(Scheme::tcp, 30'000'000, 0);  // bulk flow fills the buffer
  f.context.sender_config.receive_window_segments = 97;

  PcpSender* pcp = nullptr;
  f.sim.schedule(3_s, [&] { pcp = start_pcp(f, 100'000, 1); });
  f.sim.run_until(20_s);
  ASSERT_NE(pcp, nullptr);
  // Either still crawling or finished very slowly — but never aggressive:
  // the verified rate must stay well below the bottleneck (1250 seg/s).
  EXPECT_LT(pcp->base_rate_segments_per_second(), 700.0);
  if (pcp->complete()) {
    EXPECT_GT(pcp->record().fct(), 500_ms);
  }
}

TEST(PcpBehaviourTest, FewestRetransmissionsUnderSelfCongestion) {
  // Fig. 10b: PCP has the fewest retransmissions — its paced, verified
  // sends rarely overflow even a small buffer.
  net::DumbbellConfig config;
  config.bottleneck_buffer_bytes = 15'000;
  DumbbellFixture fp{config};
  SenderBase& pcp = *start_pcp(fp, 100'000);
  fp.sim.run();

  DumbbellFixture fj{config};
  SenderBase& jumpstart = fj.start(Scheme::jumpstart, 100'000);
  fj.sim.run();

  ASSERT_TRUE(pcp.complete());
  EXPECT_LE(pcp.record().normal_retx, 5u);
  EXPECT_LE(pcp.record().normal_retx, jumpstart.record().normal_retx);
}

}  // namespace
}  // namespace halfback::schemes
