#include "schemes/rc3.h"

#include <gtest/gtest.h>

#include "net/queue.h"
#include "support/dumbbell_fixture.h"

namespace halfback::schemes {
namespace {

using halfback::testing::DumbbellFixture;
using transport::SenderBase;
using namespace halfback::sim::literals;

net::DumbbellConfig priority_dumbbell() {
  net::DumbbellConfig config;
  config.bottleneck_queue = net::QueueKind::priority;
  return config;
}

TEST(PriorityQueueTest, NormalBandServedFirst) {
  net::PriorityQueue q{20'000};
  auto make = [](std::uint8_t priority, std::uint32_t seq) {
    net::Packet p;
    p.type = net::PacketType::data;
    p.size_bytes = 1500;
    p.priority = priority;
    p.seq = seq;
    return p;
  };
  q.enqueue(make(1, 100), {});
  q.enqueue(make(0, 1), {});
  q.enqueue(make(1, 101), {});
  q.enqueue(make(0, 2), {});
  EXPECT_EQ(q.dequeue({})->seq, 1u);
  EXPECT_EQ(q.dequeue({})->seq, 2u);
  EXPECT_EQ(q.dequeue({})->seq, 100u);
  EXPECT_EQ(q.dequeue({})->seq, 101u);
}

TEST(PriorityQueueTest, BandsHaveIndependentBudgets) {
  net::PriorityQueue q{3'000};  // per band
  auto make = [](std::uint8_t priority) {
    net::Packet p;
    p.size_bytes = 1500;
    p.priority = priority;
    return p;
  };
  EXPECT_TRUE(q.enqueue(make(1), {}));
  EXPECT_TRUE(q.enqueue(make(1), {}));
  EXPECT_FALSE(q.enqueue(make(1), {}));  // low band full
  EXPECT_TRUE(q.enqueue(make(0), {}));   // normal band unaffected
  EXPECT_EQ(q.band_bytes(0), 1500u);
  EXPECT_EQ(q.band_bytes(1), 3000u);
}

TEST(Rc3Test, CompletesInTwoRttsOnPriorityBottleneck) {
  // RLP fires the whole flow at line rate immediately after the handshake;
  // on an idle priority bottleneck it all arrives in ~1 RTT, well before
  // the primary loop's slow start would have delivered it.
  DumbbellFixture f{priority_dumbbell()};
  SenderBase& s = f.start(Scheme::rc3, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  EXPECT_LT(s.record().fct(), 200_ms);  // vs ~430 ms for TCP
  EXPECT_GT(s.record().proactive_retx, 50u);
  transport::Receiver* r = f.receiver_for(s.record().flow);
  EXPECT_EQ(r->stats().unique_segments, 70u);
}

TEST(Rc3Test, PrimaryLoopSkipsSegmentsDeliveredByRlp) {
  DumbbellFixture f{priority_dumbbell()};
  SenderBase& s = f.start(Scheme::rc3, 100'000);
  f.sim.run();
  ASSERT_TRUE(s.complete());
  // RLP delivered the tail; the primary loop must not re-send all of it:
  // total wire data << 2x flow.
  EXPECT_LT(s.record().data_packets_sent, 100u);
  EXPECT_EQ(s.record().timeouts, 0u);
}

TEST(Rc3Test, LowPriorityCopiesCannotHurtNormalTraffic) {
  // A competing TCP flow's packets ride band 0: RC3's line-rate RLP burst
  // must not increase its completion time at all.
  net::DumbbellConfig config = priority_dumbbell();
  config.sender_count = 2;
  config.receiver_count = 2;

  DumbbellFixture alone{config};
  SenderBase& tcp_alone = alone.start(Scheme::tcp, 100'000, 0);
  alone.sim.run();

  DumbbellFixture mixed{config};
  SenderBase& tcp_mixed = mixed.start(Scheme::tcp, 100'000, 0);
  SenderBase& rc3 = mixed.start(Scheme::rc3, 100'000, 1);
  mixed.sim.run();

  ASSERT_TRUE(tcp_mixed.complete());
  ASSERT_TRUE(rc3.complete());
  // The ACK path and serialization slots are shared, so allow a whisker.
  EXPECT_LT(tcp_mixed.record().fct().to_ms(),
            tcp_alone.record().fct().to_ms() * 1.10);
}

TEST(Rc3Test, WithoutPrioritySupportItIsJustAggressive) {
  // Misdeployed RC3 (drop-tail bottleneck): the RLP line-rate burst parks
  // ~100 KB in the shared queue, and a TCP flow starting into that backlog
  // pays for it — the §3.2 reason Halfback avoids needing in-network
  // changes. A slower bottleneck keeps the backlog alive long enough to
  // overlap the competitor.
  net::DumbbellConfig config;  // drop-tail
  config.sender_count = 2;
  config.receiver_count = 2;
  config.bottleneck_rate = sim::DataRate::megabits_per_second(5);

  auto run_tcp = [&](bool with_rc3) {
    DumbbellFixture f{config};
    if (with_rc3) f.start(Scheme::rc3, 100'000, 1);
    SenderBase* tcp = nullptr;
    f.sim.schedule(60_ms, [&] { tcp = &f.start(Scheme::tcp, 100'000, 0); });
    f.sim.run();
    EXPECT_TRUE(tcp->complete());
    return tcp->record().fct();
  };
  EXPECT_GT(run_tcp(true), run_tcp(false) + 30_ms);
}

TEST(Rc3Test, RlpRespectsReceiveWindow) {
  DumbbellFixture f{priority_dumbbell()};
  SenderBase& s = f.start(Scheme::rc3, 500'000);  // > 141 KB window
  f.sim.run();
  ASSERT_TRUE(s.complete());
  transport::Receiver* r = f.receiver_for(s.record().flow);
  EXPECT_EQ(r->stats().unique_segments, s.record().total_segments);
}

}  // namespace
}  // namespace halfback::schemes
